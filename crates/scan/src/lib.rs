//! # sepdc-scan
//!
//! The paper's machine model is Blelloch's *parallel vector model*: a PRAM
//! augmented with a unit-time SCAN (prefix sum) primitive. This crate is
//! that substrate:
//!
//! * [`scan`] — inclusive/exclusive scans under any [`Monoid`], in serial
//!   and blocked-parallel (rayon) forms that produce bit-identical results
//!   for exact monoids (integer sums, min/max).
//! * [`segmented`] — segmented scans over flag vectors, the workhorse of
//!   nested data parallelism.
//! * [`primitives`] — `pack`, `split`, `apply_permutation`, `distribute`:
//!   the vector operations the paper's algorithms are phrased in.
//! * [`cost`] — an analytic work/depth meter. The paper's theorems bound
//!   *rounds of unit-time vector operations along the critical path*;
//!   wall-clock on a multicore cannot observe that quantity directly, so
//!   every algorithm in the workspace threads a [`cost::CostMeter`] that
//!   counts exactly what the theorems count.

#![warn(missing_docs)]

pub mod cost;
pub mod primitives;
pub mod scan;
pub mod segmented;
pub mod selection;
pub mod sort;

pub use cost::{CostMeter, CostProfile};
pub use scan::{exclusive_scan, inclusive_scan, par_exclusive_scan, par_inclusive_scan, Monoid};

/// Minimum slice length before the parallel scan implementations split
/// work across rayon tasks; below this the serial code is faster and the
/// parallel entry points simply delegate to it.
pub const PAR_THRESHOLD: usize = 1 << 14;
