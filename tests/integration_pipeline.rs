//! End-to-end integration: workloads → k-NN algorithms → neighborhood
//! systems → query structures → graphs, with every cross-module invariant
//! checked against the brute-force oracle.

use sepdc::core::{
    brute_force_knn, kdtree_all_knn, parallel_knn, simple_parallel_knn, KnnDcConfig, KnnGraph,
    NeighborhoodSystem, QueryTree, QueryTreeConfig,
};
use sepdc::workloads::Workload;

/// Every algorithm agrees with the oracle across workloads (2D).
#[test]
fn all_algorithms_agree_across_workloads_2d() {
    let n = 500;
    let k = 2;
    let cfg = KnnDcConfig::new(k).with_seed(1);
    for w in Workload::ALL {
        let pts = w.generate::<2>(n, 7);
        let oracle = brute_force_knn(&pts, k);
        kdtree_all_knn(&pts, k)
            .same_distances(&oracle, 1e-9)
            .unwrap_or_else(|e| panic!("kdtree on {}: {e}", w.name()));
        simple_parallel_knn::<2, 3>(&pts, &cfg)
            .knn
            .same_distances(&oracle, 1e-9)
            .unwrap_or_else(|e| panic!("simple on {}: {e}", w.name()));
        parallel_knn::<2, 3>(&pts, &cfg)
            .knn
            .same_distances(&oracle, 1e-9)
            .unwrap_or_else(|e| panic!("parallel on {}: {e}", w.name()));
    }
}

/// Same in 3D and 4D on a subset of workloads.
#[test]
fn all_algorithms_agree_higher_dims() {
    let cfg = KnnDcConfig::new(3).with_seed(2);
    for w in [
        Workload::UniformCube,
        Workload::Clusters,
        Workload::TwoSlabs,
    ] {
        let pts3 = w.generate::<3>(400, 11);
        let oracle3 = brute_force_knn(&pts3, 3);
        parallel_knn::<3, 4>(&pts3, &cfg)
            .knn
            .same_distances(&oracle3, 1e-9)
            .unwrap_or_else(|e| panic!("parallel 3d on {}: {e}", w.name()));
        simple_parallel_knn::<3, 4>(&pts3, &cfg)
            .knn
            .same_distances(&oracle3, 1e-9)
            .unwrap_or_else(|e| panic!("simple 3d on {}: {e}", w.name()));

        let pts4 = w.generate::<4>(300, 13);
        let oracle4 = brute_force_knn(&pts4, 3);
        parallel_knn::<4, 5>(&pts4, &cfg)
            .knn
            .same_distances(&oracle4, 1e-9)
            .unwrap_or_else(|e| panic!("parallel 4d on {}: {e}", w.name()));
    }
}

/// Pipeline: k-NN → neighborhood system → query structure answers match a
/// linear scan; the system satisfies the k-neighborhood property and the
/// Density Lemma ply bound.
#[test]
fn knn_to_neighborhood_to_query_pipeline() {
    let n = 800;
    let k = 2;
    let pts = Workload::Clusters.generate::<2>(n, 21);
    let cfg = KnnDcConfig::new(k).with_seed(3);
    let out = parallel_knn::<2, 3>(&pts, &cfg);

    let system = NeighborhoodSystem::from_knn(&pts, &out.knn);
    system
        .check_k_neighborhood(k)
        .unwrap_or_else(|i| panic!("ball {i} violates the k-neighborhood property"));
    let ply = system.max_ply_at_centers();
    assert!(
        ply <= sepdc::geom::kissing_number(2) * k + k,
        "ply {ply} violates the Density Lemma bound"
    );

    let tree = QueryTree::build::<3>(system.balls(), QueryTreeConfig::default(), 9);
    let probes = Workload::UniformCube.generate::<2>(300, 99);
    for p in &probes {
        let mut fast = tree.covering(p);
        fast.sort_unstable();
        let mut slow: Vec<u32> = system
            .balls()
            .iter()
            .enumerate()
            .filter(|(_, b)| b.contains(p))
            .map(|(i, _)| i as u32)
            .collect();
        slow.sort_unstable();
        assert_eq!(fast, slow);
    }
}

/// The k-NN graph built from any algorithm's result is identical (as a
/// distance structure, graphs may differ on ties — so compare invariants).
#[test]
fn graph_invariants_across_algorithms() {
    let pts = Workload::UniformCube.generate::<2>(600, 31);
    let k = 3;
    let cfg = KnnDcConfig::new(k).with_seed(4);
    let g_oracle = KnnGraph::from_knn(&brute_force_knn(&pts, k));
    let g_par = KnnGraph::from_knn(&parallel_knn::<2, 3>(&pts, &cfg).knn);

    assert_eq!(g_oracle.num_vertices(), g_par.num_vertices());
    // Tie-freedom w.h.p. for random points: edge sets match exactly.
    assert_eq!(g_oracle.edges(), g_par.edges());
    // Minimum degree k (each vertex has k out-neighbors).
    for v in 0..600 {
        assert!(g_par.degree(v) >= k);
    }
}

/// Partition tree structure: every point in exactly one leaf; leaves no
/// larger than the resolved base case; height logarithmic.
#[test]
fn partition_tree_structure() {
    let n = 3000;
    let pts = Workload::UniformBall.generate::<2>(n, 41);
    let cfg = KnnDcConfig::new(1).with_seed(5);
    let out = parallel_knn::<2, 3>(&pts, &cfg);
    let mut ids = Vec::new();
    out.tree.collect_point_ids(&mut ids);
    ids.sort_unstable();
    assert_eq!(ids, (0..n as u32).collect::<Vec<_>>());
    assert!(out.tree.height() <= 4 * (n as f64).log2() as usize);
    assert_eq!(out.tree.leaves(), out.stats.base_leaves);
}

/// Seed determinism across the whole pipeline.
#[test]
fn whole_pipeline_deterministic() {
    let pts = Workload::SphereShell.generate::<3>(500, 51);
    let cfg = KnnDcConfig::new(2).with_seed(77);
    let a = parallel_knn::<3, 4>(&pts, &cfg);
    let b = parallel_knn::<3, 4>(&pts, &cfg);
    a.knn.same_distances(&b.knn, 0.0).unwrap();
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.cost, b.cost);
    let ga = KnnGraph::from_knn(&a.knn);
    let gb = KnnGraph::from_knn(&b.knn);
    assert_eq!(ga.edges(), gb.edges());
}

/// Stress: pathological inputs end-to-end.
#[test]
fn pathological_inputs_end_to_end() {
    let cfg = KnnDcConfig::new(2).with_seed(6);

    // All identical.
    let same = vec![sepdc::geom::Point::<2>::splat(4.0); 150];
    let out = parallel_knn::<2, 3>(&same, &cfg);
    out.knn
        .same_distances(&brute_force_knn(&same, 2), 0.0)
        .unwrap();

    // Heavy duplication plus spread.
    let mut pts = Workload::UniformCube.generate::<2>(200, 61);
    let dup = pts[3];
    pts.extend(std::iter::repeat_n(dup, 100));
    let out = parallel_knn::<2, 3>(&pts, &cfg);
    out.knn
        .same_distances(&brute_force_knn(&pts, 2), 1e-12)
        .unwrap();

    // Collinear points.
    let line: Vec<sepdc::geom::Point<2>> = (0..300)
        .map(|i| sepdc::geom::Point::from([i as f64, 0.0]))
        .collect();
    let out = parallel_knn::<2, 3>(&line, &cfg);
    out.knn
        .same_distances(&brute_force_knn(&line, 2), 1e-12)
        .unwrap();

    // Huge coordinates.
    let big: Vec<sepdc::geom::Point<2>> = Workload::UniformCube
        .generate::<2>(300, 71)
        .into_iter()
        .map(|p| sepdc::geom::Point::from([p[0] * 1e8 + 3e12, p[1] * 1e8 - 9e11]))
        .collect();
    let out = parallel_knn::<2, 3>(&big, &cfg);
    out.knn
        .same_distances(&brute_force_knn(&big, 2), 1.0) // abs tol on squared dists at this scale
        .unwrap();
}

/// n ≤ k edge cases across the public API.
#[test]
fn tiny_inputs_all_entry_points() {
    let cfg = KnnDcConfig::new(5).with_seed(8);
    for n in [0usize, 1, 2, 4, 6] {
        let pts = Workload::UniformCube.generate::<2>(n, 81);
        let par = parallel_knn::<2, 3>(&pts, &cfg);
        let oracle = brute_force_knn(&pts, 5.min(pts.len().max(1)));
        // With k possibly > n-1, lists are short but must agree in length
        // and distances.
        assert_eq!(par.knn.len(), oracle.len());
        for i in 0..n {
            assert_eq!(par.knn.neighbors(i).len(), pts.len() - 1.min(pts.len()));
        }
    }
}
