//! Criterion bench: separator machinery.
//!
//! * unit-time candidate cost must be flat in `n` (the "unit time" claim —
//!   work per candidate is constant once the sample is drawn);
//! * the full good-separator search (with retries) stays near-constant.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sepdc_separator::mttv::unit_time_candidate;
use sepdc_separator::{find_good_separator, SeparatorConfig};
use sepdc_workloads::Workload;
use std::hint::black_box;

fn bench_candidate(c: &mut Criterion) {
    let mut group = c.benchmark_group("unit_time_candidate_2d");
    group.sample_size(20);
    let cfg = SeparatorConfig::default();
    for e in [12u32, 14, 16, 18] {
        let n = 1usize << e;
        let pts = Workload::UniformCube.generate::<2>(n, 7);
        group.bench_with_input(BenchmarkId::from_parameter(n), &pts, |b, pts| {
            let mut rng = ChaCha8Rng::seed_from_u64(3);
            b.iter(|| black_box(unit_time_candidate::<2, 3, _>(pts, &cfg, &mut rng)));
        });
    }
    group.finish();
}

fn bench_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("find_good_separator");
    group.sample_size(20);
    let cfg = SeparatorConfig::default();
    let pts2 = Workload::UniformCube.generate::<2>(1 << 14, 7);
    group.bench_function("d2_n16k", |b| {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        b.iter(|| black_box(find_good_separator::<2, 3, _>(&pts2, &cfg, &mut rng)));
    });
    let pts3 = Workload::UniformCube.generate::<3>(1 << 14, 7);
    group.bench_function("d3_n16k", |b| {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        b.iter(|| black_box(find_good_separator::<3, 4, _>(&pts3, &cfg, &mut rng)));
    });
    group.finish();
}

criterion_group!(benches, bench_candidate, bench_search);
criterion_main!(benches);
