//! Parallel iterators over indexed sources.
//!
//! Everything is modeled as an *indexed* source: an iterator knows its
//! length and can produce the item at index `i` (or `None` when a `filter`
//! removed it). Terminal operations partition the index space into
//! contiguous chunks, run each chunk on a scoped worker thread (within the
//! global thread budget of `crate::pool`), and combine per-chunk
//! accumulators in chunk order — so order-sensitive terminals like
//! `collect` match their sequential counterparts exactly.

use std::ops::Range;
use std::sync::atomic::{AtomicBool, Ordering};

/// An indexed parallel iterator.
///
/// `pi_get` contract: terminal drivers call it **at most once per index**.
/// Implementations with mutable items (`par_chunks_mut`) rely on this to
/// hand out disjoint `&mut` borrows soundly.
pub trait ParallelIterator: Sized + Send + Sync {
    /// Item type.
    type Item: Send;

    /// Number of indices (before filtering).
    fn pi_len(&self) -> usize;

    /// The item at `index`, or `None` when filtered out.
    fn pi_get(&self, index: usize) -> Option<Self::Item>;

    /// Map each item through `f`.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Send + Sync,
    {
        Map { base: self, f }
    }

    /// Keep only items satisfying `p`.
    fn filter<P>(self, p: P) -> Filter<Self, P>
    where
        P: Fn(&Self::Item) -> bool + Send + Sync,
    {
        Filter { base: self, p }
    }

    /// Pair up with another indexed iterator (lengths are truncated to the
    /// shorter side; both sides must be unfiltered, as in rayon, where
    /// `zip` exists only on indexed iterators).
    fn zip<B: ParallelIterator>(self, other: B) -> Zip<Self, B> {
        Zip { a: self, b: other }
    }

    /// Attach the global index to each item.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { base: self }
    }

    /// Per-chunk fold; combine the chunk accumulators with
    /// [`Fold::reduce`].
    fn fold<T, ID, F>(self, identity: ID, fold_op: F) -> Fold<Self, ID, F>
    where
        T: Send,
        ID: Fn() -> T + Send + Sync,
        F: Fn(T, Self::Item) -> T + Send + Sync,
    {
        Fold {
            base: self,
            identity,
            fold_op,
        }
    }

    /// Apply `f` to every item.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Send + Sync,
    {
        drive(
            &self,
            || (),
            |(), _, x| {
                f(x);
                true
            },
        );
    }

    /// Number of items (after filtering).
    fn count(self) -> usize {
        drive(
            &self,
            || 0usize,
            |acc, _, _| {
                *acc += 1;
                true
            },
        )
        .into_iter()
        .sum()
    }

    /// Largest item.
    fn max(self) -> Option<Self::Item>
    where
        Self::Item: Ord,
    {
        drive(
            &self,
            || None,
            |acc: &mut Option<Self::Item>, _, x| {
                match acc {
                    Some(m) if *m >= x => {}
                    _ => *acc = Some(x),
                }
                true
            },
        )
        .into_iter()
        .flatten()
        .max()
    }

    /// First `Some` produced by `f`, from any chunk (not necessarily the
    /// earliest index — rayon's `_any` semantics).
    fn find_map_any<R, F>(self, f: F) -> Option<R>
    where
        R: Send,
        F: Fn(Self::Item) -> Option<R> + Send + Sync,
    {
        drive(
            &self,
            || None,
            |acc: &mut Option<R>, _, x| match f(x) {
                Some(r) => {
                    *acc = Some(r);
                    false
                }
                None => true,
            },
        )
        .into_iter()
        .flatten()
        .next()
    }

    /// Collect into a container (order-preserving).
    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_par_iter(self)
    }
}

/// Containers buildable from a parallel iterator.
pub trait FromParallelIterator<T: Send>: Sized {
    /// Build from the iterator, preserving index order.
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self {
        let chunks = drive(&iter, Vec::new, |acc: &mut Vec<T>, _, x| {
            acc.push(x);
            true
        });
        let mut out = Vec::with_capacity(chunks.iter().map(Vec::len).sum());
        for c in chunks {
            out.extend(c);
        }
        out
    }
}

/// Values convertible into a parallel iterator.
pub trait IntoParallelIterator {
    /// The iterator.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Item type.
    type Item: Send;
    /// Convert.
    fn into_par_iter(self) -> Self::Iter;
}

/// `par_iter()` on `&self` — blanket-implemented for any `C` where `&C`
/// converts into a parallel iterator (slices, vectors).
pub trait IntoParallelRefIterator<'a> {
    /// The iterator.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Item type.
    type Item: Send + 'a;
    /// Borrowing conversion.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, C: 'a + ?Sized> IntoParallelRefIterator<'a> for C
where
    &'a C: IntoParallelIterator,
{
    type Iter = <&'a C as IntoParallelIterator>::Iter;
    type Item = <&'a C as IntoParallelIterator>::Item;
    fn par_iter(&'a self) -> Self::Iter {
        self.into_par_iter()
    }
}

// ---- sources ----

/// Shared-slice source.
pub struct SliceIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for SliceIter<'a, T> {
    type Item = &'a T;
    fn pi_len(&self) -> usize {
        self.slice.len()
    }
    fn pi_get(&self, index: usize) -> Option<&'a T> {
        Some(&self.slice[index])
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Iter = SliceIter<'a, T>;
    type Item = &'a T;
    fn into_par_iter(self) -> SliceIter<'a, T> {
        SliceIter { slice: self }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a Vec<T> {
    type Iter = SliceIter<'a, T>;
    type Item = &'a T;
    fn into_par_iter(self) -> SliceIter<'a, T> {
        SliceIter { slice: self }
    }
}

/// `usize` range source.
pub struct RangeIter {
    start: usize,
    len: usize,
}

impl ParallelIterator for RangeIter {
    type Item = usize;
    fn pi_len(&self) -> usize {
        self.len
    }
    fn pi_get(&self, index: usize) -> Option<usize> {
        Some(self.start + index)
    }
}

impl IntoParallelIterator for Range<usize> {
    type Iter = RangeIter;
    type Item = usize;
    fn into_par_iter(self) -> RangeIter {
        RangeIter {
            start: self.start,
            len: self.end.saturating_sub(self.start),
        }
    }
}

// ---- adapters ----

/// See [`ParallelIterator::map`].
pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<I, R, F> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    R: Send,
    F: Fn(I::Item) -> R + Send + Sync,
{
    type Item = R;
    fn pi_len(&self) -> usize {
        self.base.pi_len()
    }
    fn pi_get(&self, index: usize) -> Option<R> {
        self.base.pi_get(index).map(&self.f)
    }
}

/// See [`ParallelIterator::filter`].
pub struct Filter<I, P> {
    base: I,
    p: P,
}

impl<I, P> ParallelIterator for Filter<I, P>
where
    I: ParallelIterator,
    P: Fn(&I::Item) -> bool + Send + Sync,
{
    type Item = I::Item;
    fn pi_len(&self) -> usize {
        self.base.pi_len()
    }
    fn pi_get(&self, index: usize) -> Option<I::Item> {
        self.base.pi_get(index).filter(|x| (self.p)(x))
    }
}

/// See [`ParallelIterator::zip`].
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A: ParallelIterator, B: ParallelIterator> ParallelIterator for Zip<A, B> {
    type Item = (A::Item, B::Item);
    fn pi_len(&self) -> usize {
        self.a.pi_len().min(self.b.pi_len())
    }
    fn pi_get(&self, index: usize) -> Option<(A::Item, B::Item)> {
        Some((self.a.pi_get(index)?, self.b.pi_get(index)?))
    }
}

/// See [`ParallelIterator::enumerate`].
pub struct Enumerate<I> {
    base: I,
}

impl<I: ParallelIterator> ParallelIterator for Enumerate<I> {
    type Item = (usize, I::Item);
    fn pi_len(&self) -> usize {
        self.base.pi_len()
    }
    fn pi_get(&self, index: usize) -> Option<(usize, I::Item)> {
        self.base.pi_get(index).map(|x| (index, x))
    }
}

/// Pending per-chunk fold; finish with [`Fold::reduce`].
pub struct Fold<I, ID, F> {
    base: I,
    identity: ID,
    fold_op: F,
}

impl<I, T, ID, F> Fold<I, ID, F>
where
    I: ParallelIterator,
    T: Send,
    ID: Fn() -> T + Send + Sync,
    F: Fn(T, I::Item) -> T + Send + Sync,
{
    /// Combine the per-chunk accumulators.
    pub fn reduce<ID2, R>(self, reduce_identity: ID2, reduce_op: R) -> T
    where
        ID2: Fn() -> T + Send + Sync,
        R: Fn(T, T) -> T + Send + Sync,
    {
        let Fold {
            base,
            identity,
            fold_op,
        } = self;
        let chunks = drive(
            &base,
            || Some(identity()),
            |acc: &mut Option<T>, _, x| {
                let cur = acc.take().expect("fold accumulator present");
                *acc = Some(fold_op(cur, x));
                true
            },
        );
        chunks
            .into_iter()
            .flatten()
            .fold(reduce_identity(), reduce_op)
    }
}

// ---- driver ----

/// Run `step` over every index of `iter`, in parallel chunks. Returns the
/// per-chunk accumulators in chunk order. `step` returning `false` stops
/// all chunks (early exit for searches).
pub(crate) fn drive<I, A, M, S>(iter: &I, make: M, step: S) -> Vec<A>
where
    I: ParallelIterator,
    A: Send,
    M: Fn() -> A + Send + Sync,
    S: Fn(&mut A, usize, I::Item) -> bool + Send + Sync,
{
    let n = iter.pi_len();
    if n == 0 {
        return Vec::new();
    }
    let stop = AtomicBool::new(false);
    let run = |range: Range<usize>| -> A {
        let mut acc = make();
        for i in range {
            if stop.load(Ordering::Relaxed) {
                break;
            }
            if let Some(x) = iter.pi_get(i) {
                if !step(&mut acc, i, x) {
                    stop.store(true, Ordering::Relaxed);
                    break;
                }
            }
        }
        acc
    };

    let want = crate::pool::current_num_threads().min(n).saturating_sub(1);
    let extra = crate::pool::reserve_up_to(want);
    if extra == 0 {
        return vec![run(0..n)];
    }
    let parts = extra + 1;
    let chunk = n.div_ceil(parts);
    let out = std::thread::scope(|s| {
        let handles: Vec<_> = (1..parts)
            .map(|p| {
                let range = (p * chunk).min(n)..((p + 1) * chunk).min(n);
                s.spawn(|| run(range))
            })
            .collect();
        let mut accs = vec![run(0..chunk.min(n))];
        let mut panic_payload: Option<Box<dyn std::any::Any + Send>> = None;
        for h in handles {
            match h.join() {
                Ok(a) => accs.push(a),
                Err(p) => panic_payload = Some(p),
            }
        }
        (accs, panic_payload)
    });
    crate::pool::release(extra);
    let (accs, panic_payload) = out;
    if let Some(p) = panic_payload {
        std::panic::resume_unwind(p);
    }
    accs
}
