//! Strong-scaling matrix for the three end-to-end engines: the Section 6
//! `parallel_knn` construction, the Section 3 query-structure build, and
//! the batch-serve engine — each swept across explicit rayon pool sizes.
//!
//! ```sh
//! cargo run --release -p sepdc-bench --bin bench_scaling            # full
//! cargo run --release -p sepdc-bench --bin bench_scaling -- --smoke # tiny
//! cargo run --release -p sepdc-bench --bin bench_scaling -- --ci    # 1T/2T gate
//! ```
//!
//! Every multi-thread cell is parity-checked against the 1-thread run
//! before a time is reported: knn lists byte-identical, structural stats
//! equal, work/depth cost profiles equal (the work-depth meter is pinned
//! — thread count moves wall-clock only, never the counted work). Writes
//! `BENCH_scaling.json` (override with `SEPDC_BENCH_OUT`):
//!
//! ```json
//! { "bench_scaling_version": 1, "host": {...},
//!   "rows": [ { "phase", "case", "n", "threads", "median_ms",
//!               "speedup_vs_1t", "work", "depth" }, ... ],
//!   "notes": [...], "table": {...} }
//! ```
//!
//! On a single-core host the JSON carries `host.single_core = true` and an
//! explicit oversubscription note: the thread columns then measure pool
//! overhead, not speedup, and no scaling claim is made.

use sepdc_bench::harness::{host_info, json_str, timed, HostInfo, Table};
use sepdc_core::serve::{CoverPredicate, ServeConfig};
use sepdc_core::{parallel_knn, KnnDcConfig, NeighborhoodSystem, QueryTree, QueryTreeConfig};
use sepdc_workloads::Workload;

/// One machine-readable result row.
struct ScalingRow {
    phase: &'static str,
    case: String,
    n: usize,
    threads: usize,
    median_ms: f64,
    speedup_vs_1t: f64,
    work: u64,
    depth: u64,
}

fn median_secs(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut secs = Vec::with_capacity(reps);
    for _ in 0..reps {
        let ((), dt) = timed(&mut f);
        secs.push(dt);
    }
    secs.sort_by(f64::total_cmp);
    secs[secs.len() / 2]
}

fn pool(t: usize) -> rayon::ThreadPool {
    rayon::ThreadPoolBuilder::new()
        .num_threads(t)
        .build()
        .expect("build rayon pool")
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let ci = std::env::args().any(|a| a == "--ci");
    // --ci keeps the full problem size so the 1-thread row is directly
    // comparable to the checked-in baseline artifact, but only sweeps the
    // 1T/2T columns (the CI perf gate reads the 1T knn row).
    let (n, threads, reps): (usize, Vec<usize>, usize) = if smoke {
        (4_000, vec![1, 2], 1)
    } else if ci {
        (100_000, vec![1, 2], 1)
    } else {
        (100_000, vec![1, 2, 4, 8], 3)
    };
    let k = 4;
    let case = format!("uniform-cube 2d k={k}");
    let host = host_info();
    host.warn_if_single_core();

    let pts = Workload::UniformCube.generate::<2>(n, 7);
    let knn_cfg = KnnDcConfig::new(k).with_seed(3);
    let serve_cfg = ServeConfig::default();
    let probes = Workload::UniformCube.generate::<2>(16_384.min(n), 11);

    let mut rows: Vec<ScalingRow> = Vec::new();

    // ---- phase "knn": the Section 6 end-to-end construction ----
    let baseline = pool(1).install(|| parallel_knn::<2, 3>(&pts, &knn_cfg));
    baseline.knn.check_invariants().expect("knn invariants");
    let mut knn_1t_ms = 0.0;
    for &t in &threads {
        let p = pool(t);
        let sec = p.install(|| {
            median_secs(reps, || {
                std::hint::black_box(parallel_knn::<2, 3>(&pts, &knn_cfg));
            })
        });
        let out = p.install(|| parallel_knn::<2, 3>(&pts, &knn_cfg));
        // Determinism contract: the build is a pure function of
        // (points, config) — every pool size must reproduce the 1-thread
        // output and the 1-thread work/depth meter exactly.
        out.knn
            .same_distances(&baseline.knn, 0.0)
            .unwrap_or_else(|e| panic!("knn parity at {t} threads: {e}"));
        assert_eq!(out.stats, baseline.stats, "knn stats at {t} threads");
        assert_eq!(out.cost, baseline.cost, "knn work/depth at {t} threads");
        assert_eq!(
            out.tree.nodes().len(),
            baseline.tree.nodes().len(),
            "knn tree shape at {t} threads"
        );
        if t == 1 {
            knn_1t_ms = sec * 1e3;
        }
        rows.push(ScalingRow {
            phase: "knn",
            case: case.clone(),
            n,
            threads: t,
            median_ms: sec * 1e3,
            speedup_vs_1t: knn_1t_ms / (sec * 1e3),
            work: baseline.cost.work,
            depth: baseline.cost.depth,
        });
    }

    // ---- phase "build": the Section 3 query structure ----
    let system = NeighborhoodSystem::from_knn(&pts, &baseline.knn);
    let qcfg = QueryTreeConfig::default();
    let ref_tree = pool(1).install(|| QueryTree::build::<3>(system.balls(), qcfg, 3));
    let ref_serve = ref_tree
        .try_serve(&probes, CoverPredicate::Closed, &serve_cfg)
        .expect("serve baseline");
    let mut build_1t_ms = 0.0;
    for &t in &threads {
        let p = pool(t);
        let sec = p.install(|| {
            median_secs(reps, || {
                std::hint::black_box(QueryTree::build::<3>(system.balls(), qcfg, 3));
            })
        });
        let tree = p.install(|| QueryTree::build::<3>(system.balls(), qcfg, 3));
        assert_eq!(tree.stats(), ref_tree.stats(), "build stats at {t} threads");
        assert_eq!(
            tree.build_cost(),
            ref_tree.build_cost(),
            "build work/depth at {t} threads"
        );
        // Structural parity through behavior: the tree built at t threads
        // must answer a fixed probe batch identically to the 1-thread tree.
        let served = tree
            .try_serve(&probes, CoverPredicate::Closed, &serve_cfg)
            .expect("serve parity probe");
        assert_eq!(
            served.result.offsets(),
            ref_serve.result.offsets(),
            "build->serve offsets at {t} threads"
        );
        assert_eq!(
            served.result.ids(),
            ref_serve.result.ids(),
            "build->serve ids at {t} threads"
        );
        if t == 1 {
            build_1t_ms = sec * 1e3;
        }
        rows.push(ScalingRow {
            phase: "build",
            case: case.clone(),
            n,
            threads: t,
            median_ms: sec * 1e3,
            speedup_vs_1t: build_1t_ms / (sec * 1e3),
            work: ref_tree.build_cost().work,
            depth: ref_tree.build_cost().depth,
        });
    }

    // ---- phase "serve": batch queries against the 1-thread tree ----
    let mut serve_1t_ms = 0.0;
    for &t in &threads {
        let p = pool(t);
        let sec = p.install(|| {
            median_secs(reps, || {
                let out = ref_tree
                    .try_serve(&probes, CoverPredicate::Closed, &serve_cfg)
                    .expect("serve");
                std::hint::black_box(&out.result);
            })
        });
        let out = p
            .install(|| ref_tree.try_serve(&probes, CoverPredicate::Closed, &serve_cfg))
            .expect("serve");
        assert_eq!(
            out.result.offsets(),
            ref_serve.result.offsets(),
            "serve offsets at {t} threads"
        );
        assert_eq!(
            out.result.ids(),
            ref_serve.result.ids(),
            "serve ids at {t} threads"
        );
        if t == 1 {
            serve_1t_ms = sec * 1e3;
        }
        rows.push(ScalingRow {
            phase: "serve",
            case: case.clone(),
            n,
            threads: t,
            median_ms: sec * 1e3,
            speedup_vs_1t: serve_1t_ms / (sec * 1e3),
            work: ref_serve.stats.cost_total,
            depth: ref_serve.stats.cost_max,
        });
    }

    // ---- table + artifact ----
    let mut table = Table::new(
        "BENCH strong scaling (build / knn / serve x threads)",
        &["row", "n", "median ms", "speedup vs 1T", "work", "depth"],
    );
    for r in &rows {
        table.row(
            format!("{} {}T", r.phase, r.threads),
            vec![
                r.n.to_string(),
                format!("{:.1}", r.median_ms),
                format!("{:.2}x", r.speedup_vs_1t),
                r.work.to_string(),
                r.depth.to_string(),
            ],
        );
    }
    table.note(format!(
        "case {case}, reps={reps}, median reported; each pool size runs in \
         its own explicit rayon pool"
    ));
    table.note(
        "determinism pinned per cell: knn lists byte-identical, structural \
         stats equal, work/depth cost profiles equal across all pool sizes \
         (thread count moves wall-clock only)"
            .to_string(),
    );
    table.note(
        "serve 'work'/'depth' columns are the serve engine's cost_total / \
         cost_max node-visit counters"
            .to_string(),
    );
    if host.single_core() {
        table.note(
            "SINGLE-CORE HOST: thread columns measure oversubscription \
             overhead, not speedup — no scaling claim is made from this run"
                .to_string(),
        );
    }
    if smoke {
        table.note("--smoke run: n scaled down 25x, 1 rep (CI sanity only)".to_string());
    }
    if ci {
        table.note("--ci run: full n, 1T/2T only, 1 rep (CI perf gate)".to_string());
    }
    table.note(host.describe());
    table.print();

    let out_path =
        std::env::var("SEPDC_BENCH_OUT").unwrap_or_else(|_| "BENCH_scaling.json".to_string());
    std::fs::write(&out_path, scaling_json(&table, &rows, &host)).expect("write bench json");
    eprintln!("[wrote {out_path}]");
}

/// The versioned artifact: host block, machine-readable rows, and the
/// human-oriented table (which carries the notes).
fn scaling_json(table: &Table, rows: &[ScalingRow], host: &HostInfo) -> String {
    let mut s = String::from("{\n\"bench_scaling_version\": 1,\n\"host\": ");
    s.push_str(&host.to_json());
    s.push_str(",\n\"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "  {{ \"phase\": {}, \"case\": {}, \"n\": {}, \"threads\": {}, \
             \"median_ms\": {:.3}, \"speedup_vs_1t\": {:.3}, \"work\": {}, \
             \"depth\": {} }}{}\n",
            json_str(r.phase),
            json_str(&r.case),
            r.n,
            r.threads,
            r.median_ms,
            r.speedup_vs_1t,
            r.work,
            r.depth,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    s.push_str("],\n\"table\":\n");
    s.push_str(table.to_json().trim_end());
    s.push_str("\n}\n");
    s
}
