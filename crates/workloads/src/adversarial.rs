//! Adversarial inputs.
//!
//! These are the configurations the paper's introduction argues about: for
//! hyperplane-based divide and conquer there are inputs where every
//! balanced cut of a fixed orientation is crossed by `Ω(n)` neighborhood
//! balls, while sphere separators still achieve `O(n^((d-1)/d))`.

use crate::distributions::{normal, uniform_cube};
use rand::Rng;
use sepdc_geom::Point;

/// Two parallel dense slabs: `n/2` matched pairs of points, one at last
/// coordinate `0` and one at `gap`, sharing the other coordinates (uniform
/// in the unit cube). `gap` defaults to `0.5 / n`, far below the expected
/// in-slab spacing, so every point's nearest neighbor is its partner in the
/// other slab.
///
/// Consequence: every k-NN ball crosses the slab midplane, so a balanced
/// hyperplane cut perpendicular to the last axis — the cut Bentley's fixed-
/// orientation translation produces on this axis — is crossed by **all**
/// `n` balls. This is the `Ω(n)` lower-bound exhibit of EXP-3.
pub fn two_slabs<const D: usize, R: Rng>(n: usize, rng: &mut R) -> Vec<Point<D>> {
    assert!(D >= 2, "two_slabs needs dimension >= 2");
    let pairs = (n / 2).max(1);
    // Stratified first coordinate: cell i gets x in [i/pairs, (i+0.4)/pairs),
    // so in-slab spacing is at least 0.6/pairs; the inter-slab gap of
    // 0.1/pairs is strictly smaller, making the partner the unique nearest
    // neighbor of every point.
    let cell = 1.0 / pairs as f64;
    let gap = 0.1 * cell;
    let mut out = Vec::with_capacity(n);
    for i in 0..n / 2 {
        let mut base = [0.0; D];
        base[0] = (i as f64 + rng.gen_range(0.0..0.4)) * cell;
        for v in base.iter_mut().take(D - 1).skip(1) {
            *v = rng.gen_range(0.0..1.0);
        }
        let mut low = base;
        low[D - 1] = 0.0;
        let mut high = base;
        high[D - 1] = gap;
        out.push(Point(low));
        out.push(Point(high));
    }
    // Odd n: one unpaired point in the lower slab.
    while out.len() < n {
        let mut base = [0.0; D];
        base[0] = -2.0 * cell; // clear of all pairs
        out.push(Point(base));
    }
    out
}

/// Points along the first coordinate axis with perpendicular Gaussian noise
/// of scale `noise` — nearly one-dimensional data, a degeneracy stress for
/// the geometric machinery.
pub fn noisy_line<const D: usize, R: Rng>(n: usize, noise: f64, rng: &mut R) -> Vec<Point<D>> {
    (0..n)
        .map(|i| {
            let mut c = [0.0; D];
            c[0] = i as f64 / n.max(1) as f64;
            for v in c.iter_mut().skip(1) {
                *v = noise * normal(rng);
            }
            Point(c)
        })
        .collect()
}

/// A "kissing" cluster: greedily packed points on the unit sphere around a
/// center, pairwise distance at least `1 + margin`, plus the center itself.
///
/// Each ring point's nearest neighbor is at distance ≥ 1 (the center), so
/// its 1-neighborhood ball has radius ≥ 1 and contains the center: the ply
/// at the center approaches the kissing number `τ_D` — the tight case of
/// the Density Lemma (Lemma 2.1), measured by EXP-9.
pub fn kissing_cluster<const D: usize, R: Rng>(center: Point<D>, rng: &mut R) -> Vec<Point<D>> {
    let margin = 1e-3;
    let min_dist_sq = (1.0 + margin) * (1.0 + margin);
    let mut ring: Vec<Point<D>> = Vec::new();
    let mut failures = 0;
    // Greedy random packing; stop after enough consecutive failures that
    // the configuration is effectively saturated.
    while failures < 4000 {
        let mut c = [0.0; D];
        for v in &mut c {
            *v = normal(rng);
        }
        let Some(u) = Point(c).normalized(1e-9) else {
            continue;
        };
        let candidate = center + u;
        if ring.iter().all(|q| q.dist_sq(&candidate) >= min_dist_sq) {
            ring.push(candidate);
            failures = 0;
        } else {
            failures += 1;
        }
    }
    ring.push(center);
    ring
}

/// `count` kissing clusters with centers spread far apart (spacing 10), plus
/// uniform filler to reach `n` points total.
pub fn kissing_field<const D: usize, R: Rng>(n: usize, count: usize, rng: &mut R) -> Vec<Point<D>> {
    let mut out = Vec::new();
    for i in 0..count {
        let mut c = [0.0; D];
        c[0] = 10.0 * i as f64;
        out.extend(kissing_cluster(Point(c), rng));
        if out.len() >= n {
            out.truncate(n);
            return out;
        }
    }
    // Filler, far from all clusters.
    let filler = uniform_cube::<D, R>(n - out.len(), rng);
    out.extend(filler.into_iter().map(|p| {
        let mut q = p;
        q[0] -= 50.0; // well away from cluster line
        q
    }));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng;

    #[test]
    fn two_slabs_pair_structure() {
        let pts = two_slabs::<2, _>(100, &mut rng(1));
        assert_eq!(pts.len(), 100);
        let gap = 0.1 / 50.0;
        for pair in pts.chunks(2) {
            if pair.len() == 2 {
                assert_eq!(pair[0][0], pair[1][0], "pairs share x");
                assert_eq!(pair[0][1], 0.0);
                assert_eq!(pair[1][1], gap);
            }
        }
    }

    #[test]
    fn two_slabs_nearest_neighbor_is_partner() {
        let pts = two_slabs::<2, _>(200, &mut rng(2));
        // Check a handful of points: nearest neighbor is the pair partner.
        for i in (0..20).step_by(2) {
            let p = pts[i];
            let mut best = (f64::INFINITY, usize::MAX);
            for (j, q) in pts.iter().enumerate() {
                if j != i {
                    let d = p.dist_sq(q);
                    if d < best.0 {
                        best = (d, j);
                    }
                }
            }
            assert_eq!(best.1, i + 1, "partner is not nearest for {i}");
        }
    }

    #[test]
    fn two_slabs_odd_count() {
        let pts = two_slabs::<3, _>(101, &mut rng(3));
        assert_eq!(pts.len(), 101);
    }

    #[test]
    fn noisy_line_monotone_first_coordinate() {
        let pts = noisy_line::<2, _>(50, 0.001, &mut rng(4));
        for w in pts.windows(2) {
            assert!(w[0][0] < w[1][0]);
        }
    }

    #[test]
    fn kissing_cluster_2d_reaches_kissing_number() {
        let ring = kissing_cluster::<2, _>(Point::origin(), &mut rng(5));
        // Ring (excluding center) can hold at most τ_2 = 6 points at
        // pairwise distance > 1 on the unit circle; greedy packing should
        // reach at least 4.
        let ring_only = ring.len() - 1;
        assert!((4..=6).contains(&ring_only), "ring size {ring_only}");
        // Pairwise separation constraint holds.
        for (i, p) in ring.iter().enumerate() {
            for q in ring.iter().skip(i + 1) {
                if *p != ring[ring.len() - 1] && *q != ring[ring.len() - 1] {
                    assert!(p.dist(q) >= 1.0, "ring points too close");
                }
            }
        }
    }

    #[test]
    fn kissing_cluster_3d_bounded_by_kissing_number() {
        let ring = kissing_cluster::<3, _>(Point::origin(), &mut rng(6));
        let ring_only = ring.len() - 1;
        assert!(
            ring_only <= 12,
            "packed {ring_only} > τ_3 = 12 points, impossible"
        );
        assert!(ring_only >= 6, "greedy packing too sparse: {ring_only}");
    }

    #[test]
    fn kissing_field_count_and_determinism() {
        let a = kissing_field::<2, _>(60, 3, &mut rng(7));
        let b = kissing_field::<2, _>(60, 3, &mut rng(7));
        assert_eq!(a.len(), 60);
        assert_eq!(a, b);
    }
}
