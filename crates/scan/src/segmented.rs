//! Segmented scans.
//!
//! A segmented scan runs an independent scan inside each segment of a
//! vector, where segments are delimited by a flag vector (`true` marks the
//! first element of a segment). Blelloch's construction shows a segmented
//! scan is itself a scan under a lifted monoid, which is how the parallel
//! version here works — so the segmented operations inherit the two-pass
//! parallel implementation for free.

use crate::scan::{inclusive_scan, par_inclusive_scan, Monoid};

/// The lifted monoid for segmented scans: pairs `(flag, value)` where a set
/// flag resets the accumulation.
#[derive(Clone, Copy, Debug)]
struct Segmented<M: Monoid>(M);

impl<M: Monoid> Monoid for Segmented<M> {
    type Elem = (bool, M::Elem);
    fn identity(&self) -> Self::Elem {
        (false, self.0.identity())
    }
    fn combine(&self, a: Self::Elem, b: Self::Elem) -> Self::Elem {
        if b.0 {
            b
        } else {
            (a.0, self.0.combine(a.1, b.1))
        }
    }
}

fn zip_flags<M: Monoid>(values: &[M::Elem], flags: &[bool]) -> Vec<(bool, M::Elem)> {
    assert_eq!(
        values.len(),
        flags.len(),
        "segmented scan: values and flags must have equal length"
    );
    flags.iter().copied().zip(values.iter().copied()).collect()
}

/// Inclusive segmented scan (serial).
///
/// `flags[i] == true` marks position `i` as the start of a new segment.
/// Position 0 starts a segment regardless of its flag.
pub fn seg_inclusive_scan<M: Monoid>(m: M, values: &[M::Elem], flags: &[bool]) -> Vec<M::Elem> {
    let zipped = zip_flags::<M>(values, flags);
    inclusive_scan(Segmented(m), &zipped)
        .into_iter()
        .map(|(_, v)| v)
        .collect()
}

/// Inclusive segmented scan (parallel two-pass under the lifted monoid).
pub fn par_seg_inclusive_scan<M: Monoid>(m: M, values: &[M::Elem], flags: &[bool]) -> Vec<M::Elem> {
    let zipped = zip_flags::<M>(values, flags);
    par_inclusive_scan(Segmented(m), &zipped)
        .into_iter()
        .map(|(_, v)| v)
        .collect()
}

/// Exclusive segmented scan (serial): each segment starts from the
/// identity; `out[i]` excludes `values[i]`.
pub fn seg_exclusive_scan<M: Monoid>(m: M, values: &[M::Elem], flags: &[bool]) -> Vec<M::Elem> {
    assert_eq!(values.len(), flags.len());
    let mut out = Vec::with_capacity(values.len());
    let mut acc = m.identity();
    for (i, &v) in values.iter().enumerate() {
        if i == 0 || flags[i] {
            acc = m.identity();
        }
        out.push(acc);
        acc = m.combine(acc, v);
    }
    out
}

/// Per-segment totals, in segment order.
pub fn segment_totals<M: Monoid>(m: M, values: &[M::Elem], flags: &[bool]) -> Vec<M::Elem> {
    assert_eq!(values.len(), flags.len());
    let mut out = Vec::new();
    let mut acc = m.identity();
    let mut open = false;
    for (i, &v) in values.iter().enumerate() {
        if i == 0 || flags[i] {
            if open {
                out.push(acc);
            }
            acc = m.identity();
            open = true;
        }
        acc = m.combine(acc, v);
    }
    if open {
        out.push(acc);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::{AddUsize, MaxF64};

    #[test]
    fn seg_inclusive_basic() {
        let values = [1usize, 2, 3, 4, 5];
        let flags = [true, false, true, false, false];
        assert_eq!(
            seg_inclusive_scan(AddUsize, &values, &flags),
            vec![1, 3, 3, 7, 12]
        );
    }

    #[test]
    fn seg_exclusive_basic() {
        let values = [1usize, 2, 3, 4, 5];
        let flags = [true, false, true, false, false];
        assert_eq!(
            seg_exclusive_scan(AddUsize, &values, &flags),
            vec![0, 1, 0, 3, 7]
        );
    }

    #[test]
    fn first_position_starts_segment_without_flag() {
        let values = [10usize, 20];
        let flags = [false, false];
        assert_eq!(seg_inclusive_scan(AddUsize, &values, &flags), vec![10, 30]);
    }

    #[test]
    fn every_position_flagged_is_identity_scan() {
        let values = [4usize, 5, 6];
        let flags = [true, true, true];
        assert_eq!(seg_inclusive_scan(AddUsize, &values, &flags), vec![4, 5, 6]);
        assert_eq!(seg_exclusive_scan(AddUsize, &values, &flags), vec![0, 0, 0]);
    }

    #[test]
    fn segment_totals_basic() {
        let values = [1usize, 2, 3, 4, 5];
        let flags = [true, false, true, false, false];
        assert_eq!(segment_totals(AddUsize, &values, &flags), vec![3, 12]);
    }

    #[test]
    fn segmented_max() {
        let values = [1.0, 5.0, 2.0, 7.0, 3.0];
        let flags = [true, false, false, true, false];
        assert_eq!(
            seg_inclusive_scan(MaxF64, &values, &flags),
            vec![1.0, 5.0, 5.0, 7.0, 7.0]
        );
    }

    #[test]
    fn par_matches_serial_large() {
        let n = crate::PAR_THRESHOLD * 2 + 3;
        let values: Vec<usize> = (0..n).map(|i| i % 11).collect();
        let flags: Vec<bool> = (0..n).map(|i| i % 37 == 0).collect();
        assert_eq!(
            par_seg_inclusive_scan(AddUsize, &values, &flags),
            seg_inclusive_scan(AddUsize, &values, &flags)
        );
    }

    #[test]
    fn empty_input() {
        let values: [usize; 0] = [];
        let flags: [bool; 0] = [];
        assert!(seg_inclusive_scan(AddUsize, &values, &flags).is_empty());
        assert!(segment_totals(AddUsize, &values, &flags).is_empty());
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_lengths_panic() {
        let _ = seg_inclusive_scan(AddUsize, &[1usize, 2], &[true]);
    }
}
