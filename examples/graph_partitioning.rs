//! Graph partitioning via sphere separators — the application that
//! motivated the MTTV separator machinery the paper builds on.
//!
//! Pipeline: points → k-NN graph (§6 algorithm) → recursive sphere-
//! separator bisection → p-way partition with a small edge cut. This is
//! the "nicely embedded graph" promise of the abstract made executable:
//! the output of the paper's algorithm is exactly the kind of graph its
//! separator machinery then partitions well.
//!
//! ```sh
//! cargo run --release --example graph_partitioning
//! ```

use rand::SeedableRng;
use sepdc::core::graph_separator::{recursive_bisection, sphere_graph_separator};
use sepdc::core::{parallel_knn, KnnDcConfig, KnnGraph};
use sepdc::separator::SeparatorConfig;
use sepdc::workloads::Workload;

fn main() {
    let n = 16_000;
    let k = 3;
    println!("building the {k}-NN graph of {n} clustered 2D points…");
    let points = Workload::Clusters.generate::<2>(n, 99);
    let out = parallel_knn::<2, 3>(&points, &KnnDcConfig::new(k).with_seed(1));
    let graph = KnnGraph::from_knn(&out.knn);
    println!(
        "graph: {} vertices, {} edges, max degree {}\n",
        graph.num_vertices(),
        graph.num_edges(),
        graph.max_degree()
    );

    // One vertex separator (the o(n) W of the introduction).
    let cfg = SeparatorConfig::default();
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
    let gs =
        sphere_graph_separator::<2, 3, _>(&points, &graph, &cfg, 6, &mut rng).expect("splittable");
    gs.verify(&graph).expect("separator property");
    println!(
        "single sphere separator: |W| = {} ({:.2}·√n), sides {} / {}, balance {:.3}",
        gs.separator.len(),
        gs.separator.len() as f64 / (n as f64).sqrt(),
        gs.side_a.len(),
        gs.side_b.len(),
        gs.balance()
    );

    // Recursive bisection into p parts.
    println!(
        "\n{:>6} {:>10} {:>12} {:>14}",
        "parts", "edge cut", "cut/edges", "largest block"
    );
    for parts in [2usize, 4, 8, 16] {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(parts as u64);
        let (block, cut) = recursive_bisection::<2, 3, _>(&points, &graph, parts, &cfg, &mut rng);
        let mut counts = std::collections::HashMap::new();
        for &b in &block {
            *counts.entry(b).or_insert(0usize) += 1;
        }
        let largest = counts.values().copied().max().unwrap_or(0);
        println!(
            "{:>6} {:>10} {:>11.1}% {:>14}",
            parts,
            cut,
            100.0 * cut as f64 / graph.num_edges() as f64,
            largest
        );
    }
    println!(
        "\nthe cut fraction stays small as parts double — geometric graphs\n\
         partition well, which is why sphere separators matter."
    );
}
