//! Axis-aligned bounding boxes.
//!
//! Used for coordinate normalization (the unit-time separator pipeline
//! scales its sample into a box before lifting) and for spatial pruning in
//! the baselines.

use crate::ball::Ball;
use crate::point::Point;
use crate::shape::Separator;

/// A (possibly empty) axis-aligned box `[lo, hi]`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Aabb<const D: usize> {
    /// Component-wise minimum corner.
    pub lo: Point<D>,
    /// Component-wise maximum corner.
    pub hi: Point<D>,
}

impl<const D: usize> Aabb<D> {
    /// The empty box (inverted bounds; absorbs under [`Aabb::union_point`]).
    pub fn empty() -> Self {
        Aabb {
            lo: Point::splat(f64::INFINITY),
            hi: Point::splat(f64::NEG_INFINITY),
        }
    }

    /// Bounding box of a point set (empty box for an empty slice).
    pub fn of_points(points: &[Point<D>]) -> Self {
        let mut b = Self::empty();
        for p in points {
            b = b.union_point(p);
        }
        b
    }

    /// `true` when no point has been absorbed.
    pub fn is_empty(&self) -> bool {
        (0..D).any(|i| self.lo[i] > self.hi[i])
    }

    /// Grow to include `p`.
    #[must_use]
    pub fn union_point(&self, p: &Point<D>) -> Self {
        Aabb {
            lo: self.lo.min(p),
            hi: self.hi.max(p),
        }
    }

    /// Smallest box containing both operands (the empty box is the
    /// identity; component-wise min/max, so inverted bounds never poison a
    /// non-empty partner).
    #[must_use]
    pub fn union(&self, other: &Aabb<D>) -> Self {
        Aabb {
            lo: self.lo.min(&other.lo),
            hi: self.hi.max(&other.hi),
        }
    }

    /// Box center (undefined on empty boxes).
    pub fn center(&self) -> Point<D> {
        (self.lo + self.hi) / 2.0
    }

    /// Largest side length (0 for empty/degenerate boxes).
    pub fn max_extent(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        (0..D).map(|i| self.hi[i] - self.lo[i]).fold(0.0, f64::max)
    }

    /// Axis with the largest extent.
    pub fn widest_axis(&self) -> usize {
        (0..D)
            .max_by(|&a, &b| {
                (self.hi[a] - self.lo[a])
                    .partial_cmp(&(self.hi[b] - self.lo[b]))
                    .expect("non-finite extent")
            })
            .unwrap_or(0)
    }

    /// `true` when `p` lies in the closed box.
    pub fn contains(&self, p: &Point<D>) -> bool {
        (0..D).all(|i| self.lo[i] <= p[i] && p[i] <= self.hi[i])
    }

    /// Squared distance from `p` to the box (0 inside).
    pub fn dist_sq(&self, p: &Point<D>) -> f64 {
        let mut acc = 0.0;
        for i in 0..D {
            let d = if p[i] < self.lo[i] {
                self.lo[i] - p[i]
            } else if p[i] > self.hi[i] {
                p[i] - self.hi[i]
            } else {
                0.0
            };
            acc += d * d;
        }
        acc
    }

    /// `true` when the closed ball intersects the box.
    pub fn intersects_ball(&self, b: &Ball<D>) -> bool {
        self.dist_sq(&b.center) <= b.radius * b.radius
    }

    /// Conservative test: `true` when the box *may* straddle the separator
    /// surface (i.e. it is not provably on one side). Exact for
    /// halfspaces; for spheres uses the box-to-center distance interval.
    pub fn may_cross(&self, sep: &Separator<D>) -> bool {
        match sep {
            Separator::Halfspace(h) => {
                // Interval of the linear functional over the box corners.
                let mut lo = -h.offset;
                let mut hi = -h.offset;
                for i in 0..D {
                    let a = h.normal[i] * self.lo[i];
                    let b = h.normal[i] * self.hi[i];
                    lo += a.min(b);
                    hi += a.max(b);
                }
                lo <= 0.0 && hi >= 0.0
            }
            Separator::Sphere(s) => {
                let dmin = self.dist_sq(&s.center).sqrt();
                let dmax = (0..D)
                    .map(|i| {
                        let f = (s.center[i] - self.lo[i])
                            .abs()
                            .max((s.center[i] - self.hi[i]).abs());
                        f * f
                    })
                    .sum::<f64>()
                    .sqrt();
                dmin <= s.radius && dmax >= s.radius
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sphere::Sphere;
    use crate::Hyperplane;

    #[test]
    fn empty_box_semantics() {
        let b = Aabb::<2>::empty();
        assert!(b.is_empty());
        assert_eq!(b.max_extent(), 0.0);
        let b2 = b.union_point(&Point::from([1.0, 2.0]));
        assert!(!b2.is_empty());
        assert_eq!(b2.lo, b2.hi);
    }

    #[test]
    fn of_points_bounds_everything() {
        let pts = vec![
            Point::<3>::from([0.0, 5.0, -1.0]),
            Point::from([2.0, -3.0, 4.0]),
            Point::from([1.0, 1.0, 1.0]),
        ];
        let b = Aabb::of_points(&pts);
        for p in &pts {
            assert!(b.contains(p));
        }
        assert_eq!(b.lo.coords(), &[0.0, -3.0, -1.0]);
        assert_eq!(b.hi.coords(), &[2.0, 5.0, 4.0]);
        assert_eq!(b.widest_axis(), 1);
        assert_eq!(b.max_extent(), 8.0);
    }

    #[test]
    fn union_of_boxes() {
        let a = Aabb {
            lo: Point::<2>::from([0.0, 0.0]),
            hi: Point::from([1.0, 1.0]),
        };
        let b = Aabb {
            lo: Point::from([-1.0, 0.5]),
            hi: Point::from([0.5, 3.0]),
        };
        let u = a.union(&b);
        assert_eq!(u.lo.coords(), &[-1.0, 0.0]);
        assert_eq!(u.hi.coords(), &[1.0, 3.0]);
        // Empty is the identity on both sides.
        assert_eq!(a.union(&Aabb::empty()), a);
        assert_eq!(Aabb::empty().union(&a), a);
    }

    #[test]
    fn dist_sq_inside_and_outside() {
        let b = Aabb {
            lo: Point::<2>::from([0.0, 0.0]),
            hi: Point::from([1.0, 1.0]),
        };
        assert_eq!(b.dist_sq(&Point::from([0.5, 0.5])), 0.0);
        assert_eq!(b.dist_sq(&Point::from([2.0, 0.5])), 1.0);
        assert_eq!(b.dist_sq(&Point::from([2.0, 2.0])), 2.0);
    }

    #[test]
    fn ball_intersection() {
        let b = Aabb {
            lo: Point::<2>::from([0.0, 0.0]),
            hi: Point::from([1.0, 1.0]),
        };
        assert!(b.intersects_ball(&Ball::new(Point::from([2.0, 0.5]), 1.0)));
        assert!(!b.intersects_ball(&Ball::new(Point::from([3.0, 0.5]), 1.0)));
    }

    #[test]
    fn may_cross_halfspace_exact() {
        let b = Aabb {
            lo: Point::<2>::from([0.0, 0.0]),
            hi: Point::from([1.0, 1.0]),
        };
        assert!(b.may_cross(&Hyperplane::axis_aligned(0, 0.5).into()));
        assert!(!b.may_cross(&Hyperplane::axis_aligned(0, 2.0).into()));
        assert!(!b.may_cross(&Hyperplane::axis_aligned(0, -1.0).into()));
        // Boundary-touching counts as crossing (closed).
        assert!(b.may_cross(&Hyperplane::axis_aligned(0, 1.0).into()));
    }

    #[test]
    fn may_cross_sphere() {
        let b = Aabb {
            lo: Point::<2>::from([0.0, 0.0]),
            hi: Point::from([1.0, 1.0]),
        };
        // Sphere surface passing through the box.
        assert!(b.may_cross(&Sphere::new(Point::from([0.5, 0.5]), 0.4).into()));
        // Tiny sphere buried inside: surface inside box — crosses.
        assert!(b.may_cross(&Sphere::new(Point::from([0.5, 0.5]), 0.1).into()));
        // Box fully inside a huge sphere: no crossing.
        assert!(!b.may_cross(&Sphere::new(Point::from([0.5, 0.5]), 10.0).into()));
        // Box fully outside a far sphere: no crossing.
        assert!(!b.may_cross(&Sphere::new(Point::from([10.0, 10.0]), 1.0).into()));
    }
}
