//! Scans (prefix operations) under arbitrary monoids.
//!
//! The parallel versions use the classical two-pass blocked algorithm:
//! reduce each block, scan the block sums serially (block count is small),
//! then re-scan each block seeded with its prefix. For associative *and
//! exact* monoids (integers, min/max) the parallel result is bit-identical
//! to the serial one; for floating-point addition the result is a valid
//! re-association (tests compare with a tolerance).

use rayon::prelude::*;

/// An associative operation with identity, over `Copy` elements.
///
/// Implementors must satisfy associativity; the parallel scans re-associate
/// freely.
pub trait Monoid: Copy + Send + Sync {
    /// Element type.
    type Elem: Copy + Send + Sync;
    /// Identity element.
    fn identity(&self) -> Self::Elem;
    /// Associative combine.
    fn combine(&self, a: Self::Elem, b: Self::Elem) -> Self::Elem;
}

/// Addition monoid over `usize` — the SCAN of the paper.
#[derive(Clone, Copy, Debug, Default)]
pub struct AddUsize;

impl Monoid for AddUsize {
    type Elem = usize;
    fn identity(&self) -> usize {
        0
    }
    fn combine(&self, a: usize, b: usize) -> usize {
        a + b
    }
}

/// Addition monoid over `f64`.
#[derive(Clone, Copy, Debug, Default)]
pub struct AddF64;

impl Monoid for AddF64 {
    type Elem = f64;
    fn identity(&self) -> f64 {
        0.0
    }
    fn combine(&self, a: f64, b: f64) -> f64 {
        a + b
    }
}

/// Maximum monoid over `f64` (identity `-inf`).
#[derive(Clone, Copy, Debug, Default)]
pub struct MaxF64;

impl Monoid for MaxF64 {
    type Elem = f64;
    fn identity(&self) -> f64 {
        f64::NEG_INFINITY
    }
    fn combine(&self, a: f64, b: f64) -> f64 {
        a.max(b)
    }
}

/// Minimum monoid over `f64` (identity `+inf`).
#[derive(Clone, Copy, Debug, Default)]
pub struct MinF64;

impl Monoid for MinF64 {
    type Elem = f64;
    fn identity(&self) -> f64 {
        f64::INFINITY
    }
    fn combine(&self, a: f64, b: f64) -> f64 {
        a.min(b)
    }
}

/// Logical AND monoid — used by the reachability check of Lemma 6.3
/// ("are all nodes on the root path labeled 1?").
#[derive(Clone, Copy, Debug, Default)]
pub struct AndBool;

impl Monoid for AndBool {
    type Elem = bool;
    fn identity(&self) -> bool {
        true
    }
    fn combine(&self, a: bool, b: bool) -> bool {
        a && b
    }
}

/// Inclusive scan: `out[i] = x_0 ⊕ … ⊕ x_i`.
///
/// ```
/// use sepdc_scan::scan::AddUsize;
/// use sepdc_scan::inclusive_scan;
/// assert_eq!(inclusive_scan(AddUsize, &[1, 2, 3]), vec![1, 3, 6]);
/// ```
pub fn inclusive_scan<M: Monoid>(m: M, xs: &[M::Elem]) -> Vec<M::Elem> {
    let mut out = Vec::with_capacity(xs.len());
    let mut acc = m.identity();
    for &x in xs {
        acc = m.combine(acc, x);
        out.push(acc);
    }
    out
}

/// Exclusive scan: `out[i] = x_0 ⊕ … ⊕ x_{i-1}`, `out[0] = identity`.
/// Returns the scan vector and the total reduction.
pub fn exclusive_scan<M: Monoid>(m: M, xs: &[M::Elem]) -> (Vec<M::Elem>, M::Elem) {
    let mut out = Vec::with_capacity(xs.len());
    let mut acc = m.identity();
    for &x in xs {
        out.push(acc);
        acc = m.combine(acc, x);
    }
    (out, acc)
}

/// Block size used by the parallel scans.
fn block_len(n: usize) -> usize {
    let threads = rayon::current_num_threads().max(1);
    // 4 blocks per thread for load balance, but never tiny blocks.
    (n / (4 * threads)).max(4096).max(1)
}

/// Parallel inclusive scan (two-pass blocked).
pub fn par_inclusive_scan<M: Monoid>(m: M, xs: &[M::Elem]) -> Vec<M::Elem> {
    if xs.len() < crate::PAR_THRESHOLD {
        return inclusive_scan(m, xs);
    }
    let bl = block_len(xs.len());
    // Pass 1: per-block reductions.
    let sums: Vec<M::Elem> = xs
        .par_chunks(bl)
        .map(|chunk| chunk.iter().fold(m.identity(), |a, &b| m.combine(a, b)))
        .collect();
    // Serial scan of the (few) block sums.
    let (offsets, _) = exclusive_scan(m, &sums);
    // Pass 2: per-block scan seeded with the block prefix.
    let mut out = vec![m.identity(); xs.len()];
    out.par_chunks_mut(bl)
        .zip(xs.par_chunks(bl))
        .zip(offsets.par_iter())
        .for_each(|((o, chunk), &seed)| {
            let mut acc = seed;
            for (dst, &x) in o.iter_mut().zip(chunk) {
                acc = m.combine(acc, x);
                *dst = acc;
            }
        });
    out
}

/// Parallel exclusive scan. Returns the scan vector and the total.
pub fn par_exclusive_scan<M: Monoid>(m: M, xs: &[M::Elem]) -> (Vec<M::Elem>, M::Elem) {
    if xs.len() < crate::PAR_THRESHOLD {
        return exclusive_scan(m, xs);
    }
    let bl = block_len(xs.len());
    let sums: Vec<M::Elem> = xs
        .par_chunks(bl)
        .map(|chunk| chunk.iter().fold(m.identity(), |a, &b| m.combine(a, b)))
        .collect();
    let (offsets, total) = exclusive_scan(m, &sums);
    let mut out = vec![m.identity(); xs.len()];
    out.par_chunks_mut(bl)
        .zip(xs.par_chunks(bl))
        .zip(offsets.par_iter())
        .for_each(|((o, chunk), &seed)| {
            let mut acc = seed;
            for (dst, &x) in o.iter_mut().zip(chunk) {
                *dst = acc;
                acc = m.combine(acc, x);
            }
        });
    (out, total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inclusive_scan_usize() {
        let xs = [1usize, 2, 3, 4];
        assert_eq!(inclusive_scan(AddUsize, &xs), vec![1, 3, 6, 10]);
    }

    #[test]
    fn exclusive_scan_usize() {
        let xs = [1usize, 2, 3, 4];
        let (scan, total) = exclusive_scan(AddUsize, &xs);
        assert_eq!(scan, vec![0, 1, 3, 6]);
        assert_eq!(total, 10);
    }

    #[test]
    fn empty_scans() {
        let xs: [usize; 0] = [];
        assert!(inclusive_scan(AddUsize, &xs).is_empty());
        let (scan, total) = exclusive_scan(AddUsize, &xs);
        assert!(scan.is_empty());
        assert_eq!(total, 0);
    }

    #[test]
    fn max_scan() {
        let xs = [3.0, 1.0, 4.0, 1.0, 5.0];
        assert_eq!(inclusive_scan(MaxF64, &xs), vec![3.0, 3.0, 4.0, 4.0, 5.0]);
    }

    #[test]
    fn min_scan() {
        let xs = [3.0, 1.0, 4.0, 0.5];
        assert_eq!(inclusive_scan(MinF64, &xs), vec![3.0, 1.0, 1.0, 0.5]);
    }

    #[test]
    fn and_scan_models_root_path_reachability() {
        let labels = [true, true, false, true];
        let scan = inclusive_scan(AndBool, &labels);
        assert_eq!(scan, vec![true, true, false, false]);
    }

    #[test]
    fn par_matches_serial_exact_monoid() {
        let n = crate::PAR_THRESHOLD * 3 + 17;
        let xs: Vec<usize> = (0..n).map(|i| (i * 2654435761) % 97).collect();
        assert_eq!(
            par_inclusive_scan(AddUsize, &xs),
            inclusive_scan(AddUsize, &xs)
        );
        let (ps, pt) = par_exclusive_scan(AddUsize, &xs);
        let (ss, st) = exclusive_scan(AddUsize, &xs);
        assert_eq!(ps, ss);
        assert_eq!(pt, st);
    }

    #[test]
    fn par_small_input_delegates() {
        let xs = [5usize, 6, 7];
        assert_eq!(par_inclusive_scan(AddUsize, &xs), vec![5, 11, 18]);
    }

    #[test]
    fn par_float_scan_close_to_serial() {
        let n = crate::PAR_THRESHOLD * 2 + 5;
        let xs: Vec<f64> = (0..n).map(|i| ((i % 13) as f64 - 6.0) * 0.125).collect();
        let par = par_inclusive_scan(AddF64, &xs);
        let ser = inclusive_scan(AddF64, &xs);
        for (a, b) in par.iter().zip(&ser) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn par_max_scan_bit_identical() {
        let n = crate::PAR_THRESHOLD * 2;
        let xs: Vec<f64> = (0..n).map(|i| ((i * 31) % 1009) as f64).collect();
        assert_eq!(par_inclusive_scan(MaxF64, &xs), inclusive_scan(MaxF64, &xs));
    }
}
