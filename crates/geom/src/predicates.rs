//! Determinant-based geometric predicates.
//!
//! Independent formulations of orientation and in-sphere tests, used to
//! cross-validate the distance-based classification in [`crate::sphere`]
//! and as a substrate for degenerate-input handling. Determinants are
//! evaluated in `f64` with a relative error cutoff — adequate for the
//! bounded, well-scaled inputs this workspace generates (the workload
//! generators emit `O(1)` coordinates; the MTTV pipeline normalizes into a
//! unit box before any delicate computation).

use crate::matrix::DMatrix;
use crate::point::Point;

/// Orientation of `D + 1` points in `R^D`: the sign of the determinant of
/// the edge matrix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Orientation {
    /// Positive determinant.
    Positive,
    /// Negative determinant.
    Negative,
    /// Determinant within tolerance of zero (affinely degenerate).
    Degenerate,
}

/// Determinant of a square [`DMatrix`] by LU elimination (partial
/// pivoting).
pub fn determinant(m: &DMatrix) -> f64 {
    assert_eq!(m.rows(), m.cols(), "determinant of a non-square matrix");
    let n = m.rows();
    let mut a = m.clone();
    let mut det = 1.0;
    for col in 0..n {
        // Pivot.
        let mut best = col;
        for r in col + 1..n {
            if a[(r, col)].abs() > a[(best, col)].abs() {
                best = r;
            }
        }
        if a[(best, col)] == 0.0 {
            return 0.0;
        }
        if best != col {
            for c in 0..n {
                let tmp = a[(col, c)];
                a[(col, c)] = a[(best, c)];
                a[(best, c)] = tmp;
            }
            det = -det;
        }
        det *= a[(col, col)];
        for r in col + 1..n {
            let f = a[(r, col)] / a[(col, col)];
            for c in col..n {
                let v = a[(col, c)];
                a[(r, c)] -= f * v;
            }
        }
    }
    det
}

/// Orientation of the simplex `p[0], …, p[D]` in `R^D`.
///
/// # Panics
/// Panics unless exactly `D + 1` points are given.
pub fn orientation<const D: usize>(points: &[Point<D>], tol: f64) -> Orientation {
    assert_eq!(points.len(), D + 1, "orientation needs D + 1 points");
    let m = DMatrix::from_fn(D, D, |r, c| points[r + 1][c] - points[0][c]);
    let det = determinant(&m);
    // Relative cutoff against the magnitude of the entries.
    let scale: f64 = points
        .iter()
        .flat_map(|p| p.coords().iter())
        .fold(1.0f64, |a, &b| a.max(b.abs()));
    let cutoff = tol * scale.powi(D as i32);
    if det > cutoff {
        Orientation::Positive
    } else if det < -cutoff {
        Orientation::Negative
    } else {
        Orientation::Degenerate
    }
}

/// In-sphere test: is `q` inside the circumsphere of the `D + 1` points?
///
/// Uses the classical lifted determinant: the sign of
/// `det [ p_i - q , |p_i - q|² ]` decides containment, independent of the
/// explicit circumcenter. Returns `None` when the defining points are
/// affinely degenerate (no unique circumsphere).
pub fn in_circumsphere<const D: usize>(
    points: &[Point<D>],
    q: &Point<D>,
    tol: f64,
) -> Option<bool> {
    assert_eq!(points.len(), D + 1, "in_circumsphere needs D + 1 points");
    if orientation(points, tol) == Orientation::Degenerate {
        return None;
    }
    let m = DMatrix::from_fn(D + 1, D + 1, |r, c| {
        if c < D {
            points[r][c] - q[c]
        } else {
            points[r].dist_sq(q)
        }
    });
    let det = determinant(&m);
    // Orient the sign: the lifted determinant's meaning flips with the
    // orientation of the base simplex and with the parity of the row
    // count (moving the lifted column across `D` coordinate columns
    // contributes `(-1)^D`).
    let base = DMatrix::from_fn(D, D, |r, c| points[r + 1][c] - points[0][c]);
    let orient = determinant(&base);
    let signed = if D.is_multiple_of(2) {
        det * orient
    } else {
        -det * orient
    };
    Some(signed > 0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sphere::Sphere;

    #[test]
    fn determinant_identity_and_swap() {
        let id = DMatrix::from_fn(3, 3, |r, c| if r == c { 1.0 } else { 0.0 });
        assert_eq!(determinant(&id), 1.0);
        let swapped = DMatrix::from_fn(3, 3, |r, c| {
            let rr = if r == 0 {
                1
            } else if r == 1 {
                0
            } else {
                r
            };
            if rr == c {
                1.0
            } else {
                0.0
            }
        });
        assert_eq!(determinant(&swapped), -1.0);
    }

    #[test]
    fn determinant_known_value() {
        // det [[2, 1], [1, 3]] = 5.
        let m = DMatrix::from_fn(2, 2, |r, c| [[2.0, 1.0], [1.0, 3.0]][r][c]);
        assert!((determinant(&m) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn determinant_singular() {
        let m = DMatrix::from_fn(2, 2, |_, c| c as f64 + 1.0);
        assert_eq!(determinant(&m), 0.0);
    }

    #[test]
    fn orientation_2d() {
        let ccw = [
            Point::<2>::from([0.0, 0.0]),
            Point::from([1.0, 0.0]),
            Point::from([0.0, 1.0]),
        ];
        assert_eq!(orientation(&ccw, 1e-12), Orientation::Positive);
        let cw = [ccw[0], ccw[2], ccw[1]];
        assert_eq!(orientation(&cw, 1e-12), Orientation::Negative);
        let line = [
            Point::<2>::from([0.0, 0.0]),
            Point::from([1.0, 1.0]),
            Point::from([2.0, 2.0]),
        ];
        assert_eq!(orientation(&line, 1e-12), Orientation::Degenerate);
    }

    #[test]
    fn in_circumsphere_agrees_with_explicit_sphere() {
        let tri = [
            Point::<2>::from([1.0, 0.0]),
            Point::from([0.0, 1.0]),
            Point::from([-1.0, 0.0]),
        ];
        let s = Sphere::circumsphere(&tri, 1e-12).unwrap();
        for q in [
            Point::from([0.0, 0.0]),
            Point::from([0.5, 0.5]),
            Point::from([2.0, 0.0]),
            Point::from([0.9, 0.1]),
            Point::from([-0.3, -0.8]),
        ] {
            let pred = in_circumsphere(&tri, &q, 1e-12).unwrap();
            let explicit = s.signed_distance(&q) < 0.0;
            assert_eq!(pred, explicit, "mismatch at {q:?}");
        }
    }

    #[test]
    fn in_circumsphere_3d_agrees() {
        let tet = [
            Point::<3>::from([1.0, 0.0, 0.0]),
            Point::from([0.0, 1.0, 0.0]),
            Point::from([0.0, 0.0, 1.0]),
            Point::from([-1.0, 0.0, 0.0]),
        ];
        let s = Sphere::circumsphere(&tet, 1e-12).unwrap();
        for q in [
            Point::from([0.0, 0.0, 0.0]),
            Point::from([0.9, 0.9, 0.9]),
            Point::from([0.1, 0.1, -0.1]),
        ] {
            let pred = in_circumsphere(&tet, &q, 1e-12).unwrap();
            assert_eq!(pred, s.signed_distance(&q) < 0.0, "at {q:?}");
        }
    }

    #[test]
    fn in_circumsphere_4d_agrees() {
        // Cross-validate the parity-corrected sign in one more dimension.
        let simplex = [
            Point::<4>::from([1.0, 0.0, 0.0, 0.0]),
            Point::from([0.0, 1.0, 0.0, 0.0]),
            Point::from([0.0, 0.0, 1.0, 0.0]),
            Point::from([0.0, 0.0, 0.0, 1.0]),
            Point::from([-1.0, 0.0, 0.0, 0.0]),
        ];
        let s = Sphere::circumsphere(&simplex, 1e-12).unwrap();
        for q in [
            Point::from([0.0, 0.0, 0.0, 0.0]),
            Point::from([0.9, 0.9, 0.0, 0.0]),
            Point::from([0.2, -0.1, 0.1, 0.3]),
        ] {
            let pred = in_circumsphere(&simplex, &q, 1e-12).unwrap();
            assert_eq!(pred, s.signed_distance(&q) < 0.0, "at {q:?}");
        }
    }

    #[test]
    fn in_circumsphere_random_cross_validation() {
        // Many random triangles + probes against the explicit circumsphere.
        let mut seed = 0x243F6A8885A308D3u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed % 2001) as f64 / 1000.0 - 1.0
        };
        for _ in 0..200 {
            let tri = [
                Point::<2>::from([next(), next()]),
                Point::from([next(), next()]),
                Point::from([next(), next()]),
            ];
            let Some(s) = Sphere::circumsphere(&tri, 1e-9) else {
                continue;
            };
            let q = Point::from([next(), next()]);
            let sd = s.signed_distance(&q);
            if sd.abs() < 1e-6 {
                continue; // too close to the surface for either method
            }
            if let Some(pred) = in_circumsphere(&tri, &q, 1e-9) {
                assert_eq!(pred, sd < 0.0, "tri {tri:?} q {q:?}");
            }
        }
    }

    #[test]
    fn in_circumsphere_degenerate_is_none() {
        let line = [
            Point::<2>::from([0.0, 0.0]),
            Point::from([1.0, 0.0]),
            Point::from([2.0, 0.0]),
        ];
        assert!(in_circumsphere(&line, &Point::from([0.5, 0.5]), 1e-9).is_none());
    }
}
