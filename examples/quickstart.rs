//! Quickstart: build the k-nearest-neighbor graph of a point cloud with the
//! paper's `O(log n)`-depth sphere-separator algorithm, and sanity-check it
//! against the brute-force oracle.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use sepdc::core::{brute_force_knn, parallel_knn, KnnDcConfig, KnnGraph};
use sepdc::workloads::Workload;

fn main() {
    let n = 20_000;
    let k = 3;
    println!("generating {n} uniform points in the unit square…");
    let points = Workload::UniformCube.generate::<2>(n, 42);

    // The paper's Section 6 algorithm. The two const parameters are the
    // dimension D and its stereographic lift dimension E = D + 1.
    let cfg = KnnDcConfig::new(k).with_seed(7);
    let t0 = std::time::Instant::now();
    let out = parallel_knn::<2, 3>(&points, &cfg);
    let elapsed = t0.elapsed();

    println!("parallel_knn finished in {elapsed:.2?}");
    println!(
        "  cost profile: work = {}, critical-path depth = {} rounds \
         (log2 n = {:.1})",
        out.cost.work,
        out.cost.depth,
        (n as f64).log2()
    );
    println!(
        "  corrections: {} fast, {} punts ({} threshold, {} marching)",
        out.stats.fast_corrections,
        out.stats.punts_threshold + out.stats.punts_marching,
        out.stats.punts_threshold,
        out.stats.punts_marching
    );
    println!(
        "  partition tree: height {} over {} leaves",
        out.stats.height,
        out.tree.leaves()
    );

    // Symmetrize into the k-NN graph (Definition 1.1).
    let graph = KnnGraph::from_knn(&out.knn);
    println!(
        "k-NN graph: {} vertices, {} edges, max degree {}, {} component(s)",
        graph.num_vertices(),
        graph.num_edges(),
        graph.max_degree(),
        graph.connected_components()
    );

    // Verify on a subsample against the O(n²) oracle (full oracle on 20k
    // points is fine too, just slower).
    let sample: Vec<_> = points.iter().copied().take(2_000).collect();
    let fast = parallel_knn::<2, 3>(&sample, &cfg);
    let oracle = brute_force_knn(&sample, k);
    fast.knn
        .same_distances(&oracle, 1e-9)
        .expect("parallel result must match the oracle");
    println!("verified against the brute-force oracle on 2k points ✓");
}
