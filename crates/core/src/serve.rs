//! Parallel batch-query serving engine — the throughput-oriented read
//! path over the Section 3 search structure.
//!
//! [`QueryTree`] answers one probe in `O(log n + m₀)`; this module is for
//! the *serving* shape of that workload — build once, answer millions of
//! probes. A batch of probes is split into fixed-size chunks, chunks are
//! served in parallel over the vendored `rayon::join` thread budget, and
//! every chunk writes into one reusable output arena instead of
//! allocating a `Vec<u32>` per probe. Results come back as a flat
//! CSR-style [`BatchResult`] (one offsets array + one ids array) rather
//! than a `Vec<Vec<u32>>` — a single allocation pair for the whole batch,
//! cache-linear to consume.
//!
//! # Determinism contract
//!
//! The returned [`BatchResult`] is a **pure function of the tree and the
//! probe slice**: chunk boundaries depend only on
//! [`ServeConfig::chunk_size`], chunk outputs are concatenated in chunk
//! order, and per-probe hit ids keep leaf order — so every thread count
//! (including 1) and every chunk size produces byte-identical output.
//! This is the same discipline the build path established for the k-NN
//! drivers (DESIGN.md §8/§11).
//!
//! # Serving quickstart
//!
//! Build a tree over a neighborhood system once, then serve probe batches
//! against it (this example is the README's serving quickstart and runs
//! as a doctest):
//!
//! ```
//! use sepdc_core::serve::{CoverPredicate, ServeConfig};
//! use sepdc_core::{kdtree_all_knn, NeighborhoodSystem, QueryTree, QueryTreeConfig};
//! use sepdc_workloads::Workload;
//!
//! // A k-ply neighborhood system: the 2-NN balls of 2 000 points.
//! let points = Workload::UniformCube.generate::<2>(2_000, 42);
//! let system = NeighborhoodSystem::from_knn(&points, &kdtree_all_knn(&points, 2));
//!
//! // Build once (the write path) …
//! let tree = QueryTree::build::<3>(system.balls(), QueryTreeConfig::default(), 7);
//!
//! // … serve batches forever (the read path).
//! let probes = Workload::UniformCube.generate::<2>(10_000, 99);
//! let out = tree
//!     .try_serve(&probes, CoverPredicate::Closed, &ServeConfig::default())
//!     .unwrap();
//! assert_eq!(out.result.len(), probes.len());
//! for (probe, hits) in probes.iter().zip(out.result.iter()) {
//!     for &id in hits {
//!         assert!(system.balls()[id as usize].contains(probe));
//!     }
//! }
//! println!(
//!     "{} probes, {} hits, mean query cost {:.1}",
//!     out.stats.probes,
//!     out.stats.hits,
//!     out.stats.mean_cost()
//! );
//! ```
//!
//! The `covering` / `covering_interior` point queries and their batch
//! wrappers ([`QueryTree::batch_covering`],
//! [`QueryTree::batch_covering_interior`]) are thin front-ends over
//! [`QueryTree::try_serve`]; the `sepdc query` CLI subcommand and the
//! `bench_query_throughput` harness drive the same engine end to end.

pub use crate::config::ServeConfig;

use crate::config::eps_cover_scale;
use crate::error::{validate_points, SepdcError};
use crate::query::QueryTree;
use crate::report::{precision_counters, Phase, RunRecorder, RunReport, RUN_REPORT_VERSION};
use sepdc_geom::point::Point;
use sepdc_geom::soa::FilterStats;

/// Which containment predicate a batch evaluates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CoverPredicate {
    /// Closed-ball containment (`‖p − c‖ ≤ r`): the neighborhood query
    /// problem as stated in Section 3.
    Closed,
    /// Open-interior containment (`‖p − c‖ < r`): the predicate the
    /// correction steps need — a point strictly inside a k-neighborhood
    /// ball invalidates its radius.
    Open,
}

impl CoverPredicate {
    /// Wire name used in reports and CLI summaries.
    pub fn name(self) -> &'static str {
        match self {
            CoverPredicate::Closed => "closed",
            CoverPredicate::Open => "open",
        }
    }
}

/// Flat CSR-style batch answer: hit ids of probe `i` live at
/// `ids[offsets[i] .. offsets[i + 1]]`, in leaf (ball-id) order.
///
/// Two allocations for the whole batch regardless of probe count —
/// compare `Vec<Vec<u32>>`, which costs one allocation per probe and
/// scatters rows across the heap.
///
/// Offsets are explicit `u64`, not `usize`: the CSR arrays cross process
/// boundaries (snapshot files, daemon framing), so their width must not
/// depend on the architecture that produced them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BatchResult {
    offsets: Vec<u64>,
    ids: Vec<u32>,
}

impl BatchResult {
    /// An answer for zero probes.
    pub fn empty() -> Self {
        BatchResult {
            offsets: vec![0],
            ids: Vec::new(),
        }
    }

    /// Number of probes answered.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// `true` when the batch contained no probes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hit ids of probe `i` (indices into the tree's ball array).
    pub fn hits(&self, i: usize) -> &[u32] {
        &self.ids[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Iterate the per-probe hit lists in probe order.
    pub fn iter(&self) -> impl Iterator<Item = &[u32]> {
        self.offsets
            .windows(2)
            .map(move |w| &self.ids[w[0] as usize..w[1] as usize])
    }

    /// Total hits across the batch (`ids.len()`).
    pub fn total_hits(&self) -> usize {
        self.ids.len()
    }

    /// The raw CSR offsets array (`len() + 1` entries, starting at 0).
    ///
    /// Fixed-width `u64` so the answer's shape is identical on every
    /// architecture — the wire/snapshot contract, not a host detail.
    pub fn offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// The raw concatenated hit-id array.
    pub fn ids(&self) -> &[u32] {
        &self.ids
    }
}

impl<'a> IntoIterator for &'a BatchResult {
    type Item = &'a [u32];
    type IntoIter = BatchIter<'a>;
    fn into_iter(self) -> BatchIter<'a> {
        BatchIter {
            result: self,
            next: 0,
        }
    }
}

/// Iterator over the per-probe hit lists of a [`BatchResult`].
pub struct BatchIter<'a> {
    result: &'a BatchResult,
    next: usize,
}

impl<'a> Iterator for BatchIter<'a> {
    type Item = &'a [u32];
    fn next(&mut self) -> Option<&'a [u32]> {
        if self.next < self.result.len() {
            self.next += 1;
            Some(self.result.hits(self.next - 1))
        } else {
            None
        }
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.result.len() - self.next;
        (rem, Some(rem))
    }
}

/// Aggregate statistics of one served batch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Probes answered.
    pub probes: usize,
    /// Total hits across the batch.
    pub hits: u64,
    /// Chunks the batch was split into.
    pub chunks: usize,
    /// Summed per-probe query cost (nodes visited + leaf balls scanned —
    /// the measured `O(log n + m₀)` of Lemma 3.1).
    pub cost_total: u64,
    /// Largest single-probe query cost in the batch.
    pub cost_max: u64,
    /// Precision-tier filter counters accumulated across every leaf scan
    /// of the batch (all zero in the exact tier with ε = 0).
    pub filter: FilterStats,
}

impl ServeStats {
    /// Mean per-probe query cost (0 for an empty batch).
    pub fn mean_cost(&self) -> f64 {
        if self.probes == 0 {
            0.0
        } else {
            self.cost_total as f64 / self.probes as f64
        }
    }
}

/// Everything one served batch returns: the CSR answer, aggregate stats,
/// and the run report (`algo = "query-serve"`).
#[derive(Clone, Debug)]
pub struct ServeOutput {
    /// The flat batch answer.
    pub result: BatchResult,
    /// Aggregate statistics.
    pub stats: ServeStats,
    /// The batch's [`RunReport`]. Phase timings and the query-cost
    /// histogram are present only when [`ServeConfig::record`] is set; the
    /// `serve.*` counters are always filled.
    pub report: RunReport,
}

/// Output arena of one chunk task: per-probe hit counts plus the
/// concatenated ids, reused across every probe in the chunk.
struct ChunkPart {
    lens: Vec<u32>,
    ids: Vec<u32>,
    stats: ServeStats,
}

/// Query-cost histogram buckets: the serve report reuses the depth
/// histogram with `depth = ⌊log₂ cost⌋` (cost ≥ 1), capped here.
const COST_BUCKETS: usize = 48;

fn cost_bucket(cost: u64) -> usize {
    (63 - cost.max(1).leading_zeros() as usize).min(COST_BUCKETS)
}

fn serve_chunk<const D: usize>(
    tree: &QueryTree<D>,
    chunk: &[Point<D>],
    pred: CoverPredicate,
    cfg: &ServeConfig,
    obs: &RunRecorder,
) -> ChunkPart {
    let t = obs.start();
    let mut part = ChunkPart {
        lens: Vec::with_capacity(chunk.len()),
        ids: Vec::new(),
        stats: ServeStats {
            chunks: 1,
            ..ServeStats::default()
        },
    };
    let soa = tree.soa_balls();
    let open = pred == CoverPredicate::Open;
    // The serving tier is the batch's own knob (a tree built exact can be
    // served mixed and vice versa); answers are byte-identical either way,
    // and ε > 0 relaxes the cover predicate per DESIGN.md §17.
    let mixed = cfg.precision.is_mixed();
    let eps_scale = eps_cover_scale(cfg.epsilon);
    // One distance-buffer pair for the whole chunk: the leaf filter runs
    // through the blocked SoA kernels, appending hits in leaf order (so the
    // CSR assembly stays byte-identical to the scalar filter).
    let mut scratch32: Vec<f32> = Vec::new();
    let mut scratch: Vec<f64> = Vec::new();
    for p in chunk {
        let (leaf, visited) = tree.descend_counted(p);
        let before = part.ids.len();
        soa.filter_covering_tiered_into(
            p,
            leaf,
            open,
            mixed,
            eps_scale,
            &mut scratch32,
            &mut scratch,
            &mut part.ids,
            &mut part.stats.filter,
        );
        let hits = (part.ids.len() - before) as u64;
        let cost = visited as u64 + leaf.len() as u64;
        part.lens.push(hits as u32);
        part.stats.probes += 1;
        part.stats.hits += hits;
        part.stats.cost_total += cost;
        part.stats.cost_max = part.stats.cost_max.max(cost);
        if obs.is_enabled() {
            // Histogram reuse: one "node" per probe in its cost bucket,
            // hits accumulated in the bucket's crossing column.
            let bucket = cost_bucket(cost);
            obs.node(bucket);
            obs.add_crossing(bucket, hits);
        }
    }
    obs.stop(Phase::Serve, t);
    part
}

/// Serve `probes[lo..hi)` (chunk-aligned bounds), forking while more than
/// one chunk remains and the batch is above the parallel threshold.
fn serve_rec<const D: usize>(
    tree: &QueryTree<D>,
    probes: &[Point<D>],
    pred: CoverPredicate,
    cfg: &ServeConfig,
    obs: &RunRecorder,
    parallel: bool,
) -> Vec<ChunkPart> {
    let chunks = probes.len().div_ceil(cfg.chunk_size);
    if chunks <= 1 {
        return vec![serve_chunk(tree, probes, pred, cfg, obs)];
    }
    if !parallel {
        return probes
            .chunks(cfg.chunk_size)
            .map(|c| serve_chunk(tree, c, pred, cfg, obs))
            .collect();
    }
    // Split at a chunk boundary so chunk contents are identical to the
    // sequential path — the determinism contract does not depend on how
    // the range is divided among tasks.
    let mid = (chunks / 2) * cfg.chunk_size;
    let (left, right) = probes.split_at(mid);
    let (mut l, r) = rayon::join(
        || serve_rec(tree, left, pred, cfg, obs, parallel),
        || serve_rec(tree, right, pred, cfg, obs, parallel),
    );
    l.extend(r);
    l
}

/// Assemble the chunk parts (in chunk order) into one CSR result.
fn assemble(parts: Vec<ChunkPart>, probes: usize) -> (BatchResult, ServeStats) {
    let mut stats = ServeStats::default();
    let total: usize = parts.iter().map(|p| p.ids.len()).sum();
    let mut offsets = Vec::with_capacity(probes + 1);
    let mut ids = Vec::with_capacity(total);
    offsets.push(0u64);
    let mut at = 0u64;
    for part in parts {
        for &len in &part.lens {
            at += u64::from(len);
            offsets.push(at);
        }
        ids.extend_from_slice(&part.ids);
        stats.probes += part.stats.probes;
        stats.hits += part.stats.hits;
        stats.chunks += part.stats.chunks;
        stats.cost_total += part.stats.cost_total;
        stats.cost_max = stats.cost_max.max(part.stats.cost_max);
        stats.filter.merge(&part.stats.filter);
    }
    (BatchResult { offsets, ids }, stats)
}

impl<const D: usize> QueryTree<D> {
    /// Serve a probe batch: the full engine entry point.
    ///
    /// Validates the probes once up front (the first non-finite probe is
    /// rejected as [`SepdcError::NonFinitePoint`] with its index) and the
    /// config ([`SepdcError::InvalidConfig`] for a zero chunk size), then
    /// answers every probe under `pred` in parallel chunks. See the
    /// [module docs](crate::serve) for the determinism contract.
    pub fn try_serve(
        &self,
        probes: &[Point<D>],
        pred: CoverPredicate,
        cfg: &ServeConfig,
    ) -> Result<ServeOutput, SepdcError> {
        cfg.validate()?;
        validate_points(probes)?;
        let t_run = std::time::Instant::now();
        let obs = RunRecorder::new(cfg.record, COST_BUCKETS);
        let (result, stats) = if probes.is_empty() {
            (BatchResult::empty(), ServeStats::default())
        } else {
            let parallel = probes.len() > cfg.parallel_threshold;
            let parts = serve_rec(self, probes, pred, cfg, &obs, parallel);
            assemble(parts, probes.len())
        };
        let report = RunReport {
            version: RUN_REPORT_VERSION,
            algo: "query-serve".to_string(),
            dim: D,
            n: self.len(),
            k: 0,
            seed: 0,
            threads: rayon::current_num_threads(),
            wall_ms: 0.0,
            config: vec![
                ("chunk_size".to_string(), cfg.chunk_size as f64),
                (
                    "parallel_threshold".to_string(),
                    cfg.parallel_threshold as f64,
                ),
                (
                    "predicate.open".to_string(),
                    f64::from(u8::from(pred == CoverPredicate::Open)),
                ),
                ("record".to_string(), f64::from(u8::from(cfg.record))),
                ("precision".to_string(), cfg.precision.code() as f64),
                ("epsilon".to_string(), cfg.epsilon),
            ],
            phases: obs.phases(),
            counters: {
                let mut counters = vec![
                    ("serve.probes".to_string(), stats.probes as f64),
                    ("serve.hits".to_string(), stats.hits as f64),
                    ("serve.chunks".to_string(), stats.chunks as f64),
                    ("serve.cost_total".to_string(), stats.cost_total as f64),
                    ("serve.cost_max".to_string(), stats.cost_max as f64),
                    ("serve.cost_mean".to_string(), stats.mean_cost()),
                ];
                counters.extend(precision_counters(&stats.filter));
                counters
            },
            depth: obs.depth_rows(),
        }
        .finish(t_run.elapsed());
        Ok(ServeOutput {
            result,
            stats,
            report,
        })
    }

    /// Batch query under the *closed* containment predicate: the hit
    /// lists of [`QueryTree::covering`] for every probe, as a flat
    /// [`BatchResult`]. Total variant of [`QueryTree::batch_covering`].
    pub fn try_batch_covering(&self, probes: &[Point<D>]) -> Result<BatchResult, SepdcError> {
        self.try_serve(probes, CoverPredicate::Closed, &ServeConfig::default())
            .map(|out| out.result)
    }

    /// Batch query under the *open-interior* predicate: the hit lists of
    /// [`QueryTree::covering_interior`] for every probe, as a flat
    /// [`BatchResult`]. Total variant of
    /// [`QueryTree::batch_covering_interior`]; probes with non-finite
    /// coordinates are rejected with the offending index instead of
    /// silently descending on NaN comparisons.
    pub fn try_batch_covering_interior(
        &self,
        probes: &[Point<D>],
    ) -> Result<BatchResult, SepdcError> {
        self.try_serve(probes, CoverPredicate::Open, &ServeConfig::default())
            .map(|out| out.result)
    }

    /// Panicking wrapper over [`QueryTree::try_batch_covering`] (finite
    /// probes are a caller bug in tests and scripts).
    pub fn batch_covering(&self, probes: &[Point<D>]) -> BatchResult {
        self.try_batch_covering(probes)
            .unwrap_or_else(|e| panic!("QueryTree::batch_covering: {e}"))
    }

    /// Panicking wrapper over [`QueryTree::try_batch_covering_interior`] —
    /// the shape the correction steps consume ("for all p ∈ P, in
    /// parallel").
    pub fn batch_covering_interior(&self, probes: &[Point<D>]) -> BatchResult {
        self.try_batch_covering_interior(probes)
            .unwrap_or_else(|e| panic!("QueryTree::batch_covering_interior: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force_knn;
    use crate::neighborhood::NeighborhoodSystem;
    use crate::query::QueryTreeConfig;
    use sepdc_workloads::Workload;

    fn tree_2d(n: usize, k: usize, seed: u64) -> QueryTree<2> {
        let pts = Workload::UniformCube.generate::<2>(n, seed);
        let knn = brute_force_knn(&pts, k);
        let sys = NeighborhoodSystem::from_knn(&pts, &knn);
        QueryTree::build::<3>(sys.balls(), QueryTreeConfig::default(), seed)
    }

    #[test]
    fn batch_matches_pointwise_queries() {
        let tree = tree_2d(700, 2, 3);
        let probes = Workload::Clusters.generate::<2>(300, 5);
        let closed = tree.batch_covering(&probes);
        let open = tree.batch_covering_interior(&probes);
        assert_eq!(closed.len(), probes.len());
        for (i, p) in probes.iter().enumerate() {
            assert_eq!(closed.hits(i), tree.covering(p), "closed probe {i}");
            assert_eq!(open.hits(i), tree.covering_interior(p), "open probe {i}");
        }
        assert_eq!(
            closed.total_hits(),
            closed.iter().map(<[u32]>::len).sum::<usize>()
        );
    }

    #[test]
    fn chunk_size_cannot_change_the_answer() {
        let tree = tree_2d(500, 1, 9);
        let probes = Workload::UniformCube.generate::<2>(2500, 11);
        let baseline = tree
            .try_serve(&probes, CoverPredicate::Closed, &ServeConfig::default())
            .unwrap();
        for chunk_size in [1, 7, 64, 100_000] {
            for parallel_threshold in [0, 100_000] {
                let cfg = ServeConfig {
                    chunk_size,
                    parallel_threshold,
                    ..ServeConfig::default()
                };
                let out = tree
                    .try_serve(&probes, CoverPredicate::Closed, &cfg)
                    .unwrap();
                assert_eq!(
                    out.result, baseline.result,
                    "chunk={chunk_size} threshold={parallel_threshold}"
                );
            }
        }
    }

    #[test]
    fn empty_batch_and_empty_tree() {
        let tree = tree_2d(200, 1, 2);
        let out = tree
            .try_serve(&[], CoverPredicate::Open, &ServeConfig::default())
            .unwrap();
        assert!(out.result.is_empty());
        assert_eq!(out.result.offsets(), &[0]);
        assert_eq!(out.stats, ServeStats::default());

        let empty: QueryTree<2> = QueryTree::build::<3>(&[], QueryTreeConfig::default(), 1);
        let probes = Workload::UniformCube.generate::<2>(50, 4);
        let res = empty.batch_covering(&probes);
        assert_eq!(res.len(), 50);
        assert_eq!(res.total_hits(), 0);
        assert!(res.iter().all(<[u32]>::is_empty));
    }

    #[test]
    fn non_finite_probe_rejected_with_index() {
        let tree = tree_2d(150, 1, 6);
        let mut probes = Workload::UniformCube.generate::<2>(10, 8);
        probes[7] = Point::from([0.5, f64::NAN]);
        for result in [
            tree.try_batch_covering(&probes),
            tree.try_batch_covering_interior(&probes),
            tree.try_serve(&probes, CoverPredicate::Closed, &ServeConfig::default())
                .map(|o| o.result),
        ] {
            assert_eq!(result, Err(SepdcError::NonFinitePoint { idx: 7 }));
        }
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn infallible_batch_panics_on_nan() {
        let tree = tree_2d(100, 1, 6);
        tree.batch_covering_interior(&[Point::from([f64::INFINITY, 0.0])]);
    }

    #[test]
    fn zero_chunk_size_is_invalid_config() {
        let tree = tree_2d(100, 1, 6);
        let cfg = ServeConfig {
            chunk_size: 0,
            ..ServeConfig::default()
        };
        assert!(matches!(
            tree.try_serve(&[], CoverPredicate::Closed, &cfg),
            Err(SepdcError::InvalidConfig {
                param: "serve.chunk_size",
                ..
            })
        ));
    }

    #[test]
    fn serve_report_counters_and_histogram() {
        let tree = tree_2d(800, 2, 12);
        let probes = Workload::UniformCube.generate::<2>(3000, 13);
        let cfg = ServeConfig {
            record: true,
            chunk_size: 256,
            parallel_threshold: 512,
            ..ServeConfig::default()
        };
        let out = tree.try_serve(&probes, CoverPredicate::Open, &cfg).unwrap();
        let r = &out.report;
        assert_eq!(r.algo, "query-serve");
        assert_eq!(r.n, tree.len());
        assert!(r.wall_ms > 0.0);
        assert_eq!(r.counter("serve.probes"), Some(3000.0));
        assert_eq!(r.counter("serve.hits"), Some(out.stats.hits as f64));
        assert_eq!(r.counter("serve.chunks"), Some(out.stats.chunks as f64));
        assert!(r.counter("serve.cost_mean").unwrap() > 0.0);
        let serve = r.phase("serve").unwrap();
        assert_eq!(serve.calls, out.stats.chunks as u64);
        assert!(serve.ms > 0.0);
        // Histogram: one node per probe (bucketed by ⌊log₂ cost⌋), hits in
        // the crossing column.
        let nodes: u64 = r.depth.iter().map(|d| d.nodes).sum();
        let hits: u64 = r.depth.iter().map(|d| d.crossing).sum();
        assert_eq!(nodes, 3000);
        assert_eq!(hits, out.stats.hits);
        // Round-trips through the shared serializer.
        let back = RunReport::from_json(&r.to_json()).unwrap();
        assert_eq!(&back, r);
        // Recording off (the default) leaves phases/histogram empty but
        // keeps the counters.
        let quiet = tree
            .try_serve(&probes, CoverPredicate::Open, &ServeConfig::default())
            .unwrap();
        assert!(quiet.report.phases.is_empty());
        assert!(quiet.report.depth.is_empty());
        assert_eq!(quiet.report.counter("serve.probes"), Some(3000.0));
    }

    #[test]
    fn cost_buckets_are_log2() {
        assert_eq!(cost_bucket(1), 0);
        assert_eq!(cost_bucket(2), 1);
        assert_eq!(cost_bucket(3), 1);
        assert_eq!(cost_bucket(1024), 10);
        assert_eq!(cost_bucket(u64::MAX), COST_BUCKETS);
        // cost 0 cannot occur (every probe visits the root) but must not
        // underflow the bucket math.
        assert_eq!(cost_bucket(0), 0);
    }

    #[test]
    fn precision_tiers_serve_byte_identical_answers() {
        use crate::config::Precision;
        let tree = tree_2d(700, 2, 21);
        let probes = Workload::Clusters.generate::<2>(1500, 22);
        for pred in [CoverPredicate::Closed, CoverPredicate::Open] {
            let exact = tree
                .try_serve(
                    &probes,
                    pred,
                    &ServeConfig {
                        precision: Precision::Exact,
                        ..ServeConfig::default()
                    },
                )
                .unwrap();
            let mixed = tree
                .try_serve(
                    &probes,
                    pred,
                    &ServeConfig {
                        precision: Precision::Mixed,
                        ..ServeConfig::default()
                    },
                )
                .unwrap();
            assert_eq!(exact.result, mixed.result, "{pred:?}");
            // Exact mode never touches the filter counters; mixed mode
            // exercised them without a certified-bound violation.
            assert_eq!(exact.stats.filter, FilterStats::default());
            assert!(mixed.stats.filter.f32_rejects + mixed.stats.filter.f64_confirms > 0);
            assert_eq!(mixed.stats.filter.unsafe_margin_hits, 0);
            assert_eq!(mixed.stats.filter.eps_skips, 0);
            // Counters surface in the report under the precision namespace.
            assert_eq!(
                mixed.report.counter("precision.f32_rejects"),
                Some(mixed.stats.filter.f32_rejects as f64)
            );
        }
    }

    #[test]
    fn epsilon_serving_relaxes_cover_and_counts_skips() {
        let tree = tree_2d(600, 2, 31);
        let probes = Workload::UniformCube.generate::<2>(1200, 32);
        let exact = tree
            .try_serve(&probes, CoverPredicate::Closed, &ServeConfig::default())
            .unwrap();
        let relaxed = tree
            .try_serve(
                &probes,
                CoverPredicate::Closed,
                &ServeConfig {
                    epsilon: 0.5,
                    ..ServeConfig::default()
                },
            )
            .unwrap();
        // ε-mode may only *drop* hits (the predicate shrinks), and every
        // dropped hit is counted.
        assert!(relaxed.stats.hits <= exact.stats.hits);
        let dropped = exact.stats.hits - relaxed.stats.hits;
        assert_eq!(relaxed.stats.filter.eps_skips, dropped);
        assert!(dropped > 0, "ε = 0.5 should drop marginal covers here");
        for (i, _) in probes.iter().enumerate() {
            let e: std::collections::HashSet<u32> = exact.result.hits(i).iter().copied().collect();
            for id in relaxed.result.hits(i) {
                assert!(e.contains(id), "ε-mode invented hit {id} at probe {i}");
            }
        }
    }

    #[test]
    fn stats_match_query_cost() {
        let tree = tree_2d(600, 1, 17);
        let probes = Workload::UniformCube.generate::<2>(100, 18);
        let out = tree
            .try_serve(&probes, CoverPredicate::Closed, &ServeConfig::default())
            .unwrap();
        let expected: u64 = probes.iter().map(|p| tree.query_cost(p) as u64).sum();
        assert_eq!(out.stats.cost_total, expected);
        assert!(out.stats.cost_max as f64 >= out.stats.mean_cost());
    }
}
