//! A conventional spatial-index baseline for the neighborhood query
//! problem (Section 3).
//!
//! The paper contrasts its separator-based structure with what
//! multidimensional divide and conquer achieves
//! (`T = O(n log^{d-1} n)`, `Q = O(k + log^d n)`, `S = O(n log^{d-1} n)`).
//! As a practically comparable baseline we implement the standard
//! *ball-lookup kd-tree*: a kd-tree over ball **centers** where every node
//! stores the maximum ball radius in its subtree, so a covering query
//! prunes any subtree whose bounding region lies farther from the probe
//! than that radius. Worst-case superlogarithmic (a single huge ball
//! defeats pruning), but `O(log n + k)`-ish on bounded-ply systems —
//! exactly the comparison EXP-13 runs.

use sepdc_geom::ball::Ball;
use sepdc_geom::point::Point;

const LEAF_SIZE: usize = 16;

enum Node {
    Internal {
        axis: u8,
        value: f64,
        /// Maximum ball radius in this subtree (the pruning bound).
        max_radius: f64,
        left: u32,
        right: u32,
    },
    Leaf {
        start: u32,
        end: u32,
    },
}

/// kd-tree over ball centers with subtree radius bounds.
pub struct BallTree<'a, const D: usize> {
    balls: &'a [Ball<D>],
    ids: Vec<u32>,
    nodes: Vec<Node>,
    root: u32,
}

impl<'a, const D: usize> BallTree<'a, D> {
    /// Build over a ball system.
    pub fn build(balls: &'a [Ball<D>]) -> Self {
        let mut ids: Vec<u32> = (0..balls.len() as u32).collect();
        let mut tree = BallTree {
            balls,
            ids: Vec::new(),
            nodes: Vec::new(),
            root: 0,
        };
        if balls.is_empty() {
            tree.nodes.push(Node::Leaf { start: 0, end: 0 });
            return tree;
        }
        let n = ids.len();
        let root = tree.build_rec(&mut ids, 0, n, 0);
        tree.ids = ids;
        tree.root = root;
        tree
    }

    fn build_rec(&mut self, ids: &mut [u32], start: usize, end: usize, depth: usize) -> u32 {
        let len = end - start;
        if len <= LEAF_SIZE {
            self.nodes.push(Node::Leaf {
                start: start as u32,
                end: end as u32,
            });
            return (self.nodes.len() - 1) as u32;
        }
        let slice = &mut ids[start..end];
        // Splitting axis: cycle, falling back to any axis with spread.
        let mut axis = depth % D;
        let mut found = false;
        for off in 0..D {
            let a = (depth + off) % D;
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for &i in slice.iter() {
                let v = self.balls[i as usize].center[a];
                lo = lo.min(v);
                hi = hi.max(v);
            }
            if hi > lo {
                axis = a;
                found = true;
                break;
            }
        }
        if !found {
            self.nodes.push(Node::Leaf {
                start: start as u32,
                end: end as u32,
            });
            return (self.nodes.len() - 1) as u32;
        }
        let mid = len / 2;
        slice.select_nth_unstable_by(mid, |&a, &b| {
            self.balls[a as usize].center[axis]
                .partial_cmp(&self.balls[b as usize].center[axis])
                .expect("non-finite center")
        });
        let value = self.balls[slice[mid] as usize].center[axis];
        // Subtree radius bound, computed from the slice before recursion
        // permutes it further (the multiset is unchanged either way).
        let max_radius = slice
            .iter()
            .map(|&i| self.balls[i as usize].radius)
            .fold(0.0, f64::max);
        let left = self.build_rec(ids, start, start + mid, depth + 1);
        let right = self.build_rec(ids, start + mid, end, depth + 1);
        self.nodes.push(Node::Internal {
            axis: axis as u8,
            value,
            max_radius,
            left,
            right,
        });
        (self.nodes.len() - 1) as u32
    }

    /// All ball indices whose closed body contains `p`.
    pub fn covering(&self, p: &Point<D>) -> Vec<u32> {
        let mut out = Vec::new();
        if !self.ids.is_empty() {
            self.query_rec(self.root, p, &mut out, &mut 0);
        }
        out
    }

    /// Like [`BallTree::covering`] but also counts visited nodes + scanned
    /// balls — the measured query cost for EXP-13.
    pub fn covering_with_cost(&self, p: &Point<D>) -> (Vec<u32>, usize) {
        let mut out = Vec::new();
        let mut cost = 0;
        if !self.ids.is_empty() {
            self.query_rec(self.root, p, &mut out, &mut cost);
        }
        (out, cost)
    }

    fn query_rec(&self, node: u32, p: &Point<D>, out: &mut Vec<u32>, cost: &mut usize) {
        *cost += 1;
        match &self.nodes[node as usize] {
            Node::Leaf { start, end } => {
                for &i in &self.ids[*start as usize..*end as usize] {
                    *cost += 1;
                    if self.balls[i as usize].contains(p) {
                        out.push(i);
                    }
                }
            }
            Node::Internal {
                axis,
                value,
                max_radius,
                left,
                right,
            } => {
                // A ball in a subtree can contain p only if p is within
                // max_radius of the subtree's side of the splitting plane.
                let diff = p[*axis as usize] - value;
                if diff <= *max_radius {
                    self.query_rec(*left, p, out, cost);
                }
                if -diff <= *max_radius {
                    self.query_rec(*right, p, out, cost);
                }
            }
        }
    }

    /// Number of indexed balls.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force_knn;
    use crate::neighborhood::NeighborhoodSystem;
    use sepdc_workloads::Workload;

    fn system(n: usize, k: usize, seed: u64) -> NeighborhoodSystem<2> {
        let pts = Workload::Clusters.generate::<2>(n, seed);
        let knn = brute_force_knn(&pts, k);
        NeighborhoodSystem::from_knn(&pts, &knn)
    }

    #[test]
    fn covering_matches_linear_scan() {
        let sys = system(700, 2, 1);
        let tree = BallTree::build(sys.balls());
        let probes = Workload::UniformCube.generate::<2>(300, 9);
        for p in &probes {
            let mut fast = tree.covering(p);
            fast.sort_unstable();
            let mut slow: Vec<u32> = sys
                .balls()
                .iter()
                .enumerate()
                .filter(|(_, b)| b.contains(p))
                .map(|(i, _)| i as u32)
                .collect();
            slow.sort_unstable();
            assert_eq!(fast, slow);
        }
    }

    #[test]
    fn pruning_bound_is_sound_with_huge_ball() {
        // One enormous ball must still be found from far away.
        let mut balls = system(200, 1, 2).balls().to_vec();
        balls.push(Ball::new(Point::from([0.5, 0.5]), 100.0));
        let tree = BallTree::build(&balls);
        let far = Point::from([50.0, -30.0]);
        let hits = tree.covering(&far);
        assert_eq!(hits, vec![200]);
    }

    #[test]
    fn empty_and_identical_centers() {
        let empty: Vec<Ball<2>> = Vec::new();
        let tree = BallTree::build(&empty);
        assert!(tree.covering(&Point::origin()).is_empty());
        assert!(tree.is_empty());

        let same = vec![Ball::new(Point::<2>::splat(1.0), 0.5); 50];
        let tree = BallTree::build(&same);
        assert_eq!(tree.covering(&Point::splat(1.2)).len(), 50);
        assert!(tree.covering(&Point::splat(2.0)).is_empty());
    }

    #[test]
    fn query_cost_reported() {
        let sys = system(1000, 1, 3);
        let tree = BallTree::build(sys.balls());
        let (_, cost) = tree.covering_with_cost(&Point::from([0.5, 0.5]));
        assert!(cost > 0);
        assert!(cost < 1000, "pruning should beat the linear scan: {cost}");
    }
}
