//! Pluggable split-decision backends — the [`Splitter`] trait.
//!
//! Every partition step of the recursion engines ([`crate::parallel`],
//! [`crate::simple_parallel`], [`crate::query`]) routes through a
//! `Splitter`, so the choice of dividing machinery is a configuration
//! knob rather than a code path:
//!
//! * [`RandomSphere`] — the paper's engine, verbatim: the seeded
//!   best-of-N sweep over unit-time MTTV sphere candidates with the
//!   median-cut fallback. The default; pinned byte-identical to the
//!   pre-trait implementation by the `build_parity` suite.
//! * [`DeterministicHalving`] — the same random search, but when every
//!   candidate fails the tol gate (and the median fallback is one-sided)
//!   it engages a derandomized linear-time halving cut instead of letting
//!   the recursion force a brute leaf. The halving cut also powers
//!   [`Splitter::rescue`], which fires when an *accepted* separator turns
//!   out to route every point to one side.
//! * [`GraphSplitter`] — the `GraphSeparator` backend: a seed-free
//!   BFS/greedy separator over the sparse intersection graph
//!   ([`crate::graph_separator::grid_bfs_separator`]), falling back to the
//!   halving cut. Fully deterministic: the build is a pure function of
//!   the point multiset and the configuration.
//!
//! # Determinism contract
//!
//! A backend's `split` must be a pure function of
//! `(points, cfg, seed)` — never of the rayon pool size, wall clock, or
//! any global RNG — because the tree builders call it from inside
//! `rayon::join` and promise byte-identical output at every thread
//! count. `rescue` and `median_split` must additionally be
//! order-independent or called only with deterministically-ordered
//! slices (the engines guarantee the latter).

use crate::graph_separator::grid_bfs_separator;
use sepdc_geom::point::Point;
use sepdc_geom::shape::Separator;
use sepdc_separator::hyperplane_cut::{halving_cut_widest, median_cut_cycling};
use sepdc_separator::{
    find_good_separator_par, split_counts, FoundSeparator, SearchOutcome, SeparatorConfig,
};

/// Which split-decision backend drives a build.
///
/// Stored in [`KnnDcConfig`](crate::KnnDcConfig) and
/// [`QueryTreeConfig`](crate::QueryTreeConfig), selected on the CLI via
/// `--splitter {random,halving,graph}`, and recorded in query-tree
/// snapshot metadata.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SplitterKind {
    /// [`RandomSphere`]: the paper's seeded random sphere search.
    #[default]
    Random,
    /// [`DeterministicHalving`]: random search with a derandomized
    /// halving-cut fallback and rescue.
    Halving,
    /// [`GraphSplitter`]: the deterministic BFS/greedy intersection-graph
    /// separator.
    Graph,
}

impl SplitterKind {
    /// The CLI / report name of the backend.
    pub fn name(self) -> &'static str {
        match self {
            SplitterKind::Random => "random",
            SplitterKind::Halving => "halving",
            SplitterKind::Graph => "graph",
        }
    }

    /// Parse a CLI name (`random`, `halving`, `graph`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "random" => Some(SplitterKind::Random),
            "halving" => Some(SplitterKind::Halving),
            "graph" => Some(SplitterKind::Graph),
            _ => None,
        }
    }

    /// Stable numeric code for snapshot metadata and config echoes.
    pub fn code(self) -> u64 {
        match self {
            SplitterKind::Random => 0,
            SplitterKind::Halving => 1,
            SplitterKind::Graph => 2,
        }
    }

    /// Inverse of [`Self::code`]; `None` for unknown codes (e.g. a
    /// snapshot written by a newer version).
    pub fn from_code(code: u64) -> Option<Self> {
        match code {
            0 => Some(SplitterKind::Random),
            1 => Some(SplitterKind::Halving),
            2 => Some(SplitterKind::Graph),
            _ => None,
        }
    }
}

/// A split-decision backend. See the [module docs](self) for the three
/// shipped implementations and the determinism contract.
///
/// `D` is the point dimension, `E = D + 1` the lift dimension the MTTV
/// candidate generator works in.
pub trait Splitter<const D: usize, const E: usize>: Send + Sync {
    /// Which backend this is (for accounting and snapshots).
    fn kind(&self) -> SplitterKind;

    /// Find a separator that δ-splits `points`, or `None` when the
    /// backend is out of options (the recursion then takes a forced
    /// brute leaf). Must be a pure function of `(points, cfg, seed)`.
    fn split(
        &self,
        points: &[Point<D>],
        cfg: &SeparatorConfig,
        seed: u64,
    ) -> Option<FoundSeparator<D>>;

    /// Second-chance separator for a split that passed the tol gate but
    /// routed every point to one side (large `tol` makes the gate count
    /// surface points on both sides while strict routing sends them all
    /// interior). `None` — the default, and [`RandomSphere`]'s answer —
    /// keeps the historical behavior of a forced brute leaf.
    fn rescue(&self, _points: &[Point<D>]) -> Option<Separator<D>> {
        None
    }

    /// The hyperplane cut used by the Section 5 (Bentley-style) engine at
    /// recursion `depth`. Defaults to the classic axis-cycling median cut.
    fn median_split(&self, points: &[Point<D>], depth: usize) -> Option<Separator<D>> {
        median_cut_cycling(points, depth)
    }
}

/// The paper's engine, extracted unchanged: seeded random sphere search
/// with the median-cut fallback. The default backend.
#[derive(Clone, Copy, Debug, Default)]
pub struct RandomSphere;

impl<const D: usize, const E: usize> Splitter<D, E> for RandomSphere {
    fn kind(&self) -> SplitterKind {
        SplitterKind::Random
    }

    fn split(
        &self,
        points: &[Point<D>],
        cfg: &SeparatorConfig,
        seed: u64,
    ) -> Option<FoundSeparator<D>> {
        find_good_separator_par::<D, E>(points, cfg, seed)
    }
}

/// Score a deterministic halving cut against `points`: accepted whenever
/// it strictly splits, reported with [`SearchOutcome::Halving`].
fn halving_found<const D: usize>(
    points: &[Point<D>],
    cfg: &SeparatorConfig,
) -> Option<FoundSeparator<D>> {
    let sep = halving_cut_widest(points)?;
    let counts = split_counts(points, &sep, cfg.tol);
    if counts.left() == 0 || counts.right() == 0 {
        return None;
    }
    Some(FoundSeparator {
        separator: sep,
        counts,
        attempts: cfg.max_attempts,
        outcome: SearchOutcome::Halving,
    })
}

/// Random sphere search with a derandomized halving-cut safety net: after
/// `max_attempts` consecutive tol-gate failures (and a one-sided median
/// fallback) the linear-time halving cut engages instead of forcing a
/// brute leaf, and [`Splitter::rescue`] re-splits nodes whose accepted
/// separator routed one-sided.
#[derive(Clone, Copy, Debug, Default)]
pub struct DeterministicHalving;

impl<const D: usize, const E: usize> Splitter<D, E> for DeterministicHalving {
    fn kind(&self) -> SplitterKind {
        SplitterKind::Halving
    }

    fn split(
        &self,
        points: &[Point<D>],
        cfg: &SeparatorConfig,
        seed: u64,
    ) -> Option<FoundSeparator<D>> {
        find_good_separator_par::<D, E>(points, cfg, seed).or_else(|| halving_found(points, cfg))
    }

    fn rescue(&self, points: &[Point<D>]) -> Option<Separator<D>> {
        halving_cut_widest(points)
    }
}

/// The `GraphSeparator` backend: seed-free BFS/greedy separator over the
/// sparse intersection graph, with the halving cut as deterministic
/// fallback. Builds under this backend are pure functions of the point
/// multiset and configuration — no randomness at all.
#[derive(Clone, Copy, Debug, Default)]
pub struct GraphSplitter;

impl<const D: usize, const E: usize> Splitter<D, E> for GraphSplitter {
    fn kind(&self) -> SplitterKind {
        SplitterKind::Graph
    }

    fn split(
        &self,
        points: &[Point<D>],
        cfg: &SeparatorConfig,
        _seed: u64,
    ) -> Option<FoundSeparator<D>> {
        if let Some(found) = grid_bfs_separator(points, cfg) {
            return Some(FoundSeparator {
                separator: found.separator,
                counts: found.counts,
                attempts: found.attempts,
                outcome: SearchOutcome::Graph,
            });
        }
        halving_found(points, cfg)
    }

    fn rescue(&self, points: &[Point<D>]) -> Option<Separator<D>> {
        halving_cut_widest(points)
    }
}

/// The backend for a [`SplitterKind`], as a shared static — the engines
/// resolve this once per build and thread it through the recursion.
pub fn splitter_for<const D: usize, const E: usize>(
    kind: SplitterKind,
) -> &'static dyn Splitter<D, E> {
    match kind {
        SplitterKind::Random => &RandomSphere,
        SplitterKind::Halving => &DeterministicHalving,
        SplitterKind::Graph => &GraphSplitter,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sepdc_workloads::degenerate::all_coincident;
    use sepdc_workloads::Workload;

    #[test]
    fn kind_name_parse_code_round_trip() {
        for kind in [
            SplitterKind::Random,
            SplitterKind::Halving,
            SplitterKind::Graph,
        ] {
            assert_eq!(SplitterKind::parse(kind.name()), Some(kind));
            assert_eq!(SplitterKind::from_code(kind.code()), Some(kind));
        }
        assert_eq!(SplitterKind::parse("kdtree"), None);
        assert_eq!(SplitterKind::from_code(99), None);
        assert_eq!(SplitterKind::default(), SplitterKind::Random);
    }

    #[test]
    fn random_backend_matches_raw_search() {
        let pts = Workload::UniformCube.generate::<2>(3000, 1);
        let cfg = SeparatorConfig::default();
        let a = Splitter::<2, 3>::split(&RandomSphere, &pts, &cfg, 42).unwrap();
        let b = find_good_separator_par::<2, 3>(&pts, &cfg, 42).unwrap();
        assert_eq!(a.separator, b.separator);
        assert_eq!(a.counts, b.counts);
        assert_eq!(a.attempts, b.attempts);
        assert_eq!(a.outcome, b.outcome);
    }

    #[test]
    fn every_backend_splits_uniform_points() {
        let pts = Workload::UniformCube.generate::<2>(2000, 2);
        let cfg = SeparatorConfig::default();
        for kind in [
            SplitterKind::Random,
            SplitterKind::Halving,
            SplitterKind::Graph,
        ] {
            let sp = splitter_for::<2, 3>(kind);
            assert_eq!(sp.kind(), kind);
            let found = sp.split(&pts, &cfg, 7).unwrap_or_else(|| {
                panic!("backend {} failed on uniform points", kind.name());
            });
            assert!(found.counts.left() > 0 && found.counts.right() > 0);
        }
    }

    #[test]
    fn halving_engages_when_random_search_is_disabled() {
        // tol so large every candidate is rejected as one-sided by the
        // strict fallback check, and a point set whose median cut
        // degenerates: two bundles at the same x.
        let mut pts = vec![sepdc_geom::Point::<2>::from([0.0, 0.0]); 40];
        pts.extend(vec![sepdc_geom::Point::<2>::from([0.0, 1.0]); 40]);
        let cfg = SeparatorConfig {
            max_attempts: 0, // random search disabled: straight to fallbacks
            ..Default::default()
        };
        // Raw search succeeds via its median fallback here; the halving
        // backend must agree rather than diverge needlessly.
        let raw = find_good_separator_par::<2, 3>(&pts, &cfg, 1);
        let halved = Splitter::<2, 3>::split(&DeterministicHalving, &pts, &cfg, 1).unwrap();
        match raw {
            Some(r) => assert_eq!(r.separator, halved.separator),
            None => assert_eq!(halved.outcome, SearchOutcome::Halving),
        }
    }

    #[test]
    fn no_backend_splits_coincident_points() {
        let pts = all_coincident::<2>(100, 1.5);
        let cfg = SeparatorConfig {
            max_attempts: 2,
            ..Default::default()
        };
        for kind in [
            SplitterKind::Random,
            SplitterKind::Halving,
            SplitterKind::Graph,
        ] {
            assert!(
                splitter_for::<2, 3>(kind).split(&pts, &cfg, 3).is_none(),
                "backend {} invented a split of identical points",
                kind.name()
            );
        }
    }

    #[test]
    fn graph_backend_is_seed_oblivious() {
        let pts = Workload::Clusters.generate::<2>(1200, 5);
        let cfg = SeparatorConfig::default();
        let sp = splitter_for::<2, 3>(SplitterKind::Graph);
        let a = sp.split(&pts, &cfg, 1).unwrap();
        let b = sp.split(&pts, &cfg, 0xDEAD_BEEF).unwrap();
        assert_eq!(a.separator, b.separator);
        assert_eq!(a.counts, b.counts);
    }

    #[test]
    fn rescue_defaults() {
        let pts = Workload::UniformCube.generate::<2>(100, 6);
        assert!(Splitter::<2, 3>::rescue(&RandomSphere, &pts).is_none());
        assert!(Splitter::<2, 3>::rescue(&DeterministicHalving, &pts).is_some());
        assert!(Splitter::<2, 3>::rescue(&GraphSplitter, &pts).is_some());
    }
}
