//! The `sepdc` command-line tool.
//!
//! ```text
//! sepdc generate --workload uniform-cube --n 1000 --dim 2 --seed 1 --out pts.csv
//! sepdc knn --input pts.csv --k 3 --algo parallel --edges-out edges.csv
//! sepdc separator --input pts.csv --k 1
//! sepdc figure --input pts.csv --k 1 --out fig.svg
//! ```

use sepdc_cli::args::Args;
use sepdc_cli::{commands, CliResult};
use std::io::Write;

/// Print to stdout, treating a closed pipe (e.g. `sepdc help | head`) as a
/// clean exit instead of a panic.
fn print_pipe_safe(content: &str) {
    let mut out = std::io::stdout().lock();
    if out.write_all(content.as_bytes()).is_err() {
        std::process::exit(0);
    }
}

const USAGE: &str = "\
sepdc — separator based divide and conquer in computational geometry

USAGE:
  sepdc generate  --workload NAME --n N [--dim D] [--seed S] [--out FILE]
  sepdc knn       --input FILE [--dim D] [--k K] [--algo parallel|simple|kdtree|brute]
                  [--seed S] [--edges-out FILE] [--report FILE]
  sepdc report    --input FILE
  sepdc separator --input FILE [--dim D] [--k K] [--seed S]
  sepdc figure    --input FILE [--k K] [--seed S] [--out FILE]   (2D only)

Workloads: uniform-cube, uniform-ball, sphere-shell, clusters, grid,
two-slabs, noisy-line. Point files: one point per line, comma or
whitespace separated; '#' comments allowed. --dim is inferred from the
first data line when omitted.

`knn --report FILE` saves a versioned JSON run report (phase timings,
counters, per-depth histograms) for the parallel and simple algorithms;
`sepdc report --input FILE` pretty-prints one.";

fn read_input(args: &Args) -> CliResult<String> {
    let path = args.require("input")?;
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
}

fn write_or_print(path: Option<&str>, content: &str) -> CliResult<()> {
    match path {
        Some(p) => std::fs::write(p, content).map_err(|e| format!("cannot write {p}: {e}")),
        None => {
            print_pipe_safe(content);
            Ok(())
        }
    }
}

fn dim_flag(args: &Args) -> CliResult<Option<usize>> {
    match args.get_or("dim", "") {
        "" => Ok(None),
        v => v
            .parse()
            .map(Some)
            .map_err(|_| format!("--dim: cannot parse '{v}'")),
    }
}

fn run() -> CliResult<()> {
    let args = Args::parse(std::env::args().skip(1))?;
    match args.command.as_str() {
        "generate" => {
            let unknown = args.unknown_flags(&["workload", "n", "dim", "seed", "out"]);
            if !unknown.is_empty() {
                return Err(format!("unknown flags: {}", unknown.join(", ")));
            }
            let csv = commands::generate(
                args.require("workload")?,
                args.num_or("n", 1000)?,
                args.num_or("dim", 2)?,
                args.num_or("seed", 42)?,
            )?;
            write_or_print(args.flags_out(), &csv)
        }
        "knn" => {
            let unknown =
                args.unknown_flags(&["input", "dim", "k", "algo", "seed", "edges-out", "report"]);
            if !unknown.is_empty() {
                return Err(format!("unknown flags: {}", unknown.join(", ")));
            }
            let input = read_input(&args)?;
            let out = commands::knn(
                &input,
                dim_flag(&args)?,
                args.num_or("k", 1)?,
                args.get_or("algo", "parallel"),
                args.num_or("seed", 42)?,
            )?;
            eprintln!("{}", out.summary);
            match args.get_or("report", "") {
                "" => {}
                p => {
                    let json = out.report_json.as_deref().ok_or_else(|| {
                        format!(
                            "--report: algorithm '{}' does not produce a run report \
                             (use parallel or simple)",
                            args.get_or("algo", "parallel")
                        )
                    })?;
                    std::fs::write(p, json).map_err(|e| format!("cannot write {p}: {e}"))?;
                }
            }
            match args.get_or("edges-out", "") {
                "" => Ok(()),
                p => write_or_print(Some(p), &out.edges_csv),
            }
        }
        "report" => {
            let unknown = args.unknown_flags(&["input"]);
            if !unknown.is_empty() {
                return Err(format!("unknown flags: {}", unknown.join(", ")));
            }
            let input = read_input(&args)?;
            let rendered = commands::report(&input)?;
            print_pipe_safe(&rendered);
            Ok(())
        }
        "separator" => {
            let input = read_input(&args)?;
            let report = commands::separator(
                &input,
                dim_flag(&args)?,
                args.num_or("k", 1)?,
                args.num_or("seed", 42)?,
            )?;
            print_pipe_safe(&format!("{report}\n"));
            Ok(())
        }
        "figure" => {
            let input = read_input(&args)?;
            let svg = commands::figure(&input, args.num_or("k", 1)?, args.num_or("seed", 42)?)?;
            write_or_print(args.flags_out(), &svg)
        }
        "" | "help" | "--help" | "-h" => {
            print_pipe_safe(&format!("{USAGE}\n"));
            Ok(())
        }
        other => Err(format!("unknown command '{other}'\n\n{USAGE}")),
    }
}

/// Small extension so `--out` handling reads naturally above.
trait OutFlag {
    fn flags_out(&self) -> Option<&str>;
}
impl OutFlag for Args {
    fn flags_out(&self) -> Option<&str> {
        match self.get_or("out", "") {
            "" => None,
            p => Some(p),
        }
    }
}

fn main() {
    if let Err(e) = run() {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
