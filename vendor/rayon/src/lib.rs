//! Offline drop-in subset of the `rayon` API.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the rayon surface it actually uses: [`join`], [`current_num_threads`],
//! [`ThreadPoolBuilder`]/[`ThreadPool::install`], and the parallel
//! iterators of [`prelude`] (`par_iter`, `into_par_iter` on ranges,
//! `par_chunks`, `par_chunks_mut`, with `map`/`filter`/`zip`/`enumerate`/
//! `fold`/`reduce`/`collect`/`count`/`max`/`for_each`/`find_map_any`).
//!
//! Parallelism is real (scoped OS threads) but deliberately simple: a
//! global *extra-thread budget* of `current_num_threads() - 1` bounds the
//! total number of live worker threads, and every parallel construct falls
//! back to sequential execution when the budget is exhausted. With
//! `RAYON_NUM_THREADS=1` everything runs strictly sequentially, which the
//! determinism tests rely on.

pub mod iter;
pub mod slice;

mod pool;

pub use pool::{current_num_threads, ThreadPool, ThreadPoolBuildError, ThreadPoolBuilder};

/// Run two closures, potentially in parallel, and return both results.
///
/// Spawns `oper_b` on a scoped worker thread when the global thread budget
/// allows it; otherwise runs both sequentially on the calling thread.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if !pool::try_reserve() {
        return (oper_a(), oper_b());
    }
    let out = std::thread::scope(|s| {
        let hb = s.spawn(oper_b);
        let ra = oper_a();
        (ra, hb.join())
    });
    pool::release(1);
    match out {
        (ra, Ok(rb)) => (ra, rb),
        (_, Err(payload)) => std::panic::resume_unwind(payload),
    }
}

/// Everything call sites normally import from `rayon::prelude`.
pub mod prelude {
    pub use crate::iter::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParallelIterator,
    };
    pub use crate::slice::{ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn join_returns_both_results() {
        let (a, b) = super::join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn join_nests_deeply_without_exploding() {
        fn fib(n: u64) -> u64 {
            if n < 2 {
                return n;
            }
            let (a, b) = super::join(|| fib(n - 1), || fib(n - 2));
            a + b
        }
        assert_eq!(fib(20), 6765);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn join_propagates_panics() {
        super::join(|| (), || panic!("boom"));
    }

    #[test]
    fn install_overrides_thread_count() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(3)
            .build()
            .unwrap();
        assert_eq!(pool.install(super::current_num_threads), 3);
    }

    #[test]
    fn map_collect_matches_sequential() {
        let xs: Vec<u64> = (0..100_000).collect();
        let doubled: Vec<u64> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled.len(), xs.len());
        assert!(doubled.iter().enumerate().all(|(i, &d)| d == 2 * i as u64));
    }

    #[test]
    fn filter_count_and_order_preserving_collect() {
        let xs: Vec<u32> = (0..50_000).collect();
        assert_eq!(xs.par_iter().filter(|&&x| x % 3 == 0).count(), 16_667);
        let kept: Vec<u32> = xs
            .par_iter()
            .filter(|&&x| x % 999 == 0)
            .map(|&x| x)
            .collect();
        let seq: Vec<u32> = xs.iter().filter(|&&x| x % 999 == 0).copied().collect();
        assert_eq!(kept, seq, "parallel collect must preserve order");
    }

    #[test]
    fn zip_enumerate_fold_reduce() {
        let a: Vec<u64> = (0..10_000).collect();
        let b: Vec<u64> = (0..10_000).rev().collect();
        let dot = a
            .par_iter()
            .zip(b.par_iter())
            .map(|(&x, &y)| x * y)
            .fold(|| 0u64, |acc, v| acc + v)
            .reduce(|| 0u64, |x, y| x + y);
        let seq: u64 = a.iter().zip(&b).map(|(&x, &y)| x * y).sum();
        assert_eq!(dot, seq);
        let idx_sum: usize = a
            .par_iter()
            .enumerate()
            .map(|(i, _)| i)
            .fold(|| 0usize, |acc, v| acc + v)
            .reduce(|| 0usize, |x, y| x + y);
        assert_eq!(idx_sum, 9_999 * 10_000 / 2);
    }

    #[test]
    fn chunks_mut_writes_every_element() {
        let n = 100_000;
        let mut out = vec![0u64; n];
        let xs: Vec<u64> = (0..n as u64).collect();
        out.par_chunks_mut(1024)
            .zip(xs.par_chunks(1024))
            .for_each(|(o, c)| {
                for (a, &b) in o.iter_mut().zip(c) {
                    *a = b + 1;
                }
            });
        assert!(out.iter().enumerate().all(|(i, &v)| v == i as u64 + 1));
    }

    #[test]
    fn find_map_any_finds_needle() {
        let hit = (0..1_000_000usize).into_par_iter().find_map_any(|i| {
            if i == 987_654 {
                Some(i)
            } else {
                None
            }
        });
        assert_eq!(hit, Some(987_654));
        let miss = (0..10_000usize)
            .into_par_iter()
            .find_map_any(|_| None::<usize>);
        assert_eq!(miss, None);
    }

    #[test]
    fn max_matches_sequential() {
        let xs: Vec<i64> = (0..9_999).map(|i| (i * 37) % 8191).collect();
        assert_eq!(xs.par_iter().map(|&x| x).max(), xs.iter().copied().max());
        let empty: Vec<i64> = Vec::new();
        assert_eq!(empty.par_iter().map(|&x| x).max(), None);
    }
}
