//! Approximate centerpoints by iterated Radon points.
//!
//! A *centerpoint* of `n` points in `R^D` is a point `q` such that every
//! closed halfspace containing `q` contains at least `n / (D + 1)` of the
//! points. The MTTV pipeline needs one for the lifted point set; an
//! approximation with constant depth `1/(D+2) + ε` is enough for the
//! separator guarantees, and the classical way to compute one fast is the
//! iterated-Radon-point scheme of Clarkson, Eppstein, Miller, Sturtivant and
//! Teng: repeatedly pick `D + 2` points from a working multiset and replace
//! them with copies of their Radon point. Each replacement can only increase
//! (stochastically) the Tukey depth of the surviving mass.

use crate::point::Point;
use crate::radon::radon_point_value;
use rand::Rng;

/// Options for the iterated-Radon centerpoint computation.
#[derive(Clone, Copy, Debug)]
pub struct CenterpointOpts {
    /// Working multiset size (input is resampled to this size when larger).
    pub buffer_size: usize,
    /// Number of Radon replacement rounds, as a multiple of the buffer size.
    pub rounds_factor: usize,
}

impl Default for CenterpointOpts {
    fn default() -> Self {
        CenterpointOpts {
            buffer_size: 192,
            rounds_factor: 6,
        }
    }
}

/// Approximate centerpoint of a non-empty point set.
///
/// Deterministic given `rng`. Runs in time independent of `points.len()`
/// beyond the initial resampling — this is what makes the enclosing
/// separator algorithm "unit time" in the paper's sense (constant work per
/// candidate after sampling).
///
/// # Panics
/// Panics on an empty input.
pub fn approximate_centerpoint<const D: usize, R: Rng>(
    points: &[Point<D>],
    rng: &mut R,
    opts: CenterpointOpts,
) -> Point<D> {
    assert!(!points.is_empty(), "centerpoint of an empty point set");
    if points.len() <= D + 2 {
        return Point::centroid(points);
    }

    // Working multiset: the input when small, a with-replacement resample
    // otherwise (sampling preserves approximate depth w.h.p.).
    let mut buf: Vec<Point<D>> = if points.len() <= opts.buffer_size {
        points.to_vec()
    } else {
        (0..opts.buffer_size)
            .map(|_| points[rng.gen_range(0..points.len())])
            .collect()
    };

    let rounds = opts.rounds_factor * buf.len();
    let group = D + 2;
    let mut idx: Vec<usize> = (0..buf.len()).collect();
    let mut chosen = vec![Point::<D>::origin(); group];
    for _ in 0..rounds {
        // Partial Fisher–Yates: only the first `group` slots need to be
        // random (same distribution as a full shuffle restricted to its
        // prefix, at a fraction of the RNG cost — this loop dominates the
        // whole separator search).
        for slot in 0..group {
            let j = rng.gen_range(slot..idx.len());
            idx.swap(slot, j);
        }
        for (slot, &i) in idx[..group].iter().enumerate() {
            chosen[slot] = buf[i];
        }
        if let Some(r) = radon_point_value(&chosen, 1e-12) {
            for &i in &idx[..group] {
                buf[i] = r;
            }
        }
    }
    Point::centroid(&buf)
}

/// Empirical Tukey-depth lower bound of `q` in `points`: the minimum, over
/// the supplied probe `directions`, of the fraction of points in the closed
/// halfspace `{ p : u·(p - q) >= 0 }`.
///
/// Exact depth needs all directions; for testing and quality reporting a
/// generous direction sample gives a sound *upper* bound on depth and a
/// statistical check that the approximate centerpoint is deep enough.
pub fn directional_depth<const D: usize>(
    points: &[Point<D>],
    q: &Point<D>,
    directions: &[Point<D>],
) -> f64 {
    assert!(!points.is_empty() && !directions.is_empty());
    let n = points.len() as f64;
    directions
        .iter()
        .map(|u| {
            let count = points.iter().filter(|p| u.dot(&(**p - *q)) >= 0.0).count();
            count as f64 / n
        })
        .fold(f64::INFINITY, f64::min)
}

/// Generate `count` unit direction vectors, uniformly at random.
pub fn random_directions<const D: usize, R: Rng>(count: usize, rng: &mut R) -> Vec<Point<D>> {
    let mut out = Vec::with_capacity(count);
    while out.len() < count {
        // Gaussian-by-rejection (Box–Muller free): sum of uniforms is fine
        // for direction sampling only in low stakes; use proper normals via
        // the polar method for correctness in all D.
        let mut v = Point::<D>::origin();
        for i in 0..D {
            v[i] = polar_normal(rng);
        }
        if let Some(u) = v.normalized(1e-9) {
            out.push(u);
        }
    }
    out
}

/// Standard normal sample via the Marsaglia polar method.
fn polar_normal<R: Rng>(rng: &mut R) -> f64 {
    loop {
        let x: f64 = rng.gen_range(-1.0..1.0);
        let y: f64 = rng.gen_range(-1.0..1.0);
        let s = x * x + y * y;
        if s > 0.0 && s < 1.0 {
            return x * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn grid_2d(side: usize) -> Vec<Point<2>> {
        let mut v = Vec::new();
        for i in 0..side {
            for j in 0..side {
                v.push(Point::from([i as f64, j as f64]));
            }
        }
        v
    }

    #[test]
    fn centerpoint_of_tiny_set_is_centroid() {
        let pts = [Point::<2>::from([0.0, 0.0]), Point::from([2.0, 0.0])];
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let c = approximate_centerpoint(&pts, &mut rng, CenterpointOpts::default());
        assert!(c.dist(&Point::from([1.0, 0.0])) < 1e-12);
    }

    #[test]
    fn centerpoint_of_grid_is_deep() {
        let pts = grid_2d(16); // 256 points
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let c = approximate_centerpoint(&pts, &mut rng, CenterpointOpts::default());
        let dirs = random_directions::<2, _>(64, &mut rng);
        let depth = directional_depth(&pts, &c, &dirs);
        // True centerpoints have depth >= 1/3 in R^2; the approximation
        // should comfortably clear 1/5 on a symmetric grid.
        assert!(depth > 0.2, "depth too small: {depth}");
    }

    #[test]
    fn centerpoint_of_gaussian_cloud_near_mode() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let pts: Vec<Point<3>> = (0..500)
            .map(|_| {
                Point::from([
                    polar_normal(&mut rng),
                    polar_normal(&mut rng),
                    polar_normal(&mut rng),
                ])
            })
            .collect();
        let c = approximate_centerpoint(&pts, &mut rng, CenterpointOpts::default());
        let dirs = random_directions::<3, _>(64, &mut rng);
        let depth = directional_depth(&pts, &c, &dirs);
        assert!(depth > 0.15, "depth too small: {depth}");
        assert!(c.norm() < 1.0, "far from the mode: {:?}", c);
    }

    #[test]
    fn centerpoint_skewed_cluster() {
        // 90% of the mass at one spot: the centerpoint must be close to it.
        let mut pts = vec![Point::<2>::splat(5.0); 90];
        for i in 0..10 {
            pts.push(Point::from([i as f64 * 100.0, -300.0]));
        }
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let c = approximate_centerpoint(&pts, &mut rng, CenterpointOpts::default());
        assert!(
            c.dist(&Point::splat(5.0)) < 60.0,
            "pulled too far by outliers: {c:?}"
        );
    }

    #[test]
    fn directional_depth_of_extreme_point_is_zero_ish() {
        let pts = grid_2d(8);
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let dirs = random_directions::<2, _>(128, &mut rng);
        let far = Point::from([1000.0, 1000.0]);
        let depth = directional_depth(&pts, &far, &dirs);
        assert!(depth < 0.05, "extreme point should have ~zero depth");
    }

    #[test]
    fn random_directions_are_unit() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for u in random_directions::<4, _>(32, &mut rng) {
            assert!((u.norm() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let pts = grid_2d(10);
        let mut a = ChaCha8Rng::seed_from_u64(9);
        let mut b = ChaCha8Rng::seed_from_u64(9);
        let ca = approximate_centerpoint(&pts, &mut a, CenterpointOpts::default());
        let cb = approximate_centerpoint(&pts, &mut b, CenterpointOpts::default());
        assert_eq!(ca, cb);
    }
}
