//! Batch-dynamic indexing via the logarithmic method (Bentley–Saxe),
//! composed from static [`QueryTree`] shards.
//!
//! The paper's separator structure is build-once; production data is not.
//! [`ShardedIndex`] closes that gap without touching the core recursion:
//!
//! * **Shards.** Slot `i` holds at most `staging_cap · 2^i` balls in one
//!   immutable [`QueryTree`]. Inserts buffer into a sorted *staging* array
//!   (at most `staging_cap` entries, scanned linearly by queries); when it
//!   fills, the staging entries and every occupied slot below the first
//!   empty slot `j` merge — purging tombstones — into a single fresh tree
//!   at slot `j` (the classic binary carry). Each ball therefore
//!   participates in `O(log(n / staging_cap))` rebuilds over its lifetime,
//!   which is the amortized-insert bound `bench_churn` measures.
//! * **Deletes.** A delete tombstones the ball's bit in its shard's bitmap
//!   (or removes it from staging outright). Tombstoned balls keep their
//!   slot in the shard's tree until the next carry that includes the shard
//!   sweeps them out; queries filter them at gather time.
//! * **Determinism.** Every rebuild draws its seed from the splitmix64
//!   stream `shard_seed(master_seed, epoch)` where `epoch` counts rebuilds
//!   — a pure function of the operation sequence, so rebuilds are
//!   byte-identical at every thread count. Queries scatter across shards
//!   (rayon, order-preserving collect) and gather with a total order:
//!   covering answers sort ascending by global id, k-NN candidates merge
//!   by `(dist_sq.to_bits(), id)`. Answers are therefore independent of
//!   shard layout *and* thread count: any interleaving of inserts and
//!   deletes answers byte-identically to a fresh build over the surviving
//!   balls (see `tests/churn_oracle.rs`).
//!
//! Global ids are `u64`, assigned monotonically by insertion order and
//! never reused, so the staging array and each shard's id column stay
//! sorted for free and lookups are binary searches.

use crate::error::{validate_k, validate_points, SepdcError};
use crate::query::{QueryTree, QueryTreeConfig};
use crate::seeding::mix;
use crate::serve::{BatchResult, CoverPredicate};
use crate::ServeConfig;
use rayon::prelude::*;
use sepdc_geom::ball::Ball;
use sepdc_geom::point::Point;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// Domain-separation tag for per-shard rebuild seeds (`b"SHARD"` packed).
const SHARD_TAG: u64 = 0x0053_4841_5244;

/// Balls scanned per [`sepdc_geom::soa::SoaPoints::dist_sq_range`] call in
/// the k-NN shard sweep; sizing only, never answer-affecting.
const KNN_SCAN_CHUNK: usize = 1024;

/// Snapshot-decoded shard parts: one
/// `(slot, tree, ids, tombstone bitmap, dead count)` tuple per occupied
/// slot, in ascending slot order.
pub(crate) type ShardParts<const D: usize> = Vec<(usize, QueryTree<D>, Vec<u64>, Vec<u64>, usize)>;

/// Seed for the rebuild numbered `epoch` under `master` — a splitmix64
/// stream independent of which thread performs the rebuild.
fn shard_seed(master: u64, epoch: u64) -> u64 {
    mix(master ^ mix(epoch ^ SHARD_TAG))
}

/// Tunables for [`ShardedIndex`].
#[derive(Clone, Copy, Debug)]
pub struct ShardedConfig {
    /// Staging capacity `B` (slot `i` then holds ≤ `B · 2^i` balls). The
    /// staging array is brute-scanned by every query, so `B` trades
    /// per-query overhead against rebuild frequency. Must be ≥ 1.
    pub staging_cap: usize,
    /// Build configuration for every shard's [`QueryTree`].
    pub tree: QueryTreeConfig,
}

impl Default for ShardedConfig {
    fn default() -> Self {
        ShardedConfig {
            staging_cap: 256,
            tree: QueryTreeConfig::default(),
        }
    }
}

impl ShardedConfig {
    /// Reject configurations the logarithmic method cannot run with.
    pub fn validate(&self) -> Result<(), SepdcError> {
        if self.staging_cap == 0 {
            return Err(SepdcError::InvalidConfig {
                param: "sharded.staging_cap",
                value: 0.0,
            });
        }
        if self.tree.leaf_size == 0 {
            return Err(SepdcError::InvalidConfig {
                param: "leaf_size",
                value: 0.0,
            });
        }
        Ok(())
    }
}

/// The immutable payload of one shard, shared by clones of the index (the
/// daemon's warm-swap path clones the whole index per mutation; sharing
/// the built trees makes that an `Arc` bump, not a rebuild).
pub(crate) struct ShardCore<const D: usize> {
    /// The static query structure over this shard's balls, local ids
    /// `0..n` in the order of `ids`.
    pub(crate) tree: QueryTree<D>,
    /// Local id → global id, strictly increasing (merges preserve global
    /// id order), so global-id lookups are binary searches.
    pub(crate) ids: Vec<u64>,
}

/// One occupied slot: the shared immutable core plus this clone's
/// tombstone bitmap (small and copy-on-mutate, outside the `Arc`).
pub(crate) struct Shard<const D: usize> {
    pub(crate) core: Arc<ShardCore<D>>,
    /// Tombstone bitmap over local ids, `ceil(n / 64)` words.
    pub(crate) tombs: Vec<u64>,
    /// Number of set bits in `tombs`.
    pub(crate) dead: usize,
}

impl<const D: usize> Clone for Shard<D> {
    fn clone(&self) -> Self {
        Shard {
            core: Arc::clone(&self.core),
            tombs: self.tombs.clone(),
            dead: self.dead,
        }
    }
}

impl<const D: usize> Shard<D> {
    fn new(core: ShardCore<D>) -> Self {
        let words = core.ids.len().div_ceil(64);
        Shard {
            core: Arc::new(core),
            tombs: vec![0u64; words],
            dead: 0,
        }
    }

    pub(crate) fn is_dead(&self, local: usize) -> bool {
        self.tombs[local / 64] >> (local % 64) & 1 == 1
    }

    fn live(&self) -> usize {
        self.core.ids.len() - self.dead
    }
}

/// Counters and sizes reported by [`ShardedIndex::stats`] — the
/// amortization accounting DESIGN.md §15 describes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardedStats {
    /// Balls answering queries (staged + shard entries minus tombstones).
    pub live: usize,
    /// Tombstoned entries still occupying shard slots.
    pub dead: usize,
    /// Balls in the staging array.
    pub staged: usize,
    /// Occupied shard slots.
    pub shards: usize,
    /// Total slots allocated (occupied or not).
    pub slots: usize,
    /// Shard trees built over the index's lifetime (carries + compactions).
    pub rebuilds: u64,
    /// Total balls passed through those rebuilds; `rebuilt_balls / inserts`
    /// is the measured amortization factor (`O(log(n / B))` by the
    /// logarithmic method).
    pub rebuilt_balls: u64,
    /// Next global id to be assigned (ids are never reused).
    pub next_id: u64,
}

/// One k-NN answer: a global ball id and the exact squared distance from
/// the probe to that ball's center.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ShardedNeighbor {
    /// Global id of the ball.
    pub id: u64,
    /// Squared center distance (bit-exact: the merge key is
    /// `(dist_sq.to_bits(), id)`).
    pub dist_sq: f64,
}

/// CSR batch-covering answer over global ids: row `i` holds the ids of
/// all live balls covering probe `i`, ascending.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardedBatch {
    offsets: Vec<u64>,
    ids: Vec<u64>,
}

impl ShardedBatch {
    /// Number of probe rows.
    pub fn len(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// `true` when there are no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Global ids covering probe `i`, ascending.
    pub fn hits(&self, i: usize) -> &[u64] {
        &self.ids[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Iterate rows in probe order.
    pub fn iter(&self) -> impl Iterator<Item = &[u64]> + '_ {
        (0..self.len()).map(move |i| self.hits(i))
    }

    /// The raw CSR offsets (length `rows + 1`).
    pub fn offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// The concatenated id rows.
    pub fn ids(&self) -> &[u64] {
        &self.ids
    }
}

/// A batch-dynamic neighborhood index: logarithmic-method shards over the
/// §3 [`QueryTree`], with tombstone deletes and deterministic cross-shard
/// query merges. See the module docs for the full contract.
pub struct ShardedIndex<const D: usize> {
    cfg: ShardedConfig,
    /// Master seed; every rebuild derives its own via [`shard_seed`].
    seed: u64,
    /// Slot `i` holds ≤ `staging_cap · 2^i` balls, or is empty.
    slots: Vec<Option<Shard<D>>>,
    /// Insert buffer, sorted ascending by global id (ids are assigned
    /// monotonically, so pushes keep it sorted; deletes splice).
    staging: Vec<(u64, Ball<D>)>,
    next_id: u64,
    /// Rebuild counter — the seed-stream position of the *next* rebuild.
    epoch: u64,
    rebuilds: u64,
    rebuilt_balls: u64,
}

impl<const D: usize> Clone for ShardedIndex<D> {
    fn clone(&self) -> Self {
        ShardedIndex {
            cfg: self.cfg,
            seed: self.seed,
            slots: self.slots.clone(),
            staging: self.staging.clone(),
            next_id: self.next_id,
            epoch: self.epoch,
            rebuilds: self.rebuilds,
            rebuilt_balls: self.rebuilt_balls,
        }
    }
}

impl<const D: usize> ShardedIndex<D> {
    /// An empty index.
    pub fn new(cfg: ShardedConfig, seed: u64) -> Result<Self, SepdcError> {
        cfg.validate()?;
        Ok(ShardedIndex {
            cfg,
            seed,
            slots: Vec::new(),
            staging: Vec::new(),
            next_id: 0,
            epoch: 0,
            rebuilds: 0,
            rebuilt_balls: 0,
        })
    }

    /// Bulk build over `balls`, assigning global ids `0..balls.len()`.
    /// `E` must be `D + 1`. The result is a *bulk* layout (one shard, or
    /// staging only when everything fits there) — incremental insertion of
    /// the same balls produces a different layout with byte-identical
    /// query answers.
    pub fn from_balls<const E: usize>(
        balls: &[Ball<D>],
        cfg: ShardedConfig,
        seed: u64,
    ) -> Result<Self, SepdcError> {
        let entries: Vec<(u64, Ball<D>)> = balls
            .iter()
            .enumerate()
            .map(|(i, &b)| (i as u64, b))
            .collect();
        Self::from_entries::<E>(&entries, cfg, seed)
    }

    /// Bulk build preserving explicit global ids (strictly increasing).
    /// This is how a layout-independent "fresh build over the survivors"
    /// is constructed for parity tests and offline compaction.
    pub fn from_entries<const E: usize>(
        entries: &[(u64, Ball<D>)],
        cfg: ShardedConfig,
        seed: u64,
    ) -> Result<Self, SepdcError> {
        cfg.validate()?;
        if let Some(idx) = entries
            .iter()
            .position(|(_, b)| !b.center.is_finite() || !b.radius.is_finite() || b.radius < 0.0)
        {
            return Err(SepdcError::NonFiniteBall { idx });
        }
        if let Some(w) = entries.windows(2).position(|w| w[0].0 >= w[1].0) {
            return Err(SepdcError::InvalidConfig {
                param: "sharded.entry_ids",
                value: w as f64,
            });
        }
        let mut index = Self::new(cfg, seed)?;
        index.next_id = entries.last().map_or(0, |(id, _)| id + 1);
        if entries.len() < cfg.staging_cap {
            index.staging = entries.to_vec();
            return Ok(index);
        }
        // One shard in the smallest slot whose capacity holds everything.
        let mut slot = 0usize;
        while cfg.staging_cap << slot < entries.len() {
            slot += 1;
        }
        index.slots.resize_with(slot + 1, || None);
        index.build_shard::<E>(slot, entries.to_vec())?;
        Ok(index)
    }

    /// Insert a batch, returning the assigned global ids (monotonic).
    /// `E` must be `D + 1`. Carries (shard rebuilds) happen inline when
    /// the staging array fills; the epoch-derived seeds keep every rebuild
    /// byte-identical at any thread count.
    pub fn try_insert_batch<const E: usize>(
        &mut self,
        balls: &[Ball<D>],
    ) -> Result<Vec<u64>, SepdcError> {
        if let Some(idx) = balls
            .iter()
            .position(|b| !b.center.is_finite() || !b.radius.is_finite() || b.radius < 0.0)
        {
            return Err(SepdcError::NonFiniteBall { idx });
        }
        let mut out = Vec::with_capacity(balls.len());
        for &b in balls {
            let id = self.next_id;
            self.next_id += 1;
            self.staging.push((id, b));
            out.push(id);
            if self.staging.len() >= self.cfg.staging_cap {
                self.carry::<E>()?;
            }
        }
        Ok(out)
    }

    /// Delete by global id; returns per-id whether a live ball was
    /// removed (`false` for unknown or already-deleted ids). Staged balls
    /// are removed outright; shard balls are tombstoned and swept out by
    /// the next carry that includes their shard.
    pub fn delete_batch(&mut self, ids: &[u64]) -> Vec<bool> {
        ids.iter().map(|&id| self.delete_one(id)).collect()
    }

    fn delete_one(&mut self, id: u64) -> bool {
        if let Ok(pos) = self.staging.binary_search_by_key(&id, |e| e.0) {
            self.staging.remove(pos);
            return true;
        }
        for shard in self.slots.iter_mut().flatten() {
            if let Ok(local) = shard.core.ids.binary_search(&id) {
                if shard.is_dead(local) {
                    return false;
                }
                shard.tombs[local / 64] |= 1 << (local % 64);
                shard.dead += 1;
                return true;
            }
        }
        false
    }

    /// Carry: merge staging plus every occupied slot below the first
    /// empty one into a fresh shard there, purging tombstones. The merged
    /// size is ≤ `B + B·(2^j - 1) = B·2^j`, slot `j`'s capacity.
    fn carry<const E: usize>(&mut self) -> Result<(), SepdcError> {
        let mut j = 0;
        while j < self.slots.len() && self.slots[j].is_some() {
            j += 1;
        }
        if j == self.slots.len() {
            self.slots.push(None);
        }
        let mut entries = std::mem::take(&mut self.staging);
        for slot in &mut self.slots[..j] {
            if let Some(shard) = slot.take() {
                for (local, &gid) in shard.core.ids.iter().enumerate() {
                    if !shard.is_dead(local) {
                        entries.push((gid, shard.core.tree.balls()[local]));
                    }
                }
            }
        }
        // Each source run is ascending; a sort restores the global order
        // (k-way merge would too, but the carry is already O(m log m)).
        entries.sort_unstable_by_key(|e| e.0);
        self.build_shard::<E>(j, entries)
    }

    /// Merge *everything* (all shards + staging) into the smallest layout
    /// that holds the live balls, dropping every tombstone. Use when the
    /// dead fraction grows large between natural carries.
    pub fn compact<const E: usize>(&mut self) -> Result<(), SepdcError> {
        let mut entries = std::mem::take(&mut self.staging);
        for slot in &mut self.slots {
            if let Some(shard) = slot.take() {
                for (local, &gid) in shard.core.ids.iter().enumerate() {
                    if !shard.is_dead(local) {
                        entries.push((gid, shard.core.tree.balls()[local]));
                    }
                }
            }
        }
        entries.sort_unstable_by_key(|e| e.0);
        self.slots.clear();
        if entries.len() < self.cfg.staging_cap {
            self.staging = entries;
            return Ok(());
        }
        let mut slot = 0usize;
        while self.cfg.staging_cap << slot < entries.len() {
            slot += 1;
        }
        self.slots.resize_with(slot + 1, || None);
        self.build_shard::<E>(slot, entries)
    }

    /// Build one shard tree at `slot` from globally-sorted `entries`,
    /// advancing the rebuild accounting. Empty merges leave the slot
    /// empty without consuming an epoch.
    fn build_shard<const E: usize>(
        &mut self,
        slot: usize,
        entries: Vec<(u64, Ball<D>)>,
    ) -> Result<(), SepdcError> {
        if entries.is_empty() {
            return Ok(());
        }
        let seed = shard_seed(self.seed, self.epoch);
        self.epoch += 1;
        self.rebuilds += 1;
        self.rebuilt_balls += entries.len() as u64;
        let balls: Vec<Ball<D>> = entries.iter().map(|(_, b)| *b).collect();
        let ids: Vec<u64> = entries.iter().map(|(id, _)| *id).collect();
        let tree = QueryTree::try_build::<E>(&balls, self.cfg.tree, seed)?;
        self.slots[slot] = Some(Shard::new(ShardCore { tree, ids }));
        Ok(())
    }

    fn occupied(&self) -> impl Iterator<Item = &Shard<D>> {
        self.slots.iter().flatten()
    }

    /// Global ids of all live balls whose *closed* body contains `p`,
    /// ascending. Rejects non-finite probes.
    pub fn try_covering(&self, p: &Point<D>) -> Result<Vec<u64>, SepdcError> {
        self.covering_impl(p, false)
    }

    /// Open-interior variant of [`Self::try_covering`].
    pub fn try_covering_interior(&self, p: &Point<D>) -> Result<Vec<u64>, SepdcError> {
        self.covering_impl(p, true)
    }

    fn covering_impl(&self, p: &Point<D>, open: bool) -> Result<Vec<u64>, SepdcError> {
        if !p.is_finite() {
            return Err(SepdcError::NonFinitePoint { idx: 0 });
        }
        let mut out = Vec::new();
        let mut scratch32 = Vec::new();
        let mut scratch = Vec::new();
        let mut local = Vec::new();
        let mut stats = sepdc_geom::soa::FilterStats::default();
        for shard in self.occupied() {
            local.clear();
            shard.core.tree.covering_into(
                p,
                open,
                &mut scratch32,
                &mut scratch,
                &mut local,
                &mut stats,
            );
            for &l in &local {
                if !shard.is_dead(l as usize) {
                    out.push(shard.core.ids[l as usize]);
                }
            }
        }
        for (id, b) in &self.staging {
            let hit = if open {
                b.contains_interior(p)
            } else {
                b.contains(p)
            };
            if hit {
                out.push(*id);
            }
        }
        // Global ids are disjoint across shards and staging; sorting them
        // gives the deterministic gather order (shard-layout independent).
        out.sort_unstable();
        Ok(out)
    }

    /// Batch covering: scatter `probes` across every live shard through
    /// the deterministic [`QueryTree::try_serve`] engine (shards in
    /// parallel under rayon), brute-scan staging, and gather each row
    /// ascending by global id with tombstones filtered. Answers are
    /// byte-identical for every thread count, chunk size, and shard
    /// layout holding the same live balls.
    pub fn try_covering_batch(
        &self,
        probes: &[Point<D>],
        pred: CoverPredicate,
        cfg: &ServeConfig,
    ) -> Result<ShardedBatch, SepdcError> {
        cfg.validate()?;
        validate_points(probes)?;
        let shards: Vec<&Shard<D>> = self.occupied().collect();
        let parts: Vec<BatchResult> = shards
            .par_iter()
            .map(|s| s.core.tree.try_serve(probes, pred, cfg).map(|o| o.result))
            .collect::<Vec<_>>()
            .into_iter()
            .collect::<Result<_, _>>()?;
        let open = matches!(pred, CoverPredicate::Open);
        let mut offsets = Vec::with_capacity(probes.len() + 1);
        offsets.push(0u64);
        let mut ids = Vec::new();
        let mut row: Vec<u64> = Vec::new();
        for (i, p) in probes.iter().enumerate() {
            row.clear();
            for (shard, part) in shards.iter().zip(&parts) {
                for &l in part.hits(i) {
                    if !shard.is_dead(l as usize) {
                        row.push(shard.core.ids[l as usize]);
                    }
                }
            }
            for (id, b) in &self.staging {
                let hit = if open {
                    b.contains_interior(p)
                } else {
                    b.contains(p)
                };
                if hit {
                    row.push(*id);
                }
            }
            row.sort_unstable();
            ids.extend_from_slice(&row);
            offsets.push(ids.len() as u64);
        }
        Ok(ShardedBatch { offsets, ids })
    }

    /// The `k` live balls whose centers are nearest `p`, merged across
    /// shards by the total order `(dist_sq.to_bits(), global_id)` — the
    /// same key a brute-force scan over the survivors would sort by, so
    /// the answer is exact and layout-independent. Shorter when fewer
    /// than `k` balls are live.
    pub fn try_knn(&self, p: &Point<D>, k: usize) -> Result<Vec<ShardedNeighbor>, SepdcError> {
        validate_k(k)?;
        if !p.is_finite() {
            return Err(SepdcError::NonFinitePoint { idx: 0 });
        }
        let mut cands: Vec<(u64, u64)> = Vec::new();
        for shard in self.occupied() {
            shard_topk(shard, p, k, &mut cands);
        }
        for (id, b) in &self.staging {
            cands.push((b.center.dist_sq(p).to_bits(), *id));
        }
        cands.sort_unstable();
        cands.truncate(k);
        Ok(cands
            .into_iter()
            .map(|(bits, id)| ShardedNeighbor {
                id,
                dist_sq: f64::from_bits(bits),
            })
            .collect())
    }

    /// Batch k-NN: probes scatter across a rayon iterator with an
    /// order-preserving collect, so the batch is exactly the concatenation
    /// of the per-probe [`Self::try_knn`] answers.
    pub fn try_knn_batch(
        &self,
        probes: &[Point<D>],
        k: usize,
    ) -> Result<Vec<Vec<ShardedNeighbor>>, SepdcError> {
        validate_k(k)?;
        validate_points(probes)?;
        probes
            .par_iter()
            .map(|p| self.try_knn(p, k))
            .collect::<Vec<_>>()
            .into_iter()
            .collect::<Result<_, _>>()
    }

    /// Number of live balls (staged + shard entries minus tombstones).
    pub fn len(&self) -> usize {
        self.staging.len() + self.occupied().map(Shard::live).sum::<usize>()
    }

    /// `true` when no live balls are indexed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the amortization accounting.
    pub fn stats(&self) -> ShardedStats {
        ShardedStats {
            live: self.len(),
            dead: self.occupied().map(|s| s.dead).sum(),
            staged: self.staging.len(),
            shards: self.occupied().count(),
            slots: self.slots.len(),
            rebuilds: self.rebuilds,
            rebuilt_balls: self.rebuilt_balls,
            next_id: self.next_id,
        }
    }

    /// The configuration the index was built with.
    pub fn config(&self) -> ShardedConfig {
        self.cfg
    }

    /// The master seed every rebuild seed derives from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// `(slot, live, total)` per occupied shard, ascending by slot — the
    /// shard manifest `index inspect` prints.
    pub fn shard_sizes(&self) -> Vec<(usize, usize, usize)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| {
                s.as_ref()
                    .map(|shard| (i, shard.live(), shard.core.ids.len()))
            })
            .collect()
    }

    // -- snapshot plumbing (validated on the load side) ------------------

    /// Iterate occupied shards with their slot index, for serialization.
    pub(crate) fn shards_for_snapshot(&self) -> Vec<(usize, &Shard<D>)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|shard| (i, shard)))
            .collect()
    }

    /// The staging entries, ascending by global id.
    pub(crate) fn staging_for_snapshot(&self) -> &[(u64, Ball<D>)] {
        &self.staging
    }

    /// `(seed, next_id, epoch, rebuilds, rebuilt_balls, slot_count)`.
    pub(crate) fn meta_for_snapshot(&self) -> (u64, u64, u64, u64, u64, u64) {
        (
            self.seed,
            self.next_id,
            self.epoch,
            self.rebuilds,
            self.rebuilt_balls,
            self.slots.len() as u64,
        )
    }

    /// Reassemble from snapshot-decoded parts. The caller
    /// ([`crate::snapshot::load_sharded_index`]) has validated every
    /// invariant (sorted disjoint ids, bitmap widths, slot capacities).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_snapshot_parts(
        cfg: ShardedConfig,
        seed: u64,
        slot_count: usize,
        shards: ShardParts<D>,
        staging: Vec<(u64, Ball<D>)>,
        next_id: u64,
        epoch: u64,
        rebuilds: u64,
        rebuilt_balls: u64,
    ) -> Self {
        let mut slots: Vec<Option<Shard<D>>> = Vec::new();
        slots.resize_with(slot_count, || None);
        for (slot, tree, ids, tombs, dead) in shards {
            slots[slot] = Some(Shard {
                core: Arc::new(ShardCore { tree, ids }),
                tombs,
                dead,
            });
        }
        ShardedIndex {
            cfg,
            seed,
            slots,
            staging,
            next_id,
            epoch,
            rebuilds,
            rebuilt_balls,
        }
    }
}

/// Exact top-`k` of one shard by `(dist_bits, global_id)`: blocked SoA
/// distance sweeps (bit-identical to `Point::dist_sq`) feeding a bounded
/// max-heap, tombstones skipped. Appends the shard's candidates to `out`.
fn shard_topk<const D: usize>(shard: &Shard<D>, p: &Point<D>, k: usize, out: &mut Vec<(u64, u64)>) {
    let centers = shard.core.tree.soa_balls().centers();
    let n = centers.len();
    let mut buf = vec![0.0f64; KNN_SCAN_CHUNK.min(n.max(1))];
    let mut heap: BinaryHeap<(u64, u64)> = BinaryHeap::with_capacity(k + 1);
    let mut start = 0;
    while start < n {
        let len = KNN_SCAN_CHUNK.min(n - start);
        centers.dist_sq_range(p, start, &mut buf[..len]);
        for (j, &d) in buf[..len].iter().enumerate() {
            let local = start + j;
            if shard.is_dead(local) {
                continue;
            }
            let key = (d.to_bits(), shard.core.ids[local]);
            if heap.len() < k {
                heap.push(key);
            } else if key < *heap.peek().expect("non-empty heap") {
                heap.pop();
                heap.push(key);
            }
        }
        start += len;
    }
    out.extend(heap);
}

#[cfg(test)]
mod tests {
    use super::*;
    use sepdc_workloads::Workload;

    fn balls(n: usize, seed: u64) -> Vec<Ball<2>> {
        Workload::UniformCube
            .generate::<2>(n, seed)
            .into_iter()
            .enumerate()
            .map(|(i, c)| Ball::new(c, 0.02 + 0.08 * ((i % 7) as f64 / 7.0)))
            .collect()
    }

    fn small_cfg() -> ShardedConfig {
        ShardedConfig {
            staging_cap: 16,
            ..ShardedConfig::default()
        }
    }

    /// Brute oracle over the same live multiset.
    struct Oracle {
        live: Vec<(u64, Ball<2>)>,
    }

    impl Oracle {
        fn covering(&self, p: &Point<2>, open: bool) -> Vec<u64> {
            let mut out: Vec<u64> = self
                .live
                .iter()
                .filter(|(_, b)| {
                    if open {
                        b.contains_interior(p)
                    } else {
                        b.contains(p)
                    }
                })
                .map(|(id, _)| *id)
                .collect();
            out.sort_unstable();
            out
        }

        fn knn(&self, p: &Point<2>, k: usize) -> Vec<(u64, u64)> {
            let mut keys: Vec<(u64, u64)> = self
                .live
                .iter()
                .map(|(id, b)| (b.center.dist_sq(p).to_bits(), *id))
                .collect();
            keys.sort_unstable();
            keys.truncate(k);
            keys
        }
    }

    #[test]
    fn insert_only_matches_oracle_and_bulk_build() {
        let bs = balls(300, 1);
        let mut inc = ShardedIndex::new(small_cfg(), 7).unwrap();
        let ids = inc.try_insert_batch::<3>(&bs).unwrap();
        assert_eq!(ids, (0..300).collect::<Vec<u64>>());
        let bulk = ShardedIndex::from_balls::<3>(&bs, small_cfg(), 7).unwrap();
        assert_eq!(inc.len(), 300);
        assert_eq!(bulk.len(), 300);
        assert!(inc.stats().shards > 1, "carries must have happened");
        assert_eq!(bulk.stats().shards, 1, "bulk build is one shard");
        let oracle = Oracle {
            live: ids.iter().copied().zip(bs.iter().copied()).collect(),
        };
        for p in Workload::Clusters.generate::<2>(60, 9) {
            let want = oracle.covering(&p, false);
            assert_eq!(inc.try_covering(&p).unwrap(), want);
            assert_eq!(bulk.try_covering(&p).unwrap(), want);
            let want_knn = oracle.knn(&p, 5);
            for idx in [&inc, &bulk] {
                let got: Vec<(u64, u64)> = idx
                    .try_knn(&p, 5)
                    .unwrap()
                    .iter()
                    .map(|n| (n.dist_sq.to_bits(), n.id))
                    .collect();
                assert_eq!(got, want_knn);
            }
        }
    }

    #[test]
    fn deletes_tombstone_and_filter() {
        let bs = balls(200, 2);
        let mut idx = ShardedIndex::new(small_cfg(), 3).unwrap();
        let ids = idx.try_insert_batch::<3>(&bs).unwrap();
        // Delete every third ball; one unknown id; one double delete.
        let dels: Vec<u64> = ids.iter().copied().filter(|id| id % 3 == 0).collect();
        let outcome = idx.delete_batch(&dels);
        assert!(outcome.iter().all(|&d| d));
        assert_eq!(idx.delete_batch(&[dels[0]]), vec![false], "double delete");
        assert_eq!(idx.delete_batch(&[9999]), vec![false], "unknown id");
        assert_eq!(idx.len(), 200 - dels.len());
        let oracle = Oracle {
            live: ids
                .iter()
                .copied()
                .zip(bs.iter().copied())
                .filter(|(id, _)| id % 3 != 0)
                .collect(),
        };
        for p in Workload::UniformCube.generate::<2>(40, 77) {
            assert_eq!(idx.try_covering(&p).unwrap(), oracle.covering(&p, false));
            assert_eq!(
                idx.try_covering_interior(&p).unwrap(),
                oracle.covering(&p, true)
            );
            let got: Vec<(u64, u64)> = idx
                .try_knn(&p, 4)
                .unwrap()
                .iter()
                .map(|n| (n.dist_sq.to_bits(), n.id))
                .collect();
            assert_eq!(got, oracle.knn(&p, 4));
        }
    }

    #[test]
    fn carry_purges_tombstones_and_compact_shrinks() {
        let bs = balls(64, 3);
        let cfg = ShardedConfig {
            staging_cap: 8,
            ..ShardedConfig::default()
        };
        let mut idx = ShardedIndex::new(cfg, 1).unwrap();
        let ids = idx.try_insert_batch::<3>(&bs).unwrap();
        idx.delete_batch(&ids[..32]);
        assert_eq!(idx.stats().dead, 32);
        // Enough inserts to carry through every occupied slot purge them.
        idx.try_insert_batch::<3>(&balls(64, 4)).unwrap();
        let s = idx.stats();
        assert_eq!(s.live, 96);
        // Compaction drops any remaining tombstones and minimizes slots.
        idx.compact::<3>().unwrap();
        let s = idx.stats();
        assert_eq!((s.live, s.dead, s.shards), (96, 0, 1));
        assert_eq!(idx.shard_sizes(), vec![(s.slots - 1, 96, 96)]);
    }

    #[test]
    fn batch_queries_match_single_probe_paths() {
        let bs = balls(400, 5);
        let mut idx = ShardedIndex::new(small_cfg(), 11).unwrap();
        let ids = idx.try_insert_batch::<3>(&bs).unwrap();
        idx.delete_batch(
            &ids.iter()
                .copied()
                .filter(|i| i % 5 == 0)
                .collect::<Vec<_>>(),
        );
        let probes = Workload::Clusters.generate::<2>(150, 13);
        for (pred, open) in [
            (CoverPredicate::Closed, false),
            (CoverPredicate::Open, true),
        ] {
            let batch = idx
                .try_covering_batch(&probes, pred, &ServeConfig::default())
                .unwrap();
            assert_eq!(batch.len(), probes.len());
            for (i, p) in probes.iter().enumerate() {
                assert_eq!(batch.hits(i), idx.covering_impl(p, open).unwrap());
            }
        }
        let knn = idx.try_knn_batch(&probes, 3).unwrap();
        for (i, p) in probes.iter().enumerate() {
            assert_eq!(knn[i], idx.try_knn(p, 3).unwrap());
        }
    }

    #[test]
    fn clone_shares_cores_and_diverges_on_mutation() {
        let bs = balls(120, 6);
        let mut a = ShardedIndex::from_balls::<3>(&bs, small_cfg(), 2).unwrap();
        let b = a.clone();
        a.delete_batch(&[0, 1, 2]);
        a.try_insert_batch::<3>(&balls(5, 7)).unwrap();
        assert_eq!(a.len(), 122);
        assert_eq!(b.len(), 120, "clone is isolated from mutations");
        let p = Point::from([0.5, 0.5]);
        let with_deleted = b.try_covering(&p).unwrap();
        for id in [0u64, 1, 2] {
            assert!(!a.try_covering(&p).unwrap().contains(&id) || !with_deleted.contains(&id));
        }
    }

    #[test]
    fn invalid_inputs_are_typed_errors() {
        let bad_cfg = ShardedConfig {
            staging_cap: 0,
            ..ShardedConfig::default()
        };
        assert!(matches!(
            ShardedIndex::<2>::new(bad_cfg, 1),
            Err(SepdcError::InvalidConfig {
                param: "sharded.staging_cap",
                ..
            })
        ));
        let mut idx = ShardedIndex::<2>::new(ShardedConfig::default(), 1).unwrap();
        let bad_ball = Ball {
            center: Point::from([f64::NAN, 0.0]),
            radius: 1.0,
        };
        assert_eq!(
            idx.try_insert_batch::<3>(&[bad_ball]),
            Err(SepdcError::NonFiniteBall { idx: 0 })
        );
        let nan_probe = Point::from([f64::NAN, 0.0]);
        assert_eq!(
            idx.try_covering(&nan_probe),
            Err(SepdcError::NonFinitePoint { idx: 0 })
        );
        assert_eq!(
            idx.try_knn(&nan_probe, 1),
            Err(SepdcError::NonFinitePoint { idx: 0 })
        );
        assert_eq!(
            idx.try_knn(&Point::from([0.0, 0.0]), 0),
            Err(SepdcError::InvalidK { k: 0 })
        );
        // Non-increasing explicit ids are rejected.
        let b = Ball::new(Point::from([0.0, 0.0]), 1.0);
        assert!(
            ShardedIndex::from_entries::<3>(&[(3, b), (3, b)], ShardedConfig::default(), 1)
                .is_err()
        );
    }

    #[test]
    fn knn_short_when_fewer_than_k_live() {
        let bs = balls(3, 8);
        let idx = ShardedIndex::from_balls::<3>(&bs, ShardedConfig::default(), 1).unwrap();
        let got = idx.try_knn(&Point::from([0.5, 0.5]), 10).unwrap();
        assert_eq!(got.len(), 3);
        let empty = ShardedIndex::<2>::new(ShardedConfig::default(), 1).unwrap();
        assert!(empty
            .try_knn(&Point::from([0.5, 0.5]), 4)
            .unwrap()
            .is_empty());
        assert!(empty
            .try_covering(&Point::from([0.5, 0.5]))
            .unwrap()
            .is_empty());
    }
}
