//! # sepdc — Separator Based Parallel Divide and Conquer
//!
//! Facade crate re-exporting the whole workspace: a reproduction of
//! Frieze, Miller & Teng, *Separator Based Parallel Divide and Conquer in
//! Computational Geometry* (SPAA 1992).
//!
//! ```
//! use sepdc::prelude::*;
//! ```
//!
//! See the individual crates for details:
//! * [`geom`] — d-dimensional geometry substrate.
//! * [`scan`] — parallel vector model (SCAN) primitives and cost model.
//! * [`separator`] — MTTV random sphere separators.
//! * [`core`] — neighborhood query structures and k-NN graph algorithms.
//! * [`workloads`] — reproducible point-set generators.
//! * [`viz`] — SVG rendering (regenerates the paper's Figure 1).

#![warn(missing_docs)]

pub use sepdc_core as core;
pub use sepdc_geom as geom;
pub use sepdc_scan as scan;
pub use sepdc_separator as separator;
pub use sepdc_viz as viz;
pub use sepdc_workloads as workloads;

/// Convenient glob-import surface for examples and downstream users.
pub mod prelude {
    pub use sepdc_geom::{Ball, Hyperplane, Point, Separator, Side, Sphere};
}

// Compile the README's code blocks as doctests so the front-page
// examples (including the serving quickstart) cannot silently rot.
#[cfg(doctest)]
#[doc = include_str!("../README.md")]
struct ReadmeDoctests;
