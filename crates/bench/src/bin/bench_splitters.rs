//! Splitter-backend shootout over the adversarial workloads.
//!
//! ```sh
//! cargo run --release -p sepdc-bench --bin bench_splitters          # full
//! cargo run --release -p sepdc-bench --bin bench_splitters -- --smoke
//! ```
//!
//! Runs the Section 6 recursion under every split-decision backend
//! (`random`, `halving`, `graph`) on the degenerate generators that stress
//! the tol gate — all-coincident, duplicate bundles, a tolerance-band
//! cluster, and the noisy-line workload — plus a uniform-cube control.
//! Every answer set is verified against the brute-force oracle before its
//! row is recorded.
//!
//! Writes `BENCH_splitters.json` (override with `SEPDC_BENCH_OUT`): the
//! table rows carry the crossing numbers (total + max at any node), tree
//! height, and the fallback/rescue counters per backend; the embedded
//! `"reports"` array holds each case's full [`sepdc_core::RunReport`], so
//! the per-depth crossing and candidate distributions travel with the
//! summary numbers.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sepdc_bench::harness::{host_info, json_str, timed, HostInfo, Table};
use sepdc_core::{brute_force_knn, parallel_knn, KnnDcConfig, SplitterKind};
use sepdc_geom::Point;
use sepdc_workloads::degenerate::{all_coincident, duplicate_bundles, tolerance_band_cluster};
use sepdc_workloads::Workload;

const SEED: u64 = 3;
const K: usize = 2;

/// The adversarial generator set: `(label, points)`.
fn workloads(n: usize) -> Vec<(&'static str, Vec<Point<2>>)> {
    let mut rng = ChaCha8Rng::seed_from_u64(SEED);
    vec![
        ("all-coincident", all_coincident::<2>(n, 2.5)),
        (
            "duplicate-bundles",
            duplicate_bundles::<2, _>(n, 8, &mut rng),
        ),
        (
            "tolerance-band",
            tolerance_band_cluster::<2, _>(n, 1e-6, &mut rng),
        ),
        ("noisy-line", Workload::NoisyLine.generate::<2>(n, SEED)),
        ("uniform-cube", Workload::UniformCube.generate::<2>(n, SEED)),
    ]
}

/// One embedded run report: (row label, median seconds, RunReport JSON).
type CaseReport = (String, f64, String);

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (reps, n) = if smoke { (1, 400) } else { (3, 20_000) };

    let mut table = Table::new(
        "BENCH splitter backends on adversarial workloads",
        &[
            "case",
            "median ms",
            "height",
            "crossing",
            "max node x",
            "forced",
            "degen",
            "halving",
            "rescues",
            "graph",
        ],
    );
    let mut reports: Vec<CaseReport> = Vec::new();

    for (workload, pts) in workloads(n) {
        let oracle = brute_force_knn(&pts, K);
        for kind in [
            SplitterKind::Random,
            SplitterKind::Halving,
            SplitterKind::Graph,
        ] {
            let cfg = KnnDcConfig::new(K).with_seed(SEED).with_splitter(kind);
            let mut secs = Vec::with_capacity(reps);
            let mut out = None;
            for _ in 0..reps {
                let (o, dt) = timed(|| parallel_knn::<2, 3>(&pts, &cfg));
                secs.push(dt);
                out = Some(o);
            }
            secs.sort_by(f64::total_cmp);
            let median = secs[secs.len() / 2];
            let out = out.unwrap();
            out.knn
                .same_distances(&oracle, 1e-9)
                .unwrap_or_else(|e| panic!("{workload}/{}: oracle mismatch: {e}", kind.name()));
            let label = format!("{workload} n={n} splitter={}", kind.name());
            reports.push((label.clone(), median, out.report.to_json()));
            table.row(
                label,
                vec![
                    format!("{:.2}", median * 1e3),
                    out.stats.height.to_string(),
                    out.stats.total_crossing.to_string(),
                    out.stats.max_node_crossing.to_string(),
                    out.stats.forced_leaves.to_string(),
                    out.stats.degenerate_splits.to_string(),
                    out.stats.halving_splits.to_string(),
                    out.stats.halving_rescues.to_string(),
                    out.stats.graph_splits.to_string(),
                ],
            );
        }
    }

    table.note(format!(
        "reps={reps}, median reported; every row verified against the brute \
         oracle; k={K}, seed={SEED}; per-depth crossing/candidate \
         distributions live in the embedded run reports"
    ));
    if smoke {
        table.note("--smoke run: n=400, 1 rep (CI sanity only)".to_string());
    }
    let host = host_info();
    table.note(host.describe());
    table.print();

    let out_path =
        std::env::var("SEPDC_BENCH_OUT").unwrap_or_else(|_| "BENCH_splitters.json".to_string());
    std::fs::write(&out_path, bench_json(&table, &reports, &host)).expect("write bench json");
    eprintln!("[wrote {out_path}]");
}

/// Combined artifact: the human-oriented table plus one full run report
/// per (workload, backend) case, same shape as the other bench bins.
fn bench_json(table: &Table, reports: &[CaseReport], host: &HostInfo) -> String {
    let mut s = String::from("{\n\"bench_splitters_version\": 1,\n\"host\": ");
    s.push_str(&host.to_json());
    s.push_str(",\n\"table\":\n");
    s.push_str(table.to_json().trim_end());
    s.push_str(",\n\"reports\": [\n");
    for (i, (label, median, report)) in reports.iter().enumerate() {
        s.push_str(&format!(
            "{{ \"label\": {}, \"median_ms\": {:.3}, \"report\":\n{} }}{}\n",
            json_str(label),
            median * 1e3,
            report.trim_end(),
            if i + 1 < reports.len() { "," } else { "" }
        ));
    }
    s.push_str("]\n}\n");
    s
}
