//! Property tests for the deterministic per-node seeding scheme
//! (`sepdc::core::seeding`) and the per-candidate sweep seeds
//! (`sepdc::separator::candidate_seed`).
//!
//! The construction's determinism contract rests on two facts: distinct
//! root-to-node paths never collide to the same RNG stream (up to the
//! automatic depth bound, `8·⌈log2 n⌉ + 64 = 320` for the largest
//! `u32`-indexed input), and candidate 0 of the sweep reproduces the
//! pre-sweep serial stream exactly. These properties pin both.

use proptest::prelude::*;
use sepdc::core::seeding::{child_seed, mix, path_seed, punt_seed};
use sepdc::separator::candidate_seed;

/// The deepest path the automatic depth guard permits for any input the
/// `u32` id arena can hold (`n ≤ 2^32` ⇒ limit = 8·32 + 64).
const MAX_AUTO_DEPTH: usize = 320;

fn path() -> impl Strategy<Value = Vec<bool>> {
    proptest::collection::vec(any::<bool>(), 0..MAX_AUTO_DEPTH + 1)
}

proptest! {
    #[test]
    fn distinct_paths_never_collide(
        root in any::<u64>(),
        a in path(),
        b in path(),
    ) {
        prop_assume!(a != b);
        prop_assert!(path_seed(root, &a) != path_seed(root, &b), "paths {:?} and {:?} collided under root {root:#x}", a, b);
    }

    #[test]
    fn extending_a_path_changes_its_seed(root in any::<u64>(), p in path(), right in any::<bool>()) {
        let s = path_seed(root, &p);
        prop_assert!(child_seed(s, right) != s);
    }

    #[test]
    fn sibling_and_punt_streams_are_pairwise_distinct(root in any::<u64>(), p in path()) {
        let s = path_seed(root, &p);
        let (l, r, q) = (child_seed(s, false), child_seed(s, true), punt_seed(s));
        prop_assert!(l != r);
        prop_assert!(l != q);
        prop_assert!(r != q);
        // None of the derived streams may alias the node's own stream.
        prop_assert!(l != s);
        prop_assert!(r != s);
        prop_assert!(q != s);
    }

    #[test]
    fn mix_is_injective_on_random_pairs(a in any::<u64>(), b in any::<u64>()) {
        // `mix` is a bijection (splitmix64 finalizer); injectivity is what
        // the collision-freedom argument leans on.
        prop_assume!(a != b);
        prop_assert!(mix(a) != mix(b));
    }

    #[test]
    fn candidate_seeds_distinct_within_a_node(seed in any::<u64>(), i in 0usize..1024, j in 0usize..1024) {
        prop_assume!(i != j);
        prop_assert!(candidate_seed(seed, i) != candidate_seed(seed, j));
    }

    #[test]
    fn candidate_zero_is_the_node_seed(seed in any::<u64>()) {
        // The sweep's candidate 0 must reproduce the pre-sweep serial RNG
        // stream: `ChaCha8Rng::seed_from_u64(seed)` — pinned so seeded
        // regression cases (e.g. the degenerate-separator seed) survive.
        prop_assert!(candidate_seed(seed, 0) == seed);
    }
}
