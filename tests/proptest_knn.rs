//! Property-based tests for the k-NN algorithms: random point clouds of
//! random sizes, dimensions and k, always compared against the brute-force
//! oracle. Duplicates and collinear structure arise from the coarse
//! coordinate grid.

use proptest::prelude::*;
use sepdc::core::{
    brute_force_knn, kdtree_all_knn, parallel_knn, simple_parallel_knn, KnnDcConfig,
    NeighborhoodSystem, QueryTree, QueryTreeConfig,
};
use sepdc::geom::Point;

/// Coarse grid coordinates: duplicates and exact ties are common, which is
/// exactly what we want to stress.
fn coarse_coord() -> impl Strategy<Value = f64> {
    (-8i32..8).prop_map(|x| x as f64 * 0.5)
}

fn cloud2(max: usize) -> impl Strategy<Value = Vec<Point<2>>> {
    proptest::collection::vec(
        [coarse_coord(), coarse_coord()].prop_map(Point::from),
        1..max,
    )
}

fn cloud3(max: usize) -> impl Strategy<Value = Vec<Point<3>>> {
    proptest::collection::vec(
        [coarse_coord(), coarse_coord(), coarse_coord()].prop_map(Point::from),
        1..max,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn kdtree_matches_oracle(pts in cloud2(200), k in 1usize..5) {
        let oracle = brute_force_knn(&pts, k);
        let kd = kdtree_all_knn(&pts, k);
        prop_assert!(kd.same_distances(&oracle, 1e-12).is_ok());
    }

    #[test]
    fn parallel_matches_oracle_2d(pts in cloud2(250), k in 1usize..4, seed in 0u64..1000) {
        let cfg = KnnDcConfig::new(k).with_seed(seed);
        let out = parallel_knn::<2, 3>(&pts, &cfg);
        let oracle = brute_force_knn(&pts, k);
        prop_assert!(out.knn.same_distances(&oracle, 1e-9).is_ok(),
            "{:?}", out.knn.same_distances(&oracle, 1e-9));
        prop_assert!(out.knn.check_invariants().is_ok());
    }

    #[test]
    fn simple_matches_oracle_2d(pts in cloud2(250), k in 1usize..4, seed in 0u64..1000) {
        let cfg = KnnDcConfig::new(k).with_seed(seed);
        let out = simple_parallel_knn::<2, 3>(&pts, &cfg);
        let oracle = brute_force_knn(&pts, k);
        prop_assert!(out.knn.same_distances(&oracle, 1e-9).is_ok(),
            "{:?}", out.knn.same_distances(&oracle, 1e-9));
    }

    #[test]
    fn parallel_matches_oracle_3d(pts in cloud3(150), k in 1usize..3, seed in 0u64..100) {
        let cfg = KnnDcConfig::new(k).with_seed(seed);
        let out = parallel_knn::<3, 4>(&pts, &cfg);
        let oracle = brute_force_knn(&pts, k);
        prop_assert!(out.knn.same_distances(&oracle, 1e-9).is_ok(),
            "{:?}", out.knn.same_distances(&oracle, 1e-9));
    }

    #[test]
    fn neighborhood_system_properties(pts in cloud2(150), k in 1usize..4) {
        prop_assume!(pts.len() > k);
        let knn = brute_force_knn(&pts, k);
        let sys = NeighborhoodSystem::from_knn(&pts, &knn);
        // The k-neighborhood property always holds for exact k-NN radii.
        prop_assert!(sys.check_k_neighborhood(k).is_ok());
        // Density Lemma with the closed-containment slack.
        let ply = sys.max_ply_at_centers();
        prop_assert!(ply <= 6 * k + k + 1, "ply {ply} too large for k={k}");
    }

    #[test]
    fn query_tree_covering_always_matches_scan(
        pts in cloud2(120),
        k in 1usize..3,
        probes in proptest::collection::vec([coarse_coord(), coarse_coord()].prop_map(Point::from), 1..30),
        seed in 0u64..100,
    ) {
        prop_assume!(pts.len() > k);
        let knn = brute_force_knn(&pts, k);
        let sys = NeighborhoodSystem::from_knn(&pts, &knn);
        let tree = QueryTree::build::<3>(sys.balls(), QueryTreeConfig::default(), seed);
        for p in &probes {
            let mut fast = tree.covering(p);
            fast.sort_unstable();
            let mut slow: Vec<u32> = sys.balls().iter().enumerate()
                .filter(|(_, b)| b.contains(p))
                .map(|(i, _)| i as u32)
                .collect();
            slow.sort_unstable();
            prop_assert_eq!(fast, slow);
        }
    }

    #[test]
    fn knn_radii_are_maximal(pts in cloud2(120), k in 1usize..3) {
        prop_assume!(pts.len() > k);
        // The k-neighborhood ball is the LARGEST ball whose interior holds
        // ≤ k-1 points: radius must equal the k-th nearest distance.
        let knn = brute_force_knn(&pts, k);
        for i in 0..pts.len() {
            let r_sq = knn.radius_sq(i);
            // Count strictly closer points.
            let closer = pts.iter().enumerate()
                .filter(|(j, q)| *j != i && pts[i].dist_sq(q) < r_sq)
                .count();
            prop_assert!(closer < k);
            // And at least one point at exactly the radius (the k-th).
            let at = pts.iter().enumerate()
                .filter(|(j, q)| *j != i && (pts[i].dist_sq(q) - r_sq).abs() < 1e-12)
                .count();
            prop_assert!(at >= 1);
        }
    }
}
