//! # sepdc-cli
//!
//! Library backing the `sepdc` command-line tool. All command logic lives
//! here (I/O-parameterized and unit-tested); the binary is a thin wrapper.
//!
//! ```text
//! sepdc generate --workload uniform-cube --n 1000 --dim 2 --seed 1 > pts.csv
//! sepdc knn --input pts.csv --dim 2 --k 3 --algo parallel --edges-out edges.csv
//! sepdc separator --input pts.csv --dim 2 --k 1
//! sepdc figure --input pts.csv --k 1 --out fig.svg
//! ```

#![warn(missing_docs)]

pub mod args;
pub mod commands;
pub mod daemon;
pub mod io;

/// CLI result type: user-facing error strings.
pub type CliResult<T> = Result<T, String>;
