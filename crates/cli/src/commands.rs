//! Command implementations, I/O-free (strings in, strings out) so they are
//! directly testable; the binary handles files and process exit codes.

use crate::io::{format_edges, format_points, parse_points, sniff_dimension};
use crate::CliResult;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sepdc_core::serve::{CoverPredicate, ServeConfig};
use sepdc_core::snapshot::{self, SnapshotKind};
use sepdc_core::{
    kdtree_all_knn, try_brute_force_knn, try_kdtree_all_knn, try_kdtree_all_knn_with,
    try_parallel_knn, try_simple_parallel_knn, KnnDcConfig, KnnGraph, KnnResult,
    NeighborhoodSystem, Precision, QueryTree, QueryTreeConfig, RunReport, SepdcError,
    ShardedConfig, ShardedIndex, SplitterKind,
};
use sepdc_separator::{find_good_separator, SeparatorConfig};
use sepdc_workloads::Workload;

/// Supported dimensions (the paper treats `d` as a fixed constant; the
/// binary monomorphizes these).
pub const SUPPORTED_DIMS: std::ops::RangeInclusive<usize> = 1..=5;

/// Dispatch a dimension-generic operation over the supported dimensions.
macro_rules! with_dim {
    ($dim:expr, $f:ident ( $($arg:expr),* )) => {
        match $dim {
            1 => $f::<1, 2>($($arg),*),
            2 => $f::<2, 3>($($arg),*),
            3 => $f::<3, 4>($($arg),*),
            4 => $f::<4, 5>($($arg),*),
            5 => $f::<5, 6>($($arg),*),
            d => Err(format!("unsupported dimension {d} (supported: 1..=5)")),
        }
    };
}

/// Parse a `--splitter` flag value into a [`SplitterKind`], with the valid
/// names listed in the error.
pub fn splitter_by_name(name: &str) -> CliResult<SplitterKind> {
    SplitterKind::parse(name)
        .ok_or_else(|| format!("unknown splitter '{name}' (available: random, halving, graph)"))
}

/// Parse a `--precision` flag value into a [`Precision`] tier.
pub fn precision_by_name(name: &str) -> CliResult<Precision> {
    Precision::parse(name)
        .ok_or_else(|| format!("unknown precision '{name}' (available: exact, mixed)"))
}

fn workload_by_name(name: &str) -> CliResult<Workload> {
    Workload::ALL
        .into_iter()
        .find(|w| w.name() == name)
        .ok_or_else(|| {
            let names: Vec<&str> = Workload::ALL.iter().map(|w| w.name()).collect();
            format!(
                "unknown workload '{name}' (available: {})",
                names.join(", ")
            )
        })
}

/// `generate`: emit a workload point set as CSV.
pub fn generate(workload: &str, n: usize, dim: usize, seed: u64) -> CliResult<String> {
    let w = workload_by_name(workload)?;
    fn run<const D: usize, const E: usize>(w: Workload, n: usize, seed: u64) -> CliResult<String> {
        Ok(format_points(&w.generate::<D>(n, seed)))
    }
    with_dim!(dim, run(w, n, seed))
}

/// Output of the `knn` command.
#[derive(Debug)]
pub struct KnnCommandOutput {
    /// Edge list CSV (undirected, with distances).
    pub edges_csv: String,
    /// Human-readable run summary.
    pub summary: String,
    /// Serialized [`RunReport`] for the run, when the chosen algorithm
    /// produces one (`parallel` and `simple`; `kdtree` and `brute` have no
    /// instrumented recursion and yield `None`).
    pub report_json: Option<String>,
}

/// `knn`: compute the k-NN graph of a point file with a chosen algorithm.
///
/// `precision` selects the DESIGN.md §17 filtering tier (output-invisible;
/// `mixed` is the default everywhere). `epsilon > 0` opts into `(1+ε)`-
/// approximate correction for the `parallel`/`simple` algorithms; the exact
/// run is then computed alongside and the *measured* error certificate is
/// appended to the report (`certificate.*` counters) and the summary.
pub fn knn(
    input: &str,
    dim_flag: Option<usize>,
    k: usize,
    algo: &str,
    seed: u64,
    splitter: SplitterKind,
    precision: Precision,
    epsilon: f64,
) -> CliResult<KnnCommandOutput> {
    let dim = resolve_dim(input, dim_flag)?;
    fn run<const D: usize, const E: usize>(
        input: &str,
        k: usize,
        algo: &str,
        seed: u64,
        splitter: SplitterKind,
        precision: Precision,
        epsilon: f64,
    ) -> CliResult<KnnCommandOutput> {
        let points = parse_points::<D>(input)?;
        if points.is_empty() {
            // The algorithms accept n = 0 (empty result), but an empty
            // point file at the CLI boundary is a user mistake.
            return Err(SepdcError::EmptyInput.to_string());
        }
        if epsilon > 0.0 && !matches!(algo, "parallel" | "simple") {
            return Err(format!(
                "--epsilon requires the parallel or simple algorithm (got '{algo}')"
            ));
        }
        let cfg = KnnDcConfig::new(k)
            .with_seed(seed)
            .with_splitter(splitter)
            .with_precision(precision)
            .with_epsilon(epsilon);
        let t0 = std::time::Instant::now();
        // Appends the measured ε error certificate (vs a fresh exact run)
        // to the summary and report of an approximate run.
        let certify = |knn: &KnnResult,
                       exact: Result<KnnResult, SepdcError>,
                       extra: &mut String,
                       report: &mut RunReport|
         -> Result<(), SepdcError> {
            let cert = knn.error_certificate(&exact?);
            extra.push_str(&format!(
                ", ε-certificate: max rel err {:.3e} (mean {:.3e}, {} of {} ranks differ)",
                cert.max_rel_error,
                cert.mean_rel_error(),
                cert.mismatched_entries,
                cert.compared_entries,
            ));
            report.counters.extend(cert.counters());
            Ok(())
        };
        // All algorithms run through their `try_*` variants: NaN-poisoned
        // files, `k = 0`, and any other invalid input surface as the typed
        // error's message instead of a panic.
        let run: Result<(KnnResult, String, Option<String>), SepdcError> = match algo {
            "parallel" => try_parallel_knn::<D, E>(&points, &cfg).and_then(|out| {
                // Every fallback path is surfaced here: silent forced
                // leaves or degenerate splits are exactly the conditions
                // that erode the separator guarantees, so hiding them from
                // the summary would mask a degraded run.
                let mut extra = format!(
                    ", depth {} rounds, {} fast / {} punts ({} threshold, {} marching), \
                     {} forced leaves ({} degenerate splits, {} depth-capped), \
                     {} march steps ({} pruned), {} correction dist evals",
                    out.cost.depth,
                    out.stats.fast_corrections,
                    out.stats.punts_threshold + out.stats.punts_marching,
                    out.stats.punts_threshold,
                    out.stats.punts_marching,
                    out.stats.forced_leaves,
                    out.stats.degenerate_splits,
                    out.stats.depth_forced_leaves,
                    out.meter.marching_balls,
                    out.meter.march_pruned,
                    out.meter.correction_dist_evals,
                );
                let mut report = out.report;
                if epsilon > 0.0 {
                    let exact = try_parallel_knn::<D, E>(&points, &cfg.with_epsilon(0.0))
                        .map(|o| o.knn);
                    certify(&out.knn, exact, &mut extra, &mut report)?;
                }
                Ok((out.knn, extra, Some(report.to_json())))
            }),
            "simple" => try_simple_parallel_knn::<D, E>(&points, &cfg).and_then(|out| {
                let mut extra = format!(
                    ", depth {} rounds, {} forced leaves ({} degenerate splits, {} depth-capped)",
                    out.cost.depth,
                    out.stats.forced_leaves,
                    out.stats.degenerate_splits,
                    out.stats.depth_forced_leaves,
                );
                let mut report = out.report;
                if epsilon > 0.0 {
                    let exact = try_simple_parallel_knn::<D, E>(&points, &cfg.with_epsilon(0.0))
                        .map(|o| o.knn);
                    certify(&out.knn, exact, &mut extra, &mut report)?;
                }
                Ok((out.knn, extra, Some(report.to_json())))
            }),
            "kdtree" => try_kdtree_all_knn_with(&points, k, precision).map(|(r, fstats)| {
                let extra = if precision.is_mixed() {
                    format!(
                        ", precision tier: {} f32 rejects / {} f64 confirms ({} bound violations)",
                        fstats.f32_rejects, fstats.f64_confirms, fstats.unsafe_margin_hits,
                    )
                } else {
                    String::new()
                };
                (r, extra, None)
            }),
            "brute" => try_brute_force_knn(&points, k).map(|r| (r, String::new(), None)),
            other => {
                return Err(format!(
                    "unknown algorithm '{other}' (parallel, simple, kdtree, brute)"
                ))
            }
        };
        let (result, extra, report_json) = run.map_err(|e| e.to_string())?;
        let elapsed = t0.elapsed();
        let graph = KnnGraph::from_knn(&result);
        let edges: Vec<(u32, u32, f64)> = graph
            .edges()
            .iter()
            .map(|&(a, b)| (a, b, points[a as usize].dist(&points[b as usize])))
            .collect();
        let summary = format!(
            "{} points (d={D}), k={k}, algo={algo}: {} edges, max degree {}, {} component(s), {elapsed:.2?}{extra}",
            points.len(),
            graph.num_edges(),
            graph.max_degree(),
            graph.connected_components(),
        );
        Ok(KnnCommandOutput {
            edges_csv: format_edges(&edges),
            summary,
            report_json,
        })
    }
    with_dim!(dim, run(input, k, algo, seed, splitter, precision, epsilon))
}

/// Output of the `query` command.
#[derive(Debug)]
pub struct QueryCommandOutput {
    /// Hit lists CSV: `probe,count,ball_ids` (ids space-separated).
    pub hits_csv: String,
    /// Human-readable serving summary (throughput, cost, tree shape).
    pub summary: String,
    /// Serialized [`RunReport`] of the serve run (`algo = "query-serve"`).
    pub report_json: String,
}

/// `query`: build the §3 search structure over a point file's k-NN
/// neighborhood system, then serve a probe batch against it through the
/// [`sepdc_core::serve`] engine.
///
/// Probes come either from a probe file (`probes_text`, same format and
/// dimension as the input) or from a generated workload
/// (`probe_workload` × `probe_n`, seeded off the main seed so probes are
/// off-sample but reproducible).
#[allow(clippy::too_many_arguments)]
pub fn query(
    input: &str,
    dim_flag: Option<usize>,
    k: usize,
    probes_text: Option<&str>,
    probe_workload: &str,
    probe_n: usize,
    interior: bool,
    seed: u64,
    chunk: usize,
    splitter: SplitterKind,
    precision: Precision,
    epsilon: f64,
) -> CliResult<QueryCommandOutput> {
    let dim = resolve_dim(input, dim_flag)?;
    let probe_w = workload_by_name(probe_workload)?;
    #[allow(clippy::too_many_arguments)]
    fn run<const D: usize, const E: usize>(
        input: &str,
        k: usize,
        probes_text: Option<&str>,
        probe_w: Workload,
        probe_n: usize,
        interior: bool,
        seed: u64,
        chunk: usize,
        splitter: SplitterKind,
        precision: Precision,
        epsilon: f64,
    ) -> CliResult<QueryCommandOutput> {
        let points = parse_points::<D>(input)?;
        if points.is_empty() {
            return Err(SepdcError::EmptyInput.to_string());
        }
        let probes = match probes_text {
            Some(text) => parse_points::<D>(text)?,
            None => probe_w.generate::<D>(probe_n, seed ^ 0x5EED_BA7C),
        };
        let t_build = std::time::Instant::now();
        let knn = try_kdtree_all_knn(&points, k).map_err(|e| e.to_string())?;
        let system = NeighborhoodSystem::from_knn(&points, &knn);
        let tree_cfg = QueryTreeConfig {
            splitter,
            precision,
            ..QueryTreeConfig::default()
        };
        let tree =
            QueryTree::try_build::<E>(system.balls(), tree_cfg, seed).map_err(|e| e.to_string())?;
        let build_s = t_build.elapsed().as_secs_f64();
        let pred = if interior {
            CoverPredicate::Open
        } else {
            CoverPredicate::Closed
        };
        let cfg = ServeConfig {
            chunk_size: chunk,
            record: true,
            precision,
            epsilon,
            ..ServeConfig::default()
        };
        let out = tree
            .try_serve(&probes, pred, &cfg)
            .map_err(|e| e.to_string())?;
        let serve_s = out.report.wall_ms / 1e3;
        let mut hits_csv = String::from("# probe,count,ball_ids\n");
        for (i, hits) in out.result.iter().enumerate() {
            let ids: Vec<String> = hits.iter().map(u32::to_string).collect();
            hits_csv.push_str(&format!("{i},{},{}\n", hits.len(), ids.join(" ")));
        }
        let stats = tree.stats();
        let summary = format!(
            "{} balls (d={D}, k={k}), tree height {} / {} leaves, built in {:.1} ms; \
             served {} probes ({} predicate) in {:.2} ms: {} hits, \
             {:.0} probes/s, query cost mean {:.1} max {}",
            tree.len(),
            stats.height,
            stats.leaves,
            build_s * 1e3,
            out.stats.probes,
            pred.name(),
            serve_s * 1e3,
            out.stats.hits,
            out.stats.probes as f64 / serve_s.max(1e-9),
            out.stats.mean_cost(),
            out.stats.cost_max,
        );
        Ok(QueryCommandOutput {
            hits_csv,
            summary,
            report_json: out.report.to_json(),
        })
    }
    with_dim!(
        dim,
        run(
            input,
            k,
            probes_text,
            probe_w,
            probe_n,
            interior,
            seed,
            chunk,
            splitter,
            precision,
            epsilon
        )
    )
}

/// Output of the `index build` command.
#[derive(Debug)]
pub struct IndexBuildOutput {
    /// Serialized snapshot bytes (the `.snap` file contents).
    pub snapshot: Vec<u8>,
    /// Human-readable build summary.
    pub summary: String,
}

/// `index build`: build the §3 query structure over a point file's k-NN
/// neighborhood system and serialize it as a versioned snapshot.
///
/// Runs the exact pipeline the `query` command runs (kd-tree k-NN →
/// neighborhood system → `QueryTree` with the default config and the
/// given seed), so a daemon serving the snapshot answers byte-identically
/// to `sepdc query` over the same inputs.
///
/// `sharded: Some(staging_cap)` freezes a batch-dynamic
/// [`ShardedIndex`] (snapshot kind 3) instead: same balls, same global
/// ids (the input row order), but the served daemon additionally accepts
/// `insert`/`delete` lines.
#[allow(clippy::too_many_arguments)]
pub fn index_build(
    input: &str,
    dim_flag: Option<usize>,
    k: usize,
    seed: u64,
    sharded: Option<usize>,
    splitter: SplitterKind,
    precision: Precision,
    epsilon: f64,
) -> CliResult<IndexBuildOutput> {
    let dim = resolve_dim(input, dim_flag)?;
    fn run<const D: usize, const E: usize>(
        input: &str,
        k: usize,
        seed: u64,
        sharded: Option<usize>,
        splitter: SplitterKind,
        precision: Precision,
        epsilon: f64,
    ) -> CliResult<IndexBuildOutput> {
        let points = parse_points::<D>(input)?;
        if points.is_empty() {
            return Err(SepdcError::EmptyInput.to_string());
        }
        // The tier and ε ride in the snapshot META (words 16/17), so a
        // daemon loading this index serves with the same knobs.
        let tree_cfg = QueryTreeConfig {
            splitter,
            precision,
            epsilon,
            ..QueryTreeConfig::default()
        };
        let t0 = std::time::Instant::now();
        let knn = try_kdtree_all_knn(&points, k).map_err(|e| e.to_string())?;
        let system = NeighborhoodSystem::from_knn(&points, &knn);
        if let Some(staging_cap) = sharded {
            let cfg = ShardedConfig {
                staging_cap,
                tree: tree_cfg,
            };
            let index = ShardedIndex::from_balls::<E>(system.balls(), cfg, seed)
                .map_err(|e| e.to_string())?;
            let build_ms = t0.elapsed().as_secs_f64() * 1e3;
            let snapshot = snapshot::save_sharded_index(&index);
            let s = index.stats();
            let summary = format!(
                "sharded-indexed {} balls (d={D}, k={k}, seed {seed}, staging {staging_cap}) \
                 in {build_ms:.1} ms: {} shards / {} slots, {} staged, snapshot {} bytes",
                s.live,
                s.shards,
                s.slots,
                s.staged,
                snapshot.len(),
            );
            return Ok(IndexBuildOutput { snapshot, summary });
        }
        let tree =
            QueryTree::try_build::<E>(system.balls(), tree_cfg, seed).map_err(|e| e.to_string())?;
        let build_ms = t0.elapsed().as_secs_f64() * 1e3;
        let snapshot = snapshot::save_query_tree(&tree);
        let stats = tree.stats();
        let summary = format!(
            "indexed {} balls (d={D}, k={k}, seed {seed}, splitter {}) in {build_ms:.1} ms: \
             height {}, {} leaves, snapshot {} bytes",
            tree.len(),
            splitter.name(),
            stats.height,
            stats.leaves,
            snapshot.len(),
        );
        Ok(IndexBuildOutput { snapshot, summary })
    }
    with_dim!(dim, run(input, k, seed, sharded, splitter, precision, epsilon))
}

/// `index inspect`: print a snapshot's header and section table, then
/// deep-validate it by reconstructing the stored structure. Corrupt
/// files surface their typed [`sepdc_core::snapshot::SnapshotError`]
/// message instead of partial output.
pub fn index_inspect(bytes: &[u8]) -> CliResult<String> {
    let info = snapshot::inspect(bytes).map_err(|e| e.to_string())?;
    let mut out = format!(
        "snapshot: {} v{} (dim {}, {} bytes)\nsections:\n",
        info.kind.name(),
        info.version,
        info.dim,
        info.total_len,
    );
    for s in &info.sections {
        out.push_str(&format!(
            "  {:4}  offset {:>10}  len {:>10}  fnv1a64 {:016x}\n",
            s.tag, s.offset, s.len, s.checksum
        ));
    }
    let detail = match info.kind {
        SnapshotKind::QueryTree => {
            fn load<const D: usize, const E: usize>(bytes: &[u8]) -> CliResult<String> {
                let t0 = std::time::Instant::now();
                let tree = snapshot::load_query_tree::<D>(bytes).map_err(|e| e.to_string())?;
                let s = tree.stats();
                Ok(format!(
                    "query-tree: {} balls, height {}, {} leaves, {} internals, \
                     {} stored refs, seed {}, splitter {}, precision {} (ε = {}); \
                     loaded + validated in {:.1} ms\n",
                    tree.len(),
                    s.height,
                    s.leaves,
                    s.internals,
                    s.stored_balls,
                    tree.run_report().seed,
                    tree.splitter().name(),
                    tree.precision().name(),
                    tree.epsilon(),
                    t0.elapsed().as_secs_f64() * 1e3,
                ))
            }
            with_dim!(info.dim as usize, load(bytes))?
        }
        SnapshotKind::PartitionTree => {
            fn load<const D: usize, const E: usize>(bytes: &[u8]) -> CliResult<String> {
                let tree = snapshot::load_partition_tree::<D>(bytes).map_err(|e| e.to_string())?;
                Ok(format!(
                    "partition-tree: {} nodes, {} leaves, height {}, {} points, bounds: {}\n",
                    tree.nodes().len(),
                    tree.leaves(),
                    tree.height(),
                    tree.perm().len(),
                    tree.bounds().is_some(),
                ))
            }
            with_dim!(info.dim as usize, load(bytes))?
        }
        SnapshotKind::ShardedIndex => {
            fn load<const D: usize, const E: usize>(bytes: &[u8]) -> CliResult<String> {
                let t0 = std::time::Instant::now();
                let index = snapshot::load_sharded_index::<D>(bytes).map_err(|e| e.to_string())?;
                let s = index.stats();
                let mut detail = format!(
                    "sharded-index: {} live balls ({} dead, {} staged) in {} shards / {} slots, \
                     seed {}, next id {}, {} rebuilds; loaded + validated in {:.1} ms\n",
                    s.live,
                    s.dead,
                    s.staged,
                    s.shards,
                    s.slots,
                    index.seed(),
                    s.next_id,
                    s.rebuilds,
                    t0.elapsed().as_secs_f64() * 1e3,
                );
                for (slot, live, total) in index.shard_sizes() {
                    detail.push_str(&format!("  slot {slot:>2}: {live} live / {total} stored\n"));
                }
                Ok(detail)
            }
            with_dim!(info.dim as usize, load(bytes))?
        }
    };
    out.push_str(&detail);
    Ok(out)
}

/// `report`: pretty-print a previously saved run report (`sepdc knn
/// --report out.json` output, or the per-case reports embedded in the
/// benchmark JSON). Schema-version mismatches and malformed JSON surface
/// as errors rather than partial output.
pub fn report(text: &str) -> CliResult<String> {
    RunReport::from_json(text)
        .map(|r| r.render_human())
        .map_err(|e| e.to_string())
}

/// `separator`: draw a good separator for a point file and report its
/// quality against the exact k-neighborhood system.
pub fn separator(input: &str, dim_flag: Option<usize>, k: usize, seed: u64) -> CliResult<String> {
    let dim = resolve_dim(input, dim_flag)?;
    fn run<const D: usize, const E: usize>(input: &str, k: usize, seed: u64) -> CliResult<String> {
        let points = parse_points::<D>(input)?;
        if points.len() <= k {
            return Err(format!("need more than k = {k} points"));
        }
        let cfg = SeparatorConfig::default();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let found = find_good_separator::<D, E, _>(&points, &cfg, &mut rng)
            .ok_or("point set cannot be split (all points identical?)")?;
        let knn = kdtree_all_knn(&points, k);
        let system = NeighborhoodSystem::from_knn(&points, &knn);
        let iota = system.intersection_number(&found.separator);
        Ok(format!(
            "separator found in {} attempt(s) ({:?}): split {} / {} (ratio {:.3} ≤ δ = {:.3}), \
             ι_B(S) = {iota} of {} balls ({:.1}% crossing; O(n^{:.2}) scale = {:.0})",
            found.attempts,
            found.outcome,
            found.counts.left(),
            found.counts.right(),
            found.counts.ratio(),
            cfg.delta(D),
            points.len(),
            100.0 * iota as f64 / points.len() as f64,
            (D as f64 - 1.0) / D as f64,
            (points.len() as f64).powf((D as f64 - 1.0) / D as f64),
        ))
    }
    with_dim!(dim, run(input, k, seed))
}

/// `figure`: render a 2D point file's neighborhood system + separator as
/// SVG (the paper's Figure 1 for your own data).
pub fn figure(input: &str, k: usize, seed: u64) -> CliResult<String> {
    let points = parse_points::<2>(input)?;
    if points.len() <= k {
        return Err(format!("need more than k = {k} points"));
    }
    let cfg = SeparatorConfig::default();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let found = find_good_separator::<2, 3, _>(&points, &cfg, &mut rng)
        .ok_or("point set cannot be split")?;
    let knn = kdtree_all_knn(&points, k);
    let system = NeighborhoodSystem::from_knn(&points, &knn);
    Ok(sepdc_viz::scene::draw_figure1(
        system.balls(),
        &found.separator,
        640.0,
    ))
}

fn resolve_dim(input: &str, dim_flag: Option<usize>) -> CliResult<usize> {
    match dim_flag {
        Some(d) => Ok(d),
        None => sniff_dimension(input).ok_or("empty input; cannot infer dimension".to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_then_knn_roundtrip() {
        let pts = generate("uniform-cube", 200, 2, 7).unwrap();
        let out = knn(&pts, None, 2, "parallel", 1, SplitterKind::Random, Precision::Mixed, 0.0).unwrap();
        assert!(out.summary.contains("200 points (d=2)"));
        assert!(out.edges_csv.lines().count() > 200);
        // Same input through the oracle gives the same edge count.
        let oracle = knn(&pts, Some(2), 2, "brute", 1, SplitterKind::Random, Precision::Mixed, 0.0).unwrap();
        assert_eq!(
            out.edges_csv.lines().count(),
            oracle.edges_csv.lines().count()
        );
    }

    #[test]
    fn all_algorithms_agree_via_cli() {
        let pts = generate("clusters", 150, 3, 3).unwrap();
        let mut counts = Vec::new();
        for algo in ["parallel", "simple", "kdtree", "brute"] {
            let out = knn(&pts, None, 1, algo, 5, SplitterKind::Random, Precision::Mixed, 0.0).unwrap();
            counts.push(out.edges_csv.lines().count());
        }
        assert!(counts.windows(2).all(|w| w[0] == w[1]), "{counts:?}");
    }

    #[test]
    fn dimension_sniffing() {
        let pts = generate("uniform-cube", 50, 4, 1).unwrap();
        let out = knn(&pts, None, 1, "kdtree", 1, SplitterKind::Random, Precision::Mixed, 0.0).unwrap();
        assert!(out.summary.contains("(d=4)"));
    }

    #[test]
    fn unknown_workload_and_algo() {
        assert!(generate("nope", 10, 2, 1)
            .unwrap_err()
            .contains("available"));
        let pts = generate("grid", 30, 2, 1).unwrap();
        assert!(knn(&pts, None, 1, "nope", 1, SplitterKind::Random, Precision::Mixed, 0.0).is_err());
    }

    #[test]
    fn unsupported_dimension() {
        assert!(generate("uniform-cube", 10, 9, 1)
            .unwrap_err()
            .contains("unsupported dimension"));
    }

    #[test]
    fn separator_report() {
        let pts = generate("uniform-cube", 500, 2, 2).unwrap();
        let report = separator(&pts, None, 1, 3).unwrap();
        assert!(report.contains("split"), "{report}");
        assert!(report.contains("ι_B(S)"), "{report}");
    }

    #[test]
    fn figure_is_svg() {
        let pts = generate("clusters", 120, 2, 4).unwrap();
        let svg = figure(&pts, 1, 5).unwrap();
        assert!(svg.starts_with("<svg"));
        assert!(svg.contains("Figure 1"));
    }

    #[test]
    fn knn_summary_surfaces_fallback_counters() {
        // Satellite fix: degenerate splits, depth-capped leaves, and punt
        // counters used to be computed and then dropped on the floor.
        let pts = generate("uniform-cube", 400, 2, 9).unwrap();
        let out = knn(&pts, None, 2, "parallel", 3, SplitterKind::Random, Precision::Mixed, 0.0).unwrap();
        for needle in [
            "fast",
            "punts",
            "threshold",
            "marching",
            "forced leaves",
            "degenerate splits",
            "depth-capped",
            "march steps",
            "pruned",
            "correction dist evals",
        ] {
            assert!(out.summary.contains(needle), "{}", out.summary);
        }
        let simple = knn(&pts, None, 2, "simple", 3, SplitterKind::Random, Precision::Mixed, 0.0).unwrap();
        for needle in ["forced leaves", "degenerate splits", "depth-capped"] {
            assert!(simple.summary.contains(needle), "{}", simple.summary);
        }
        // The brute/kdtree paths have no instrumented recursion.
        assert!(knn(&pts, None, 2, "brute", 3, SplitterKind::Random, Precision::Mixed, 0.0)
            .unwrap()
            .report_json
            .is_none());
        assert!(knn(&pts, None, 2, "kdtree", 3, SplitterKind::Random, Precision::Mixed, 0.0)
            .unwrap()
            .report_json
            .is_none());
    }

    #[test]
    fn knn_report_json_is_a_valid_run_report() {
        let pts = generate("clusters", 300, 3, 2).unwrap();
        for (algo, name) in [("parallel", "parallel"), ("simple", "simple")] {
            let out = knn(&pts, None, 2, algo, 7, SplitterKind::Random, Precision::Mixed, 0.0).unwrap();
            let json = out.report_json.as_deref().expect(algo);
            let rep = RunReport::from_json(json).unwrap();
            assert_eq!(rep.algo, name);
            assert_eq!(rep.n, 300);
            assert_eq!(rep.k, 2);
            assert!(rep.wall_ms > 0.0, "{algo}: wall time must be stamped");
            assert!(!rep.phases.is_empty(), "{algo}: recording is on by default");
            assert!(rep.counter("stats.base_leaves").unwrap() >= 1.0);
        }
    }

    #[test]
    fn query_serves_probes_and_reports() {
        let pts = generate("uniform-cube", 300, 2, 11).unwrap();
        let out = query(
            &pts,
            None,
            2,
            None,
            "uniform-cube",
            100,
            false,
            11,
            32,
            SplitterKind::Random,
            Precision::Mixed,
            0.0,
        )
        .unwrap();
        assert!(out.summary.contains("served 100 probes"), "{}", out.summary);
        assert!(out.summary.contains("closed predicate"), "{}", out.summary);
        // Header + one row per probe.
        assert_eq!(out.hits_csv.lines().count(), 101);
        let rep = RunReport::from_json(&out.report_json).unwrap();
        assert_eq!(rep.algo, "query-serve");
        assert_eq!(rep.counter("serve.probes").unwrap(), 100.0);
        assert!(rep.counter("serve.chunks").unwrap() >= 1.0);
    }

    #[test]
    fn query_hits_match_pointwise_interior() {
        let pts_csv = generate("clusters", 200, 2, 5).unwrap();
        let probes_csv = generate("uniform-cube", 60, 2, 6).unwrap();
        let out = query(
            &pts_csv,
            None,
            1,
            Some(&probes_csv),
            "grid",
            0,
            true,
            5,
            7,
            SplitterKind::Random,
            Precision::Mixed,
            0.0,
        )
        .unwrap();
        assert!(out.summary.contains("open predicate"), "{}", out.summary);
        // Rebuild the same structures directly; every CSV row must equal
        // the pointwise interior query.
        let points = parse_points::<2>(&pts_csv).unwrap();
        let probes = parse_points::<2>(&probes_csv).unwrap();
        let knn = try_kdtree_all_knn(&points, 1).unwrap();
        let system = NeighborhoodSystem::from_knn(&points, &knn);
        let tree =
            QueryTree::try_build::<3>(system.balls(), QueryTreeConfig::default(), 5).unwrap();
        let rows: Vec<&str> = out.hits_csv.lines().skip(1).collect();
        assert_eq!(rows.len(), probes.len());
        for (i, row) in rows.iter().enumerate() {
            let mut parts = row.splitn(3, ',');
            assert_eq!(parts.next().unwrap().parse::<usize>().unwrap(), i);
            let count: usize = parts.next().unwrap().parse().unwrap();
            let ids: Vec<u32> = parts
                .next()
                .unwrap()
                .split_whitespace()
                .map(|s| s.parse().unwrap())
                .collect();
            assert_eq!(ids.len(), count);
            assert_eq!(ids, tree.covering_interior(&probes[i]), "probe {i}");
        }
    }

    #[test]
    fn query_rejects_bad_probe_files_and_config() {
        let pts = generate("grid", 50, 2, 1).unwrap();
        // Non-finite probe coordinates are rejected with the line number.
        let err = query(
            &pts,
            None,
            1,
            Some("0.5,0.5\nnan,0.2\n"),
            "uniform-cube",
            0,
            false,
            1,
            8,
            SplitterKind::Random,
            Precision::Mixed,
            0.0,
        )
        .unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        // A zero chunk size is a typed config error from the serve engine.
        let err = query(
            &pts,
            None,
            1,
            None,
            "uniform-cube",
            10,
            false,
            1,
            0,
            SplitterKind::Random,
            Precision::Mixed,
            0.0,
        )
        .unwrap_err();
        assert!(err.contains("serve.chunk_size"), "{err}");
    }

    #[test]
    fn report_pretty_printer_round_trip() {
        let pts = generate("uniform-cube", 250, 2, 4).unwrap();
        let out = knn(&pts, None, 1, "parallel", 6, SplitterKind::Random, Precision::Mixed, 0.0).unwrap();
        let rendered = report(out.report_json.as_deref().unwrap()).unwrap();
        assert!(rendered.contains("run report v1"), "{rendered}");
        assert!(rendered.contains("phase timings"), "{rendered}");
        assert!(rendered.contains("per-depth histogram"), "{rendered}");
        // Bad inputs are typed errors, not partial output.
        assert!(report("not json").unwrap_err().contains("parse"));
        let err = report("{\"run_report_version\": 99}").unwrap_err();
        assert!(err.contains("99"), "{err}");
    }

    #[test]
    fn knn_rejects_zero_k_and_empty() {
        let pts = generate("grid", 20, 2, 1).unwrap();
        // `k = 0` and empty inputs map to the typed SepdcError messages.
        for algo in ["parallel", "simple", "kdtree", "brute"] {
            let err = knn(&pts, None, 0, algo, 1, SplitterKind::Random, Precision::Mixed, 0.0).unwrap_err();
            assert!(err.contains("invalid k = 0"), "{algo}: {err}");
        }
        let err = knn("", Some(2), 1, "brute", 1, SplitterKind::Random, Precision::Mixed, 0.0).unwrap_err();
        assert!(err.contains("empty"), "{err}");
    }

    #[test]
    fn knn_precision_tiers_agree_and_epsilon_certifies() {
        let pts = generate("uniform-cube", 300, 2, 13).unwrap();
        // Exact and mixed tiers return identical edges for every algorithm
        // that supports the tier flag.
        for algo in ["parallel", "simple", "kdtree"] {
            let exact = knn(&pts, None, 2, algo, 3, SplitterKind::Random, Precision::Exact, 0.0)
                .unwrap();
            let mixed = knn(&pts, None, 2, algo, 3, SplitterKind::Random, Precision::Mixed, 0.0)
                .unwrap();
            assert_eq!(exact.edges_csv, mixed.edges_csv, "{algo}");
        }
        // The kdtree summary surfaces the tier counters in mixed mode only.
        let kd = knn(&pts, None, 2, "kdtree", 3, SplitterKind::Random, Precision::Mixed, 0.0)
            .unwrap();
        assert!(kd.summary.contains("f32 rejects"), "{}", kd.summary);
        // ε > 0 runs the exact algorithm alongside and reports a measured
        // certificate in the summary and the report counters.
        let eps = knn(&pts, None, 2, "parallel", 3, SplitterKind::Random, Precision::Mixed, 0.25)
            .unwrap();
        assert!(eps.summary.contains("ε-certificate"), "{}", eps.summary);
        let rep = RunReport::from_json(eps.report_json.as_deref().unwrap()).unwrap();
        let max_err = rep.counter("certificate.max_rel_error").unwrap();
        assert!((0.0..=0.25).contains(&max_err), "max rel err {max_err}");
        assert_eq!(rep.counter("epsilon"), None, "epsilon echoes in config");
        assert!(rep.config.iter().any(|(n, v)| n == "epsilon" && *v == 0.25));
        // ε is a correction-path knob: algorithms without one reject it.
        let err = knn(&pts, None, 2, "kdtree", 3, SplitterKind::Random, Precision::Mixed, 0.1)
            .unwrap_err();
        assert!(err.contains("--epsilon requires"), "{err}");
    }

    #[test]
    fn query_epsilon_serves_relaxed_predicate() {
        let pts = generate("uniform-cube", 250, 2, 17).unwrap();
        let serve = |eps: f64| {
            query(
                &pts,
                None,
                2,
                None,
                "uniform-cube",
                80,
                false,
                7,
                64,
                SplitterKind::Random,
                Precision::Mixed,
                eps,
            )
            .unwrap()
        };
        let exact = serve(0.0);
        let relaxed = serve(0.5);
        let rep = RunReport::from_json(&relaxed.report_json).unwrap();
        assert!(rep.config.iter().any(|(n, v)| n == "epsilon" && *v == 0.5));
        let skips = rep.counter("precision.eps_skips").unwrap();
        let exact_rep = RunReport::from_json(&exact.report_json).unwrap();
        let dropped =
            exact_rep.counter("serve.hits").unwrap() - rep.counter("serve.hits").unwrap();
        assert_eq!(skips, dropped, "every dropped hit is counted");
        assert!(exact_rep.counter("precision.eps_skips").unwrap() == 0.0);
    }

    #[test]
    fn knn_rejects_non_finite_coordinates() {
        // NaN/inf coordinates are stopped at parse time with a line number,
        // so the algorithms only ever see finite points from the CLI.
        for poisoned in ["0.5,0.5\nNaN,0.25\n", "0.5,0.5\n0.25,inf\n"] {
            let err = knn(poisoned, None, 1, "parallel", 1, SplitterKind::Random, Precision::Mixed, 0.0).unwrap_err();
            assert!(err.contains("non-finite"), "{err}");
            assert!(err.contains("line 2"), "{err}");
        }
    }
}
