//! Structure-of-arrays coordinate arena and batched distance kernels.
//!
//! The divide-and-conquer hot paths (leaf brute solves, Fast-Correction
//! candidate evaluation, kd-tree leaf scans, query-tree cover tests) all
//! reduce to the same primitive: squared distances from **one** query point
//! to **many** candidate points. The AoS [`Point<D>`] layout makes that
//! primitive a strided gather — every candidate pulls `D` coordinates from
//! a distinct cache line and the compiler sees one independent scalar
//! reduction per pair. [`SoaPoints`] stores the same coordinates as `D`
//! contiguous `f64` columns so a batch of candidates reads each dimension
//! as a dense (or gathered-by-id) streak, and the kernels below process
//! candidates in fixed-width blocks of [`BLOCK`] with a local accumulator
//! array — a shape LLVM auto-vectorizes without any `unsafe` or explicit
//! SIMD intrinsics.
//!
//! # Bitwise parity contract
//!
//! Every kernel in this module is **bit-for-bit identical** to the scalar
//! reference `q.dist_sq(&p)` whenever the distance is a number. The
//! reference accumulates `acc += (q[d] - p[d])^2` in ascending-dimension
//! order; the blocked kernels keep one accumulator lane per candidate and
//! perform the exact same IEEE-754 operation sequence — same ascending
//! order, same operand order (query as minuend), no `mul_add`/FMA anywhere
//! (fusing would change the rounding and break the repo-wide determinism
//! contract: byte-identical k-NN output across thread counts and with the
//! pre-SoA implementation). Since squares are non-negative, every non-NaN
//! sum is insensitive to how the compiler commutes the adds, so non-NaN
//! results match the scalar loop bit for bit. A NaN *result* (possible only
//! for non-finite inputs, which every validated entry point rejects) is NaN
//! on both sides, but its payload bits are unspecified — IEEE-754 leaves
//! NaN propagation implementation-defined and LLVM may commute the adds
//! differently in separately compiled loops. The parity proptests in
//! `tests/proptest_soa_kernels.rs` pin down exactly this contract,
//! including raw-bit non-finite inputs.

use crate::aabb::Aabb;
use crate::ball::Ball;
use crate::point::Point;

/// Fixed kernel width: candidates processed per blocked-loop iteration.
///
/// Eight `f64` lanes span two AVX2 registers (or four NEON ones); wider
/// blocks stop paying once the accumulator array spills.
pub const BLOCK: usize = 8;

/// Per-dimension contiguous coordinate columns for a point set.
///
/// Built once from the input (same index space as the `&[Point<D>]` it came
/// from), then shared read-only by every distance-heavy consumer. Sub-ranges
/// of the D&C permutation arena address it by id (gather kernels); fully
/// contiguous scans (brute force) use the range kernels.
#[derive(Clone, Debug)]
pub struct SoaPoints<const D: usize> {
    /// `cols[d][i]` is coordinate `d` of point `i`.
    cols: [Vec<f64>; D],
    len: usize,
}

impl<const D: usize> SoaPoints<D> {
    /// Transpose a point slice into per-dimension columns.
    pub fn from_points(points: &[Point<D>]) -> Self {
        let mut cols: [Vec<f64>; D] = std::array::from_fn(|_| Vec::with_capacity(points.len()));
        for p in points {
            for (d, col) in cols.iter_mut().enumerate() {
                col.push(p.0[d]);
            }
        }
        SoaPoints {
            cols,
            len: points.len(),
        }
    }

    /// Rebuild the arena from per-dimension columns (already columnar —
    /// no transpose). Every column must have the same length; serialization
    /// code uses this so a snapshot load stays a straight column copy.
    ///
    /// # Panics
    /// Panics if the columns disagree on length.
    pub fn from_columns(cols: [Vec<f64>; D]) -> Self {
        let len = cols.first().map_or(0, Vec::len);
        assert!(
            cols.iter().all(|c| c.len() == len),
            "SoaPoints::from_columns: ragged columns"
        );
        SoaPoints { cols, len }
    }

    /// Borrow coordinate column `d` (`col(d)[i]` is coordinate `d` of
    /// point `i`) — the flat array serialization code writes to disk.
    pub fn col(&self, d: usize) -> &[f64] {
        &self.cols[d]
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the arena holds no points.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Re-materialize point `i` (cold paths only; hot paths stay columnar).
    pub fn point(&self, i: usize) -> Point<D> {
        Point(std::array::from_fn(|d| self.cols[d][i]))
    }

    /// Scalar tail kernel: squared distance from `q` to point `i`.
    ///
    /// Same operation sequence as [`Point::dist_sq`] (ascending-dimension
    /// accumulation, no FMA) — the blocked kernels defer to this for the
    /// `len % BLOCK` remainder.
    #[inline]
    pub fn dist_sq_to(&self, q: &Point<D>, i: usize) -> f64 {
        let mut acc = 0.0;
        for d in 0..D {
            let diff = q.0[d] - self.cols[d][i];
            acc += diff * diff;
        }
        acc
    }

    /// Gather kernel: `out[j] = |points[ids[j]] - q|^2` for every `j`.
    ///
    /// # Panics
    /// Panics when `out.len() != ids.len()` or any id is out of range.
    pub fn dist_sq_gather(&self, q: &Point<D>, ids: &[u32], out: &mut [f64]) {
        assert_eq!(ids.len(), out.len(), "gather kernel length mismatch");
        let blocks = ids.len() / BLOCK;
        for b in 0..blocks {
            let base = b * BLOCK;
            let idv = &ids[base..base + BLOCK];
            let mut acc = [0.0f64; BLOCK];
            for d in 0..D {
                let col = &self.cols[d];
                let qd = q.0[d];
                for j in 0..BLOCK {
                    let diff = qd - col[idv[j] as usize];
                    acc[j] += diff * diff;
                }
            }
            out[base..base + BLOCK].copy_from_slice(&acc);
        }
        for j in blocks * BLOCK..ids.len() {
            out[j] = self.dist_sq_to(q, ids[j] as usize);
        }
    }

    /// Gather kernel with a reusable `Vec` destination (clears and fills).
    pub fn dist_sq_gather_into(&self, q: &Point<D>, ids: &[u32], out: &mut Vec<f64>) {
        out.clear();
        out.resize(ids.len(), 0.0);
        self.dist_sq_gather(q, ids, out);
    }

    /// Contiguous kernel: `out[j] = |points[start + j] - q|^2`.
    ///
    /// The dense-streak variant for scans over an unbroken id range (brute
    /// force, microbenches); `out.len()` fixes the range length.
    ///
    /// # Panics
    /// Panics when `start + out.len()` exceeds the arena.
    pub fn dist_sq_range(&self, q: &Point<D>, start: usize, out: &mut [f64]) {
        let n = out.len();
        assert!(start + n <= self.len, "range kernel out of bounds");
        let blocks = n / BLOCK;
        for b in 0..blocks {
            let base = b * BLOCK;
            let mut acc = [0.0f64; BLOCK];
            for d in 0..D {
                let col = &self.cols[d][start + base..start + base + BLOCK];
                let qd = q.0[d];
                for j in 0..BLOCK {
                    let diff = qd - col[j];
                    acc[j] += diff * diff;
                }
            }
            out[base..base + BLOCK].copy_from_slice(&acc);
        }
        for (j, o) in out.iter_mut().enumerate().skip(blocks * BLOCK) {
            *o = self.dist_sq_to(q, start + j);
        }
    }

    /// Axis-aligned bounding box of a gathered id subset.
    pub fn aabb_of_ids(&self, ids: &[u32]) -> Aabb<D> {
        let mut bb = Aabb::empty();
        for &i in ids {
            bb = bb.union_point(&self.point(i as usize));
        }
        bb
    }
}

/// Structure-of-arrays view of a ball set: center columns plus a
/// precomputed squared-radius column.
///
/// `radius_sq[i]` is computed as `balls[i].radius * balls[i].radius` — the
/// exact multiplication [`Ball::contains`] performs — so the batched cover
/// predicates below are bit-for-bit the scalar predicates.
#[derive(Clone, Debug)]
pub struct SoaBalls<const D: usize> {
    centers: SoaPoints<D>,
    radius_sq: Vec<f64>,
}

impl<const D: usize> SoaBalls<D> {
    /// Transpose a ball slice into center columns + squared radii.
    pub fn from_balls(balls: &[Ball<D>]) -> Self {
        let centers: Vec<Point<D>> = balls.iter().map(|b| b.center).collect();
        SoaBalls {
            centers: SoaPoints::from_points(&centers),
            radius_sq: balls.iter().map(|b| b.radius * b.radius).collect(),
        }
    }

    /// Rebuild from center columns plus plain radii. `radius_sq` is
    /// recomputed as `r * r` — the same multiplication `from_balls`
    /// performs — so a set reloaded from serialized columns filters
    /// bit-for-bit like the original.
    ///
    /// # Panics
    /// Panics if `radii.len()` disagrees with the column length (or the
    /// columns are ragged).
    pub fn from_columns(centers: [Vec<f64>; D], radii: &[f64]) -> Self {
        let centers = SoaPoints::from_columns(centers);
        assert_eq!(
            centers.len(),
            radii.len(),
            "SoaBalls::from_columns: center/radius length mismatch"
        );
        SoaBalls {
            centers,
            radius_sq: radii.iter().map(|r| r * r).collect(),
        }
    }

    /// Borrow the center-coordinate arena (columnar access for
    /// serialization; `centers().col(d)[i]` is coordinate `d` of ball `i`).
    pub fn centers(&self) -> &SoaPoints<D> {
        &self.centers
    }

    /// Number of balls.
    pub fn len(&self) -> usize {
        self.radius_sq.len()
    }

    /// `true` when the set holds no balls.
    pub fn is_empty(&self) -> bool {
        self.radius_sq.is_empty()
    }

    /// Batched cover test: append to `out` every id in `ids` whose ball
    /// covers `p` — closed (`dist_sq <= r^2`) when `open` is false, open
    /// interior (`dist_sq < r^2`) when true. Preserves `ids` order, so CSR
    /// assemblies built on it are byte-identical to the scalar filter.
    ///
    /// `scratch` is a reusable distance buffer (cleared and refilled).
    pub fn filter_covering_into(
        &self,
        p: &Point<D>,
        ids: &[u32],
        open: bool,
        scratch: &mut Vec<f64>,
        out: &mut Vec<u32>,
    ) {
        self.centers.dist_sq_gather_into(p, ids, scratch);
        if open {
            for (j, &i) in ids.iter().enumerate() {
                if scratch[j] < self.radius_sq[i as usize] {
                    out.push(i);
                }
            }
        } else {
            for (j, &i) in ids.iter().enumerate() {
                if scratch[j] <= self.radius_sq[i as usize] {
                    out.push(i);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts_3d(n: usize) -> Vec<Point<3>> {
        // Deterministic, irregular, includes duplicates.
        (0..n)
            .map(|i| {
                let f = i as f64;
                Point::from([
                    (f * 0.37).sin() * 10.0,
                    (f * 1.91).cos() * 3.0,
                    (i % 7) as f64,
                ])
            })
            .collect()
    }

    #[test]
    fn gather_kernel_matches_scalar_bitwise() {
        let pts = pts_3d(53);
        let soa = SoaPoints::from_points(&pts);
        let q = Point::from([0.25, -1.5, 3.0]);
        let ids: Vec<u32> = (0..pts.len() as u32).rev().collect();
        let mut out = vec![0.0; ids.len()];
        soa.dist_sq_gather(&q, &ids, &mut out);
        for (j, &i) in ids.iter().enumerate() {
            assert_eq!(
                out[j].to_bits(),
                q.dist_sq(&pts[i as usize]).to_bits(),
                "id {i}"
            );
        }
    }

    #[test]
    fn range_kernel_matches_scalar_bitwise() {
        let pts = pts_3d(41);
        let soa = SoaPoints::from_points(&pts);
        let q = pts[17];
        let mut out = vec![0.0; 30];
        soa.dist_sq_range(&q, 5, &mut out);
        for j in 0..30 {
            assert_eq!(out[j].to_bits(), q.dist_sq(&pts[5 + j]).to_bits());
        }
    }

    #[test]
    fn tail_lengths_are_covered() {
        let pts = pts_3d(BLOCK * 2 + 3);
        let soa = SoaPoints::from_points(&pts);
        let q = Point::origin();
        for n in 0..pts.len() {
            let ids: Vec<u32> = (0..n as u32).collect();
            let mut out = vec![0.0; n];
            soa.dist_sq_gather(&q, &ids, &mut out);
            for (j, &i) in ids.iter().enumerate() {
                assert_eq!(out[j].to_bits(), q.dist_sq(&pts[i as usize]).to_bits());
            }
        }
    }

    #[test]
    fn point_round_trips() {
        let pts = pts_3d(9);
        let soa = SoaPoints::from_points(&pts);
        assert_eq!(soa.len(), 9);
        for (i, p) in pts.iter().enumerate() {
            assert_eq!(soa.point(i), *p);
        }
    }

    #[test]
    fn soa_balls_cover_matches_scalar() {
        let pts = pts_3d(33);
        let balls: Vec<Ball<3>> = pts
            .iter()
            .enumerate()
            .map(|(i, p)| Ball::new(*p, (i % 5) as f64))
            .collect();
        let soa = SoaBalls::from_balls(&balls);
        let probe = Point::from([1.0, 0.5, 3.0]);
        let ids: Vec<u32> = (0..balls.len() as u32).collect();
        let (mut scratch, mut closed, mut open) = (Vec::new(), Vec::new(), Vec::new());
        soa.filter_covering_into(&probe, &ids, false, &mut scratch, &mut closed);
        soa.filter_covering_into(&probe, &ids, true, &mut scratch, &mut open);
        let want_closed: Vec<u32> = ids
            .iter()
            .copied()
            .filter(|&i| balls[i as usize].contains(&probe))
            .collect();
        let want_open: Vec<u32> = ids
            .iter()
            .copied()
            .filter(|&i| balls[i as usize].contains_interior(&probe))
            .collect();
        assert_eq!(closed, want_closed);
        assert_eq!(open, want_open);
    }

    #[test]
    fn aabb_of_ids_matches_of_points() {
        let pts = pts_3d(20);
        let soa = SoaPoints::from_points(&pts);
        let ids: Vec<u32> = vec![3, 7, 7, 11, 19];
        let subset: Vec<Point<3>> = ids.iter().map(|&i| pts[i as usize]).collect();
        let bb = soa.aabb_of_ids(&ids);
        let want = Aabb::of_points(&subset);
        assert_eq!(bb.lo, want.lo);
        assert_eq!(bb.hi, want.hi);
    }
}
