//! Unified run-report observability layer.
//!
//! The paper's claims are structural — separator quality, crossing numbers,
//! punt rates, work–depth profiles — but before this module they were
//! measured through three disconnected mechanisms
//! ([`crate::ParallelDcStats`], [`sepdc_scan::cost::MeterSnapshot`],
//! [`sepdc_scan::CostProfile`]) with no timings, no per-depth breakdown,
//! and no machine-readable artifact. [`RunReport`] merges them into one
//! **versioned, serializable** schema that every entry point, the CLI
//! (`sepdc knn --report out.json`, `sepdc report`), and the bench harness
//! (`BENCH_parallel_knn.json`) share.
//!
//! Two pieces:
//!
//! * [`RunRecorder`] — the lightweight instrument threaded through the
//!   recursions. Wall-clock **phase timers** (split / leaf-solve /
//!   collect-crossing / fast-correction / punt-correction / serve, summed
//!   across rayon workers) and **per-depth histograms** (node counts, crossing
//!   balls, separator candidate attempts, punt events, fast corrections,
//!   leaves, keyed by recursion depth). All counters are relaxed atomics;
//!   when disabled ([`KnnDcConfig::record`](crate::KnnDcConfig::record)
//!   `= false`) every call is a branch on a `bool` and no clock is read,
//!   so the hot path pays near-zero overhead.
//! * [`RunReport`] — the merged, versioned artifact: config echo, rayon
//!   thread count, total wall time, phase timings, named counters
//!   (structural stats + meter + cost profile under `stats.*` / `meter.*`
//!   / `cost.*` prefixes), and the depth histogram. Serializes to JSON
//!   with [`RunReport::to_json`] (the build is offline — no serde; the
//!   writer and the minimal parser live here) and round-trips through
//!   [`RunReport::from_json`], which rejects unknown schema versions with
//!   a typed [`ReportError::SchemaMismatch`].

use sepdc_scan::cost::MeterSnapshot;
use sepdc_scan::CostProfile;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Current schema version of [`RunReport`]. Bump on any field rename,
/// removal, or semantic change; [`RunReport::from_json`] rejects artifacts
/// written by other versions so downstream diff tooling never silently
/// compares incompatible schemas.
pub const RUN_REPORT_VERSION: u32 = 1;

/// The instrumented phases of the divide-and-conquer recursions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Separator search + in-place partition of the id arena.
    Split = 0,
    /// Base-case brute-force leaf solves (where the recursion bottoms out).
    LeafSolve = 1,
    /// Crossing-ball collection + unbounded-owner correction.
    CollectCrossing = 2,
    /// Fast correction: marching + candidate merge (Section 6.2).
    FastCorrection = 3,
    /// Punt correction: query-structure build + sweep (Section 3 via §4).
    PuntCorrection = 4,
    /// Batch serving: probe descent + leaf scan in the
    /// [`serve`](crate::serve) read-path engine (one timed interval per
    /// probe chunk, summed across rayon workers).
    Serve = 5,
    /// Separator candidate search alone (the best-of-N sweep). A
    /// **sub-interval of [`Phase::Split`]**: split still times gather +
    /// search + partition, so `separator-search ≤ split` and the two must
    /// not be summed together. Additive to schema v1.
    SeparatorSearch = 6,
}

const PHASE_COUNT: usize = 7;
const PHASE_NAMES: [&str; PHASE_COUNT] = [
    "split",
    "leaf-solve",
    "collect-crossing",
    "fast-correction",
    "punt-correction",
    "serve",
    "separator-search",
];

/// Per-depth atomic counters (one cell per recursion depth).
#[derive(Default)]
struct DepthCell {
    nodes: AtomicU64,
    leaves: AtomicU64,
    crossing: AtomicU64,
    candidates: AtomicU64,
    punts: AtomicU64,
    fast_corrections: AtomicU64,
}

/// Lightweight recorder threaded through the recursions (`&RunRecorder`
/// is `Sync`; counters are relaxed atomics aggregated after the parallel
/// phase, so no inter-thread data flows through them).
pub struct RunRecorder {
    enabled: bool,
    phase_ns: [AtomicU64; PHASE_COUNT],
    phase_calls: [AtomicU64; PHASE_COUNT],
    /// One cell per depth; deeper events clamp into the last cell.
    depth: Vec<DepthCell>,
}

impl RunRecorder {
    /// Recorder covering depths `0..=depth_cap` (clamped to a sane bound).
    pub fn new(enabled: bool, depth_cap: usize) -> Self {
        let cells = if enabled { depth_cap.min(4096) + 1 } else { 0 };
        RunRecorder {
            enabled,
            phase_ns: Default::default(),
            phase_calls: Default::default(),
            depth: (0..cells).map(|_| DepthCell::default()).collect(),
        }
    }

    /// A recorder that ignores every event and never reads the clock.
    pub fn disabled() -> Self {
        Self::new(false, 0)
    }

    /// Whether events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Start a phase timer; pair with [`Self::stop`]. `None` when disabled,
    /// so the disabled path never touches the clock.
    #[inline]
    pub fn start(&self) -> Option<Instant> {
        if self.enabled {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Stop a phase timer started with [`Self::start`], attributing the
    /// elapsed time (summed across rayon workers) to `phase`.
    #[inline]
    pub fn stop(&self, phase: Phase, t0: Option<Instant>) {
        if let Some(t0) = t0 {
            self.phase_ns[phase as usize]
                .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            self.phase_calls[phase as usize].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Time a closure under `phase` (convenience over start/stop).
    #[inline]
    pub fn time<T>(&self, phase: Phase, f: impl FnOnce() -> T) -> T {
        let t0 = self.start();
        let out = f();
        self.stop(phase, t0);
        out
    }

    #[inline]
    fn cell(&self, depth: usize) -> Option<&DepthCell> {
        if self.enabled {
            Some(&self.depth[depth.min(self.depth.len() - 1)])
        } else {
            None
        }
    }

    /// Record one recursion node entered at `depth`.
    #[inline]
    pub fn node(&self, depth: usize) {
        if let Some(c) = self.cell(depth) {
            c.nodes.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record one leaf (base case, forced, degenerate, or depth-forced).
    #[inline]
    pub fn leaf(&self, depth: usize) {
        if let Some(c) = self.cell(depth) {
            c.leaves.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record `n` crossing balls collected at a node at `depth`.
    #[inline]
    pub fn add_crossing(&self, depth: usize, n: u64) {
        if let Some(c) = self.cell(depth) {
            c.crossing.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Record `n` separator candidate attempts at `depth`.
    #[inline]
    pub fn add_candidates(&self, depth: usize, n: u64) {
        if let Some(c) = self.cell(depth) {
            c.candidates.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Record one punt event at `depth`.
    #[inline]
    pub fn punt(&self, depth: usize) {
        if let Some(c) = self.cell(depth) {
            c.punts.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record one completed fast correction at `depth`.
    #[inline]
    pub fn fast_correction(&self, depth: usize) {
        if let Some(c) = self.cell(depth) {
            c.fast_corrections.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Snapshot the phase timings (every [`Phase`], in declaration order;
    /// empty when the recorder is disabled).
    pub fn phases(&self) -> Vec<PhaseSample> {
        if !self.enabled {
            return Vec::new();
        }
        (0..PHASE_COUNT)
            .map(|i| PhaseSample {
                name: PHASE_NAMES[i].to_string(),
                ms: self.phase_ns[i].load(Ordering::Relaxed) as f64 / 1e6,
                calls: self.phase_calls[i].load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Snapshot the depth histogram, trimmed after the last active depth.
    pub fn depth_rows(&self) -> Vec<DepthRow> {
        let rows: Vec<DepthRow> = self
            .depth
            .iter()
            .enumerate()
            .map(|(d, c)| DepthRow {
                depth: d as u32,
                nodes: c.nodes.load(Ordering::Relaxed),
                leaves: c.leaves.load(Ordering::Relaxed),
                crossing: c.crossing.load(Ordering::Relaxed),
                candidates: c.candidates.load(Ordering::Relaxed),
                punts: c.punts.load(Ordering::Relaxed),
                fast_corrections: c.fast_corrections.load(Ordering::Relaxed),
            })
            .collect();
        let last = rows.iter().rposition(|r| r.nodes > 0).map_or(0, |i| i + 1);
        rows[..last].to_vec()
    }
}

/// Accumulated wall time of one instrumented phase, summed across rayon
/// workers (so phase times can exceed total wall time under parallelism).
#[derive(Clone, Debug, PartialEq)]
pub struct PhaseSample {
    /// Phase name (one of the [`Phase`] variants' wire names).
    pub name: String,
    /// Accumulated milliseconds across all workers.
    pub ms: f64,
    /// Number of timed intervals attributed to this phase.
    pub calls: u64,
}

/// One row of the per-depth histogram.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DepthRow {
    /// Recursion depth (root = 0).
    pub depth: u32,
    /// Recursion nodes entered at this depth.
    pub nodes: u64,
    /// Leaves (base-case + forced + degenerate + depth-forced) at this depth.
    pub leaves: u64,
    /// Crossing balls collected by nodes at this depth.
    pub crossing: u64,
    /// Separator candidate attempts drawn at this depth.
    pub candidates: u64,
    /// Punt events at this depth.
    pub punts: u64,
    /// Completed fast corrections at this depth.
    pub fast_corrections: u64,
}

/// The versioned, serializable artifact of one algorithm run.
#[derive(Clone, Debug, PartialEq)]
pub struct RunReport {
    /// Schema version ([`RUN_REPORT_VERSION`] at write time).
    pub version: u32,
    /// Which algorithm produced the run (`parallel`, `simple`, `kdtree`,
    /// `brute`, `query-build`, …).
    pub algo: String,
    /// Point dimension.
    pub dim: usize,
    /// Input size.
    pub n: usize,
    /// Neighbors per point.
    pub k: usize,
    /// Master seed of the run.
    pub seed: u64,
    /// Rayon thread count at run time.
    pub threads: usize,
    /// End-to-end wall time of the run in milliseconds.
    pub wall_ms: f64,
    /// Config echo: named tunables, in a fixed order.
    pub config: Vec<(String, f64)>,
    /// Phase timings (empty when recording was disabled).
    pub phases: Vec<PhaseSample>,
    /// Named counters: structural stats (`stats.*`), whole-run meter
    /// (`meter.*`), and the work–depth profile (`cost.*`).
    pub counters: Vec<(String, f64)>,
    /// Per-depth histogram (empty when recording was disabled).
    pub depth: Vec<DepthRow>,
}

/// Why a serialized [`RunReport`] could not be loaded.
#[derive(Clone, Debug, PartialEq)]
pub enum ReportError {
    /// The text is not valid JSON, or a required field is missing/mistyped.
    Parse(String),
    /// The artifact was written by a different schema version.
    SchemaMismatch {
        /// Version found in the artifact.
        found: u32,
        /// Version this build reads ([`RUN_REPORT_VERSION`]).
        expected: u32,
    },
}

impl std::fmt::Display for ReportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReportError::Parse(msg) => write!(f, "run report parse error: {msg}"),
            ReportError::SchemaMismatch { found, expected } => write!(
                f,
                "run report schema version {found} is not the supported version {expected}"
            ),
        }
    }
}

impl std::error::Error for ReportError {}

/// Counters of a [`MeterSnapshot`] under the `meter.` prefix.
pub fn meter_counters(m: &MeterSnapshot) -> Vec<(String, f64)> {
    vec![
        (
            "meter.separator_candidates".into(),
            m.separator_candidates as f64,
        ),
        ("meter.separator_accepts".into(), m.separator_accepts as f64),
        ("meter.punts".into(), m.punts as f64),
        ("meter.fast_corrections".into(), m.fast_corrections as f64),
        ("meter.marching_balls".into(), m.marching_balls as f64),
        ("meter.march_pruned".into(), m.march_pruned as f64),
        ("meter.query_builds".into(), m.query_builds as f64),
        ("meter.distance_evals".into(), m.distance_evals as f64),
        (
            "meter.correction_dist_evals".into(),
            m.correction_dist_evals as f64,
        ),
        ("precision.f32_rejects".into(), m.f32_rejects as f64),
        ("precision.f64_confirms".into(), m.f64_confirms as f64),
        (
            "precision.unsafe_margin_hits".into(),
            m.unsafe_margin_hits as f64,
        ),
        ("precision.eps_skips".into(), m.eps_skips as f64),
    ]
}

/// Counters of a precision-tier filter pass under the `precision.` prefix
/// — used by algorithms without an event meter (the Section 5 recursion
/// accumulates a [`sepdc_geom::soa::FilterStats`] directly).
pub fn precision_counters(s: &sepdc_geom::soa::FilterStats) -> Vec<(String, f64)> {
    vec![
        ("precision.f32_rejects".into(), s.f32_rejects as f64),
        ("precision.f64_confirms".into(), s.f64_confirms as f64),
        (
            "precision.unsafe_margin_hits".into(),
            s.unsafe_margin_hits as f64,
        ),
        ("precision.eps_skips".into(), s.eps_skips as f64),
    ]
}

/// Counters of a [`CostProfile`] under the `cost.` prefix.
pub fn cost_counters(c: &CostProfile) -> Vec<(String, f64)> {
    vec![
        ("cost.work".into(), c.work as f64),
        ("cost.depth".into(), c.depth as f64),
        ("cost.scan_ops".into(), c.scan_ops as f64),
        (
            "cost.separator_candidates".into(),
            c.separator_candidates as f64,
        ),
        ("cost.punts".into(), c.punts as f64),
    ]
}

impl RunReport {
    /// Stamp the end-to-end wall time (the last step of report assembly).
    pub fn finish(mut self, wall: std::time::Duration) -> Self {
        self.wall_ms = wall.as_secs_f64() * 1e3;
        self
    }

    /// Look up a named counter.
    pub fn counter(&self, name: &str) -> Option<f64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Look up a phase timing by wire name.
    pub fn phase(&self, name: &str) -> Option<&PhaseSample> {
        self.phases.iter().find(|p| p.name == name)
    }

    /// Serialize to pretty JSON (two-space indent, deterministic order).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(2048);
        s.push_str("{\n");
        s.push_str(&format!("  \"run_report_version\": {},\n", self.version));
        s.push_str(&format!("  \"algo\": {},\n", json_str(&self.algo)));
        s.push_str(&format!("  \"dim\": {},\n", self.dim));
        s.push_str(&format!("  \"n\": {},\n", self.n));
        s.push_str(&format!("  \"k\": {},\n", self.k));
        s.push_str(&format!("  \"seed\": {},\n", self.seed));
        s.push_str(&format!("  \"threads\": {},\n", self.threads));
        s.push_str(&format!("  \"wall_ms\": {},\n", json_num(self.wall_ms)));
        s.push_str("  \"config\": {");
        for (i, (name, v)) in self.config.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(" {}: {}", json_str(name), json_num(*v)));
        }
        s.push_str(" },\n");
        s.push_str("  \"phases\": [\n");
        for (i, p) in self.phases.iter().enumerate() {
            s.push_str(&format!(
                "    {{ \"name\": {}, \"ms\": {}, \"calls\": {} }}{}\n",
                json_str(&p.name),
                json_num(p.ms),
                p.calls,
                if i + 1 < self.phases.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\n    {}: {}", json_str(name), json_num(*v)));
        }
        if !self.counters.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("},\n");
        s.push_str("  \"depth\": [\n");
        for (i, r) in self.depth.iter().enumerate() {
            s.push_str(&format!(
                "    {{ \"depth\": {}, \"nodes\": {}, \"leaves\": {}, \"crossing\": {}, \
                 \"candidates\": {}, \"punts\": {}, \"fast_corrections\": {} }}{}\n",
                r.depth,
                r.nodes,
                r.leaves,
                r.crossing,
                r.candidates,
                r.punts,
                r.fast_corrections,
                if i + 1 < self.depth.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Parse a serialized report, rejecting other schema versions.
    pub fn from_json(text: &str) -> Result<RunReport, ReportError> {
        let v = Json::parse(text).map_err(ReportError::Parse)?;
        let obj = v.as_obj("run report")?;
        let version = get_num(obj, "run_report_version")? as u32;
        if version != RUN_REPORT_VERSION {
            return Err(ReportError::SchemaMismatch {
                found: version,
                expected: RUN_REPORT_VERSION,
            });
        }
        let phases = get(obj, "phases")?
            .as_arr("phases")?
            .iter()
            .map(|p| {
                let o = p.as_obj("phase")?;
                Ok(PhaseSample {
                    name: get_str(o, "name")?,
                    ms: get_num(o, "ms")?,
                    calls: get_num(o, "calls")? as u64,
                })
            })
            .collect::<Result<Vec<_>, ReportError>>()?;
        let depth = get(obj, "depth")?
            .as_arr("depth")?
            .iter()
            .map(|r| {
                let o = r.as_obj("depth row")?;
                Ok(DepthRow {
                    depth: get_num(o, "depth")? as u32,
                    nodes: get_num(o, "nodes")? as u64,
                    leaves: get_num(o, "leaves")? as u64,
                    crossing: get_num(o, "crossing")? as u64,
                    candidates: get_num(o, "candidates")? as u64,
                    punts: get_num(o, "punts")? as u64,
                    fast_corrections: get_num(o, "fast_corrections")? as u64,
                })
            })
            .collect::<Result<Vec<_>, ReportError>>()?;
        let pairs = |field: &str| -> Result<Vec<(String, f64)>, ReportError> {
            get(obj, field)?
                .as_obj(field)?
                .iter()
                .map(|(name, v)| Ok((name.clone(), v.as_num(name)?)))
                .collect()
        };
        Ok(RunReport {
            version,
            algo: get_str(obj, "algo")?,
            dim: get_num(obj, "dim")? as usize,
            n: get_num(obj, "n")? as usize,
            k: get_num(obj, "k")? as usize,
            seed: get_num(obj, "seed")? as u64,
            threads: get_num(obj, "threads")? as usize,
            wall_ms: get_num(obj, "wall_ms")?,
            config: pairs("config")?,
            phases,
            counters: pairs("counters")?,
            depth,
        })
    }

    /// Render a human-readable summary (the `sepdc report` pretty-printer).
    pub fn render_human(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "run report v{} — algo={} d={} n={} k={} seed={} threads={} wall={:.2} ms\n",
            self.version,
            self.algo,
            self.dim,
            self.n,
            self.k,
            self.seed,
            self.threads,
            self.wall_ms
        ));
        if !self.config.is_empty() {
            s.push_str("\nconfig:\n");
            for (name, v) in &self.config {
                // The precision tier and ε knob echo as raw numbers in the
                // JSON; spell them out for humans (DESIGN.md §17).
                match name.as_str() {
                    "precision" => {
                        let label = crate::config::Precision::from_code(*v as u64)
                            .map_or("unknown", |p| p.name());
                        s.push_str(&format!("  {name:<24} {v} ({label} tier)\n"));
                    }
                    "epsilon" if *v > 0.0 => {
                        s.push_str(&format!("  {name:<24} {v} ((1+ε)-approximate)\n"));
                    }
                    "epsilon" => {
                        s.push_str(&format!("  {name:<24} {v} (exact answers)\n"));
                    }
                    _ => s.push_str(&format!("  {name:<24} {v}\n")),
                }
            }
        }
        if !self.phases.is_empty() {
            s.push_str("\nphase timings (summed across workers):\n");
            s.push_str(&format!("  {:<18} {:>12} {:>10}\n", "phase", "ms", "calls"));
            for p in &self.phases {
                s.push_str(&format!(
                    "  {:<18} {:>12.3} {:>10}\n",
                    p.name, p.ms, p.calls
                ));
            }
        }
        if !self.counters.is_empty() {
            // The precision-tier and certificate namespaces render as their
            // own sections; everything else stays in the flat counter list.
            let is_tiered =
                |n: &str| n.starts_with("precision.") || n.starts_with("certificate.");
            let flat: Vec<_> = self
                .counters
                .iter()
                .filter(|(n, _)| !is_tiered(n))
                .collect();
            if !flat.is_empty() {
                s.push_str("\ncounters:\n");
                for (name, v) in flat {
                    s.push_str(&format!("  {name:<32} {v}\n"));
                }
            }
            let precision: Vec<_> = self
                .counters
                .iter()
                .filter(|(n, _)| n.starts_with("precision."))
                .collect();
            if !precision.is_empty() {
                s.push_str("\nprecision tier (f32 filtering):\n");
                for (name, v) in precision {
                    let short = name.trim_start_matches("precision.");
                    s.push_str(&format!("  {short:<32} {v}\n"));
                }
            }
            let cert: Vec<_> = self
                .counters
                .iter()
                .filter(|(n, _)| n.starts_with("certificate."))
                .collect();
            if !cert.is_empty() {
                s.push_str("\nerror certificate (measured vs exact):\n");
                for (name, v) in cert {
                    let short = name.trim_start_matches("certificate.");
                    s.push_str(&format!("  {short:<32} {v}\n"));
                }
            }
        }
        if !self.depth.is_empty() {
            s.push_str("\nper-depth histogram:\n");
            s.push_str(&format!(
                "  {:>5} {:>8} {:>8} {:>10} {:>10} {:>6} {:>6}\n",
                "depth", "nodes", "leaves", "crossing", "cands", "punts", "fast"
            ));
            for r in &self.depth {
                s.push_str(&format!(
                    "  {:>5} {:>8} {:>8} {:>10} {:>10} {:>6} {:>6}\n",
                    r.depth,
                    r.nodes,
                    r.leaves,
                    r.crossing,
                    r.candidates,
                    r.punts,
                    r.fast_corrections
                ));
            }
        }
        s
    }
}

/// Format an `f64` as a JSON number (non-finite values become `null`;
/// [`Json`] reads `null` back as NaN).
fn json_num(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_string();
    }
    if v == 0.0 && v.is_sign_negative() {
        // The integer branch below would cast -0.0 through i64 and print
        // "0", losing the sign bit on round-trip; "-0" parses back to -0.0.
        return "-0".to_string();
    }
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Escape and quote one JSON string.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Minimal JSON value tree — just enough to round-trip [`RunReport`]
/// artifacts in the offline build (no serde). Object keys keep insertion
/// order.
#[derive(Clone, Debug, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn parse(text: &str) -> Result<Json, String> {
        let mut p = JsonParser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    fn as_obj(&self, what: &str) -> Result<&[(String, Json)], ReportError> {
        match self {
            Json::Obj(fields) => Ok(fields),
            other => Err(ReportError::Parse(format!(
                "{what}: expected object, found {other:?}"
            ))),
        }
    }

    fn as_arr(&self, what: &str) -> Result<&[Json], ReportError> {
        match self {
            Json::Arr(items) => Ok(items),
            other => Err(ReportError::Parse(format!(
                "{what}: expected array, found {other:?}"
            ))),
        }
    }

    fn as_num(&self, what: &str) -> Result<f64, ReportError> {
        match self {
            Json::Num(v) => Ok(*v),
            Json::Null => Ok(f64::NAN),
            other => Err(ReportError::Parse(format!(
                "{what}: expected number, found {other:?}"
            ))),
        }
    }

    fn as_str(&self, what: &str) -> Result<&str, ReportError> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(ReportError::Parse(format!(
                "{what}: expected string, found {other:?}"
            ))),
        }
    }
}

fn get<'a>(obj: &'a [(String, Json)], field: &str) -> Result<&'a Json, ReportError> {
    obj.iter()
        .find(|(name, _)| name == field)
        .map(|(_, v)| v)
        .ok_or_else(|| ReportError::Parse(format!("missing field '{field}'")))
}

fn get_num(obj: &[(String, Json)], field: &str) -> Result<f64, ReportError> {
    get(obj, field)?.as_num(field)
}

fn get_str(obj: &[(String, Json)], field: &str) -> Result<String, ReportError> {
    Ok(get(obj, field)?.as_str(field)?.to_string())
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let first = self.unicode_escape()?;
                            let code = if (0xD800..=0xDBFF).contains(&first) {
                                // High surrogate: a low surrogate escape must
                                // follow immediately to form one scalar.
                                if self.bytes.get(self.pos + 1) != Some(&b'\\')
                                    || self.bytes.get(self.pos + 2) != Some(&b'u')
                                {
                                    return Err(format!(
                                        "lone high surrogate \\u{first:04x} at byte {}",
                                        self.pos
                                    ));
                                }
                                self.pos += 2;
                                let second = self.unicode_escape()?;
                                if !(0xDC00..=0xDFFF).contains(&second) {
                                    return Err(format!(
                                        "expected low surrogate after \\u{first:04x}, \
                                         found \\u{second:04x}"
                                    ));
                                }
                                0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00)
                            } else if (0xDC00..=0xDFFF).contains(&first) {
                                return Err(format!(
                                    "lone low surrogate \\u{first:04x} at byte {}",
                                    self.pos
                                ));
                            } else {
                                first
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("bad \\u escape U+{code:04X}"))?,
                            );
                        }
                        other => return Err(format!("bad escape {:?}", other.map(|c| c as char))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    /// Parse the `uXXXX` tail of a `\u` escape. On entry `self.pos` is at
    /// the `u`; on success it is left on the last hex digit (the caller's
    /// shared `self.pos += 1` then steps past the whole escape).
    fn unicode_escape(&mut self) -> Result<u32, String> {
        debug_assert_eq!(self.bytes.get(self.pos), Some(&b'u'));
        if self.pos + 5 > self.bytes.len() {
            return Err("truncated \\u escape".to_string());
        }
        let hex = &self.bytes[self.pos + 1..self.pos + 5];
        if !hex.iter().all(u8::is_ascii_hexdigit) {
            return Err("bad \\u escape".to_string());
        }
        // Hex digits are ASCII, so the slice is valid UTF-8.
        let code = u32::from_str_radix(std::str::from_utf8(hex).unwrap(), 16)
            .map_err(|_| "bad \\u escape".to_string())?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> RunReport {
        RunReport {
            version: RUN_REPORT_VERSION,
            algo: "parallel".to_string(),
            dim: 2,
            n: 1000,
            k: 4,
            seed: 7,
            threads: 3,
            wall_ms: 12.5,
            config: vec![("mu_epsilon".to_string(), 0.05), ("eta".to_string(), 0.3)],
            phases: vec![
                PhaseSample {
                    name: "split".to_string(),
                    ms: 3.25,
                    calls: 31,
                },
                PhaseSample {
                    name: "leaf-solve".to_string(),
                    ms: 6.0,
                    calls: 16,
                },
            ],
            counters: vec![
                ("stats.fast_corrections".to_string(), 12.0),
                ("meter.distance_evals".to_string(), 34567.0),
                ("cost.depth".to_string(), 88.0),
            ],
            depth: vec![
                DepthRow {
                    depth: 0,
                    nodes: 1,
                    leaves: 0,
                    crossing: 17,
                    candidates: 2,
                    punts: 0,
                    fast_corrections: 1,
                },
                DepthRow {
                    depth: 1,
                    nodes: 2,
                    leaves: 2,
                    crossing: 5,
                    candidates: 3,
                    punts: 1,
                    fast_corrections: 1,
                },
            ],
        }
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let report = sample_report();
        let text = report.to_json();
        let back = RunReport::from_json(&text).unwrap();
        assert_eq!(back, report);
        // Serializing the parsed report reproduces the exact text.
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn schema_version_bump_is_detected() {
        let mut report = sample_report();
        report.version = RUN_REPORT_VERSION + 1;
        let text = report.to_json();
        assert_eq!(
            RunReport::from_json(&text),
            Err(ReportError::SchemaMismatch {
                found: RUN_REPORT_VERSION + 1,
                expected: RUN_REPORT_VERSION,
            })
        );
    }

    #[test]
    fn missing_fields_and_garbage_are_parse_errors() {
        assert!(matches!(
            RunReport::from_json("not json at all"),
            Err(ReportError::Parse(_))
        ));
        assert!(matches!(
            RunReport::from_json("{\"run_report_version\": 1}"),
            Err(ReportError::Parse(_))
        ));
        // Trailing garbage after a valid value is rejected too.
        let mut text = sample_report().to_json();
        text.push_str("...");
        assert!(matches!(
            RunReport::from_json(&text),
            Err(ReportError::Parse(_))
        ));
    }

    #[test]
    fn string_escapes_round_trip() {
        let mut report = sample_report();
        report.algo = "weird \"algo\"\twith\nescapes\\".to_string();
        let back = RunReport::from_json(&report.to_json()).unwrap();
        assert_eq!(back.algo, report.algo);
    }

    #[test]
    fn signed_zero_round_trips_bitwise() {
        // -0.0 == 0.0 under PartialEq, so compare raw bits explicitly.
        assert_eq!(json_num(-0.0), "-0");
        assert_eq!(json_num(0.0), "0");
        let mut report = sample_report();
        report.wall_ms = -0.0;
        report.counters.push(("zero.neg".to_string(), -0.0));
        report.counters.push(("zero.pos".to_string(), 0.0));
        let back = RunReport::from_json(&report.to_json()).unwrap();
        assert_eq!(back.wall_ms.to_bits(), (-0.0f64).to_bits());
        let bits: Vec<u64> = back.counters.iter().map(|(_, v)| v.to_bits()).collect();
        let want: Vec<u64> = report.counters.iter().map(|(_, v)| v.to_bits()).collect();
        assert_eq!(bits, want);
        // Exact-text re-serialization still holds with signed zeros present.
        assert_eq!(back.to_json(), report.to_json());
    }

    #[test]
    fn astral_plane_strings_round_trip() {
        // Raw UTF-8 astral chars survive the writer (emitted unescaped)
        // and the parser's raw path.
        let mut report = sample_report();
        report.algo = "math \u{1d54a} emoji \u{1f600} bmp \u{2603}".to_string();
        let back = RunReport::from_json(&report.to_json()).unwrap();
        assert_eq!(back.algo, report.algo);

        // Escaped surrogate pairs (what other JSON writers emit) must
        // combine into the astral scalar, not U+FFFD.
        let text = report
            .to_json()
            .replace("\u{1d54a}", "\\ud835\\udd4a")
            .replace("\u{1f600}", "\\ud83d\\ude00");
        let back = RunReport::from_json(&text).unwrap();
        assert_eq!(back.algo, report.algo);
    }

    #[test]
    fn lone_surrogates_are_typed_parse_errors() {
        let make = |algo_json: &str| sample_report().to_json().replace("\"parallel\"", algo_json);
        for bad in [
            "\"\\ud835\"",         // lone high at end of string
            "\"\\ud835 tail\"",    // high not followed by an escape
            "\"\\ud835\\n\"",      // high followed by a non-\u escape
            "\"\\ud835\\ud836\"",  // high followed by another high
            "\"\\udd4a\"",         // bare low
            "\"\\udc00 leading\"", // bare low with trailing text
        ] {
            let err = RunReport::from_json(&make(bad));
            assert!(
                matches!(err, Err(ReportError::Parse(ref m)) if m.contains("surrogate")),
                "{bad}: {err:?}"
            );
        }
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let rec = RunRecorder::disabled();
        assert!(!rec.is_enabled());
        assert!(rec.start().is_none());
        rec.node(0);
        rec.leaf(3);
        rec.add_crossing(1, 10);
        rec.punt(2);
        let t = rec.time(Phase::Split, || 41 + 1);
        assert_eq!(t, 42);
        assert!(rec.depth_rows().is_empty());
        assert!(rec.phases().is_empty());
    }

    #[test]
    fn recorder_aggregates_by_depth_and_clamps() {
        let rec = RunRecorder::new(true, 2);
        rec.node(0);
        rec.node(1);
        rec.node(1);
        rec.add_candidates(0, 4);
        rec.add_crossing(1, 7);
        rec.leaf(1);
        rec.punt(0);
        rec.fast_correction(1);
        // Depth 100 clamps into the last cell (depth 2).
        rec.node(100);
        rec.leaf(100);
        let rows = rec.depth_rows();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].nodes, 1);
        assert_eq!(rows[0].candidates, 4);
        assert_eq!(rows[0].punts, 1);
        assert_eq!(rows[1].nodes, 2);
        assert_eq!(rows[1].crossing, 7);
        assert_eq!(rows[1].leaves, 1);
        assert_eq!(rows[1].fast_corrections, 1);
        assert_eq!(rows[2].nodes, 1);
        assert_eq!(rows[2].leaves, 1);
    }

    #[test]
    fn recorder_phase_timing_accumulates() {
        let rec = RunRecorder::new(true, 4);
        rec.time(Phase::Split, || {
            std::thread::sleep(std::time::Duration::from_millis(2))
        });
        let t0 = rec.start();
        std::thread::sleep(std::time::Duration::from_millis(1));
        rec.stop(Phase::Split, t0);
        let phases = rec.phases();
        let split = phases.iter().find(|p| p.name == "split").unwrap();
        assert_eq!(split.calls, 2);
        assert!(split.ms >= 2.0, "split {} ms", split.ms);
        // Untouched phases stay zero but are present in the snapshot.
        assert_eq!(phases.len(), 7);
        assert!(phases.iter().any(|p| p.name == "separator-search"));
        assert_eq!(rec.phases().iter().filter(|p| p.calls > 0).count(), 1);
    }

    #[test]
    fn recorder_is_thread_safe() {
        let rec = RunRecorder::new(true, 8);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for d in 0..100 {
                        rec.node(d % 8);
                        rec.add_crossing(d % 8, 2);
                    }
                });
            }
        });
        let rows = rec.depth_rows();
        let nodes: u64 = rows.iter().map(|r| r.nodes).sum();
        let crossing: u64 = rows.iter().map(|r| r.crossing).sum();
        assert_eq!(nodes, 800);
        assert_eq!(crossing, 1600);
    }

    #[test]
    fn non_finite_counters_serialize_as_null() {
        let mut report = sample_report();
        report
            .counters
            .push(("stats.max_ratio".to_string(), f64::INFINITY));
        let text = report.to_json();
        assert!(text.contains("\"stats.max_ratio\": null"));
        let back = RunReport::from_json(&text).unwrap();
        assert!(back.counter("stats.max_ratio").unwrap().is_nan());
    }

    #[test]
    fn render_human_mentions_all_sections() {
        let text = sample_report().render_human();
        for needle in [
            "algo=parallel",
            "phase timings",
            "split",
            "counters",
            "stats.fast_corrections",
            "per-depth histogram",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn render_human_groups_precision_and_certificate_sections() {
        let mut r = sample_report();
        r.config.push(("precision".to_string(), 1.0));
        r.config.push(("epsilon".to_string(), 0.25));
        r.counters.push(("precision.f32_rejects".to_string(), 900.0));
        r.counters.push(("precision.f64_confirms".to_string(), 100.0));
        r.counters
            .push(("certificate.max_rel_error".to_string(), 0.01));
        let text = r.render_human();
        assert!(text.contains("1 (mixed tier)"), "{text}");
        assert!(text.contains("(1+ε)-approximate"), "{text}");
        assert!(text.contains("precision tier (f32 filtering):"), "{text}");
        assert!(text.contains("error certificate (measured vs exact):"), "{text}");
        // Namespaced counters are pulled out of the flat list and rendered
        // with the prefix stripped.
        assert!(!text.contains("  precision.f32_rejects"), "{text}");
        assert!(text.contains("  f32_rejects"), "{text}");
        assert!(text.contains("  max_rel_error"), "{text}");
        // ε = 0 renders as exact.
        let mut r0 = sample_report();
        r0.config.push(("epsilon".to_string(), 0.0));
        assert!(r0.render_human().contains("(exact answers)"));
    }

    #[test]
    fn counter_and_phase_lookup() {
        let r = sample_report();
        assert_eq!(r.counter("cost.depth"), Some(88.0));
        assert_eq!(r.counter("nope"), None);
        assert_eq!(r.phase("split").unwrap().calls, 31);
        assert!(r.phase("nope").is_none());
    }
}
