//! Vector primitives built on SCAN: pack, split, distribute, permute.
//!
//! These are the operations the paper's algorithms are phrased in — e.g.
//! "partition `B` into interior and exterior" is one `split`, and the
//! fast-correction candidate gathering is a `pack`. All are `O(n)` work and
//! `O(1)` scan rounds in the vector model.

use crate::scan::{exclusive_scan, par_exclusive_scan, AddUsize};
use rayon::prelude::*;

/// Keep the elements whose flag is set, preserving order (serial).
pub fn pack<T: Copy>(xs: &[T], flags: &[bool]) -> Vec<T> {
    assert_eq!(xs.len(), flags.len(), "pack: length mismatch");
    xs.iter()
        .zip(flags)
        .filter(|(_, &f)| f)
        .map(|(&x, _)| x)
        .collect()
}

/// Parallel pack: exclusive scan of the flags gives each survivor its output
/// slot; a parallel scatter writes them. Order-preserving, identical to
/// [`pack`].
pub fn par_pack<T: Copy + Send + Sync>(xs: &[T], flags: &[bool]) -> Vec<T> {
    assert_eq!(xs.len(), flags.len(), "pack: length mismatch");
    if xs.len() < crate::PAR_THRESHOLD {
        return pack(xs, flags);
    }
    let ones: Vec<usize> = flags.par_iter().map(|&f| usize::from(f)).collect();
    let (slots, total) = par_exclusive_scan(AddUsize, &ones);
    let mut out = vec![None; total];
    // Scatter: slots are unique for flagged positions, so disjoint writes.
    // Expressed safely via chunk-local collection then a gather.
    let pairs: Vec<(usize, T)> = xs
        .par_iter()
        .zip(flags.par_iter())
        .zip(slots.par_iter())
        .filter(|((_, &f), _)| f)
        .map(|((&x, _), &s)| (s, x))
        .collect();
    for (s, x) in pairs {
        out[s] = Some(x);
    }
    out.into_iter().map(|o| o.expect("slot filled")).collect()
}

/// Result of a two-way stable split.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Split {
    /// Indices (into the input) routed to the "true" side, input order.
    pub yes: Vec<usize>,
    /// Indices routed to the "false" side, input order.
    pub no: Vec<usize>,
}

/// Stable two-way split of indices `0..flags.len()` by flag value.
///
/// This is the vector-model `SPLIT` used at every divide step: one scan to
/// rank the true side, one for the false side.
pub fn split(flags: &[bool]) -> Split {
    let mut yes = Vec::new();
    let mut no = Vec::new();
    for (i, &f) in flags.iter().enumerate() {
        if f {
            yes.push(i);
        } else {
            no.push(i);
        }
    }
    Split { yes, no }
}

/// Parallel stable split (scan-based ranking). Identical output to
/// [`split`].
pub fn par_split(flags: &[bool]) -> Split {
    if flags.len() < crate::PAR_THRESHOLD {
        return split(flags);
    }
    let ones: Vec<usize> = flags.par_iter().map(|&f| usize::from(f)).collect();
    let (yes_rank, yes_total) = par_exclusive_scan(AddUsize, &ones);
    let zeros: Vec<usize> = flags.par_iter().map(|&f| usize::from(!f)).collect();
    let (no_rank, no_total) = par_exclusive_scan(AddUsize, &zeros);
    let mut yes = vec![0usize; yes_total];
    let mut no = vec![0usize; no_total];
    // Disjoint slot writes; do them serially (cheap) after parallel ranking.
    for (i, &f) in flags.iter().enumerate() {
        if f {
            yes[yes_rank[i]] = i;
        } else {
            no[no_rank[i]] = i;
        }
    }
    Split { yes, no }
}

/// Gather: `out[i] = xs[indices[i]]`.
pub fn gather<T: Copy>(xs: &[T], indices: &[usize]) -> Vec<T> {
    indices.iter().map(|&i| xs[i]).collect()
}

/// Parallel gather.
pub fn par_gather<T: Copy + Send + Sync>(xs: &[T], indices: &[usize]) -> Vec<T> {
    if indices.len() < crate::PAR_THRESHOLD {
        return gather(xs, indices);
    }
    indices.par_iter().map(|&i| xs[i]).collect()
}

/// Apply a permutation: `out[perm[i]] = xs[i]`. `perm` must be a bijection
/// on `0..n`.
///
/// # Panics
/// Panics (in debug and release) when `perm` is not a permutation.
pub fn apply_permutation<T: Copy>(xs: &[T], perm: &[usize]) -> Vec<T> {
    assert_eq!(xs.len(), perm.len(), "permute: length mismatch");
    let mut out = vec![None; xs.len()];
    for (i, &p) in perm.iter().enumerate() {
        assert!(out[p].is_none(), "apply_permutation: duplicate target {p}");
        out[p] = Some(xs[i]);
    }
    out.into_iter()
        .map(|o| o.expect("perm must be onto"))
        .collect()
}

/// Distribute: expand each element `xs[i]` into `counts[i]` copies,
/// concatenated in order. The vector-model `DISTRIBUTE` used when assigning
/// `h` processors per marching ball.
pub fn distribute<T: Copy>(xs: &[T], counts: &[usize]) -> Vec<T> {
    assert_eq!(xs.len(), counts.len(), "distribute: length mismatch");
    let (_, total) = exclusive_scan(AddUsize, counts);
    let mut out = Vec::with_capacity(total);
    for (&x, &c) in xs.iter().zip(counts) {
        out.extend(std::iter::repeat_n(x, c));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_keeps_flagged_in_order() {
        let xs = [10, 20, 30, 40];
        let flags = [true, false, true, false];
        assert_eq!(pack(&xs, &flags), vec![10, 30]);
    }

    #[test]
    fn pack_all_and_none() {
        let xs = [1, 2, 3];
        assert_eq!(pack(&xs, &[true; 3]), vec![1, 2, 3]);
        assert!(pack(&xs, &[false; 3]).is_empty());
    }

    #[test]
    fn par_pack_matches_serial() {
        let n = crate::PAR_THRESHOLD * 2 + 1;
        let xs: Vec<u64> = (0..n as u64).collect();
        let flags: Vec<bool> = (0..n).map(|i| i % 3 == 1).collect();
        assert_eq!(par_pack(&xs, &flags), pack(&xs, &flags));
    }

    #[test]
    fn split_is_stable() {
        let flags = [true, false, false, true, true];
        let s = split(&flags);
        assert_eq!(s.yes, vec![0, 3, 4]);
        assert_eq!(s.no, vec![1, 2]);
    }

    #[test]
    fn par_split_matches_serial() {
        let n = crate::PAR_THRESHOLD * 2 + 7;
        let flags: Vec<bool> = (0..n).map(|i| (i * 7) % 5 < 2).collect();
        assert_eq!(par_split(&flags), split(&flags));
    }

    #[test]
    fn split_partitions_everything() {
        let flags = [false, true, false];
        let s = split(&flags);
        assert_eq!(s.yes.len() + s.no.len(), flags.len());
    }

    #[test]
    fn gather_basic() {
        let xs = ['a', 'b', 'c', 'd'];
        assert_eq!(gather(&xs, &[3, 0, 0]), vec!['d', 'a', 'a']);
    }

    #[test]
    fn apply_permutation_roundtrip() {
        let xs = [5, 6, 7, 8];
        let perm = [2, 0, 3, 1];
        let permuted = apply_permutation(&xs, &perm);
        assert_eq!(permuted, vec![6, 8, 5, 7]);
        // Inverse permutation restores.
        let mut inv = vec![0; 4];
        for (i, &p) in perm.iter().enumerate() {
            inv[p] = i;
        }
        assert_eq!(apply_permutation(&permuted, &inv), xs.to_vec());
    }

    #[test]
    #[should_panic(expected = "duplicate target")]
    fn apply_permutation_rejects_non_bijection() {
        apply_permutation(&[1, 2], &[0, 0]);
    }

    #[test]
    fn distribute_expands() {
        let xs = ['x', 'y', 'z'];
        assert_eq!(distribute(&xs, &[2, 0, 3]), vec!['x', 'x', 'z', 'z', 'z']);
    }

    #[test]
    fn distribute_empty() {
        let xs: [char; 0] = [];
        assert!(distribute(&xs, &[]).is_empty());
    }
}
