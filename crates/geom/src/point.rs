//! Fixed-dimension points over `f64`.
//!
//! `Point<D>` doubles as a vector type; the distinction is not load-bearing
//! for the algorithms in this workspace and keeping one type avoids
//! conversion churn in hot loops.

use std::ops::{Add, AddAssign, Div, Index, IndexMut, Mul, Neg, Sub, SubAssign};

/// A point (or vector) in `R^D`.
///
/// `Copy` and exactly `D * 8` bytes, so slices of points are cache-dense and
/// safe to move across rayon tasks.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Point<const D: usize>(pub [f64; D]);

impl<const D: usize> Default for Point<D> {
    fn default() -> Self {
        Self::origin()
    }
}

impl<const D: usize> Point<D> {
    /// The origin.
    pub fn origin() -> Self {
        Point([0.0; D])
    }

    /// Point with every coordinate equal to `v`.
    pub fn splat(v: f64) -> Self {
        Point([v; D])
    }

    /// The `i`-th standard basis vector.
    ///
    /// # Panics
    /// Panics if `i >= D`.
    pub fn basis(i: usize) -> Self {
        assert!(i < D, "basis index {i} out of range for dimension {D}");
        let mut c = [0.0; D];
        c[i] = 1.0;
        Point(c)
    }

    /// Coordinates as a slice.
    pub fn coords(&self) -> &[f64; D] {
        &self.0
    }

    /// Dot product.
    pub fn dot(&self, other: &Self) -> f64 {
        let mut acc = 0.0;
        for i in 0..D {
            acc += self.0[i] * other.0[i];
        }
        acc
    }

    /// Squared Euclidean norm.
    pub fn norm_sq(&self) -> f64 {
        self.dot(self)
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Squared Euclidean distance to `other`.
    ///
    /// Preferred in hot loops: distance comparisons are monotone in the
    /// square, and skipping `sqrt` matters for the all-pairs oracle.
    pub fn dist_sq(&self, other: &Self) -> f64 {
        let mut acc = 0.0;
        for i in 0..D {
            let d = self.0[i] - other.0[i];
            acc += d * d;
        }
        acc
    }

    /// Euclidean distance to `other`.
    pub fn dist(&self, other: &Self) -> f64 {
        self.dist_sq(other).sqrt()
    }

    /// Normalized copy, or `None` when the norm is below `tol`.
    pub fn normalized(&self, tol: f64) -> Option<Self> {
        let n = self.norm();
        if n <= tol {
            None
        } else {
            Some(*self / n)
        }
    }

    /// Component-wise minimum.
    pub fn min(&self, other: &Self) -> Self {
        let mut c = [0.0; D];
        for (i, v) in c.iter_mut().enumerate() {
            *v = self.0[i].min(other.0[i]);
        }
        Point(c)
    }

    /// Component-wise maximum.
    pub fn max(&self, other: &Self) -> Self {
        let mut c = [0.0; D];
        for (i, v) in c.iter_mut().enumerate() {
            *v = self.0[i].max(other.0[i]);
        }
        Point(c)
    }

    /// Linear interpolation `self + t * (other - self)`.
    pub fn lerp(&self, other: &Self, t: f64) -> Self {
        let mut c = [0.0; D];
        for (i, v) in c.iter_mut().enumerate() {
            *v = self.0[i] + t * (other.0[i] - self.0[i]);
        }
        Point(c)
    }

    /// `true` when every coordinate is finite.
    pub fn is_finite(&self) -> bool {
        self.0.iter().all(|c| c.is_finite())
    }

    /// Centroid of a non-empty set of points.
    ///
    /// # Panics
    /// Panics on an empty slice.
    pub fn centroid(points: &[Self]) -> Self {
        assert!(!points.is_empty(), "centroid of an empty point set");
        let mut acc = Self::origin();
        for p in points {
            acc += *p;
        }
        acc / points.len() as f64
    }

    /// Lift to `R^{E}` with `E = D + 1`, appending coordinate `last`.
    ///
    /// Used by the stereographic machinery; `E` must equal `D + 1`
    /// (checked at runtime because Rust cannot yet express `D + 1` in the
    /// return type).
    pub fn lift<const E: usize>(&self, last: f64) -> Point<E> {
        assert_eq!(E, D + 1, "lift target dimension must be D + 1");
        let mut c = [0.0; E];
        c[..D].copy_from_slice(&self.0);
        c[D] = last;
        Point(c)
    }

    /// Drop the last coordinate, projecting to `R^{E}` with `E = D - 1`.
    pub fn drop_last<const E: usize>(&self) -> Point<E> {
        assert_eq!(E + 1, D, "drop_last target dimension must be D - 1");
        let mut c = [0.0; E];
        c.copy_from_slice(&self.0[..E]);
        Point(c)
    }

    /// Last coordinate.
    pub fn last(&self) -> f64 {
        assert!(D > 0, "last coordinate of a zero-dimensional point");
        self.0[D - 1]
    }
}

impl<const D: usize> Index<usize> for Point<D> {
    type Output = f64;
    fn index(&self, i: usize) -> &f64 {
        &self.0[i]
    }
}

impl<const D: usize> IndexMut<usize> for Point<D> {
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.0[i]
    }
}

impl<const D: usize> Add for Point<D> {
    type Output = Self;
    fn add(mut self, rhs: Self) -> Self {
        for i in 0..D {
            self.0[i] += rhs.0[i];
        }
        self
    }
}

impl<const D: usize> AddAssign for Point<D> {
    fn add_assign(&mut self, rhs: Self) {
        for i in 0..D {
            self.0[i] += rhs.0[i];
        }
    }
}

impl<const D: usize> Sub for Point<D> {
    type Output = Self;
    fn sub(mut self, rhs: Self) -> Self {
        for i in 0..D {
            self.0[i] -= rhs.0[i];
        }
        self
    }
}

impl<const D: usize> SubAssign for Point<D> {
    fn sub_assign(&mut self, rhs: Self) {
        for i in 0..D {
            self.0[i] -= rhs.0[i];
        }
    }
}

impl<const D: usize> Mul<f64> for Point<D> {
    type Output = Self;
    fn mul(mut self, s: f64) -> Self {
        for c in &mut self.0 {
            *c *= s;
        }
        self
    }
}

impl<const D: usize> Div<f64> for Point<D> {
    type Output = Self;
    fn div(mut self, s: f64) -> Self {
        for c in &mut self.0 {
            *c /= s;
        }
        self
    }
}

impl<const D: usize> Neg for Point<D> {
    type Output = Self;
    fn neg(mut self) -> Self {
        for c in &mut self.0 {
            *c = -*c;
        }
        self
    }
}

impl<const D: usize> From<[f64; D]> for Point<D> {
    fn from(c: [f64; D]) -> Self {
        Point(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type P3 = Point<3>;

    #[test]
    fn arithmetic_roundtrip() {
        let a = P3::from([1.0, 2.0, 3.0]);
        let b = P3::from([-1.0, 0.5, 2.0]);
        assert_eq!((a + b) - b, a);
        assert_eq!(a * 2.0 / 2.0, a);
        assert_eq!(-(-a), a);
    }

    #[test]
    fn dot_and_norms() {
        let a = P3::from([3.0, 4.0, 0.0]);
        assert_eq!(a.norm_sq(), 25.0);
        assert_eq!(a.norm(), 5.0);
        let b = P3::from([0.0, 0.0, 2.0]);
        assert_eq!(a.dot(&b), 0.0);
    }

    #[test]
    fn distances_are_symmetric_and_consistent() {
        let a = P3::from([1.0, 1.0, 1.0]);
        let b = P3::from([2.0, 3.0, 1.0]);
        assert!((a.dist(&b) - b.dist(&a)).abs() < 1e-15);
        assert!((a.dist(&b).powi(2) - a.dist_sq(&b)).abs() < 1e-12);
    }

    #[test]
    fn basis_vectors_are_orthonormal() {
        for i in 0..3 {
            for j in 0..3 {
                let expected = if i == j { 1.0 } else { 0.0 };
                assert_eq!(P3::basis(i).dot(&P3::basis(j)), expected);
            }
        }
    }

    #[test]
    #[should_panic(expected = "basis index")]
    fn basis_rejects_out_of_range() {
        P3::basis(3);
    }

    #[test]
    fn normalized_unit_vector() {
        let a = P3::from([0.0, 3.0, 4.0]);
        let n = a.normalized(1e-12).unwrap();
        assert!((n.norm() - 1.0).abs() < 1e-12);
        assert!(P3::origin().normalized(1e-12).is_none());
    }

    #[test]
    fn centroid_of_cube_corners() {
        let pts: Vec<P3> = (0..8)
            .map(|m| P3::from([(m & 1) as f64, ((m >> 1) & 1) as f64, ((m >> 2) & 1) as f64]))
            .collect();
        let c = P3::centroid(&pts);
        for i in 0..3 {
            assert!((c[i] - 0.5).abs() < 1e-15);
        }
    }

    #[test]
    fn lift_and_drop_roundtrip() {
        let p = Point::<2>::from([1.5, -2.5]);
        let q: Point<3> = p.lift(7.0);
        assert_eq!(q.coords(), &[1.5, -2.5, 7.0]);
        assert_eq!(q.last(), 7.0);
        let back: Point<2> = q.drop_last();
        assert_eq!(back, p);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = P3::from([0.0, 0.0, 0.0]);
        let b = P3::from([2.0, 4.0, 6.0]);
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
        assert_eq!(a.lerp(&b, 0.5), P3::from([1.0, 2.0, 3.0]));
    }

    #[test]
    fn min_max_componentwise() {
        let a = P3::from([1.0, 5.0, -2.0]);
        let b = P3::from([2.0, 3.0, -1.0]);
        assert_eq!(a.min(&b), P3::from([1.0, 3.0, -2.0]));
        assert_eq!(a.max(&b), P3::from([2.0, 5.0, -1.0]));
    }
}
