//! Small dense linear algebra.
//!
//! The separator machinery needs three solvers, all on systems whose size is
//! bounded by the (constant) dimension:
//!
//! * `solve` — square systems, for circumspheres through `D+1` points;
//! * `null_vector` — a nontrivial kernel vector of an under-determined
//!   homogeneous system, for Radon points of `D+2` points;
//! * [`Rotation`] — an orthogonal map taking a given unit vector to the
//!   last coordinate axis, for the MTTV conformal normalization.
//!
//! Matrices here are tiny (at most `(D+1) x (D+2)` with `D <= 8`), so plain
//! Gaussian elimination with partial pivoting is both adequate and fast; no
//! blocking or SIMD is warranted.

use crate::point::Point;

/// Row-major dense matrix of `f64`.
#[derive(Clone, Debug)]
pub struct DMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DMatrix {
    /// Zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DMatrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from a row-major closure.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Self::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m[(r, c)] = f(r, c);
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    fn idx(&self, r: usize, c: usize) -> usize {
        debug_assert!(r < self.rows && c < self.cols);
        r * self.cols + c
    }

    fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        for c in 0..self.cols {
            let ia = self.idx(a, c);
            let ib = self.idx(b, c);
            self.data.swap(ia, ib);
        }
    }

    /// Reduce `self` to row echelon form in place (partial pivoting).
    /// Returns the pivot column of each pivot row, in order.
    fn echelon(&mut self, tol: f64) -> Vec<usize> {
        let mut pivots = Vec::new();
        let mut row = 0;
        for col in 0..self.cols {
            if row == self.rows {
                break;
            }
            // Find the largest pivot in this column at or below `row`.
            let mut best = row;
            for r in row + 1..self.rows {
                if self[(r, col)].abs() > self[(best, col)].abs() {
                    best = r;
                }
            }
            if self[(best, col)].abs() <= tol {
                continue; // free column
            }
            self.swap_rows(row, best);
            let pivot = self[(row, col)];
            for r in row + 1..self.rows {
                let factor = self[(r, col)] / pivot;
                if factor == 0.0 {
                    continue;
                }
                for c in col..self.cols {
                    let v = self[(row, c)];
                    self[(r, c)] -= factor * v;
                }
                self[(r, col)] = 0.0; // clear residual rounding
            }
            pivots.push(col);
            row += 1;
        }
        pivots
    }

    /// Solve the square system `self * x = b` by Gaussian elimination with
    /// partial pivoting. Returns `None` when the matrix is singular to
    /// within `tol`.
    ///
    /// # Panics
    /// Panics when the matrix is not square or `b.len() != rows`.
    pub fn solve(&self, b: &[f64], tol: f64) -> Option<Vec<f64>> {
        assert_eq!(self.rows, self.cols, "solve requires a square matrix");
        assert_eq!(b.len(), self.rows, "rhs length mismatch");
        let n = self.rows;
        // Augmented matrix [A | b].
        let mut aug = DMatrix::from_fn(n, n + 1, |r, c| if c < n { self[(r, c)] } else { b[r] });
        let pivots = aug.echelon(tol);
        if pivots.len() < n {
            return None;
        }
        // Back substitution.
        let mut x = vec![0.0; n];
        for r in (0..n).rev() {
            let mut acc = aug[(r, n)];
            for c in r + 1..n {
                acc -= aug[(r, c)] * x[c];
            }
            let diag = aug[(r, r)];
            if diag.abs() <= tol {
                return None;
            }
            x[r] = acc / diag;
        }
        Some(x)
    }

    /// A nontrivial vector in the kernel of `self` (homogeneous system
    /// `self * x = 0`), normalized to unit length. Returns `None` when the
    /// kernel is trivial to within `tol` (matrix has full column rank).
    ///
    /// Used for Radon points: the affine-dependence coefficients of `d + 2`
    /// points in `R^d` form exactly such a kernel vector.
    pub fn null_vector(&self, tol: f64) -> Option<Vec<f64>> {
        let mut m = self.clone();
        let pivots = m.echelon(tol);
        if pivots.len() == self.cols {
            return None;
        }
        // Choose the first free column and back-substitute with its
        // variable fixed to 1.
        let pivot_set: Vec<usize> = pivots.clone();
        let free = (0..self.cols)
            .find(|c| !pivot_set.contains(c))
            .expect("rank < cols implies a free column");
        let mut x = vec![0.0; self.cols];
        x[free] = 1.0;
        // Pivot rows are 0..pivots.len(), pivot of row r is pivot_set[r].
        for r in (0..pivot_set.len()).rev() {
            let pc = pivot_set[r];
            let mut acc = 0.0;
            for c in pc + 1..self.cols {
                acc -= m[(r, c)] * x[c];
            }
            x[pc] = acc / m[(r, pc)];
        }
        let norm = x.iter().map(|v| v * v).sum::<f64>().sqrt();
        if norm <= tol {
            return None;
        }
        for v in &mut x {
            *v /= norm;
        }
        Some(x)
    }

    /// Rank to within `tol`.
    pub fn rank(&self, tol: f64) -> usize {
        self.clone().echelon(tol).len()
    }
}

impl std::ops::Index<(usize, usize)> for DMatrix {
    type Output = f64;
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        &self.data[self.idx(r, c)]
    }
}

impl std::ops::IndexMut<(usize, usize)> for DMatrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        let i = self.idx(r, c);
        &mut self.data[i]
    }
}

/// An orthogonal map of `R^D` represented as a Householder reflection
/// (or the identity), built to take a prescribed unit vector to the
/// positive last coordinate axis `e_{D-1}`.
///
/// A single reflection suffices: reflecting across the bisector of `v` and
/// `e_{D-1}` maps one to the other. Reflections are orthogonal, which is all
/// the conformal-map argument requires (the paper needs *some* rotation `Q`
/// with `Qz` on the axis; an orthogonal involution serves identically and is
/// numerically exact to apply).
#[derive(Clone, Debug)]
pub struct Rotation<const D: usize> {
    /// Householder unit vector, or `None` for the identity map.
    u: Option<Point<D>>,
}

impl<const D: usize> Rotation<D> {
    /// Identity map.
    pub fn identity() -> Self {
        Rotation { u: None }
    }

    /// Map taking unit vector `v` to `e_{D-1}` (the last axis).
    ///
    /// # Panics
    /// Panics when `v` is not approximately unit length.
    pub fn to_last_axis(v: &Point<D>) -> Self {
        assert!(
            (v.norm() - 1.0).abs() < 1e-6,
            "to_last_axis requires a unit vector, got |v| = {}",
            v.norm()
        );
        let axis = Point::<D>::basis(D - 1);
        let diff = *v - axis;
        match diff.normalized(1e-12) {
            None => Rotation::identity(),
            Some(u) => Rotation { u: Some(u) },
        }
    }

    /// Apply the map.
    pub fn apply(&self, p: &Point<D>) -> Point<D> {
        match &self.u {
            None => *p,
            Some(u) => *p - *u * (2.0 * u.dot(p)),
        }
    }

    /// Apply the inverse map. Householder reflections are involutions, so
    /// this equals [`Rotation::apply`]; kept separate for call-site clarity.
    pub fn apply_inverse(&self, p: &Point<D>) -> Point<D> {
        self.apply(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_identity() {
        let m = DMatrix::from_fn(3, 3, |r, c| if r == c { 1.0 } else { 0.0 });
        let x = m.solve(&[1.0, 2.0, 3.0], 1e-12).unwrap();
        assert_eq!(x, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn solve_general_system() {
        // 2x + y = 5 ; x - y = 1  =>  x = 2, y = 1
        let m = DMatrix::from_fn(2, 2, |r, c| [[2.0, 1.0], [1.0, -1.0]][r][c]);
        let x = m.solve(&[5.0, 1.0], 1e-12).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn solve_singular_returns_none() {
        let m = DMatrix::from_fn(2, 2, |r, _| if r == 0 { 1.0 } else { 2.0 });
        assert!(m.solve(&[1.0, 2.0], 1e-12).is_none());
    }

    #[test]
    fn solve_needs_pivoting() {
        // Leading zero forces a row swap.
        let m = DMatrix::from_fn(2, 2, |r, c| [[0.0, 1.0], [1.0, 0.0]][r][c]);
        let x = m.solve(&[3.0, 4.0], 1e-12).unwrap();
        assert!((x[0] - 4.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn null_vector_of_wide_matrix() {
        // x + y + z = 0 has a 2-dimensional kernel.
        let m = DMatrix::from_fn(1, 3, |_, _| 1.0);
        let v = m.null_vector(1e-12).unwrap();
        let s: f64 = v.iter().sum();
        assert!(s.abs() < 1e-9, "kernel vector must satisfy the system");
        let norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!((norm - 1.0).abs() < 1e-12);
    }

    #[test]
    fn null_vector_none_for_full_rank() {
        let m = DMatrix::from_fn(3, 3, |r, c| if r == c { 1.0 } else { 0.0 });
        assert!(m.null_vector(1e-12).is_none());
    }

    #[test]
    fn null_vector_annihilates_random_wide_matrix() {
        // Deterministic pseudo-random entries.
        let mut seed = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed % 1000) as f64 / 500.0 - 1.0
        };
        let m = DMatrix::from_fn(4, 6, |_, _| next());
        let v = m.null_vector(1e-10).unwrap();
        for r in 0..4 {
            let dot: f64 = (0..6).map(|c| m[(r, c)] * v[c]).sum();
            assert!(dot.abs() < 1e-8, "row {r} residual {dot}");
        }
    }

    #[test]
    fn rank_detects_dependent_rows() {
        let m = DMatrix::from_fn(3, 3, |r, c| (r * 3 + c) as f64); // rank 2
        assert_eq!(m.rank(1e-9), 2);
    }

    #[test]
    fn rotation_maps_vector_to_last_axis() {
        let v = Point::<3>::from([1.0, 2.0, 2.0]) / 3.0; // unit
        let rot = Rotation::to_last_axis(&v);
        let img = rot.apply(&v);
        assert!((img[0]).abs() < 1e-12);
        assert!((img[1]).abs() < 1e-12);
        assert!((img[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rotation_preserves_norms_and_inverts() {
        let v = Point::<4>::from([0.5, -0.5, 0.5, 0.5]);
        let rot = Rotation::to_last_axis(&v);
        let p = Point::<4>::from([0.3, 1.7, -2.0, 0.9]);
        let q = rot.apply(&p);
        assert!((q.norm() - p.norm()).abs() < 1e-12);
        let back = rot.apply_inverse(&q);
        assert!(back.dist(&p) < 1e-12);
    }

    #[test]
    fn rotation_identity_when_already_on_axis() {
        let v = Point::<3>::basis(2);
        let rot = Rotation::to_last_axis(&v);
        let p = Point::<3>::from([1.0, 2.0, 3.0]);
        assert_eq!(rot.apply(&p), p);
    }
}
