//! Analytic work–depth accounting.
//!
//! The paper's results are statements about the *parallel vector model*:
//! `O(log n)` time means `O(log n)` rounds of unit-time vector operations
//! (a SCAN, a separator candidate, an element-wise map) along the critical
//! path, using `n` virtual processors. Wall-clock time on a work-stealing
//! multicore does not expose that quantity, so every algorithm in this
//! workspace *computes* it: each phase produces a [`CostProfile`], and
//! profiles compose sequentially (depths add) or in parallel (depths max),
//! mirroring Brent's theorem exactly.
//!
//! [`CostMeter`] supplements the pure profiles with whole-run event
//! counters (separator retries, punts, …) gathered across rayon tasks with
//! relaxed atomics — they are aggregated only after the parallel phase
//! completes, so relaxed ordering is sufficient (no inter-thread data flows
//! through them).

use std::sync::atomic::{AtomicU64, Ordering};

/// Work–depth profile of one (sub)computation in the vector model.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CostProfile {
    /// Total operations across all virtual processors.
    pub work: u64,
    /// Rounds of unit-time vector operations on the critical path.
    pub depth: u64,
    /// Number of SCAN invocations (subset of `work`/`depth` attribution).
    pub scan_ops: u64,
    /// Separator candidates drawn (each is one unit-time round).
    pub separator_candidates: u64,
    /// Times the algorithm punted to the slow correction path.
    pub punts: u64,
}

impl CostProfile {
    /// The empty computation.
    pub fn zero() -> Self {
        Self::default()
    }

    /// One unit-time vector round touching `work` elements.
    pub fn round(work: u64) -> Self {
        CostProfile {
            work,
            depth: 1,
            ..Self::default()
        }
    }

    /// One SCAN over `n` elements: unit depth, linear work.
    pub fn scan(n: u64) -> Self {
        CostProfile {
            work: n,
            depth: 1,
            scan_ops: 1,
            ..Self::default()
        }
    }

    /// `rounds` consecutive unit-time rounds each touching `work` elements.
    pub fn rounds(rounds: u64, work_per_round: u64) -> Self {
        CostProfile {
            work: rounds * work_per_round,
            depth: rounds,
            ..Self::default()
        }
    }

    /// Sequential composition: this, then `next`.
    #[must_use]
    pub fn then(self, next: CostProfile) -> Self {
        CostProfile {
            work: self.work + next.work,
            depth: self.depth + next.depth,
            scan_ops: self.scan_ops + next.scan_ops,
            separator_candidates: self.separator_candidates + next.separator_candidates,
            punts: self.punts + next.punts,
        }
    }

    /// Parallel composition: this alongside `other` (depth is the max).
    #[must_use]
    pub fn alongside(self, other: CostProfile) -> Self {
        CostProfile {
            work: self.work + other.work,
            depth: self.depth.max(other.depth),
            scan_ops: self.scan_ops + other.scan_ops,
            separator_candidates: self.separator_candidates + other.separator_candidates,
            punts: self.punts + other.punts,
        }
    }

    /// Mark `n` separator candidate rounds (each unit depth).
    #[must_use]
    pub fn with_candidates(mut self, n: u64) -> Self {
        self.separator_candidates += n;
        self.work += n;
        self.depth += n;
        self
    }

    /// Mark one punt.
    #[must_use]
    pub fn with_punt(mut self) -> Self {
        self.punts += 1;
        self
    }
}

/// Shared event counters for a whole run. Cheap to clone a reference to
/// (`&CostMeter` is `Sync`); aggregate with [`CostMeter::snapshot`] after
/// the parallel phase.
#[derive(Debug, Default)]
pub struct CostMeter {
    separator_candidates: AtomicU64,
    separator_accepts: AtomicU64,
    punts: AtomicU64,
    fast_corrections: AtomicU64,
    marching_balls: AtomicU64,
    march_pruned: AtomicU64,
    query_builds: AtomicU64,
    distance_evals: AtomicU64,
    correction_dist_evals: AtomicU64,
    f32_rejects: AtomicU64,
    f64_confirms: AtomicU64,
    unsafe_margin_hits: AtomicU64,
    eps_skips: AtomicU64,
}

/// A point-in-time copy of a [`CostMeter`]'s counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MeterSnapshot {
    /// Separator candidates drawn across the run.
    pub separator_candidates: u64,
    /// Candidates accepted as good separators.
    pub separator_accepts: u64,
    /// Punts to the slow (query-structure) correction.
    pub punts: u64,
    /// Fast corrections that ran to completion.
    pub fast_corrections: u64,
    /// Total ball-node marching steps performed.
    pub marching_balls: u64,
    /// Subtrees skipped by AABB-vs-ball rejection during marching.
    pub march_pruned: u64,
    /// Query structures built (punt path).
    pub query_builds: u64,
    /// Point-to-point distance evaluations.
    pub distance_evals: u64,
    /// Distance evaluations spent on Fast-Correction candidates (a subset
    /// of [`MeterSnapshot::distance_evals`]).
    pub correction_dist_evals: u64,
    /// Candidates rejected by the certified f32 lower bound without an f64
    /// confirmation (the mixed precision tier's savings).
    pub f32_rejects: u64,
    /// f32-filter survivors confirmed in f64.
    pub f64_confirms: u64,
    /// Confirmed survivors whose exact f64 distance fell below the
    /// certified f32 lower bound — observed violations of the error
    /// analysis, always zero when the bound is sound.
    pub unsafe_margin_hits: u64,
    /// Candidates skipped by the ε-relaxed predicates (zero in exact mode).
    pub eps_skips: u64,
}

impl CostMeter {
    /// Fresh meter, all counters zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record separator candidates drawn.
    pub fn add_candidates(&self, n: u64) {
        self.separator_candidates.fetch_add(n, Ordering::Relaxed);
    }

    /// Record an accepted separator.
    pub fn add_accept(&self) {
        self.separator_accepts.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a punt.
    pub fn add_punt(&self) {
        self.punts.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a completed fast correction.
    pub fn add_fast_correction(&self) {
        self.fast_corrections.fetch_add(1, Ordering::Relaxed);
    }

    /// Record `n` ball-node marching steps.
    pub fn add_marching(&self, n: u64) {
        self.marching_balls.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` subtrees pruned off the march by AABB rejection.
    pub fn add_march_pruned(&self, n: u64) {
        self.march_pruned.fetch_add(n, Ordering::Relaxed);
    }

    /// Record a query-structure build.
    pub fn add_query_build(&self) {
        self.query_builds.fetch_add(1, Ordering::Relaxed);
    }

    /// Record `n` distance evaluations.
    pub fn add_distance_evals(&self, n: u64) {
        self.distance_evals.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` Fast-Correction candidate distance evaluations (also
    /// counted in the global `distance_evals` by the caller).
    pub fn add_correction_dist_evals(&self, n: u64) {
        self.correction_dist_evals.fetch_add(n, Ordering::Relaxed);
    }

    /// Record one batch of precision-tier filter outcomes: `f32_rejects`
    /// certified rejects, `f64_confirms` survivors confirmed exactly,
    /// `unsafe_margin_hits` observed certified-bound violations (always
    /// zero when the error analysis holds), `eps_skips` ε-relaxation
    /// skips.
    pub fn add_precision(
        &self,
        f32_rejects: u64,
        f64_confirms: u64,
        unsafe_margin_hits: u64,
        eps_skips: u64,
    ) {
        self.f32_rejects.fetch_add(f32_rejects, Ordering::Relaxed);
        self.f64_confirms.fetch_add(f64_confirms, Ordering::Relaxed);
        self.unsafe_margin_hits
            .fetch_add(unsafe_margin_hits, Ordering::Relaxed);
        self.eps_skips.fetch_add(eps_skips, Ordering::Relaxed);
    }

    /// Copy out all counters.
    pub fn snapshot(&self) -> MeterSnapshot {
        MeterSnapshot {
            separator_candidates: self.separator_candidates.load(Ordering::Relaxed),
            separator_accepts: self.separator_accepts.load(Ordering::Relaxed),
            punts: self.punts.load(Ordering::Relaxed),
            fast_corrections: self.fast_corrections.load(Ordering::Relaxed),
            marching_balls: self.marching_balls.load(Ordering::Relaxed),
            march_pruned: self.march_pruned.load(Ordering::Relaxed),
            query_builds: self.query_builds.load(Ordering::Relaxed),
            distance_evals: self.distance_evals.load(Ordering::Relaxed),
            correction_dist_evals: self.correction_dist_evals.load(Ordering::Relaxed),
            f32_rejects: self.f32_rejects.load(Ordering::Relaxed),
            f64_confirms: self.f64_confirms.load(Ordering::Relaxed),
            unsafe_margin_hits: self.unsafe_margin_hits.load(Ordering::Relaxed),
            eps_skips: self.eps_skips.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_identity_for_then_and_alongside() {
        let p = CostProfile::rounds(3, 10);
        assert_eq!(p.then(CostProfile::zero()), p);
        assert_eq!(CostProfile::zero().then(p), p);
        assert_eq!(p.alongside(CostProfile::zero()), p);
    }

    #[test]
    fn then_adds_depth() {
        let a = CostProfile::round(5);
        let b = CostProfile::round(7);
        let c = a.then(b);
        assert_eq!(c.work, 12);
        assert_eq!(c.depth, 2);
    }

    #[test]
    fn alongside_maxes_depth_sums_work() {
        let a = CostProfile::rounds(10, 1);
        let b = CostProfile::rounds(3, 100);
        let c = a.alongside(b);
        assert_eq!(c.depth, 10);
        assert_eq!(c.work, 10 + 300);
    }

    #[test]
    fn scan_counts() {
        let s = CostProfile::scan(1000);
        assert_eq!(s.scan_ops, 1);
        assert_eq!(s.depth, 1);
        assert_eq!(s.work, 1000);
        let two = s.then(CostProfile::scan(500));
        assert_eq!(two.scan_ops, 2);
    }

    #[test]
    fn candidates_add_depth_and_count() {
        let p = CostProfile::zero().with_candidates(4);
        assert_eq!(p.separator_candidates, 4);
        assert_eq!(p.depth, 4);
    }

    #[test]
    fn punt_counts_propagate() {
        let p = CostProfile::round(1).with_punt();
        let q = CostProfile::round(1);
        assert_eq!(p.alongside(q).punts, 1);
        assert_eq!(p.then(q).punts, 1);
    }

    #[test]
    fn meter_accumulates_across_threads() {
        let meter = CostMeter::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        meter.add_candidates(1);
                        meter.add_distance_evals(3);
                    }
                });
            }
        });
        let snap = meter.snapshot();
        assert_eq!(snap.separator_candidates, 8000);
        assert_eq!(snap.distance_evals, 24000);
    }

    #[test]
    fn meter_precision_counters_accumulate() {
        let meter = CostMeter::new();
        meter.add_precision(10, 3, 1, 0);
        meter.add_precision(5, 0, 0, 7);
        let snap = meter.snapshot();
        assert_eq!(snap.f32_rejects, 15);
        assert_eq!(snap.f64_confirms, 3);
        assert_eq!(snap.unsafe_margin_hits, 1);
        assert_eq!(snap.eps_skips, 7);
    }

    #[test]
    fn brent_composition_models_balanced_tree() {
        // A perfectly balanced binary recursion of height h with unit-round
        // nodes has depth h+1 and work 2^(h+1)-1.
        fn tree(h: u32) -> CostProfile {
            let node = CostProfile::round(1);
            if h == 0 {
                node
            } else {
                node.then(tree(h - 1).alongside(tree(h - 1)))
            }
        }
        let p = tree(4);
        assert_eq!(p.depth, 5);
        assert_eq!(p.work, 31);
    }
}
