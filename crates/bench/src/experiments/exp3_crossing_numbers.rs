//! EXP-3 — hyperplanes vs spheres: the crossing-number gap that motivates
//! the whole paper (Section 1 / Section 6 opening).
//!
//! Paper claims: a balanced hyperplane of fixed orientation can be crossed
//! by `Ω(n)` k-NN balls (Bentley's weakness), while a sphere separator
//! crosses only `O(n^((d-1)/d))` w.h.p. We measure both cut types against
//! the exact 1-neighborhood system on:
//!
//! * `two-slabs` — the adversarial input: every ball crosses the
//!   slab-perpendicular median plane;
//! * `sphere-shell` — points on a circle, bad for central flat cuts;
//! * `uniform` — the control, where both cuts behave.

use crate::harness::{fit_power_law, Table};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sepdc_core::{kdtree_all_knn, NeighborhoodSystem};
use sepdc_separator::hyperplane_cut::median_cut_axis;
use sepdc_separator::{find_good_separator, SeparatorConfig};
use sepdc_workloads::Workload;

/// Crossing counts for one workload at one size: (worst axis median cut,
/// accepted sphere separator).
fn crossings(w: Workload, n: usize, seed: u64) -> (usize, usize) {
    let pts = w.generate::<2>(n, seed);
    let knn = kdtree_all_knn(&pts, 1);
    let system = NeighborhoodSystem::from_knn(&pts, &knn);

    // Bentley translates a *fixed-orientation* hyperplane to the median;
    // the adversary picks the orientation, so report the worst axis.
    let hyper = (0..2)
        .filter_map(|axis| median_cut_axis(&pts, axis))
        .map(|sep| system.intersection_number(&sep))
        .max()
        .unwrap_or(0);

    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xFEED);
    let cfg = SeparatorConfig::default();
    let mut sphere_sum = 0usize;
    let trials = 8;
    for _ in 0..trials {
        let f = find_good_separator::<2, 3, _>(&pts, &cfg, &mut rng).expect("splittable");
        sphere_sum += system.intersection_number(&f.separator);
    }
    (hyper, sphere_sum / trials)
}

/// Run EXP-3.
pub fn run() {
    let mut table = Table::new(
        "EXP-3 — crossing numbers: worst median hyperplane vs sphere separator (d=2, k=1)",
        &[
            "workload / n",
            "hyperplane ι",
            "hyper ι/n",
            "sphere ι",
            "sphere ι/√n",
            "gap ×",
        ],
    );
    let ns = [1 << 10, 1 << 12, 1 << 14, 1 << 16];
    for w in [
        Workload::TwoSlabs,
        Workload::SphereShell,
        Workload::UniformCube,
    ] {
        let mut hypers = Vec::new();
        let mut spheres = Vec::new();
        for (i, &n) in ns.iter().enumerate() {
            let (h, s) = crossings(w, n, 40 + i as u64);
            hypers.push(h as f64);
            spheres.push(s as f64);
            table.row(
                format!("{} n={}", w.name(), n),
                vec![
                    format!("{h}"),
                    format!("{:.3}", h as f64 / n as f64),
                    format!("{s}"),
                    format!("{:.2}", s as f64 / (n as f64).sqrt()),
                    format!("{:.1}", h as f64 / (s.max(1)) as f64),
                ],
            );
        }
        let ns_f: Vec<f64> = ns.iter().map(|&n| n as f64).collect();
        table.note(format!(
            "{}: hyperplane ι ~ {}, sphere ι ~ {}  (paper: Ω(n) possible vs O(n^0.5))",
            w.name(),
            crate::harness::fmt_exponent(fit_power_law(&ns_f, &hypers)),
            crate::harness::fmt_exponent(fit_power_law(&ns_f, &spheres)),
        ));
    }
    table.note("hyper ι/n ≈ 1.0 on two-slabs: EVERY ball crosses the bad median plane.");
    table.print();
}
