//! Radon points.
//!
//! Radon's theorem: any `d + 2` points in `R^d` can be partitioned into two
//! sets whose convex hulls intersect; a point in the intersection is a
//! *Radon point*. Iterating Radon points yields the approximate centerpoints
//! the MTTV separator pipeline needs (see [`crate::centerpoint`]).

use crate::matrix::DMatrix;
use crate::point::Point;

/// Largest supported dimension for the allocation-free Radon kernel.
/// Mirrors the `D <= 8` bound stated in [`crate::matrix`].
const MAX_D: usize = 8;
const MAX_ROWS: usize = MAX_D + 1;
const MAX_COLS: usize = MAX_D + 2;

/// A computed Radon point together with the witness partition.
#[derive(Clone, Debug)]
pub struct RadonPoint<const D: usize> {
    /// The point common to both convex hulls.
    pub point: Point<D>,
    /// Indices (into the input) whose affine coefficient was positive.
    pub positive: Vec<usize>,
    /// Indices whose coefficient was negative.
    pub negative: Vec<usize>,
}

/// The affine-dependence coefficients of `D + 2` points: a unit kernel
/// vector of the `(D+1) × (D+2)` system whose rows are the coordinates plus
/// the constraint `Σ λ_i = 0`.
///
/// This is the inner loop of the iterated-Radon centerpoint scheme (hundreds
/// of thousands of calls per k-NN run), so it runs entirely on fixed-size
/// stack buffers — no heap traffic. The elimination replicates
/// [`DMatrix::null_vector`] operation for operation (same partial-pivoting
/// choices, same update order), so the result is bitwise identical to the
/// heap-backed path and downstream separator draws are unperturbed.
// The elimination indexes two rows of `a` at once (pivot row read, target
// row written); an iterator rewrite needs a split borrow that obscures the
// operation-for-operation mirror of `DMatrix::null_vector`.
#[allow(clippy::needless_range_loop)]
fn radon_lambda<const D: usize>(points: &[Point<D>], tol: f64) -> Option<[f64; MAX_COLS]> {
    assert!(D <= MAX_D, "radon_lambda supports D <= {MAX_D}");
    let rows = D + 1;
    let cols = D + 2;

    // Rows 0..D: coordinates; row D: the affine constraint Σ λ_i = 0.
    let mut a = [[0.0f64; MAX_COLS]; MAX_ROWS];
    for (c, p) in points.iter().enumerate() {
        for r in 0..D {
            a[r][c] = p[r];
        }
        a[D][c] = 1.0;
    }

    // Row echelon form with partial pivoting (same pivot rule and update
    // order as `DMatrix::echelon`).
    let mut pivots = [0usize; MAX_ROWS];
    let mut npiv = 0;
    let mut row = 0;
    for col in 0..cols {
        if row == rows {
            break;
        }
        let mut best = row;
        for r in row + 1..rows {
            if a[r][col].abs() > a[best][col].abs() {
                best = r;
            }
        }
        if a[best][col].abs() <= tol {
            continue; // free column
        }
        a.swap(row, best);
        let pivot = a[row][col];
        for r in row + 1..rows {
            let factor = a[r][col] / pivot;
            if factor == 0.0 {
                continue;
            }
            for c in col..cols {
                a[r][c] -= factor * a[row][c];
            }
            a[r][col] = 0.0; // clear residual rounding
        }
        pivots[npiv] = col;
        npiv += 1;
        row += 1;
    }
    if npiv == cols {
        return None; // trivial kernel
    }

    // First free column gets coefficient 1; back-substitute the pivots.
    let mut free = cols;
    for c in 0..cols {
        if !pivots[..npiv].contains(&c) {
            free = c;
            break;
        }
    }
    let mut x = [0.0f64; MAX_COLS];
    x[free] = 1.0;
    for r in (0..npiv).rev() {
        let pc = pivots[r];
        let mut acc = 0.0;
        for c in pc + 1..cols {
            acc -= a[r][c] * x[c];
        }
        x[pc] = acc / a[r][pc];
    }
    let mut norm_sq = 0.0;
    for v in &x[..cols] {
        norm_sq += v * v;
    }
    let norm = norm_sq.sqrt();
    if norm <= tol {
        return None;
    }
    for v in &mut x[..cols] {
        *v /= norm;
    }
    Some(x)
}

/// [`radon_point`] without the witness partition: just the point.
///
/// The centerpoint iteration discards the witness, so this variant skips the
/// two index `Vec`s and runs allocation-free end to end. Returns exactly the
/// point `radon_point` would (same kernel vector, same sign tests).
pub fn radon_point_value<const D: usize>(points: &[Point<D>], tol: f64) -> Option<Point<D>> {
    assert_eq!(
        points.len(),
        D + 2,
        "radon_point_value needs exactly D + 2 = {} points, got {}",
        D + 2,
        points.len()
    );
    let lambda = radon_lambda(points, tol)?;
    let mut has_positive = false;
    let mut has_negative = false;
    let mut pos_sum = 0.0;
    let mut acc = Point::<D>::origin();
    for (i, &l) in lambda[..D + 2].iter().enumerate() {
        if l > tol {
            has_positive = true;
            pos_sum += l;
            acc += points[i] * l;
        } else if l < -tol {
            has_negative = true;
        }
    }
    if !has_positive || !has_negative || pos_sum <= tol {
        return None;
    }
    Some(acc / pos_sum)
}

/// Compute a Radon point of exactly `D + 2` points.
///
/// The affine dependence `Σ λ_i x_i = 0, Σ λ_i = 0` (a kernel vector of the
/// `(D+1) × (D+2)` homogeneous system) is split by sign; the Radon point is
/// the convex combination of the positive side with weights `λ_i / Σ⁺ λ`.
///
/// Returns `None` when the kernel computation degenerates numerically (for
/// example, all points identical, making every kernel vector have a zero
/// side). Duplicated points generally still succeed: any affine dependence
/// with nonempty positive *and* negative parts yields a valid witness.
///
/// # Panics
/// Panics unless `points.len() == D + 2`.
pub fn radon_point<const D: usize>(points: &[Point<D>], tol: f64) -> Option<RadonPoint<D>> {
    assert_eq!(
        points.len(),
        D + 2,
        "radon_point needs exactly D + 2 = {} points, got {}",
        D + 2,
        points.len()
    );
    let lambda = radon_lambda(points, tol)?;

    let mut positive = Vec::new();
    let mut negative = Vec::new();
    let mut pos_sum = 0.0;
    let mut acc = Point::<D>::origin();
    for (i, &l) in lambda[..D + 2].iter().enumerate() {
        if l > tol {
            positive.push(i);
            pos_sum += l;
            acc += points[i] * l;
        } else if l < -tol {
            negative.push(i);
        }
    }
    if positive.is_empty() || negative.is_empty() || pos_sum <= tol {
        return None;
    }
    Some(RadonPoint {
        point: acc / pos_sum,
        positive,
        negative,
    })
}

/// Verify that `q` lies in the convex hull of `hull_points` by solving the
/// convex-combination system exactly (small dense LP-free check: we solve
/// the affine system and confirm non-negative weights). Intended for tests
/// and debug assertions on tiny inputs.
///
/// Works only when `hull_points.len() <= D + 1` (a simplex); returns `false`
/// for larger inputs rather than solving a general LP.
pub fn in_simplex_hull<const D: usize>(q: &Point<D>, hull_points: &[Point<D>], tol: f64) -> bool {
    let k = hull_points.len();
    if k == 0 || k > D + 1 {
        return false;
    }
    if k == 1 {
        return q.dist(&hull_points[0]) <= tol;
    }
    // Solve Σ w_i x_i = q, Σ w_i = 1 in least-squares-free form: the system
    // is (D+1) x k; we solve its normal equations via the square solver.
    let a = DMatrix::from_fn(D + 1, k, |r, c| if r < D { hull_points[c][r] } else { 1.0 });
    let mut rhs = vec![0.0; D + 1];
    for r in 0..D {
        rhs[r] = q[r];
    }
    rhs[D] = 1.0;
    // Normal equations AᵀA w = Aᵀ rhs.
    let ata = DMatrix::from_fn(k, k, |i, j| {
        let mut s = 0.0;
        for r in 0..D + 1 {
            s += a[(r, i)] * a[(r, j)];
        }
        s
    });
    let atb: Vec<f64> = (0..k)
        .map(|i| {
            let mut s = 0.0;
            for r in 0..D + 1 {
                s += a[(r, i)] * rhs[r];
            }
            s
        })
        .collect();
    let Some(w) = ata.solve(&atb, 1e-12) else {
        return false;
    };
    // Residual check (normal equations can "solve" inconsistent systems).
    for r in 0..D + 1 {
        let mut s = 0.0;
        for (c, &wc) in w.iter().enumerate() {
            s += a[(r, c)] * wc;
        }
        if (s - rhs[r]).abs() > 1e-6 {
            return false;
        }
    }
    w.iter().all(|&wi| wi >= -tol)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn radon_point_of_square_plus_center_free() {
        // Four corners of a square in R^2 (D+2 = 4 points).
        let pts = [
            Point::<2>::from([0.0, 0.0]),
            Point::from([1.0, 0.0]),
            Point::from([1.0, 1.0]),
            Point::from([0.0, 1.0]),
        ];
        let r = radon_point(&pts, 1e-12).unwrap();
        // The diagonals cross at the center.
        assert!(r.point.dist(&Point::from([0.5, 0.5])) < 1e-9);
        assert_eq!(r.positive.len() + r.negative.len(), 4);
    }

    #[test]
    fn radon_point_in_both_hulls() {
        let pts = [
            Point::<2>::from([0.0, 0.0]),
            Point::from([2.0, 0.1]),
            Point::from([0.9, 1.7]),
            Point::from([1.1, 0.6]),
        ];
        let r = radon_point(&pts, 1e-12).unwrap();
        let pos: Vec<Point<2>> = r.positive.iter().map(|&i| pts[i]).collect();
        let neg: Vec<Point<2>> = r.negative.iter().map(|&i| pts[i]).collect();
        assert!(
            in_simplex_hull(&r.point, &pos, 1e-7),
            "not in positive hull"
        );
        assert!(
            in_simplex_hull(&r.point, &neg, 1e-7),
            "not in negative hull"
        );
    }

    #[test]
    fn radon_point_3d() {
        let pts = [
            Point::<3>::from([0.0, 0.0, 0.0]),
            Point::from([1.0, 0.0, 0.0]),
            Point::from([0.0, 1.0, 0.0]),
            Point::from([0.0, 0.0, 1.0]),
            Point::from([0.3, 0.3, 0.3]),
        ];
        let r = radon_point(&pts, 1e-12).unwrap();
        let pos: Vec<Point<3>> = r.positive.iter().map(|&i| pts[i]).collect();
        let neg: Vec<Point<3>> = r.negative.iter().map(|&i| pts[i]).collect();
        assert!(in_simplex_hull(&r.point, &pos, 1e-7));
        assert!(in_simplex_hull(&r.point, &neg, 1e-7));
    }

    #[test]
    fn radon_point_degenerate_all_equal() {
        let pts = [Point::<2>::splat(1.0); 4];
        // All-equal points: either a valid witness (the point itself) or
        // a clean None; never a bogus point elsewhere.
        if let Some(r) = radon_point(&pts, 1e-12) {
            assert!(r.point.dist(&Point::splat(1.0)) < 1e-9);
        }
    }

    #[test]
    fn radon_point_collinear_points() {
        // Collinear configurations still have affine dependencies.
        let pts = [
            Point::<2>::from([0.0, 0.0]),
            Point::from([1.0, 1.0]),
            Point::from([2.0, 2.0]),
            Point::from([3.0, 3.0]),
        ];
        let r = radon_point(&pts, 1e-12).unwrap();
        // Radon point must lie on the line y = x.
        assert!((r.point[0] - r.point[1]).abs() < 1e-9);
    }

    #[test]
    fn in_simplex_hull_basic() {
        let tri = [
            Point::<2>::from([0.0, 0.0]),
            Point::from([1.0, 0.0]),
            Point::from([0.0, 1.0]),
        ];
        assert!(in_simplex_hull(&Point::from([0.25, 0.25]), &tri, 1e-9));
        assert!(!in_simplex_hull(&Point::from([1.0, 1.0]), &tri, 1e-9));
        assert!(in_simplex_hull(&Point::from([0.0, 0.0]), &tri, 1e-9));
    }

    #[test]
    #[should_panic(expected = "exactly D + 2")]
    fn radon_point_wrong_count_panics() {
        let pts = [Point::<2>::origin(); 3];
        let _ = radon_point(&pts, 1e-12);
    }

    /// The stack kernel must be bitwise identical to the heap-backed
    /// `DMatrix::null_vector` reference — the separator draws (and the
    /// determinism contracts downstream) depend on the exact float values.
    #[test]
    fn stack_kernel_matches_dmatrix_bitwise() {
        fn check<const D: usize>(points: &[Point<D>], tol: f64) {
            let m = DMatrix::from_fn(D + 1, D + 2, |r, c| if r < D { points[c][r] } else { 1.0 });
            let reference = m.null_vector(tol);
            let fast = radon_lambda(points, tol);
            match (reference, fast) {
                (None, None) => {}
                (Some(r), Some(f)) => {
                    for (i, &rv) in r.iter().enumerate() {
                        assert_eq!(
                            rv.to_bits(),
                            f[i].to_bits(),
                            "lambda[{i}] differs: {rv} vs {}",
                            f[i]
                        );
                    }
                }
                (r, f) => panic!("presence mismatch: reference {r:?} vs fast {f:?}"),
            }
        }

        let mut seed = 0x243f6a8885a308d3u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed % 10_000) as f64 / 500.0 - 10.0
        };
        for _ in 0..200 {
            let pts2: Vec<Point<2>> = (0..4).map(|_| Point::from([next(), next()])).collect();
            check::<2>(&pts2, 1e-12);
            let pts3: Vec<Point<3>> = (0..5)
                .map(|_| Point::from([next(), next(), next()]))
                .collect();
            check::<3>(&pts3, 1e-12);
        }
        // Degenerate shapes: duplicates, collinear, all-equal.
        check::<2>(&[Point::splat(1.0); 4], 1e-12);
        check::<2>(
            &[
                Point::from([0.0, 0.0]),
                Point::from([1.0, 1.0]),
                Point::from([2.0, 2.0]),
                Point::from([3.0, 3.0]),
            ],
            1e-12,
        );
        check::<2>(
            &[
                Point::from([1.0, 2.0]),
                Point::from([1.0, 2.0]),
                Point::from([5.0, -1.0]),
                Point::from([5.0, -1.0]),
            ],
            1e-12,
        );
    }
}
