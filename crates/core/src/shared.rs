//! Concurrent per-point neighbor lists for the parallel recursions.
//!
//! The divide-and-conquer algorithms write neighbor lists from parallel
//! recursive calls. The index sets touched by sibling calls are disjoint,
//! so there is never real contention — but Rust cannot see that statically
//! across arbitrary index partitions, so each list sits behind a
//! `std::sync::Mutex` (cheap uncontended acquire). The
//! finished store converts into a plain [`KnnResult`].

use crate::knn::{KnnResult, Neighbor};
use std::sync::Mutex;

/// Sharded neighbor lists; `Sync` handle passed to parallel recursions.
pub(crate) struct SharedLists {
    k: usize,
    lists: Vec<Mutex<Vec<Neighbor>>>,
}

impl SharedLists {
    pub(crate) fn new(n: usize, k: usize) -> Self {
        assert!(k > 0);
        SharedLists {
            k,
            lists: (0..n).map(|_| Mutex::new(Vec::new())).collect(),
        }
    }

    pub(crate) fn k(&self) -> usize {
        self.k
    }

    /// Replace the list of point `i` (base-case solve).
    pub(crate) fn set_list(&self, i: usize, mut list: Vec<Neighbor>) {
        list.truncate(self.k);
        *self.lists[i].lock().unwrap() = list;
    }

    /// Squared k-neighborhood radius of point `i`
    /// (`INFINITY` when fewer than `k` neighbors are known).
    pub(crate) fn radius_sq(&self, i: usize) -> f64 {
        let l = self.lists[i].lock().unwrap();
        if l.len() < self.k {
            f64::INFINITY
        } else {
            l[self.k - 1].dist_sq
        }
    }

    /// Offer a candidate; same semantics as [`KnnResult::merge_candidate`].
    pub(crate) fn merge_candidate(&self, i: usize, j: u32, dist_sq: f64) -> bool {
        debug_assert_ne!(i as u32, j);
        let mut list = self.lists[i].lock().unwrap();
        if list.len() == self.k {
            let tail = list[self.k - 1];
            if dist_sq > tail.dist_sq || (dist_sq == tail.dist_sq && j >= tail.idx) {
                return false;
            }
        }
        if list.iter().any(|n| n.idx == j) {
            return false;
        }
        let pos = list
            .iter()
            .position(|n| dist_sq < n.dist_sq || (dist_sq == n.dist_sq && j < n.idx))
            .unwrap_or(list.len());
        list.insert(pos, Neighbor { idx: j, dist_sq });
        list.truncate(self.k);
        true
    }

    /// Unwrap into a plain result once all parallel work is done.
    pub(crate) fn into_result(self) -> KnnResult {
        let n = self.lists.len();
        let mut out = KnnResult::new(n, self.k);
        for (i, m) in self.lists.into_iter().enumerate() {
            out.set_list(i, m.into_inner().unwrap());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_and_convert() {
        let s = SharedLists::new(3, 2);
        s.merge_candidate(0, 1, 4.0);
        s.merge_candidate(0, 2, 1.0);
        assert_eq!(s.radius_sq(0), 4.0);
        let r = s.into_result();
        assert_eq!(r.neighbors(0)[0].idx, 2);
        assert_eq!(r.neighbors(0)[1].idx, 1);
        r.check_invariants().unwrap();
    }

    #[test]
    fn radius_infinite_until_k_known() {
        let s = SharedLists::new(2, 3);
        assert_eq!(s.radius_sq(0), f64::INFINITY);
        s.merge_candidate(0, 1, 1.0);
        assert_eq!(s.radius_sq(0), f64::INFINITY);
    }

    #[test]
    fn concurrent_merges_preserve_invariants() {
        let s = SharedLists::new(1, 4);
        std::thread::scope(|scope| {
            for t in 0..8 {
                let s = &s;
                scope.spawn(move || {
                    for j in 0..100u32 {
                        let id = 1 + t * 100 + j;
                        s.merge_candidate(0, id, (id % 17) as f64);
                    }
                });
            }
        });
        let r = s.into_result();
        r.check_invariants().unwrap();
        assert_eq!(r.neighbors(0).len(), 4);
        // The four best candidates have dist 0 (ids ≡ 0 mod 17).
        assert!(r.neighbors(0).iter().all(|n| n.dist_sq == 0.0));
    }
}
