//! Offline drop-in [`ChaCha8Rng`] for the vendored `rand` subset.
//!
//! Implements the genuine ChaCha stream cipher core (Bernstein 2008) with
//! 8 rounds, keyed by a 32-byte seed. Deterministic across platforms and
//! thread counts — exactly the property the workspace's seeded algorithms
//! rely on. Not bit-compatible with the upstream `rand_chacha` stream
//! (different counter/nonce layout conventions), which the workspace does
//! not depend on.

use rand::{RngCore, SeedableRng};

/// ChaCha with 8 rounds, seeded by 32 bytes.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Cipher input block: constants, key, counter, nonce.
    state: [u32; 16],
    /// Current keystream block.
    buf: [u32; 16],
    /// Next unread word in `buf`; 16 = exhausted.
    index: usize,
}

const CHACHA_CONST: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut w = self.state;
        for _ in 0..4 {
            // 8 rounds = 4 double rounds (column + diagonal).
            quarter_round(&mut w, 0, 4, 8, 12);
            quarter_round(&mut w, 1, 5, 9, 13);
            quarter_round(&mut w, 2, 6, 10, 14);
            quarter_round(&mut w, 3, 7, 11, 15);
            quarter_round(&mut w, 0, 5, 10, 15);
            quarter_round(&mut w, 1, 6, 11, 12);
            quarter_round(&mut w, 2, 7, 8, 13);
            quarter_round(&mut w, 3, 4, 9, 14);
        }
        for (o, i) in w.iter_mut().zip(self.state.iter()) {
            *o = o.wrapping_add(*i);
        }
        self.buf = w;
        self.index = 0;
        // 64-bit block counter in words 12..14.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONST);
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        // Words 12..16: block counter and nonce, all zero initially.
        ChaCha8Rng {
            state,
            buf: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.buf[self.index];
        self.index += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let same = (0..64).filter(|_| a.next_u64() == c.next_u64()).count();
        assert!(same < 4, "seeds 42/43 produced near-identical streams");
    }

    #[test]
    fn chacha_core_matches_known_structure() {
        // The all-zero key must not produce the all-zero stream, and
        // consecutive blocks must differ (counter increments).
        let mut r = ChaCha8Rng::from_seed([0u8; 32]);
        let first: Vec<u32> = (0..16).map(|_| r.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| r.next_u32()).collect();
        assert_ne!(first, vec![0u32; 16]);
        assert_ne!(first, second);
    }

    #[test]
    fn uniformity_smoke() {
        let mut r = ChaCha8Rng::seed_from_u64(7);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.gen_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
