//! EXP-6 — the Punting Lemma (Lemma 4.1).
//!
//! Paper claims: in a probabilistic `(0, log m)`-tree of size `n`,
//! `Pr(RD(n) > 2c·log n) ≤ n·A·e^{-c·log n}` with `ρ = √e/2`,
//! `A = e^{ρ/(1-ρ)}`. We simulate `RD(n)` exactly and compare the
//! empirical tail with the analytic bound across `n` and `c`, plus the
//! `(C, log m)` corollary.

use crate::harness::Table;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sepdc_core::punting::{empirical_tail, lemma_bound, sample_rd, ConstLog, ZeroLog};

/// Run EXP-6.
pub fn run() {
    let mut table = Table::new(
        "EXP-6 — Punting Lemma tails: Pr(RD(n) > 2c·log₂ n), empirical vs bound",
        &[
            "n / c",
            "mean RD",
            "RD/log₂ n",
            "c=1.0 emp",
            "c=1.0 bound",
            "c=2.0 emp",
            "c=2.0 bound",
        ],
    );
    let mut rng = ChaCha8Rng::seed_from_u64(6);
    for e in [8usize, 10, 12, 14] {
        let n = 1usize << e;
        let trials = 4000usize >> (e.saturating_sub(8) / 2);
        let mut sum = 0.0;
        for _ in 0..trials {
            sum += sample_rd(n, &ZeroLog, &mut rng);
        }
        let mean = sum / trials as f64;
        let t1 = empirical_tail(n, 1.0, trials, &ZeroLog, &mut rng);
        let t2 = empirical_tail(n, 2.0, trials, &ZeroLog, &mut rng);
        table.row(
            format!("2^{e} ({} trials)", trials),
            vec![
                format!("{mean:.2}"),
                format!("{:.3}", mean / e as f64),
                format!("{t1:.4}"),
                format!("{:.4}", lemma_bound(n, 1.0)),
                format!("{t2:.4}"),
                format!("{:.4}", lemma_bound(n, 2.0)),
            ],
        );
    }
    table.note("empirical tails sit below the bound wherever it is nontrivial (< 1).");
    table.note("mean RD / log₂ n flat ⇒ RD(n) = O(log n): punts cost only a constant factor,");
    table.note("even though the deterministic worst case is Θ(log² n).");

    // Corollary 4.1: the (C, log m) tree adds C per level.
    let mut rng2 = ChaCha8Rng::seed_from_u64(7);
    let n = 1 << 12;
    let c_w = 3.0;
    let mut sum = 0.0;
    let trials = 1000;
    for _ in 0..trials {
        sum += sample_rd(n, &ConstLog(c_w), &mut rng2);
    }
    table.note(format!(
        "Corollary 4.1 check: (C={c_w}, log m)-tree of size 2^12 has mean RD {:.1} ≈ C·log₂ n + O(log n) = {:.1}+",
        sum / trials as f64,
        c_w * 12.0
    ));
    table.print();
}
