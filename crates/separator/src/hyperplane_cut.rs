//! Median hyperplane cuts — Bentley's partitioning primitive.
//!
//! The paper's Section 1 argues that a hyperplane chosen by "translating a
//! fixed hyperplane until the points are divided in half" can be crossed by
//! `Ω(n)` edges of the k-nearest-neighbor graph, making the combine step
//! expensive. These cuts are implemented here both as the baseline for that
//! comparison (EXP-3) and as the deterministic fallback of the separator
//! search (a median cut always splits every multiset with distinct
//! coordinates roughly in half).

use sepdc_geom::point::Point;
use sepdc_geom::shape::Separator;
use sepdc_geom::Hyperplane;

/// Median cut along a fixed axis: the hyperplane `x[axis] = median`,
/// nudged so that the two open sides are as balanced as possible.
///
/// Returns `None` when all points share the same coordinate along `axis`
/// (no flat cut along this axis can split them).
pub fn median_cut_axis<const D: usize>(points: &[Point<D>], axis: usize) -> Option<Separator<D>> {
    assert!(axis < D, "axis {axis} out of range for dimension {D}");
    if points.len() < 2 {
        return None;
    }
    let mut coords: Vec<f64> = points.iter().map(|p| p[axis]).collect();
    coords.sort_by(|a, b| a.partial_cmp(b).expect("non-finite coordinate"));
    let lo = coords[0];
    let hi = coords[coords.len() - 1];
    if hi - lo <= 0.0 {
        return None;
    }
    // Midpoint between the two middle order statistics; when they are
    // equal, walk outward to the nearest strictly different pair so the
    // plane separates at least one point from the rest.
    let n = coords.len();
    let m = n / 2;
    let mut value = (coords[m - 1] + coords[m]) / 2.0;
    if coords[m - 1] == coords[m] {
        // Find the closest "gap" to the median position.
        let mut best: Option<(usize, f64)> = None;
        for i in 0..n - 1 {
            if coords[i] < coords[i + 1] {
                let dist = (i as isize - (m as isize - 1)).unsigned_abs();
                let cut = (coords[i] + coords[i + 1]) / 2.0;
                if best.is_none_or(|(bd, _)| dist < bd) {
                    best = Some((dist, cut));
                }
            }
        }
        value = best?.1;
    }
    Some(Separator::Halfspace(Hyperplane::axis_aligned(axis, value)))
}

/// Median cut along the widest axis (largest coordinate extent).
///
/// Returns `None` only when every point is identical.
pub fn median_cut_widest<const D: usize>(points: &[Point<D>]) -> Option<Separator<D>> {
    if points.len() < 2 {
        return None;
    }
    let mut lo = points[0];
    let mut hi = points[0];
    for p in points {
        lo = lo.min(p);
        hi = hi.max(p);
    }
    let mut order: Vec<usize> = (0..D).collect();
    order.sort_by(|&a, &b| {
        (hi[b] - lo[b])
            .partial_cmp(&(hi[a] - lo[a]))
            .expect("non-finite extent")
    });
    // Try axes from widest to narrowest: a degenerate axis may still be
    // paired with a usable one.
    for axis in order {
        if let Some(sep) = median_cut_axis(points, axis) {
            return Some(sep);
        }
    }
    None
}

/// Derandomized halving cut in expected linear time.
///
/// Where [`median_cut_widest`] sorts every coordinate (`O(n log n)`), this
/// cut follows the selection-based recipe of the "Halving Balls in
/// Deterministic Linear Time" line of work: pick the widest axis, find the
/// middle order statistic with `select_nth_unstable` (expected `O(n)`), and
/// place the plane in whichever adjacent coordinate gap yields the more
/// balanced strict two-sided split. Ties at the median value are resolved
/// by comparing the two candidate cuts (tie block left vs. tie block
/// right) and keeping the one that minimizes the larger side.
///
/// The result is a pure function of the point multiset — no RNG, no
/// dependence on input order beyond the multiset of coordinates — which is
/// what lets the `DeterministicHalving` splitter backend stay byte-identical
/// across thread counts.
///
/// Returns `None` only when every point is identical.
pub fn halving_cut_widest<const D: usize>(points: &[Point<D>]) -> Option<Separator<D>> {
    if points.len() < 2 {
        return None;
    }
    let mut lo = points[0];
    let mut hi = points[0];
    for p in points {
        lo = lo.min(p);
        hi = hi.max(p);
    }
    let mut order: Vec<usize> = (0..D).collect();
    order.sort_by(|&a, &b| {
        (hi[b] - lo[b])
            .partial_cmp(&(hi[a] - lo[a]))
            .expect("non-finite extent")
    });
    let mut coords: Vec<f64> = Vec::with_capacity(points.len());
    for axis in order {
        if hi[axis] - lo[axis] <= 0.0 {
            continue; // axis constant; a wider one may still split
        }
        coords.clear();
        coords.extend(points.iter().map(|p| p[axis]));
        let m = coords.len() / 2;
        let (_, &mut v_mid, _) = coords.select_nth_unstable_by(m, f64::total_cmp);
        // One linear pass around the median value: the nearest strictly
        // smaller and strictly larger coordinates, plus side populations.
        let mut lo_max = f64::NEG_INFINITY;
        let mut hi_min = f64::INFINITY;
        let (mut n_lt, mut n_gt) = (0usize, 0usize);
        for &c in &coords {
            if c < v_mid {
                n_lt += 1;
                lo_max = lo_max.max(c);
            } else if c > v_mid {
                n_gt += 1;
                hi_min = hi_min.min(c);
            }
        }
        let n = coords.len();
        let n_eq = n - n_lt - n_gt;
        // Two candidate planes: below the tie block (ties go right) or
        // above it (ties go left). Keep the more balanced strict split.
        let below = (n_lt > 0).then(|| ((lo_max + v_mid) / 2.0, n_lt.max(n_eq + n_gt)));
        let above = (n_gt > 0).then(|| ((v_mid + hi_min) / 2.0, (n_lt + n_eq).max(n_gt)));
        let value = match (below, above) {
            (Some((vb, wb)), Some((va, wa))) => {
                if wb <= wa {
                    vb
                } else {
                    va
                }
            }
            (Some((vb, _)), None) => vb,
            (None, Some((va, _))) => va,
            (None, None) => continue,
        };
        return Some(Separator::Halfspace(Hyperplane::axis_aligned(axis, value)));
    }
    None
}

/// Median cut cycling through axes by depth — the classic k-d recursion
/// order used by Bentley's multidimensional divide and conquer.
pub fn median_cut_cycling<const D: usize>(
    points: &[Point<D>],
    depth: usize,
) -> Option<Separator<D>> {
    let first = depth % D;
    for off in 0..D {
        if let Some(sep) = median_cut_axis(points, (first + off) % D) {
            return Some(sep);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality::split_counts;
    use sepdc_geom::shape::Side;

    #[test]
    fn median_cut_balances_distinct_points() {
        let pts: Vec<Point<2>> = (0..100).map(|i| Point::from([i as f64, 0.0])).collect();
        let sep = median_cut_axis(&pts, 0).unwrap();
        let c = split_counts(&pts, &sep, 1e-9);
        assert_eq!(c.left(), 50);
        assert_eq!(c.right(), 50);
        assert_eq!(c.surface, 0, "cut between points, none on the surface");
    }

    #[test]
    fn median_cut_handles_heavy_ties() {
        // 90 copies of 0 and 10 distinct values: cut must still split.
        let mut pts = vec![Point::<2>::from([0.0, 0.0]); 90];
        for i in 1..=10 {
            pts.push(Point::from([i as f64, 0.0]));
        }
        let sep = median_cut_axis(&pts, 0).unwrap();
        let c = split_counts(&pts, &sep, 1e-9);
        assert!(c.left() > 0 && c.right() > 0, "cut failed to split: {c:?}");
    }

    #[test]
    fn median_cut_none_for_constant_axis() {
        let pts = vec![Point::<2>::from([1.0, 0.0]), Point::from([1.0, 5.0])];
        assert!(median_cut_axis(&pts, 0).is_none());
        // But axis 1 works.
        assert!(median_cut_axis(&pts, 1).is_some());
    }

    #[test]
    fn widest_cut_picks_spread_axis() {
        let pts: Vec<Point<2>> = (0..50)
            .map(|i| Point::from([i as f64 * 100.0, (i % 3) as f64]))
            .collect();
        let sep = median_cut_widest(&pts).unwrap();
        match sep {
            Separator::Halfspace(h) => {
                assert!((h.normal[0].abs() - 1.0).abs() < 1e-12, "should cut axis 0");
            }
            _ => panic!("median cut must be a halfspace"),
        }
    }

    #[test]
    fn widest_cut_none_for_identical_points() {
        let pts = vec![Point::<3>::splat(2.0); 10];
        assert!(median_cut_widest(&pts).is_none());
    }

    #[test]
    fn cycling_cut_rotates_axes() {
        let pts: Vec<Point<2>> = (0..20)
            .map(|i| Point::from([i as f64, (i * 7 % 20) as f64]))
            .collect();
        let s0 = median_cut_cycling(&pts, 0).unwrap();
        let s1 = median_cut_cycling(&pts, 1).unwrap();
        let axis_of = |s: &Separator<2>| match s {
            Separator::Halfspace(h) => {
                if h.normal[0].abs() > 0.5 {
                    0
                } else {
                    1
                }
            }
            _ => panic!(),
        };
        assert_eq!(axis_of(&s0), 0);
        assert_eq!(axis_of(&s1), 1);
    }

    #[test]
    fn halving_cut_balances_distinct_points() {
        let pts: Vec<Point<2>> = (0..100).map(|i| Point::from([i as f64, 0.0])).collect();
        let sep = halving_cut_widest(&pts).unwrap();
        let c = split_counts(&pts, &sep, 1e-9);
        assert_eq!(c.left(), 50);
        assert_eq!(c.right(), 50);
    }

    #[test]
    fn halving_cut_handles_heavy_ties() {
        // 90 copies of 0 and 10 distinct values: the tie block must land on
        // one strict side and the other side must stay non-empty.
        let mut pts = vec![Point::<2>::from([0.0, 0.0]); 90];
        for i in 1..=10 {
            pts.push(Point::from([i as f64, 0.0]));
        }
        let sep = halving_cut_widest(&pts).unwrap();
        let c = split_counts(&pts, &sep, 1e-9);
        assert!(c.left() > 0 && c.right() > 0, "cut failed to split: {c:?}");
        assert_eq!(c.left() + c.right(), pts.len());
    }

    #[test]
    fn halving_cut_none_for_identical_points() {
        let pts = vec![Point::<3>::splat(2.0); 10];
        assert!(halving_cut_widest(&pts).is_none());
    }

    #[test]
    fn halving_cut_is_order_independent() {
        // Pure function of the multiset: shuffling the input must not move
        // the plane.
        let pts: Vec<Point<2>> = (0..57)
            .map(|i| Point::from([(i * 13 % 29) as f64, (i % 5) as f64]))
            .collect();
        let mut rev = pts.clone();
        rev.reverse();
        assert_eq!(halving_cut_widest(&pts), halving_cut_widest(&rev));
    }

    #[test]
    fn no_point_sits_on_the_cut() {
        // The nudged cut must classify every input strictly.
        let pts: Vec<Point<2>> = (0..31)
            .map(|i| Point::from([(i % 7) as f64, 0.0]))
            .collect();
        let sep = median_cut_axis(&pts, 0).unwrap();
        for p in &pts {
            assert_ne!(sep.side(p), Side::Surface);
        }
    }
}
