//! Thread-count build parity for every splitter backend.
//!
//! The determinism contract says every build is a pure function of
//! (points, config, seed) — at any rayon pool size. The unit tests pin
//! this for the default `random` backend; this suite extends the pin to
//! the `halving` and `graph` backends, over both the §6 k-NN recursion
//! and the §3 query structure, using snapshot bytes as the strictest
//! possible fingerprint (byte-identical trees, not just equal answers).
//!
//! Also re-pins the seed=5028 / tol=0.5 degenerate rescue — the case
//! where the random search accepts a separator that routes every point
//! one way and the `halving` backend must re-split instead of forcing a
//! brute leaf — at every pool size.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sepdc_core::snapshot::save_query_tree;
use sepdc_core::{
    brute_force_knn, parallel_knn, KnnDcConfig, QueryTree, QueryTreeConfig, SplitterKind,
};
use sepdc_geom::ball::Ball;
use sepdc_geom::Point;
use sepdc_workloads::degenerate::{duplicate_bundles, tolerance_band_cluster};
use sepdc_workloads::Workload;

const POOLS: [usize; 3] = [1, 2, 7];

fn in_pool<T>(threads: usize, f: impl FnOnce() -> T + Send, t: std::marker::PhantomData<T>) -> T
where
    T: Send,
{
    let _ = t;
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .unwrap()
        .install(f)
}

/// A total, bit-exact fingerprint of a k-NN answer set.
fn knn_fingerprint(out: &sepdc_core::ParallelDcOutput<2>) -> Vec<(usize, Vec<(u64, u32)>)> {
    (0..out.knn.len())
        .map(|i| {
            (
                i,
                out.knn
                    .neighbors(i)
                    .iter()
                    .map(|n| (n.dist_sq.to_bits(), n.idx))
                    .collect(),
            )
        })
        .collect()
}

/// Decode a generator selector into a (possibly adversarial) point set.
fn generate(selector: u32, n: usize, seed: u64) -> Vec<Point<2>> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    match selector % 4 {
        0 => Workload::UniformCube.generate::<2>(n, seed),
        1 => duplicate_bundles::<2, _>(n, 6, &mut rng),
        2 => tolerance_band_cluster::<2, _>(n, 1e-6, &mut rng),
        _ => Workload::NoisyLine.generate::<2>(n, seed),
    }
}

/// Balls for the query-tree side: centers at the points, radius to the
/// nearest neighbor (a miniature neighborhood system, deterministic).
fn balls_of(points: &[Point<2>]) -> Vec<Ball<2>> {
    let knn = brute_force_knn(points, 1);
    points
        .iter()
        .enumerate()
        .map(|(i, p)| Ball::new(*p, knn.neighbors(i)[0].dist_sq.sqrt().max(1e-9)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// `halving` and `graph` builds are byte-identical across 1/2/7-thread
    /// pools, for the §6 recursion (bit-exact neighbor lists + stats) and
    /// the §3 query tree (bit-exact snapshot bytes).
    #[test]
    fn alternative_backends_build_identically_across_pools(
        selector in 0u32..4,
        n in 60usize..200,
        seed in 0u64..1 << 48,
    ) {
        let points = generate(selector, n, seed);
        let balls = balls_of(&points);
        for kind in [SplitterKind::Halving, SplitterKind::Graph] {
            let cfg = KnnDcConfig::new(2).with_seed(seed).with_splitter(kind);
            let tree_cfg = QueryTreeConfig { splitter: kind, ..QueryTreeConfig::default() };
            let mut knn_base = None;
            let mut snap_base: Option<Vec<u8>> = None;
            for threads in POOLS {
                let (fp, stats, snap) = in_pool(
                    threads,
                    || {
                        let out = parallel_knn::<2, 3>(&points, &cfg);
                        let tree =
                            QueryTree::try_build::<3>(&balls, tree_cfg, seed).unwrap();
                        (knn_fingerprint(&out), out.stats, save_query_tree(&tree))
                    },
                    std::marker::PhantomData,
                );
                match (&knn_base, &snap_base) {
                    (None, _) => {
                        knn_base = Some((fp, stats));
                        snap_base = Some(snap);
                    }
                    (Some((base_fp, base_stats)), Some(base_snap)) => {
                        prop_assert_eq!(
                            &fp, base_fp,
                            "{:?} knn differs at {} threads", kind, threads
                        );
                        prop_assert_eq!(
                            &stats, base_stats,
                            "{:?} stats differ at {} threads", kind, threads
                        );
                        prop_assert_eq!(
                            &snap, base_snap,
                            "{:?} snapshot differs at {} threads", kind, threads
                        );
                    }
                    _ => unreachable!("bases are set together"),
                }
            }
        }
    }
}

/// The pinned seed=5028 / tol=0.5 degenerate case: the random search
/// accepts a one-sided separator and (under the default backend) forces a
/// brute leaf. The halving backend's rescue cut must fire instead — with
/// the same counters and bit-exact answers at every pool size.
#[test]
fn halving_rescue_is_pinned_and_pool_oblivious() {
    let pts = Workload::UniformCube.generate::<2>(64, 0);
    let mut cfg = KnnDcConfig::new(1)
        .with_seed(5028)
        .with_splitter(SplitterKind::Halving);
    cfg.base_case = Some(16);
    cfg.separator.tol = 0.5;
    cfg.separator.epsilon = 0.2;
    cfg.separator.max_attempts = 1;

    let mut base = None;
    for threads in POOLS {
        let (fp, stats) = in_pool(
            threads,
            || {
                let out = parallel_knn::<2, 3>(&pts, &cfg);
                out.knn
                    .same_distances(&brute_force_knn(&pts, 1), 1e-12)
                    .unwrap();
                (knn_fingerprint(&out), out.stats)
            },
            std::marker::PhantomData,
        );
        assert!(stats.halving_rescues >= 1, "{threads} threads: {stats:?}");
        assert_eq!(stats.degenerate_splits, 0, "{threads} threads: {stats:?}");
        match &base {
            None => base = Some((fp, stats)),
            Some(b) => assert_eq!(&(fp, stats), b, "{threads} threads"),
        }
    }
}
