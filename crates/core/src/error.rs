//! Typed errors for the public k-NN entry points.
//!
//! The paper's algorithms assume well-behaved inputs: finite coordinates,
//! `k ≥ 1`, tunables inside their analyzed ranges. A production service
//! cannot — adversarial inputs (NaN-poisoned coordinates, `k = 0`,
//! nonsense configuration) must be rejected with a typed error instead of
//! panicking or, worse, looping forever on a separator that never splits.
//!
//! The contract is split in two layers:
//!
//! * the `try_*` entry points ([`crate::try_parallel_knn`],
//!   [`crate::try_simple_parallel_knn`], [`crate::try_brute_force_knn`],
//!   [`crate::try_kdtree_all_knn`], [`crate::QueryTree::try_build`])
//!   validate **once, up front**, and return a [`SepdcError`]; after
//!   validation the recursion hot path runs exactly as before, with no
//!   per-candidate checks;
//! * the original infallible signatures remain as thin wrappers that
//!   perform the same validation and panic with the error's message —
//!   convenient for tests and scripts where invalid input is a bug.
//!
//! Inside the recursion the only remaining failure mode is the explicit
//! depth guard ([`SepdcError::RecursionDepthExceeded`]), which can fire
//! only when [`crate::KnnDcConfig::max_depth`] is set; with the default
//! automatic limit the recursion degrades to a brute-force leaf instead,
//! so the default API is total.

use sepdc_geom::point::Point;

/// Why a k-NN entry point rejected its input.
#[derive(Clone, Debug, PartialEq)]
pub enum SepdcError {
    /// `k` is outside the supported range (currently only `k = 0` is
    /// invalid; `k ≥ n` is legal and yields short lists with unbounded
    /// radii).
    InvalidK {
        /// The rejected `k`.
        k: usize,
    },
    /// A coordinate of `points[idx]` is NaN or infinite. Degenerate
    /// separator predicates on non-finite coordinates are exactly how the
    /// divide-and-conquer recursion used to loop forever in release
    /// builds, so these are rejected before any geometry runs.
    NonFinitePoint {
        /// Index of the offending point in the input slice.
        idx: usize,
    },
    /// A ball handed to the query structure has a non-finite center or a
    /// non-finite / negative radius.
    NonFiniteBall {
        /// Index of the offending ball in the input slice.
        idx: usize,
    },
    /// The operation requires a non-empty input (e.g. the CLI `knn`
    /// command was given an empty point file).
    EmptyInput,
    /// A configuration tunable is outside its analyzed range — negative or
    /// NaN `mu_epsilon` / `eta` / `punt_slack` / `marching_slack` silently
    /// turn the punt threshold and marching limit into nonsense, so they
    /// are rejected at the boundary.
    InvalidConfig {
        /// Which tunable was rejected.
        param: &'static str,
        /// The rejected value (cast to `f64` for integer tunables).
        value: f64,
    },
    /// The recursion exceeded the explicit [`crate::KnnDcConfig::max_depth`]
    /// bound. Only reachable when `max_depth` is set; the default automatic
    /// guard forces a brute-force leaf instead of erroring.
    RecursionDepthExceeded {
        /// The configured depth limit that was exceeded.
        limit: usize,
    },
    /// A persistent index snapshot failed to decode. Snapshot bytes are
    /// adversarial input (a file on disk, a daemon swap request), so every
    /// structural defect maps to a typed
    /// [`SnapshotError`](crate::snapshot::SnapshotError) — loading never
    /// panics.
    Snapshot(crate::snapshot::SnapshotError),
}

impl From<crate::snapshot::SnapshotError> for SepdcError {
    fn from(e: crate::snapshot::SnapshotError) -> Self {
        SepdcError::Snapshot(e)
    }
}

impl std::fmt::Display for SepdcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SepdcError::InvalidK { k } => {
                write!(f, "invalid k = {k}: k must be at least 1")
            }
            SepdcError::NonFinitePoint { idx } => {
                write!(
                    f,
                    "point {idx} has a non-finite (NaN or infinite) coordinate"
                )
            }
            SepdcError::NonFiniteBall { idx } => {
                write!(
                    f,
                    "ball {idx} has a non-finite center or non-finite/negative radius"
                )
            }
            SepdcError::EmptyInput => write!(f, "input is empty"),
            SepdcError::InvalidConfig { param, value } => {
                write!(
                    f,
                    "invalid config: {param} = {value} is outside its valid range"
                )
            }
            SepdcError::RecursionDepthExceeded { limit } => {
                write!(f, "recursion exceeded the configured max_depth = {limit}")
            }
            SepdcError::Snapshot(e) => write!(f, "snapshot: {e}"),
        }
    }
}

impl std::error::Error for SepdcError {}

/// Reject non-finite coordinates with the index of the first offender.
///
/// One linear scan, run once per entry point *before* the recursion — the
/// hot path stays validation-free.
pub(crate) fn validate_points<const D: usize>(points: &[Point<D>]) -> Result<(), SepdcError> {
    match points.iter().position(|p| !p.is_finite()) {
        Some(idx) => Err(SepdcError::NonFinitePoint { idx }),
        None => Ok(()),
    }
}

/// Validate `k` at the API boundary (replaces the hard `assert!(k > 0)`
/// that used to live deep in the shared-list store).
pub(crate) fn validate_k(k: usize) -> Result<(), SepdcError> {
    if k == 0 {
        return Err(SepdcError::InvalidK { k });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let cases: Vec<(SepdcError, &str)> = vec![
            (SepdcError::InvalidK { k: 0 }, "k = 0"),
            (SepdcError::NonFinitePoint { idx: 7 }, "point 7"),
            (SepdcError::NonFiniteBall { idx: 3 }, "ball 3"),
            (SepdcError::EmptyInput, "empty"),
            (
                SepdcError::InvalidConfig {
                    param: "eta",
                    value: f64::NAN,
                },
                "eta",
            ),
            (
                SepdcError::RecursionDepthExceeded { limit: 12 },
                "max_depth = 12",
            ),
        ];
        for (e, needle) in cases {
            let msg = e.to_string();
            assert!(msg.contains(needle), "{msg:?} missing {needle:?}");
        }
    }

    #[test]
    fn validate_points_reports_first_offender() {
        let pts = vec![
            Point::<2>::from([0.0, 1.0]),
            Point::from([f64::NAN, 0.0]),
            Point::from([f64::INFINITY, 0.0]),
        ];
        assert_eq!(
            validate_points(&pts),
            Err(SepdcError::NonFinitePoint { idx: 1 })
        );
        assert_eq!(validate_points(&pts[..1]), Ok(()));
        assert_eq!(validate_points::<2>(&[]), Ok(()));
    }

    #[test]
    fn validate_k_boundary() {
        assert_eq!(validate_k(0), Err(SepdcError::InvalidK { k: 0 }));
        assert!(validate_k(1).is_ok());
        assert!(validate_k(usize::MAX).is_ok());
    }

    #[test]
    fn error_is_std_error() {
        let e: Box<dyn std::error::Error> = Box::new(SepdcError::EmptyInput);
        assert!(!e.to_string().is_empty());
    }
}
