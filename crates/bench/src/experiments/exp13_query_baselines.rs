//! EXP-13 — the neighborhood query problem: separator structure vs
//! conventional baselines (the §3 comparison).
//!
//! Paper says (§3.1): prior art (multidimensional divide and conquer)
//! needs `Q = O(k + log^d n)` and superlinear space, while the separator
//! structure achieves `Q = O(k + log n)` and `S = O(n)`. We compare the
//! separator structure against a radius-bounded kd-tree (ball tree) and
//! the trivial linear scan, on benign and heavy-tailed ball systems.

use crate::harness::{timed, Table};
use sepdc_core::balltree::BallTree;
use sepdc_core::{kdtree_all_knn, NeighborhoodSystem, QueryTree, QueryTreeConfig};
use sepdc_geom::Ball;
use sepdc_workloads::Workload;

fn heavy_tail_system(n: usize, seed: u64) -> Vec<Ball<2>> {
    // k-NN balls plus a sprinkle of oversized "hub" balls: the regime
    // where a center-based kd-tree's max-radius pruning starts to decay
    // but the separator structure's duplication stays bounded.
    let pts = Workload::UniformCube.generate::<2>(n, seed);
    let knn = kdtree_all_knn(&pts, 1);
    let mut balls = NeighborhoodSystem::from_knn(&pts, &knn).balls().to_vec();
    for (i, b) in balls.iter_mut().enumerate() {
        if i % 97 == 0 {
            b.radius *= 12.0;
        }
    }
    balls
}

/// Run EXP-13.
pub fn run() {
    let mut table = Table::new(
        "EXP-13 — neighborhood query structures (d=2): §3 tree vs ball tree vs linear scan",
        &[
            "system / n",
            "§3 build",
            "ball build",
            "§3 q-cost",
            "ball q-cost",
            "scan q-cost",
            "§3 space/n",
        ],
    );
    for (label, heavy) in [("k=2 kNN balls", false), ("heavy-tailed", true)] {
        for &n in &[1usize << 12, 1 << 14, 1 << 16] {
            let balls: Vec<Ball<2>> = if heavy {
                heavy_tail_system(n, 3)
            } else {
                let pts = Workload::Clusters.generate::<2>(n, 3);
                let knn = kdtree_all_knn(&pts, 2);
                NeighborhoodSystem::from_knn(&pts, &knn).balls().to_vec()
            };

            let (qtree, t_build) =
                timed(|| QueryTree::build::<3>(&balls, QueryTreeConfig::default(), 5));
            let (btree, t_ball) = timed(|| BallTree::build(&balls));

            let probes = Workload::UniformCube.generate::<2>(1500, 31);
            let mut q_cost = 0usize;
            let mut b_cost = 0usize;
            for p in &probes {
                q_cost += qtree.query_cost(p);
                let (hits_b, c) = btree.covering_with_cost(p);
                b_cost += c;
                // Answers must agree.
                let mut hits_q = qtree.covering(p);
                hits_q.sort_unstable();
                let mut hits_b = hits_b;
                hits_b.sort_unstable();
                assert_eq!(hits_q, hits_b, "structures disagree at {p:?}");
            }
            table.row(
                format!("{label} n={n}"),
                vec![
                    format!("{:.0}ms", t_build * 1e3),
                    format!("{:.0}ms", t_ball * 1e3),
                    format!("{:.0}", q_cost as f64 / probes.len() as f64),
                    format!("{:.0}", b_cost as f64 / probes.len() as f64),
                    format!("{n}"),
                    format!("{:.2}", qtree.stats().stored_balls as f64 / n as f64),
                ],
            );
        }
    }
    table.note("q-cost = nodes visited + balls scanned per query (answers cross-checked).");
    table.note("the §3 structure's query cost is flat-ish (O(log n + m₀)) and its space O(n);");
    table.note("the ball tree is a strong conventional baseline on benign systems but its");
    table.note("pruning decays under heavy-tailed radii, where the separator structure's");
    table.note("duplicate-into-both-subtrees strategy keeps queries one-leaf cheap.");
    table.print();
}
