//! Experiment driver: regenerates every table/figure of EXPERIMENTS.md.
//!
//! ```sh
//! cargo run --release -p sepdc-bench --bin exp -- all
//! cargo run --release -p sepdc-bench --bin exp -- exp3 exp5
//! ```

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: exp <exp1..exp10 | all>...");
        eprintln!("  exp1  separator quality (Theorem 2.1)");
        eprintln!("  exp2  query structure costs (Lemma 3.1 / Theorem 3.1)");
        eprintln!("  exp3  hyperplane vs sphere crossing numbers (§1 motivation)");
        eprintln!("  exp4  all-k-NN algorithm comparison (work claim)");
        eprintln!("  exp5  depth scaling O(log n) vs O(log² n) (Thm 6.1 / Lemma 5.1)");
        eprintln!("  exp6  punting lemma tails (Lemma 4.1)");
        eprintln!("  exp7  intersection tails for reused separators (Lemma 6.4)");
        eprintln!("  exp8  strong scaling across threads");
        eprintln!("  exp9  density lemma ply bounds (Lemma 2.1)");
        eprintln!("  exp10 success rates, marching load, punt frequency");
        std::process::exit(2);
    }
    for id in &args {
        let t0 = std::time::Instant::now();
        if !sepdc_bench::experiments::run(id) {
            eprintln!("unknown experiment id: {id}");
            std::process::exit(2);
        }
        eprintln!("[{id} finished in {:.1?}]", t0.elapsed());
    }
}
