//! Neighborhood systems (Section 2 of the paper).
//!
//! A *`d`-dimensional neighborhood system* is a finite collection of balls.
//! It is a *`k`-neighborhood system* when each ball's interior contains at
//! most `k` centers, and *`k`-ply* when no point of space is covered by
//! more than `k` balls. The Density Lemma (2.1) connects the two:
//! a `k`-neighborhood system is `τ_d · k`-ply.

use crate::knn::KnnResult;
use rayon::prelude::*;
use sepdc_geom::ball::Ball;
use sepdc_geom::point::Point;
use sepdc_geom::shape::Separator;

/// A neighborhood system: balls with known centers.
#[derive(Clone, Debug)]
pub struct NeighborhoodSystem<const D: usize> {
    balls: Vec<Ball<D>>,
}

impl<const D: usize> NeighborhoodSystem<D> {
    /// Build from explicit balls.
    pub fn from_balls(balls: Vec<Ball<D>>) -> Self {
        NeighborhoodSystem { balls }
    }

    /// The *k-neighborhood system* of a point set (Section 5.1): ball `i`
    /// is centered at `points[i]` with radius equal to the distance to its
    /// k-th nearest neighbor, taken from a finished [`KnnResult`].
    ///
    /// # Panics
    /// Panics when some point has fewer than `k` known neighbors (its ball
    /// would be unbounded) — callers must have `n > k`.
    pub fn from_knn(points: &[Point<D>], knn: &KnnResult) -> Self {
        assert_eq!(points.len(), knn.len());
        let balls = points
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let r_sq = knn.radius_sq(i);
                assert!(
                    r_sq.is_finite(),
                    "point {i} has fewer than k neighbors; need n > k"
                );
                Ball::new(*p, r_sq.sqrt())
            })
            .collect();
        NeighborhoodSystem { balls }
    }

    /// The balls.
    pub fn balls(&self) -> &[Ball<D>] {
        &self.balls
    }

    /// Number of balls.
    pub fn len(&self) -> usize {
        self.balls.len()
    }

    /// `true` when the system has no balls.
    pub fn is_empty(&self) -> bool {
        self.balls.is_empty()
    }

    /// Ball centers.
    pub fn centers(&self) -> Vec<Point<D>> {
        self.balls.iter().map(|b| b.center).collect()
    }

    /// Ply at a probe point: the number of balls whose *closed* body
    /// contains it.
    pub fn ply_at(&self, p: &Point<D>) -> usize {
        self.balls.iter().filter(|b| b.contains(p)).count()
    }

    /// Maximum ply over the ball centers (a lower bound on the system ply;
    /// by a standard argument the maximum over all of space is attained
    /// arbitrarily close to ball boundaries/centers, and centers are the
    /// conventional probe set for the Density Lemma experiment).
    pub fn max_ply_at_centers(&self) -> usize {
        if self.balls.len() < 1 << 12 {
            self.balls
                .iter()
                .map(|b| self.ply_at(&b.center))
                .max()
                .unwrap_or(0)
        } else {
            self.balls
                .par_iter()
                .map(|b| self.ply_at(&b.center))
                .max()
                .unwrap_or(0)
        }
    }

    /// Verify the k-neighborhood property: every ball's *open interior*
    /// contains at most `k - 1` other centers (equivalently at most `k`
    /// centers counting its own). Returns the first violating ball index.
    ///
    /// A relative tolerance absorbs the `sqrt`/square roundtrip on radii
    /// built from squared distances: a center at distance exactly `r` must
    /// not be counted as strictly inside.
    pub fn check_k_neighborhood(&self, k: usize) -> Result<(), usize> {
        for (i, b) in self.balls.iter().enumerate() {
            let r_sq = b.radius * b.radius;
            let cut = r_sq * (1.0 - 1e-12) - 1e-300;
            let inside = self
                .balls
                .iter()
                .enumerate()
                .filter(|(j, other)| *j != i && b.center.dist_sq(&other.center) < cut)
                .count();
            if inside > k.saturating_sub(1) {
                return Err(i);
            }
        }
        Ok(())
    }

    /// Intersection number `ι_B(S)` against a separator.
    pub fn intersection_number(&self, sep: &Separator<D>) -> usize {
        sepdc_separator::intersection_number(&self.balls, sep)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force_knn;
    use sepdc_geom::sphere::Sphere;

    fn line_system(n: usize, k: usize) -> (Vec<Point<2>>, NeighborhoodSystem<2>) {
        let pts: Vec<Point<2>> = (0..n).map(|i| Point::from([i as f64, 0.0])).collect();
        let knn = brute_force_knn(&pts, k);
        let sys = NeighborhoodSystem::from_knn(&pts, &knn);
        (pts, sys)
    }

    #[test]
    fn from_knn_radii_match_kth_distance() {
        let (_, sys) = line_system(10, 1);
        // Interior points: nearest neighbor at distance 1.
        for b in &sys.balls()[1..9] {
            assert!((b.radius - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn k_neighborhood_property_holds_for_knn_system() {
        let (_, sys) = line_system(20, 3);
        sys.check_k_neighborhood(3).unwrap();
    }

    #[test]
    fn ply_on_line_is_bounded() {
        let (_, sys) = line_system(50, 1);
        // 1-neighborhood system on a line: τ_1 · 1 = 2... but our points
        // are in R², τ_2 = 6. The actual ply here is small.
        let ply = sys.max_ply_at_centers();
        assert!(ply >= 2, "adjacent balls must overlap at centers? {ply}");
        assert!(ply <= 6, "ply {ply} exceeds τ_2");
    }

    #[test]
    fn density_lemma_on_random_points() {
        let pts = sepdc_workloads::Workload::UniformCube.generate::<2>(400, 5);
        for k in [1, 2, 4] {
            let knn = brute_force_knn(&pts, k);
            let sys = NeighborhoodSystem::from_knn(&pts, &knn);
            sys.check_k_neighborhood(k).unwrap();
            let ply = sys.max_ply_at_centers();
            let bound = sepdc_geom::kissing_number(2) * k + k; // τ_d k (+slack for closed containment at centers)
            assert!(ply <= bound, "k={k}: ply {ply} > τ₂·k bound {bound}");
        }
    }

    #[test]
    fn ply_at_counts_closed_containment() {
        let sys = NeighborhoodSystem::from_balls(vec![
            Ball::new(Point::<2>::origin(), 1.0),
            Ball::new(Point::from([2.0, 0.0]), 1.0),
        ]);
        // x=1 is on both boundaries.
        assert_eq!(sys.ply_at(&Point::from([1.0, 0.0])), 2);
        assert_eq!(sys.ply_at(&Point::from([0.0, 0.0])), 1);
        assert_eq!(sys.ply_at(&Point::from([5.0, 0.0])), 0);
    }

    #[test]
    fn check_k_neighborhood_detects_violation() {
        // One huge ball swallowing many centers is not a 1-neighborhood
        // system.
        let mut balls = vec![Ball::new(Point::<2>::origin(), 100.0)];
        for i in 1..5 {
            balls.push(Ball::new(Point::from([i as f64, 0.0]), 0.1));
        }
        let sys = NeighborhoodSystem::from_balls(balls);
        assert_eq!(sys.check_k_neighborhood(1), Err(0));
    }

    #[test]
    fn intersection_number_delegates() {
        let (_, sys) = line_system(20, 1);
        let sep: Separator<2> = Sphere::new(Point::from([10.0, 0.0]), 2.5).into();
        // Balls at x = 7.5..12.5 (radius 1) crossing the sphere |x-10|=2.5:
        // centers 7,8 and 12,13 cross; 9,10,11 inside untouched... check
        // against a direct count.
        let direct = sys.balls().iter().filter(|b| b.crosses(&sep)).count();
        assert_eq!(sys.intersection_number(&sep), direct);
        assert!(direct > 0);
    }

    #[test]
    #[should_panic(expected = "fewer than k neighbors")]
    fn from_knn_rejects_unbounded_balls() {
        let pts = vec![Point::<2>::origin(), Point::from([1.0, 0.0])];
        let knn = brute_force_knn(&pts, 5);
        let _ = NeighborhoodSystem::from_knn(&pts, &knn);
    }
}
