//! Parallel chunked views of slices (`par_chunks`, `par_chunks_mut`).

use crate::iter::ParallelIterator;
use std::marker::PhantomData;

/// `par_chunks` on shared slices.
pub trait ParallelSlice<T: Sync> {
    /// Non-overlapping chunks of `size` elements (last may be shorter).
    fn par_chunks(&self, size: usize) -> Chunks<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, size: usize) -> Chunks<'_, T> {
        assert!(size > 0, "chunk size must be positive");
        Chunks { slice: self, size }
    }
}

/// `par_chunks_mut` on mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Non-overlapping mutable chunks of `size` elements.
    fn par_chunks_mut(&mut self, size: usize) -> ChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> ChunksMut<'_, T> {
        assert!(size > 0, "chunk size must be positive");
        ChunksMut {
            ptr: self.as_mut_ptr(),
            len: self.len(),
            size,
            _marker: PhantomData,
        }
    }
}

/// Shared chunks source.
pub struct Chunks<'a, T> {
    slice: &'a [T],
    size: usize,
}

impl<'a, T: Sync> ParallelIterator for Chunks<'a, T> {
    type Item = &'a [T];
    fn pi_len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }
    fn pi_get(&self, index: usize) -> Option<&'a [T]> {
        let start = index * self.size;
        let end = (start + self.size).min(self.slice.len());
        Some(&self.slice[start..end])
    }
}

/// Mutable chunks source.
///
/// Stores a raw pointer so that disjoint `&mut` chunk borrows can be
/// produced from a shared `&self` across worker threads. Soundness rests
/// on the [`ParallelIterator::pi_get`] contract: drivers fetch each index
/// at most once, and chunks at distinct indices never overlap.
pub struct ChunksMut<'a, T> {
    ptr: *mut T,
    len: usize,
    size: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: the raw pointer is only a capability to reach disjoint chunks;
// `T: Send` makes handing those chunks to other threads sound.
unsafe impl<T: Send> Send for ChunksMut<'_, T> {}
unsafe impl<T: Send> Sync for ChunksMut<'_, T> {}

impl<'a, T: Send> ParallelIterator for ChunksMut<'a, T> {
    type Item = &'a mut [T];
    fn pi_len(&self) -> usize {
        self.len.div_ceil(self.size)
    }
    fn pi_get(&self, index: usize) -> Option<&'a mut [T]> {
        let start = index * self.size;
        let end = (start + self.size).min(self.len);
        debug_assert!(start < end);
        // SAFETY: distinct indices yield disjoint ranges of the original
        // slice, and the driver fetches each index at most once, so no two
        // live `&mut` borrows alias. Lifetime 'a is the original borrow.
        Some(unsafe { std::slice::from_raw_parts_mut(self.ptr.add(start), end - start) })
    }
}
