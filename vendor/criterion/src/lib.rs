//! Offline drop-in subset of the `criterion` API.
//!
//! Provides the structural API the workspace's benches use —
//! [`criterion_group!`]/[`criterion_main!`], [`Criterion::benchmark_group`],
//! `bench_function`/`bench_with_input`, [`BenchmarkId`], [`Throughput`] —
//! with a simple measurement loop (fixed warm-up, median-of-samples
//! report) instead of criterion's statistical machinery. Good enough to
//! keep the benches compiling, runnable, and comparable run-to-run.

use std::time::{Duration, Instant};

/// Re-export for benches importing `criterion::black_box`.
pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("\nbench group: {name}");
        BenchmarkGroup {
            sample_size: 10,
            throughput: None,
        }
    }
}

/// Units processed per iteration, for rate reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark inside a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Function name plus parameter value.
    pub fn new(function: &str, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    /// Parameter value only.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

/// A group of benchmarks sharing sample settings.
pub struct BenchmarkGroup {
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Set the per-iteration throughput used in reports.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run a benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        b.report(&id.label, self.throughput);
        self
    }

    /// Run a benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        b.report(&id.label, self.throughput);
        self
    }

    /// End the group.
    pub fn finish(&mut self) {}
}

/// Timing loop handle passed to bench closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine` over the configured number of samples (after one
    /// warm-up call whose result is discarded).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        self.samples = (0..self.sample_size)
            .map(|_| {
                let t0 = Instant::now();
                black_box(routine());
                t0.elapsed()
            })
            .collect();
    }

    fn report(&self, label: &str, throughput: Option<Throughput>) {
        if self.samples.is_empty() {
            println!("  {label:<28} (no samples)");
            return;
        }
        let mut s = self.samples.clone();
        s.sort_unstable();
        let median = s[s.len() / 2];
        let best = s[0];
        let rate = match throughput {
            Some(Throughput::Elements(n)) => {
                format!("  {:>12.1} elem/s", n as f64 / median.as_secs_f64())
            }
            Some(Throughput::Bytes(n)) => {
                format!("  {:>12.1} B/s", n as f64 / median.as_secs_f64())
            }
            None => String::new(),
        };
        println!("  {label:<28} median {median:>12.3?}   best {best:>12.3?}{rate}",);
    }
}

/// Declare a benchmark group function list (mirrors criterion's macro).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declare the bench `main` (mirrors criterion's macro).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.throughput(Throughput::Elements(100));
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sum_n", 50), &50u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    crate::criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs_and_reports() {
        benches();
    }
}
