//! Property-based tests for the parallel vector model primitives.

use proptest::prelude::*;
use sepdc::scan::primitives::{
    apply_permutation, distribute, gather, pack, par_pack, par_split, split,
};
use sepdc::scan::scan::{AddF64, AddUsize, MaxF64};
use sepdc::scan::segmented::{seg_exclusive_scan, seg_inclusive_scan, segment_totals};
use sepdc::scan::{exclusive_scan, inclusive_scan, par_exclusive_scan, par_inclusive_scan};

proptest! {
    #[test]
    fn inclusive_scan_matches_running_fold(xs in proptest::collection::vec(0usize..1000, 0..300)) {
        let scan = inclusive_scan(AddUsize, &xs);
        let mut acc = 0;
        for (i, &x) in xs.iter().enumerate() {
            acc += x;
            prop_assert_eq!(scan[i], acc);
        }
    }

    #[test]
    fn exclusive_plus_element_equals_inclusive(xs in proptest::collection::vec(0usize..1000, 0..300)) {
        let inc = inclusive_scan(AddUsize, &xs);
        let (exc, total) = exclusive_scan(AddUsize, &xs);
        for i in 0..xs.len() {
            prop_assert_eq!(exc[i] + xs[i], inc[i]);
        }
        prop_assert_eq!(total, xs.iter().sum::<usize>());
    }

    #[test]
    fn par_scans_match_serial(xs in proptest::collection::vec(0usize..100, 0..50_000)) {
        prop_assert_eq!(par_inclusive_scan(AddUsize, &xs), inclusive_scan(AddUsize, &xs));
        let (ps, pt) = par_exclusive_scan(AddUsize, &xs);
        let (ss, st) = exclusive_scan(AddUsize, &xs);
        prop_assert_eq!(ps, ss);
        prop_assert_eq!(pt, st);
    }

    #[test]
    fn max_scan_is_monotone_and_dominates(xs in proptest::collection::vec(-100.0f64..100.0, 1..200)) {
        let scan = inclusive_scan(MaxF64, &xs);
        for i in 0..xs.len() {
            prop_assert!(scan[i] >= xs[i]);
            if i > 0 {
                prop_assert!(scan[i] >= scan[i - 1]);
            }
        }
    }

    #[test]
    fn pack_equals_filter(
        xs in proptest::collection::vec(0u64..1000, 0..300),
        seed in 0u64..1000,
    ) {
        let flags: Vec<bool> = (0..xs.len()).map(|i| (i as u64 * 7 + seed).is_multiple_of(3)).collect();
        let packed = pack(&xs, &flags);
        let expected: Vec<u64> = xs.iter().zip(&flags).filter(|(_, &f)| f).map(|(&x, _)| x).collect();
        prop_assert_eq!(&packed, &expected);
        prop_assert_eq!(par_pack(&xs, &flags), expected);
    }

    #[test]
    fn split_is_stable_partition(flags in proptest::collection::vec(any::<bool>(), 0..400)) {
        let s = split(&flags);
        prop_assert_eq!(s.yes.len() + s.no.len(), flags.len());
        // Stability: indices strictly increasing on both sides.
        for w in s.yes.windows(2) { prop_assert!(w[0] < w[1]); }
        for w in s.no.windows(2) { prop_assert!(w[0] < w[1]); }
        // Correct routing.
        for &i in &s.yes { prop_assert!(flags[i]); }
        for &i in &s.no { prop_assert!(!flags[i]); }
        prop_assert_eq!(par_split(&flags), s);
    }

    #[test]
    fn permutation_roundtrip(n in 0usize..200, seed in 0u64..1000) {
        // Deterministic pseudo-random permutation.
        let mut perm: Vec<usize> = (0..n).collect();
        let mut state = seed.wrapping_add(1);
        for i in (1..n).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            perm.swap(i, j);
        }
        let xs: Vec<u64> = (0..n as u64).collect();
        let permuted = apply_permutation(&xs, &perm);
        let mut inv = vec![0usize; n];
        for (i, &p) in perm.iter().enumerate() { inv[p] = i; }
        prop_assert_eq!(apply_permutation(&permuted, &inv), xs);
    }

    #[test]
    fn gather_distribute_consistency(
        xs in proptest::collection::vec(0u32..100, 1..50),
        counts in proptest::collection::vec(0usize..5, 1..50),
    ) {
        let counts = &counts[..counts.len().min(xs.len())];
        let xs = &xs[..counts.len()];
        let expanded = distribute(xs, counts);
        prop_assert_eq!(expanded.len(), counts.iter().sum::<usize>());
        // distribute == gather with repeated indices.
        let mut idx = Vec::new();
        for (i, &c) in counts.iter().enumerate() {
            idx.extend(std::iter::repeat_n(i, c));
        }
        prop_assert_eq!(expanded, gather(xs, &idx));
    }

    #[test]
    fn segmented_scan_equals_per_segment_scan(
        values in proptest::collection::vec(0usize..100, 1..200),
        flag_seed in 0u64..100,
    ) {
        let flags: Vec<bool> = (0..values.len())
            .map(|i| i == 0 || (i as u64 * 13 + flag_seed).is_multiple_of(5))
            .collect();
        let seg = seg_inclusive_scan(AddUsize, &values, &flags);
        // Reference: split into segments, scan each.
        let mut expected = Vec::new();
        let mut acc = 0;
        for (i, &v) in values.iter().enumerate() {
            if flags[i] { acc = 0; }
            acc += v;
            expected.push(acc);
        }
        prop_assert_eq!(seg, expected);

        // Exclusive variant: seg_exc[i] + v[i] == seg_inc[i].
        let exc = seg_exclusive_scan(AddUsize, &values, &flags);
        let inc = seg_inclusive_scan(AddUsize, &values, &flags);
        for i in 0..values.len() {
            prop_assert_eq!(exc[i] + values[i], inc[i]);
        }

        // Totals equal the last inclusive value of each segment.
        let totals = segment_totals(AddUsize, &values, &flags);
        let mut expected_totals = Vec::new();
        for i in 0..values.len() {
            let is_last = i + 1 == values.len() || flags[i + 1];
            if is_last { expected_totals.push(inc[i]); }
        }
        prop_assert_eq!(totals, expected_totals);
    }

    #[test]
    fn float_scan_reassociation_is_bounded(xs in proptest::collection::vec(-1.0f64..1.0, 0..50_000)) {
        let par = par_inclusive_scan(AddF64, &xs);
        let ser = inclusive_scan(AddF64, &xs);
        for (a, b) in par.iter().zip(&ser) {
            prop_assert!((a - b).abs() < 1e-7);
        }
    }
}
