//! Sphere separators applied to the k-NN graph.
//!
//! The abstract's punchline: *"given n points in d dimensions we construct
//! the k-nearest neighbor graph, a 'nicely' embedded graph in d
//! dimensions"* — i.e. the constructed graph has small geometric
//! separators by the MTTV theory (§1: "there is a o(n) size subset of
//! vertices W such that every edge crossing S has one end point in W").
//! This module computes such vertex separators from a sphere separator,
//! closing the loop from point set → k-NN graph → graph partition.

use crate::graph::KnnGraph;
use rand::Rng;
use sepdc_geom::point::Point;
use sepdc_geom::shape::Separator;
use sepdc_geom::Sphere;
use sepdc_separator::quality::is_good_point_split;
use sepdc_separator::{find_good_separator, split_counts, SeparatorConfig, SplitCounts};

/// A vertex separator of a k-NN graph derived from a geometric separator.
#[derive(Clone, Debug)]
pub struct GraphSeparator {
    /// The geometric separator that induced the partition (`D` erased into
    /// the side assignment below; kept for diagnostics via `Debug`).
    pub cut_edges: usize,
    /// Vertices removed: one endpoint of every cut edge.
    pub separator: Vec<u32>,
    /// Interior-side vertices not in the separator.
    pub side_a: Vec<u32>,
    /// Exterior-side vertices not in the separator.
    pub side_b: Vec<u32>,
}

impl GraphSeparator {
    /// Balance of the split: `max(|A|, |B|) / (|A| + |B|)`.
    pub fn balance(&self) -> f64 {
        let a = self.side_a.len();
        let b = self.side_b.len();
        if a + b == 0 {
            return 1.0;
        }
        a.max(b) as f64 / (a + b) as f64
    }

    /// Verify the separator property against the graph: after removing
    /// `separator`, no edge connects `side_a` to `side_b`.
    pub fn verify(&self, graph: &KnnGraph) -> Result<(), (u32, u32)> {
        let n = graph.num_vertices();
        let mut side = vec![0u8; n]; // 0 = separator, 1 = A, 2 = B
        for &v in &self.side_a {
            side[v as usize] = 1;
        }
        for &v in &self.side_b {
            side[v as usize] = 2;
        }
        for &v in &self.separator {
            side[v as usize] = 0;
        }
        for &(a, b) in graph.edges() {
            if side[a as usize] != 0
                && side[b as usize] != 0
                && side[a as usize] != side[b as usize]
            {
                return Err((a, b));
            }
        }
        Ok(())
    }
}

/// Derive a vertex separator of `graph` from an explicit geometric
/// separator: vertices are split by side; every cut edge contributes its
/// interior-side endpoint to `W`.
pub fn vertex_separator_from<const D: usize>(
    points: &[Point<D>],
    graph: &KnnGraph,
    sep: &Separator<D>,
) -> GraphSeparator {
    let n = graph.num_vertices();
    assert_eq!(points.len(), n);
    let interior: Vec<bool> = points
        .iter()
        .map(|p| sep.side(p).routes_interior())
        .collect();
    let mut in_w = vec![false; n];
    let mut cut_edges = 0;
    for &(a, b) in graph.edges() {
        if interior[a as usize] != interior[b as usize] {
            cut_edges += 1;
            // Take the interior endpoint into W.
            let w = if interior[a as usize] { a } else { b };
            in_w[w as usize] = true;
        }
    }
    let mut separator = Vec::new();
    let mut side_a = Vec::new();
    let mut side_b = Vec::new();
    for v in 0..n as u32 {
        if in_w[v as usize] {
            separator.push(v);
        } else if interior[v as usize] {
            side_a.push(v);
        } else {
            side_b.push(v);
        }
    }
    GraphSeparator {
        cut_edges,
        separator,
        side_a,
        side_b,
    }
}

/// Find a sphere-based vertex separator of the k-NN graph: draw good
/// geometric separators with the §2 machinery and keep the one with the
/// smallest `W` among `tries` draws. Returns `None` when the point set
/// cannot be split.
pub fn sphere_graph_separator<const D: usize, const E: usize, R: Rng>(
    points: &[Point<D>],
    graph: &KnnGraph,
    cfg: &SeparatorConfig,
    tries: usize,
    rng: &mut R,
) -> Option<GraphSeparator> {
    let mut best: Option<GraphSeparator> = None;
    for _ in 0..tries.max(1) {
        let found = find_good_separator::<D, E, _>(points, cfg, rng)?;
        let gs = vertex_separator_from(points, graph, &found.separator);
        if best
            .as_ref()
            .is_none_or(|b| gs.separator.len() < b.separator.len())
        {
            best = Some(gs);
        }
    }
    best
}

/// Recursive sphere-separator bisection of a k-NN graph into `parts`
/// blocks (`parts` rounded up to a power of two internally; small residual
/// blocks are possible on degenerate inputs). Returns the block id of each
/// vertex and the number of edges whose endpoints ended in different
/// blocks — the classical geometric-partitioning application of the
/// separator machinery.
pub fn recursive_bisection<const D: usize, const E: usize, R: Rng>(
    points: &[Point<D>],
    graph: &KnnGraph,
    parts: usize,
    cfg: &SeparatorConfig,
    rng: &mut R,
) -> (Vec<u32>, usize) {
    assert!(parts >= 1);
    let n = points.len();
    let mut block = vec![0u32; n];
    let levels = parts.next_power_of_two().trailing_zeros();
    let mut next_block = 1u32;
    // Work queue of (vertex subset, block id, remaining levels).
    let mut queue: Vec<(Vec<u32>, u32, u32)> = vec![((0..n as u32).collect(), 0, levels)];
    while let Some((ids, b, lv)) = queue.pop() {
        if lv == 0 || ids.len() < 2 {
            continue;
        }
        let sub: Vec<Point<D>> = ids.iter().map(|&i| points[i as usize]).collect();
        let Some(found) = find_good_separator::<D, E, _>(&sub, cfg, rng) else {
            continue;
        };
        let mut left = Vec::new();
        let mut right = Vec::new();
        for &i in &ids {
            if found.separator.side(&points[i as usize]).routes_interior() {
                left.push(i);
            } else {
                right.push(i);
            }
        }
        let rb = next_block;
        next_block += 1;
        for &i in &right {
            block[i as usize] = rb;
        }
        queue.push((left, b, lv - 1));
        queue.push((right, rb, lv - 1));
    }
    let cut = graph
        .edges()
        .iter()
        .filter(|&&(a, b)| block[a as usize] != block[b as usize])
        .count();
    (block, cut)
}

/// Upper bound on the grid resolution per axis: `1024^5 < 2^50`, so cell
/// keys fit a `u64` for every supported dimension.
const GRID_MAX_RES: u64 = 1024;

/// A separator found by BFS layering of the sparse intersection graph,
/// together with the evidence the caller's accounting wants.
#[derive(Clone, Debug)]
pub struct GridBfsSeparator<const D: usize> {
    /// The accepted sphere separator.
    pub separator: Separator<D>,
    /// How the accepted sphere partitions the input points.
    pub counts: SplitCounts,
    /// Number of candidate level sets scored against the tol gate,
    /// including the accepted one.
    pub attempts: usize,
}

/// Deterministic BFS/greedy sphere separator over the sparse intersection
/// graph — the `graph` splitter backend's engine.
///
/// Fox–Tidor-style intersection-graph separator theory says sparse
/// ball-intersection graphs of bounded-ply point sets have small
/// separators reachable by purely combinatorial means. This routine works
/// on the standard proxy for the unit-distance intersection graph: points
/// are bucketed into a `g^D` grid (`g ≈ n^{1/D}`), two occupied cells are
/// adjacent when they touch (the `3^D - 1` king-move neighborhood), and
/// BFS from the smallest occupied cell layers the graph into level sets
/// (restarting at the smallest unvisited cell with the level counter
/// carried forward, so disconnected components layer consecutively).
/// Each BFS level `L` induces a candidate sphere centered at the
/// lexicographically smallest source-cell point with radius equal to the
/// largest distance of any level-`≤ L` point; candidates are scored
/// greedily in order of balance (`|inside − n/2|` ascending, ties to the
/// smaller level) against the usual tol gate, and the first acceptable
/// sphere wins.
///
/// The whole pipeline is seed-free and order-independent (sorting by cell
/// key, lexicographic source selection), so the result is a pure function
/// of the point multiset and `cfg` — BFS over cells rather than points
/// also keeps the cost `O(n log n)` even when the intersection graph
/// itself is dense (e.g. every point coincident).
///
/// Returns `None` when fewer than two cells are occupied or no level set
/// passes the tol gate; callers fall back to a deterministic halving cut.
pub fn grid_bfs_separator<const D: usize>(
    points: &[Point<D>],
    cfg: &SeparatorConfig,
) -> Option<GridBfsSeparator<D>> {
    let n = points.len();
    if n < 2 {
        return None;
    }
    let mut lo = points[0];
    let mut hi = points[0];
    for p in points {
        lo = lo.min(p);
        hi = hi.max(p);
    }
    if (0..D).all(|d| hi[d] - lo[d] <= 0.0) {
        return None; // every point identical: nothing separates
    }
    let g = ((n as f64).powf(1.0 / D as f64).ceil() as u64).clamp(2, GRID_MAX_RES);
    let encode = |idx: &[u64; D]| -> u64 {
        let mut key = 0u64;
        for d in (0..D).rev() {
            key = key * g + idx[d];
        }
        key
    };
    let cell_of = |p: &Point<D>| -> u64 {
        let mut idx = [0u64; D];
        for d in 0..D {
            let ext = hi[d] - lo[d];
            if ext > 0.0 {
                idx[d] = (((p[d] - lo[d]) / ext * g as f64) as u64).min(g - 1);
            }
        }
        encode(&idx)
    };
    // Bucket points into occupied cells, sorted by key: the deterministic
    // sparse representation of the grid graph.
    let mut pairs: Vec<(u64, u32)> = points
        .iter()
        .enumerate()
        .map(|(i, p)| (cell_of(p), i as u32))
        .collect();
    pairs.sort_unstable();
    let mut cells: Vec<u64> = Vec::new();
    let mut cell_start: Vec<usize> = Vec::new();
    for (i, &(key, _)) in pairs.iter().enumerate() {
        if cells.last() != Some(&key) {
            cells.push(key);
            cell_start.push(i);
        }
    }
    cell_start.push(pairs.len());
    let n_cells = cells.len();
    if n_cells < 2 {
        return None; // one occupied cell: the grid cannot layer it
    }
    // BFS over occupied cells from the smallest key; neighbors are the
    // 3^D - 1 touching cells, located by binary search.
    let decode = |mut key: u64| -> [u64; D] {
        let mut idx = [0u64; D];
        for slot in idx.iter_mut() {
            *slot = key % g;
            key /= g;
        }
        idx
    };
    let pow3 = 3u64.pow(D as u32);
    let center_t = (pow3 - 1) / 2; // the all-ones digit string: zero offset
    let mut level = vec![u32::MAX; n_cells];
    let mut lvl = 0u32;
    let mut next_source = 0usize;
    // Multi-source BFS: when a connected component of the cell graph is
    // exhausted (e.g. well-separated clusters), restart at the smallest
    // unvisited cell key with the level counter carried forward, so every
    // component gets its own contiguous band of layers instead of
    // collapsing into a single outermost shell.
    while let Some(s) = (next_source..n_cells).find(|&c| level[c] == u32::MAX) {
        next_source = s + 1;
        level[s] = lvl;
        let mut frontier = vec![s];
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for &c in &frontier {
                let idx = decode(cells[c]);
                'offsets: for t in 0..pow3 {
                    if t == center_t {
                        continue;
                    }
                    let mut digits = t;
                    let mut nidx = [0u64; D];
                    for d in 0..D {
                        let off = (digits % 3) as i64 - 1;
                        digits /= 3;
                        let v = idx[d] as i64 + off;
                        if v < 0 || v >= g as i64 {
                            continue 'offsets;
                        }
                        nidx[d] = v as u64;
                    }
                    if let Ok(j) = cells.binary_search(&encode(&nidx)) {
                        if level[j] == u32::MAX {
                            level[j] = lvl + 1;
                            next.push(j);
                        }
                    }
                }
            }
            frontier = next;
            lvl += 1;
        }
    }
    let max_level = *level.iter().max().expect("n_cells >= 2");
    // Sphere center: the lexicographically smallest point of the source
    // cell (order-independent, hence thread-count-oblivious).
    let lex_less = |a: &Point<D>, b: &Point<D>| {
        for d in 0..D {
            match a[d].total_cmp(&b[d]) {
                std::cmp::Ordering::Less => return true,
                std::cmp::Ordering::Greater => return false,
                std::cmp::Ordering::Equal => {}
            }
        }
        false
    };
    let mut center = points[pairs[0].1 as usize];
    for &(_, i) in &pairs[cell_start[0]..cell_start[1]] {
        let p = points[i as usize];
        if lex_less(&p, &center) {
            center = p;
        }
    }
    // Per-level population and radius: count[L] points at level L, and the
    // farthest such point from the center.
    let levels = max_level as usize + 1;
    let mut count = vec![0usize; levels];
    let mut radius = vec![0f64; levels];
    for (c, &key_lvl) in level.iter().enumerate() {
        let l = key_lvl as usize;
        for &(_, i) in &pairs[cell_start[c]..cell_start[c + 1]] {
            count[l] += 1;
            radius[l] = radius[l].max(points[i as usize].dist(&center));
        }
    }
    // Prefix sums/maxima: inside(L) = points at levels ≤ L, r(L) = the
    // radius enclosing them.
    for l in 1..levels {
        count[l] += count[l - 1];
        radius[l] = radius[l].max(radius[l - 1]);
    }
    // Greedy: candidate levels ordered by balance, best first; the last
    // level would put everything inside, so it never separates.
    let mut order: Vec<usize> = (0..levels - 1).collect();
    let half = n / 2;
    order.sort_by_key(|&l| (count[l].abs_diff(half), l));
    let delta = cfg.delta(D);
    let max_tries = cfg.max_attempts.max(8).min(order.len());
    let mut attempts = 0;
    for &l in order.iter().take(max_tries) {
        if radius[l] <= 0.0 {
            continue; // a zero-radius sphere separates nothing cleanly
        }
        attempts += 1;
        let sep = Separator::Sphere(Sphere::new(center, radius[l]));
        let counts = split_counts(points, &sep, cfg.tol);
        if is_good_point_split(&counts, delta) {
            return Some(GridBfsSeparator {
                separator: sep,
                counts,
                attempts,
            });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force_knn;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use sepdc_geom::Hyperplane;
    use sepdc_workloads::Workload;

    fn knn_graph(n: usize, k: usize, w: Workload, seed: u64) -> (Vec<Point<2>>, KnnGraph) {
        let pts = w.generate::<2>(n, seed);
        let g = KnnGraph::from_knn(&brute_force_knn(&pts, k));
        (pts, g)
    }

    #[test]
    fn separator_property_holds_by_construction() {
        let (pts, g) = knn_graph(500, 2, Workload::UniformCube, 1);
        let sep: Separator<2> = Hyperplane::axis_aligned(0, 0.5).into();
        let gs = vertex_separator_from(&pts, &g, &sep);
        gs.verify(&g).expect("separator property violated");
        assert_eq!(gs.separator.len() + gs.side_a.len() + gs.side_b.len(), 500);
    }

    #[test]
    fn sphere_separator_is_sublinear_on_uniform() {
        let (pts, g) = knn_graph(2000, 1, Workload::UniformCube, 2);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let gs =
            sphere_graph_separator::<2, 3, _>(&pts, &g, &SeparatorConfig::default(), 4, &mut rng)
                .unwrap();
        gs.verify(&g).unwrap();
        // o(n): comfortably below n/4, around O(√n) in practice.
        assert!(
            gs.separator.len() < 500,
            "separator size {} not sublinear",
            gs.separator.len()
        );
        assert!(gs.balance() <= 0.90, "balance {}", gs.balance());
    }

    #[test]
    fn separator_beats_hyperplane_on_two_slabs() {
        let (pts, g) = knn_graph(1000, 1, Workload::TwoSlabs, 4);
        // The bad hyperplane: cuts between the slabs — W is huge.
        let bad: Separator<2> = Hyperplane::axis_aligned(1, 0.05 / 500.0).into();
        let bad_gs = vertex_separator_from(&pts, &g, &bad);
        bad_gs.verify(&g).unwrap();
        assert!(bad_gs.separator.len() > 400, "bad cut should be ~n/2");

        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let good =
            sphere_graph_separator::<2, 3, _>(&pts, &g, &SeparatorConfig::default(), 4, &mut rng)
                .unwrap();
        good.verify(&g).unwrap();
        assert!(
            good.separator.len() * 4 < bad_gs.separator.len(),
            "sphere W = {} not much smaller than bad hyperplane W = {}",
            good.separator.len(),
            bad_gs.separator.len()
        );
    }

    #[test]
    fn recursive_bisection_partitions_with_small_cut() {
        let (pts, g) = knn_graph(1200, 2, Workload::UniformCube, 9);
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let (block, cut) =
            recursive_bisection::<2, 3, _>(&pts, &g, 4, &SeparatorConfig::default(), &mut rng);
        // Every vertex has a block; exactly 4 blocks used; roughly balanced.
        let mut counts = std::collections::HashMap::new();
        for &b in &block {
            *counts.entry(b).or_insert(0usize) += 1;
        }
        assert_eq!(counts.len(), 4);
        for &c in counts.values() {
            assert!(c > 100, "block too small: {c}");
        }
        // Cut is far below the edge count.
        assert!(
            cut * 4 < g.num_edges(),
            "cut {cut} too large vs {} edges",
            g.num_edges()
        );
    }

    #[test]
    fn recursive_bisection_single_part_is_trivial() {
        let (pts, g) = knn_graph(100, 1, Workload::UniformCube, 11);
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let (block, cut) =
            recursive_bisection::<2, 3, _>(&pts, &g, 1, &SeparatorConfig::default(), &mut rng);
        assert!(block.iter().all(|&b| b == 0));
        assert_eq!(cut, 0);
    }

    #[test]
    fn unsplittable_returns_none() {
        let pts = vec![Point::<2>::splat(1.0); 50];
        let g = KnnGraph::from_knn(&brute_force_knn(&pts, 1));
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let cfg = SeparatorConfig {
            max_attempts: 2,
            ..Default::default()
        };
        assert!(sphere_graph_separator::<2, 3, _>(&pts, &g, &cfg, 2, &mut rng).is_none());
    }

    #[test]
    fn grid_bfs_separator_splits_uniform() {
        let pts = Workload::UniformCube.generate::<2>(2000, 13);
        let cfg = SeparatorConfig::default();
        let found = grid_bfs_separator(&pts, &cfg).expect("uniform cube must split");
        assert!(
            found.counts.ratio() <= cfg.delta(2),
            "ratio {} over delta",
            found.counts.ratio()
        );
        assert!(found.attempts >= 1);
    }

    #[test]
    fn grid_bfs_separator_is_order_independent() {
        let pts = Workload::Clusters.generate::<2>(1500, 14);
        let mut rev = pts.clone();
        rev.reverse();
        let cfg = SeparatorConfig::default();
        let a = grid_bfs_separator(&pts, &cfg).unwrap();
        let b = grid_bfs_separator(&rev, &cfg).unwrap();
        assert_eq!(a.separator, b.separator);
        assert_eq!(a.counts, b.counts);
    }

    #[test]
    fn grid_bfs_separator_none_on_coincident_points() {
        let pts = vec![Point::<2>::splat(3.0); 200];
        assert!(grid_bfs_separator(&pts, &SeparatorConfig::default()).is_none());
    }

    #[test]
    fn grid_bfs_separator_works_in_3d() {
        let pts = Workload::UniformCube.generate::<3>(3000, 15);
        let cfg = SeparatorConfig::default();
        let found = grid_bfs_separator(&pts, &cfg).unwrap();
        assert!(found.counts.ratio() <= cfg.delta(3) + 1e-12);
    }

    #[test]
    fn empty_sides_are_fine() {
        // A sphere containing everything: side_b empty, W empty.
        let (pts, g) = knn_graph(100, 1, Workload::UniformCube, 7);
        let sep: Separator<2> = sepdc_geom::Sphere::new(Point::from([0.5, 0.5]), 100.0).into();
        let gs = vertex_separator_from(&pts, &g, &sep);
        assert_eq!(gs.cut_edges, 0);
        assert!(gs.separator.is_empty());
        assert_eq!(gs.side_a.len(), 100);
        gs.verify(&g).unwrap();
    }
}
