//! Criterion bench: the parallel vector model substrate — serial vs
//! blocked-parallel scans and packs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sepdc_scan::primitives::{pack, par_pack};
use sepdc_scan::scan::AddUsize;
use sepdc_scan::{inclusive_scan, par_inclusive_scan};
use std::hint::black_box;

fn bench_scans(c: &mut Criterion) {
    let mut group = c.benchmark_group("scan");
    group.sample_size(20);
    for e in [16u32, 20, 22] {
        let n = 1usize << e;
        let xs: Vec<usize> = (0..n).map(|i| i % 97).collect();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("serial", n), &xs, |b, xs| {
            b.iter(|| black_box(inclusive_scan(AddUsize, xs)));
        });
        group.bench_with_input(BenchmarkId::new("parallel", n), &xs, |b, xs| {
            b.iter(|| black_box(par_inclusive_scan(AddUsize, xs)));
        });
    }
    group.finish();
}

fn bench_pack(c: &mut Criterion) {
    let mut group = c.benchmark_group("pack");
    group.sample_size(20);
    let n = 1usize << 20;
    let xs: Vec<u64> = (0..n as u64).collect();
    let flags: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("serial_1M", |b| {
        b.iter(|| black_box(pack(&xs, &flags)));
    });
    group.bench_function("parallel_1M", |b| {
        b.iter(|| black_box(par_pack(&xs, &flags)));
    });
    group.finish();
}

criterion_group!(benches, bench_scans, bench_pack);
criterion_main!(benches);
