//! The `sepdc serve` daemon: load a snapshot once, answer probe batches
//! forever.
//!
//! ## Protocol (newline-delimited, UTF-8, over stdin/stdout)
//!
//! One request per line; one response line per request, in request order:
//!
//! * **Probe** — a point in the input CSV format (`x,y,…` or
//!   whitespace-separated, exactly `dim` coordinates). Response:
//!   `seq,count,id id id…` — the same row shape `sepdc query --out`
//!   writes, with `seq` the global probe sequence number since startup.
//! * **`insert X,Y,…,R`** — add a ball (`dim` coordinates + radius) to a
//!   sharded index. Response: `ok inserted id=I n=N generation=G` (the
//!   generation bumps only when the insert triggered a shard rebuild — a
//!   warm swap of the carried shards) or `error: …`. Serving a plain
//!   query-tree snapshot answers `error:` — build with
//!   `sepdc index build --sharded` for mutability.
//! * **`delete ID`** — tombstone the ball with that global id. Response:
//!   `ok deleted id=I n=N generation=G`, or `error: id I not found` for
//!   unknown or already-deleted ids.
//! * **`swap PATH`** — load, validate, and atomically install a new
//!   snapshot (query-tree or sharded-index, same dimension). Response:
//!   `ok swapped generation=G n=N` or `error: …` (the old index keeps
//!   serving on failure; in-flight batches finish on the generation they
//!   started with — old generations drain as their handles drop).
//! * **`stats`** — `ok generation=G n=N dim=D probes=P batches=B swaps=S
//!   kind=K splitter=NAME`.
//! * **`quit`** — `ok bye`, then exit. EOF on stdin also exits.
//! * Blank lines and `#` comments are ignored without a response, so a
//!   generated point file can be piped in unmodified.
//! * A malformed probe line — wrong arity, unparsable or non-finite
//!   fields, even invalid UTF-8 bytes — answers `error: …` and poisons
//!   nothing.
//!
//! ## Admission batching
//!
//! A reader thread feeds a bounded channel; the serving loop blocks for
//! the first pending request, then drains whatever else has already
//! arrived — coalescing small requests into one batch, capped at a
//! `chunk_size`-aligned maximum — and answers the whole batch through
//! the deterministic CSR serve engine. Answers are byte-identical to
//! `sepdc query` over the same probes no matter how requests were
//! coalesced or how many threads serve them; a sharded index additionally
//! answers independently of its shard layout.
//!
//! ## Fault containment
//!
//! One request must never take the daemon down. The generation cell
//! recovers from lock poisoning (the `Arc` inside is swapped atomically,
//! never left half-written), and the batch serve path runs under
//! `catch_unwind`: a panic (or typed serve error) answers every in-flight
//! probe of that batch with `error: …` — without consuming their sequence
//! numbers — and the loop keeps serving.

use crate::io::{parse_ball, parse_points};
use crate::CliResult;
use sepdc_core::serve::{CoverPredicate, ServeConfig};
use sepdc_core::snapshot::{self, SnapshotKind};
use sepdc_core::{QueryTree, ShardedIndex};
use sepdc_geom::ball::Ball;
use sepdc_geom::Point;
use std::io::{BufRead, BufWriter, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::{Arc, PoisonError, RwLock};

/// Daemon tunables (`sepdc serve` flags).
#[derive(Clone, Copy, Debug)]
pub struct DaemonConfig {
    /// Serve the open-interior predicate instead of the closed one.
    pub interior: bool,
    /// Chunk size of the underlying CSR engine ([`ServeConfig::chunk_size`]).
    pub chunk: usize,
    /// Maximum probes coalesced into one served batch; rounded down to a
    /// multiple of `chunk` (and up to at least one chunk) so admission
    /// batches stay chunk-aligned.
    pub batch_max: usize,
    /// Test hook: panic while serving the batch with this zero-based
    /// number, exercising the fault-containment path (the regression test
    /// for "one panicking handler must not kill the daemon"). `None` in
    /// production.
    pub fail_batch: Option<u64>,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            interior: false,
            chunk: 1024,
            batch_max: 4096,
            fail_batch: None,
        }
    }
}

impl DaemonConfig {
    /// The chunk-aligned admission cap.
    fn aligned_cap(&self) -> usize {
        let chunk = self.chunk.max(1);
        (self.batch_max / chunk).max(1) * chunk
    }
}

/// Counters the daemon reports on `stats` and returns at exit.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DaemonStats {
    /// Probes answered.
    pub probes: u64,
    /// Batches attempted (each one serve call, including contained
    /// failures).
    pub batches: u64,
    /// Generation bumps: explicit `swap`s plus rebuild-triggering inserts.
    pub swaps: u64,
}

/// What the daemon is serving: a frozen query tree, or a batch-dynamic
/// sharded index that additionally accepts `insert`/`delete` lines.
enum ServingIndex<const D: usize> {
    Single(QueryTree<D>),
    Sharded(ShardedIndex<D>),
}

impl<const D: usize> ServingIndex<D> {
    fn len(&self) -> usize {
        match self {
            ServingIndex::Single(tree) => tree.len(),
            ServingIndex::Sharded(index) => index.len(),
        }
    }

    fn kind_name(&self) -> &'static str {
        match self {
            ServingIndex::Single(_) => SnapshotKind::QueryTree.name(),
            ServingIndex::Sharded(_) => SnapshotKind::ShardedIndex.name(),
        }
    }

    /// Name of the split-decision backend the served structure was (and,
    /// for sharded indices, future rebuilds will be) built with.
    fn splitter_name(&self) -> &'static str {
        match self {
            ServingIndex::Single(tree) => tree.splitter().name(),
            ServingIndex::Sharded(index) => index.config().tree.splitter.name(),
        }
    }

    /// Serve one admission batch, returning a `count,id id…` row per
    /// probe. Both arms ride the deterministic CSR engine; the sharded
    /// arm scatters across shards and gathers ascending by global id,
    /// which coincides with the single-tree row order (leaf id lists are
    /// ascending), so the two kinds answer byte-identically over the same
    /// ball set.
    fn serve_rows(
        &self,
        probes: &[Point<D>],
        pred: CoverPredicate,
        cfg: &ServeConfig,
    ) -> Result<Vec<String>, sepdc_core::SepdcError> {
        fn row<T: std::fmt::Display>(hits: &[T]) -> String {
            let ids: Vec<String> = hits.iter().map(T::to_string).collect();
            format!("{},{}", hits.len(), ids.join(" "))
        }
        match self {
            ServingIndex::Single(tree) => {
                let served = tree.try_serve(probes, pred, cfg)?;
                Ok(served.result.iter().map(row).collect())
            }
            ServingIndex::Sharded(index) => {
                let served = index.try_covering_batch(probes, pred, cfg)?;
                Ok(served.iter().map(row).collect())
            }
        }
    }
}

/// Load snapshot bytes into whichever serving kind they hold.
fn load_serving<const D: usize>(bytes: &[u8]) -> Result<ServingIndex<D>, String> {
    let info = snapshot::inspect(bytes).map_err(|e| e.to_string())?;
    match info.kind {
        SnapshotKind::QueryTree => snapshot::load_query_tree::<D>(bytes)
            .map(ServingIndex::Single)
            .map_err(|e| e.to_string()),
        SnapshotKind::ShardedIndex => snapshot::load_sharded_index::<D>(bytes)
            .map(ServingIndex::Sharded)
            .map_err(|e| e.to_string()),
        SnapshotKind::PartitionTree => Err(format!(
            "holds a {}, the daemon serves query-tree or sharded-index snapshots",
            info.kind.name()
        )),
    }
}

/// One loaded snapshot generation: the index plus its provenance.
struct Generation<const D: usize> {
    index: ServingIndex<D>,
    number: u64,
}

/// `ArcSwap`-style cell: readers clone the current `Arc` and keep serving
/// on it while an install publishes a new generation; the old generation
/// is freed when its last in-flight handle drops (drains, never torn down
/// mid-batch). Lock poisoning is recovered via `PoisonError::into_inner`:
/// the guarded value is a plain `Arc` that is replaced in one assignment,
/// so a panicking holder can never leave it half-written.
struct IndexCell<const D: usize> {
    inner: RwLock<Arc<Generation<D>>>,
}

impl<const D: usize> IndexCell<D> {
    fn new(index: ServingIndex<D>) -> Self {
        IndexCell {
            inner: RwLock::new(Arc::new(Generation { index, number: 1 })),
        }
    }

    fn current(&self) -> Arc<Generation<D>> {
        Arc::clone(&self.inner.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Publish `index` as the served structure. The generation number
    /// bumps only when `bump` — an explicit `swap` or a rebuild-carrying
    /// insert; plain staging inserts and tombstone deletes keep the
    /// number (the structure is the same build, with edits).
    fn install(&self, index: ServingIndex<D>, bump: bool) -> u64 {
        let mut slot = self.inner.write().unwrap_or_else(PoisonError::into_inner);
        let number = slot.number + u64::from(bump);
        *slot = Arc::new(Generation { index, number });
        number
    }
}

/// Run the daemon over arbitrary line-based transports. The binary passes
/// stdin/stdout; tests pass in-memory buffers. Returns the final counters
/// when the input ends (EOF, `quit`, or the client closing the response
/// pipe).
pub fn run_daemon<R, W>(
    input: R,
    output: W,
    index_path: &str,
    cfg: &DaemonConfig,
) -> CliResult<DaemonStats>
where
    R: BufRead + Send + 'static,
    W: Write,
{
    let bytes = std::fs::read(index_path).map_err(|e| format!("cannot read {index_path}: {e}"))?;
    let info = snapshot::inspect(&bytes).map_err(|e| format!("{index_path}: {e}"))?;
    if !matches!(
        info.kind,
        SnapshotKind::QueryTree | SnapshotKind::ShardedIndex
    ) {
        return Err(format!(
            "{index_path}: holds a {}, the daemon serves query-tree or sharded-index snapshots",
            info.kind.name()
        ));
    }
    fn run<const D: usize, const E: usize>(
        bytes: &[u8],
        input: impl BufRead + Send + 'static,
        output: impl Write,
        cfg: &DaemonConfig,
    ) -> CliResult<DaemonStats> {
        let index = load_serving::<D>(bytes)?;
        serve_loop::<D, E>(index, input, output, cfg)
    }
    match info.dim {
        1 => run::<1, 2>(&bytes, input, output, cfg),
        2 => run::<2, 3>(&bytes, input, output, cfg),
        3 => run::<3, 4>(&bytes, input, output, cfg),
        4 => run::<4, 5>(&bytes, input, output, cfg),
        5 => run::<5, 6>(&bytes, input, output, cfg),
        d => Err(format!(
            "unsupported snapshot dimension {d} (supported: 1..=5)"
        )),
    }
}

/// What one request line asks for.
enum Request<const D: usize> {
    Probe(Point<D>),
    Insert(Ball<D>),
    Delete(u64),
    Malformed(String),
    Swap(String),
    Stats,
    Quit,
}

fn classify<const D: usize>(line: &str) -> Option<Request<D>> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return None;
    }
    if let Some(path) = line.strip_prefix("swap ") {
        return Some(Request::Swap(path.trim().to_string()));
    }
    if let Some(row) = line.strip_prefix("insert ") {
        return Some(match parse_ball::<D>(row) {
            Ok(ball) => Request::Insert(ball),
            Err(e) => Request::Malformed(format!("insert: {e}")),
        });
    }
    if let Some(id) = line.strip_prefix("delete ") {
        return Some(match id.trim().parse::<u64>() {
            Ok(id) => Request::Delete(id),
            Err(_) => Request::Malformed(format!("delete: cannot parse id '{}'", id.trim())),
        });
    }
    match line {
        "stats" => Some(Request::Stats),
        "quit" => Some(Request::Quit),
        _ => Some(match parse_points::<D>(line) {
            Ok(pts) if pts.len() == 1 => Request::Probe(pts[0]),
            Ok(_) => Request::Malformed("expected exactly one probe per line".to_string()),
            Err(e) => Request::Malformed(e),
        }),
    }
}

fn serve_loop<const D: usize, const E: usize>(
    index: ServingIndex<D>,
    input: impl BufRead + Send + 'static,
    output: impl Write,
    cfg: &DaemonConfig,
) -> CliResult<DaemonStats> {
    let pred = if cfg.interior {
        CoverPredicate::Open
    } else {
        CoverPredicate::Closed
    };
    let serve_cfg = ServeConfig {
        chunk_size: cfg.chunk,
        ..ServeConfig::default()
    };
    serve_cfg.validate().map_err(|e| e.to_string())?;
    let cap = cfg.aligned_cap();
    let cell = IndexCell::new(index);
    {
        let gen = cell.current();
        eprintln!(
            "sepdc serve: {} balls (dim {D}, {}, splitter {}), generation {}, \
             {} predicate, chunk {}, admission cap {cap}",
            gen.index.len(),
            gen.index.kind_name(),
            gen.index.splitter_name(),
            gen.number,
            pred.name(),
            serve_cfg.chunk_size,
        );
    }

    // Reader thread: pull raw byte lines off the transport into a bounded
    // queue. Decoding happens here so a non-UTF8 line becomes an
    // addressable error response instead of silently ending the stream.
    let (tx, rx) = mpsc::sync_channel::<Result<String, String>>(2 * cap);
    std::thread::spawn(move || {
        let mut input = input;
        let mut lineno: u64 = 0;
        loop {
            let mut buf = Vec::new();
            match input.read_until(b'\n', &mut buf) {
                Ok(0) => break,
                Ok(_) => {
                    lineno += 1;
                    if buf.last() == Some(&b'\n') {
                        buf.pop();
                    }
                    let msg = String::from_utf8(buf)
                        .map_err(|_| format!("line {lineno}: invalid UTF-8 byte sequence"));
                    if tx.send(msg).is_err() {
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    });

    let mut out = BufWriter::new(output);
    let mut stats = DaemonStats::default();
    let mut seq: u64 = 0;
    let mut batch: Vec<Point<D>> = Vec::new();

    // Serve the buffered probes as one batch; write one CSR row per probe.
    // A panic or typed serve error is contained: every probe of the batch
    // answers `error:` (sequence numbers unconsumed) and serving
    // continues. A write error means the client hung up — finish cleanly.
    let flush_batch = |batch: &mut Vec<Point<D>>,
                       out: &mut BufWriter<_>,
                       seq: &mut u64,
                       stats: &mut DaemonStats|
     -> bool {
        if batch.is_empty() {
            return true;
        }
        let gen = cell.current();
        let inject = cfg.fail_batch == Some(stats.batches);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if inject {
                panic!("injected failure (DaemonConfig::fail_batch test hook)");
            }
            gen.index.serve_rows(batch, pred, &serve_cfg)
        }));
        stats.batches += 1;
        let err = match outcome {
            Ok(Ok(rows)) => {
                for row in rows {
                    if writeln!(out, "{seq},{row}").is_err() {
                        return false;
                    }
                    *seq += 1;
                }
                stats.probes += batch.len() as u64;
                batch.clear();
                return true;
            }
            Ok(Err(e)) => format!("serving batch failed: {e}"),
            Err(payload) => {
                let what = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "unknown panic".to_string());
                format!("serving batch panicked: {what}")
            }
        };
        for _ in 0..batch.len() {
            if writeln!(out, "error: {err}").is_err() {
                return false;
            }
        }
        batch.clear();
        true
    };

    // Block for the first pending request, then drain what's queued.
    'serve: while let Ok(first) = rx.recv() {
        let mut lines = vec![first];
        while let Ok(line) = rx.try_recv() {
            lines.push(line);
        }
        for line in &lines {
            let req = match line {
                Ok(text) => match classify::<D>(text) {
                    Some(req) => req,
                    None => continue,
                },
                Err(msg) => Request::Malformed(msg.clone()),
            };
            // Control requests and errors flush first so responses stay
            // in request order.
            let control = !matches!(req, Request::Probe(_));
            if control && !flush_batch(&mut batch, &mut out, &mut seq, &mut stats) {
                break 'serve;
            }
            let ok = match req {
                Request::Probe(p) => {
                    batch.push(p);
                    if batch.len() >= cap
                        && !flush_batch(&mut batch, &mut out, &mut seq, &mut stats)
                    {
                        break 'serve;
                    }
                    true
                }
                Request::Malformed(msg) => writeln!(out, "error: {msg}").is_ok(),
                Request::Stats => {
                    let gen = cell.current();
                    writeln!(
                        out,
                        "ok generation={} n={} dim={D} probes={} batches={} swaps={} kind={} \
                         splitter={}",
                        gen.number,
                        gen.index.len(),
                        stats.probes,
                        stats.batches,
                        stats.swaps,
                        gen.index.kind_name(),
                        gen.index.splitter_name(),
                    )
                    .is_ok()
                }
                Request::Insert(ball) => {
                    let gen = cell.current();
                    match &gen.index {
                        ServingIndex::Single(_) => writeln!(
                            out,
                            "error: insert requires a sharded index \
                             (build with `sepdc index build --sharded`)"
                        )
                        .is_ok(),
                        ServingIndex::Sharded(index) => {
                            let mut next = index.clone();
                            let before = next.stats().rebuilds;
                            match next.try_insert_batch::<E>(std::slice::from_ref(&ball)) {
                                Ok(ids) => {
                                    let rebuilt = next.stats().rebuilds != before;
                                    let n = next.len();
                                    let number = cell.install(ServingIndex::Sharded(next), rebuilt);
                                    if rebuilt {
                                        stats.swaps += 1;
                                    }
                                    writeln!(
                                        out,
                                        "ok inserted id={} n={n} generation={number}",
                                        ids[0]
                                    )
                                    .is_ok()
                                }
                                Err(e) => writeln!(out, "error: {e}").is_ok(),
                            }
                        }
                    }
                }
                Request::Delete(id) => {
                    let gen = cell.current();
                    match &gen.index {
                        ServingIndex::Single(_) => writeln!(
                            out,
                            "error: delete requires a sharded index \
                             (build with `sepdc index build --sharded`)"
                        )
                        .is_ok(),
                        ServingIndex::Sharded(index) => {
                            let mut next = index.clone();
                            if next.delete_batch(std::slice::from_ref(&id))[0] {
                                let n = next.len();
                                let number = cell.install(ServingIndex::Sharded(next), false);
                                writeln!(out, "ok deleted id={id} n={n} generation={number}")
                                    .is_ok()
                            } else {
                                writeln!(out, "error: id {id} not found").is_ok()
                            }
                        }
                    }
                }
                Request::Swap(path) => {
                    match std::fs::read(&path)
                        .map_err(|e| format!("cannot read {path}: {e}"))
                        .and_then(|bytes| {
                            load_serving::<D>(&bytes).map_err(|e| format!("{path}: {e}"))
                        }) {
                        Ok(index) => {
                            let n = index.len();
                            let number = cell.install(index, true);
                            stats.swaps += 1;
                            writeln!(out, "ok swapped generation={number} n={n}").is_ok()
                        }
                        Err(e) => writeln!(out, "error: {e}").is_ok(),
                    }
                }
                Request::Quit => {
                    let _ = writeln!(out, "ok bye");
                    let _ = out.flush();
                    return Ok(stats);
                }
            };
            if !ok {
                break 'serve;
            }
        }
        if !flush_batch(&mut batch, &mut out, &mut seq, &mut stats) {
            break;
        }
        if out.flush().is_err() {
            break;
        }
    }
    flush_batch(&mut batch, &mut out, &mut seq, &mut stats);
    let _ = out.flush();
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands;
    use sepdc_core::{Precision, SplitterKind};
    use std::io::Cursor;

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("sepdc-daemon-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// Build a small snapshot on disk plus the matching in-process hit
    /// rows for the same probes. `staging` selects the sharded layout.
    fn fixture_kind(
        dir: &std::path::Path,
        staging: Option<usize>,
    ) -> (String, String, Vec<String>) {
        let pts = commands::generate("uniform-cube", 400, 2, 3).unwrap();
        let probes = commands::generate("clusters", 120, 2, 9).unwrap();
        let built =
            commands::index_build(&pts, Some(2), 2, 5, staging, SplitterKind::Random, Precision::Mixed, 0.0).unwrap();
        let snap = dir.join("index.snap");
        std::fs::write(&snap, &built.snapshot).unwrap();
        let q = commands::query(
            &pts,
            Some(2),
            2,
            Some(&probes),
            "uniform-cube",
            0,
            false,
            5,
            1024,
            SplitterKind::Random,
            Precision::Mixed,
            0.0,
        )
        .unwrap();
        let rows: Vec<String> = q
            .hits_csv
            .lines()
            .filter(|l| !l.starts_with('#'))
            .map(String::from)
            .collect();
        (snap.to_string_lossy().into_owned(), probes, rows)
    }

    fn fixture(dir: &std::path::Path) -> (String, String, Vec<String>) {
        fixture_kind(dir, None)
    }

    #[test]
    fn daemon_rows_match_in_process_answers() {
        let dir = tmpdir("parity");
        let (snap, probes, want) = fixture(&dir);
        // Pipe the raw probe file through, with control lines mixed in.
        let input = format!("stats\n{probes}quit\n");
        let mut out = Vec::new();
        let stats = run_daemon(
            Cursor::new(input.into_bytes()),
            &mut out,
            &snap,
            &DaemonConfig::default(),
        )
        .unwrap();
        assert_eq!(stats.probes, 120);
        let text = String::from_utf8(out).unwrap();
        let mut lines = text.lines();
        let first = lines.next().unwrap();
        assert!(first.starts_with("ok generation=1 n=400 dim=2"), "{first}");
        let rows: Vec<&str> = lines.clone().take(120).collect();
        assert_eq!(rows, want, "daemon CSR rows must match sepdc query");
        assert_eq!(lines.nth(120), Some("ok bye"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn batching_is_invisible_in_the_answers() {
        let dir = tmpdir("batching");
        let (snap, probes, want) = fixture(&dir);
        // Tiny admission cap: many small batches, identical rows.
        let cfg = DaemonConfig {
            chunk: 7,
            batch_max: 7,
            ..DaemonConfig::default()
        };
        let mut out = Vec::new();
        let stats = run_daemon(Cursor::new(probes.into_bytes()), &mut out, &snap, &cfg).unwrap();
        assert_eq!(stats.probes, 120);
        assert!(stats.batches >= 120 / 7, "cap must bound batch size");
        let text = String::from_utf8(out).unwrap();
        assert_eq!(text.lines().collect::<Vec<_>>(), want);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn swap_and_errors() {
        let dir = tmpdir("swap");
        let (snap, _, _) = fixture(&dir);
        // A second, different snapshot to swap in.
        let pts2 = commands::generate("grid", 200, 2, 21).unwrap();
        let built2 =
            commands::index_build(&pts2, Some(2), 2, 5, None, SplitterKind::Random, Precision::Mixed, 0.0).unwrap();
        let snap2 = dir.join("index2.snap");
        std::fs::write(&snap2, &built2.snapshot).unwrap();
        // A corrupt file the swap must reject while the old index serves on.
        let garbage = dir.join("garbage.snap");
        std::fs::write(&garbage, b"not a snapshot").unwrap();

        let input = format!(
            "0.5,0.5\nswap {missing}\nswap {garbage}\nnot,a,probe\n0.5,0.5\nswap {snap2}\nstats\n",
            missing = dir.join("missing.snap").display(),
            garbage = garbage.display(),
            snap2 = snap2.display(),
        );
        let mut out = Vec::new();
        let stats = run_daemon(
            Cursor::new(input.into_bytes()),
            &mut out,
            &snap,
            &DaemonConfig::default(),
        )
        .unwrap();
        assert_eq!(stats.swaps, 1);
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("0,"), "probe row first: {}", lines[0]);
        assert!(lines[1].starts_with("error: cannot read"), "{}", lines[1]);
        assert!(lines[2].starts_with("error:"), "{}", lines[2]);
        assert!(lines[3].starts_with("error:"), "{}", lines[3]);
        assert!(lines[4].starts_with("1,"), "probe rows keep numbering");
        assert_eq!(lines[5], "ok swapped generation=2 n=200");
        assert!(
            lines[6].starts_with("ok generation=2 n=200"),
            "{}",
            lines[6]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wrong_dimension_swap_is_rejected() {
        let dir = tmpdir("dim");
        let (snap, _, _) = fixture(&dir);
        let pts3 = commands::generate("uniform-cube", 100, 3, 4).unwrap();
        let built3 =
            commands::index_build(&pts3, Some(3), 2, 5, None, SplitterKind::Random, Precision::Mixed, 0.0).unwrap();
        let snap3 = dir.join("index3.snap");
        std::fs::write(&snap3, &built3.snapshot).unwrap();
        let input = format!("swap {}\nstats\n", snap3.display());
        let mut out = Vec::new();
        run_daemon(
            Cursor::new(input.into_bytes()),
            &mut out,
            &snap,
            &DaemonConfig::default(),
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(
            lines[0].starts_with("error:") && lines[0].contains("dimension"),
            "{}",
            lines[0]
        );
        assert!(
            lines[1].starts_with("ok generation=1"),
            "old index serves on"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_panic_answers_errors_and_keeps_serving() {
        let dir = tmpdir("panic");
        let (snap, _, _) = fixture(&dir);
        let cfg = DaemonConfig {
            fail_batch: Some(0),
            ..DaemonConfig::default()
        };
        // The stats line forces the first probe into its own (panicking)
        // batch; the second probe then serves on a fresh batch.
        let input = "0.5,0.5\nstats\n0.25,0.75\nquit\n";
        let mut out = Vec::new();
        let stats = run_daemon(
            Cursor::new(input.as_bytes().to_vec()),
            &mut out,
            &snap,
            &cfg,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(
            lines[0].starts_with("error: serving batch panicked"),
            "in-flight line answers error: {}",
            lines[0]
        );
        assert!(
            lines[1].starts_with("ok generation=1"),
            "stats still served after the panic: {}",
            lines[1]
        );
        assert!(
            lines[2].starts_with("0,"),
            "next batch serves, sequence numbers unconsumed: {}",
            lines[2]
        );
        assert_eq!(lines[3], "ok bye");
        assert_eq!(stats.probes, 1, "only the served probe counts");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn invalid_utf8_line_answers_error_and_serves_on() {
        let dir = tmpdir("utf8");
        let (snap, _, _) = fixture(&dir);
        let mut input: Vec<u8> = Vec::new();
        input.extend_from_slice(b"\xff\xfe\n0.5,0.5\nquit\n");
        let mut out = Vec::new();
        let stats = run_daemon(
            Cursor::new(input),
            &mut out,
            &snap,
            &DaemonConfig::default(),
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(
            lines[0].starts_with("error:") && lines[0].contains("UTF-8"),
            "{}",
            lines[0]
        );
        assert!(lines[1].starts_with("0,"), "{}", lines[1]);
        assert_eq!(lines[2], "ok bye");
        assert_eq!(stats.probes, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sharded_daemon_matches_query_rows_and_churns() {
        let dir = tmpdir("sharded");
        let (snap, probes, want) = fixture_kind(&dir, Some(64));

        // Phase 1: straight probe parity — the sharded gather must answer
        // byte-identically to `sepdc query` over the same ball set.
        let input = format!("{probes}quit\n");
        let mut out = Vec::new();
        let stats = run_daemon(
            Cursor::new(input.into_bytes()),
            &mut out,
            &snap,
            &DaemonConfig::default(),
        )
        .unwrap();
        assert_eq!(stats.probes, 120);
        let text = String::from_utf8(out).unwrap();
        let rows: Vec<&str> = text.lines().take(120).collect();
        assert_eq!(rows, want, "sharded rows must match sepdc query");

        // Phase 2: churn — insert a far-away ball, probe it, delete it,
        // probe again; the daemon must answer through every edit.
        let input = "insert 50,50,1\n50,50\ndelete 400\n50,50\nstats\nquit\n".to_string();
        let mut out = Vec::new();
        run_daemon(
            Cursor::new(input.into_bytes()),
            &mut out,
            &snap,
            &DaemonConfig::default(),
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "ok inserted id=400 n=401 generation=1");
        assert_eq!(lines[1], "0,1,400", "probe hits the inserted ball");
        assert_eq!(lines[2], "ok deleted id=400 n=400 generation=1");
        assert_eq!(lines[3], "1,0,", "deleted ball no longer answers");
        assert!(lines[4].contains("kind=sharded-index"), "{}", lines[4]);
        assert_eq!(lines[5], "ok bye");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn insert_rebuild_bumps_generation_and_keeps_ids() {
        let dir = tmpdir("rebuild");
        // Tiny staging capacity: build leaves staging nearly full, so a
        // couple of inserts force a carry (shard rebuild) mid-session.
        let pts = commands::generate("uniform-cube", 40, 2, 3).unwrap();
        let built =
            commands::index_build(&pts, Some(2), 1, 5, Some(4), SplitterKind::Random, Precision::Mixed, 0.0).unwrap();
        let snap = dir.join("tiny.snap");
        std::fs::write(&snap, &built.snapshot).unwrap();
        let input = "insert 9,9,0.5\ninsert 9.1,9.1,0.5\ninsert 9.2,9.2,0.5\n\
                     insert 9.3,9.3,0.5\n9,9\nstats\nquit\n";
        let mut out = Vec::new();
        let stats = run_daemon(
            Cursor::new(input.as_bytes().to_vec()),
            &mut out,
            snap.to_str().unwrap(),
            &DaemonConfig::default(),
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        // 4 inserts at staging capacity 4: at least one triggered a carry,
        // so the generation advanced past 1 and swaps counted it.
        assert!(stats.swaps >= 1, "a carry must bump the generation");
        let last_insert = lines[3];
        assert!(
            last_insert.starts_with("ok inserted id=43 n=44"),
            "{last_insert}"
        );
        assert!(!last_insert.ends_with("generation=0"), "{last_insert}");
        // The probe sees all four inserted balls, ids assigned in order.
        assert_eq!(lines[4], "0,4,40 41 42 43", "{}", lines[4]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_insert_and_delete_answer_errors() {
        let dir = tmpdir("badmut");
        let (sharded, _, _) = fixture_kind(&dir, Some(64));
        let input = "insert 1,2\ninsert 1,2,NaN\ninsert 1,2,-1\ndelete xyz\ndelete 99999\n\
                     insert 0.5,0.5,0.1\nquit\n";
        let mut out = Vec::new();
        run_daemon(
            Cursor::new(input.as_bytes().to_vec()),
            &mut out,
            &sharded,
            &DaemonConfig::default(),
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("error: insert:"), "{}", lines[0]);
        assert!(lines[1].starts_with("error: insert:"), "{}", lines[1]);
        assert!(lines[2].starts_with("error: insert:"), "{}", lines[2]);
        assert!(lines[3].starts_with("error: delete:"), "{}", lines[3]);
        assert_eq!(lines[4], "error: id 99999 not found");
        assert!(lines[5].starts_with("ok inserted id=400"), "{}", lines[5]);

        // A plain query-tree daemon rejects mutation lines outright.
        let (single, _, _) = fixture(&tmpdir("badmut-single"));
        let input = "insert 0.5,0.5,0.1\ndelete 3\nquit\n";
        let mut out = Vec::new();
        run_daemon(
            Cursor::new(input.as_bytes().to_vec()),
            &mut out,
            &single,
            &DaemonConfig::default(),
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(
            lines[0].starts_with("error:") && lines[0].contains("sharded"),
            "{}",
            lines[0]
        );
        assert!(
            lines[1].starts_with("error:") && lines[1].contains("sharded"),
            "{}",
            lines[1]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
