//! Concurrent per-point neighbor lists for the parallel recursions.
//!
//! The divide-and-conquer algorithms write neighbor lists from parallel
//! recursive calls. The index sets touched by sibling calls are disjoint,
//! so there is never real contention — but Rust cannot see that statically
//! across arbitrary index partitions. Instead of a `Mutex<Vec<_>>` per
//! point (two pointer chases plus an allocation per list), the store is a
//! single flat row-major `n × k` buffer guarded by one spinlock byte per
//! row, with the k-th-neighbor distance cached in an atomic so the hot
//! reject path (`candidate worse than current tail`) never takes the lock.
//! The finished store converts into a plain [`KnnResult`] without copying
//! the entry buffer.

use crate::knn::{merge_into_row, KnnResult, Neighbor};
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};

/// Flat, lock-striped neighbor lists; `Sync` handle passed to parallel
/// recursions.
pub(crate) struct SharedLists {
    k: usize,
    /// Row-major `n × k` entry buffer; row `i` is `entries[i*k .. (i+1)*k]`
    /// with `lens[i]` valid prefix entries, guarded by `locks[i]`.
    entries: Vec<UnsafeCell<Neighbor>>,
    lens: Vec<AtomicU32>,
    locks: Vec<AtomicBool>,
    /// Cached squared radius per row as f64 bits: `INFINITY` until the row
    /// is full, then the tail entry's `dist_sq`. During any window where
    /// concurrent merges may target a row, this value only decreases, so a
    /// stale read can only *over-admit* a candidate (which the locked merge
    /// then rejects) — never wrongly reject one.
    ///
    /// [`Self::set_list`] *can* raise the value back to `INFINITY`
    /// (overwriting a full row with a short list), so the monotonicity
    /// above holds only because of the call-window discipline: `set_list`
    /// runs exclusively in leaf base-cases, and every `merge_candidate`
    /// happens during corrections at an *ancestor* node, i.e. after
    /// `rayon::join` on the subtree containing the leaf has returned.
    /// `join`'s happens-before edge orders the leaf's `set_list` before any
    /// merge that can target the row, so no merge window ever observes a
    /// raise. The `merged` flags below turn a violation of that discipline
    /// into a debug panic instead of a silent wrong-reject race.
    radius_bits: Vec<AtomicU64>,
    /// Debug builds only: set once row `i` has received any
    /// `merge_candidate` attempt (even a fast-rejected one — the reject
    /// consumed the cached radius). `set_list` asserts the flag is still
    /// clear, pinning the "set_list strictly precedes the row's merge
    /// window" invariant at runtime.
    #[cfg(debug_assertions)]
    merged: Vec<AtomicBool>,
}

// SAFETY: every access to a row of `entries` happens while holding that
// row's spinlock (see `lock`/`unlock`); `lens`/`radius_bits` are atomics.
unsafe impl Sync for SharedLists {}

impl SharedLists {
    pub(crate) fn new(n: usize, k: usize) -> Self {
        // `k = 0` is rejected with a typed error at every public entry
        // point (`validate_k`); this is an internal invariant only.
        debug_assert!(k > 0);
        SharedLists {
            k,
            entries: (0..n * k)
                .map(|_| {
                    UnsafeCell::new(Neighbor {
                        idx: 0,
                        dist_sq: 0.0,
                    })
                })
                .collect(),
            lens: (0..n).map(|_| AtomicU32::new(0)).collect(),
            locks: (0..n).map(|_| AtomicBool::new(false)).collect(),
            radius_bits: (0..n)
                .map(|_| AtomicU64::new(f64::INFINITY.to_bits()))
                .collect(),
            #[cfg(debug_assertions)]
            merged: (0..n).map(|_| AtomicBool::new(false)).collect(),
        }
    }

    pub(crate) fn k(&self) -> usize {
        self.k
    }

    #[inline]
    fn lock(&self, i: usize) {
        while self.locks[i]
            .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            std::hint::spin_loop();
        }
    }

    #[inline]
    fn unlock(&self, i: usize) {
        self.locks[i].store(false, Ordering::Release);
    }

    /// Row `i` as a mutable slice.
    ///
    /// # Safety
    /// Caller must hold lock `i` for the lifetime of the returned slice.
    #[inline]
    #[allow(clippy::mut_from_ref)]
    unsafe fn row_mut(&self, i: usize) -> &mut [Neighbor] {
        std::slice::from_raw_parts_mut(self.entries[i * self.k].get(), self.k)
    }

    /// Replace the list of point `i` (base-case solve); truncates to `k`.
    ///
    /// Must be called *before* any [`Self::merge_candidate`] targets row
    /// `i`: a short list resets the cached radius to `INFINITY`, which
    /// would break the only-decreases contract the lock-free fast reject
    /// relies on if a merge window were already open. The recursion
    /// guarantees this ordering structurally (leaf solves happen-before
    /// ancestor corrections via `rayon::join`); debug builds assert it.
    pub(crate) fn set_list(&self, i: usize, list: &[Neighbor]) {
        #[cfg(debug_assertions)]
        debug_assert!(
            !self.merged[i].load(Ordering::Relaxed),
            "SharedLists::set_list on row {i} after merge_candidate opened its merge window; \
             this may raise the cached radius mid-race and break the fast-reject invariant"
        );
        let m = list.len().min(self.k);
        self.lock(i);
        let row = unsafe { self.row_mut(i) };
        row[..m].copy_from_slice(&list[..m]);
        let r = if m == self.k {
            row[self.k - 1].dist_sq
        } else {
            f64::INFINITY
        };
        self.lens[i].store(m as u32, Ordering::Relaxed);
        self.radius_bits[i].store(r.to_bits(), Ordering::Relaxed);
        self.unlock(i);
    }

    /// Squared k-neighborhood radius of point `i`
    /// (`INFINITY` when fewer than `k` neighbors are known).
    pub(crate) fn radius_sq(&self, i: usize) -> f64 {
        f64::from_bits(self.radius_bits[i].load(Ordering::Acquire))
    }

    /// Offer a candidate; same semantics as [`KnnResult::merge_candidate`].
    pub(crate) fn merge_candidate(&self, i: usize, j: u32, dist_sq: f64) -> bool {
        debug_assert_ne!(i as u32, j);
        // Mark the row's merge window open before the fast reject: even a
        // rejected offer consumed the cached radius, so a later set_list
        // raising it would already be a (debug-checked) ordering violation.
        #[cfg(debug_assertions)]
        self.merged[i].store(true, Ordering::Relaxed);
        // Lock-free fast reject: strictly worse than the cached tail
        // distance can never be inserted (the cache only shrinks while
        // merges race, so over-admission is the only possible staleness).
        if dist_sq > f64::from_bits(self.radius_bits[i].load(Ordering::Relaxed)) {
            return false;
        }
        self.lock(i);
        let len = self.lens[i].load(Ordering::Relaxed) as usize;
        let row = unsafe { self.row_mut(i) };
        let inserted = merge_into_row(row, len, j, dist_sq);
        if let Some(new_len) = inserted {
            self.lens[i].store(new_len as u32, Ordering::Relaxed);
            if new_len == self.k {
                self.radius_bits[i].store(row[self.k - 1].dist_sq.to_bits(), Ordering::Relaxed);
            }
        }
        self.unlock(i);
        inserted.is_some()
    }

    /// Batched [`SharedLists::merge_candidate`]: offer `cands[j]` at
    /// distance `dists[j]` for every `j` with `dists[j] < cap_sq` (the
    /// caller's crossing-ball radius cap, strict — matching the Fast
    /// Correction merge condition).
    ///
    /// The cached row radius is loaded **once per batch** instead of once
    /// per candidate, and refreshed only after a merge actually ran. This
    /// is sound because the cached radius is monotone non-increasing while
    /// the merge window is open: a stale (larger) value can only
    /// *over*-admit, and `merge_candidate` re-checks under the row lock, so
    /// the resulting lists are identical to the per-candidate path.
    pub(crate) fn merge_batch(&self, i: usize, cands: &[u32], dists: &[f64], cap_sq: f64) {
        debug_assert_eq!(cands.len(), dists.len());
        let mut cached = f64::from_bits(self.radius_bits[i].load(Ordering::Relaxed));
        for (&q, &d) in cands.iter().zip(dists) {
            // Same admission predicate as merge_candidate's fast reject
            // (`> cached` rejects, so `<= cached` admits).
            if d < cap_sq && d <= cached {
                self.merge_candidate(i, q, d);
                cached = f64::from_bits(self.radius_bits[i].load(Ordering::Relaxed));
            }
        }
    }

    /// Unwrap into a plain result once all parallel work is done. The entry
    /// buffer is handed over in place — no per-point copies.
    pub(crate) fn into_result(self) -> KnnResult {
        let SharedLists {
            k, entries, lens, ..
        } = self;
        let lens: Vec<u32> = lens.into_iter().map(AtomicU32::into_inner).collect();
        // `UnsafeCell<T>` is repr(transparent) over `T`, so the buffer can
        // be reinterpreted without copying.
        let entries: Vec<Neighbor> = {
            let mut v = std::mem::ManuallyDrop::new(entries);
            unsafe { Vec::from_raw_parts(v.as_mut_ptr() as *mut Neighbor, v.len(), v.capacity()) }
        };
        KnnResult::from_flat_parts(k, lens, entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_and_convert() {
        let s = SharedLists::new(3, 2);
        s.merge_candidate(0, 1, 4.0);
        s.merge_candidate(0, 2, 1.0);
        assert_eq!(s.radius_sq(0), 4.0);
        let r = s.into_result();
        assert_eq!(r.neighbors(0)[0].idx, 2);
        assert_eq!(r.neighbors(0)[1].idx, 1);
        r.check_invariants().unwrap();
    }

    #[test]
    fn radius_infinite_until_k_known() {
        let s = SharedLists::new(2, 3);
        assert_eq!(s.radius_sq(0), f64::INFINITY);
        s.merge_candidate(0, 1, 1.0);
        assert_eq!(s.radius_sq(0), f64::INFINITY);
    }

    #[test]
    fn set_list_updates_radius_cache() {
        let s = SharedLists::new(2, 2);
        s.set_list(
            0,
            &[
                Neighbor {
                    idx: 1,
                    dist_sq: 1.0,
                },
                Neighbor {
                    idx: 2,
                    dist_sq: 3.0,
                },
            ],
        );
        assert_eq!(s.radius_sq(0), 3.0);
        // A closer candidate shrinks the cached radius.
        assert!(s.merge_candidate(0, 3, 2.0));
        assert_eq!(s.radius_sq(0), 2.0);
        // A strictly worse candidate is rejected on the fast path.
        assert!(!s.merge_candidate(0, 4, 5.0));
        s.set_list(
            1,
            &[Neighbor {
                idx: 0,
                dist_sq: 1.0,
            }],
        );
        assert_eq!(s.radius_sq(1), f64::INFINITY, "short list is unbounded");
    }

    #[test]
    fn concurrent_merges_preserve_invariants() {
        let s = SharedLists::new(1, 4);
        std::thread::scope(|scope| {
            for t in 0..8 {
                let s = &s;
                scope.spawn(move || {
                    for j in 0..100u32 {
                        let id = 1 + t * 100 + j;
                        s.merge_candidate(0, id, (id % 17) as f64);
                    }
                });
            }
        });
        let r = s.into_result();
        r.check_invariants().unwrap();
        assert_eq!(r.neighbors(0).len(), 4);
        // The four best candidates have dist 0 (ids ≡ 0 mod 17).
        assert!(r.neighbors(0).iter().all(|n| n.dist_sq == 0.0));
    }

    /// Hammer a single row right at the k boundary: many threads racing to
    /// fill the last slots, with duplicate candidate ids offered from every
    /// thread. The final row must equal what a sequential merge of the same
    /// candidate multiset produces.
    #[test]
    fn stress_k_boundary_and_duplicates() {
        const THREADS: u32 = 8;
        const PER_THREAD: u32 = 500;
        let k = 8;
        let s = SharedLists::new(1, k);
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let s = &s;
                scope.spawn(move || {
                    for j in 0..PER_THREAD {
                        // Every thread offers the same candidate set, so
                        // 7 of 8 offers of each id are duplicates racing
                        // against the insert of the first.
                        let id = 1 + (j % 64);
                        let d = ((id * 37) % 101) as f64;
                        s.merge_candidate(0, id, d);
                        // Plus a thread-unique id to churn the tail.
                        let uid = 100 + t * PER_THREAD + j;
                        s.merge_candidate(0, uid, 50.0 + (uid % 13) as f64);
                    }
                });
            }
        });
        let got = s.into_result();
        got.check_invariants().unwrap();

        // Sequential oracle over the same candidate multiset.
        let mut oracle = KnnResult::new(1, k);
        for t in 0..THREADS {
            for j in 0..PER_THREAD {
                let id = 1 + (j % 64);
                oracle.merge_candidate(0, id, ((id * 37) % 101) as f64);
                let uid = 100 + t * PER_THREAD + j;
                oracle.merge_candidate(0, uid, 50.0 + (uid % 13) as f64);
            }
        }
        assert_eq!(got.neighbors(0), oracle.neighbors(0));
    }

    /// Pin the call-window invariant: overwriting a row *after* its merge
    /// window opened could raise the cached radius back to `INFINITY`
    /// mid-race, breaking the only-decreases contract the lock-free fast
    /// reject depends on. Debug builds must refuse it loudly. (On the
    /// pre-guard code this sequence was silently accepted.)
    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "set_list on row 0 after merge_candidate")]
    fn set_list_after_merge_window_is_rejected_in_debug() {
        let s = SharedLists::new(1, 1);
        assert!(s.merge_candidate(0, 1, 2.0));
        // Row 0 is full (radius 2.0); this overwrite with a short list
        // would publish radius INFINITY into an already-open merge window.
        s.set_list(0, &[]);
    }

    /// The radius cache must be non-increasing while a row's merge window
    /// is open, no matter how merges interleave: a reader samples the
    /// radius concurrently with racing writers and asserts monotonicity.
    #[test]
    fn stress_radius_cache_monotone_during_merge_window() {
        use std::sync::atomic::AtomicBool as Flag;
        let k = 4;
        let s = SharedLists::new(1, k);
        let done = Flag::new(false);
        std::thread::scope(|scope| {
            let writers: Vec<_> = (0..4u32)
                .map(|t| {
                    let s = &s;
                    scope.spawn(move || {
                        // Strictly decreasing candidate quality over time
                        // so the cache keeps moving while threads race.
                        for j in 0..2000u32 {
                            let id = 1 + t * 2000 + j;
                            s.merge_candidate(0, id, 4000.0 - j as f64 + (t as f64) * 0.25);
                        }
                    })
                })
                .collect();
            let (s, done) = (&s, &done);
            let reader = scope.spawn(move || {
                let mut last = f64::INFINITY;
                while !done.load(Ordering::Acquire) {
                    let r = s.radius_sq(0);
                    assert!(
                        r <= last,
                        "radius cache increased mid-window: {last} -> {r}"
                    );
                    last = r;
                    std::hint::spin_loop();
                }
                // One deterministic final sample: the writers are done, so
                // the row is full and the cache must be finite.
                let r = s.radius_sq(0);
                assert!(r <= last, "final radius {r} above last observed {last}");
                r
            });
            for w in writers {
                w.join().unwrap();
            }
            done.store(true, Ordering::Release);
            let final_seen = reader.join().unwrap();
            assert!(final_seen.is_finite(), "reader never saw a full row");
        });
        let r = s.into_result();
        r.check_invariants().unwrap();
        assert_eq!(r.neighbors(0).len(), k);
    }

    /// Race `set_list` on one row against merges on another: rows are
    /// independent, so neither interferes with the other.
    #[test]
    fn stress_disjoint_rows_do_not_interfere() {
        let s = SharedLists::new(2, 4);
        std::thread::scope(|scope| {
            let s0 = &s;
            scope.spawn(move || {
                let base = [
                    Neighbor {
                        idx: 10,
                        dist_sq: 1.0,
                    },
                    Neighbor {
                        idx: 11,
                        dist_sq: 2.0,
                    },
                    Neighbor {
                        idx: 12,
                        dist_sq: 3.0,
                    },
                    Neighbor {
                        idx: 13,
                        dist_sq: 4.0,
                    },
                ];
                for _ in 0..1000 {
                    s0.set_list(0, &base);
                }
            });
            let s1 = &s;
            scope.spawn(move || {
                for j in 0..1000u32 {
                    s1.merge_candidate(1, 2 + j, (j % 29) as f64);
                }
            });
        });
        let r = s.into_result();
        r.check_invariants().unwrap();
        assert_eq!(r.neighbors(0).len(), 4);
        assert_eq!(r.neighbors(0)[0].idx, 10);
        assert_eq!(r.neighbors(1).len(), 4);
        assert!(r.neighbors(1).iter().all(|n| n.dist_sq == 0.0));
    }
}
