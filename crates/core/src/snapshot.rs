//! Persistent index snapshots: a versioned on-disk format for
//! [`QueryTree`], [`PartitionTree`], and [`ShardedIndex`].
//!
//! BENCH_query_throughput.json shows the query structure answering ~1M
//! probes/s but costing ~900 ms to build — so a process that rebuilds on
//! startup pays three orders of magnitude more than any request it will
//! ever serve. A snapshot turns that startup into a validate + copy of
//! flat columns.
//!
//! ## Container layout
//!
//! Hand-rolled (no serde — the build is offline), every field explicit
//! little-endian fixed width:
//!
//! ```text
//! header   magic [u8; 8] = "SEPDCSNP"
//!          version       u32   (SNAPSHOT_VERSION)
//!          kind          u32   (1 = query tree, 2 = partition tree,
//!                               3 = sharded index)
//!          dim           u32   (const D of the tree)
//!          section_count u32
//! table    section_count × { tag [u8; 4], offset u64, len u64, checksum u64 }
//! bodies   concatenated section bodies, in table order
//! ```
//!
//! `offset` is absolute from the start of the file; `checksum` is FNV-1a 64
//! over the body bytes. Flat arrays inside a body are length-prefixed
//! (`u64` element count, then the elements); `f64` values are stored as
//! the little-endian bytes of their IEEE-754 bit pattern, so floats
//! round-trip bit-exactly and a loaded tree answers byte-identically to
//! the tree that was saved (the serve determinism contract extends across
//! the save/load boundary).
//!
//! ## Trust model
//!
//! Snapshot bytes are adversarial input — a file on disk anyone may have
//! truncated, bit-flipped, or crafted. Loading therefore never panics:
//! every structural defect (bad magic, version drift, checksum mismatch,
//! out-of-bounds child index or leaf range, non-finite geometry, orphan
//! or doubly-referenced nodes) maps to a typed [`SnapshotError`], and the
//! query-tree rebuild is iterative (children strictly precede parents in
//! the node array), so a crafted deep chain cannot overflow the stack.

use crate::error::SepdcError;
use crate::partition_tree::{PartitionNode, PartitionTree};
use crate::query::{QNode, QueryTree, QueryTreeConfig, QueryTreeStats};
use crate::sharded::{ShardedConfig, ShardedIndex};
use crate::config::Precision;
use crate::splitter::SplitterKind;
use sepdc_geom::aabb::Aabb;
use sepdc_geom::ball::Ball;
use sepdc_geom::halfspace::Hyperplane;
use sepdc_geom::point::Point;
use sepdc_geom::shape::Separator;
use sepdc_geom::soa::SoaBalls;
use sepdc_geom::sphere::Sphere;
use sepdc_scan::CostProfile;

/// The 8-byte magic at offset 0 of every snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"SEPDCSNP";

/// Current container version. Bumped on any layout change; loading a
/// different version is [`SnapshotError::UnsupportedVersion`], never a
/// best-effort guess.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Fixed header length: magic + version + kind + dim + section_count.
pub const HEADER_LEN: usize = 8 + 4 + 4 + 4 + 4;

/// Length of one section-table entry: tag + offset + len + checksum.
pub const TABLE_ENTRY_LEN: usize = 4 + 8 + 8 + 8;

/// What structure a snapshot holds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SnapshotKind {
    /// A [`QueryTree`] (§3 neighborhood query structure + SoA ball columns).
    QueryTree,
    /// A [`PartitionTree`] (§6 arena tree + permutation + optional bounds).
    PartitionTree,
    /// A [`ShardedIndex`] (logarithmic-method shard manifest wrapping
    /// nested query-tree snapshots, tombstone bitmaps, and the staging
    /// array).
    ShardedIndex,
}

impl SnapshotKind {
    fn code(self) -> u32 {
        match self {
            SnapshotKind::QueryTree => 1,
            SnapshotKind::PartitionTree => 2,
            SnapshotKind::ShardedIndex => 3,
        }
    }

    fn from_code(code: u32) -> Option<Self> {
        match code {
            1 => Some(SnapshotKind::QueryTree),
            2 => Some(SnapshotKind::PartitionTree),
            3 => Some(SnapshotKind::ShardedIndex),
            _ => None,
        }
    }

    /// Human-readable kind name (`index inspect` output).
    pub fn name(self) -> &'static str {
        match self {
            SnapshotKind::QueryTree => "query-tree",
            SnapshotKind::PartitionTree => "partition-tree",
            SnapshotKind::ShardedIndex => "sharded-index",
        }
    }
}

/// Why a snapshot failed to decode. Every variant is a structural fact
/// about the bytes, suitable for logs and daemon error responses.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// The file ended before a required field. `context` names what was
    /// being read.
    Truncated {
        /// What was being decoded when the bytes ran out.
        context: &'static str,
    },
    /// The first 8 bytes are not [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// The container version differs from [`SNAPSHOT_VERSION`].
    UnsupportedVersion {
        /// Version found in the header.
        found: u32,
        /// Version this build reads.
        expected: u32,
    },
    /// The kind code is not a known [`SnapshotKind`].
    BadKind {
        /// The unrecognized kind code.
        found: u32,
    },
    /// The snapshot holds a different structure than the caller asked for.
    KindMismatch {
        /// Kind found in the header.
        found: SnapshotKind,
        /// Kind the load function expected.
        expected: SnapshotKind,
    },
    /// The snapshot's dimension differs from the `const D` of the load
    /// call site.
    DimensionMismatch {
        /// Dimension in the header.
        found: u32,
        /// Dimension the caller instantiated.
        expected: u32,
    },
    /// A required section is absent from the table.
    MissingSection {
        /// Tag of the missing section.
        tag: &'static str,
    },
    /// A section body's FNV-1a 64 does not match its table entry.
    ChecksumMismatch {
        /// Tag of the damaged section.
        tag: &'static str,
    },
    /// A section decoded but its contents are structurally invalid
    /// (out-of-bounds index, non-finite geometry, inconsistent counts…).
    Corrupt {
        /// Tag of the offending section.
        tag: &'static str,
        /// What was wrong.
        detail: String,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Truncated { context } => {
                write!(f, "truncated while reading {context}")
            }
            SnapshotError::BadMagic => write!(f, "bad magic (not a sepdc snapshot)"),
            SnapshotError::UnsupportedVersion { found, expected } => {
                write!(
                    f,
                    "unsupported snapshot version {found} (expected {expected})"
                )
            }
            SnapshotError::BadKind { found } => write!(f, "unknown snapshot kind code {found}"),
            SnapshotError::KindMismatch { found, expected } => {
                write!(
                    f,
                    "snapshot holds a {} but a {} was requested",
                    found.name(),
                    expected.name()
                )
            }
            SnapshotError::DimensionMismatch { found, expected } => {
                write!(
                    f,
                    "snapshot dimension {found} != requested dimension {expected}"
                )
            }
            SnapshotError::MissingSection { tag } => write!(f, "missing section {tag:?}"),
            SnapshotError::ChecksumMismatch { tag } => {
                write!(f, "checksum mismatch in section {tag:?}")
            }
            SnapshotError::Corrupt { tag, detail } => {
                write!(f, "corrupt section {tag:?}: {detail}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// FNV-1a 64-bit — the per-section checksum. Public so tests (and external
/// tools) can re-seal a section after patching bytes.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------------
// Section tags
// ---------------------------------------------------------------------------

const TAG_META: &[u8; 4] = b"META";
const TAG_BALL: &[u8; 4] = b"BALL";
const TAG_NODE: &[u8; 4] = b"NODE";
const TAG_LFID: &[u8; 4] = b"LFID";
const TAG_PNOD: &[u8; 4] = b"PNOD";
const TAG_PERM: &[u8; 4] = b"PERM";
const TAG_BNDS: &[u8; 4] = b"BNDS";
const TAG_SMET: &[u8; 4] = b"SMET";
const TAG_SHRD: &[u8; 4] = b"SHRD";
const TAG_GIDS: &[u8; 4] = b"GIDS";
const TAG_TOMB: &[u8; 4] = b"TOMB";
const TAG_STAG: &[u8; 4] = b"STAG";

const NODE_LEAF: u8 = 0;
const NODE_SPHERE: u8 = 1;
const NODE_HALFSPACE: u8 = 2;

// ---------------------------------------------------------------------------
// Writer primitives
// ---------------------------------------------------------------------------

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// Length-prefixed flat `f64` array.
fn put_f64_array(buf: &mut Vec<u8>, vals: &[f64]) {
    put_u64(buf, vals.len() as u64);
    for &v in vals {
        put_f64(buf, v);
    }
}

/// Length-prefixed flat `u32` array.
fn put_u32_array(buf: &mut Vec<u8>, vals: &[u32]) {
    put_u64(buf, vals.len() as u64);
    for &v in vals {
        put_u32(buf, v);
    }
}

/// Length-prefixed flat `u64` array.
fn put_u64_array(buf: &mut Vec<u8>, vals: &[u64]) {
    put_u64(buf, vals.len() as u64);
    for &v in vals {
        put_u64(buf, v);
    }
}

/// Assemble header + section table + bodies from `(tag, body)` pairs.
fn assemble_container(kind: SnapshotKind, dim: u32, sections: &[(&[u8; 4], Vec<u8>)]) -> Vec<u8> {
    let table_len = sections.len() * TABLE_ENTRY_LEN;
    let bodies_len: usize = sections.iter().map(|(_, b)| b.len()).sum();
    let mut out = Vec::with_capacity(HEADER_LEN + table_len + bodies_len);
    out.extend_from_slice(&SNAPSHOT_MAGIC);
    put_u32(&mut out, SNAPSHOT_VERSION);
    put_u32(&mut out, kind.code());
    put_u32(&mut out, dim);
    put_u32(&mut out, sections.len() as u32);
    let mut offset = (HEADER_LEN + table_len) as u64;
    for (tag, body) in sections {
        out.extend_from_slice(&tag[..]);
        put_u64(&mut out, offset);
        put_u64(&mut out, body.len() as u64);
        put_u64(&mut out, fnv1a64(body));
        offset += body.len() as u64;
    }
    for (_, body) in sections {
        out.extend_from_slice(body);
    }
    out
}

// ---------------------------------------------------------------------------
// Reader primitives
// ---------------------------------------------------------------------------

/// Bounds-checked little-endian reader over one section body.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    tag: &'static str,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8], tag: &'static str) -> Self {
        Cursor { bytes, pos: 0, tag }
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.remaining() < n {
            return Err(SnapshotError::Truncated { context: self.tag });
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a length prefix for elements of `elem_size` bytes, rejecting
    /// counts the remaining bytes cannot possibly hold — an adversarial
    /// prefix must not drive a huge allocation.
    fn array_len(&mut self, elem_size: usize) -> Result<usize, SnapshotError> {
        let count = self.u64()?;
        let fits = usize::try_from(count).ok().filter(|&n| {
            n.checked_mul(elem_size)
                .is_some_and(|b| b <= self.remaining())
        });
        fits.ok_or(SnapshotError::Corrupt {
            tag: self.tag,
            detail: format!("array length {count} exceeds section size"),
        })
    }

    fn f64_array(&mut self) -> Result<Vec<f64>, SnapshotError> {
        let n = self.array_len(8)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.f64()?);
        }
        Ok(out)
    }

    fn u32_array(&mut self) -> Result<Vec<u32>, SnapshotError> {
        let n = self.array_len(4)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.u32()?);
        }
        Ok(out)
    }

    fn u64_array(&mut self) -> Result<Vec<u64>, SnapshotError> {
        let n = self.array_len(8)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.u64()?);
        }
        Ok(out)
    }

    /// Reject trailing bytes — a valid writer never leaves any.
    fn finish(&self) -> Result<(), SnapshotError> {
        if self.remaining() != 0 {
            return Err(SnapshotError::Corrupt {
                tag: self.tag,
                detail: format!("{} trailing bytes", self.remaining()),
            });
        }
        Ok(())
    }
}

fn corrupt(tag: &'static str, detail: impl Into<String>) -> SnapshotError {
    SnapshotError::Corrupt {
        tag,
        detail: detail.into(),
    }
}

// ---------------------------------------------------------------------------
// Container parsing (header + table)
// ---------------------------------------------------------------------------

struct Section<'a> {
    tag: [u8; 4],
    offset: u64,
    body: &'a [u8],
    checksum: u64,
}

struct Container<'a> {
    kind: SnapshotKind,
    dim: u32,
    sections: Vec<Section<'a>>,
}

fn parse_container(bytes: &[u8]) -> Result<Container<'_>, SnapshotError> {
    if bytes.len() < 8 {
        return Err(SnapshotError::Truncated { context: "magic" });
    }
    if bytes[..8] != SNAPSHOT_MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    if bytes.len() < HEADER_LEN {
        return Err(SnapshotError::Truncated { context: "header" });
    }
    let word = |at: usize| u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap());
    let version = word(8);
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotError::UnsupportedVersion {
            found: version,
            expected: SNAPSHOT_VERSION,
        });
    }
    let kind_code = word(12);
    let kind =
        SnapshotKind::from_code(kind_code).ok_or(SnapshotError::BadKind { found: kind_code })?;
    let dim = word(16);
    let count = word(20) as usize;
    let table_end = HEADER_LEN
        .checked_add(
            count
                .checked_mul(TABLE_ENTRY_LEN)
                .ok_or(SnapshotError::Truncated {
                    context: "section table",
                })?,
        )
        .ok_or(SnapshotError::Truncated {
            context: "section table",
        })?;
    if bytes.len() < table_end {
        return Err(SnapshotError::Truncated {
            context: "section table",
        });
    }
    let mut sections = Vec::with_capacity(count);
    for i in 0..count {
        let at = HEADER_LEN + i * TABLE_ENTRY_LEN;
        let tag: [u8; 4] = bytes[at..at + 4].try_into().unwrap();
        let offset = u64::from_le_bytes(bytes[at + 4..at + 12].try_into().unwrap());
        let len = u64::from_le_bytes(bytes[at + 12..at + 20].try_into().unwrap());
        let checksum = u64::from_le_bytes(bytes[at + 20..at + 28].try_into().unwrap());
        let start = usize::try_from(offset).ok();
        let body = start
            .zip(usize::try_from(len).ok())
            .and_then(|(s, l)| s.checked_add(l).map(|end| (s, end)))
            .filter(|&(s, end)| s >= table_end && end <= bytes.len())
            .map(|(s, end)| &bytes[s..end])
            .ok_or(SnapshotError::Truncated {
                context: "section body",
            })?;
        sections.push(Section {
            tag,
            offset,
            body,
            checksum,
        });
    }
    Ok(Container {
        kind,
        dim,
        sections,
    })
}

impl<'a> Container<'a> {
    /// Find a section by tag and verify its checksum.
    fn section(
        &self,
        tag: &'static [u8; 4],
        name: &'static str,
    ) -> Result<&'a [u8], SnapshotError> {
        let s = self
            .sections
            .iter()
            .find(|s| &s.tag == tag)
            .ok_or(SnapshotError::MissingSection { tag: name })?;
        if fnv1a64(s.body) != s.checksum {
            return Err(SnapshotError::ChecksumMismatch { tag: name });
        }
        Ok(s.body)
    }
}

// ---------------------------------------------------------------------------
// Inspection
// ---------------------------------------------------------------------------

/// One section-table row, as reported by [`inspect`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SectionInfo {
    /// Four-character section tag.
    pub tag: String,
    /// Absolute byte offset of the body.
    pub offset: u64,
    /// Body length in bytes.
    pub len: u64,
    /// FNV-1a 64 checksum recorded in the table (verified by `inspect`).
    pub checksum: u64,
}

/// Validated summary of a snapshot's container, without reconstructing
/// the tree — what `sepdc index inspect` prints.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SnapshotInfo {
    /// Container version.
    pub version: u32,
    /// What structure the snapshot holds.
    pub kind: SnapshotKind,
    /// Dimension `D` of the stored tree.
    pub dim: u32,
    /// Total file length in bytes.
    pub total_len: u64,
    /// Section table, in file order. Checksums have been verified.
    pub sections: Vec<SectionInfo>,
}

/// Parse and validate a snapshot's header, section table, and every
/// section checksum — without reconstructing the structure.
pub fn inspect(bytes: &[u8]) -> Result<SnapshotInfo, SepdcError> {
    let c = parse_container(bytes)?;
    let mut sections = Vec::with_capacity(c.sections.len());
    for s in &c.sections {
        if fnv1a64(s.body) != s.checksum {
            // The tag came off disk; report it lossily but typed.
            return Err(SnapshotError::ChecksumMismatch {
                tag: tag_name(&s.tag),
            }
            .into());
        }
        sections.push(SectionInfo {
            tag: String::from_utf8_lossy(&s.tag).into_owned(),
            offset: s.offset,
            len: s.body.len() as u64,
            checksum: s.checksum,
        });
    }
    Ok(SnapshotInfo {
        version: SNAPSHOT_VERSION,
        kind: c.kind,
        dim: c.dim,
        total_len: bytes.len() as u64,
        sections,
    })
}

/// Map an on-disk tag to its static name (unknown tags report as `"????"`).
fn tag_name(tag: &[u8; 4]) -> &'static str {
    match tag {
        TAG_META => "META",
        TAG_BALL => "BALL",
        TAG_NODE => "NODE",
        TAG_LFID => "LFID",
        TAG_PNOD => "PNOD",
        TAG_PERM => "PERM",
        TAG_BNDS => "BNDS",
        TAG_SMET => "SMET",
        TAG_SHRD => "SHRD",
        TAG_GIDS => "GIDS",
        TAG_TOMB => "TOMB",
        TAG_STAG => "STAG",
        _ => "????",
    }
}

// ---------------------------------------------------------------------------
// QueryTree save/load
// ---------------------------------------------------------------------------

/// Serialize a [`QueryTree`] into snapshot bytes.
///
/// Sections: `META` (seed, counts, stats, cost profile), `BALL` (the SoA
/// center columns plus radii — written straight from the columnar arena,
/// no transpose), `NODE` (the tree flattened postorder, children before
/// parents, root last), `LFID` (concatenated leaf ball-id lists).
pub fn save_query_tree<const D: usize>(tree: &QueryTree<D>) -> Vec<u8> {
    let stats = tree.stats();
    let cost = tree.build_cost();

    let mut meta = Vec::with_capacity(15 * 8);
    put_u64(&mut meta, tree.run_report().seed);
    put_u64(&mut meta, tree.len() as u64);
    for v in [
        stats.height as u64,
        stats.leaves as u64,
        stats.internals as u64,
        stats.stored_balls as u64,
        stats.candidates,
        stats.fallbacks as u64,
        stats.forced_leaves as u64,
        cost.work,
        cost.depth,
        cost.scan_ops,
        cost.separator_candidates,
        cost.punts,
        // Appended last so snapshots written before the splitter existed
        // (14-word META) still load: absent ⇒ the Random default.
        tree.splitter().code(),
        // Optional words 16/17: precision tier and ε (raw f64 bits).
        // Absent on pre-precision snapshots ⇒ Mixed, ε = 0 (DESIGN.md §17).
        tree.precision().code(),
        tree.epsilon().to_bits(),
    ] {
        put_u64(&mut meta, v);
    }

    // Ball columns, straight from the SoA arena (already columnar).
    let soa = tree.soa_balls();
    let mut ball = Vec::new();
    for d in 0..D {
        put_f64_array(&mut ball, soa.centers().col(d));
    }
    let radii: Vec<f64> = tree.balls().iter().map(|b| b.radius).collect();
    put_f64_array(&mut ball, &radii);

    // Flatten the boxed tree: iterative postorder, children emitted
    // before their parent, root last (the PartitionTree arena convention).
    enum Frame<'a, const D: usize> {
        Visit(&'a QNode<D>),
        Emit(&'a QNode<D>),
    }
    let mut node_buf = Vec::new();
    let mut leaf_ids: Vec<u32> = Vec::new();
    let mut idx_stack: Vec<u32> = Vec::new();
    let mut count: u64 = 0;
    let mut stack = vec![Frame::Visit(tree.root())];
    while let Some(frame) = stack.pop() {
        match frame {
            Frame::Visit(n) => match n {
                QNode::Leaf { ball_ids } => {
                    node_buf.push(NODE_LEAF);
                    put_u64(&mut node_buf, leaf_ids.len() as u64);
                    put_u64(&mut node_buf, ball_ids.len() as u64);
                    leaf_ids.extend_from_slice(ball_ids);
                    idx_stack.push(count as u32);
                    count += 1;
                }
                QNode::Internal { left, right, .. } => {
                    stack.push(Frame::Emit(n));
                    stack.push(Frame::Visit(right));
                    stack.push(Frame::Visit(left));
                }
            },
            Frame::Emit(n) => {
                let QNode::Internal { sep, .. } = n else {
                    unreachable!("Emit frames are only pushed for internal nodes")
                };
                let right = idx_stack.pop().expect("postorder child index");
                let left = idx_stack.pop().expect("postorder child index");
                match sep {
                    Separator::Sphere(s) => {
                        node_buf.push(NODE_SPHERE);
                        put_u32(&mut node_buf, left);
                        put_u32(&mut node_buf, right);
                        for d in 0..D {
                            put_f64(&mut node_buf, s.center.0[d]);
                        }
                        put_f64(&mut node_buf, s.radius);
                    }
                    Separator::Halfspace(h) => {
                        node_buf.push(NODE_HALFSPACE);
                        put_u32(&mut node_buf, left);
                        put_u32(&mut node_buf, right);
                        for d in 0..D {
                            put_f64(&mut node_buf, h.normal.0[d]);
                        }
                        put_f64(&mut node_buf, h.offset);
                    }
                }
                idx_stack.push(count as u32);
                count += 1;
            }
        }
    }
    let mut node = Vec::with_capacity(8 + node_buf.len());
    put_u64(&mut node, count);
    node.extend_from_slice(&node_buf);

    let mut lfid = Vec::new();
    put_u32_array(&mut lfid, &leaf_ids);

    assemble_container(
        SnapshotKind::QueryTree,
        D as u32,
        &[
            (TAG_META, meta),
            (TAG_BALL, ball),
            (TAG_NODE, node),
            (TAG_LFID, lfid),
        ],
    )
}

/// Decoded `META` section of a query-tree snapshot.
struct QueryMeta {
    seed: u64,
    n_balls: u64,
    stats: QueryTreeStats,
    cost: CostProfile,
    splitter: SplitterKind,
    precision: Precision,
    epsilon: f64,
}

fn load_query_meta(body: &[u8]) -> Result<QueryMeta, SnapshotError> {
    let mut c = Cursor::new(body, "META");
    let seed = c.u64()?;
    let n_balls = c.u64()?;
    let as_usize = |v: u64| -> Result<usize, SnapshotError> {
        usize::try_from(v).map_err(|_| corrupt("META", format!("count {v} overflows usize")))
    };
    let stats = QueryTreeStats {
        height: as_usize(c.u64()?)?,
        leaves: as_usize(c.u64()?)?,
        internals: as_usize(c.u64()?)?,
        stored_balls: as_usize(c.u64()?)?,
        candidates: c.u64()?,
        fallbacks: as_usize(c.u64()?)?,
        forced_leaves: as_usize(c.u64()?)?,
    };
    let cost = CostProfile {
        work: c.u64()?,
        depth: c.u64()?,
        scan_ops: c.u64()?,
        separator_candidates: c.u64()?,
        punts: c.u64()?,
    };
    // Optional 15th word: splitter backend code. Snapshots written before
    // the pluggable-splitter era stop at 14 words and decode as Random.
    let splitter = if c.remaining() > 0 {
        let code = c.u64()?;
        SplitterKind::from_code(code)
            .ok_or_else(|| corrupt("META", format!("unknown splitter code {code}")))?
    } else {
        SplitterKind::Random
    };
    // Optional words 16/17: precision tier + ε. Snapshots written before
    // the precision tier stop at 15 words and decode as (Mixed, 0.0) —
    // the tier is output-invisible, so older trees keep their answers.
    let precision = if c.remaining() > 0 {
        let code = c.u64()?;
        Precision::from_code(code)
            .ok_or_else(|| corrupt("META", format!("unknown precision code {code}")))?
    } else {
        Precision::default()
    };
    let epsilon = if c.remaining() > 0 {
        let eps = f64::from_bits(c.u64()?);
        if !eps.is_finite() || !(0.0..=1.0).contains(&eps) {
            return Err(corrupt("META", format!("epsilon {eps} outside [0, 1]")));
        }
        eps
    } else {
        0.0
    };
    c.finish()?;
    Ok(QueryMeta {
        seed,
        n_balls,
        stats,
        cost,
        splitter,
        precision,
        epsilon,
    })
}

/// Reconstruct a [`QueryTree`] from snapshot bytes.
///
/// Validates everything before touching a constructor that could panic:
/// magic/version/kind/dim, per-section checksums, column lengths, float
/// finiteness, leaf ranges, ball ids, child indices (strictly smaller
/// than the parent's — the rebuild is an iterative bottom-up pass, so
/// adversarial depth cannot overflow the stack), and single-use of every
/// non-root node. Structural stats are recomputed from the decoded tree
/// and cross-checked against `META`.
pub fn load_query_tree<const D: usize>(bytes: &[u8]) -> Result<QueryTree<D>, SepdcError> {
    let t0 = std::time::Instant::now();
    let c = parse_container(bytes)?;
    if c.kind != SnapshotKind::QueryTree {
        return Err(SnapshotError::KindMismatch {
            found: c.kind,
            expected: SnapshotKind::QueryTree,
        }
        .into());
    }
    if c.dim != D as u32 {
        return Err(SnapshotError::DimensionMismatch {
            found: c.dim,
            expected: D as u32,
        }
        .into());
    }

    let meta = load_query_meta(c.section(TAG_META, "META")?)?;
    let n = usize::try_from(meta.n_balls)
        .map_err(|_| corrupt("META", format!("n_balls {} overflows usize", meta.n_balls)))?;

    // BALL: D center columns + radii, all exactly n long, all finite.
    let mut cur = Cursor::new(c.section(TAG_BALL, "BALL")?, "BALL");
    let mut cols: Vec<Vec<f64>> = Vec::with_capacity(D);
    for d in 0..D {
        let col = cur.f64_array()?;
        if col.len() != n {
            return Err(corrupt(
                "BALL",
                format!("column {d} has {} entries, expected {n}", col.len()),
            )
            .into());
        }
        if let Some(i) = col.iter().position(|v| !v.is_finite()) {
            return Err(
                corrupt("BALL", format!("non-finite center coordinate at ball {i}")).into(),
            );
        }
        cols.push(col);
    }
    let radii = cur.f64_array()?;
    if radii.len() != n {
        return Err(corrupt(
            "BALL",
            format!("radius column has {} entries, expected {n}", radii.len()),
        )
        .into());
    }
    if let Some(i) = radii.iter().position(|r| !r.is_finite() || *r < 0.0) {
        return Err(corrupt("BALL", format!("non-finite or negative radius at ball {i}")).into());
    }
    cur.finish()?;

    // LFID: flat leaf ball ids, each a valid ball index.
    let mut cur = Cursor::new(c.section(TAG_LFID, "LFID")?, "LFID");
    let leaf_ids = cur.u32_array()?;
    cur.finish()?;
    if let Some(i) = leaf_ids.iter().position(|&id| (id as usize) >= n) {
        return Err(corrupt(
            "LFID",
            format!(
                "leaf id {} at position {i} out of bounds (n = {n})",
                leaf_ids[i]
            ),
        )
        .into());
    }

    // NODE: bottom-up iterative rebuild (children strictly precede
    // parents), consuming each child exactly once.
    let mut cur = Cursor::new(c.section(TAG_NODE, "NODE")?, "NODE");
    let count = cur.array_len(1)?; // each node record is at least 1 byte
    if count == 0 {
        return Err(corrupt("NODE", "empty node array").into());
    }
    let mut built: Vec<Option<QNode<D>>> = Vec::with_capacity(count);
    let mut heights: Vec<usize> = Vec::with_capacity(count);
    let mut recomputed = QueryTreeStats::default();
    for i in 0..count {
        match cur.u8()? {
            NODE_LEAF => {
                let start = cur.u64()?;
                let len = cur.u64()?;
                let end = start
                    .checked_add(len)
                    .filter(|&e| e <= leaf_ids.len() as u64);
                let Some(end) = end else {
                    return Err(corrupt(
                        "NODE",
                        format!("leaf {i} range {start}+{len} out of bounds"),
                    )
                    .into());
                };
                let ball_ids = leaf_ids[start as usize..end as usize].to_vec();
                recomputed.leaves += 1;
                recomputed.stored_balls += ball_ids.len();
                built.push(Some(QNode::Leaf { ball_ids }));
                heights.push(0);
            }
            tag @ (NODE_SPHERE | NODE_HALFSPACE) => {
                let left = cur.u32()? as usize;
                let right = cur.u32()? as usize;
                if left >= i || right >= i || left == right {
                    return Err(corrupt(
                        "NODE",
                        format!("internal {i} has invalid children ({left}, {right})"),
                    )
                    .into());
                }
                let mut coords = [0.0f64; D];
                for c in &mut coords {
                    *c = cur.f64()?;
                }
                let scalar = cur.f64()?;
                let finite = coords.iter().all(|v| v.is_finite()) && scalar.is_finite();
                let sep = if tag == NODE_SPHERE {
                    if !finite || scalar <= 0.0 {
                        return Err(corrupt(
                            "NODE",
                            format!("internal {i} has a degenerate sphere separator"),
                        )
                        .into());
                    }
                    Separator::Sphere(Sphere {
                        center: Point(coords),
                        radius: scalar,
                    })
                } else {
                    if !finite {
                        return Err(corrupt(
                            "NODE",
                            format!("internal {i} has a non-finite halfspace separator"),
                        )
                        .into());
                    }
                    Separator::Halfspace(Hyperplane {
                        normal: Point(coords),
                        offset: scalar,
                    })
                };
                let take_child = |built: &mut Vec<Option<QNode<D>>>, c: usize| {
                    built[c].take().ok_or_else(|| {
                        corrupt(
                            "NODE",
                            format!("node {c} referenced by more than one parent"),
                        )
                    })
                };
                let l = take_child(&mut built, left)?;
                let r = take_child(&mut built, right)?;
                recomputed.internals += 1;
                let h = 1 + heights[left].max(heights[right]);
                built.push(Some(QNode::Internal {
                    sep,
                    left: Box::new(l),
                    right: Box::new(r),
                }));
                heights.push(h);
            }
            other => {
                return Err(corrupt("NODE", format!("unknown node tag {other} at node {i}")).into())
            }
        }
    }
    cur.finish()?;
    let root = built[count - 1]
        .take()
        .expect("root cannot be referenced: children indices are strictly smaller");
    if let Some(orphan) = built.iter().position(Option::is_some) {
        return Err(corrupt(
            "NODE",
            format!("node {orphan} is unreachable from the root"),
        )
        .into());
    }
    recomputed.height = heights[count - 1];
    recomputed.candidates = meta.stats.candidates;
    recomputed.fallbacks = meta.stats.fallbacks;
    recomputed.forced_leaves = meta.stats.forced_leaves;
    if recomputed != meta.stats {
        return Err(corrupt(
            "META",
            format!(
                "stored stats {:?} disagree with decoded structure {:?}",
                meta.stats, recomputed
            ),
        )
        .into());
    }

    // Reassemble the ball array (AoS) and the SoA arena from the same
    // columns — `radius_sq` is recomputed as `r * r`, the exact operation
    // the builder performs, so cover predicates are bit-identical.
    let balls: Vec<Ball<D>> = (0..n)
        .map(|i| Ball {
            center: Point(std::array::from_fn(|d| cols[d][i])),
            radius: radii[i],
        })
        .collect();
    let col_arr: [Vec<f64>; D] = match cols.try_into() {
        Ok(a) => a,
        Err(_) => unreachable!("cols has exactly D entries"),
    };
    let soa = SoaBalls::from_columns(col_arr, &radii);

    Ok(QueryTree::from_snapshot_parts(
        root,
        balls,
        soa,
        meta.stats,
        meta.cost,
        meta.seed,
        meta.splitter,
        meta.precision,
        meta.epsilon,
        t0.elapsed(),
    ))
}

// ---------------------------------------------------------------------------
// PartitionTree save/load
// ---------------------------------------------------------------------------

/// Serialize a [`PartitionTree`] into snapshot bytes.
///
/// Sections: `META` (perm length, bounds flag), `PNOD` (the arena, already
/// postorder), `PERM` (the shared permutation array), `BNDS` (per-node
/// bounding boxes, present only when the tree carries them).
pub fn save_partition_tree<const D: usize>(tree: &PartitionTree<D>) -> Vec<u8> {
    let mut meta = Vec::with_capacity(16);
    put_u64(&mut meta, tree.perm().len() as u64);
    put_u64(&mut meta, u64::from(tree.bounds().is_some()));

    let nodes = tree.nodes();
    let mut pnod = Vec::new();
    put_u64(&mut pnod, nodes.len() as u64);
    for node in nodes {
        match node {
            PartitionNode::Leaf { start, len } => {
                pnod.push(NODE_LEAF);
                put_u32(&mut pnod, *start);
                put_u32(&mut pnod, *len);
            }
            PartitionNode::Internal {
                sep,
                size,
                left,
                right,
            } => {
                let (tag, coords, scalar) = match sep {
                    Separator::Sphere(s) => (NODE_SPHERE, &s.center, s.radius),
                    Separator::Halfspace(h) => (NODE_HALFSPACE, &h.normal, h.offset),
                };
                pnod.push(tag);
                put_u32(&mut pnod, *size);
                put_u32(&mut pnod, *left);
                put_u32(&mut pnod, *right);
                for d in 0..D {
                    put_f64(&mut pnod, coords.0[d]);
                }
                put_f64(&mut pnod, scalar);
            }
        }
    }

    let mut perm = Vec::new();
    put_u32_array(&mut perm, tree.perm());

    let mut sections = vec![(TAG_META, meta), (TAG_PNOD, pnod), (TAG_PERM, perm)];
    if let Some(bounds) = tree.bounds() {
        let mut bnds = Vec::with_capacity(8 + bounds.len() * 2 * D * 8);
        put_u64(&mut bnds, bounds.len() as u64);
        for b in bounds {
            for d in 0..D {
                put_f64(&mut bnds, b.lo.0[d]);
            }
            for d in 0..D {
                put_f64(&mut bnds, b.hi.0[d]);
            }
        }
        sections.push((TAG_BNDS, bnds));
    }
    assemble_container(SnapshotKind::PartitionTree, D as u32, &sections)
}

/// Reconstruct a [`PartitionTree`] from snapshot bytes, validating the
/// arena invariants the in-memory builder establishes by construction:
/// children strictly precede parents, every non-root node is referenced
/// exactly once, leaf ranges lie inside the permutation array, separator
/// geometry is finite.
pub fn load_partition_tree<const D: usize>(bytes: &[u8]) -> Result<PartitionTree<D>, SepdcError> {
    let c = parse_container(bytes)?;
    if c.kind != SnapshotKind::PartitionTree {
        return Err(SnapshotError::KindMismatch {
            found: c.kind,
            expected: SnapshotKind::PartitionTree,
        }
        .into());
    }
    if c.dim != D as u32 {
        return Err(SnapshotError::DimensionMismatch {
            found: c.dim,
            expected: D as u32,
        }
        .into());
    }

    let mut cur = Cursor::new(c.section(TAG_META, "META")?, "META");
    let perm_len = cur.u64()?;
    let has_bounds = cur.u64()?;
    cur.finish()?;
    if has_bounds > 1 {
        return Err(corrupt("META", format!("bounds flag {has_bounds} is not 0/1")).into());
    }

    let mut cur = Cursor::new(c.section(TAG_PERM, "PERM")?, "PERM");
    let perm = cur.u32_array()?;
    cur.finish()?;
    if perm.len() as u64 != perm_len {
        return Err(corrupt(
            "PERM",
            format!(
                "permutation has {} entries, META says {perm_len}",
                perm.len()
            ),
        )
        .into());
    }

    let mut cur = Cursor::new(c.section(TAG_PNOD, "PNOD")?, "PNOD");
    let count = cur.array_len(1)?;
    if count == 0 {
        return Err(corrupt("PNOD", "empty node array").into());
    }
    let mut nodes: Vec<PartitionNode<D>> = Vec::with_capacity(count);
    let mut referenced = vec![false; count];
    for i in 0..count {
        match cur.u8()? {
            NODE_LEAF => {
                let start = cur.u32()?;
                let len = cur.u32()?;
                let end = u64::from(start) + u64::from(len);
                if end > perm.len() as u64 {
                    return Err(corrupt(
                        "PNOD",
                        format!(
                            "leaf {i} range {start}+{len} exceeds perm length {}",
                            perm.len()
                        ),
                    )
                    .into());
                }
                nodes.push(PartitionNode::Leaf { start, len });
            }
            tag @ (NODE_SPHERE | NODE_HALFSPACE) => {
                let size = cur.u32()?;
                let left = cur.u32()?;
                let right = cur.u32()?;
                let (l, r) = (left as usize, right as usize);
                if l >= i || r >= i || l == r {
                    return Err(corrupt(
                        "PNOD",
                        format!("internal {i} has invalid children ({left}, {right})"),
                    )
                    .into());
                }
                for (c, name) in [(l, "left"), (r, "right")] {
                    if referenced[c] {
                        return Err(corrupt(
                            "PNOD",
                            format!("{name} child {c} of internal {i} already has a parent"),
                        )
                        .into());
                    }
                    referenced[c] = true;
                }
                let mut coords = [0.0f64; D];
                for v in &mut coords {
                    *v = cur.f64()?;
                }
                let scalar = cur.f64()?;
                let finite = coords.iter().all(|v| v.is_finite()) && scalar.is_finite();
                let sep = if tag == NODE_SPHERE {
                    if !finite || scalar <= 0.0 {
                        return Err(corrupt(
                            "PNOD",
                            format!("internal {i} has a degenerate sphere separator"),
                        )
                        .into());
                    }
                    Separator::Sphere(Sphere {
                        center: Point(coords),
                        radius: scalar,
                    })
                } else {
                    if !finite {
                        return Err(corrupt(
                            "PNOD",
                            format!("internal {i} has a non-finite halfspace separator"),
                        )
                        .into());
                    }
                    Separator::Halfspace(Hyperplane {
                        normal: Point(coords),
                        offset: scalar,
                    })
                };
                nodes.push(PartitionNode::Internal {
                    sep,
                    size,
                    left,
                    right,
                });
            }
            other => {
                return Err(corrupt("PNOD", format!("unknown node tag {other} at node {i}")).into())
            }
        }
    }
    cur.finish()?;
    if let Some(orphan) = referenced[..count - 1].iter().position(|r| !r) {
        return Err(corrupt(
            "PNOD",
            format!("node {orphan} is unreachable from the root"),
        )
        .into());
    }
    if referenced[count - 1] {
        return Err(corrupt("PNOD", "root node has a parent").into());
    }

    if has_bounds == 1 {
        let mut cur = Cursor::new(c.section(TAG_BNDS, "BNDS")?, "BNDS");
        let n_bounds = cur.array_len(2 * D * 8)?;
        if n_bounds != count {
            return Err(corrupt("BNDS", format!("{n_bounds} boxes for {count} nodes")).into());
        }
        let mut bounds: Vec<Aabb<D>> = Vec::with_capacity(n_bounds);
        for i in 0..n_bounds {
            let mut lo = [0.0f64; D];
            let mut hi = [0.0f64; D];
            for v in &mut lo {
                *v = cur.f64()?;
            }
            for v in &mut hi {
                *v = cur.f64()?;
            }
            // ±inf is legal (the empty box); NaN would poison the
            // marching-prune distance tests.
            if lo.iter().chain(hi.iter()).any(|v| v.is_nan()) {
                return Err(corrupt("BNDS", format!("NaN bound at node {i}")).into());
            }
            bounds.push(Aabb {
                lo: Point(lo),
                hi: Point(hi),
            });
        }
        cur.finish()?;
        Ok(PartitionTree::from_parts_with_bounds(nodes, perm, bounds))
    } else {
        Ok(PartitionTree::from_parts(nodes, perm))
    }
}

// ---------------------------------------------------------------------------
// ShardedIndex save/load
// ---------------------------------------------------------------------------

/// The logarithmic method never occupies a slot at or above 64 — slot `i`
/// holds up to `staging_cap · 2^i` balls, so slot 64 would require more
/// balls than `u64` ids can name. Bounding it also caps the allocation an
/// adversarial `slot_count` can drive.
const MAX_SLOTS: u64 = 64;

/// Serialize a [`ShardedIndex`] into snapshot bytes.
///
/// Sections: `SMET` (staging capacity, master seed, id/epoch/rebuild
/// counters, slot count, live-ball cross-check), `SHRD` (the shard
/// manifest — per occupied slot, the slot index and a complete nested
/// query-tree snapshot, checksummed container and all, so shard payloads
/// reuse the kind-1 codec verbatim), `GIDS` (per-shard ascending global-id
/// columns), `TOMB` (per-shard tombstone bitmap words), `STAG` (the
/// staging entries `(id, center, radius)`, ascending by id).
pub fn save_sharded_index<const D: usize>(index: &ShardedIndex<D>) -> Vec<u8> {
    let (seed, next_id, epoch, rebuilds, rebuilt_balls, slot_count) = index.meta_for_snapshot();
    let stats = index.stats();

    let mut smet = Vec::with_capacity(8 * 8);
    put_u64(&mut smet, index.config().staging_cap as u64);
    put_u64(&mut smet, seed);
    put_u64(&mut smet, next_id);
    put_u64(&mut smet, epoch);
    put_u64(&mut smet, rebuilds);
    put_u64(&mut smet, rebuilt_balls);
    put_u64(&mut smet, slot_count);
    put_u64(&mut smet, stats.live as u64);

    let shards = index.shards_for_snapshot();
    let mut shrd = Vec::new();
    put_u64(&mut shrd, shards.len() as u64);
    let mut gids = Vec::new();
    put_u64(&mut gids, shards.len() as u64);
    let mut tomb = Vec::new();
    put_u64(&mut tomb, shards.len() as u64);
    for (slot, shard) in &shards {
        put_u64(&mut shrd, *slot as u64);
        let nested = save_query_tree(&shard.core.tree);
        put_u64(&mut shrd, nested.len() as u64);
        shrd.extend_from_slice(&nested);
        put_u64_array(&mut gids, &shard.core.ids);
        put_u64_array(&mut tomb, &shard.tombs);
    }

    let staging = index.staging_for_snapshot();
    let mut stag = Vec::with_capacity(8 + staging.len() * (8 + (D + 1) * 8));
    put_u64(&mut stag, staging.len() as u64);
    for (id, ball) in staging {
        put_u64(&mut stag, *id);
        for d in 0..D {
            put_f64(&mut stag, ball.center.0[d]);
        }
        put_f64(&mut stag, ball.radius);
    }

    assemble_container(
        SnapshotKind::ShardedIndex,
        D as u32,
        &[
            (TAG_SMET, smet),
            (TAG_SHRD, shrd),
            (TAG_GIDS, gids),
            (TAG_TOMB, tomb),
            (TAG_STAG, stag),
        ],
    )
}

/// Reconstruct a [`ShardedIndex`] from snapshot bytes.
///
/// Validates the full shard-manifest invariant set before constructing
/// anything: strictly increasing slot indices below the recorded slot
/// count, per-slot capacity (`n ≤ staging_cap · 2^slot`), each nested
/// query-tree snapshot through the complete kind-1 validation path,
/// strictly increasing global-id columns matching tree sizes, tombstone
/// bitmaps of exactly the right width with no bits set past the end,
/// sorted finite staging entries under capacity, global-id disjointness
/// across every shard and the staging array, all ids below `next_id`, and
/// the recorded live count against the decoded population.
pub fn load_sharded_index<const D: usize>(bytes: &[u8]) -> Result<ShardedIndex<D>, SepdcError> {
    let c = parse_container(bytes)?;
    if c.kind != SnapshotKind::ShardedIndex {
        return Err(SnapshotError::KindMismatch {
            found: c.kind,
            expected: SnapshotKind::ShardedIndex,
        }
        .into());
    }
    if c.dim != D as u32 {
        return Err(SnapshotError::DimensionMismatch {
            found: c.dim,
            expected: D as u32,
        }
        .into());
    }

    let mut cur = Cursor::new(c.section(TAG_SMET, "SMET")?, "SMET");
    let raw_cap = cur.u64()?;
    let seed = cur.u64()?;
    let next_id = cur.u64()?;
    let epoch = cur.u64()?;
    let rebuilds = cur.u64()?;
    let rebuilt_balls = cur.u64()?;
    let slot_count = cur.u64()?;
    let live = cur.u64()?;
    cur.finish()?;
    let staging_cap = usize::try_from(raw_cap)
        .ok()
        .filter(|&cap| cap >= 1)
        .ok_or_else(|| corrupt("SMET", format!("staging capacity {raw_cap} is invalid")))?;
    if slot_count > MAX_SLOTS {
        return Err(corrupt(
            "SMET",
            format!("slot count {slot_count} exceeds the {MAX_SLOTS}-slot bound"),
        )
        .into());
    }
    let slot_count = slot_count as usize;

    // SHRD: slot indices + nested kind-1 snapshots, each fully validated
    // by `load_query_tree` (checksums, geometry, structure).
    let mut cur = Cursor::new(c.section(TAG_SHRD, "SHRD")?, "SHRD");
    let n_shards = cur.array_len(16)?; // ≥ 16 bytes per shard: slot + nested length
    let mut shards: crate::sharded::ShardParts<D> = Vec::with_capacity(n_shards);
    let mut prev_slot: Option<usize> = None;
    for i in 0..n_shards {
        let raw_slot = cur.u64()?;
        let slot = usize::try_from(raw_slot)
            .ok()
            .filter(|&s| s < slot_count)
            .ok_or_else(|| {
                corrupt(
                    "SHRD",
                    format!("shard {i} slot {raw_slot} out of range (slot count {slot_count})"),
                )
            })?;
        if prev_slot.is_some_and(|p| slot <= p) {
            return Err(corrupt(
                "SHRD",
                format!("shard slots not strictly increasing at shard {i} (slot {slot})"),
            )
            .into());
        }
        prev_slot = Some(slot);
        let nested_len = cur.u64()?;
        let nested_len = usize::try_from(nested_len)
            .ok()
            .filter(|&l| l <= cur.remaining())
            .ok_or_else(|| {
                corrupt(
                    "SHRD",
                    format!(
                        "shard at slot {slot}: nested snapshot length {nested_len} exceeds section"
                    ),
                )
            })?;
        let tree = load_query_tree::<D>(cur.take(nested_len)?)
            .map_err(|e| corrupt("SHRD", format!("shard at slot {slot}: {e}")))?;
        let n = tree.len();
        if n == 0 {
            return Err(corrupt("SHRD", format!("shard at slot {slot} is empty")).into());
        }
        // slot < MAX_SLOTS = 64, so the u128 shift cannot overflow.
        if (n as u128) > (staging_cap as u128) << slot {
            return Err(corrupt(
                "SHRD",
                format!(
                    "shard at slot {slot} holds {n} balls, over its capacity {staging_cap}·2^{slot}"
                ),
            )
            .into());
        }
        shards.push((slot, tree, Vec::new(), Vec::new(), 0));
    }
    cur.finish()?;

    // GIDS: one ascending global-id column per shard, aligned with the
    // shard's ball order.
    let mut cur = Cursor::new(c.section(TAG_GIDS, "GIDS")?, "GIDS");
    let n_gids = cur.array_len(8)?;
    if n_gids != n_shards {
        return Err(corrupt("GIDS", format!("{n_gids} id columns for {n_shards} shards")).into());
    }
    for (slot, tree, ids, _, _) in &mut shards {
        let col = cur.u64_array()?;
        if col.len() != tree.len() {
            return Err(corrupt(
                "GIDS",
                format!(
                    "shard at slot {slot}: {} ids for {} balls",
                    col.len(),
                    tree.len()
                ),
            )
            .into());
        }
        if let Some(w) = col.windows(2).position(|w| w[0] >= w[1]) {
            return Err(corrupt(
                "GIDS",
                format!("shard at slot {slot}: ids not strictly increasing at position {w}"),
            )
            .into());
        }
        if col.last().is_some_and(|&id| id >= next_id) {
            return Err(corrupt(
                "GIDS",
                format!("shard at slot {slot}: id at or above next_id {next_id}"),
            )
            .into());
        }
        *ids = col;
    }
    cur.finish()?;

    // TOMB: one bitmap per shard, exactly ceil(n/64) words, no bit set at
    // or past the shard length.
    let mut cur = Cursor::new(c.section(TAG_TOMB, "TOMB")?, "TOMB");
    let n_tomb = cur.array_len(8)?;
    if n_tomb != n_shards {
        return Err(corrupt("TOMB", format!("{n_tomb} bitmaps for {n_shards} shards")).into());
    }
    for (slot, tree, _, tombs, dead) in &mut shards {
        let words = cur.u64_array()?;
        let n = tree.len();
        if words.len() != n.div_ceil(64) {
            return Err(corrupt(
                "TOMB",
                format!(
                    "shard at slot {slot}: {} bitmap words for {n} balls",
                    words.len()
                ),
            )
            .into());
        }
        let tail_bits = n % 64;
        if tail_bits != 0 && words.last().is_some_and(|&w| w >> tail_bits != 0) {
            return Err(corrupt(
                "TOMB",
                format!("shard at slot {slot}: tombstone bit set past the shard length"),
            )
            .into());
        }
        *dead = words.iter().map(|w| w.count_ones() as usize).sum();
        *tombs = words;
    }
    cur.finish()?;

    // STAG: sorted finite staging entries strictly under capacity (the
    // writer carries the moment staging reaches `staging_cap`).
    let mut cur = Cursor::new(c.section(TAG_STAG, "STAG")?, "STAG");
    let n_stag = cur.array_len(8 + (D + 1) * 8)?;
    if n_stag >= staging_cap {
        return Err(corrupt(
            "STAG",
            format!("{n_stag} staged entries at or above capacity {staging_cap}"),
        )
        .into());
    }
    let mut staging: Vec<(u64, Ball<D>)> = Vec::with_capacity(n_stag);
    for i in 0..n_stag {
        let id = cur.u64()?;
        if id >= next_id {
            return Err(corrupt(
                "STAG",
                format!("staged id {id} at or above next_id {next_id}"),
            )
            .into());
        }
        if staging.last().is_some_and(|(prev, _)| id <= *prev) {
            return Err(corrupt(
                "STAG",
                format!("staged ids not strictly increasing at entry {i}"),
            )
            .into());
        }
        let mut coords = [0.0f64; D];
        for v in &mut coords {
            *v = cur.f64()?;
        }
        let radius = cur.f64()?;
        if !coords.iter().all(|v| v.is_finite()) || !radius.is_finite() || radius < 0.0 {
            return Err(corrupt("STAG", format!("staged ball {i} is non-finite")).into());
        }
        staging.push((
            id,
            Ball {
                center: Point(coords),
                radius,
            },
        ));
    }
    cur.finish()?;

    // Global ids must be disjoint across every shard and the staging
    // array — each column is sorted, so one merge-sort pass over the
    // concatenation finds any collision.
    let mut all_ids: Vec<u64> = Vec::new();
    for (_, _, ids, _, _) in &shards {
        all_ids.extend_from_slice(ids);
    }
    all_ids.extend(staging.iter().map(|(id, _)| *id));
    all_ids.sort_unstable();
    if let Some(w) = all_ids.windows(2).position(|w| w[0] == w[1]) {
        return Err(corrupt(
            "GIDS",
            format!("global id {} appears in more than one shard", all_ids[w]),
        )
        .into());
    }

    let decoded_live: usize = shards
        .iter()
        .map(|(_, tree, _, _, dead)| tree.len() - dead)
        .sum::<usize>()
        + staging.len();
    if decoded_live as u64 != live {
        return Err(corrupt(
            "SMET",
            format!("recorded live count {live} disagrees with decoded population {decoded_live}"),
        )
        .into());
    }

    Ok(ShardedIndex::from_snapshot_parts(
        ShardedConfig {
            staging_cap,
            tree: QueryTreeConfig::default(),
        },
        seed,
        slot_count,
        shards,
        staging,
        next_id,
        epoch,
        rebuilds,
        rebuilt_balls,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::KnnDcConfig;
    use crate::neighborhood::NeighborhoodSystem;
    use crate::query::QueryTreeConfig;
    use crate::serve::CoverPredicate;
    use crate::ServeConfig;
    use sepdc_workloads::Workload;

    fn sample_tree(n: usize) -> QueryTree<2> {
        let points = Workload::UniformCube.generate::<2>(n, 42);
        let knn = crate::kdtree::kdtree_all_knn::<2>(&points, 3);
        let system = NeighborhoodSystem::from_knn(&points, &knn);
        QueryTree::build::<3>(system.balls(), QueryTreeConfig::default(), 7)
    }

    #[test]
    fn query_tree_round_trips_and_serves_identically() {
        let tree = sample_tree(400);
        let bytes = save_query_tree(&tree);
        let loaded = load_query_tree::<2>(&bytes).unwrap();
        assert_eq!(loaded.stats(), tree.stats());
        assert_eq!(loaded.build_cost(), tree.build_cost());
        assert_eq!(loaded.len(), tree.len());
        assert_eq!(loaded.run_report().algo, "query-load");
        assert_eq!(loaded.run_report().seed, tree.run_report().seed);

        let probes = Workload::Clusters.generate::<2>(300, 11);
        for pred in [CoverPredicate::Closed, CoverPredicate::Open] {
            let a = tree
                .try_serve(&probes, pred, &ServeConfig::default())
                .unwrap();
            let b = loaded
                .try_serve(&probes, pred, &ServeConfig::default())
                .unwrap();
            assert_eq!(a.result.offsets(), b.result.offsets());
            assert_eq!(a.result.ids(), b.result.ids());
        }
        // Saving the loaded tree reproduces the exact bytes.
        assert_eq!(save_query_tree(&loaded), bytes);
    }

    #[test]
    fn empty_query_tree_round_trips() {
        let tree = QueryTree::<2>::build::<3>(&[], QueryTreeConfig::default(), 1);
        let bytes = save_query_tree(&tree);
        let loaded = load_query_tree::<2>(&bytes).unwrap();
        assert!(loaded.is_empty());
        assert_eq!(loaded.stats(), tree.stats());
    }

    #[test]
    fn partition_tree_round_trips() {
        let points = Workload::Clusters.generate::<2>(600, 9);
        let out = crate::parallel::parallel_knn::<2, 3>(&points, &KnnDcConfig::new(3));
        let tree = out.tree;
        let bytes = save_partition_tree(&tree);
        let loaded = load_partition_tree::<2>(&bytes).unwrap();
        assert_eq!(loaded.nodes(), tree.nodes());
        assert_eq!(loaded.perm(), tree.perm());
        assert_eq!(loaded.bounds(), tree.bounds());
        assert_eq!(save_partition_tree(&loaded), bytes);
    }

    #[test]
    fn inspect_reports_sections() {
        let tree = sample_tree(200);
        let bytes = save_query_tree(&tree);
        let info = inspect(&bytes).unwrap();
        assert_eq!(info.version, SNAPSHOT_VERSION);
        assert_eq!(info.kind, SnapshotKind::QueryTree);
        assert_eq!(info.dim, 2);
        assert_eq!(info.total_len, bytes.len() as u64);
        let tags: Vec<&str> = info.sections.iter().map(|s| s.tag.as_str()).collect();
        assert_eq!(tags, ["META", "BALL", "NODE", "LFID"]);
        for s in &info.sections {
            let body = &bytes[s.offset as usize..(s.offset + s.len) as usize];
            assert_eq!(fnv1a64(body), s.checksum);
        }
    }

    #[test]
    fn kind_and_dim_mismatches_are_typed() {
        let tree = sample_tree(100);
        let bytes = save_query_tree(&tree);
        assert_eq!(
            load_partition_tree::<2>(&bytes)
                .map(|t| t.nodes().len())
                .err(),
            Some(SepdcError::Snapshot(SnapshotError::KindMismatch {
                found: SnapshotKind::QueryTree,
                expected: SnapshotKind::PartitionTree,
            }))
        );
        assert_eq!(
            load_query_tree::<3>(&bytes).map(|t| t.len()),
            Err(SepdcError::Snapshot(SnapshotError::DimensionMismatch {
                found: 2,
                expected: 3,
            }))
        );
    }

    /// An index with occupied shards, live tombstones, and a non-empty
    /// staging array — every section of the kind-3 layout exercised.
    fn sample_sharded(n: usize, staging_cap: usize) -> ShardedIndex<2> {
        let points = Workload::UniformCube.generate::<2>(n, 5);
        let balls: Vec<Ball<2>> = points
            .iter()
            .map(|&p| Ball {
                center: p,
                radius: 0.05,
            })
            .collect();
        let cfg = ShardedConfig {
            staging_cap,
            tree: QueryTreeConfig::default(),
        };
        let mut idx = ShardedIndex::new(cfg, 99).unwrap();
        idx.try_insert_batch::<3>(&balls).unwrap();
        idx.delete_batch(&[0, 3, 7, 50]);
        idx
    }

    /// Rebuild `bytes` with one section body rewritten (checksums are
    /// recomputed, so the mutation reaches the semantic validators rather
    /// than tripping the checksum gate).
    fn patch_sharded(bytes: &[u8], target: &[u8; 4], f: impl FnOnce(&mut Vec<u8>)) -> Vec<u8> {
        let c = parse_container(bytes).unwrap();
        let mut f = Some(f);
        let mut sections: Vec<(&[u8; 4], Vec<u8>)> = Vec::new();
        for s in &c.sections {
            let tag: &'static [u8; 4] = match &s.tag {
                b"SMET" => TAG_SMET,
                b"SHRD" => TAG_SHRD,
                b"GIDS" => TAG_GIDS,
                b"TOMB" => TAG_TOMB,
                b"STAG" => TAG_STAG,
                other => panic!("unexpected tag {other:?}"),
            };
            let mut body = s.body.to_vec();
            if tag == target {
                (f.take().unwrap())(&mut body);
            }
            sections.push((tag, body));
        }
        assert!(f.is_none(), "target section not found");
        assemble_container(SnapshotKind::ShardedIndex, c.dim, &sections)
    }

    #[test]
    fn sharded_index_round_trips_byte_identically() {
        let idx = sample_sharded(100, 32);
        let stats = idx.stats();
        assert!(stats.shards > 0 && stats.staged > 0 && stats.dead > 0);

        let bytes = save_sharded_index(&idx);
        let loaded = load_sharded_index::<2>(&bytes).unwrap();
        assert_eq!(loaded.stats(), stats);
        assert_eq!(loaded.seed(), idx.seed());
        assert_eq!(loaded.config().staging_cap, idx.config().staging_cap);
        assert_eq!(loaded.shard_sizes(), idx.shard_sizes());

        let probes = Workload::Clusters.generate::<2>(64, 11);
        for p in &probes {
            assert_eq!(
                loaded.try_covering(p).unwrap(),
                idx.try_covering(p).unwrap()
            );
            let a = loaded.try_knn(p, 3).unwrap();
            let b = idx.try_knn(p, 3).unwrap();
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                assert_eq!((x.id, x.dist_sq.to_bits()), (y.id, y.dist_sq.to_bits()));
            }
        }
        // Saving the loaded index reproduces the exact bytes.
        assert_eq!(save_sharded_index(&loaded), bytes);

        let info = inspect(&bytes).unwrap();
        assert_eq!(info.kind, SnapshotKind::ShardedIndex);
        let tags: Vec<&str> = info.sections.iter().map(|s| s.tag.as_str()).collect();
        assert_eq!(tags, ["SMET", "SHRD", "GIDS", "TOMB", "STAG"]);
    }

    #[test]
    fn staging_only_sharded_index_round_trips() {
        let idx = sample_sharded(10, 64); // everything fits in staging
        assert_eq!(idx.stats().shards, 0);
        let bytes = save_sharded_index(&idx);
        let loaded = load_sharded_index::<2>(&bytes).unwrap();
        assert_eq!(loaded.stats(), idx.stats());
        assert_eq!(save_sharded_index(&loaded), bytes);
    }

    #[test]
    fn sharded_kind_and_dim_mismatches_are_typed() {
        let bytes = save_sharded_index(&sample_sharded(50, 16));
        assert_eq!(
            load_query_tree::<2>(&bytes).map(|t| t.len()),
            Err(SepdcError::Snapshot(SnapshotError::KindMismatch {
                found: SnapshotKind::ShardedIndex,
                expected: SnapshotKind::QueryTree,
            }))
        );
        assert_eq!(
            load_sharded_index::<3>(&bytes).map(|i| i.len()),
            Err(SepdcError::Snapshot(SnapshotError::DimensionMismatch {
                found: 2,
                expected: 3,
            }))
        );
        let tree_bytes = save_query_tree(&sample_tree(50));
        assert_eq!(
            load_sharded_index::<2>(&tree_bytes).map(|i| i.len()),
            Err(SepdcError::Snapshot(SnapshotError::KindMismatch {
                found: SnapshotKind::QueryTree,
                expected: SnapshotKind::ShardedIndex,
            }))
        );
    }

    #[test]
    fn sharded_adversarial_defects_are_rejected() {
        let bytes = save_sharded_index(&sample_sharded(100, 32));
        let expect_corrupt = |mutated: Vec<u8>, tag: &str| match load_sharded_index::<2>(&mutated)
            .map(|i| i.len())
        {
            Err(SepdcError::Snapshot(SnapshotError::Corrupt { tag: t, .. })) => {
                assert_eq!(t, tag)
            }
            other => panic!("expected Corrupt({tag}), got {other:?}"),
        };

        // A bit flip inside a nested shard snapshot fails that shard's
        // checksummed kind-1 validation, reported against SHRD.
        expect_corrupt(patch_sharded(&bytes, TAG_SHRD, |b| b[40] ^= 0xff), "SHRD");
        // Recorded live count disagreeing with the decoded population.
        expect_corrupt(
            patch_sharded(&bytes, TAG_SMET, |b| {
                let at = b.len() - 8;
                b[at..].copy_from_slice(&u64::MAX.to_le_bytes());
            }),
            "SMET",
        );
        // Duplicated global id (first id overwritten with the second).
        expect_corrupt(
            patch_sharded(&bytes, TAG_GIDS, |b| {
                let second = b[24..32].to_vec();
                b[16..24].copy_from_slice(&second);
            }),
            "GIDS",
        );
        // Tombstone word with every bit set: either a bit past the shard
        // length or a live-count disagreement, both typed.
        let mutated = patch_sharded(&bytes, TAG_TOMB, |b| {
            b[16..24].copy_from_slice(&u64::MAX.to_le_bytes());
        });
        assert!(matches!(
            load_sharded_index::<2>(&mutated).map(|i| i.len()),
            Err(SepdcError::Snapshot(SnapshotError::Corrupt { .. }))
        ));
        // Staged id at or above next_id.
        expect_corrupt(
            patch_sharded(&bytes, TAG_STAG, |b| {
                b[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
            }),
            "STAG",
        );
        // Truncation anywhere is typed, never a panic.
        for cut in [7, HEADER_LEN - 1, bytes.len() / 2, bytes.len() - 1] {
            assert!(load_sharded_index::<2>(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn fnv_vector() {
        // Known FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
