//! Tunable constants for separator construction.

use sepdc_geom::centerpoint::CenterpointOpts;

/// Configuration for the unit-time sphere separator and the retry search.
///
/// Defaults follow the paper: the acceptance split ratio is
/// `δ = (d+1)/(d+2) + ε` with a small constant `ε` (the paper requires
/// `0 < ε < 1/(d+2)`), and every quantity that must be "constant" for the
/// unit-time claim (sample size, centerpoint effort) is a constant
/// independent of `n`.
#[derive(Clone, Copy, Debug)]
pub struct SeparatorConfig {
    /// Slack `ε` added to the ideal split ratio `(d+1)/(d+2)`.
    pub epsilon: f64,
    /// Random sample size used per candidate (constant for unit time).
    pub sample_size: usize,
    /// Iterated-Radon centerpoint effort.
    pub centerpoint: CenterpointOpts,
    /// Maximum unit-time candidates before the search falls back to a
    /// deterministic median cut (the theory gives success probability
    /// ≥ 1/2 per candidate, so this is hit with probability `2^-max`).
    pub max_attempts: usize,
    /// Candidates evaluated per speculative wave by the parallel sweep
    /// ([`find_good_separator_par`](crate::find_good_separator_par)).
    /// The sweep always selects the lowest-indexed acceptable candidate,
    /// so this knob moves wall-clock only — never the output. `1` (or a
    /// single-thread pool) degenerates to the serial short-circuit scan.
    pub sweep_width: usize,
    /// Numeric tolerance for classification.
    pub tol: f64,
}

impl Default for SeparatorConfig {
    fn default() -> Self {
        SeparatorConfig {
            epsilon: 0.04,
            sample_size: 128,
            // Lighter than the CenterpointOpts default: separator
            // candidates are retried on failure, so a slightly shallower
            // centerpoint is the right trade for unit-time candidates.
            centerpoint: CenterpointOpts {
                buffer_size: 96,
                rounds_factor: 4,
            },
            max_attempts: 48,
            sweep_width: 4,
            tol: 1e-9,
        }
    }
}

impl SeparatorConfig {
    /// The acceptance split ratio `δ = (d+1)/(d+2) + ε` for dimension `d`.
    pub fn delta(&self, d: usize) -> f64 {
        assert!(d >= 1, "dimension must be positive");
        (d as f64 + 1.0) / (d as f64 + 2.0) + self.epsilon
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_matches_paper_formula() {
        let cfg = SeparatorConfig {
            epsilon: 0.0,
            ..Default::default()
        };
        assert!((cfg.delta(2) - 3.0 / 4.0).abs() < 1e-12);
        assert!((cfg.delta(3) - 4.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn default_epsilon_within_paper_range() {
        let cfg = SeparatorConfig::default();
        for d in 2..=8 {
            assert!(cfg.epsilon > 0.0 && cfg.epsilon < 1.0 / (d as f64 + 2.0));
            assert!(cfg.delta(d) < 1.0);
        }
    }

    #[test]
    #[should_panic(expected = "dimension must be positive")]
    fn delta_rejects_dimension_zero() {
        SeparatorConfig::default().delta(0);
    }
}
