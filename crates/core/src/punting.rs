//! Probabilistic `(a, b)`-trees and the Punting Lemma (Section 4).
//!
//! The "run-A-first-if-unlucky-then-run-B" analysis: a node whose subtree
//! has `m` leaves gets weight `a(m)` with probability `1 - 1/m` (the fast
//! path succeeded) and `b(m)` with probability `1/m` (punt). `RD(n)` is the
//! largest root-to-leaf weighted depth. Lemma 4.1: for the `(0, log m)`
//! tree, `Pr(RD(n) > 2c·log n) ≤ n·A·e^{-c·log n}` with `ρ = √e/2` and
//! `A = e^{ρ/(1-ρ)}`.
//!
//! This module simulates `RD(n)` exactly so EXP-6 can compare the empirical
//! tail with the lemma's bound.

use crate::report::RunRecorder;
use rand::Rng;

/// Weight functions for a probabilistic `(a, b)`-tree.
pub trait WeightFns {
    /// Fast-path weight of a node whose subtree has `m` leaves.
    fn a(&self, m: usize) -> f64;
    /// Punt-path weight of a node whose subtree has `m` leaves.
    fn b(&self, m: usize) -> f64;
}

/// The `(0, log m)` tree of Lemma 4.1.
#[derive(Clone, Copy, Debug, Default)]
pub struct ZeroLog;

impl WeightFns for ZeroLog {
    fn a(&self, _m: usize) -> f64 {
        0.0
    }
    fn b(&self, m: usize) -> f64 {
        (m as f64).log2()
    }
}

/// The `(C, log m)` tree of Corollary 4.1.
#[derive(Clone, Copy, Debug)]
pub struct ConstLog(pub f64);

impl WeightFns for ConstLog {
    fn a(&self, _m: usize) -> f64 {
        self.0
    }
    fn b(&self, m: usize) -> f64 {
        (m as f64).log2()
    }
}

/// Sample the maximum weighted depth `RD(n)` of one probabilistic
/// `(a, b)`-tree with `n` leaves (`n` a power of two).
///
/// Walks the complete binary tree once; `O(n)` time, `O(log n)` space.
///
/// ```
/// use rand::SeedableRng;
/// use sepdc_core::punting::{sample_rd, ZeroLog};
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(4);
/// let rd = sample_rd(1024, &ZeroLog, &mut rng);
/// // Punting Lemma regime: far below the Θ(log² n) worst case of 55.
/// assert!(rd < 30.0);
/// ```
///
/// # Panics
/// Panics unless `n` is a power of two and at least 2.
pub fn sample_rd<W: WeightFns, R: Rng>(n: usize, w: &W, rng: &mut R) -> f64 {
    sample_rd_recorded(n, w, rng, &RunRecorder::disabled())
}

/// [`sample_rd`] with an observability recorder: every internal node is
/// counted at its level (`RunRecorder::node`), and every punt draw —
/// the probability-`1/m` event that takes the `b(m)` weight — is recorded
/// as a punt event at that level, giving EXP-6 the per-depth punt
/// histogram the Punting Lemma is about.
///
/// Draw order is identical to [`sample_rd`] (which delegates here with a
/// disabled recorder), so both produce the same value from the same rng
/// state.
///
/// # Panics
/// Panics unless `n` is a power of two and at least 2.
pub fn sample_rd_recorded<W: WeightFns, R: Rng>(
    n: usize,
    w: &W,
    rng: &mut R,
    rec: &RunRecorder,
) -> f64 {
    assert!(
        n.is_power_of_two() && n >= 2,
        "n must be a power of two ≥ 2"
    );
    // Iterative DFS carrying accumulated weight; internal nodes only
    // (leaves carry no weight in the paper's definition — weights sit on
    // the internal nodes of the recursion).
    let mut max_depth: f64 = 0.0;
    // Stack of (subtree_leaves, accumulated weight above this node, level).
    let mut stack: Vec<(usize, f64, usize)> = vec![(n, 0.0, 0)];
    while let Some((m, acc, level)) = stack.pop() {
        rec.node(level);
        // Node weight: a(m) w.p. 1 - 1/m, else b(m).
        let weight = if rng.gen_range(0.0..1.0) < 1.0 / m as f64 {
            rec.punt(level);
            w.b(m)
        } else {
            w.a(m)
        };
        let total = acc + weight;
        if m == 2 {
            // Children are leaves; the path ends here.
            max_depth = max_depth.max(total);
        } else {
            stack.push((m / 2, total, level + 1));
            stack.push((m / 2, total, level + 1));
        }
    }
    max_depth
}

/// The constant `ρ = √e / 2` of Lemma 4.1.
pub fn rho() -> f64 {
    std::f64::consts::E.sqrt() / 2.0
}

/// The constant `A = e^{ρ(1-ρ)⁻¹}` of Lemma 4.1 (the paper's display
/// writes `A = e^{ρ(1-ρ)}`; the derivation in the proof produces the
/// geometric-series exponent `ρ/(1-ρ)`, which is the sound bound and the
/// one we validate against — it is the larger of the two, so it upper
/// bounds both readings).
pub fn a_const() -> f64 {
    let r = rho();
    (r / (1.0 - r)).exp()
}

/// The Lemma 4.1 tail bound `Pr(RD(n) > 2c·log₂ n) ≤ n·A·e^{-c·log₂ n}`,
/// clamped to 1.
pub fn lemma_bound(n: usize, c: f64) -> f64 {
    let logn = (n as f64).log2();
    (n as f64 * a_const() * (-c * logn).exp()).min(1.0)
}

/// Empirical tail: fraction of `trials` samples with
/// `RD(n) > 2c·log₂ n`.
pub fn empirical_tail<W: WeightFns, R: Rng>(
    n: usize,
    c: f64,
    trials: usize,
    w: &W,
    rng: &mut R,
) -> f64 {
    let threshold = 2.0 * c * (n as f64).log2();
    let mut exceed = 0usize;
    for _ in 0..trials {
        if sample_rd(n, w, rng) > threshold {
            exceed += 1;
        }
    }
    exceed as f64 / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn rho_and_a_values() {
        assert!((rho() - 0.8243606354).abs() < 1e-9);
        assert!(a_const() > 1.0);
    }

    #[test]
    fn a_const_erratum_pins_both_readings() {
        // Lemma 4.1 erratum (see EXPERIMENTS.md): the paper's display
        // writes A = e^{ρ(1-ρ)} but the geometric series in the proof
        // sums to exponent ρ/(1-ρ). Pin both values so a silent "fix"
        // toward the display constant fails loudly.
        let r = rho();
        let display = (r * (1.0 - r)).exp();
        let derivation = (r / (1.0 - r)).exp();
        assert!((display - 1.1557970335).abs() < 1e-9);
        assert!((derivation - 109.2331401747).abs() < 1e-7);
        // We use the derivation constant: it is the sound bound and the
        // larger of the two, so it upper-bounds both readings.
        assert_eq!(a_const(), derivation);
        assert!(derivation > display);
    }

    #[test]
    fn rd_zero_log_is_nonnegative_and_bounded() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..50 {
            let rd = sample_rd(64, &ZeroLog, &mut rng);
            assert!(rd >= 0.0);
            // Absolute worst case: every node punts; the root path weight
            // is then log(64) + log(32) + ... + log(2) = 6+5+4+3+2+1 = 21.
            assert!(rd <= 21.0 + 1e-12);
        }
    }

    #[test]
    fn rd_const_tree_all_a_weights() {
        // With b = a = C the tree is deterministic: every root-leaf path
        // has log2(n) internal nodes of weight C.
        struct Const(f64);
        impl WeightFns for Const {
            fn a(&self, _m: usize) -> f64 {
                self.0
            }
            fn b(&self, _m: usize) -> f64 {
                self.0
            }
        }
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let rd = sample_rd(256, &Const(1.5), &mut rng);
        assert!((rd - 8.0 * 1.5).abs() < 1e-12);
    }

    #[test]
    fn rd_typically_small() {
        // The punting lemma's content: RD(n) is O(log n) w.h.p., i.e. far
        // below the deterministic worst case Θ(log² n).
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let n = 1024;
        let mut sum = 0.0;
        let trials = 200;
        for _ in 0..trials {
            sum += sample_rd(n, &ZeroLog, &mut rng);
        }
        let mean = sum / trials as f64;
        let log2n = (n as f64).log2();
        assert!(
            mean < 2.5 * log2n,
            "mean RD {mean:.2} not O(log n) = {log2n}"
        );
    }

    #[test]
    fn empirical_tail_below_lemma_bound() {
        // Where the bound is nontrivial (< 1), the empirical tail should
        // respect it.
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        for n in [256usize, 1024] {
            for c in [2.0, 3.0] {
                let bound = lemma_bound(n, c);
                let tail = empirical_tail(n, c, 300, &ZeroLog, &mut rng);
                assert!(
                    tail <= bound + 0.05,
                    "n={n} c={c}: tail {tail} > bound {bound}"
                );
            }
        }
    }

    #[test]
    fn lemma_bound_clamped_and_decreasing_in_c() {
        assert!(lemma_bound(4, 0.0) == 1.0);
        let b1 = lemma_bound(1024, 2.0);
        let b2 = lemma_bound(1024, 3.0);
        assert!(b2 < b1);
    }

    #[test]
    fn const_log_weights() {
        let w = ConstLog(2.0);
        assert_eq!(w.a(100), 2.0);
        assert!((w.b(8) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn recorded_variant_matches_plain_and_profiles_levels() {
        // Same rng state → identical RD value (sample_rd delegates with a
        // disabled recorder, so the draw order cannot diverge).
        let n = 256usize;
        let levels = (n as f64).log2() as usize; // internal levels: 0..=7
        let mut rng_a = ChaCha8Rng::seed_from_u64(6);
        let mut rng_b = ChaCha8Rng::seed_from_u64(6);
        let rec = RunRecorder::new(true, levels);
        let plain = sample_rd(n, &ZeroLog, &mut rng_a);
        let recorded = sample_rd_recorded(n, &ZeroLog, &mut rng_b, &rec);
        assert_eq!(plain, recorded);
        // The complete binary tree has 2^level internal nodes per level,
        // down to the m = 2 level (n/2 nodes).
        let rows = rec.depth_rows();
        assert_eq!(rows.len(), levels);
        for (level, row) in rows.iter().enumerate() {
            assert_eq!(row.nodes, 1 << level, "level {level}");
            assert!(row.punts <= row.nodes, "level {level}");
        }
        // Punts exist somewhere: the m = 2 level alone flips b() with
        // probability 1/2 per node, 128 nodes here.
        assert!(rows.iter().map(|r| r.punts).sum::<u64>() > 0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        sample_rd(100, &ZeroLog, &mut rng);
    }
}
