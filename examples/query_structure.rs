//! Neighborhood query structure demo (Section 3): build the separator-based
//! search structure over a k-ply neighborhood system and answer
//! point-location queries — "which neighborhoods contain this point?" —
//! in `O(log n + m₀)` time with `O(n)` space.
//!
//! ```sh
//! cargo run --release --example query_structure
//! ```

use sepdc::core::{brute_force_knn, NeighborhoodSystem, QueryTree, QueryTreeConfig};
use sepdc::workloads::Workload;

fn main() {
    let k = 2;
    println!("Section 3 search structure over k-neighborhood systems (k = {k})\n");
    println!(
        "{:>8} {:>7} {:>9} {:>8} {:>12} {:>11} {:>10}",
        "n", "height", "h/log2 n", "leaves", "stored/n", "avg query", "max query"
    );

    for exp in [10usize, 11, 12, 13, 14] {
        let n = 1 << exp;
        let points = Workload::Clusters.generate::<2>(n, exp as u64);
        let knn = brute_force_knn(&points, k);
        let system = NeighborhoodSystem::from_knn(&points, &knn);

        let cfg = QueryTreeConfig::default();
        let tree = QueryTree::build::<3>(system.balls(), cfg, 7);
        let stats = tree.stats();

        // Query with fresh probe points (not just the centers).
        let probes = Workload::UniformCube.generate::<2>(2000, 999 + exp as u64);
        let mut total_cost = 0usize;
        let mut max_cost = 0usize;
        let mut total_hits = 0usize;
        for p in &probes {
            let c = tree.query_cost(p);
            total_cost += c;
            max_cost = max_cost.max(c);
            total_hits += tree.covering(p).len();
        }

        println!(
            "{:>8} {:>7} {:>9.2} {:>8} {:>12.2} {:>11.1} {:>10}",
            n,
            stats.height,
            stats.height as f64 / (n as f64).log2(),
            stats.leaves,
            stats.stored_balls as f64 / n as f64,
            total_cost as f64 / probes.len() as f64,
            max_cost
        );
        let _ = total_hits;
    }

    println!(
        "\nLemma 3.1 predicts: height = O(log n) (flat h/log2 n column),\n\
         stored/n = O(1) (linear space), query cost = O(log n + m₀)."
    );

    // Spot-check correctness against a linear scan.
    let points = Workload::Clusters.generate::<2>(2048, 5);
    let knn = brute_force_knn(&points, k);
    let system = NeighborhoodSystem::from_knn(&points, &knn);
    let tree = QueryTree::build::<3>(system.balls(), QueryTreeConfig::default(), 3);
    let probes = Workload::UniformCube.generate::<2>(500, 77);
    for p in &probes {
        let mut fast = tree.covering(p);
        fast.sort_unstable();
        let mut slow: Vec<u32> = system
            .balls()
            .iter()
            .enumerate()
            .filter(|(_, b)| b.contains(p))
            .map(|(i, _)| i as u32)
            .collect();
        slow.sort_unstable();
        assert_eq!(fast, slow, "query mismatch at {p:?}");
    }
    println!("correctness spot-check vs linear scan on 500 probes ✓");
}
