//! Validation utilities: the checks the test suite runs, exposed as a
//! public API so downstream users (and the experiment harness) can verify
//! results on their own data.

use crate::brute::brute_force_knn;
use crate::knn::KnnResult;
use rayon::prelude::*;
use sepdc_geom::point::Point;

/// A failed validation, with enough context to debug.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ValidationError {
    /// Which check failed.
    pub check: &'static str,
    /// Human-readable detail.
    pub detail: String,
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "validation '{}' failed: {}", self.check, self.detail)
    }
}

impl std::error::Error for ValidationError {}

fn err(check: &'static str, detail: String) -> ValidationError {
    ValidationError { check, detail }
}

/// Full validation of a k-NN result against its point set:
///
/// 1. structural invariants (sorted, deduplicated, capped, no self-loops);
/// 2. recorded distances match the actual point coordinates;
/// 3. **radius maximality**: no non-listed point is strictly closer than
///    the k-th listed distance (the defining property of the
///    k-neighborhood ball) — checked exhaustively, `O(n²)` but parallel.
pub fn validate_knn<const D: usize>(
    points: &[Point<D>],
    knn: &KnnResult,
) -> Result<(), ValidationError> {
    if points.len() != knn.len() {
        return Err(err(
            "length",
            format!("{} points vs {} lists", points.len(), knn.len()),
        ));
    }
    knn.check_invariants().map_err(|e| err("invariants", e))?;

    // Distances must be genuine.
    for i in 0..points.len() {
        for nb in knn.neighbors(i) {
            let actual = points[i].dist_sq(&points[nb.idx as usize]);
            if (actual - nb.dist_sq).abs() > 1e-9 * (1.0 + actual) {
                return Err(err(
                    "distances",
                    format!(
                        "point {i} -> {}: recorded {} vs actual {actual}",
                        nb.idx, nb.dist_sq
                    ),
                ));
            }
        }
    }

    // Radius maximality, in parallel.
    let k = knn.k();
    let bad: Option<(usize, usize)> = (0..points.len()).into_par_iter().find_map_any(|i| {
        let expected_len = k.min(points.len().saturating_sub(1));
        if knn.neighbors(i).len() != expected_len {
            return Some((i, usize::MAX));
        }
        let r_sq = knn.radius_sq(i);
        if !r_sq.is_finite() {
            return None; // short list already reported above
        }
        let listed = knn.neighbors(i);
        for (j, p) in points.iter().enumerate() {
            if j == i {
                continue;
            }
            let d = points[i].dist_sq(p);
            // Strictly closer than the k-th and not listed => missed.
            if d < r_sq * (1.0 - 1e-12) - 1e-300 && !listed.iter().any(|nb| nb.idx as usize == j) {
                return Some((i, j));
            }
        }
        None
    });
    if let Some((i, j)) = bad {
        if j == usize::MAX {
            return Err(err("completeness", format!("point {i}: short list")));
        }
        return Err(err(
            "maximality",
            format!("point {i} misses closer neighbor {j}"),
        ));
    }
    Ok(())
}

/// Validate by direct comparison against a freshly computed brute-force
/// oracle (distance profiles, tie-insensitive).
pub fn validate_against_oracle<const D: usize>(
    points: &[Point<D>],
    knn: &KnnResult,
    tol: f64,
) -> Result<(), ValidationError> {
    let oracle = brute_force_knn(points, knn.k());
    knn.same_distances(&oracle, tol)
        .map_err(|e| err("oracle", e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn::Neighbor;
    use sepdc_workloads::Workload;

    #[test]
    fn oracle_result_validates() {
        let pts = Workload::UniformCube.generate::<2>(300, 1);
        let knn = brute_force_knn(&pts, 3);
        validate_knn(&pts, &knn).unwrap();
        validate_against_oracle(&pts, &knn, 1e-12).unwrap();
    }

    #[test]
    fn corrupted_distance_is_caught() {
        let pts = Workload::UniformCube.generate::<2>(50, 2);
        let mut knn = brute_force_knn(&pts, 1);
        let wrong = vec![Neighbor {
            idx: 1,
            dist_sq: 0.0, // almost surely not the true distance
        }];
        knn.set_list(0, &wrong);
        assert!(validate_knn(&pts, &knn).is_err());
    }

    #[test]
    fn missing_closer_neighbor_is_caught() {
        // Three collinear points; claim 2's neighbor is 0 (distance 2)
        // while 1 is at distance 1.
        let pts = vec![
            Point::<1>::from([0.0]),
            Point::from([1.0]),
            Point::from([2.0]),
        ];
        let mut knn = brute_force_knn(&pts, 1);
        knn.set_list(
            2,
            &[Neighbor {
                idx: 0,
                dist_sq: 4.0,
            }],
        );
        let e = validate_knn(&pts, &knn).unwrap_err();
        assert_eq!(e.check, "maximality");
    }

    #[test]
    fn short_list_is_caught() {
        let pts = Workload::UniformCube.generate::<2>(20, 3);
        let mut knn = brute_force_knn(&pts, 2);
        knn.set_list(5, &[]);
        let e = validate_knn(&pts, &knn).unwrap_err();
        assert_eq!(e.check, "completeness");
    }

    #[test]
    fn length_mismatch_is_caught() {
        let pts = Workload::UniformCube.generate::<2>(10, 4);
        let knn = KnnResult::new(9, 1);
        assert_eq!(validate_knn(&pts, &knn).unwrap_err().check, "length");
    }

    #[test]
    fn parallel_and_simple_results_validate() {
        let pts = Workload::TwoSlabs.generate::<2>(400, 5);
        let cfg = crate::KnnDcConfig::new(2);
        let par = crate::parallel_knn::<2, 3>(&pts, &cfg);
        validate_knn(&pts, &par.knn).unwrap();
        let simple = crate::simple_parallel_knn::<2, 3>(&pts, &cfg);
        validate_knn(&pts, &simple.knn).unwrap();
    }
}
