//! The `sepdc serve` daemon: load a snapshot once, answer probe batches
//! forever.
//!
//! ## Protocol (newline-delimited, UTF-8, over stdin/stdout)
//!
//! One request per line; one response line per request, in request order:
//!
//! * **Probe** — a point in the input CSV format (`x,y,…` or
//!   whitespace-separated, exactly `dim` coordinates). Response:
//!   `seq,count,id id id…` — the same row shape `sepdc query --out`
//!   writes, with `seq` the global probe sequence number since startup.
//! * **`swap PATH`** — load, validate, and atomically install a new
//!   snapshot (same kind and dimension). Response: `ok swapped
//!   generation=G n=N` or `error: …` (the old index keeps serving on
//!   failure; in-flight batches finish on the generation they started
//!   with — old generations drain as their handles drop).
//! * **`stats`** — `ok generation=G n=N dim=D probes=P batches=B swaps=S`.
//! * **`quit`** — `ok bye`, then exit. EOF on stdin also exits.
//! * Blank lines and `#` comments are ignored without a response, so a
//!   generated point file can be piped in unmodified.
//! * A malformed probe line answers `error: …` and poisons nothing.
//!
//! ## Admission batching
//!
//! A reader thread feeds a bounded channel; the serving loop blocks for
//! the first pending request, then drains whatever else has already
//! arrived — coalescing small requests into one batch, capped at a
//! `chunk_size`-aligned maximum — and answers the whole batch through
//! [`QueryTree::try_serve`]. Answers ride the deterministic CSR engine,
//! so a batch's rows are byte-identical to `sepdc query` over the same
//! probes no matter how requests were coalesced or how many threads
//! serve them.

use crate::io::parse_points;
use crate::CliResult;
use sepdc_core::serve::{CoverPredicate, ServeConfig};
use sepdc_core::snapshot::{self, SnapshotKind};
use sepdc_core::QueryTree;
use sepdc_geom::Point;
use std::io::{BufRead, BufWriter, Write};
use std::sync::mpsc;
use std::sync::{Arc, RwLock};

/// Daemon tunables (`sepdc serve` flags).
#[derive(Clone, Copy, Debug)]
pub struct DaemonConfig {
    /// Serve the open-interior predicate instead of the closed one.
    pub interior: bool,
    /// Chunk size of the underlying CSR engine ([`ServeConfig::chunk_size`]).
    pub chunk: usize,
    /// Maximum probes coalesced into one served batch; rounded down to a
    /// multiple of `chunk` (and up to at least one chunk) so admission
    /// batches stay chunk-aligned.
    pub batch_max: usize,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            interior: false,
            chunk: 1024,
            batch_max: 4096,
        }
    }
}

impl DaemonConfig {
    /// The chunk-aligned admission cap.
    fn aligned_cap(&self) -> usize {
        let chunk = self.chunk.max(1);
        (self.batch_max / chunk).max(1) * chunk
    }
}

/// Counters the daemon reports on `stats` and returns at exit.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DaemonStats {
    /// Probes answered.
    pub probes: u64,
    /// Batches served (each one `try_serve` call).
    pub batches: u64,
    /// Successful snapshot swaps.
    pub swaps: u64,
}

/// One loaded snapshot generation: the tree plus its provenance.
struct Generation<const D: usize> {
    tree: QueryTree<D>,
    number: u64,
}

/// `ArcSwap`-style cell: readers clone the current `Arc` and keep serving
/// on it while a `swap` installs a new generation; the old generation is
/// freed when its last in-flight handle drops (drains, never torn down
/// mid-batch).
struct IndexCell<const D: usize> {
    inner: RwLock<Arc<Generation<D>>>,
}

impl<const D: usize> IndexCell<D> {
    fn new(tree: QueryTree<D>) -> Self {
        IndexCell {
            inner: RwLock::new(Arc::new(Generation { tree, number: 1 })),
        }
    }

    fn current(&self) -> Arc<Generation<D>> {
        Arc::clone(&self.inner.read().expect("index cell poisoned"))
    }

    /// Install `tree` as the next generation, returning its number.
    fn swap(&self, tree: QueryTree<D>) -> u64 {
        let mut slot = self.inner.write().expect("index cell poisoned");
        let number = slot.number + 1;
        *slot = Arc::new(Generation { tree, number });
        number
    }
}

/// Run the daemon over arbitrary line-based transports. The binary passes
/// stdin/stdout; tests pass in-memory buffers. Returns the final counters
/// when the input ends (EOF, `quit`, or the client closing the response
/// pipe).
pub fn run_daemon<R, W>(
    input: R,
    output: W,
    index_path: &str,
    cfg: &DaemonConfig,
) -> CliResult<DaemonStats>
where
    R: BufRead + Send + 'static,
    W: Write,
{
    let bytes = std::fs::read(index_path).map_err(|e| format!("cannot read {index_path}: {e}"))?;
    let info = snapshot::inspect(&bytes).map_err(|e| format!("{index_path}: {e}"))?;
    if info.kind != SnapshotKind::QueryTree {
        return Err(format!(
            "{index_path}: holds a {}, the daemon serves query-tree snapshots",
            info.kind.name()
        ));
    }
    fn run<const D: usize>(
        bytes: &[u8],
        input: impl BufRead + Send + 'static,
        output: impl Write,
        cfg: &DaemonConfig,
    ) -> CliResult<DaemonStats> {
        let tree = snapshot::load_query_tree::<D>(bytes).map_err(|e| e.to_string())?;
        serve_loop::<D>(tree, input, output, cfg)
    }
    match info.dim {
        1 => run::<1>(&bytes, input, output, cfg),
        2 => run::<2>(&bytes, input, output, cfg),
        3 => run::<3>(&bytes, input, output, cfg),
        4 => run::<4>(&bytes, input, output, cfg),
        5 => run::<5>(&bytes, input, output, cfg),
        d => Err(format!(
            "unsupported snapshot dimension {d} (supported: 1..=5)"
        )),
    }
}

/// What one request line asks for.
enum Request<const D: usize> {
    Probe(Point<D>),
    Malformed(String),
    Swap(String),
    Stats,
    Quit,
}

fn classify<const D: usize>(line: &str) -> Option<Request<D>> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return None;
    }
    if let Some(path) = line.strip_prefix("swap ") {
        return Some(Request::Swap(path.trim().to_string()));
    }
    match line {
        "stats" => Some(Request::Stats),
        "quit" => Some(Request::Quit),
        _ => Some(match parse_points::<D>(line) {
            Ok(pts) if pts.len() == 1 => Request::Probe(pts[0]),
            Ok(_) => Request::Malformed("expected exactly one probe per line".to_string()),
            Err(e) => Request::Malformed(e),
        }),
    }
}

fn serve_loop<const D: usize>(
    tree: QueryTree<D>,
    input: impl BufRead + Send + 'static,
    output: impl Write,
    cfg: &DaemonConfig,
) -> CliResult<DaemonStats> {
    let pred = if cfg.interior {
        CoverPredicate::Open
    } else {
        CoverPredicate::Closed
    };
    let serve_cfg = ServeConfig {
        chunk_size: cfg.chunk,
        ..ServeConfig::default()
    };
    serve_cfg.validate().map_err(|e| e.to_string())?;
    let cap = cfg.aligned_cap();
    let cell = IndexCell::new(tree);
    {
        let gen = cell.current();
        eprintln!(
            "sepdc serve: {} balls (dim {D}), generation {}, {} predicate, \
             chunk {}, admission cap {cap}",
            gen.tree.len(),
            gen.number,
            pred.name(),
            serve_cfg.chunk_size,
        );
    }

    // Reader thread: pull raw lines off the transport into a bounded
    // queue. The serving loop coalesces whatever has already arrived.
    let (tx, rx) = mpsc::sync_channel::<String>(2 * cap);
    std::thread::spawn(move || {
        for line in input.lines() {
            let Ok(line) = line else { break };
            if tx.send(line).is_err() {
                break;
            }
        }
    });

    let mut out = BufWriter::new(output);
    let mut stats = DaemonStats::default();
    let mut seq: u64 = 0;
    let mut batch: Vec<Point<D>> = Vec::new();

    // Serve the buffered probes as one batch; write one CSR row per probe.
    // A write error means the client hung up — finish cleanly.
    let flush_batch = |batch: &mut Vec<Point<D>>,
                       out: &mut BufWriter<_>,
                       seq: &mut u64,
                       stats: &mut DaemonStats|
     -> CliResult<bool> {
        if batch.is_empty() {
            return Ok(true);
        }
        let gen = cell.current();
        let served = gen
            .tree
            .try_serve(batch, pred, &serve_cfg)
            .map_err(|e| e.to_string())?;
        for hits in served.result.iter() {
            let ids: Vec<String> = hits.iter().map(u32::to_string).collect();
            if writeln!(out, "{seq},{},{}", hits.len(), ids.join(" ")).is_err() {
                return Ok(false);
            }
            *seq += 1;
        }
        stats.probes += batch.len() as u64;
        stats.batches += 1;
        batch.clear();
        Ok(true)
    };

    // Block for the first pending request, then drain what's queued.
    'serve: while let Ok(first) = rx.recv() {
        let mut lines = vec![first];
        while let Ok(line) = rx.try_recv() {
            lines.push(line);
        }
        for line in &lines {
            let Some(req) = classify::<D>(line) else {
                continue;
            };
            // Control requests and errors flush first so responses stay
            // in request order.
            let control = !matches!(req, Request::Probe(_));
            if control && !flush_batch(&mut batch, &mut out, &mut seq, &mut stats)? {
                break 'serve;
            }
            let ok = match req {
                Request::Probe(p) => {
                    batch.push(p);
                    if batch.len() >= cap
                        && !flush_batch(&mut batch, &mut out, &mut seq, &mut stats)?
                    {
                        break 'serve;
                    }
                    true
                }
                Request::Malformed(msg) => writeln!(out, "error: {msg}").is_ok(),
                Request::Stats => {
                    let gen = cell.current();
                    writeln!(
                        out,
                        "ok generation={} n={} dim={D} probes={} batches={} swaps={}",
                        gen.number,
                        gen.tree.len(),
                        stats.probes,
                        stats.batches,
                        stats.swaps,
                    )
                    .is_ok()
                }
                Request::Swap(path) => {
                    match std::fs::read(&path)
                        .map_err(|e| format!("cannot read {path}: {e}"))
                        .and_then(|bytes| {
                            snapshot::load_query_tree::<D>(&bytes).map_err(|e| e.to_string())
                        }) {
                        Ok(tree) => {
                            let n = tree.len();
                            let number = cell.swap(tree);
                            stats.swaps += 1;
                            writeln!(out, "ok swapped generation={number} n={n}").is_ok()
                        }
                        Err(e) => writeln!(out, "error: {e}").is_ok(),
                    }
                }
                Request::Quit => {
                    let _ = writeln!(out, "ok bye");
                    let _ = out.flush();
                    return Ok(stats);
                }
            };
            if !ok {
                break 'serve;
            }
        }
        if !flush_batch(&mut batch, &mut out, &mut seq, &mut stats)? {
            break;
        }
        if out.flush().is_err() {
            break;
        }
    }
    let _ = flush_batch(&mut batch, &mut out, &mut seq, &mut stats);
    let _ = out.flush();
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands;
    use std::io::Cursor;

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("sepdc-daemon-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// Build a small snapshot on disk plus the matching in-process hit
    /// rows for the same probes.
    fn fixture(dir: &std::path::Path) -> (String, String, Vec<String>) {
        let pts = commands::generate("uniform-cube", 400, 2, 3).unwrap();
        let probes = commands::generate("clusters", 120, 2, 9).unwrap();
        let built = commands::index_build(&pts, Some(2), 2, 5).unwrap();
        let snap = dir.join("index.snap");
        std::fs::write(&snap, &built.snapshot).unwrap();
        let q = commands::query(
            &pts,
            Some(2),
            2,
            Some(&probes),
            "uniform-cube",
            0,
            false,
            5,
            1024,
        )
        .unwrap();
        let rows: Vec<String> = q
            .hits_csv
            .lines()
            .filter(|l| !l.starts_with('#'))
            .map(String::from)
            .collect();
        (snap.to_string_lossy().into_owned(), probes, rows)
    }

    #[test]
    fn daemon_rows_match_in_process_answers() {
        let dir = tmpdir("parity");
        let (snap, probes, want) = fixture(&dir);
        // Pipe the raw probe file through, with control lines mixed in.
        let input = format!("stats\n{probes}quit\n");
        let mut out = Vec::new();
        let stats = run_daemon(
            Cursor::new(input.into_bytes()),
            &mut out,
            &snap,
            &DaemonConfig::default(),
        )
        .unwrap();
        assert_eq!(stats.probes, 120);
        let text = String::from_utf8(out).unwrap();
        let mut lines = text.lines();
        let first = lines.next().unwrap();
        assert!(first.starts_with("ok generation=1 n=400 dim=2"), "{first}");
        let rows: Vec<&str> = lines.clone().take(120).collect();
        assert_eq!(rows, want, "daemon CSR rows must match sepdc query");
        assert_eq!(lines.nth(120), Some("ok bye"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn batching_is_invisible_in_the_answers() {
        let dir = tmpdir("batching");
        let (snap, probes, want) = fixture(&dir);
        // Tiny admission cap: many small batches, identical rows.
        let cfg = DaemonConfig {
            chunk: 7,
            batch_max: 7,
            ..DaemonConfig::default()
        };
        let mut out = Vec::new();
        let stats = run_daemon(Cursor::new(probes.into_bytes()), &mut out, &snap, &cfg).unwrap();
        assert_eq!(stats.probes, 120);
        assert!(stats.batches >= 120 / 7, "cap must bound batch size");
        let text = String::from_utf8(out).unwrap();
        assert_eq!(text.lines().collect::<Vec<_>>(), want);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn swap_and_errors() {
        let dir = tmpdir("swap");
        let (snap, _, _) = fixture(&dir);
        // A second, different snapshot to swap in.
        let pts2 = commands::generate("grid", 200, 2, 21).unwrap();
        let built2 = commands::index_build(&pts2, Some(2), 2, 5).unwrap();
        let snap2 = dir.join("index2.snap");
        std::fs::write(&snap2, &built2.snapshot).unwrap();
        // A corrupt file the swap must reject while the old index serves on.
        let garbage = dir.join("garbage.snap");
        std::fs::write(&garbage, b"not a snapshot").unwrap();

        let input = format!(
            "0.5,0.5\nswap {missing}\nswap {garbage}\nnot,a,probe\n0.5,0.5\nswap {snap2}\nstats\n",
            missing = dir.join("missing.snap").display(),
            garbage = garbage.display(),
            snap2 = snap2.display(),
        );
        let mut out = Vec::new();
        let stats = run_daemon(
            Cursor::new(input.into_bytes()),
            &mut out,
            &snap,
            &DaemonConfig::default(),
        )
        .unwrap();
        assert_eq!(stats.swaps, 1);
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("0,"), "probe row first: {}", lines[0]);
        assert!(lines[1].starts_with("error: cannot read"), "{}", lines[1]);
        assert!(lines[2].starts_with("error:"), "{}", lines[2]);
        assert!(lines[3].starts_with("error:"), "{}", lines[3]);
        assert!(lines[4].starts_with("1,"), "probe rows keep numbering");
        assert_eq!(lines[5], "ok swapped generation=2 n=200");
        assert!(
            lines[6].starts_with("ok generation=2 n=200"),
            "{}",
            lines[6]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wrong_dimension_swap_is_rejected() {
        let dir = tmpdir("dim");
        let (snap, _, _) = fixture(&dir);
        let pts3 = commands::generate("uniform-cube", 100, 3, 4).unwrap();
        let built3 = commands::index_build(&pts3, Some(3), 2, 5).unwrap();
        let snap3 = dir.join("index3.snap");
        std::fs::write(&snap3, &built3.snapshot).unwrap();
        let input = format!("swap {}\nstats\n", snap3.display());
        let mut out = Vec::new();
        run_daemon(
            Cursor::new(input.into_bytes()),
            &mut out,
            &snap,
            &DaemonConfig::default(),
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(
            lines[0].starts_with("error:") && lines[0].contains("dimension"),
            "{}",
            lines[0]
        );
        assert!(
            lines[1].starts_with("ok generation=1"),
            "old index serves on"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
