//! Scan-based integer sorting and random permuting.
//!
//! The paper (§1) notes that without the SCAN primitive, "all the
//! algorithms presented in the paper can be implemented on a CRCW PRAM
//! with only an extra O(log log) factor … using more complicated
//! constructions including random permuting, integer sorting, and
//! selection". This module provides those constructions in the vector
//! model: a stable LSD radix sort whose inner pass is exactly the
//! two-scan `split` primitive, and a scan-friendly Fisher–Yates
//! permutation generator.

use crate::primitives::par_split;
use crate::scan::{exclusive_scan, AddUsize};
use rand::Rng;

/// Stable sort of `(key, payload)` pairs by `u64` key, LSD radix with
/// `RADIX_BITS`-bit digits. Each digit pass is a stable counting split —
/// `O(1)` scan rounds per pass in the vector model, `O(64/RADIX_BITS)`
/// passes total.
pub fn radix_sort_pairs<T: Copy>(pairs: &mut Vec<(u64, T)>) {
    const RADIX_BITS: u32 = 8;
    const BUCKETS: usize = 1 << RADIX_BITS;
    let n = pairs.len();
    if n <= 1 {
        return;
    }
    let max_key = pairs.iter().map(|p| p.0).max().unwrap_or(0);
    let passes = if max_key == 0 {
        1
    } else {
        (64 - max_key.leading_zeros()).div_ceil(RADIX_BITS)
    };
    let mut src = std::mem::take(pairs);
    let mut dst: Vec<(u64, T)> = Vec::with_capacity(n);
    for pass in 0..passes {
        let shift = pass * RADIX_BITS;
        // Counting split: histogram, exclusive scan for bucket offsets,
        // stable scatter.
        let mut counts = [0usize; BUCKETS];
        for &(k, _) in &src {
            counts[((k >> shift) & (BUCKETS as u64 - 1)) as usize] += 1;
        }
        let (offsets, _) = exclusive_scan(AddUsize, &counts);
        let mut cursor = offsets;
        dst.clear();
        dst.resize_with(n, || src[0]); // overwritten below
        for &(k, v) in &src {
            let b = ((k >> shift) & (BUCKETS as u64 - 1)) as usize;
            dst[cursor[b]] = (k, v);
            cursor[b] += 1;
        }
        std::mem::swap(&mut src, &mut dst);
    }
    *pairs = src;
}

/// Sort a `u64` key vector, returning the stable sorting permutation
/// (`perm[rank] = original index`).
pub fn sort_indices(keys: &[u64]) -> Vec<u32> {
    let mut pairs: Vec<(u64, u32)> = keys
        .iter()
        .enumerate()
        .map(|(i, &k)| (k, i as u32))
        .collect();
    radix_sort_pairs(&mut pairs);
    pairs.into_iter().map(|(_, i)| i).collect()
}

/// Binary MSD split sort expressed purely with the `split` primitive —
/// the textbook vector-model sort (one stable split per bit). Slower than
/// the radix sort but a direct transcription of the model; kept for tests
/// and the model-faithfulness argument.
pub fn split_sort_u64(keys: &[u64]) -> Vec<u64> {
    let mut order: Vec<u32> = (0..keys.len() as u32).collect();
    let max_key = keys.iter().copied().max().unwrap_or(0);
    let bits = if max_key == 0 {
        1
    } else {
        64 - max_key.leading_zeros()
    };
    for bit in 0..bits {
        let flags: Vec<bool> = order
            .iter()
            .map(|&i| (keys[i as usize] >> bit) & 1 == 0)
            .collect();
        let s = par_split(&flags);
        let mut next = Vec::with_capacity(order.len());
        next.extend(s.yes.iter().map(|&pos| order[pos]));
        next.extend(s.no.iter().map(|&pos| order[pos]));
        order = next;
    }
    order.into_iter().map(|i| keys[i as usize]).collect()
}

/// Uniformly random permutation of `0..n` (Fisher–Yates; the "random
/// permuting" primitive of the paper's CRCW remark).
pub fn random_permutation<R: Rng>(n: usize, rng: &mut R) -> Vec<u32> {
    let mut perm: Vec<u32> = (0..n as u32).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        perm.swap(i, j);
    }
    perm
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn pseudo_keys(n: usize, seed: u64) -> Vec<u64> {
        let mut s = seed | 1;
        (0..n)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                s % 10_000
            })
            .collect()
    }

    #[test]
    fn radix_sort_sorts() {
        let keys = pseudo_keys(5000, 42);
        let mut pairs: Vec<(u64, u32)> = keys
            .iter()
            .enumerate()
            .map(|(i, &k)| (k, i as u32))
            .collect();
        radix_sort_pairs(&mut pairs);
        let mut expected = keys.clone();
        expected.sort_unstable();
        let got: Vec<u64> = pairs.iter().map(|p| p.0).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn radix_sort_is_stable() {
        // Equal keys keep input order of payloads.
        let mut pairs: Vec<(u64, u32)> = vec![(5, 0), (1, 1), (5, 2), (1, 3), (5, 4)];
        radix_sort_pairs(&mut pairs);
        assert_eq!(pairs, vec![(1, 1), (1, 3), (5, 0), (5, 2), (5, 4)]);
    }

    #[test]
    fn radix_sort_edge_cases() {
        let mut empty: Vec<(u64, ())> = vec![];
        radix_sort_pairs(&mut empty);
        assert!(empty.is_empty());

        let mut one = vec![(7u64, 'x')];
        radix_sort_pairs(&mut one);
        assert_eq!(one, vec![(7, 'x')]);

        let mut zeros = vec![(0u64, 1), (0, 2), (0, 3)];
        radix_sort_pairs(&mut zeros);
        assert_eq!(zeros, vec![(0, 1), (0, 2), (0, 3)]);

        // Large keys exercising all passes.
        let mut big = vec![(u64::MAX, 0u8), (1, 1), (u64::MAX - 1, 2)];
        radix_sort_pairs(&mut big);
        assert_eq!(big[0], (1, 1));
        assert_eq!(big[2], (u64::MAX, 0));
    }

    #[test]
    fn sort_indices_is_stable_sorting_permutation() {
        let keys = vec![3u64, 1, 3, 0, 1];
        let idx = sort_indices(&keys);
        assert_eq!(idx, vec![3, 1, 4, 0, 2]);
        let mut prev = 0;
        for &i in &idx {
            assert!(keys[i as usize] >= prev);
            prev = keys[i as usize];
        }
    }

    #[test]
    fn split_sort_matches_std_sort() {
        let keys = pseudo_keys(2000, 7);
        let got = split_sort_u64(&keys);
        let mut expected = keys.clone();
        expected.sort_unstable();
        assert_eq!(got, expected);
    }

    #[test]
    fn split_sort_all_equal_and_empty() {
        assert!(split_sort_u64(&[]).is_empty());
        assert_eq!(split_sort_u64(&[9, 9, 9]), vec![9, 9, 9]);
    }

    #[test]
    fn random_permutation_is_a_permutation() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let p = random_permutation(1000, &mut rng);
        let mut seen = vec![false; 1000];
        for &i in &p {
            assert!(!seen[i as usize], "duplicate {i}");
            seen[i as usize] = true;
        }
    }

    #[test]
    fn random_permutation_is_roughly_uniform() {
        // Position of element 0 should spread; crude chi-square-free check.
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let n = 10;
        let trials = 5000;
        let mut pos_counts = vec![0usize; n];
        for _ in 0..trials {
            let p = random_permutation(n, &mut rng);
            let pos = p.iter().position(|&x| x == 0).unwrap();
            pos_counts[pos] += 1;
        }
        for &c in &pos_counts {
            let expected = trials / n;
            assert!(
                c > expected / 2 && c < expected * 2,
                "position count {c} far from uniform {expected}"
            );
        }
    }
}
