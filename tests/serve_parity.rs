//! Determinism contract of the batch serving engine: the answer to a
//! probe batch is a pure function of (tree, probes, predicate, chunk
//! size) — never of the thread count or the scheduler. These tests pin
//! that contract byte-for-byte through the public facade, plus the
//! edge-case behavior of the typed-error path.

use sepdc::core::serve::{BatchResult, CoverPredicate, ServeConfig};
use sepdc::core::{kdtree_all_knn, NeighborhoodSystem, QueryTree, QueryTreeConfig, SepdcError};
use sepdc::geom::Point;
use sepdc::workloads::Workload;

fn build_tree(n: usize, k: usize, seed: u64) -> QueryTree<2> {
    let pts = Workload::Clusters.generate::<2>(n, seed);
    let knn = kdtree_all_knn(&pts, k);
    let sys = NeighborhoodSystem::from_knn(&pts, &knn);
    QueryTree::build::<3>(sys.balls(), QueryTreeConfig::default(), seed)
}

fn assert_identical(a: &BatchResult, b: &BatchResult, ctx: &str) {
    assert_eq!(a.offsets(), b.offsets(), "{ctx}: offsets differ");
    assert_eq!(a.ids(), b.ids(), "{ctx}: ids differ");
}

#[test]
fn thread_count_cannot_change_the_answer() {
    let tree = build_tree(2000, 3, 17);
    let probes = Workload::UniformCube.generate::<2>(3000, 23);
    // Small chunk + zero threshold forces the parallel join path even for
    // modest batches, so the sweep actually exercises scheduling.
    let cfg = ServeConfig {
        chunk_size: 64,
        parallel_threshold: 0,
        ..ServeConfig::default()
    };
    for pred in [CoverPredicate::Closed, CoverPredicate::Open] {
        let baseline = tree.try_serve(&probes, pred, &cfg).unwrap();
        for threads in [1, 2, 7] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let out = pool
                .install(|| tree.try_serve(&probes, pred, &cfg))
                .unwrap();
            assert_identical(
                &out.result,
                &baseline.result,
                &format!("{} predicate, {threads} threads", pred.name()),
            );
            assert_eq!(
                out.stats,
                baseline.stats,
                "{} predicate, {threads} threads",
                pred.name()
            );
        }
    }
}

#[test]
fn batch_answers_match_pointwise_queries() {
    let tree = build_tree(1200, 2, 5);
    let probes = Workload::UniformCube.generate::<2>(400, 9);
    let closed = tree.batch_covering(&probes);
    let open = tree.batch_covering_interior(&probes);
    assert_eq!(closed.len(), probes.len());
    assert_eq!(open.len(), probes.len());
    for (i, p) in probes.iter().enumerate() {
        assert_eq!(closed.hits(i), tree.covering(p), "closed, probe {i}");
        assert_eq!(open.hits(i), tree.covering_interior(p), "open, probe {i}");
    }
    // The open predicate can only ever shed hits relative to closed.
    assert!(open.total_hits() <= closed.total_hits());
}

#[test]
fn empty_batch_and_empty_tree_are_total() {
    let tree = build_tree(300, 1, 3);
    let none: [Point<2>; 0] = [];
    let out = tree
        .try_serve(&none, CoverPredicate::Closed, &ServeConfig::default())
        .unwrap();
    assert!(out.result.is_empty());
    assert_eq!(out.result.offsets(), &[0]);
    assert_eq!(out.result.total_hits(), 0);

    let empty: QueryTree<2> = QueryTree::build::<3>(&[], QueryTreeConfig::default(), 1);
    let probes = Workload::UniformCube.generate::<2>(25, 8);
    let res = empty.batch_covering(&probes);
    assert_eq!(res.len(), probes.len());
    assert!(res.iter().all(<[u32]>::is_empty));
}

#[test]
fn non_finite_probes_are_typed_errors_not_panics() {
    let tree = build_tree(300, 1, 7);
    let mut probes = Workload::UniformCube.generate::<2>(20, 2);
    probes[13] = Point::from([f64::INFINITY, 0.25]);
    for (label, got) in [
        ("covering", tree.try_batch_covering(&probes)),
        ("interior", tree.try_batch_covering_interior(&probes)),
        (
            "serve",
            tree.try_serve(&probes, CoverPredicate::Open, &ServeConfig::default())
                .map(|o| o.result),
        ),
    ] {
        assert_eq!(got, Err(SepdcError::NonFinitePoint { idx: 13 }), "{label}");
    }
    // Validation happens before any work: a bad config surfaces first as
    // its own typed error.
    let bad = ServeConfig {
        chunk_size: 0,
        ..ServeConfig::default()
    };
    let err = tree
        .try_serve(&probes, CoverPredicate::Open, &bad)
        .unwrap_err();
    assert!(matches!(err, SepdcError::InvalidConfig { .. }), "{err}");
}
