//! The k-nearest-neighbor graph (Definition 1.1).
//!
//! Vertices are the input points; `(p_i, p_j)` is an edge when `p_i` is a
//! k-nearest neighbor of `p_j` or vice versa. The paper constructs the
//! graph from the k-neighborhood system in `O(log n)` extra rounds; here
//! the symmetrization is a sort + dedup over the directed lists.

use crate::knn::KnnResult;
use sepdc_geom::point::Point;
use sepdc_geom::shape::Separator;

/// Undirected k-NN graph.
#[derive(Clone, Debug)]
pub struct KnnGraph {
    n: usize,
    /// Sorted, deduplicated edges `(lo, hi)`.
    edges: Vec<(u32, u32)>,
    /// CSR-style adjacency.
    offsets: Vec<u32>,
    adjacency: Vec<u32>,
}

impl KnnGraph {
    /// Symmetrize a [`KnnResult`] into the k-NN graph.
    ///
    /// ```
    /// use sepdc_core::{brute_force_knn, KnnGraph};
    /// use sepdc_geom::Point;
    /// let pts: Vec<Point<1>> = (0..4).map(|i| Point::from([i as f64])).collect();
    /// let g = KnnGraph::from_knn(&brute_force_knn(&pts, 1));
    /// assert_eq!(g.num_vertices(), 4);
    /// assert!(g.degree(1) >= 1);
    /// ```
    pub fn from_knn(knn: &KnnResult) -> Self {
        let n = knn.len();
        let mut edges: Vec<(u32, u32)> = Vec::new();
        for i in 0..n {
            for nb in knn.neighbors(i) {
                let (a, b) = if (i as u32) < nb.idx {
                    (i as u32, nb.idx)
                } else {
                    (nb.idx, i as u32)
                };
                edges.push((a, b));
            }
        }
        edges.sort_unstable();
        edges.dedup();
        // CSR.
        let mut degree = vec![0u32; n];
        for &(a, b) in &edges {
            degree[a as usize] += 1;
            degree[b as usize] += 1;
        }
        let mut offsets = vec![0u32; n + 1];
        for i in 0..n {
            offsets[i + 1] = offsets[i] + degree[i];
        }
        let mut cursor = offsets.clone();
        let mut adjacency = vec![0u32; edges.len() * 2];
        for &(a, b) in &edges {
            adjacency[cursor[a as usize] as usize] = b;
            cursor[a as usize] += 1;
            adjacency[cursor[b as usize] as usize] = a;
            cursor[b as usize] += 1;
        }
        KnnGraph {
            n,
            edges,
            offsets,
            adjacency,
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The sorted edge list.
    pub fn edges(&self) -> &[(u32, u32)] {
        &self.edges
    }

    /// Neighbors of vertex `v`.
    pub fn neighbors(&self, v: usize) -> &[u32] {
        &self.adjacency[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }

    /// Degree of vertex `v`.
    pub fn degree(&self, v: usize) -> usize {
        (self.offsets[v + 1] - self.offsets[v]) as usize
    }

    /// Maximum degree.
    pub fn max_degree(&self) -> usize {
        (0..self.n).map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Number of edges with endpoints on opposite sides of a separator
    /// (surface points count as interior, matching the routing convention).
    /// This is the "edges crossing the cut" count of the introduction.
    pub fn edges_cut_by<const D: usize>(&self, points: &[Point<D>], sep: &Separator<D>) -> usize {
        assert_eq!(points.len(), self.n);
        self.edges
            .iter()
            .filter(|&&(a, b)| {
                let sa = sep.side(&points[a as usize]).routes_interior();
                let sb = sep.side(&points[b as usize]).routes_interior();
                sa != sb
            })
            .count()
    }

    /// Number of connected components (simple DFS; graphs here are small
    /// multiples of `n`).
    pub fn connected_components(&self) -> usize {
        let mut seen = vec![false; self.n];
        let mut components = 0;
        let mut stack = Vec::new();
        for start in 0..self.n {
            if seen[start] {
                continue;
            }
            components += 1;
            seen[start] = true;
            stack.push(start as u32);
            while let Some(v) = stack.pop() {
                for &w in self.neighbors(v as usize) {
                    if !seen[w as usize] {
                        seen[w as usize] = true;
                        stack.push(w);
                    }
                }
            }
        }
        components
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force_knn;
    use sepdc_geom::Hyperplane;

    fn line_graph(n: usize, k: usize) -> (Vec<Point<1>>, KnnGraph) {
        let pts: Vec<Point<1>> = (0..n).map(|i| Point::from([i as f64])).collect();
        let knn = brute_force_knn(&pts, k);
        let g = KnnGraph::from_knn(&knn);
        (pts, g)
    }

    #[test]
    fn line_1nn_graph_is_path_segments() {
        let (_, g) = line_graph(6, 1);
        // 1-NN on a line: each point links to an adjacent point; the edge
        // set is a subset of the path edges and covers every vertex.
        assert!(g.num_edges() >= 3);
        for v in 0..6 {
            assert!(g.degree(v) >= 1);
        }
        for &(a, b) in g.edges() {
            assert_eq!(b - a, 1, "1-NN edges on a line are adjacent pairs");
        }
    }

    #[test]
    fn symmetry_and_dedup() {
        let (_, g) = line_graph(10, 2);
        // Adjacent via i->j implies j adjacent to i.
        for v in 0..10 {
            for &w in g.neighbors(v) {
                assert!(g.neighbors(w as usize).contains(&(v as u32)));
            }
        }
        // Edge list strictly increasing => deduplicated.
        for w in g.edges().windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn k2_line_graph_connected() {
        let (_, g) = line_graph(20, 2);
        assert_eq!(g.connected_components(), 1);
    }

    #[test]
    fn max_degree_bounded_for_knn_graphs() {
        // Degree bound for k-NN graphs in the plane: ≤ τ₂·k + k = 6k + k.
        let pts = sepdc_workloads::Workload::UniformCube.generate::<2>(500, 1);
        for k in [1usize, 3] {
            let knn = brute_force_knn(&pts, k);
            let g = KnnGraph::from_knn(&knn);
            assert!(
                g.max_degree() <= 7 * k,
                "k={k}: max degree {} suspiciously large",
                g.max_degree()
            );
        }
    }

    #[test]
    fn edges_cut_by_hyperplane() {
        let (pts, g) = line_graph(10, 1);
        let sep = Hyperplane::axis_aligned(0, 4.5).into();
        // Only the edge (4,5) can cross x = 4.5 (if present).
        let cut = g.edges_cut_by(&pts, &sep);
        assert!(cut <= 1);
        let far = Hyperplane::axis_aligned(0, 100.0).into();
        assert_eq!(g.edges_cut_by(&pts, &far), 0);
    }

    #[test]
    fn empty_graph() {
        let knn = KnnResult::new(0, 1);
        let g = KnnGraph::from_knn(&knn);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.connected_components(), 0);
    }

    use crate::knn::KnnResult;
}
