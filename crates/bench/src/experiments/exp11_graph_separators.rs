//! EXP-11 — small separators of the constructed k-NN graph (the
//! abstract's punchline).
//!
//! Paper says (abstract + §1): the constructed k-NN graph is "a 'nicely'
//! embedded graph in d dimensions" — it has sphere separators with
//! `|W| = o(n)` such that every crossing edge has an endpoint in `W`.
//! We build k-NN graphs, derive vertex separators from sphere separators,
//! fit `|W| ~ n^e` (expect `e ≈ (d-1)/d`), and compare against the bad
//! fixed-orientation hyperplane on the adversarial input (where
//! `|W| = Θ(n)`).

use crate::harness::{fit_power_law, Table};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sepdc_core::graph_separator::{sphere_graph_separator, vertex_separator_from};
use sepdc_core::{kdtree_all_knn, KnnGraph};
use sepdc_geom::Hyperplane;
use sepdc_separator::SeparatorConfig;
use sepdc_workloads::Workload;

/// Run EXP-11.
pub fn run() {
    let mut table = Table::new(
        "EXP-11 — vertex separators of the k-NN graph (d=2, k=2, sphere vs worst hyperplane)",
        &[
            "workload / n",
            "|W| sphere",
            "|W|/√n",
            "balance",
            "|W| hyperplane",
            "hyper/n",
        ],
    );
    let cfg = SeparatorConfig::default();
    let ns = [1usize << 10, 1 << 12, 1 << 14];
    for w in [
        Workload::UniformCube,
        Workload::TwoSlabs,
        Workload::Clusters,
    ] {
        let mut sizes = Vec::new();
        for (i, &n) in ns.iter().enumerate() {
            let pts = w.generate::<2>(n, 60 + i as u64);
            let g = KnnGraph::from_knn(&kdtree_all_knn(&pts, 2));
            let mut rng = ChaCha8Rng::seed_from_u64(i as u64);
            let gs =
                sphere_graph_separator::<2, 3, _>(&pts, &g, &cfg, 6, &mut rng).expect("splittable");
            gs.verify(&g).expect("separator property");
            sizes.push(gs.separator.len() as f64);

            // Worst fixed-orientation median hyperplane.
            let hyper_w = (0..2)
                .map(|axis| {
                    let vals: Vec<f64> = pts.iter().map(|p| p[axis]).collect();
                    let mut sorted = vals.clone();
                    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
                    let cut = (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0 + 1e-12;
                    let sep = Hyperplane::axis_aligned(axis, cut).into();
                    vertex_separator_from(&pts, &g, &sep).separator.len()
                })
                .max()
                .unwrap();

            table.row(
                format!("{} n={n}", w.name()),
                vec![
                    format!("{}", gs.separator.len()),
                    format!("{:.2}", gs.separator.len() as f64 / (n as f64).sqrt()),
                    format!("{:.3}", gs.balance()),
                    format!("{hyper_w}"),
                    format!("{:.3}", hyper_w as f64 / n as f64),
                ],
            );
        }
        let ns_f: Vec<f64> = ns.iter().map(|&n| n as f64).collect();
        table.note(format!(
            "{}: sphere |W| ~ {}  (theory: n^0.50)",
            w.name(),
            crate::harness::fmt_exponent(fit_power_law(&ns_f, &sizes)),
        ));
    }
    table.note("every separator verified: removing W disconnects the two sides.");
    table.note("on two-slabs the worst hyperplane needs |W| ≈ n/2; spheres stay O(√n).");
    table.print();
}
