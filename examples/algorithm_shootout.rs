//! Algorithm shootout: every all-k-NN algorithm in the workspace on the
//! same inputs — results verified identical, wall time and work/depth
//! profiles side by side.
//!
//! ```sh
//! cargo run --release --example algorithm_shootout
//! ```

use sepdc::core::{
    brute_force_knn, kdtree_all_knn, parallel_knn, simple_parallel_knn, KnnDcConfig,
};
use sepdc::workloads::Workload;
use std::time::Instant;

fn main() {
    let k = 2;
    let cfg = KnnDcConfig::new(k).with_seed(11);

    for (w, n) in [
        (Workload::UniformCube, 30_000usize),
        (Workload::Clusters, 30_000),
        (Workload::TwoSlabs, 30_000),
    ] {
        println!("== {} (n = {n}, k = {k}, d = 2) ==", w.name());
        let points = w.generate::<2>(n, 77);

        let t = Instant::now();
        let oracle = brute_force_knn(&points, k);
        println!("  brute-force      {:>9.2?}   (O(n²) oracle)", t.elapsed());

        let t = Instant::now();
        let kd = kdtree_all_knn(&points, k);
        println!(
            "  kd-tree          {:>9.2?}   (sequential-work baseline)",
            t.elapsed()
        );
        kd.same_distances(&oracle, 1e-9).expect("kdtree correct");

        let t = Instant::now();
        let simple = simple_parallel_knn::<2, 3>(&points, &cfg);
        println!(
            "  simple-parallel  {:>9.2?}   depth {} rounds (§5, O(log² n)), \
             max crossing fraction {:.3}",
            t.elapsed(),
            simple.cost.depth,
            simple.stats.max_crossing_fraction
        );
        simple
            .knn
            .same_distances(&oracle, 1e-9)
            .expect("§5 correct");

        let t = Instant::now();
        let par = parallel_knn::<2, 3>(&points, &cfg);
        println!(
            "  parallel-nn      {:>9.2?}   depth {} rounds (§6, O(log n)), \
             {} fast / {} punts",
            t.elapsed(),
            par.cost.depth,
            par.stats.fast_corrections,
            par.stats.punts_threshold + par.stats.punts_marching
        );
        par.knn.same_distances(&oracle, 1e-9).expect("§6 correct");

        println!(
            "  work: simple {:.1}·n log n, parallel {:.1}·n log n\n",
            simple.cost.work as f64 / (n as f64 * (n as f64).log2()),
            par.cost.work as f64 / (n as f64 * (n as f64).log2()),
        );
    }
    println!("all algorithms agree with the brute-force oracle ✓");
}
