//! Determinism contract of *construction* — the build-side mirror of
//! `serve_parity.rs`. The Section 6 tree (node arena, per-node separators,
//! leaf permutation ranges, per-node bounds) and the final k-NN lists must
//! be a pure function of (points, config): any rayon pool size — including
//! a strictly sequential one — must reproduce them byte for byte. The
//! per-node seeding scheme (`sepdc::core::seeding`) derives every node's
//! RNG stream from the root seed and the node's root-to-node path, and the
//! parallel sweep/partition/march paths are all order-preserving, so this
//! holds by construction; these tests pin it through the public facade.

use sepdc::core::serve::{CoverPredicate, ServeConfig};
use sepdc::core::{
    parallel_knn, KnnDcConfig, NeighborhoodSystem, ParallelDcOutput, PartitionNode, QueryTree,
    QueryTreeConfig,
};
use sepdc::workloads::Workload;

const POOLS: [usize; 3] = [1, 2, 7];

fn in_pool<T>(threads: usize, f: impl FnOnce() -> T + Send) -> T
where
    T: Send,
{
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .unwrap()
        .install(f)
}

/// Byte-level equality of two Section 6 outputs: lists (ids *and*
/// distances, not just distances), structural stats, work/depth profile,
/// and the full tree arena including leaf permutation ranges and bounds.
fn assert_outputs_identical(a: &ParallelDcOutput<2>, b: &ParallelDcOutput<2>, ctx: &str) {
    assert_eq!(a.knn.len(), b.knn.len(), "{ctx}: n differs");
    for i in 0..a.knn.len() {
        assert_eq!(
            a.knn.neighbors(i),
            b.knn.neighbors(i),
            "{ctx}: neighbor list {i} differs"
        );
    }
    assert_eq!(a.stats, b.stats, "{ctx}: stats differ");
    assert_eq!(a.cost, b.cost, "{ctx}: work/depth profile differs");
    assert_eq!(
        a.tree.nodes(),
        b.tree.nodes(),
        "{ctx}: node arena differs (layout or separators)"
    );
    for (i, n) in a.tree.nodes().iter().enumerate() {
        if let PartitionNode::Leaf { start, len } = *n {
            assert_eq!(
                a.tree.leaf_point_ids(start, len),
                b.tree.leaf_point_ids(start, len),
                "{ctx}: leaf {i} permutation range differs"
            );
        }
    }
    assert_eq!(
        a.tree.bounds(),
        b.tree.bounds(),
        "{ctx}: per-node bounds differ"
    );
}

fn check_workload(w: Workload, n: usize, k: usize, seed: u64) {
    let pts = w.generate::<2>(n, seed);
    let cfg = KnnDcConfig::new(k).with_seed(seed ^ 0x5EED);
    let baseline = in_pool(1, || parallel_knn::<2, 3>(&pts, &cfg));
    baseline.knn.check_invariants().unwrap();
    for threads in POOLS {
        let out = in_pool(threads, || parallel_knn::<2, 3>(&pts, &cfg));
        assert_outputs_identical(&out, &baseline, &format!("{} {threads} threads", w.name()));
    }
}

#[test]
fn construction_identical_across_pools_uniform() {
    check_workload(Workload::UniformCube, 3000, 3, 41);
}

#[test]
fn construction_identical_across_pools_clustered() {
    check_workload(Workload::Clusters, 3000, 3, 42);
}

#[test]
fn construction_identical_across_pools_degenerate() {
    // Grid (massive ties) and NoisyLine (near-lower-dimensional) are the
    // adversarial routing cases: many points sit within tolerance of the
    // separator surfaces, so any evaluation-order dependence in the sweep
    // or the partition would surface here first.
    check_workload(Workload::Grid, 2048, 2, 43);
    check_workload(Workload::NoisyLine, 1500, 2, 44);
}

#[test]
fn construction_identical_with_duplicates() {
    let mut pts = Workload::UniformCube.generate::<2>(800, 45);
    for _ in 0..120 {
        pts.push(pts[7]);
    }
    let cfg = KnnDcConfig::new(2).with_seed(46);
    let baseline = in_pool(1, || parallel_knn::<2, 3>(&pts, &cfg));
    for threads in POOLS {
        let out = in_pool(threads, || parallel_knn::<2, 3>(&pts, &cfg));
        assert_outputs_identical(&out, &baseline, &format!("duplicates {threads} threads"));
    }
}

#[test]
fn query_structure_build_identical_across_pools() {
    // The Section 3 build shares the sweep + path-seeding machinery; its
    // internal node type is private, so parity is pinned through stats,
    // the work/depth profile, and behavior on a fixed probe batch.
    let pts = Workload::Clusters.generate::<2>(2500, 47);
    let knn = in_pool(1, || parallel_knn::<2, 3>(&pts, &KnnDcConfig::new(3)));
    let sys = NeighborhoodSystem::from_knn(&pts, &knn.knn);
    let probes = Workload::UniformCube.generate::<2>(2000, 48);
    let scfg = ServeConfig::default();
    let baseline = in_pool(1, || {
        QueryTree::build::<3>(sys.balls(), QueryTreeConfig::default(), 47)
    });
    let base_serve = baseline
        .try_serve(&probes, CoverPredicate::Closed, &scfg)
        .unwrap();
    for threads in POOLS {
        let tree = in_pool(threads, || {
            QueryTree::build::<3>(sys.balls(), QueryTreeConfig::default(), 47)
        });
        assert_eq!(tree.stats(), baseline.stats(), "{threads} threads: stats");
        assert_eq!(
            tree.build_cost(),
            baseline.build_cost(),
            "{threads} threads: work/depth"
        );
        let served = tree
            .try_serve(&probes, CoverPredicate::Closed, &scfg)
            .unwrap();
        assert_eq!(
            served.result.offsets(),
            base_serve.result.offsets(),
            "{threads} threads: serve offsets"
        );
        assert_eq!(
            served.result.ids(),
            base_serve.result.ids(),
            "{threads} threads: serve ids"
        );
    }
}
