//! Edge-case coverage for degenerate inputs: `k ≥ n`, `k = n - 1`,
//! `n ∈ {0, 1, 2}`, all-duplicate multisets, and the poisoned generators
//! from `sepdc_workloads::degenerate`. Both divide-and-conquer algorithms
//! are compared against the brute-force oracle; short lists must keep
//! their radius at `INFINITY` and every result must pass
//! `check_invariants`.

use sepdc::core::{
    brute_force_knn, parallel_knn, simple_parallel_knn, try_parallel_knn, try_simple_parallel_knn,
    KnnDcConfig, KnnResult, SepdcError,
};
use sepdc::geom::Point;
use sepdc::workloads::{degenerate, rng, Workload};

/// Run both D&C algorithms and the oracle on the same input; verify
/// agreement, invariants, and the short-list radius contract.
fn check_all_algorithms(pts: &[Point<2>], k: usize, seed: u64, label: &str) {
    let cfg = KnnDcConfig::new(k).with_seed(seed);
    let oracle = brute_force_knn(pts, k);
    oracle.check_invariants().unwrap();

    let par = parallel_knn::<2, 3>(pts, &cfg);
    par.knn
        .same_distances(&oracle, 1e-12)
        .unwrap_or_else(|e| panic!("{label}: parallel vs oracle: {e}"));
    par.knn.check_invariants().unwrap();

    let simple = simple_parallel_knn::<2, 3>(pts, &cfg);
    simple
        .knn
        .same_distances(&oracle, 1e-12)
        .unwrap_or_else(|e| panic!("{label}: simple vs oracle: {e}"));
    simple.knn.check_invariants().unwrap();

    // Short lists (fewer than k neighbors exist) keep an unbounded radius.
    for result in [&par.knn, &simple.knn, &oracle] {
        check_short_list_radii(result, pts.len(), k, label);
    }
}

fn check_short_list_radii(knn: &KnnResult, n: usize, k: usize, label: &str) {
    for i in 0..n {
        let len = knn.neighbors(i).len();
        assert_eq!(len, k.min(n - 1), "{label}: point {i} list length");
        if len < k {
            assert_eq!(
                knn.radius_sq(i),
                f64::INFINITY,
                "{label}: point {i} short list must keep radius_sq = INFINITY"
            );
        }
    }
}

#[test]
fn k_at_and_above_n() {
    for n in [2usize, 5, 40] {
        let pts = Workload::UniformCube.generate::<2>(n, 31);
        for k in [n - 1, n, n + 1, n + 5] {
            check_all_algorithms(&pts, k, 7, &format!("n={n} k={k}"));
        }
    }
}

#[test]
fn tiny_inputs() {
    // n = 0: empty result, no panic (k is valid, there is just nothing to do).
    let empty: Vec<Point<2>> = Vec::new();
    let cfg = KnnDcConfig::new(3);
    let out = try_parallel_knn::<2, 3>(&empty, &cfg).unwrap();
    assert_eq!(out.knn.len(), 0);
    let out = try_simple_parallel_knn::<2, 3>(&empty, &cfg).unwrap();
    assert_eq!(out.knn.len(), 0);

    // n = 1: one empty list with unbounded radius. n = 2: mutual neighbors.
    for n in [1usize, 2] {
        let pts = Workload::UniformCube.generate::<2>(n, 32);
        for k in [1usize, 2, 3] {
            check_all_algorithms(&pts, k, 8, &format!("tiny n={n} k={k}"));
        }
    }
}

#[test]
fn all_duplicate_inputs() {
    for n in [2usize, 17, 130] {
        let pts = degenerate::all_coincident::<2>(n, 2.5);
        for k in [1usize, 2, n - 1, n, n + 1] {
            if k == 0 {
                continue;
            }
            check_all_algorithms(&pts, k, 9, &format!("coincident n={n} k={k}"));
        }
        // All-coincident with k < n: every neighbor is at distance 0.
        let knn = brute_force_knn(&pts, 1);
        for i in 0..n {
            assert_eq!(knn.radius_sq(i), 0.0);
        }
    }
}

#[test]
fn duplicate_bundles_match_oracle() {
    let pts = degenerate::duplicate_bundles::<2, _>(120, 5, &mut rng(33));
    for k in [1usize, 4, 6] {
        check_all_algorithms(&pts, k, 10, &format!("bundles k={k}"));
    }
}

#[test]
fn tolerance_band_cluster_terminates_and_matches() {
    // The whole cloud sits inside a typical separator tolerance band: this
    // is the shape where accepted separators can disagree with strict-side
    // routing. Must terminate (degenerate-split guard) and stay correct.
    let pts = degenerate::tolerance_band_cluster::<2, _>(200, 1e-12, &mut rng(34));
    check_all_algorithms(&pts, 2, 11, "tolerance-band");
}

#[test]
fn poisoned_clouds_are_rejected_not_panicked() {
    let cfg = KnnDcConfig::new(2);
    for n in [1usize, 10, 100] {
        let nan_pts = degenerate::nan_poisoned::<2, _>(n, 0.1, &mut rng(35));
        for res in [
            try_parallel_knn::<2, 3>(&nan_pts, &cfg).map(|o| o.knn),
            try_simple_parallel_knn::<2, 3>(&nan_pts, &cfg).map(|o| o.knn),
        ] {
            match res {
                Err(SepdcError::NonFinitePoint { idx }) => {
                    assert!(
                        !nan_pts[idx].is_finite(),
                        "reported index must be the offender"
                    );
                }
                other => panic!("n={n}: expected NonFinitePoint, got {:?}", other.err()),
            }
        }
    }
    let inf_pts = degenerate::inf_poisoned::<2, _>(50, &mut rng(36));
    assert!(matches!(
        try_parallel_knn::<2, 3>(&inf_pts, &cfg),
        Err(SepdcError::NonFinitePoint { .. })
    ));
}
