//! Parallel selection in the vector model.
//!
//! Section 6.2 of the paper: for `k > 1` the correction's "closest point"
//! computation becomes a **k-closest** computation, which "can be computed
//! in random `O(log log k)` time" — a classical randomized selection
//! result. This module provides the selection primitives: randomized
//! `quickselect` expressed with packs (each partition round is `O(1)` scan
//! rounds), `k_smallest`, and the round-count instrumentation that lets
//! EXP-12 verify the doubly-logarithmic round growth.

use crate::scan::{exclusive_scan, AddUsize};
use rand::Rng;

/// Result of a selection: the value plus the number of partition rounds
/// the randomized recursion used (the vector-model time, up to constants).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Selected {
    /// The selected order statistic.
    pub value: f64,
    /// Partition rounds used.
    pub rounds: usize,
}

/// The `rank`-th smallest element (0-based) of `xs`, by randomized
/// partitioning. Expected `O(n)` work and `O(log n)` rounds worst case;
/// with the sampling pivot rule the expected round count for the
/// `k`-smallest use case is `O(log log n)`.
///
/// # Panics
/// Panics when `rank >= xs.len()` or any element is NaN.
pub fn select_rank<R: Rng>(xs: &[f64], rank: usize, rng: &mut R) -> Selected {
    assert!(rank < xs.len(), "rank {rank} out of range {}", xs.len());
    let mut pool: Vec<f64> = xs.to_vec();
    let mut target = rank;
    let mut rounds = 0;
    loop {
        rounds += 1;
        if pool.len() <= 32 {
            pool.sort_by(|a, b| a.partial_cmp(b).expect("NaN in selection"));
            return Selected {
                value: pool[target],
                rounds,
            };
        }
        // Sampled pivot: median of a small random sample — this is what
        // drives the expected O(log log) round behaviour.
        let mut sample: Vec<f64> = (0..9).map(|_| pool[rng.gen_range(0..pool.len())]).collect();
        sample.sort_by(|a, b| a.partial_cmp(b).expect("NaN"));
        let pivot = sample[sample.len() / 2];

        // One partition = three packs (less / equal / greater), each a
        // scan + scatter in the vector model.
        let less: Vec<f64> = pool.iter().copied().filter(|&x| x < pivot).collect();
        let equal = pool.iter().filter(|&&x| x == pivot).count();
        let greater: Vec<f64> = pool.iter().copied().filter(|&x| x > pivot).collect();

        if target < less.len() {
            pool = less;
        } else if target < less.len() + equal {
            return Selected {
                value: pivot,
                rounds,
            };
        } else {
            target -= less.len() + equal;
            pool = greater;
        }
    }
}

/// The `k` smallest elements of `xs` in ascending order (the §6.2
/// k-closest primitive). Uses one selection for the threshold plus one
/// pack; ties at the threshold are broken arbitrarily but the returned
/// multiset of values is exact.
pub fn k_smallest<R: Rng>(xs: &[f64], k: usize, rng: &mut R) -> Vec<f64> {
    if k == 0 {
        return Vec::new();
    }
    if k >= xs.len() {
        let mut all = xs.to_vec();
        all.sort_by(|a, b| a.partial_cmp(b).expect("NaN"));
        return all;
    }
    let threshold = select_rank(xs, k - 1, rng).value;
    let mut strict: Vec<f64> = xs.iter().copied().filter(|&x| x < threshold).collect();
    let ties = k - strict.len();
    strict.extend(std::iter::repeat_n(threshold, ties));
    strict.sort_by(|a, b| a.partial_cmp(b).expect("NaN"));
    strict
}

/// Floyd–Rivest style selection: pivots drawn from a `√n`-size sample
/// bracket the target rank, shrinking the candidate pool from `n` to
/// `Õ(n^{3/4})` per round — expected `O(log log n)` partition rounds,
/// the bound behind the paper's "`k` closest points can be computed in
/// random `O(log log k)` time" remark (§6.2).
///
/// Same contract as [`select_rank`]; the `rounds` field lets EXP-12
/// observe the doubly-logarithmic growth directly.
pub fn select_rank_fr<R: Rng>(xs: &[f64], rank: usize, rng: &mut R) -> Selected {
    assert!(rank < xs.len(), "rank {rank} out of range {}", xs.len());
    let mut pool: Vec<f64> = xs.to_vec();
    let mut target = rank;
    let mut rounds = 0;
    loop {
        rounds += 1;
        let n = pool.len();
        // Generous base case: below this size the remaining pool is sorted
        // outright (in the vector model a polylog-size sort is itself a
        // constant number of rounds, and the asymptotics of interest are
        // the shrink rounds above it).
        if n <= 2048 {
            pool.sort_by(|a, b| a.partial_cmp(b).expect("NaN in selection"));
            return Selected {
                value: pool[target],
                rounds,
            };
        }
        // Sample ~√n elements, sort them, and take two order statistics
        // around the target's proportional position with a safety margin
        // of ~n^{1/4} sample slots.
        let s = (n as f64).sqrt().ceil() as usize;
        let mut sample: Vec<f64> = (0..s).map(|_| pool[rng.gen_range(0..n)]).collect();
        sample.sort_by(|a, b| a.partial_cmp(b).expect("NaN"));
        let pos = (target as f64 / n as f64 * s as f64) as usize;
        let margin = (s as f64).sqrt().ceil() as usize + 1;
        let lo_pivot = sample[pos.saturating_sub(margin).min(s - 1)];
        let hi_pivot = sample[(pos + margin).min(s - 1)];

        // Heavy-tie short circuit: both pivots on the same value means
        // the sample is dominated by one element; resolve by equality.
        if lo_pivot == hi_pivot {
            let pivot = lo_pivot;
            let less = pool.iter().filter(|&&x| x < pivot).count();
            let equal = pool.iter().filter(|&&x| x == pivot).count();
            if target < less {
                pool.retain(|&x| x < pivot);
            } else if target < less + equal {
                return Selected {
                    value: pivot,
                    rounds,
                };
            } else {
                target -= less + equal;
                pool.retain(|&x| x > pivot);
            }
            continue;
        }
        let below = pool.iter().filter(|&&x| x < lo_pivot).count();
        let above = pool.iter().filter(|&&x| x > hi_pivot).count();
        let mid_len = n - below - above;
        if target >= below && target < below + mid_len && mid_len < n {
            // Keep only the middle band.
            pool.retain(|&x| x >= lo_pivot && x <= hi_pivot);
            target -= below;
        } else {
            // Bracketing missed (low probability): fall back to one
            // classical partition round around the nearer pivot.
            let pivot = if target < below { lo_pivot } else { hi_pivot };
            let less: Vec<f64> = pool.iter().copied().filter(|&x| x < pivot).collect();
            let equal = pool.iter().filter(|&&x| x == pivot).count();
            if target < less.len() {
                pool = less;
            } else if target < less.len() + equal {
                return Selected {
                    value: pivot,
                    rounds,
                };
            } else {
                target -= less.len() + equal;
                pool.retain(|&x| x > pivot);
            }
        }
    }
}

/// Histogram-style multi-rank selection: all of ranks `0..k` at once via
/// one counting pass over `buckets` quantile buckets — the scan-friendly
/// alternative when `k` is large. Returns the k smallest, ascending.
pub fn k_smallest_bucketed(xs: &[f64], k: usize, buckets: usize) -> Vec<f64> {
    if k == 0 || xs.is_empty() {
        return Vec::new();
    }
    if k >= xs.len() {
        let mut all = xs.to_vec();
        all.sort_by(|a, b| a.partial_cmp(b).expect("NaN"));
        return all;
    }
    let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if lo == hi {
        return vec![lo; k];
    }
    let b = buckets.max(2);
    let width = (hi - lo) / b as f64;
    let mut counts = vec![0usize; b];
    for &x in xs {
        let idx = (((x - lo) / width) as usize).min(b - 1);
        counts[idx] += 1;
    }
    let (prefix, _) = exclusive_scan(AddUsize, &counts);
    // First bucket whose prefix passes k: everything strictly below it is
    // in; recurse into the boundary bucket.
    let boundary = (0..b)
        .find(|&i| prefix[i] + counts[i] >= k)
        .expect("k < n guarantees a boundary bucket");
    let cut_lo = lo + boundary as f64 * width;
    let cut_hi = cut_lo + width;
    let mut sure: Vec<f64> = xs.iter().copied().filter(|&x| x < cut_lo).collect();
    let mut boundary_vals: Vec<f64> = xs
        .iter()
        .copied()
        .filter(|&x| x >= cut_lo && (x < cut_hi || boundary == b - 1))
        .collect();
    boundary_vals.sort_by(|a, b| a.partial_cmp(b).expect("NaN"));
    let need = k - sure.len();
    sure.extend_from_slice(&boundary_vals[..need]);
    sure.sort_by(|a, b| a.partial_cmp(b).expect("NaN"));
    sure
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn pseudo(n: usize, seed: u64) -> Vec<f64> {
        let mut s = seed | 1;
        (0..n)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s % 100_000) as f64 / 100.0
            })
            .collect()
    }

    #[test]
    fn select_rank_matches_sort() {
        let xs = pseudo(2000, 3);
        let mut sorted = xs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for rank in [0usize, 1, 999, 1998, 1999] {
            let s = select_rank(&xs, rank, &mut rng);
            assert_eq!(s.value, sorted[rank], "rank {rank}");
        }
    }

    #[test]
    fn select_rank_with_heavy_ties() {
        let mut xs = vec![5.0; 500];
        xs.extend(vec![1.0; 10]);
        xs.extend(vec![9.0; 10]);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        assert_eq!(select_rank(&xs, 0, &mut rng).value, 1.0);
        assert_eq!(select_rank(&xs, 10, &mut rng).value, 5.0);
        assert_eq!(select_rank(&xs, 509, &mut rng).value, 5.0);
        assert_eq!(select_rank(&xs, 510, &mut rng).value, 9.0);
    }

    #[test]
    fn select_rounds_are_logarithmic_ish() {
        let xs = pseudo(100_000, 7);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let s = select_rank(&xs, 50_000, &mut rng);
        assert!(s.rounds <= 30, "rounds {} too many", s.rounds);
    }

    #[test]
    fn floyd_rivest_matches_sort() {
        let xs = pseudo(20_000, 17);
        let mut sorted = xs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        for rank in [0usize, 13, 9_999, 19_998, 19_999] {
            let s = select_rank_fr(&xs, rank, &mut rng);
            assert_eq!(s.value, sorted[rank], "rank {rank}");
        }
    }

    #[test]
    fn floyd_rivest_rounds_are_doubly_logarithmic_ish() {
        // The point of Floyd–Rivest: rounds grow like log log n, far below
        // quickselect's log n. Check absolute smallness and slow growth.
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let mut max_rounds_small = 0;
        let mut max_rounds_big = 0;
        for trial in 0..10 {
            let cont = |n: usize, seed: u64| -> Vec<f64> {
                let mut s = seed | 1;
                (0..n)
                    .map(|_| {
                        s ^= s << 13;
                        s ^= s >> 7;
                        s ^= s << 17;
                        s as f64 / u64::MAX as f64
                    })
                    .collect()
            };
            let small = cont(1_000, 100 + trial);
            let big = cont(300_000, 200 + trial);
            max_rounds_small = max_rounds_small.max(select_rank_fr(&small, 500, &mut rng).rounds);
            max_rounds_big = max_rounds_big.max(select_rank_fr(&big, 150_000, &mut rng).rounds);
        }
        assert!(max_rounds_big <= 8, "FR rounds {max_rounds_big} too many");
        assert!(
            max_rounds_big <= max_rounds_small + 4,
            "rounds grew too fast: {max_rounds_small} -> {max_rounds_big}"
        );
    }

    #[test]
    fn floyd_rivest_heavy_ties() {
        let mut xs = vec![5.0; 5000];
        xs.extend(vec![1.0; 50]);
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        assert_eq!(select_rank_fr(&xs, 0, &mut rng).value, 1.0);
        assert_eq!(select_rank_fr(&xs, 100, &mut rng).value, 5.0);
    }

    #[test]
    fn k_smallest_matches_sorted_prefix() {
        let xs = pseudo(3000, 11);
        let mut sorted = xs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        for k in [1usize, 5, 100, 2999, 3000, 5000] {
            let got = k_smallest(&xs, k, &mut rng);
            let want = &sorted[..k.min(xs.len())];
            assert_eq!(got, want, "k={k}");
        }
    }

    #[test]
    fn k_smallest_zero() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        assert!(k_smallest(&[1.0, 2.0], 0, &mut rng).is_empty());
    }

    #[test]
    fn bucketed_matches_quickselect() {
        let xs = pseudo(5000, 13);
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        for k in [1usize, 7, 500, 4999] {
            let a = k_smallest(&xs, k, &mut rng);
            let b = k_smallest_bucketed(&xs, k, 64);
            assert_eq!(a, b, "k={k}");
        }
    }

    #[test]
    fn bucketed_constant_input() {
        let xs = vec![3.5; 100];
        assert_eq!(k_smallest_bucketed(&xs, 5, 16), vec![3.5; 5]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn select_rank_range_checked() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        select_rank(&[1.0], 1, &mut rng);
    }
}
