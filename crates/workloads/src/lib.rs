//! # sepdc-workloads
//!
//! Reproducible point-set generators for the experiments.
//!
//! Every generator takes an explicit seed and returns the same points on
//! every platform (ChaCha-based streams). Besides the benign distributions
//! (uniform, Gaussian clusters, jittered grids), this crate provides the
//! *adversarial* inputs that motivate the paper:
//!
//! * [`adversarial::two_slabs`] — `Θ(n)` k-NN edges cross every balanced
//!   axis-aligned hyperplane cut, while a sphere separator still crosses
//!   only `O(√n)` neighborhood balls;
//! * [`distributions::sphere_shell`] — points on a `(d-1)`-sphere, where
//!   flat cuts through the center are maximally bad;
//! * [`adversarial::kissing_cluster`] — high-ply stress for the Density
//!   Lemma experiment.

#![warn(missing_docs)]

pub mod adversarial;
pub mod degenerate;
pub mod distributions;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The RNG used by all generators (fast, seedable, portable).
pub type WorkloadRng = ChaCha8Rng;

/// Build the workload RNG for a given seed.
pub fn rng(seed: u64) -> WorkloadRng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// A named workload for experiment tables.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Workload {
    /// Uniform in the unit cube.
    UniformCube,
    /// Uniform in the unit ball.
    UniformBall,
    /// On the unit sphere surface (hyperplane-adversarial).
    SphereShell,
    /// Gaussian clusters.
    Clusters,
    /// Jittered integer grid.
    Grid,
    /// Two parallel dense slabs (hyperplane-adversarial).
    TwoSlabs,
    /// Points along a noisy line (degenerate-ish).
    NoisyLine,
}

impl Workload {
    /// All workloads, for sweeps.
    pub const ALL: [Workload; 7] = [
        Workload::UniformCube,
        Workload::UniformBall,
        Workload::SphereShell,
        Workload::Clusters,
        Workload::Grid,
        Workload::TwoSlabs,
        Workload::NoisyLine,
    ];

    /// Short name for table rows.
    pub fn name(&self) -> &'static str {
        match self {
            Workload::UniformCube => "uniform-cube",
            Workload::UniformBall => "uniform-ball",
            Workload::SphereShell => "sphere-shell",
            Workload::Clusters => "clusters",
            Workload::Grid => "grid",
            Workload::TwoSlabs => "two-slabs",
            Workload::NoisyLine => "noisy-line",
        }
    }

    /// Generate `n` points in dimension `D`.
    pub fn generate<const D: usize>(&self, n: usize, seed: u64) -> Vec<sepdc_geom::Point<D>> {
        let mut r = rng(seed);
        match self {
            Workload::UniformCube => distributions::uniform_cube(n, &mut r),
            Workload::UniformBall => distributions::uniform_ball(n, &mut r),
            Workload::SphereShell => distributions::sphere_shell(n, &mut r),
            Workload::Clusters => distributions::gaussian_clusters(n, 8, 0.02, &mut r),
            Workload::Grid => distributions::jittered_grid(n, 0.1, &mut r),
            Workload::TwoSlabs => adversarial::two_slabs(n, &mut r),
            Workload::NoisyLine => adversarial::noisy_line(n, 0.01, &mut r),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        for w in Workload::ALL {
            let a = w.generate::<2>(100, 7);
            let b = w.generate::<2>(100, 7);
            assert_eq!(a, b, "{} not deterministic", w.name());
        }
    }

    #[test]
    fn generators_emit_requested_count() {
        for w in Workload::ALL {
            assert_eq!(w.generate::<3>(257, 1).len(), 257, "{}", w.name());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = Workload::UniformCube.generate::<2>(50, 1);
        let b = Workload::UniformCube.generate::<2>(50, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn all_points_finite() {
        for w in Workload::ALL {
            for p in w.generate::<4>(200, 3) {
                assert!(p.is_finite(), "{} produced non-finite point", w.name());
            }
        }
    }
}
