//! Point-set and edge-list text formats.
//!
//! Points: one point per line, coordinates separated by commas or
//! whitespace; `#`-prefixed lines and blank lines ignored. Edges:
//! `a,b[,dist]` per line.

use crate::CliResult;
use sepdc_geom::ball::Ball;
use sepdc_geom::Point;

/// Decode raw file bytes as UTF-8, reporting the first offending line
/// instead of the `io::Error` blob `read_to_string` produces (point files
/// are adversarial input; the PR 2 totality contract wants line numbers).
pub fn decode_text(bytes: &[u8]) -> CliResult<String> {
    match std::str::from_utf8(bytes) {
        Ok(s) => Ok(s.to_owned()),
        Err(e) => {
            let lineno = bytes[..e.valid_up_to()]
                .iter()
                .filter(|&&b| b == b'\n')
                .count()
                + 1;
            Err(format!("line {lineno}: invalid UTF-8 byte sequence"))
        }
    }
}

/// Parse a point file's contents into fixed-dimension points.
///
/// Every data line must have exactly `D` coordinates.
pub fn parse_points<const D: usize>(text: &str) -> CliResult<Vec<Point<D>>> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line
            .split(|c: char| c == ',' || c.is_whitespace())
            .filter(|f| !f.is_empty())
            .collect();
        if fields.len() != D {
            return Err(format!(
                "line {}: expected {D} coordinates, found {}",
                lineno + 1,
                fields.len()
            ));
        }
        let mut coords = [0.0f64; D];
        for (i, f) in fields.iter().enumerate() {
            coords[i] = f
                .parse()
                .map_err(|_| format!("line {}: cannot parse '{f}'", lineno + 1))?;
        }
        let p = Point(coords);
        if !p.is_finite() {
            return Err(format!("line {}: non-finite coordinate", lineno + 1));
        }
        out.push(p);
    }
    Ok(out)
}

/// Parse one ball row — `D` coordinates then a radius, comma or
/// whitespace separated — for the daemon's `insert` control line. Total:
/// wrong arity, unparsable fields, non-finite coordinates, and
/// non-finite/negative radii all come back as typed messages.
pub fn parse_ball<const D: usize>(row: &str) -> CliResult<Ball<D>> {
    let fields: Vec<&str> = row
        .split(|c: char| c == ',' || c.is_whitespace())
        .filter(|f| !f.is_empty())
        .collect();
    if fields.len() != D + 1 {
        return Err(format!(
            "expected {} fields ({D} coordinates + radius), found {}",
            D + 1,
            fields.len()
        ));
    }
    let mut vals = vec![0.0f64; D + 1];
    for (i, f) in fields.iter().enumerate() {
        vals[i] = f.parse().map_err(|_| format!("cannot parse '{f}'"))?;
    }
    let center = Point(std::array::from_fn(|d| vals[d]));
    let radius = vals[D];
    if !center.is_finite() {
        return Err("non-finite coordinate".to_string());
    }
    if !radius.is_finite() || radius < 0.0 {
        return Err(format!("invalid radius {radius}"));
    }
    Ok(Ball { center, radius })
}

/// Number of coordinates on the first data line (for `--dim auto`).
pub fn sniff_dimension(text: &str) -> Option<usize> {
    text.lines()
        .map(str::trim)
        .find(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| {
            l.split(|c: char| c == ',' || c.is_whitespace())
                .filter(|f| !f.is_empty())
                .count()
        })
}

/// Serialize points as CSV.
pub fn format_points<const D: usize>(points: &[Point<D>]) -> String {
    let mut out = String::new();
    for p in points {
        let row: Vec<String> = p.coords().iter().map(|c| format!("{c}")).collect();
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

/// Serialize an edge list (with distances) as CSV.
pub fn format_edges(edges: &[(u32, u32, f64)]) -> String {
    let mut out = String::from("# source,target,distance\n");
    for &(a, b, d) in edges {
        out.push_str(&format!("{a},{b},{d}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_csv_and_whitespace() {
        let pts = parse_points::<2>("1,2\n3.5 4.5\n# comment\n\n5,6\n").unwrap();
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[1], Point::from([3.5, 4.5]));
    }

    #[test]
    fn roundtrip() {
        let pts = vec![Point::<3>::from([1.0, -2.5, 0.125])];
        let text = format_points(&pts);
        let back = parse_points::<3>(&text).unwrap();
        assert_eq!(back, pts);
    }

    #[test]
    fn wrong_arity_reported_with_line() {
        let err = parse_points::<2>("1,2\n1,2,3\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }

    #[test]
    fn bad_number_reported() {
        let err = parse_points::<1>("abc\n").unwrap_err();
        assert!(err.contains("cannot parse"), "{err}");
    }

    #[test]
    fn non_finite_rejected() {
        assert!(parse_points::<1>("inf\n").is_err());
        assert!(parse_points::<1>("NaN\n").is_err());
    }

    #[test]
    fn sniff() {
        assert_eq!(sniff_dimension("# c\n1,2,3\n"), Some(3));
        assert_eq!(sniff_dimension("1 2\n"), Some(2));
        assert_eq!(sniff_dimension("# only comments\n"), None);
    }

    #[test]
    fn decode_reports_first_bad_line() {
        assert_eq!(decode_text(b"1,2\n3,4\n").unwrap(), "1,2\n3,4\n");
        let err = decode_text(b"1,2\n\xff\xfe\n5,6\n").unwrap_err();
        assert!(err.contains("line 2") && err.contains("UTF-8"), "{err}");
        let err = decode_text(b"\x80").unwrap_err();
        assert!(err.contains("line 1"), "{err}");
    }

    #[test]
    fn parse_ball_totality() {
        let b = parse_ball::<2>("0.5, 0.25  0.1").unwrap();
        assert_eq!(b.center, Point::from([0.5, 0.25]));
        assert_eq!(b.radius, 0.1);
        assert!(parse_ball::<2>("1,2").unwrap_err().contains("3 fields"));
        assert!(parse_ball::<2>("1,2,x").unwrap_err().contains("'x'"));
        assert!(parse_ball::<2>("NaN,2,0.1")
            .unwrap_err()
            .contains("non-finite"));
        assert!(parse_ball::<2>("1,2,-0.5").unwrap_err().contains("radius"));
        assert!(parse_ball::<2>("1,2,inf").unwrap_err().contains("radius"));
    }

    #[test]
    fn edges_format() {
        let s = format_edges(&[(0, 1, 0.5), (2, 3, 1.0)]);
        assert!(s.contains("0,1,0.5"));
        assert!(s.starts_with("# source"));
    }
}
