//! Minimal `--flag value` argument parsing (no external dependencies).

use crate::CliResult;
use std::collections::HashMap;

/// Parsed flags: `--key value` pairs plus the leading subcommand.
#[derive(Clone, Debug, Default)]
pub struct Args {
    /// The subcommand (first positional argument).
    pub command: String,
    flags: HashMap<String, String>,
}

impl Args {
    /// Parse a raw argument list (excluding `argv[0]`).
    ///
    /// Every flag must be of the form `--name value`; bare `--name`
    /// (boolean) flags receive the value `"true"`.
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> CliResult<Args> {
        let mut iter = raw.into_iter().peekable();
        let command = iter.next().unwrap_or_default();
        let mut flags = HashMap::new();
        while let Some(tok) = iter.next() {
            let Some(name) = tok.strip_prefix("--") else {
                return Err(format!("unexpected positional argument '{tok}'"));
            };
            if name.is_empty() {
                return Err("empty flag name '--'".to_string());
            }
            let value = match iter.peek() {
                Some(next) if !next.starts_with("--") => iter.next().unwrap(),
                _ => "true".to_string(),
            };
            if flags.insert(name.to_string(), value).is_some() {
                return Err(format!("duplicate flag --{name}"));
            }
        }
        Ok(Args { command, flags })
    }

    /// String flag with a default.
    pub fn get_or<'a>(&'a self, name: &str, default: &'a str) -> &'a str {
        self.flags.get(name).map(String::as_str).unwrap_or(default)
    }

    /// Required string flag.
    pub fn require(&self, name: &str) -> CliResult<&str> {
        self.flags
            .get(name)
            .map(String::as_str)
            .ok_or_else(|| format!("missing required flag --{name}"))
    }

    /// Parsed numeric flag with a default.
    pub fn num_or<T: std::str::FromStr>(&self, name: &str, default: T) -> CliResult<T> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("flag --{name}: cannot parse '{v}'")),
        }
    }

    /// Boolean flag (present = true).
    pub fn bool(&self, name: &str) -> bool {
        self.flags.get(name).map(String::as_str) == Some("true")
    }

    /// Flags not in `known` — for catching typos.
    pub fn unknown_flags(&self, known: &[&str]) -> Vec<String> {
        let mut out: Vec<String> = self
            .flags
            .keys()
            .filter(|k| !known.contains(&k.as_str()))
            .cloned()
            .collect();
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> CliResult<Args> {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn basic_parse() {
        let a = parse("knn --k 3 --input pts.csv").unwrap();
        assert_eq!(a.command, "knn");
        assert_eq!(a.require("k").unwrap(), "3");
        assert_eq!(a.get_or("algo", "parallel"), "parallel");
        assert_eq!(a.num_or::<usize>("k", 1).unwrap(), 3);
    }

    #[test]
    fn boolean_flags() {
        let a = parse("knn --stats --k 2").unwrap();
        assert!(a.bool("stats"));
        assert!(!a.bool("quiet"));
        assert_eq!(a.num_or::<usize>("k", 0).unwrap(), 2);
    }

    #[test]
    fn missing_required() {
        let a = parse("knn").unwrap();
        assert!(a.require("input").is_err());
    }

    #[test]
    fn duplicate_flag_rejected() {
        assert!(parse("x --k 1 --k 2").is_err());
    }

    #[test]
    fn positional_rejected() {
        assert!(parse("x file.csv").is_err());
    }

    #[test]
    fn bad_number() {
        let a = parse("x --n abc").unwrap();
        assert!(a.num_or::<usize>("n", 1).is_err());
    }

    #[test]
    fn unknown_flags_detected() {
        let a = parse("x --kk 3 --n 1").unwrap();
        assert_eq!(a.unknown_flags(&["n"]), vec!["kk".to_string()]);
    }

    #[test]
    fn empty_args() {
        let a = Args::parse(std::iter::empty()).unwrap();
        assert!(a.command.is_empty());
    }
}
