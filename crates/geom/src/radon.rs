//! Radon points.
//!
//! Radon's theorem: any `d + 2` points in `R^d` can be partitioned into two
//! sets whose convex hulls intersect; a point in the intersection is a
//! *Radon point*. Iterating Radon points yields the approximate centerpoints
//! the MTTV separator pipeline needs (see [`crate::centerpoint`]).

use crate::matrix::DMatrix;
use crate::point::Point;

/// A computed Radon point together with the witness partition.
#[derive(Clone, Debug)]
pub struct RadonPoint<const D: usize> {
    /// The point common to both convex hulls.
    pub point: Point<D>,
    /// Indices (into the input) whose affine coefficient was positive.
    pub positive: Vec<usize>,
    /// Indices whose coefficient was negative.
    pub negative: Vec<usize>,
}

/// Compute a Radon point of exactly `D + 2` points.
///
/// The affine dependence `Σ λ_i x_i = 0, Σ λ_i = 0` (a kernel vector of the
/// `(D+1) × (D+2)` homogeneous system) is split by sign; the Radon point is
/// the convex combination of the positive side with weights `λ_i / Σ⁺ λ`.
///
/// Returns `None` when the kernel computation degenerates numerically (for
/// example, all points identical, making every kernel vector have a zero
/// side). Duplicated points generally still succeed: any affine dependence
/// with nonempty positive *and* negative parts yields a valid witness.
///
/// # Panics
/// Panics unless `points.len() == D + 2`.
pub fn radon_point<const D: usize>(points: &[Point<D>], tol: f64) -> Option<RadonPoint<D>> {
    assert_eq!(
        points.len(),
        D + 2,
        "radon_point needs exactly D + 2 = {} points, got {}",
        D + 2,
        points.len()
    );
    // Rows 0..D: coordinates; row D: the affine constraint Σ λ_i = 0.
    let m = DMatrix::from_fn(D + 1, D + 2, |r, c| if r < D { points[c][r] } else { 1.0 });
    let lambda = m.null_vector(tol)?;

    let mut positive = Vec::new();
    let mut negative = Vec::new();
    let mut pos_sum = 0.0;
    let mut acc = Point::<D>::origin();
    for (i, &l) in lambda.iter().enumerate() {
        if l > tol {
            positive.push(i);
            pos_sum += l;
            acc += points[i] * l;
        } else if l < -tol {
            negative.push(i);
        }
    }
    if positive.is_empty() || negative.is_empty() || pos_sum <= tol {
        return None;
    }
    Some(RadonPoint {
        point: acc / pos_sum,
        positive,
        negative,
    })
}

/// Verify that `q` lies in the convex hull of `hull_points` by solving the
/// convex-combination system exactly (small dense LP-free check: we solve
/// the affine system and confirm non-negative weights). Intended for tests
/// and debug assertions on tiny inputs.
///
/// Works only when `hull_points.len() <= D + 1` (a simplex); returns `false`
/// for larger inputs rather than solving a general LP.
pub fn in_simplex_hull<const D: usize>(q: &Point<D>, hull_points: &[Point<D>], tol: f64) -> bool {
    let k = hull_points.len();
    if k == 0 || k > D + 1 {
        return false;
    }
    if k == 1 {
        return q.dist(&hull_points[0]) <= tol;
    }
    // Solve Σ w_i x_i = q, Σ w_i = 1 in least-squares-free form: the system
    // is (D+1) x k; we solve its normal equations via the square solver.
    let a = DMatrix::from_fn(D + 1, k, |r, c| if r < D { hull_points[c][r] } else { 1.0 });
    let mut rhs = vec![0.0; D + 1];
    for r in 0..D {
        rhs[r] = q[r];
    }
    rhs[D] = 1.0;
    // Normal equations AᵀA w = Aᵀ rhs.
    let ata = DMatrix::from_fn(k, k, |i, j| {
        let mut s = 0.0;
        for r in 0..D + 1 {
            s += a[(r, i)] * a[(r, j)];
        }
        s
    });
    let atb: Vec<f64> = (0..k)
        .map(|i| {
            let mut s = 0.0;
            for r in 0..D + 1 {
                s += a[(r, i)] * rhs[r];
            }
            s
        })
        .collect();
    let Some(w) = ata.solve(&atb, 1e-12) else {
        return false;
    };
    // Residual check (normal equations can "solve" inconsistent systems).
    for r in 0..D + 1 {
        let mut s = 0.0;
        for (c, &wc) in w.iter().enumerate() {
            s += a[(r, c)] * wc;
        }
        if (s - rhs[r]).abs() > 1e-6 {
            return false;
        }
    }
    w.iter().all(|&wi| wi >= -tol)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn radon_point_of_square_plus_center_free() {
        // Four corners of a square in R^2 (D+2 = 4 points).
        let pts = [
            Point::<2>::from([0.0, 0.0]),
            Point::from([1.0, 0.0]),
            Point::from([1.0, 1.0]),
            Point::from([0.0, 1.0]),
        ];
        let r = radon_point(&pts, 1e-12).unwrap();
        // The diagonals cross at the center.
        assert!(r.point.dist(&Point::from([0.5, 0.5])) < 1e-9);
        assert_eq!(r.positive.len() + r.negative.len(), 4);
    }

    #[test]
    fn radon_point_in_both_hulls() {
        let pts = [
            Point::<2>::from([0.0, 0.0]),
            Point::from([2.0, 0.1]),
            Point::from([0.9, 1.7]),
            Point::from([1.1, 0.6]),
        ];
        let r = radon_point(&pts, 1e-12).unwrap();
        let pos: Vec<Point<2>> = r.positive.iter().map(|&i| pts[i]).collect();
        let neg: Vec<Point<2>> = r.negative.iter().map(|&i| pts[i]).collect();
        assert!(
            in_simplex_hull(&r.point, &pos, 1e-7),
            "not in positive hull"
        );
        assert!(
            in_simplex_hull(&r.point, &neg, 1e-7),
            "not in negative hull"
        );
    }

    #[test]
    fn radon_point_3d() {
        let pts = [
            Point::<3>::from([0.0, 0.0, 0.0]),
            Point::from([1.0, 0.0, 0.0]),
            Point::from([0.0, 1.0, 0.0]),
            Point::from([0.0, 0.0, 1.0]),
            Point::from([0.3, 0.3, 0.3]),
        ];
        let r = radon_point(&pts, 1e-12).unwrap();
        let pos: Vec<Point<3>> = r.positive.iter().map(|&i| pts[i]).collect();
        let neg: Vec<Point<3>> = r.negative.iter().map(|&i| pts[i]).collect();
        assert!(in_simplex_hull(&r.point, &pos, 1e-7));
        assert!(in_simplex_hull(&r.point, &neg, 1e-7));
    }

    #[test]
    fn radon_point_degenerate_all_equal() {
        let pts = [Point::<2>::splat(1.0); 4];
        // All-equal points: either a valid witness (the point itself) or
        // a clean None; never a bogus point elsewhere.
        if let Some(r) = radon_point(&pts, 1e-12) {
            assert!(r.point.dist(&Point::splat(1.0)) < 1e-9);
        }
    }

    #[test]
    fn radon_point_collinear_points() {
        // Collinear configurations still have affine dependencies.
        let pts = [
            Point::<2>::from([0.0, 0.0]),
            Point::from([1.0, 1.0]),
            Point::from([2.0, 2.0]),
            Point::from([3.0, 3.0]),
        ];
        let r = radon_point(&pts, 1e-12).unwrap();
        // Radon point must lie on the line y = x.
        assert!((r.point[0] - r.point[1]).abs() < 1e-9);
    }

    #[test]
    fn in_simplex_hull_basic() {
        let tri = [
            Point::<2>::from([0.0, 0.0]),
            Point::from([1.0, 0.0]),
            Point::from([0.0, 1.0]),
        ];
        assert!(in_simplex_hull(&Point::from([0.25, 0.25]), &tri, 1e-9));
        assert!(!in_simplex_hull(&Point::from([1.0, 1.0]), &tri, 1e-9));
        assert!(in_simplex_hull(&Point::from([0.0, 0.0]), &tri, 1e-9));
    }

    #[test]
    #[should_panic(expected = "exactly D + 2")]
    fn radon_point_wrong_count_panics() {
        let pts = [Point::<2>::origin(); 3];
        let _ = radon_point(&pts, 1e-12);
    }
}
