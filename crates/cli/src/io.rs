//! Point-set and edge-list text formats.
//!
//! Points: one point per line, coordinates separated by commas or
//! whitespace; `#`-prefixed lines and blank lines ignored. Edges:
//! `a,b[,dist]` per line.

use crate::CliResult;
use sepdc_geom::Point;

/// Parse a point file's contents into fixed-dimension points.
///
/// Every data line must have exactly `D` coordinates.
pub fn parse_points<const D: usize>(text: &str) -> CliResult<Vec<Point<D>>> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line
            .split(|c: char| c == ',' || c.is_whitespace())
            .filter(|f| !f.is_empty())
            .collect();
        if fields.len() != D {
            return Err(format!(
                "line {}: expected {D} coordinates, found {}",
                lineno + 1,
                fields.len()
            ));
        }
        let mut coords = [0.0f64; D];
        for (i, f) in fields.iter().enumerate() {
            coords[i] = f
                .parse()
                .map_err(|_| format!("line {}: cannot parse '{f}'", lineno + 1))?;
        }
        let p = Point(coords);
        if !p.is_finite() {
            return Err(format!("line {}: non-finite coordinate", lineno + 1));
        }
        out.push(p);
    }
    Ok(out)
}

/// Number of coordinates on the first data line (for `--dim auto`).
pub fn sniff_dimension(text: &str) -> Option<usize> {
    text.lines()
        .map(str::trim)
        .find(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| {
            l.split(|c: char| c == ',' || c.is_whitespace())
                .filter(|f| !f.is_empty())
                .count()
        })
}

/// Serialize points as CSV.
pub fn format_points<const D: usize>(points: &[Point<D>]) -> String {
    let mut out = String::new();
    for p in points {
        let row: Vec<String> = p.coords().iter().map(|c| format!("{c}")).collect();
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

/// Serialize an edge list (with distances) as CSV.
pub fn format_edges(edges: &[(u32, u32, f64)]) -> String {
    let mut out = String::from("# source,target,distance\n");
    for &(a, b, d) in edges {
        out.push_str(&format!("{a},{b},{d}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_csv_and_whitespace() {
        let pts = parse_points::<2>("1,2\n3.5 4.5\n# comment\n\n5,6\n").unwrap();
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[1], Point::from([3.5, 4.5]));
    }

    #[test]
    fn roundtrip() {
        let pts = vec![Point::<3>::from([1.0, -2.5, 0.125])];
        let text = format_points(&pts);
        let back = parse_points::<3>(&text).unwrap();
        assert_eq!(back, pts);
    }

    #[test]
    fn wrong_arity_reported_with_line() {
        let err = parse_points::<2>("1,2\n1,2,3\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }

    #[test]
    fn bad_number_reported() {
        let err = parse_points::<1>("abc\n").unwrap_err();
        assert!(err.contains("cannot parse"), "{err}");
    }

    #[test]
    fn non_finite_rejected() {
        assert!(parse_points::<1>("inf\n").is_err());
        assert!(parse_points::<1>("NaN\n").is_err());
    }

    #[test]
    fn sniff() {
        assert_eq!(sniff_dimension("# c\n1,2,3\n"), Some(3));
        assert_eq!(sniff_dimension("1 2\n"), Some(2));
        assert_eq!(sniff_dimension("# only comments\n"), None);
    }

    #[test]
    fn edges_format() {
        let s = format_edges(&[(0, 1, 0.5), (2, 3, 1.0)]);
        assert!(s.contains("0,1,0.5"));
        assert!(s.starts_with("# source"));
    }
}
