//! World-to-screen mapping and high-level drawing of the workspace's 2D
//! structures.

use crate::svg::SvgDoc;
use sepdc_core::{KnnGraph, PartitionNode, PartitionTree};
use sepdc_geom::ball::Ball;
use sepdc_geom::point::Point;
use sepdc_geom::shape::{Separator, Side};

/// Default palette.
pub mod colors {
    /// Interior-side fill.
    pub const INTERIOR: &str = "#4477aa";
    /// Exterior-side fill.
    pub const EXTERIOR: &str = "#ee6677";
    /// Crossing elements.
    pub const CROSSING: &str = "#ccbb44";
    /// Separator stroke.
    pub const SEPARATOR: &str = "#222222";
    /// Graph edges.
    pub const EDGE: &str = "#66666688";
    /// Neutral points.
    pub const POINT: &str = "#333333";
}

/// A drawing surface with a fitted world-to-screen transform.
pub struct Scene {
    doc: SvgDoc,
    // World window.
    wx: f64,
    wy: f64,
    scale: f64,
    margin: f64,
}

impl Scene {
    /// Create a scene sized `px × px` pixels fitted to the bounding box of
    /// `points`, with 5% margin. Falls back to the unit box for empty or
    /// degenerate input.
    pub fn fit(points: &[Point<2>], px: f64) -> Self {
        let (mut lo, mut hi) = (Point::<2>::splat(0.0), Point::<2>::splat(1.0));
        if !points.is_empty() {
            lo = points[0];
            hi = points[0];
            for p in points {
                lo = lo.min(p);
                hi = hi.max(p);
            }
        }
        let extent = ((hi[0] - lo[0]).max(hi[1] - lo[1])).max(1e-9);
        let margin = px * 0.05;
        let scale = (px - 2.0 * margin) / extent;
        Scene {
            doc: SvgDoc::new(px, px),
            wx: lo[0],
            wy: lo[1],
            scale,
            margin,
        }
    }

    /// World → screen.
    pub fn to_screen(&self, p: &Point<2>) -> (f64, f64) {
        (
            self.margin + (p[0] - self.wx) * self.scale,
            // SVG y grows downward; flip so the figure reads math-style.
            self.doc.height() - self.margin - (p[1] - self.wy) * self.scale,
        )
    }

    /// World length → screen length.
    pub fn len(&self, world: f64) -> f64 {
        world * self.scale
    }

    /// Draw a point marker.
    pub fn point(&mut self, p: &Point<2>, radius_px: f64, fill: &str) {
        let (x, y) = self.to_screen(p);
        self.doc.circle(x, y, radius_px, fill, "none", 0.0);
    }

    /// Draw a ball outline (world-radius).
    pub fn ball(&mut self, b: &Ball<2>, stroke: &str, sw: f64) {
        let (x, y) = self.to_screen(&b.center);
        let r = self.len(b.radius);
        self.doc.circle(x, y, r, "none", stroke, sw);
    }

    /// Draw a separator: a circle for spheres, a clipped line for
    /// hyperplanes.
    pub fn separator(&mut self, sep: &Separator<2>, stroke: &str, sw: f64, opacity: f64) {
        match sep {
            Separator::Sphere(s) => {
                let (x, y) = self.to_screen(&s.center);
                self.doc
                    .circle_opacity(x, y, self.len(s.radius), stroke, sw, opacity);
            }
            Separator::Halfspace(h) => {
                // Parameterize the line n·x = offset; draw it long enough
                // to cross the viewport.
                let dir = Point::<2>::from([-h.normal[1], h.normal[0]]);
                let base = h.normal * h.offset;
                let span = (self.doc.width() + self.doc.height()) / self.scale;
                let a = base + dir * span;
                let b = base - dir * span;
                let (x1, y1) = self.to_screen(&a);
                let (x2, y2) = self.to_screen(&b);
                self.doc.line(x1, y1, x2, y2, stroke, sw);
            }
        }
    }

    /// Paper Figure 1: a neighborhood system with a sphere separator —
    /// balls colored by interior / exterior / crossing.
    pub fn draw_neighborhood_split(&mut self, balls: &[Ball<2>], sep: &Separator<2>) {
        for b in balls {
            let color = if b.crosses(sep) {
                colors::CROSSING
            } else if matches!(sep.side(&b.center), Side::Interior | Side::Surface) {
                colors::INTERIOR
            } else {
                colors::EXTERIOR
            };
            self.ball(b, color, 1.0);
            self.point(&b.center.clone(), 1.5, color);
        }
        self.separator(sep, colors::SEPARATOR, 2.5, 1.0);
    }

    /// Overlay a partition tree: every internal separator, opacity fading
    /// with depth. Iterative walk over the arena node indices.
    pub fn draw_partition_tree(&mut self, tree: &PartitionTree<2>, max_depth: usize) {
        let mut stack = vec![(tree.root(), 0usize)];
        while let Some((id, depth)) = stack.pop() {
            if depth > max_depth {
                continue;
            }
            if let PartitionNode::Internal {
                sep, left, right, ..
            } = tree.node(id)
            {
                let opacity = 0.9 * (0.65f64).powi(depth as i32) + 0.08;
                self.separator(sep, colors::SEPARATOR, 1.2, opacity);
                stack.push((*left, depth + 1));
                stack.push((*right, depth + 1));
            }
        }
    }

    /// Draw a k-NN graph: edges then vertices.
    pub fn draw_graph(&mut self, points: &[Point<2>], graph: &KnnGraph) {
        for &(a, b) in graph.edges() {
            let (x1, y1) = self.to_screen(&points[a as usize]);
            let (x2, y2) = self.to_screen(&points[b as usize]);
            self.doc.line(x1, y1, x2, y2, colors::EDGE, 0.7);
        }
        for p in points {
            self.point(p, 1.2, colors::POINT);
        }
    }

    /// Add a caption in the top-left corner.
    pub fn caption(&mut self, text: &str) {
        let m = self.margin;
        self.doc.text(m, m * 0.8, 14.0, "#000000", text);
    }

    /// Finish into SVG text.
    pub fn finish(self) -> String {
        self.doc.finish()
    }

    /// Write to a file.
    pub fn save(self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        self.doc.save(path)
    }
}

/// Convenience: render the paper's Figure 1 for an arbitrary ball system
/// and separator, returning SVG text.
pub fn draw_figure1(balls: &[Ball<2>], sep: &Separator<2>, px: f64) -> String {
    let centers: Vec<Point<2>> = balls.iter().map(|b| b.center).collect();
    let mut scene = Scene::fit(&centers, px);
    scene.draw_neighborhood_split(balls, sep);
    scene.caption("Figure 1: a sphere separator (interior / exterior / crossing)");
    scene.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sepdc_geom::Sphere;

    fn sample_balls() -> Vec<Ball<2>> {
        (0..20)
            .map(|i| {
                let a = i as f64 * 0.314;
                Ball::new(Point::from([a.cos() * (i % 5) as f64, a.sin() * 2.0]), 0.3)
            })
            .collect()
    }

    #[test]
    fn figure1_contains_all_three_classes() {
        let balls = sample_balls();
        let sep: Separator<2> = Sphere::new(Point::origin(), 2.0).into();
        let svg = draw_figure1(&balls, &sep, 400.0);
        assert!(svg.contains(colors::SEPARATOR));
        // With this configuration all three classes appear.
        assert!(svg.contains(colors::INTERIOR));
        assert!(svg.contains(colors::EXTERIOR));
        assert!(svg.contains(colors::CROSSING));
        assert!(svg.contains("Figure 1"));
    }

    #[test]
    fn to_screen_flips_y_and_respects_margins() {
        let pts = vec![Point::<2>::from([0.0, 0.0]), Point::from([1.0, 1.0])];
        let scene = Scene::fit(&pts, 100.0);
        let (x0, y0) = scene.to_screen(&pts[0]);
        let (x1, y1) = scene.to_screen(&pts[1]);
        assert!(x1 > x0, "x grows right");
        assert!(y1 < y0, "world y up = screen y down");
        for v in [x0, y0, x1, y1] {
            assert!((0.0..=100.0).contains(&v));
        }
    }

    #[test]
    fn degenerate_fit_does_not_blow_up() {
        let pts = vec![Point::<2>::splat(3.0); 5];
        let scene = Scene::fit(&pts, 100.0);
        let (x, y) = scene.to_screen(&pts[0]);
        assert!(x.is_finite() && y.is_finite());
    }

    #[test]
    fn hyperplane_draws_a_line() {
        let pts = vec![Point::<2>::from([0.0, 0.0]), Point::from([1.0, 1.0])];
        let mut scene = Scene::fit(&pts, 200.0);
        let sep: Separator<2> = sepdc_geom::Hyperplane::axis_aligned(0, 0.5).into();
        scene.separator(&sep, "#000000", 1.0, 1.0);
        assert!(scene.finish().contains("<line"));
    }

    #[test]
    fn graph_rendering_has_edges_and_points() {
        use sepdc_core::brute_force_knn;
        let pts: Vec<Point<2>> = (0..10)
            .map(|i| Point::from([i as f64, (i * i % 7) as f64]))
            .collect();
        let g = KnnGraph::from_knn(&brute_force_knn(&pts, 1));
        let mut scene = Scene::fit(&pts, 300.0);
        scene.draw_graph(&pts, &g);
        let svg = scene.finish();
        assert!(svg.matches("<line").count() >= g.num_edges());
        assert!(svg.matches("<circle").count() >= pts.len());
    }
}
