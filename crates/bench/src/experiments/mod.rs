//! One module per experiment; see DESIGN.md §5 for the index.

pub mod exp10_success_rates;
pub mod exp11_graph_separators;
pub mod exp12_ablations;
pub mod exp13_query_baselines;
pub mod exp1_separator_quality;
pub mod exp2_query_structure;
pub mod exp3_crossing_numbers;
pub mod exp4_knn_algorithms;
pub mod exp5_depth_scaling;
pub mod exp6_punting_lemma;
pub mod exp7_intersection_tails;
pub mod exp8_strong_scaling;
pub mod exp9_density_lemma;

/// Run one experiment by id ("exp1".."exp10") or "all". Returns false for
/// an unknown id.
pub fn run(id: &str) -> bool {
    match id {
        "exp1" => exp1_separator_quality::run(),
        "exp2" => exp2_query_structure::run(),
        "exp3" => exp3_crossing_numbers::run(),
        "exp4" => exp4_knn_algorithms::run(),
        "exp5" => exp5_depth_scaling::run(),
        "exp6" => exp6_punting_lemma::run(),
        "exp7" => exp7_intersection_tails::run(),
        "exp8" => exp8_strong_scaling::run(),
        "exp9" => exp9_density_lemma::run(),
        "exp10" => exp10_success_rates::run(),
        "exp11" => exp11_graph_separators::run(),
        "exp12" => exp12_ablations::run(),
        "exp13" => exp13_query_baselines::run(),
        "all" => {
            for e in [
                "exp1", "exp2", "exp3", "exp4", "exp5", "exp6", "exp7", "exp8", "exp9", "exp10",
                "exp11", "exp12", "exp13",
            ] {
                run(e);
            }
        }
        _ => return false,
    }
    true
}
