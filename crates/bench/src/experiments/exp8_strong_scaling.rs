//! EXP-8 — strong scaling: the `n`-processor claim on a real multicore.
//!
//! The paper's model gives the algorithm `n` virtual processors; by Brent's
//! theorem a `p`-core machine should run it in `O(work/p + depth)` time.
//! We fix the input and sweep the rayon pool size, reporting speedup over
//! one thread for both parallel algorithms.

use crate::harness::{timed, Table};
use sepdc_core::{parallel_knn, simple_parallel_knn, KnnDcConfig};
use sepdc_workloads::Workload;

/// Run EXP-8.
pub fn run() {
    let n = 1usize << 17;
    let pts = Workload::UniformCube.generate::<3>(n, 8);
    let cfg = KnnDcConfig::new(1).with_seed(4);
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(8);

    let mut threads = vec![1usize];
    while *threads.last().unwrap() * 2 <= cores {
        threads.push(threads.last().unwrap() * 2);
    }
    if *threads.last().unwrap() != cores {
        threads.push(cores);
    }

    let mut table = Table::new(
        format!("EXP-8 — strong scaling, n = 2^17 uniform 3D points, k = 1 ({cores} cores)"),
        &["threads", "§6 time", "§6 speedup", "§5 time", "§5 speedup"],
    );

    let mut base6 = 0.0;
    let mut base5 = 0.0;
    for (i, &t) in threads.iter().enumerate() {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(t)
            .build()
            .expect("pool");
        let (_, t6) = pool.install(|| timed(|| parallel_knn::<3, 4>(&pts, &cfg)));
        let (_, t5) = pool.install(|| timed(|| simple_parallel_knn::<3, 4>(&pts, &cfg)));
        if i == 0 {
            base6 = t6;
            base5 = t5;
        }
        table.row(
            format!("{t}"),
            vec![
                format!("{:.0}ms", t6 * 1e3),
                format!("{:.2}×", base6 / t6),
                format!("{:.0}ms", t5 * 1e3),
                format!("{:.2}×", base5 / t5),
            ],
        );
    }
    table.note("speedup grows with threads: the PRAM algorithm parallelizes on real cores");
    table.note("(Brent transfer). Efficiency < 1 reflects memory bandwidth + task overhead.");
    if cores == 1 {
        table.note("NOTE: this host exposes a single core, so the sweep has one row and no");
        table.note("speedup can be observed here; on a multicore host the same binary sweeps");
        table.note("1..cores. The paper's depth claim is measured analytically in EXP-5.");
    }
    table.print();
}
