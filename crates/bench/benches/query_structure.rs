//! Criterion bench: Section 3 query structure build and query costs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sepdc_core::{kdtree_all_knn, NeighborhoodSystem, QueryTree, QueryTreeConfig};
use sepdc_workloads::Workload;
use std::hint::black_box;

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_tree_build_2d");
    group.sample_size(10);
    for e in [12u32, 14, 16] {
        let n = 1usize << e;
        let pts = Workload::Clusters.generate::<2>(n, 3);
        let knn = kdtree_all_knn(&pts, 2);
        let sys = NeighborhoodSystem::from_knn(&pts, &knn);
        group.bench_with_input(BenchmarkId::from_parameter(n), sys.balls(), |b, balls| {
            b.iter(|| black_box(QueryTree::build::<3>(balls, QueryTreeConfig::default(), 5)));
        });
    }
    group.finish();
}

fn bench_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_tree_query_2d");
    let n = 1usize << 16;
    let pts = Workload::Clusters.generate::<2>(n, 3);
    let knn = kdtree_all_knn(&pts, 2);
    let sys = NeighborhoodSystem::from_knn(&pts, &knn);
    let tree = QueryTree::build::<3>(sys.balls(), QueryTreeConfig::default(), 5);
    let probes = Workload::UniformCube.generate::<2>(1024, 11);
    group.bench_function("covering_1k_probes_n64k", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for p in &probes {
                total += tree.covering(p).len();
            }
            black_box(total)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_build, bench_query);
criterion_main!(benches);
