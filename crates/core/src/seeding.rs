//! Deterministic per-node seed derivation for the parallel builds.
//!
//! Every random draw in a construction (separator candidates at a
//! recursion node, the query tree built by a punt) must be a pure function
//! of the master seed and the node's **position** in the recursion tree —
//! never of execution order — so that trees built at 1, 2, or 8 threads
//! are structurally identical (the construction-side analogue of the serve
//! determinism contract, DESIGN.md §11/§13).
//!
//! The derivation walks the recursion: a node's seed is its parent's seed
//! pushed through the splitmix64 finalizer after XOR-ing a per-edge tag
//! (left child, right child, or punt side-channel). [`mix`] is a bijection
//! on `u64`, so for any fixed root-to-node path the map `root seed → node
//! seed` is a bijection, and the three tags keep sibling edges and the
//! punt stream decorrelated. Collision-freedom across *distinct* paths is
//! empirical (64-bit avalanche mixing) and pinned by
//! `tests/proptest_seeding.rs` up to the automatic depth bound.

/// Edge tag for the left (interior-side) child.
const LEFT_TAG: u64 = 0x9E37_79B9_7F4A_7C15;
/// Edge tag for the right (exterior-side) child.
const RIGHT_TAG: u64 = 0xC2B2_AE3D_27D4_EB4F;
/// Tag for the punt side-channel (the query tree a punting node builds).
const PUNT_TAG: u64 = 0x1656_67B1_9E37_79F9;

/// The splitmix64 finalizer: a bijective avalanche mixer on `u64`.
#[inline]
pub fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

/// Seed of a child node given its parent's seed and which edge was taken
/// (`right = false` is the interior side).
#[inline]
pub fn child_seed(seed: u64, right: bool) -> u64 {
    mix(seed ^ if right { RIGHT_TAG } else { LEFT_TAG })
}

/// Seed of the query structure a punting node builds. Drawn from a tag
/// disjoint from both child edges so the punt's randomness never aliases
/// a descendant's separator stream.
#[inline]
pub fn punt_seed(seed: u64) -> u64 {
    mix(seed ^ PUNT_TAG)
}

/// Fold a whole root-to-node path (`false` = left edge) into a seed — the
/// closed form of iterating [`child_seed`] along the path.
pub fn path_seed(root: u64, path: &[bool]) -> u64 {
    path.iter().fold(root, |s, &right| child_seed(s, right))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn mix_is_injective_on_a_window() {
        let mut seen = HashSet::new();
        for x in 0..10_000u64 {
            assert!(seen.insert(mix(x)));
        }
    }

    #[test]
    fn sibling_and_punt_streams_are_distinct() {
        for seed in [0u64, 1, 0xC0FFEE, u64::MAX] {
            let l = child_seed(seed, false);
            let r = child_seed(seed, true);
            let q = punt_seed(seed);
            assert_ne!(l, r);
            assert_ne!(l, q);
            assert_ne!(r, q);
            assert_ne!(l, seed);
            assert_ne!(r, seed);
        }
    }

    #[test]
    fn path_seed_matches_iterated_child_seed() {
        let path = [false, true, true, false, true];
        let mut s = 42u64;
        for &b in &path {
            s = child_seed(s, b);
        }
        assert_eq!(path_seed(42, &path), s);
    }

    #[test]
    fn exhaustive_paths_to_depth_12_never_collide() {
        // 2^13 - 2 nonempty paths from one root: all distinct node seeds.
        let root = 0xC0FFEEu64;
        let mut seen = HashSet::new();
        let mut frontier = vec![root];
        for _ in 0..12 {
            let mut next = Vec::with_capacity(frontier.len() * 2);
            for s in frontier {
                for right in [false, true] {
                    let c = child_seed(s, right);
                    assert!(seen.insert(c), "collision at seed {c:#x}");
                    next.push(c);
                }
            }
            frontier = next;
        }
    }
}
