//! EXP-10 — the probabilistic machinery end to end: separator success
//! rates (Theorem 3.1's Bernoulli argument), marching behaviour
//! (Lemma 6.2), and punt frequencies (Theorem 6.1).
//!
//! Paper claims: each unit-time candidate is good with probability ≥ 1/2,
//! so retries are geometric; successful marches keep at most `m^{1-η}`
//! active balls per level w.h.p.; punting is rare enough that the fast
//! path dominates.

use crate::harness::Table;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sepdc_core::{parallel_knn, KnnDcConfig};
use sepdc_separator::{find_good_separator, SeparatorConfig};
use sepdc_workloads::Workload;

/// Run EXP-10.
pub fn run() {
    // Part A: retry distribution of the separator search.
    let mut table = Table::new(
        "EXP-10a — separator search retries (Theorem 3.1 Bernoulli process)",
        &[
            "workload",
            "mean attempts",
            "P(1 attempt)",
            "max attempts",
            "fallbacks",
        ],
    );
    let cfg = SeparatorConfig::default();
    let runs = 200;
    for w in Workload::ALL {
        let pts = w.generate::<2>(4096, 3);
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        let mut attempts = Vec::with_capacity(runs);
        let mut fallbacks = 0;
        for _ in 0..runs {
            let f = find_good_separator::<2, 3, _>(&pts, &cfg, &mut rng).expect("splittable");
            attempts.push(f.attempts);
            if f.outcome == sepdc_separator::SearchOutcome::Fallback {
                fallbacks += 1;
            }
        }
        let mean = attempts.iter().sum::<usize>() as f64 / runs as f64;
        let p1 = attempts.iter().filter(|&&a| a == 1).count() as f64 / runs as f64;
        table.row(
            w.name(),
            vec![
                format!("{mean:.2}"),
                format!("{p1:.2}"),
                format!("{}", attempts.iter().max().unwrap()),
                format!("{fallbacks}"),
            ],
        );
    }
    table.note("P(1 attempt) ≥ 1/2 everywhere ⇒ the paper's 'probability of heads ≥ 1/2'");
    table.note("assumption holds with room to spare; retries are geometric.");
    table.print();

    // Part B: correction-path statistics of the full §6 algorithm.
    let mut table_b = Table::new(
        "EXP-10b — §6 correction paths: fast vs punt, marching load (Lemma 6.2)",
        &[
            "workload / n",
            "fast",
            "punt(ι)",
            "punt(march)",
            "punt %",
            "max march ratio",
            "max ι/threshold",
        ],
    );
    let kcfg = KnnDcConfig::new(1).with_seed(23);
    for w in [
        Workload::UniformCube,
        Workload::Clusters,
        Workload::SphereShell,
        Workload::TwoSlabs,
    ] {
        for &n in &[1usize << 13, 1 << 15] {
            let pts = w.generate::<2>(n, 5);
            let out = parallel_knn::<2, 3>(&pts, &kcfg);
            let s = out.stats;
            let punts = s.punts_threshold + s.punts_marching;
            let total = s.fast_corrections + punts;
            table_b.row(
                format!("{} n={n}", w.name()),
                vec![
                    format!("{}", s.fast_corrections),
                    format!("{}", s.punts_threshold),
                    format!("{}", s.punts_marching),
                    format!("{:.1}%", 100.0 * punts as f64 / total.max(1) as f64),
                    format!("{:.2}", s.max_marching_ratio),
                    format!("{:.2}", s.max_crossing_vs_threshold),
                ],
            );
        }
    }
    table_b.note("punt % stays small: the fast path dominates, so the Punting Lemma's");
    table_b.note("'constant factor' claim is visible directly.");
    table_b.note("max march ratio < 1: successful marches respect the m^(1-η) bound of Lemma 6.2.");
    table_b.print();
}
