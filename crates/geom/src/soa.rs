//! Structure-of-arrays coordinate arena and batched distance kernels.
//!
//! The divide-and-conquer hot paths (leaf brute solves, Fast-Correction
//! candidate evaluation, kd-tree leaf scans, query-tree cover tests) all
//! reduce to the same primitive: squared distances from **one** query point
//! to **many** candidate points. The AoS [`Point<D>`] layout makes that
//! primitive a strided gather — every candidate pulls `D` coordinates from
//! a distinct cache line and the compiler sees one independent scalar
//! reduction per pair. [`SoaPoints`] stores the same coordinates as `D`
//! contiguous `f64` columns so a batch of candidates reads each dimension
//! as a dense (or gathered-by-id) streak, and the kernels below process
//! candidates in fixed-width blocks of [`BLOCK`] with a local accumulator
//! array — a shape LLVM auto-vectorizes without any `unsafe` or explicit
//! SIMD intrinsics.
//!
//! # Bitwise parity contract
//!
//! Every **f64** kernel in this module is **bit-for-bit identical** to the
//! scalar reference `q.dist_sq(&p)` whenever the distance is a number. The
//! reference accumulates `acc += (q[d] - p[d])^2` in ascending-dimension
//! order; the blocked kernels keep one accumulator lane per candidate and
//! perform the exact same IEEE-754 operation sequence — same ascending
//! order, same operand order (query as minuend), no `mul_add`/FMA anywhere
//! (fusing would change the rounding and break the repo-wide determinism
//! contract: byte-identical k-NN output across thread counts and with the
//! pre-SoA implementation). Since squares are non-negative, every non-NaN
//! sum is insensitive to how the compiler commutes the adds, so non-NaN
//! results match the scalar loop bit for bit. A NaN *result* (possible only
//! for non-finite inputs, which every validated entry point rejects) is NaN
//! on both sides, but its payload bits are unspecified — IEEE-754 leaves
//! NaN propagation implementation-defined and LLVM may commute the adds
//! differently in separately compiled loops. The parity proptests in
//! `tests/proptest_soa_kernels.rs` pin down exactly this contract,
//! including raw-bit non-finite inputs.
//!
//! # Mixed-precision filtering tier
//!
//! Every arena additionally carries **f32 shadow columns** (converted once
//! at construction) and blocked f32 analogues of the gather/range kernels —
//! half the memory bandwidth on the candidate-filtering passes, which the
//! dist-evals counters identify as the remaining cost center. The f32
//! kernels are *filters*, never answers: [`F32Bound`] turns an f32 squared
//! distance into a **certified lower bound** on the exact f64 kernel value,
//! so a candidate may be rejected in f32 only when even that lower bound
//! already exceeds the pruning threshold; every survivor is confirmed by
//! the exact f64 kernel. Under that discipline the mixed tier's output is
//! byte-identical to the exact tier's — the soundness proptests in
//! `tests/precision.rs` adversarially search for a violation (including
//! subnormal, huge, and near-threshold inputs) and the per-site parity
//! suites pin the end-to-end equality. See DESIGN.md §17 for the error
//! model behind the bound.

use crate::aabb::Aabb;
use crate::ball::Ball;
use crate::point::Point;

/// Fixed kernel width: candidates processed per blocked-loop iteration.
///
/// Eight `f64` lanes span two AVX2 registers (or four NEON ones); wider
/// blocks stop paying once the accumulator array spills.
pub const BLOCK: usize = 8;

/// Unit roundoff of `f32` (`2^-24`): half an ulp of relative error per
/// rounded single-precision operation. Every term of the [`F32Bound`]
/// error model scales with this constant.
const F32_UNIT: f64 = 5.960_464_477_539_063e-8; // 2^-24

/// Absolute floor added to every [`F32Bound`] slack: covers the
/// *absolute* (non-relative) rounding errors of f32 subnormal arithmetic,
/// whose per-operation error is bounded by `2^-150` rather than
/// `u * |x|`. `2^-120` dominates the `O(D) * 2^-149`-scale residue with
/// >2^20 headroom while staying ~30 orders of magnitude below any
/// distance a real workload produces, so it costs no filtering power.
const SLACK_FLOOR: f64 = 7.523_163_845_262_640e-37; // 2^-120

/// Certified lower-bound transform for f32 squared distances.
///
/// For an arena and query whose coordinates all have magnitude `<= M`,
/// the standard floating-point error model bounds the difference between
/// the f32 kernel's squared distance `d32` and the exact f64 kernel's
/// `d64` by a relative term (accumulation rounding, `O(D) * 2^-24`) plus
/// an absolute term (cancellation in the coordinate subtraction,
/// `O(D) * 2^-24 * M^2`). [`F32Bound::lower_bound`] folds both in with
/// 4x constant headroom:
///
/// ```text
/// lb(d32) = d32 * (1 - alpha) - beta   <=   d64
///     alpha = 8 (D + 2) u,   beta = 64 (D + 1) u M^2 + 2^-120,   u = 2^-24
/// ```
///
/// so `lb(d32) > T` certifies `d64 > T` for any threshold `T` — the safe
/// f32 reject. Non-finite `d32` (overflowed or NaN-poisoned lanes) maps
/// to `-inf`: never rejected, always confirmed in f64.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct F32Bound {
    /// Multiplicative deflation `1 - alpha`.
    scale: f64,
    /// Absolute slack `beta`, subtracted after scaling.
    slack: f64,
}

impl F32Bound {
    /// Bound for `dim`-dimensional distances between coordinates of
    /// magnitude at most `max_abs` (query and candidates combined).
    /// `max_abs` may be infinite (the slack becomes infinite and the
    /// bound never rejects — still sound).
    pub fn for_magnitude(dim: usize, max_abs: f64) -> Self {
        let d = dim as f64;
        F32Bound {
            scale: 1.0 - 8.0 * (d + 2.0) * F32_UNIT,
            slack: 64.0 * (d + 1.0) * F32_UNIT * max_abs * max_abs + SLACK_FLOOR,
        }
    }

    /// Certified lower bound on the exact f64 squared distance whose f32
    /// shadow evaluated to `d32`. Rejecting a candidate is safe exactly
    /// when this bound (strictly) exceeds the pruning threshold.
    #[inline]
    pub fn lower_bound(&self, d32: f32) -> f64 {
        let d = d32 as f64;
        if d.is_finite() {
            d * self.scale - self.slack
        } else {
            f64::NEG_INFINITY
        }
    }
}

/// Counters from one tiered cover-filter or candidate-filter pass,
/// accumulated by the caller into the run-level `precision.*` namespace.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FilterStats {
    /// Candidates rejected by the certified f32 lower bound (no f64
    /// distance was evaluated for these).
    pub f32_rejects: u64,
    /// Candidates that survived the f32 filter and were confirmed by an
    /// exact f64 evaluation (whether or not the predicate then admitted
    /// them).
    pub f64_confirms: u64,
    /// Survivors whose exact f64 distance fell *strictly below* the
    /// certified f32 lower bound (`lb > d64`) — an empirical violation of
    /// the error analysis (DESIGN.md §17) that would have made the f32
    /// reject unsound. Checked on every confirmed candidate; always zero
    /// when the bound is correct, and CI gates it at zero.
    pub unsafe_margin_hits: u64,
    /// Candidates the (1+ε)-relaxed predicate skipped even though the
    /// exact predicate admits them — the certificate's skip count.
    pub eps_skips: u64,
}

impl FilterStats {
    /// Accumulate another pass's counters into this one.
    pub fn merge(&mut self, other: &FilterStats) {
        self.f32_rejects += other.f32_rejects;
        self.f64_confirms += other.f64_confirms;
        self.unsafe_margin_hits += other.unsafe_margin_hits;
        self.eps_skips += other.eps_skips;
    }
}

/// Per-dimension contiguous coordinate columns for a point set.
///
/// Built once from the input (same index space as the `&[Point<D>]` it came
/// from), then shared read-only by every distance-heavy consumer. Sub-ranges
/// of the D&C permutation arena address it by id (gather kernels); fully
/// contiguous scans (brute force) use the range kernels.
#[derive(Clone, Debug)]
pub struct SoaPoints<const D: usize> {
    /// `cols[d][i]` is coordinate `d` of point `i`.
    cols: [Vec<f64>; D],
    /// f32 shadow of `cols` (round-to-nearest conversion, done once here):
    /// the mixed-precision filter kernels read these instead of `cols`.
    cols32: [Vec<f32>; D],
    /// Largest |coordinate| in the arena (NaNs ignored), cached for
    /// [`SoaPoints::f32_bound`].
    max_abs: f64,
    len: usize,
}

impl<const D: usize> SoaPoints<D> {
    fn finish(cols: [Vec<f64>; D], len: usize) -> Self {
        let cols32: [Vec<f32>; D] =
            std::array::from_fn(|d| cols[d].iter().map(|&c| c as f32).collect());
        // `f64::max` ignores a NaN operand, so NaN coordinates (possible
        // only through unvalidated internal paths) don't poison the bound.
        let max_abs = cols
            .iter()
            .flat_map(|c| c.iter())
            .fold(0.0f64, |m, &c| m.max(c.abs()));
        SoaPoints {
            cols,
            cols32,
            max_abs,
            len,
        }
    }

    /// Transpose a point slice into per-dimension columns.
    pub fn from_points(points: &[Point<D>]) -> Self {
        let mut cols: [Vec<f64>; D] = std::array::from_fn(|_| Vec::with_capacity(points.len()));
        for p in points {
            for (d, col) in cols.iter_mut().enumerate() {
                col.push(p.0[d]);
            }
        }
        Self::finish(cols, points.len())
    }

    /// Rebuild the arena from per-dimension columns (already columnar —
    /// no transpose). Every column must have the same length; serialization
    /// code uses this so a snapshot load stays a straight column copy.
    ///
    /// # Panics
    /// Panics if the columns disagree on length.
    pub fn from_columns(cols: [Vec<f64>; D]) -> Self {
        let len = cols.first().map_or(0, Vec::len);
        assert!(
            cols.iter().all(|c| c.len() == len),
            "SoaPoints::from_columns: ragged columns"
        );
        Self::finish(cols, len)
    }

    /// Borrow coordinate column `d` (`col(d)[i]` is coordinate `d` of
    /// point `i`) — the flat array serialization code writes to disk.
    pub fn col(&self, d: usize) -> &[f64] {
        &self.cols[d]
    }

    /// Borrow the f32 shadow of coordinate column `d`.
    pub fn col32(&self, d: usize) -> &[f32] {
        &self.cols32[d]
    }

    /// Largest coordinate magnitude in the arena (0 when empty; NaN
    /// coordinates are ignored, infinite ones propagate).
    pub fn max_abs(&self) -> f64 {
        self.max_abs
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the arena holds no points.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Re-materialize point `i` (cold paths only; hot paths stay columnar).
    pub fn point(&self, i: usize) -> Point<D> {
        Point(std::array::from_fn(|d| self.cols[d][i]))
    }

    /// Certified f32 lower-bound transform for distances from `q` into
    /// this arena: combines the cached arena magnitude with the query's.
    pub fn f32_bound(&self, q: &Point<D>) -> F32Bound {
        let mut m = self.max_abs;
        for d in 0..D {
            m = m.max(q.0[d].abs());
        }
        F32Bound::for_magnitude(D, m)
    }

    /// Scalar tail kernel: squared distance from `q` to point `i`.
    ///
    /// Same operation sequence as [`Point::dist_sq`] (ascending-dimension
    /// accumulation, no FMA) — the blocked kernels defer to this for the
    /// `len % BLOCK` remainder.
    #[inline]
    pub fn dist_sq_to(&self, q: &Point<D>, i: usize) -> f64 {
        let mut acc = 0.0;
        for d in 0..D {
            let diff = q.0[d] - self.cols[d][i];
            acc += diff * diff;
        }
        acc
    }

    /// Gather kernel: `out[j] = |points[ids[j]] - q|^2` for every `j`.
    ///
    /// # Panics
    /// Panics when `out.len() != ids.len()` or any id is out of range.
    pub fn dist_sq_gather(&self, q: &Point<D>, ids: &[u32], out: &mut [f64]) {
        assert_eq!(ids.len(), out.len(), "gather kernel length mismatch");
        let blocks = ids.len() / BLOCK;
        for b in 0..blocks {
            let base = b * BLOCK;
            let idv = &ids[base..base + BLOCK];
            let mut acc = [0.0f64; BLOCK];
            for d in 0..D {
                let col = &self.cols[d];
                let qd = q.0[d];
                for j in 0..BLOCK {
                    let diff = qd - col[idv[j] as usize];
                    acc[j] += diff * diff;
                }
            }
            out[base..base + BLOCK].copy_from_slice(&acc);
        }
        for j in blocks * BLOCK..ids.len() {
            out[j] = self.dist_sq_to(q, ids[j] as usize);
        }
    }

    /// Gather kernel with a reusable `Vec` destination (clears and fills).
    pub fn dist_sq_gather_into(&self, q: &Point<D>, ids: &[u32], out: &mut Vec<f64>) {
        out.clear();
        out.resize(ids.len(), 0.0);
        self.dist_sq_gather(q, ids, out);
    }

    /// Contiguous kernel: `out[j] = |points[start + j] - q|^2`.
    ///
    /// The dense-streak variant for scans over an unbroken id range (brute
    /// force, microbenches); `out.len()` fixes the range length.
    ///
    /// # Panics
    /// Panics when `start + out.len()` exceeds the arena.
    pub fn dist_sq_range(&self, q: &Point<D>, start: usize, out: &mut [f64]) {
        let n = out.len();
        assert!(start + n <= self.len, "range kernel out of bounds");
        let blocks = n / BLOCK;
        for b in 0..blocks {
            let base = b * BLOCK;
            let mut acc = [0.0f64; BLOCK];
            for d in 0..D {
                let col = &self.cols[d][start + base..start + base + BLOCK];
                let qd = q.0[d];
                for j in 0..BLOCK {
                    let diff = qd - col[j];
                    acc[j] += diff * diff;
                }
            }
            out[base..base + BLOCK].copy_from_slice(&acc);
        }
        for (j, o) in out.iter_mut().enumerate().skip(blocks * BLOCK) {
            *o = self.dist_sq_to(q, start + j);
        }
    }

    /// f32 scalar tail kernel: squared distance from the f32 shadow of `q`
    /// to shadow point `i`. Filter-tier only — pair with
    /// [`SoaPoints::f32_bound`] before acting on the value.
    #[inline]
    pub fn dist_sq_f32_to(&self, q32: &[f32; D], i: usize) -> f32 {
        let mut acc = 0.0f32;
        for d in 0..D {
            let diff = q32[d] - self.cols32[d][i];
            acc += diff * diff;
        }
        acc
    }

    /// Convert a query point to its f32 shadow (one rounding per
    /// coordinate, done once per gather/range call).
    #[inline]
    pub fn q32(q: &Point<D>) -> [f32; D] {
        std::array::from_fn(|d| q.0[d] as f32)
    }

    /// f32 gather kernel: shadow of [`SoaPoints::dist_sq_gather`], reading
    /// the f32 columns (half the bandwidth). Same blocked shape.
    ///
    /// # Panics
    /// Panics when `out.len() != ids.len()` or any id is out of range.
    pub fn dist_sq_f32_gather(&self, q: &Point<D>, ids: &[u32], out: &mut [f32]) {
        assert_eq!(ids.len(), out.len(), "f32 gather kernel length mismatch");
        let q32 = Self::q32(q);
        let blocks = ids.len() / BLOCK;
        for b in 0..blocks {
            let base = b * BLOCK;
            let idv = &ids[base..base + BLOCK];
            let mut acc = [0.0f32; BLOCK];
            for d in 0..D {
                let col = &self.cols32[d];
                let qd = q32[d];
                for j in 0..BLOCK {
                    let diff = qd - col[idv[j] as usize];
                    acc[j] += diff * diff;
                }
            }
            out[base..base + BLOCK].copy_from_slice(&acc);
        }
        for j in blocks * BLOCK..ids.len() {
            out[j] = self.dist_sq_f32_to(&q32, ids[j] as usize);
        }
    }

    /// f32 gather kernel with a reusable `Vec` destination.
    pub fn dist_sq_f32_gather_into(&self, q: &Point<D>, ids: &[u32], out: &mut Vec<f32>) {
        out.clear();
        out.resize(ids.len(), 0.0);
        self.dist_sq_f32_gather(q, ids, out);
    }

    /// f32 contiguous kernel: shadow of [`SoaPoints::dist_sq_range`].
    ///
    /// # Panics
    /// Panics when `start + out.len()` exceeds the arena.
    pub fn dist_sq_f32_range(&self, q: &Point<D>, start: usize, out: &mut [f32]) {
        let n = out.len();
        assert!(start + n <= self.len, "f32 range kernel out of bounds");
        let q32 = Self::q32(q);
        let blocks = n / BLOCK;
        for b in 0..blocks {
            let base = b * BLOCK;
            let mut acc = [0.0f32; BLOCK];
            for d in 0..D {
                let col = &self.cols32[d][start + base..start + base + BLOCK];
                let qd = q32[d];
                for j in 0..BLOCK {
                    let diff = qd - col[j];
                    acc[j] += diff * diff;
                }
            }
            out[base..base + BLOCK].copy_from_slice(&acc);
        }
        for (j, o) in out.iter_mut().enumerate().skip(blocks * BLOCK) {
            *o = self.dist_sq_f32_to(&q32, start + j);
        }
    }

    /// Axis-aligned bounding box of a gathered id subset.
    pub fn aabb_of_ids(&self, ids: &[u32]) -> Aabb<D> {
        let mut bb = Aabb::empty();
        for &i in ids {
            bb = bb.union_point(&self.point(i as usize));
        }
        bb
    }
}

/// Structure-of-arrays view of a ball set: center columns plus a
/// precomputed squared-radius column.
///
/// `radius_sq[i]` is computed as `balls[i].radius * balls[i].radius` — the
/// exact multiplication [`Ball::contains`] performs — so the batched cover
/// predicates below are bit-for-bit the scalar predicates.
#[derive(Clone, Debug)]
pub struct SoaBalls<const D: usize> {
    centers: SoaPoints<D>,
    radius_sq: Vec<f64>,
}

impl<const D: usize> SoaBalls<D> {
    /// Transpose a ball slice into center columns + squared radii.
    pub fn from_balls(balls: &[Ball<D>]) -> Self {
        let centers: Vec<Point<D>> = balls.iter().map(|b| b.center).collect();
        SoaBalls {
            centers: SoaPoints::from_points(&centers),
            radius_sq: balls.iter().map(|b| b.radius * b.radius).collect(),
        }
    }

    /// Rebuild from center columns plus plain radii. `radius_sq` is
    /// recomputed as `r * r` — the same multiplication `from_balls`
    /// performs — so a set reloaded from serialized columns filters
    /// bit-for-bit like the original.
    ///
    /// # Panics
    /// Panics if `radii.len()` disagrees with the column length (or the
    /// columns are ragged).
    pub fn from_columns(centers: [Vec<f64>; D], radii: &[f64]) -> Self {
        let centers = SoaPoints::from_columns(centers);
        assert_eq!(
            centers.len(),
            radii.len(),
            "SoaBalls::from_columns: center/radius length mismatch"
        );
        SoaBalls {
            centers,
            radius_sq: radii.iter().map(|r| r * r).collect(),
        }
    }

    /// Borrow the center-coordinate arena (columnar access for
    /// serialization; `centers().col(d)[i]` is coordinate `d` of ball `i`).
    pub fn centers(&self) -> &SoaPoints<D> {
        &self.centers
    }

    /// Borrow the squared-radius column (`radius_sq()[i]` is the squared
    /// radius of ball `i`).
    pub fn radius_sq(&self) -> &[f64] {
        &self.radius_sq
    }

    /// Number of balls.
    pub fn len(&self) -> usize {
        self.radius_sq.len()
    }

    /// `true` when the set holds no balls.
    pub fn is_empty(&self) -> bool {
        self.radius_sq.is_empty()
    }

    /// Batched cover test: append to `out` every id in `ids` whose ball
    /// covers `p` — closed (`dist_sq <= r^2`) when `open` is false, open
    /// interior (`dist_sq < r^2`) when true. Preserves `ids` order, so CSR
    /// assemblies built on it are byte-identical to the scalar filter.
    ///
    /// `scratch` is a reusable distance buffer (cleared and refilled).
    pub fn filter_covering_into(
        &self,
        p: &Point<D>,
        ids: &[u32],
        open: bool,
        scratch: &mut Vec<f64>,
        out: &mut Vec<u32>,
    ) {
        self.centers.dist_sq_gather_into(p, ids, scratch);
        if open {
            for (j, &i) in ids.iter().enumerate() {
                if scratch[j] < self.radius_sq[i as usize] {
                    out.push(i);
                }
            }
        } else {
            for (j, &i) in ids.iter().enumerate() {
                if scratch[j] <= self.radius_sq[i as usize] {
                    out.push(i);
                }
            }
        }
    }

    /// Precision-tiered cover test. Same admitted set and order as
    /// [`SoaBalls::filter_covering_into`] whenever `eps_scale == 1.0`
    /// (the soundness contract), for both values of `mixed`:
    ///
    /// * `mixed = false`: exact f64 gather, ε-scaled threshold compare.
    /// * `mixed = true`: f32 shadow gather first; a ball is rejected
    ///   without any f64 work when the certified lower bound on the probe
    ///   distance already clears its **unscaled** squared radius;
    ///   survivors are confirmed by the exact scalar kernel against the
    ///   ε-scaled threshold. (Filtering against the unscaled radius keeps
    ///   the ε skip count exact in mixed mode.)
    ///
    /// `eps_scale` is `1 / (1+ε)^2`: the relaxed predicate admits only
    /// `dist_sq <= r^2 * eps_scale`, and each ball the exact predicate
    /// admits but the relaxed one skips increments `stats.eps_skips`.
    #[allow(clippy::too_many_arguments)]
    pub fn filter_covering_tiered_into(
        &self,
        p: &Point<D>,
        ids: &[u32],
        open: bool,
        mixed: bool,
        eps_scale: f64,
        scratch32: &mut Vec<f32>,
        scratch: &mut Vec<f64>,
        out: &mut Vec<u32>,
        stats: &mut FilterStats,
    ) {
        let relaxed = eps_scale < 1.0;
        if !mixed {
            if !relaxed {
                // Pure exact tier: the byte-contract fast path.
                self.filter_covering_into(p, ids, open, scratch, out);
                return;
            }
            self.centers.dist_sq_gather_into(p, ids, scratch);
            for (j, &i) in ids.iter().enumerate() {
                let r2 = self.radius_sq[i as usize];
                let t = r2 * eps_scale;
                let d = scratch[j];
                let admit = if open { d < t } else { d <= t };
                if admit {
                    out.push(i);
                } else if if open { d < r2 } else { d <= r2 } {
                    stats.eps_skips += 1;
                }
            }
            return;
        }
        self.centers.dist_sq_f32_gather_into(p, ids, scratch32);
        let bound = self.centers.f32_bound(p);
        for (j, &i) in ids.iter().enumerate() {
            let r2 = self.radius_sq[i as usize];
            let d32 = scratch32[j];
            let lb = bound.lower_bound(d32);
            // Safe reject against the unscaled radius: `lb > r2` implies
            // the exact distance exceeds r2 (closed predicate cannot
            // admit); for the open predicate `lb >= r2` suffices.
            if if open { lb >= r2 } else { lb > r2 } {
                stats.f32_rejects += 1;
                continue;
            }
            let d = self.centers.dist_sq_to(p, i as usize);
            stats.f64_confirms += 1;
            // Empirical bound validation on every confirm: the exact
            // distance can never fall below the certified lower bound.
            // A hit here means the DESIGN.md §17 analysis is violated
            // and the f32 reject above would have been unsound.
            if lb > d {
                stats.unsafe_margin_hits += 1;
            }
            let t = if relaxed { r2 * eps_scale } else { r2 };
            let admit = if open { d < t } else { d <= t };
            if admit {
                out.push(i);
            } else if relaxed && if open { d < r2 } else { d <= r2 } {
                stats.eps_skips += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts_3d(n: usize) -> Vec<Point<3>> {
        // Deterministic, irregular, includes duplicates.
        (0..n)
            .map(|i| {
                let f = i as f64;
                Point::from([
                    (f * 0.37).sin() * 10.0,
                    (f * 1.91).cos() * 3.0,
                    (i % 7) as f64,
                ])
            })
            .collect()
    }

    #[test]
    fn gather_kernel_matches_scalar_bitwise() {
        let pts = pts_3d(53);
        let soa = SoaPoints::from_points(&pts);
        let q = Point::from([0.25, -1.5, 3.0]);
        let ids: Vec<u32> = (0..pts.len() as u32).rev().collect();
        let mut out = vec![0.0; ids.len()];
        soa.dist_sq_gather(&q, &ids, &mut out);
        for (j, &i) in ids.iter().enumerate() {
            assert_eq!(
                out[j].to_bits(),
                q.dist_sq(&pts[i as usize]).to_bits(),
                "id {i}"
            );
        }
    }

    #[test]
    fn range_kernel_matches_scalar_bitwise() {
        let pts = pts_3d(41);
        let soa = SoaPoints::from_points(&pts);
        let q = pts[17];
        let mut out = vec![0.0; 30];
        soa.dist_sq_range(&q, 5, &mut out);
        for j in 0..30 {
            assert_eq!(out[j].to_bits(), q.dist_sq(&pts[5 + j]).to_bits());
        }
    }

    #[test]
    fn tail_lengths_are_covered() {
        let pts = pts_3d(BLOCK * 2 + 3);
        let soa = SoaPoints::from_points(&pts);
        let q = Point::origin();
        for n in 0..pts.len() {
            let ids: Vec<u32> = (0..n as u32).collect();
            let mut out = vec![0.0; n];
            soa.dist_sq_gather(&q, &ids, &mut out);
            for (j, &i) in ids.iter().enumerate() {
                assert_eq!(out[j].to_bits(), q.dist_sq(&pts[i as usize]).to_bits());
            }
        }
    }

    #[test]
    fn point_round_trips() {
        let pts = pts_3d(9);
        let soa = SoaPoints::from_points(&pts);
        assert_eq!(soa.len(), 9);
        for (i, p) in pts.iter().enumerate() {
            assert_eq!(soa.point(i), *p);
        }
    }

    #[test]
    fn soa_balls_cover_matches_scalar() {
        let pts = pts_3d(33);
        let balls: Vec<Ball<3>> = pts
            .iter()
            .enumerate()
            .map(|(i, p)| Ball::new(*p, (i % 5) as f64))
            .collect();
        let soa = SoaBalls::from_balls(&balls);
        let probe = Point::from([1.0, 0.5, 3.0]);
        let ids: Vec<u32> = (0..balls.len() as u32).collect();
        let (mut scratch, mut closed, mut open) = (Vec::new(), Vec::new(), Vec::new());
        soa.filter_covering_into(&probe, &ids, false, &mut scratch, &mut closed);
        soa.filter_covering_into(&probe, &ids, true, &mut scratch, &mut open);
        let want_closed: Vec<u32> = ids
            .iter()
            .copied()
            .filter(|&i| balls[i as usize].contains(&probe))
            .collect();
        let want_open: Vec<u32> = ids
            .iter()
            .copied()
            .filter(|&i| balls[i as usize].contains_interior(&probe))
            .collect();
        assert_eq!(closed, want_closed);
        assert_eq!(open, want_open);
    }

    #[test]
    fn aabb_of_ids_matches_of_points() {
        let pts = pts_3d(20);
        let soa = SoaPoints::from_points(&pts);
        let ids: Vec<u32> = vec![3, 7, 7, 11, 19];
        let subset: Vec<Point<3>> = ids.iter().map(|&i| pts[i as usize]).collect();
        let bb = soa.aabb_of_ids(&ids);
        let want = Aabb::of_points(&subset);
        assert_eq!(bb.lo, want.lo);
        assert_eq!(bb.hi, want.hi);
    }

    // ---- mixed-precision tier -------------------------------------------

    #[test]
    fn f32_kernels_match_scalar_f32_bitwise() {
        // The f32 kernels have their own parity contract against the
        // scalar f32 tail (same shape as the f64 contract): blocked and
        // tail lanes agree bit for bit.
        let pts = pts_3d(BLOCK * 3 + 5);
        let soa = SoaPoints::from_points(&pts);
        let q = Point::from([0.3, -2.25, 5.0]);
        let q32 = SoaPoints::q32(&q);
        let mut ids: Vec<u32> = (0..pts.len() as u32).rev().collect();
        ids.extend(0..pts.len() as u32); // duplicates are legal
        let mut out = vec![0.0f32; ids.len()];
        soa.dist_sq_f32_gather(&q, &ids, &mut out);
        for (j, &i) in ids.iter().enumerate() {
            assert_eq!(
                out[j].to_bits(),
                soa.dist_sq_f32_to(&q32, i as usize).to_bits(),
                "gather id {i}"
            );
        }
        for start in 0..pts.len() {
            let mut out = vec![0.0f32; pts.len() - start];
            soa.dist_sq_f32_range(&q, start, &mut out);
            for (j, &d) in out.iter().enumerate() {
                assert_eq!(
                    d.to_bits(),
                    soa.dist_sq_f32_to(&q32, start + j).to_bits(),
                    "range start {start} j {j}"
                );
            }
        }
    }

    #[test]
    fn lower_bound_never_exceeds_exact_distance() {
        // Deterministic sweep over wildly mixed magnitudes, including
        // subnormals and near-cancellation pairs; the adversarial search
        // lives in tests/precision.rs.
        let mut pts = pts_3d(40);
        pts.push(Point::from([1e-40, -3e-39, 2.2e-308])); // subnormal-ish
        pts.push(Point::from([1e18, -1e18, 5e17])); // huge
        pts.push(Point::from([1.0 + 1e-15, 1.0, 1.0])); // near-cancellation
        pts.push(Point::from([0.0, -0.0, 0.0]));
        let soa = SoaPoints::from_points(&pts);
        for q in [
            Point::from([1.0, 1.0, 1.0]),
            Point::from([1e18, -1e18, 5e17]),
            Point::from([1e-40, 0.0, 0.0]),
            Point::from([-7.25, 3.5, 6.0]),
        ] {
            let bound = soa.f32_bound(&q);
            let ids: Vec<u32> = (0..pts.len() as u32).collect();
            let mut d32 = Vec::new();
            soa.dist_sq_f32_gather_into(&q, &ids, &mut d32);
            for (j, &i) in ids.iter().enumerate() {
                let lb = bound.lower_bound(d32[j]);
                let exact = soa.dist_sq_to(&q, i as usize);
                assert!(
                    lb <= exact,
                    "unsafe bound: lb {lb} > exact {exact} (id {i}, d32 {})",
                    d32[j]
                );
            }
        }
    }

    #[test]
    fn lower_bound_is_selective_at_workload_scale() {
        // The bound must actually reject: at unit scale a candidate 2x
        // beyond the threshold radius has lb well above it.
        let bound = F32Bound::for_magnitude(3, 1.0);
        let d32 = 4.0e-2f32; // candidate at distance 0.2
        let threshold = 1.0e-2; // radius 0.1
        assert!(bound.lower_bound(d32) > threshold);
    }

    #[test]
    fn non_finite_f32_distances_are_never_rejected() {
        let bound = F32Bound::for_magnitude(2, 1e200);
        assert_eq!(bound.lower_bound(f32::INFINITY), f64::NEG_INFINITY);
        assert_eq!(bound.lower_bound(f32::NAN), f64::NEG_INFINITY);
        // Infinite magnitude -> infinite slack -> nothing rejects.
        let inf = F32Bound::for_magnitude(2, f64::INFINITY);
        assert_eq!(inf.lower_bound(1.0), f64::NEG_INFINITY);
    }

    /// Tiered filter fixture shared by the edge-case tests below: checks
    /// that both tiers reproduce `filter_covering_into` exactly at
    /// `eps_scale = 1.0`, for both predicates, and returns the mixed-tier
    /// stats of the closed pass.
    fn assert_tiers_match(balls: &SoaBalls<3>, probe: &Point<3>) -> FilterStats {
        let ids: Vec<u32> = (0..balls.len() as u32).collect();
        let (mut s32, mut s64) = (Vec::new(), Vec::new());
        let mut closed_stats = FilterStats::default();
        for open in [false, true] {
            let mut want = Vec::new();
            balls.filter_covering_into(probe, &ids, open, &mut s64, &mut want);
            for mixed in [false, true] {
                let mut got = Vec::new();
                let mut stats = FilterStats::default();
                balls.filter_covering_tiered_into(
                    probe, &ids, open, mixed, 1.0, &mut s32, &mut s64, &mut got, &mut stats,
                );
                assert_eq!(got, want, "open={open} mixed={mixed}");
                assert_eq!(stats.eps_skips, 0, "open={open} mixed={mixed}");
                if mixed && !open {
                    closed_stats = stats;
                }
            }
        }
        closed_stats
    }

    #[test]
    fn tiered_filter_zero_radius_balls() {
        // Zero-radius balls: closed admits only exact center hits, open
        // admits nothing. Probe coincident with one center.
        let centers = pts_3d(12);
        let probe = centers[5];
        let balls: Vec<Ball<3>> = centers.iter().map(|c| Ball::new(*c, 0.0)).collect();
        let soa = SoaBalls::from_balls(&balls);
        let stats = assert_tiers_match(&soa, &probe);
        // The coincident ball survives the f32 filter (d32 = 0, lb < 0)
        // and is confirmed in f64.
        assert!(stats.f64_confirms >= 1, "{stats:?}");
        let ids: Vec<u32> = (0..balls.len() as u32).collect();
        let (mut s32, mut s64, mut out) = (Vec::new(), Vec::new(), Vec::new());
        let mut st = FilterStats::default();
        soa.filter_covering_tiered_into(
            &probe, &ids, false, true, 1.0, &mut s32, &mut s64, &mut out, &mut st,
        );
        assert!(out.contains(&5));
        out.clear();
        soa.filter_covering_tiered_into(
            &probe, &ids, true, true, 1.0, &mut s32, &mut s64, &mut out, &mut st,
        );
        assert!(out.is_empty(), "open predicate admits no zero-radius ball");
    }

    #[test]
    fn tiered_filter_coincident_center_and_probe() {
        // Every ball centered exactly on the probe: closed and open both
        // admit all positive radii; only closed admits the r = 0 ball.
        let probe = Point::from([0.125, -3.5, 7.0]);
        let balls: Vec<Ball<3>> = (0..10).map(|i| Ball::new(probe, i as f64)).collect();
        let soa = SoaBalls::from_balls(&balls);
        assert_tiers_match(&soa, &probe);
    }

    #[test]
    fn tiered_filter_subnormal_radii() {
        // Subnormal radii square to zero or subnormal-squared f64 values;
        // the SLACK_FLOOR keeps every f32 reject sound here (the bound
        // simply refuses to reject at these magnitudes).
        let tiny = f64::MIN_POSITIVE / 4.0; // subnormal
        let centers = [
            Point::from([0.0, 0.0, 0.0]),
            Point::from([tiny, 0.0, 0.0]),
            Point::from([1e-30, -1e-30, 0.0]),
            Point::from([0.5, 0.5, 0.5]),
        ];
        let probe = Point::from([tiny / 2.0, 0.0, 0.0]);
        let balls: Vec<Ball<3>> = centers
            .iter()
            .enumerate()
            .map(|(i, c)| Ball::new(*c, if i == 3 { 2.0 } else { tiny }))
            .collect();
        let soa = SoaBalls::from_balls(&balls);
        assert_tiers_match(&soa, &probe);
    }

    #[test]
    fn tiered_filter_counts_eps_skips_exactly() {
        // Probe at distance 0.9r from each center: with eps_scale shrunk
        // below (0.9)^2 the relaxed predicate must skip, and the skip is
        // counted in both tiers.
        let balls: Vec<Ball<3>> = (0..6)
            .map(|i| Ball::new(Point::from([i as f64 * 10.0, 0.0, 0.0]), 1.0))
            .collect();
        let soa = SoaBalls::from_balls(&balls);
        let probe = Point::from([0.9, 0.0, 0.0]); // inside ball 0 only
        let ids: Vec<u32> = (0..balls.len() as u32).collect();
        let eps_scale = 0.5; // relaxed threshold r^2/2 < 0.81
        for mixed in [false, true] {
            let (mut s32, mut s64, mut out) = (Vec::new(), Vec::new(), Vec::new());
            let mut stats = FilterStats::default();
            soa.filter_covering_tiered_into(
                &probe, &ids, false, mixed, eps_scale, &mut s32, &mut s64, &mut out, &mut stats,
            );
            assert!(out.is_empty(), "mixed={mixed}: relaxed filter must skip");
            assert_eq!(stats.eps_skips, 1, "mixed={mixed}");
        }
    }

    #[test]
    fn filter_stats_merge_accumulates() {
        let mut a = FilterStats {
            f32_rejects: 1,
            f64_confirms: 2,
            unsafe_margin_hits: 3,
            eps_skips: 4,
        };
        let b = FilterStats {
            f32_rejects: 10,
            f64_confirms: 20,
            unsafe_margin_hits: 30,
            eps_skips: 40,
        };
        a.merge(&b);
        assert_eq!(
            a,
            FilterStats {
                f32_rejects: 11,
                f64_confirms: 22,
                unsafe_margin_hits: 33,
                eps_skips: 44,
            }
        );
    }
}
