//! The Miller–Teng–Thurston–Vavasis Unit Time Sphere Separator Algorithm.
//!
//! One candidate draw (after the sample) costs work independent of `n`:
//!
//! 1. draw a constant-size random sample of the input points;
//! 2. normalize coordinates into a unit box (uniform scale + translation —
//!    a similarity, so spheres pull back exactly);
//! 3. stereographically lift the sample to `S^d ⊂ R^{d+1}`;
//! 4. compute an approximate centerpoint of the lifted sample by iterated
//!    Radon points;
//! 5. build the conformal normalization (rotation + dilation) that moves the
//!    centerpoint to the origin;
//! 6. draw a uniform random great circle and pull it back to a sphere or
//!    hyperplane in the original coordinates.
//!
//! The theorem of MTTV says a candidate produced this way `δ`-splits the
//! input and has intersection number `O(k^{1/d} n^{(d-1)/d})` against any
//! `k`-ply neighborhood system, with constant probability; the enclosing
//! retry loop ([`crate::search`]) boosts this to "with high probability".

use crate::config::SeparatorConfig;
use rand::Rng;
use sepdc_geom::centerpoint::{approximate_centerpoint, random_directions};
use sepdc_geom::point::Point;
use sepdc_geom::shape::Separator;
use sepdc_geom::sphere::Sphere;
use sepdc_geom::stereo::{lift, ConformalMap};
use sepdc_geom::Hyperplane;

/// Uniform-scaling normalization of a point cloud into `[-1, 1]^D`-ish
/// coordinates. A similarity transform: separators pull back exactly.
#[derive(Clone, Copy, Debug)]
struct BoxNorm<const D: usize> {
    mid: Point<D>,
    scale: f64,
}

impl<const D: usize> BoxNorm<D> {
    fn fit(points: &[Point<D>]) -> Self {
        let mut lo = points[0];
        let mut hi = points[0];
        for p in points {
            lo = lo.min(p);
            hi = hi.max(p);
        }
        let mid = (lo + hi) / 2.0;
        let mut extent: f64 = 0.0;
        for i in 0..D {
            extent = extent.max(hi[i] - lo[i]);
        }
        // Guard against the all-identical cloud (extent 0).
        let scale = (extent / 2.0).max(1e-12);
        BoxNorm { mid, scale }
    }

    fn forward(&self, p: &Point<D>) -> Point<D> {
        (*p - self.mid) / self.scale
    }

    /// Pull a separator found in normalized coordinates back to the
    /// original coordinates.
    fn pull_back(&self, sep: Separator<D>) -> Separator<D> {
        match sep {
            Separator::Sphere(s) => Separator::Sphere(Sphere::new(
                self.mid + s.center * self.scale,
                s.radius * self.scale,
            )),
            Separator::Halfspace(h) => Separator::Halfspace(Hyperplane {
                normal: h.normal,
                offset: h.offset * self.scale + h.normal.dot(&self.mid),
            }),
        }
    }
}

/// Draw one unit-time sphere-separator candidate.
///
/// `E` must equal `D + 1`. Returns `None` only on numerically degenerate
/// inputs (e.g. every sampled point identical); the caller retries or falls
/// back.
pub fn unit_time_candidate<const D: usize, const E: usize, R: Rng>(
    points: &[Point<D>],
    cfg: &SeparatorConfig,
    rng: &mut R,
) -> Option<Separator<D>> {
    assert_eq!(E, D + 1, "unit_time_candidate requires E = D + 1");
    assert!(!points.is_empty(), "cannot separate an empty point set");

    // 1. Constant-size sample (with replacement — preserves centerpoint
    //    quality w.h.p. and keeps the candidate cost independent of n).
    let sample: Vec<Point<D>> = if points.len() <= cfg.sample_size {
        points.to_vec()
    } else {
        (0..cfg.sample_size)
            .map(|_| points[rng.gen_range(0..points.len())])
            .collect()
    };

    // 2. Normalize.
    let norm = BoxNorm::fit(&sample);
    let normalized: Vec<Point<D>> = sample.iter().map(|p| norm.forward(p)).collect();

    // 3. Lift.
    let lifted: Vec<Point<E>> = normalized.iter().map(lift).collect();

    // 4. Approximate centerpoint of the lifted sample.
    let mut z = approximate_centerpoint(&lifted, rng, cfg.centerpoint);
    // The centerpoint of points on the sphere lies strictly inside the unit
    // ball except in degenerate one-point configurations; clamp for safety.
    let zn = z.norm();
    if zn >= 1.0 - 1e-9 {
        z = z * ((1.0 - 1e-6) / zn);
    }

    // 5. Conformal normalization.
    let map = ConformalMap::<D, E>::from_centerpoint(&z);

    // 6. Random great circle, pulled back through the conformal map and the
    //    box normalization.
    let g = random_directions::<E, R>(1, rng)[0];
    let sep = map.pull_back_great_circle(&g, cfg.tol)?;
    Some(norm.pull_back(sep))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality::{is_good_point_split, split_counts};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn uniform_square(n: usize, seed: u64) -> Vec<Point<2>> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::from([rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)]))
            .collect()
    }

    #[test]
    fn candidate_exists_for_uniform_points() {
        let pts = uniform_square(2000, 1);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let sep =
            unit_time_candidate::<2, 3, _>(&pts, &SeparatorConfig::default(), &mut rng).unwrap();
        // Must actually split: neither side empty, in at least some draws.
        let counts = split_counts(&pts, &sep, 1e-9);
        assert_eq!(counts.total(), pts.len());
    }

    #[test]
    fn candidates_are_frequently_good() {
        // The MTTV contract: success probability bounded below by a
        // constant. Empirically on uniform data most draws are good.
        let pts = uniform_square(4000, 3);
        let cfg = SeparatorConfig::default();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let delta = cfg.delta(2);
        let mut good = 0;
        let trials = 60;
        for _ in 0..trials {
            if let Some(sep) = unit_time_candidate::<2, 3, _>(&pts, &cfg, &mut rng) {
                let c = split_counts(&pts, &sep, cfg.tol);
                if is_good_point_split(&c, delta) {
                    good += 1;
                }
            }
        }
        // The paper assumes ≥ 1/2; demand at least 40% to keep the test
        // robust to sampling noise while still catching regressions.
        assert!(
            good * 5 >= trials * 2,
            "only {good}/{trials} candidates were good"
        );
    }

    #[test]
    fn candidate_on_clustered_data() {
        // Two tight clusters: a good separator must put them apart or split
        // one of them; either way both sides must be non-trivial often.
        let mut pts = Vec::new();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..500 {
            pts.push(Point::<2>::from([
                rng.gen_range(-0.01..0.01),
                rng.gen_range(-0.01..0.01),
            ]));
        }
        for _ in 0..500 {
            pts.push(Point::from([
                10.0 + rng.gen_range(-0.01..0.01),
                rng.gen_range(-0.01..0.01),
            ]));
        }
        let cfg = SeparatorConfig::default();
        let mut good = 0;
        for _ in 0..40 {
            if let Some(sep) = unit_time_candidate::<2, 3, _>(&pts, &cfg, &mut rng) {
                let c = split_counts(&pts, &sep, cfg.tol);
                if is_good_point_split(&c, cfg.delta(2)) {
                    good += 1;
                }
            }
        }
        assert!(good >= 10, "clustered data: only {good}/40 good candidates");
    }

    #[test]
    fn candidate_in_three_dimensions() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let pts: Vec<Point<3>> = (0..3000)
            .map(|_| {
                Point::from([
                    rng.gen_range(0.0..1.0),
                    rng.gen_range(0.0..1.0),
                    rng.gen_range(0.0..1.0),
                ])
            })
            .collect();
        let cfg = SeparatorConfig::default();
        let mut good = 0;
        for _ in 0..40 {
            if let Some(sep) = unit_time_candidate::<3, 4, _>(&pts, &cfg, &mut rng) {
                let c = split_counts(&pts, &sep, cfg.tol);
                if is_good_point_split(&c, cfg.delta(3)) {
                    good += 1;
                }
            }
        }
        assert!(good >= 10, "3d: only {good}/40 good candidates");
    }

    #[test]
    fn degenerate_identical_points_do_not_panic() {
        let pts = vec![Point::<2>::splat(3.0); 50];
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        // Any output is acceptable (None or a separator that fails to
        // split); the contract is only "no panic, no bogus Some with NaN".
        if let Some(sep) =
            unit_time_candidate::<2, 3, _>(&pts, &SeparatorConfig::default(), &mut rng)
        {
            match sep {
                Separator::Sphere(s) => {
                    assert!(s.center.is_finite() && s.radius.is_finite());
                }
                Separator::Halfspace(h) => {
                    assert!(h.normal.is_finite() && h.offset.is_finite());
                }
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let pts = uniform_square(1000, 8);
        let cfg = SeparatorConfig::default();
        let mut a = ChaCha8Rng::seed_from_u64(9);
        let mut b = ChaCha8Rng::seed_from_u64(9);
        let sa = unit_time_candidate::<2, 3, _>(&pts, &cfg, &mut a);
        let sb = unit_time_candidate::<2, 3, _>(&pts, &cfg, &mut b);
        assert_eq!(format!("{sa:?}"), format!("{sb:?}"));
    }

    #[test]
    fn coordinates_far_from_origin_are_handled() {
        // Box normalization must make this as easy as the unit square.
        let base = uniform_square(2000, 10);
        let pts: Vec<Point<2>> = base
            .iter()
            .map(|p| Point::from([p[0] * 1e6 + 4e9, p[1] * 1e6 - 7e8]))
            .collect();
        let cfg = SeparatorConfig::default();
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let mut good = 0;
        for _ in 0..40 {
            if let Some(sep) = unit_time_candidate::<2, 3, _>(&pts, &cfg, &mut rng) {
                let c = split_counts(&pts, &sep, 1e-3);
                if is_good_point_split(&c, cfg.delta(2)) {
                    good += 1;
                }
            }
        }
        assert!(good >= 10, "shifted data: only {good}/40 good candidates");
    }
}
