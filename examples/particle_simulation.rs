//! Particle simulation: the workload the paper's introduction motivates —
//! repeated nearest-neighbor structure over moving points in 3D.
//!
//! A toy smoothed-particle step: each particle is attracted to the centroid
//! of its k nearest neighbors (flocking/cohesion term) with a short-range
//! repulsion. Every step rebuilds the k-NN graph with the Section 6
//! algorithm; the run reports neighborhood statistics as the cloud
//! organizes itself.
//!
//! ```sh
//! cargo run --release --example particle_simulation
//! ```

use sepdc::core::{parallel_knn, KnnDcConfig, KnnGraph};
use sepdc::prelude::*;
use sepdc::workloads::Workload;

fn main() {
    let n = 8_000;
    let k = 4;
    let steps = 10;
    let dt = 0.15;

    let mut positions = Workload::Clusters.generate::<3>(n, 2024);
    let cfg = KnnDcConfig::new(k).with_seed(5);

    println!(
        "{} particles in 3D, k = {k}, {steps} steps of cohesion/repulsion\n",
        n
    );
    println!(
        "{:>5} {:>12} {:>12} {:>10} {:>10} {:>8}",
        "step", "mean r_k", "max r_k", "edges", "components", "punts"
    );

    for step in 0..steps {
        let out = parallel_knn::<3, 4>(&positions, &cfg);
        let graph = KnnGraph::from_knn(&out.knn);

        // Statistics of the k-neighborhood radii.
        let mut mean_r = 0.0;
        let mut max_r: f64 = 0.0;
        for i in 0..n {
            let r = out.knn.radius(i);
            mean_r += r;
            max_r = max_r.max(r);
        }
        mean_r /= n as f64;

        println!(
            "{:>5} {:>12.4} {:>12.4} {:>10} {:>10} {:>8}",
            step,
            mean_r,
            max_r,
            graph.num_edges(),
            graph.connected_components(),
            out.stats.punts_threshold + out.stats.punts_marching
        );

        // Velocity step: cohesion toward the neighbor centroid, repulsion
        // within half the mean spacing.
        let repel_r = 0.5 * mean_r;
        let mut next = positions.clone();
        for i in 0..n {
            let nbrs = out.knn.neighbors(i);
            if nbrs.is_empty() {
                continue;
            }
            let mut centroid = Point::<3>::origin();
            for nb in nbrs {
                centroid += positions[nb.idx as usize];
            }
            centroid = centroid / nbrs.len() as f64;
            let mut force = centroid - positions[i];
            // Short-range repulsion from the single nearest neighbor.
            let nearest = &positions[nbrs[0].idx as usize];
            let d = positions[i].dist(nearest);
            if d < repel_r && d > 1e-12 {
                force += (positions[i] - *nearest) * (repel_r / d - 1.0);
            }
            next[i] += force * dt;
        }
        positions = next;
    }

    println!(
        "\nthe cloud contracts toward its clusters: mean k-radius falls, \
         the k-NN graph consolidates into a few components."
    );
}
