//! The correction step of the divide-and-conquer recursions.
//!
//! After solving the two sides of a separator recursively, only the points
//! whose subset k-neighborhood ball crosses the separator can have wrong
//! lists (Lemma 6.1). Two correction strategies exist:
//!
//! * **query-structure correction** (`correct_via_query`) — the paper's
//!   Section 5 combine step and the Section 6 *punt* path: build the
//!   Section 3 search structure over the crossing balls and let every point
//!   of the subset query it;
//! * **fast correction** (in [`crate::parallel`]) — march crossing balls
//!   down the opposite partition subtree (Section 6.2) in `O(1)` rounds.
//!
//! Both funnel candidate `(owner, point)` pairs into
//! `SharedLists::merge_candidate`, which is order-independent, so the
//! parallel corrections are deterministic.

use crate::query::{QueryTree, QueryTreeConfig};
use crate::shared::SharedLists;
use rayon::prelude::*;
use sepdc_geom::ball::Ball;
use sepdc_geom::point::Point;
use sepdc_geom::shape::Separator;
use sepdc_geom::soa::SoaPoints;
use sepdc_scan::CostProfile;

/// A crossing ball together with its owning point id.
pub(crate) struct CrossingBall<const D: usize> {
    pub owner: u32,
    pub ball: Ball<D>,
}

/// Sides smaller than this are scanned sequentially — parallel dispatch
/// overhead dwarfs the per-id work below it.
const PAR_SCAN_CUTOFF: usize = 2048;

/// Collect the crossing balls of one side. Owners with unbounded subset
/// balls (side smaller than `k+1`, possible only after degenerate fallback
/// cuts) are returned separately for exhaustive correction.
///
/// Large sides are scanned as parallel chunks with per-chunk buffers; the
/// chunk results are concatenated in chunk order, so the output is
/// identical to the sequential scan regardless of thread count.
pub(crate) fn collect_crossing<const D: usize>(
    points: &[Point<D>],
    lists: &SharedLists,
    side_ids: &[u32],
    sep: &Separator<D>,
) -> (Vec<CrossingBall<D>>, Vec<u32>) {
    let scan = |ids: &[u32]| {
        let mut crossing = Vec::new();
        let mut unbounded = Vec::new();
        for &i in ids {
            let r_sq = lists.radius_sq(i as usize);
            if !r_sq.is_finite() {
                unbounded.push(i);
                continue;
            }
            let ball = Ball::new(points[i as usize], r_sq.sqrt());
            if ball.crosses(sep) {
                crossing.push(CrossingBall { owner: i, ball });
            }
        }
        (crossing, unbounded)
    };
    if side_ids.len() < PAR_SCAN_CUTOFF {
        return scan(side_ids);
    }
    let per_chunk: Vec<(Vec<CrossingBall<D>>, Vec<u32>)> =
        side_ids.par_chunks(PAR_SCAN_CUTOFF).map(scan).collect();
    let mut crossing = Vec::new();
    let mut unbounded = Vec::new();
    for (c, u) in per_chunk {
        crossing.extend(c);
        unbounded.extend(u);
    }
    (crossing, unbounded)
}

/// Exhaustively merge every point of `opposite` into the lists of the
/// `unbounded` owners (and vice versa candidates are handled by the
/// caller's other direction). Rare path; linear in
/// `|unbounded| · |opposite|`. Owners are corrected in parallel when the
/// pair count is large — each owner writes only its own list, and
/// `merge_candidate` is order-independent, so the result is deterministic.
pub(crate) fn correct_unbounded<const D: usize>(
    soa: &SoaPoints<D>,
    lists: &SharedLists,
    unbounded: &[u32],
    opposite: &[u32],
) {
    let one = |&o: &u32| {
        // One blocked distance sweep per owner, then a batched merge (the
        // cached radius is loaded once per batch; `merge_candidate`
        // re-checks under the lock, so the lists are identical to the
        // per-candidate path).
        let po = soa.point(o as usize);
        let mut dists = vec![0.0; opposite.len()];
        soa.dist_sq_gather(&po, opposite, &mut dists);
        lists.merge_batch(o as usize, opposite, &dists, f64::INFINITY);
    };
    if unbounded.len().saturating_mul(opposite.len()) >= PAR_SCAN_CUTOFF && unbounded.len() > 1 {
        unbounded.par_iter().for_each(one);
    } else {
        unbounded.iter().for_each(one);
    }
}

/// Query-structure correction over an explicit crossing-ball set.
///
/// Builds the Section 3 structure on the crossing balls and queries it with
/// every point of the subset; a point strictly inside a crossing ball from
/// the *opposite* side is merged into that ball owner's list.
///
/// Returns the work–depth cost of the build plus the query sweep.
pub(crate) fn correct_via_query<const D: usize, const E: usize>(
    soa: &SoaPoints<D>,
    lists: &SharedLists,
    subset: &[u32],
    crossing: &[CrossingBall<D>],
    qcfg: QueryTreeConfig,
    seed: u64,
) -> CostProfile {
    if crossing.is_empty() || subset.is_empty() {
        return CostProfile::zero();
    }
    let balls: Vec<Ball<D>> = crossing.iter().map(|c| c.ball).collect();
    let tree = QueryTree::build::<E>(&balls, qcfg, seed);
    let height = tree.stats().height as u64;

    // Every subset point queries the structure; merges go through the
    // shared lists (order-independent). Chunks reuse one set of scratch
    // buffers: the leaf cover test and the owner-distance evaluation both
    // run through the blocked SoA kernels.
    let process = |ids: &[u32]| {
        let mut scratch: Vec<f64> = Vec::new();
        let mut hits: Vec<u32> = Vec::new();
        let mut owners: Vec<u32> = Vec::new();
        let mut dists: Vec<f64> = Vec::new();
        for &p_id in ids {
            let p = soa.point(p_id as usize);
            hits.clear();
            tree.covering_into(&p, true, &mut scratch, &mut hits);
            // Which side is this point on? Determined by ownership: a point
            // corrects only balls owned by the *other* side. We recover the
            // side from the crossing metadata at merge time instead of
            // re-classifying against the separator (robust to surface ties).
            owners.clear();
            for &ball_local in &hits {
                let o = crossing[ball_local as usize].owner;
                if o != p_id {
                    owners.push(o);
                }
            }
            if owners.is_empty() {
                continue;
            }
            soa.dist_sq_gather_into(&p, &owners, &mut dists);
            for (&o, &d) in owners.iter().zip(&dists) {
                lists.merge_candidate(o as usize, p_id, d);
            }
        }
    };
    if subset.len() >= PAR_SCAN_CUTOFF {
        subset.par_chunks(PAR_SCAN_CUTOFF).for_each(process);
    } else {
        process(subset);
    }

    // Build cost, then one query round of depth = tree height + leaf scan,
    // executed by all subset points in parallel (unit rounds each).
    tree.build_cost()
        .then(CostProfile::rounds(height + 1, subset.len() as u64))
        .with_punt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn::solve_subset_brute;
    use crate::KnnResult;
    use sepdc_geom::Hyperplane;

    /// Points on a line, split at x = mid; solve sides independently, then
    /// correct and compare against the global answer.
    fn line_fixture(
        n: usize,
        k: usize,
        mid: f64,
    ) -> (Vec<Point<1>>, SharedLists, Vec<u32>, Vec<u32>, Separator<1>) {
        let points: Vec<Point<1>> = (0..n).map(|i| Point::from([i as f64])).collect();
        let sep: Separator<1> = Hyperplane::axis_aligned(0, mid).into();
        let left: Vec<u32> = (0..n as u32).filter(|&i| (i as f64) < mid).collect();
        let right: Vec<u32> = (0..n as u32).filter(|&i| (i as f64) > mid).collect();
        let lists = SharedLists::new(n, k);
        // Solve each side independently (mimicking recursion).
        let mut tmp = KnnResult::new(n, k);
        solve_subset_brute(&points, &left, &mut tmp);
        solve_subset_brute(&points, &right, &mut tmp);
        for i in 0..n {
            lists.set_list(i, tmp.neighbors(i));
        }
        (points, lists, left, right, sep)
    }

    #[test]
    fn collect_crossing_identifies_boundary_balls() {
        let (points, lists, left, _right, sep) = line_fixture(20, 1, 9.5);
        let (crossing, unbounded) = collect_crossing(&points, &lists, &left, &sep);
        assert!(unbounded.is_empty());
        // Only the point at x = 9 has a subset ball (radius 1) crossing
        // x = 9.5.
        assert_eq!(crossing.len(), 1);
        assert_eq!(crossing[0].owner, 9);
    }

    #[test]
    fn query_correction_fixes_boundary_lists() {
        let (points, lists, left, right, sep) = line_fixture(20, 2, 9.5);
        let mut crossing = Vec::new();
        for ids in [&left, &right] {
            let (c, u) = collect_crossing(&points, &lists, ids, &sep);
            assert!(u.is_empty());
            crossing.extend(c);
        }
        let subset: Vec<u32> = (0..20).collect();
        let soa = SoaPoints::from_points(&points);
        correct_via_query::<1, 2>(
            &soa,
            &lists,
            &subset,
            &crossing,
            QueryTreeConfig::default(),
            7,
        );
        let result = lists.into_result();
        let oracle = crate::brute::brute_force_knn(&points, 2);
        result.same_distances(&oracle, 1e-12).unwrap();
    }

    #[test]
    fn unbounded_owners_are_corrected_exhaustively() {
        // Left side has a single point: its subset ball is unbounded.
        let points: Vec<Point<1>> = (0..10).map(|i| Point::from([i as f64])).collect();
        let lists = SharedLists::new(10, 1);
        let left = vec![0u32];
        let right: Vec<u32> = (1..10).collect();
        let mut tmp = KnnResult::new(10, 1);
        solve_subset_brute(&points, &right, &mut tmp);
        for i in 1..10 {
            lists.set_list(i, tmp.neighbors(i));
        }
        let sep: Separator<1> = Hyperplane::axis_aligned(0, 0.5).into();
        let (_, unbounded) = collect_crossing(&points, &lists, &left, &sep);
        assert_eq!(unbounded, vec![0]);
        let soa = SoaPoints::from_points(&points);
        correct_unbounded(&soa, &lists, &unbounded, &right);
        assert_eq!(lists.radius_sq(0), 1.0);
    }

    #[test]
    fn empty_crossing_is_free() {
        let points: Vec<Point<1>> = (0..4).map(|i| Point::from([i as f64])).collect();
        let lists = SharedLists::new(4, 1);
        let soa = SoaPoints::from_points(&points);
        let cost = correct_via_query::<1, 2>(
            &soa,
            &lists,
            &[0, 1, 2, 3],
            &[],
            QueryTreeConfig::default(),
            1,
        );
        assert_eq!(cost, CostProfile::zero());
    }
}
