//! Churn bench for the batch-dynamic [`sepdc_core::ShardedIndex`]: the
//! amortized cost of the logarithmic method under a live
//! insert/delete/query mix, against the only alternative a static
//! structure offers — a full rebuild per mutation.
//!
//! ```sh
//! cargo run --release -p sepdc-bench --bin bench_churn            # full, 100k
//! cargo run --release -p sepdc-bench --bin bench_churn -- --smoke # scaled down
//! cargo run --release -p sepdc-bench --bin bench_churn -- --ci    # smoke + asserts
//! ```
//!
//! The full run builds a sharded index over the PR-1 acceptance workload
//! (UniformCube 2d, n = 100k, k = 4), then:
//!
//! * inserts `n/10` fresh balls at ParGeo-style batch sizes 1 / 16 / 256 /
//!   4096, reporting µs per op and the rebuild-amortization counters;
//! * deletes the same number of ids and reports µs per op;
//! * **asserts** the acceptance bound: amortized singleton insert is ≥ 5x
//!   cheaper than one full `QueryTree` rebuild per op;
//! * replays an identical churn script under 1-thread and multi-thread
//!   pools and asserts the resulting snapshots are **byte-identical**
//!   (rebuild determinism), then serves a post-churn probe batch at
//!   1/2/4/8 threads asserting byte-identical answers (query determinism);
//! * writes `BENCH_churn.json` (override with `SEPDC_BENCH_OUT`) with
//!   `"bench_churn_version": 1`, host provenance, the table, and the
//!   headline metrics as top-level fields.

use sepdc_bench::harness::{host_info, timed, HostInfo, Table};
use sepdc_core::serve::{CoverPredicate, ServeConfig};
use sepdc_core::{
    kdtree_all_knn, save_sharded_index, NeighborhoodSystem, QueryTree, QueryTreeConfig,
    ShardedConfig, ShardedIndex,
};
use sepdc_geom::ball::Ball;
use sepdc_workloads::Workload;

const THREADS: [usize; 4] = [1, 2, 4, 8];
const BATCH_SIZES: [usize; 4] = [1, 16, 256, 4096];

fn pool(t: usize) -> rayon::ThreadPool {
    rayon::ThreadPoolBuilder::new()
        .num_threads(t)
        .build()
        .unwrap()
}

/// Fresh balls to churn in, disjoint seed from the base workload.
fn extra_balls(n: usize, seed: u64) -> Vec<Ball<2>> {
    Workload::UniformCube
        .generate::<2>(n, seed)
        .into_iter()
        .enumerate()
        .map(|(i, c)| Ball::new(c, 0.002 + 0.01 * ((i % 5) as f64)))
        .collect()
}

/// One measured insert sweep: clone the base index, insert `extra` in
/// batches of `batch`, return (seconds, rebuilds delta, rebuilt balls
/// delta).
fn insert_sweep(base: &ShardedIndex<2>, extra: &[Ball<2>], batch: usize) -> (f64, u64, u64) {
    let mut idx = base.clone();
    let before = idx.stats();
    let ((), sec) = timed(|| {
        for chunk in extra.chunks(batch) {
            idx.try_insert_batch::<3>(chunk).unwrap();
        }
    });
    let after = idx.stats();
    (
        sec,
        after.rebuilds - before.rebuilds,
        after.rebuilt_balls - before.rebuilt_balls,
    )
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke" || a == "--ci");
    let ci = std::env::args().any(|a| a == "--ci");
    let scale = if smoke { 25 } else { 1 };
    let n = 100_000 / scale;
    let churn = n / 10;
    let k = 4;
    let staging_cap = 256;

    let pts = Workload::UniformCube.generate::<2>(n, 7);
    let knn = kdtree_all_knn(&pts, k);
    let system = NeighborhoodSystem::from_knn(&pts, &knn);
    let cfg = ShardedConfig {
        staging_cap,
        ..ShardedConfig::default()
    };

    // The static alternative: one full query-tree build, i.e. the price a
    // frozen snapshot pays *per mutation* to stay fresh.
    let (_tree, full_build_s) =
        timed(|| QueryTree::build::<3>(system.balls(), QueryTreeConfig::default(), 3));
    let (base, shard_build_s) =
        timed(|| ShardedIndex::from_balls::<3>(system.balls(), cfg, 3).unwrap());

    let extra = extra_balls(churn, 13);
    let mut table = Table::new(
        "BENCH churn (logarithmic-method amortization)",
        &[
            "batch",
            "insert µs/op",
            "rebuilds",
            "balls/insert",
            "delete µs/op",
        ],
    );

    let mut singleton_insert_us = 0.0;
    for &bs in &BATCH_SIZES {
        let (sec, rebuilds, rebuilt) = insert_sweep(&base, &extra, bs);
        let us_per_op = sec * 1e6 / churn as f64;
        if bs == 1 {
            singleton_insert_us = us_per_op;
        }
        // Delete sweep at the same batch size: churn the freshly inserted
        // ids back out of a churned clone.
        let mut idx = base.clone();
        let ids = idx.try_insert_batch::<3>(&extra).unwrap();
        let (_, del_sec) = timed(|| {
            for chunk in ids.chunks(bs) {
                idx.delete_batch(chunk);
            }
        });
        table.row(
            bs.to_string(),
            vec![
                format!("{us_per_op:.2}"),
                rebuilds.to_string(),
                format!("{:.1}", rebuilt as f64 / churn as f64),
                format!("{:.2}", del_sec * 1e6 / churn as f64),
            ],
        );
    }

    // Acceptance: amortized insert beats rebuild-per-op by >= 5x. (The
    // logarithmic method gives O(log(n/B)) amortized rebuild work per
    // insert vs O(n) for a full rebuild, so the margin is enormous; 5x is
    // the floor the issue pins.)
    let full_build_us = full_build_s * 1e6;
    let ratio = full_build_us / singleton_insert_us.max(1e-9);
    assert!(
        ratio >= 5.0,
        "amortized insert ({singleton_insert_us:.2} µs) must be >= 5x cheaper than a \
         full rebuild per op ({full_build_us:.0} µs); got {ratio:.1}x"
    );

    // Determinism: the same churn script must leave byte-identical
    // snapshots at every thread count (rebuild seeds are a pure function
    // of the operation sequence), and post-churn answers must be
    // byte-identical across serving pools.
    let script = |threads: usize| {
        pool(threads).install(|| {
            let mut idx = ShardedIndex::from_balls::<3>(system.balls(), cfg, 3).unwrap();
            idx.try_insert_batch::<3>(&extra).unwrap();
            let dels: Vec<u64> = (0..churn as u64 / 2).map(|i| i * 2).collect();
            idx.delete_batch(&dels);
            idx
        })
    };
    let churned = script(1);
    let snap1 = save_sharded_index(&churned);
    for t in [2, 8] {
        assert_eq!(
            save_sharded_index(&script(t)),
            snap1,
            "churned snapshot must be byte-identical at {t} threads"
        );
    }
    let probes = Workload::Clusters.generate::<2>(4096.min(n), 11);
    let serve_cfg = ServeConfig::default();
    let baseline = pool(1).install(|| {
        churned
            .try_covering_batch(&probes, CoverPredicate::Closed, &serve_cfg)
            .unwrap()
    });
    let mut query_rates: Vec<f64> = Vec::new();
    for &t in &THREADS {
        let p = pool(t);
        let (got, sec) = p.install(|| {
            timed(|| {
                churned
                    .try_covering_batch(&probes, CoverPredicate::Closed, &serve_cfg)
                    .unwrap()
            })
        });
        assert_eq!(got, baseline, "covering batch must be identical at {t}T");
        query_rates.push(probes.len() as f64 / sec.max(1e-12));
    }

    let host = host_info();
    host.warn_if_single_core();
    table.note(host.describe());
    table.note(format!(
        "workload: UniformCube 2d n={n} k={k}, staging_cap={staging_cap}, churn={churn} \
         inserts + deletes per batch-size row"
    ));
    table.note(format!(
        "full rebuild {:.1} ms vs amortized singleton insert {singleton_insert_us:.2} µs \
         => {ratio:.0}x cheaper per op (acceptance floor 5x)",
        full_build_s * 1e3,
    ));
    table.note(format!(
        "initial sharded build {:.1} ms; churned snapshot byte-identical at 1/2/8 threads",
        shard_build_s * 1e3,
    ));
    table.note(format!(
        "post-churn covering batch ({} probes) byte-identical at 1/2/4/8T; \
         probes/s: {}",
        probes.len(),
        query_rates
            .iter()
            .zip(THREADS)
            .map(|(r, t)| format!("{t}T={r:.0}"))
            .collect::<Vec<_>>()
            .join(" "),
    ));
    if smoke {
        table.note(format!(
            "--{} run: n scaled down {scale}x (CI sanity only)",
            if ci { "ci" } else { "smoke" }
        ));
    }
    table.print();

    let out_path =
        std::env::var("SEPDC_BENCH_OUT").unwrap_or_else(|_| "BENCH_churn.json".to_string());
    std::fs::write(
        &out_path,
        bench_json(
            &table,
            &host,
            &Headline {
                n,
                churn,
                staging_cap,
                full_build_ms: full_build_s * 1e3,
                sharded_build_ms: shard_build_s * 1e3,
                amortized_insert_us: singleton_insert_us,
                rebuild_ratio: ratio,
            },
        ),
    )
    .expect("write bench json");
    eprintln!("[wrote {out_path}]");
}

/// Headline metrics surfaced as top-level artifact fields (the CI schema
/// check reads these).
struct Headline {
    n: usize,
    churn: usize,
    staging_cap: usize,
    full_build_ms: f64,
    sharded_build_ms: f64,
    amortized_insert_us: f64,
    rebuild_ratio: f64,
}

fn bench_json(table: &Table, host: &HostInfo, h: &Headline) -> String {
    let mut s = String::from("{\n\"bench_churn_version\": 1,\n\"host\": ");
    s.push_str(&host.to_json());
    s.push_str(&format!(
        ",\n\"n\": {},\n\"churn_ops\": {},\n\"staging_cap\": {},\n\
         \"full_build_ms\": {:.3},\n\"sharded_build_ms\": {:.3},\n\
         \"amortized_insert_us\": {:.3},\n\"rebuild_ratio\": {:.1},\n",
        h.n,
        h.churn,
        h.staging_cap,
        h.full_build_ms,
        h.sharded_build_ms,
        h.amortized_insert_us,
        h.rebuild_ratio
    ));
    s.push_str("\"table\":\n");
    s.push_str(table.to_json().trim_end());
    s.push_str("\n}\n");
    s
}
