//! Criterion bench: the Fast Correction marching step (Section 6.2) —
//! reachable-leaf computation for crossing balls against a partition tree.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sepdc_core::{march_balls, parallel_knn, KnnDcConfig, NeighborhoodSystem};
use sepdc_geom::ball::Ball;
use sepdc_workloads::Workload;
use std::hint::black_box;

fn bench_marching(c: &mut Criterion) {
    let mut group = c.benchmark_group("march_balls");
    group.sample_size(10);
    let cfg = KnnDcConfig::new(1).with_seed(7);
    for e in [14u32, 16] {
        let n = 1usize << e;
        let pts = Workload::UniformCube.generate::<2>(n, 5);
        let out = parallel_knn::<2, 3>(&pts, &cfg);
        let sys = NeighborhoodSystem::from_knn(&pts, &out.knn);
        // March a √n-size batch of the largest balls (the crossing-set
        // scale the algorithm actually sees).
        let mut balls: Vec<Ball<2>> = sys.balls().to_vec();
        balls.sort_by(|a, b| b.radius.partial_cmp(&a.radius).unwrap());
        let batch = &balls[..(n as f64).sqrt() as usize];
        group.bench_with_input(BenchmarkId::from_parameter(n), &(), |b, _| {
            b.iter(|| black_box(march_balls(&out.tree, batch, usize::MAX)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_marching);
criterion_main!(benches);
