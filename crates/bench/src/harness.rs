//! Small table/series printing and fitting utilities shared by all
//! experiments.

/// One printed row: label plus formatted cells.
#[derive(Clone, Debug)]
pub struct Row {
    /// Row label (first column).
    pub label: String,
    /// Remaining cells, already formatted.
    pub cells: Vec<String>,
}

/// A fixed-column table that prints aligned and can serialize to JSON.
#[derive(Clone, Debug)]
pub struct Table {
    /// Table title (printed as a heading).
    pub title: String,
    /// Column headers, including the label column.
    pub headers: Vec<String>,
    /// Rows.
    pub rows: Vec<Row>,
    /// Free-form notes printed under the table.
    pub notes: Vec<String>,
}

impl Table {
    /// New table with the given title and headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row; `cells` must match `headers.len() - 1`.
    pub fn row(&mut self, label: impl Into<String>, cells: Vec<String>) {
        let label = label.into();
        assert_eq!(
            cells.len() + 1,
            self.headers.len(),
            "row '{label}' has {} cells for {} headers",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(Row { label, cells });
    }

    /// Append a note line.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Print aligned to stdout. When the environment variable
    /// `SEPDC_EXP_JSON` names a directory, a machine-readable JSON copy of
    /// the table is also written there (file name slugged from the title).
    pub fn print(&self) {
        if let Ok(dir) = std::env::var("SEPDC_EXP_JSON") {
            if let Err(e) = self.write_json(&dir) {
                eprintln!("warning: could not write JSON table: {e}");
            }
        }
        println!("\n### {}\n", self.title);
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            widths[0] = widths[0].max(r.label.len());
            for (i, c) in r.cells.iter().enumerate() {
                widths[i + 1] = widths[i + 1].max(c.len());
            }
        }
        let line = |cells: Vec<String>| {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i == 0 {
                    s.push_str(&format!("{:<w$}  ", c, w = widths[0]));
                } else {
                    s.push_str(&format!("{:>w$}  ", c, w = widths[i]));
                }
            }
            s
        };
        println!("{}", line(self.headers.clone()));
        println!(
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        );
        for r in &self.rows {
            let mut cells = vec![r.label.clone()];
            cells.extend(r.cells.iter().cloned());
            println!("{}", line(cells));
        }
        for n in &self.notes {
            println!("  • {n}");
        }
    }

    /// Serialize to `<dir>/<slug>.json`.
    pub fn write_json(&self, dir: &str) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let slug: String = self
            .title
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() {
                    c.to_ascii_lowercase()
                } else {
                    '_'
                }
            })
            .collect::<String>()
            .split('_')
            .filter(|s| !s.is_empty())
            .collect::<Vec<_>>()
            .join("_");
        let path = std::path::Path::new(dir).join(format!("{slug}.json"));
        std::fs::write(path, self.to_json())
    }

    /// Hand-rolled pretty JSON (the build is offline; no serde).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!("  \"title\": {},\n", json_str(&self.title)));
        s.push_str(&format!(
            "  \"headers\": {},\n",
            json_str_array(&self.headers)
        ));
        s.push_str("  \"rows\": [\n");
        for (i, r) in self.rows.iter().enumerate() {
            s.push_str(&format!(
                "    {{ \"label\": {}, \"cells\": {} }}{}\n",
                json_str(&r.label),
                json_str_array(&r.cells),
                if i + 1 < self.rows.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n");
        s.push_str(&format!("  \"notes\": {}\n", json_str_array(&self.notes)));
        s.push_str("}\n");
        s
    }
}

/// Escape and quote one JSON string.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_str_array(items: &[String]) -> String {
    let inner: Vec<String> = items.iter().map(|s| json_str(s)).collect();
    format!("[{}]", inner.join(", "))
}

/// Least-squares fit of `y = c · x^e` via log-log regression; returns the
/// exponent `e`, or `None` when fewer than two strictly positive points
/// exist (e.g. a series that is identically zero).
pub fn fit_power_law(xs: &[f64], ys: &[f64]) -> Option<f64> {
    assert_eq!(xs.len(), ys.len());
    let pts: Vec<(f64, f64)> = xs
        .iter()
        .zip(ys)
        .filter(|(&x, &y)| x > 0.0 && y > 0.0)
        .map(|(&x, &y)| (x.ln(), y.ln()))
        .collect();
    if pts.len() < 2 {
        return None;
    }
    let n = pts.len() as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    Some((n * sxy - sx * sy) / (n * sxx - sx * sx))
}

/// Format a [`fit_power_law`] result for a table note.
pub fn fmt_exponent(e: Option<f64>) -> String {
    match e {
        Some(v) => format!("n^{v:.2}"),
        None => "~0 (degenerate series)".to_string(),
    }
}

/// Wall-clock one closure, returning (result, seconds).
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = std::time::Instant::now();
    let out = f();
    (out, t0.elapsed().as_secs_f64())
}

/// Host parallelism snapshot stamped into every `BENCH_*.json` artifact:
/// without the core count, thread-scaling columns measured on a
/// single-core box read as mysterious slowdowns instead of the expected
/// oversubscription.
#[derive(Clone, Copy, Debug)]
pub struct HostInfo {
    /// `std::thread::available_parallelism()` (1 when unknown).
    pub cores: usize,
    /// Size of the ambient rayon pool at snapshot time.
    pub rayon_threads: usize,
}

/// Snapshot the current host/pool parallelism.
pub fn host_info() -> HostInfo {
    HostInfo {
        cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
        rayon_threads: rayon::current_num_threads(),
    }
}

impl HostInfo {
    /// `true` when the host exposes a single hardware thread: any
    /// multi-thread column then measures oversubscription, not speedup.
    pub fn single_core(&self) -> bool {
        self.cores <= 1
    }

    /// JSON object for embedding under a `"host"` key.
    pub fn to_json(&self) -> String {
        format!(
            "{{ \"cores\": {}, \"rayon_threads\": {}, \"single_core\": {} }}",
            self.cores,
            self.rayon_threads,
            self.single_core()
        )
    }

    /// One-line description for table notes.
    pub fn describe(&self) -> String {
        format!(
            "host: {} core(s), rayon pool {} thread(s){}",
            self.cores,
            self.rayon_threads,
            if self.single_core() {
                " — SINGLE-CORE HOST: thread columns measure oversubscription, not speedup"
            } else {
                ""
            }
        )
    }

    /// Print the explicit single-core warning to stderr when applicable.
    pub fn warn_if_single_core(&self) {
        if self.single_core() {
            eprintln!(
                "warning: single-core host — thread columns measure oversubscription, not speedup"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_law_recovers_exponent() {
        let xs: Vec<f64> = (1..=6).map(|i| (1 << i) as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x.powf(0.5)).collect();
        assert!((fit_power_law(&xs, &ys).unwrap() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn power_law_linear() {
        let xs = [1.0, 2.0, 4.0, 8.0];
        let ys = [2.0, 4.0, 8.0, 16.0];
        assert!((fit_power_law(&xs, &ys).unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn power_law_degenerate_is_none() {
        assert!(fit_power_law(&[1.0, 2.0], &[0.0, 0.0]).is_none());
    }

    #[test]
    fn table_shape_enforced() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row("x", vec!["1".into()]);
        assert_eq!(t.rows.len(), 1);
    }

    #[test]
    #[should_panic(expected = "cells")]
    fn table_rejects_wrong_arity() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row("x", vec!["1".into(), "2".into()]);
    }
}
