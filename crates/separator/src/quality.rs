//! Separator quality: split counts and intersection numbers (Section 2.1).

use rayon::prelude::*;
use sepdc_geom::ball::Ball;
use sepdc_geom::point::Point;
use sepdc_geom::shape::{Separator, Side};

/// How a separator partitions a point set.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SplitCounts {
    /// Points strictly inside.
    pub interior: usize,
    /// Points on the surface (within tolerance) — routed to the interior
    /// subtree by the paper's convention.
    pub surface: usize,
    /// Points strictly outside.
    pub exterior: usize,
}

impl SplitCounts {
    /// Total number of points counted.
    pub fn total(&self) -> usize {
        self.interior + self.surface + self.exterior
    }

    /// Size of the left (interior ∪ surface) part.
    pub fn left(&self) -> usize {
        self.interior + self.surface
    }

    /// Size of the right (exterior) part.
    pub fn right(&self) -> usize {
        self.exterior
    }

    /// The achieved split ratio `max(left, right) / total`, or 1.0 for an
    /// empty input.
    pub fn ratio(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            return 1.0;
        }
        self.left().max(self.right()) as f64 / t as f64
    }
}

/// Classify every point against `sep` (parallel for large inputs).
pub fn split_counts<const D: usize>(
    points: &[Point<D>],
    sep: &Separator<D>,
    tol: f64,
) -> SplitCounts {
    let fold = |acc: SplitCounts, side: Side| {
        let mut acc = acc;
        match side {
            Side::Interior => acc.interior += 1,
            Side::Surface => acc.surface += 1,
            Side::Exterior => acc.exterior += 1,
        }
        acc
    };
    let merge = |a: SplitCounts, b: SplitCounts| SplitCounts {
        interior: a.interior + b.interior,
        surface: a.surface + b.surface,
        exterior: a.exterior + b.exterior,
    };
    if points.len() < 1 << 14 {
        points
            .iter()
            .map(|p| sep.side_with_tol(p, tol))
            .fold(SplitCounts::default(), fold)
    } else {
        points
            .par_iter()
            .map(|p| sep.side_with_tol(p, tol))
            .fold(SplitCounts::default, fold)
            .reduce(SplitCounts::default, merge)
    }
}

/// The paper's acceptance predicate: the separator `δ`-splits the points —
/// both sides are at most `δ · n` — and neither side is empty.
pub fn is_good_point_split(counts: &SplitCounts, delta: f64) -> bool {
    let n = counts.total();
    if n < 2 {
        return false;
    }
    let cap = (delta * n as f64).ceil() as usize;
    counts.left() <= cap && counts.right() <= cap && counts.left() > 0 && counts.right() > 0
}

/// The default split-ratio bound `δ = (d+1)/(d+2) + ε` of the paper.
pub fn delta_default(d: usize, epsilon: f64) -> f64 {
    (d as f64 + 1.0) / (d as f64 + 2.0) + epsilon
}

/// Intersection number `ι_B(S)`: how many balls cross the separator
/// surface (Section 2.1). Parallel for large systems.
pub fn intersection_number<const D: usize>(balls: &[Ball<D>], sep: &Separator<D>) -> usize {
    if balls.len() < 1 << 14 {
        balls.iter().filter(|b| b.crosses(sep)).count()
    } else {
        balls.par_iter().filter(|b| b.crosses(sep)).count()
    }
}

/// Indices of the balls crossing the separator, in input order.
pub fn crossing_indices<const D: usize>(balls: &[Ball<D>], sep: &Separator<D>) -> Vec<usize> {
    balls
        .iter()
        .enumerate()
        .filter(|(_, b)| b.crosses(sep))
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sepdc_geom::sphere::Sphere;

    fn line_points(n: usize) -> Vec<Point<2>> {
        (0..n).map(|i| Point::from([i as f64, 0.0])).collect()
    }

    #[test]
    fn split_counts_partition_everything() {
        let pts = line_points(100);
        let sep: Separator<2> = Sphere::new(Point::from([10.0, 0.0]), 5.5).into();
        let c = split_counts(&pts, &sep, 1e-9);
        assert_eq!(c.total(), 100);
        // Points 5..=15 inside-ish: indices with |i - 10| < 5.5 → 5..=15.
        assert_eq!(c.interior + c.surface, 11);
        assert_eq!(c.exterior, 89);
    }

    #[test]
    fn surface_points_counted_separately() {
        let pts = vec![
            Point::<2>::from([1.0, 0.0]),
            Point::from([0.0, 0.0]),
            Point::from([2.0, 0.0]),
        ];
        let sep: Separator<2> = Sphere::new(Point::origin(), 1.0).into();
        let c = split_counts(&pts, &sep, 1e-9);
        assert_eq!(c.surface, 1);
        assert_eq!(c.interior, 1);
        assert_eq!(c.exterior, 1);
        assert_eq!(c.left(), 2);
    }

    #[test]
    fn ratio_of_balanced_split() {
        let c = SplitCounts {
            interior: 50,
            surface: 0,
            exterior: 50,
        };
        assert!((c.ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn good_split_accepts_and_rejects() {
        let balanced = SplitCounts {
            interior: 40,
            surface: 0,
            exterior: 60,
        };
        assert!(is_good_point_split(&balanced, 0.75));
        let skewed = SplitCounts {
            interior: 95,
            surface: 0,
            exterior: 5,
        };
        assert!(!is_good_point_split(&skewed, 0.75));
        let empty_side = SplitCounts {
            interior: 100,
            surface: 0,
            exterior: 0,
        };
        assert!(!is_good_point_split(&empty_side, 1.0));
    }

    #[test]
    fn good_split_requires_two_points() {
        let c = SplitCounts {
            interior: 1,
            surface: 0,
            exterior: 0,
        };
        assert!(!is_good_point_split(&c, 0.9));
    }

    #[test]
    fn delta_default_formula() {
        assert!((delta_default(2, 0.0) - 0.75).abs() < 1e-12);
        assert!((delta_default(3, 0.05) - 0.85).abs() < 1e-12);
    }

    #[test]
    fn intersection_number_counts_crossers() {
        let sep: Separator<2> = Sphere::new(Point::origin(), 10.0).into();
        let balls = vec![
            Ball::new(Point::from([0.0, 0.0]), 1.0),  // inside
            Ball::new(Point::from([10.0, 0.0]), 1.0), // crossing
            Ball::new(Point::from([20.0, 0.0]), 1.0), // outside
            Ball::new(Point::from([9.5, 0.0]), 1.0),  // crossing
        ];
        assert_eq!(intersection_number(&balls, &sep), 2);
        assert_eq!(crossing_indices(&balls, &sep), vec![1, 3]);
    }

    #[test]
    fn parallel_path_matches_serial() {
        let n = 40_000;
        let pts: Vec<Point<2>> = (0..n)
            .map(|i| Point::from([(i % 200) as f64, (i / 200) as f64]))
            .collect();
        let sep: Separator<2> = Sphere::new(Point::from([100.0, 100.0]), 60.0).into();
        let par = split_counts(&pts, &sep, 1e-9);
        let ser = pts.iter().map(|p| sep.side_with_tol(p, 1e-9)).fold(
            SplitCounts::default(),
            |mut acc, s| {
                match s {
                    Side::Interior => acc.interior += 1,
                    Side::Surface => acc.surface += 1,
                    Side::Exterior => acc.exterior += 1,
                }
                acc
            },
        );
        assert_eq!(par, ser);
    }
}
