//! All-pairs k-NN — the correctness oracle.

use crate::error::{validate_k, validate_points, SepdcError};
use crate::knn::{KnnResult, Neighbor};
use rayon::prelude::*;
use sepdc_geom::point::Point;
use sepdc_geom::soa::SoaPoints;

/// Stack tile for the blocked scan: distances for `TILE` candidates are
/// materialized at a time so the inner loop auto-vectorizes while the
/// buffer never leaves the stack.
const TILE: usize = 64;

/// Exact all-k-NN by scanning all pairs. `O(n² k)` work; parallel over
/// points. This is the oracle every other algorithm is tested against.
///
/// # Panics
/// Panics on `k = 0` or non-finite coordinates; use
/// [`try_brute_force_knn`] to handle those as typed errors instead.
pub fn brute_force_knn<const D: usize>(points: &[Point<D>], k: usize) -> KnnResult {
    try_brute_force_knn(points, k).unwrap_or_else(|e| panic!("brute_force_knn: {e}"))
}

/// Total variant of [`brute_force_knn`]: rejects `k = 0` and non-finite
/// coordinates with a typed [`SepdcError`] instead of panicking.
pub fn try_brute_force_knn<const D: usize>(
    points: &[Point<D>],
    k: usize,
) -> Result<KnnResult, SepdcError> {
    validate_k(k)?;
    validate_points(points)?;
    let n = points.len();
    let soa = SoaPoints::from_points(points);
    let lists: Vec<Vec<Neighbor>> = points
        .par_iter()
        .enumerate()
        .map(|(i, pi)| {
            let mut list: Vec<Neighbor> = Vec::with_capacity(k + 1);
            let mut buf = [0.0f64; TILE];
            let mut base = 0;
            while base < n {
                let m = (n - base).min(TILE);
                let dists = &mut buf[..m];
                soa.dist_sq_range(pi, base, dists);
                for (off, &d) in dists.iter().enumerate() {
                    let j = (base + off) as u32;
                    if i as u32 == j {
                        continue;
                    }
                    if list.len() == k {
                        let tail = list[k - 1];
                        if d > tail.dist_sq || (d == tail.dist_sq && j >= tail.idx) {
                            continue;
                        }
                    }
                    let pos = list
                        .iter()
                        .position(|n| d < n.dist_sq || (d == n.dist_sq && j < n.idx))
                        .unwrap_or(list.len());
                    list.insert(pos, Neighbor { idx: j, dist_sq: d });
                    list.truncate(k);
                }
                base += m;
            }
            list
        })
        .collect();
    let mut result = KnnResult::new(n, k);
    for (i, l) in lists.into_iter().enumerate() {
        result.set_list(i, &l);
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knn_on_unit_square_corners() {
        let pts = vec![
            Point::<2>::from([0.0, 0.0]),
            Point::from([1.0, 0.0]),
            Point::from([0.0, 1.0]),
            Point::from([1.0, 1.0]),
        ];
        let r = brute_force_knn(&pts, 2);
        r.check_invariants().unwrap();
        // Every corner's 2 nearest are the adjacent corners (d²=1), not the
        // diagonal (d²=2).
        for i in 0..4 {
            assert_eq!(r.neighbors(i).len(), 2);
            for n in r.neighbors(i) {
                assert!((n.dist_sq - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn k_larger_than_n_minus_one() {
        let pts = vec![Point::<2>::origin(), Point::from([1.0, 0.0])];
        let r = brute_force_knn(&pts, 5);
        assert_eq!(r.neighbors(0).len(), 1);
        assert_eq!(r.radius_sq(0), f64::INFINITY);
    }

    #[test]
    fn duplicate_points_are_distinct_neighbors() {
        let pts = vec![Point::<2>::origin(); 3];
        let r = brute_force_knn(&pts, 2);
        for i in 0..3 {
            assert_eq!(r.neighbors(i).len(), 2);
            for n in r.neighbors(i) {
                assert_eq!(n.dist_sq, 0.0);
                assert_ne!(n.idx as usize, i);
            }
        }
    }

    #[test]
    fn single_point_has_no_neighbors() {
        let pts = vec![Point::<3>::origin()];
        let r = brute_force_knn(&pts, 1);
        assert!(r.neighbors(0).is_empty());
    }

    #[test]
    fn matches_hand_computed_line() {
        let pts: Vec<Point<1>> = [0.0, 1.0, 3.0, 6.0]
            .iter()
            .map(|&x| Point::from([x]))
            .collect();
        let r = brute_force_knn(&pts, 1);
        assert_eq!(r.neighbors(0)[0].idx, 1);
        assert_eq!(r.neighbors(1)[0].idx, 0);
        assert_eq!(r.neighbors(2)[0].idx, 1);
        assert_eq!(r.neighbors(3)[0].idx, 2);
    }
}
