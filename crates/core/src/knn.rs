//! k-nearest-neighbor result representation and merge machinery.
//!
//! Every all-k-NN algorithm in this crate produces a [`KnnResult`]: for each
//! input point, the `k` nearest other points in ascending distance order.
//! The divide-and-conquer algorithms build these lists relative to a subset
//! first and then *correct* them by merging candidates from the other side
//! of a separator — [`KnnResult::merge_candidate`] is that correction step.

use sepdc_geom::point::Point;

/// One neighbor: index into the input point array plus squared distance.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Neighbor {
    /// Index of the neighbor point.
    pub idx: u32,
    /// Squared Euclidean distance to it.
    pub dist_sq: f64,
}

/// Per-point k-nearest lists, stored as one flat row-major `n × k` buffer.
///
/// Lists are kept sorted ascending by `dist_sq` (ties broken by index, so
/// results are deterministic). A list may be shorter than `k` only when the
/// point's subset had fewer than `k + 1` points — the finished algorithms
/// always return full lists for `n > k`. The flat layout means one
/// allocation for the whole result and cache-line-contiguous rows.
#[derive(Clone, Debug)]
pub struct KnnResult {
    k: usize,
    lens: Vec<u32>,
    entries: Vec<Neighbor>,
}

impl KnnResult {
    /// Empty result for `n` points.
    pub fn new(n: usize, k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        KnnResult {
            k,
            lens: vec![0; n],
            entries: vec![
                Neighbor {
                    idx: 0,
                    dist_sq: 0.0
                };
                n * k
            ],
        }
    }

    /// Assemble from an already-filled flat buffer (row-major `n × k`,
    /// row `i` holding `lens[i]` valid entries).
    pub(crate) fn from_flat_parts(k: usize, lens: Vec<u32>, entries: Vec<Neighbor>) -> Self {
        assert!(k > 0, "k must be positive");
        assert_eq!(entries.len(), lens.len() * k);
        KnnResult { k, lens, entries }
    }

    /// The `k` this result was built for.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.lens.len()
    }

    /// `true` when there are no points.
    pub fn is_empty(&self) -> bool {
        self.lens.is_empty()
    }

    /// The neighbor list of point `i` (ascending distance).
    pub fn neighbors(&self, i: usize) -> &[Neighbor] {
        let start = i * self.k;
        &self.entries[start..start + self.lens[i] as usize]
    }

    /// Squared radius of the k-neighborhood ball of point `i`: the distance
    /// to its k-th nearest neighbor, or `f64::INFINITY` when fewer than `k`
    /// neighbors are known (the ball is unbounded in the paper's sense).
    pub fn radius_sq(&self, i: usize) -> f64 {
        if (self.lens[i] as usize) < self.k {
            f64::INFINITY
        } else {
            self.entries[i * self.k + self.k - 1].dist_sq
        }
    }

    /// Radius (not squared) of the k-neighborhood ball of point `i`.
    pub fn radius(&self, i: usize) -> f64 {
        self.radius_sq(i).sqrt()
    }

    /// Offer `(j, dist_sq)` as a candidate neighbor of `i`. Keeps the list
    /// sorted, capped at `k`, deduplicated by index. Returns `true` when
    /// the candidate was inserted.
    ///
    /// `O(k)` per call — `k` is a small constant throughout the paper.
    pub fn merge_candidate(&mut self, i: usize, j: u32, dist_sq: f64) -> bool {
        debug_assert_ne!(i as u32, j, "a point is not its own neighbor");
        let start = i * self.k;
        let row = &mut self.entries[start..start + self.k];
        match merge_into_row(row, self.lens[i] as usize, j, dist_sq) {
            Some(new_len) => {
                self.lens[i] = new_len as u32;
                true
            }
            None => false,
        }
    }

    /// Replace the list of point `i` wholesale (used by leaf solvers);
    /// truncates to `k`.
    pub(crate) fn set_list(&mut self, i: usize, list: &[Neighbor]) {
        let m = list.len().min(self.k);
        let start = i * self.k;
        self.entries[start..start + m].copy_from_slice(&list[..m]);
        self.lens[i] = m as u32;
    }

    /// Distance-profile equality with `other` under tolerance `tol`:
    /// the sorted distance sequences agree per point. Index-insensitive,
    /// which is the right equality under ties (two valid k-NN answers may
    /// pick different equidistant neighbors).
    pub fn same_distances(&self, other: &KnnResult, tol: f64) -> Result<(), String> {
        if self.len() != other.len() {
            return Err(format!(
                "length mismatch: {} vs {}",
                self.len(),
                other.len()
            ));
        }
        if self.k != other.k {
            return Err(format!("k mismatch: {} vs {}", self.k, other.k));
        }
        for i in 0..self.len() {
            let a = self.neighbors(i);
            let b = other.neighbors(i);
            if a.len() != b.len() {
                return Err(format!(
                    "point {i}: list lengths {} vs {}",
                    a.len(),
                    b.len()
                ));
            }
            for (r, (na, nb)) in a.iter().zip(b).enumerate() {
                if (na.dist_sq - nb.dist_sq).abs() > tol {
                    return Err(format!(
                        "point {i} rank {r}: dist_sq {} vs {}",
                        na.dist_sq, nb.dist_sq
                    ));
                }
            }
        }
        Ok(())
    }

    /// Measure this (possibly ε-approximate) result against an `exact`
    /// reference, producing the per-run error certificate of DESIGN.md §17.
    ///
    /// Errors are measured — never assumed from the ε knob: rank `r` of
    /// point `i` compares this result's distance `d̃` against the exact
    /// `d` as `√(d̃/d) − 1` (the paper's radii are distances, not squared
    /// distances, so the `(1+ε)` guarantee lives on the square root).
    /// An approximate list may also come up *short* when ε-skipping
    /// starves a list below `k`; short ranks are counted, not compared.
    ///
    /// # Panics
    /// Panics when the two results have different `n` or `k` — comparing
    /// unrelated runs is a caller bug, not a measurable error.
    pub fn error_certificate(&self, exact: &KnnResult) -> ErrorCertificate {
        assert_eq!(self.len(), exact.len(), "point-count mismatch");
        assert_eq!(self.k, exact.k, "k mismatch");
        let mut cert = ErrorCertificate::default();
        for i in 0..self.len() {
            let approx = self.neighbors(i);
            let ex = exact.neighbors(i);
            if approx.len() < ex.len() {
                cert.short_ranks += (ex.len() - approx.len()) as u64;
            }
            for (a, e) in approx.iter().zip(ex) {
                cert.compared_entries += 1;
                if a.dist_sq.to_bits() != e.dist_sq.to_bits() || a.idx != e.idx {
                    cert.mismatched_entries += 1;
                }
                // Relative error on the distance (√ of the squared ratio).
                // d̃ ≥ d rank-by-rank (approximation only drops candidates,
                // it never invents closer ones), so the clamp to 0 only
                // absorbs tie permutations.
                let rel = if e.dist_sq == 0.0 {
                    if a.dist_sq == 0.0 {
                        0.0
                    } else {
                        f64::INFINITY
                    }
                } else {
                    ((a.dist_sq / e.dist_sq).sqrt() - 1.0).max(0.0)
                };
                cert.max_rel_error = cert.max_rel_error.max(rel);
                cert.sum_rel_error += rel;
            }
        }
        cert
    }

    /// Internal invariants: sorted, deduplicated, no self-loops, capped.
    pub fn check_invariants(&self) -> Result<(), String> {
        for i in 0..self.len() {
            let l = self.neighbors(i);
            if l.len() > self.k {
                return Err(format!("point {i}: list longer than k"));
            }
            for w in l.windows(2) {
                let ord_ok = w[0].dist_sq < w[1].dist_sq
                    || (w[0].dist_sq == w[1].dist_sq && w[0].idx < w[1].idx);
                if !ord_ok {
                    return Err(format!("point {i}: list not strictly ordered"));
                }
            }
            if l.iter().any(|n| n.idx as usize == i) {
                return Err(format!("point {i}: self-loop"));
            }
        }
        Ok(())
    }
}

/// Measured (1+ε) error certificate: an approximate run compared rank by
/// rank against an exact reference. See [`KnnResult::error_certificate`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ErrorCertificate {
    /// Largest observed relative *distance* error `√(d̃/d) − 1` over all
    /// compared ranks. A valid `(1+ε)` run keeps this `≤ ε`.
    pub max_rel_error: f64,
    /// Sum of the relative errors (divide by `compared_entries` for the
    /// mean; kept as a sum so certificates merge by addition).
    pub sum_rel_error: f64,
    /// Ranks present in both results and compared.
    pub compared_entries: u64,
    /// Compared ranks whose `(idx, dist_sq)` differ from the exact answer
    /// (bit-level — includes harmless tie permutations).
    pub mismatched_entries: u64,
    /// Ranks the approximate result is missing entirely (its list came up
    /// shorter than the exact one).
    pub short_ranks: u64,
}

impl ErrorCertificate {
    /// Mean relative error over the compared ranks (0 when none).
    pub fn mean_rel_error(&self) -> f64 {
        if self.compared_entries == 0 {
            0.0
        } else {
            self.sum_rel_error / self.compared_entries as f64
        }
    }

    /// `true` when every observed error is within the `(1+ε)` contract:
    /// `max_rel_error ≤ ε` and no list came up short.
    pub fn within(&self, epsilon: f64) -> bool {
        self.short_ranks == 0 && self.max_rel_error <= epsilon
    }

    /// Counter rows for a [`RunReport`](crate::report::RunReport), under
    /// the `certificate.*` namespace.
    pub fn counters(&self) -> Vec<(String, f64)> {
        vec![
            ("certificate.max_rel_error".to_string(), self.max_rel_error),
            (
                "certificate.mean_rel_error".to_string(),
                self.mean_rel_error(),
            ),
            (
                "certificate.compared_entries".to_string(),
                self.compared_entries as f64,
            ),
            (
                "certificate.mismatched_entries".to_string(),
                self.mismatched_entries as f64,
            ),
            ("certificate.short_ranks".to_string(), self.short_ranks as f64),
        ]
    }
}

/// Merge candidate `(j, dist_sq)` into the first `len` entries of a sorted
/// row whose capacity is `row.len() == k`. Shared by [`KnnResult`] and the
/// lock-striped parallel store. Returns the new length when the candidate
/// was inserted, `None` when it was rejected (worse than a full row's tail,
/// or a duplicate index).
pub(crate) fn merge_into_row(
    row: &mut [Neighbor],
    len: usize,
    j: u32,
    dist_sq: f64,
) -> Option<usize> {
    let k = row.len();
    if len == k {
        let tail = row[k - 1];
        if dist_sq > tail.dist_sq || (dist_sq == tail.dist_sq && j >= tail.idx) {
            return None;
        }
    }
    if row[..len].iter().any(|n| n.idx == j) {
        return None;
    }
    let pos = row[..len]
        .iter()
        .position(|n| dist_sq < n.dist_sq || (dist_sq == n.dist_sq && j < n.idx))
        .unwrap_or(len);
    let new_len = (len + 1).min(k);
    for t in (pos + 1..new_len).rev() {
        row[t] = row[t - 1];
    }
    row[pos] = Neighbor { idx: j, dist_sq };
    Some(new_len)
}

/// Solve k-NN exactly within a subset of points by all-pairs scan, writing
/// global indices into `result`. `ids` are indices into `points`.
///
/// `O(|ids|² k)` — used for recursion base cases (`|ids| = O(log n)`).
pub fn solve_subset_brute<const D: usize>(
    points: &[Point<D>],
    ids: &[u32],
    result: &mut KnnResult,
) {
    let k = result.k();
    let mut scratch = Vec::with_capacity(k + 1);
    for &i in ids {
        brute_list_into(points, i, ids, k, &mut scratch);
        result.set_list(i as usize, &scratch);
    }
}

/// k-NN list of point `i` within the subset `ids` by one all-pairs scan:
/// sorted, deduplicated, capped at `k`, global indices. Fills `out`
/// (cleared first) so leaf loops can reuse one scratch buffer.
pub(crate) fn brute_list_into<const D: usize>(
    points: &[Point<D>],
    i: u32,
    ids: &[u32],
    k: usize,
    out: &mut Vec<Neighbor>,
) {
    out.clear();
    let pi = points[i as usize];
    for &j in ids {
        if i == j {
            continue;
        }
        let d = pi.dist_sq(&points[j as usize]);
        // Insertion sort into a list capped at k.
        if out.len() == k {
            let tail = out[out.len() - 1];
            if d > tail.dist_sq || (d == tail.dist_sq && j >= tail.idx) {
                continue;
            }
        }
        let pos = out
            .iter()
            .position(|n| d < n.dist_sq || (d == n.dist_sq && j < n.idx))
            .unwrap_or(out.len());
        out.insert(pos, Neighbor { idx: j, dist_sq: d });
        out.truncate(k);
    }
}

/// [`brute_list_into`] on the SoA arena: one blocked distance sweep over
/// `ids` into `dists`, then the identical capped insertion pass. The
/// distances are bit-for-bit the scalar kernel's and the candidate order is
/// unchanged, so the resulting list is identical to the AoS path.
pub(crate) fn brute_list_soa_into<const D: usize>(
    soa: &sepdc_geom::SoaPoints<D>,
    i: u32,
    ids: &[u32],
    k: usize,
    dists: &mut Vec<f64>,
    out: &mut Vec<Neighbor>,
) {
    out.clear();
    let pi = soa.point(i as usize);
    soa.dist_sq_gather_into(&pi, ids, dists);
    for (&j, &d) in ids.iter().zip(dists.iter()) {
        if i == j {
            continue;
        }
        if out.len() == k {
            let tail = out[out.len() - 1];
            if d > tail.dist_sq || (d == tail.dist_sq && j >= tail.idx) {
                continue;
            }
        }
        let pos = out
            .iter()
            .position(|n| d < n.dist_sq || (d == n.dist_sq && j < n.idx))
            .unwrap_or(out.len());
        out.insert(pos, Neighbor { idx: j, dist_sq: d });
        out.truncate(k);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_keeps_sorted_and_capped() {
        let mut r = KnnResult::new(3, 2);
        assert!(r.merge_candidate(0, 1, 4.0));
        assert!(r.merge_candidate(0, 2, 1.0));
        assert_eq!(r.neighbors(0)[0].idx, 2);
        assert_eq!(r.neighbors(0)[1].idx, 1);
        // Better candidate evicts the tail.
        assert!(!r.merge_candidate(0, 1, 4.0), "dedup");
        let mut r2 = KnnResult::new(4, 2);
        r2.merge_candidate(0, 1, 1.0);
        r2.merge_candidate(0, 2, 2.0);
        assert!(r2.merge_candidate(0, 3, 1.5));
        assert_eq!(r2.neighbors(0).len(), 2);
        assert_eq!(r2.neighbors(0)[1].idx, 3);
        r2.check_invariants().unwrap();
    }

    #[test]
    fn merge_rejects_worse_when_full() {
        let mut r = KnnResult::new(4, 1);
        r.merge_candidate(0, 1, 1.0);
        assert!(!r.merge_candidate(0, 2, 2.0));
        assert_eq!(r.neighbors(0).len(), 1);
        assert_eq!(r.neighbors(0)[0].idx, 1);
    }

    #[test]
    fn ties_break_by_index() {
        let mut r = KnnResult::new(4, 2);
        r.merge_candidate(0, 3, 1.0);
        assert!(r.merge_candidate(0, 1, 1.0));
        assert_eq!(r.neighbors(0)[0].idx, 1);
        assert_eq!(r.neighbors(0)[1].idx, 3);
        // A third equidistant candidate with larger index is rejected.
        assert!(!r.merge_candidate(0, 5, 1.0));
    }

    #[test]
    fn radius_semantics() {
        let mut r = KnnResult::new(2, 2);
        assert_eq!(r.radius_sq(0), f64::INFINITY);
        r.merge_candidate(0, 1, 9.0);
        assert_eq!(r.radius_sq(0), f64::INFINITY, "only 1 of k=2 known");
        let mut full = KnnResult::new(3, 1);
        full.merge_candidate(0, 2, 4.0);
        assert_eq!(full.radius(0), 2.0);
    }

    #[test]
    fn solve_subset_brute_on_line() {
        let pts: Vec<Point<1>> = (0..6).map(|i| Point::from([i as f64])).collect();
        let ids: Vec<u32> = (0..6).collect();
        let mut r = KnnResult::new(6, 2);
        solve_subset_brute(&pts, &ids, &mut r);
        r.check_invariants().unwrap();
        // Point 0: neighbors 1 (d=1) and 2 (d=4).
        assert_eq!(r.neighbors(0)[0].idx, 1);
        assert_eq!(r.neighbors(0)[1].idx, 2);
        // Point 3: neighbors 2 and 4 (both d=1, index order).
        assert_eq!(r.neighbors(3)[0].idx, 2);
        assert_eq!(r.neighbors(3)[1].idx, 4);
    }

    #[test]
    fn solve_subset_respects_subset() {
        let pts: Vec<Point<1>> = (0..6).map(|i| Point::from([i as f64])).collect();
        let ids = vec![0u32, 5]; // only the two extremes
        let mut r = KnnResult::new(6, 1);
        solve_subset_brute(&pts, &ids, &mut r);
        assert_eq!(r.neighbors(0)[0].idx, 5);
        assert_eq!(r.neighbors(5)[0].idx, 0);
        assert!(r.neighbors(1).is_empty(), "non-subset point untouched");
    }

    #[test]
    fn same_distances_tolerates_tie_permutations() {
        let mut a = KnnResult::new(3, 1);
        a.merge_candidate(0, 1, 1.0);
        let mut b = KnnResult::new(3, 1);
        b.merge_candidate(0, 2, 1.0);
        assert!(a.same_distances(&b, 1e-12).is_ok());
        let mut c = KnnResult::new(3, 1);
        c.merge_candidate(0, 2, 2.0);
        assert!(a.same_distances(&c, 1e-12).is_err());
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_rejected() {
        KnnResult::new(3, 0);
    }

    #[test]
    fn error_certificate_identical_runs_are_clean() {
        let mut r = KnnResult::new(2, 2);
        r.merge_candidate(0, 1, 1.0);
        r.merge_candidate(1, 0, 1.0);
        let cert = r.error_certificate(&r.clone());
        assert_eq!(cert.max_rel_error, 0.0);
        assert_eq!(cert.mismatched_entries, 0);
        assert_eq!(cert.short_ranks, 0);
        assert_eq!(cert.compared_entries, 2);
        assert!(cert.within(0.0));
    }

    #[test]
    fn error_certificate_measures_inflated_distances() {
        let mut exact = KnnResult::new(1, 2);
        exact.merge_candidate(0, 1, 1.0);
        exact.merge_candidate(0, 2, 4.0);
        let mut approx = KnnResult::new(1, 2);
        approx.merge_candidate(0, 1, 1.0);
        // Rank 1 picked a farther neighbor: distance 3 vs exact 2 —
        // relative distance error √(9/4) − 1 = 0.5.
        approx.merge_candidate(0, 3, 9.0);
        let cert = approx.error_certificate(&exact);
        assert_eq!(cert.max_rel_error, 0.5);
        assert_eq!(cert.mismatched_entries, 1);
        assert_eq!(cert.compared_entries, 2);
        assert!(cert.within(0.5));
        assert!(!cert.within(0.49));
        assert_eq!(cert.mean_rel_error(), 0.25);
    }

    #[test]
    fn error_certificate_counts_short_lists_and_zero_exact() {
        let mut exact = KnnResult::new(1, 2);
        exact.merge_candidate(0, 1, 0.0);
        exact.merge_candidate(0, 2, 1.0);
        let mut approx = KnnResult::new(1, 2);
        approx.merge_candidate(0, 1, 0.0);
        let cert = approx.error_certificate(&exact);
        assert_eq!(cert.short_ranks, 1);
        assert_eq!(cert.compared_entries, 1);
        assert_eq!(cert.max_rel_error, 0.0);
        assert!(!cert.within(1.0), "short list breaks the contract");
        // A nonzero approximate distance against an exact zero is an
        // unbounded relative error, not a crash.
        let mut approx2 = KnnResult::new(1, 2);
        approx2.merge_candidate(0, 3, 0.25);
        approx2.merge_candidate(0, 2, 1.0);
        let cert2 = approx2.error_certificate(&exact);
        assert_eq!(cert2.max_rel_error, f64::INFINITY);
    }

    #[test]
    fn soa_leaf_solve_matches_scalar_exactly() {
        // Duplicates included: tie-breaking must agree bit-for-bit.
        let mut pts: Vec<Point<2>> = (0..37)
            .map(|i| Point::from([(i as f64 * 0.83).sin(), (i % 5) as f64]))
            .collect();
        pts.push(pts[3]);
        pts.push(pts[3]);
        let soa = sepdc_geom::SoaPoints::from_points(&pts);
        let ids: Vec<u32> = (0..pts.len() as u32).collect();
        let (mut a, mut b, mut dists) = (Vec::new(), Vec::new(), Vec::new());
        for k in [1usize, 3, 8] {
            for &i in &ids {
                brute_list_into(&pts, i, &ids, k, &mut a);
                brute_list_soa_into(&soa, i, &ids, k, &mut dists, &mut b);
                assert_eq!(a.len(), b.len(), "i={i} k={k}");
                for (x, y) in a.iter().zip(&b) {
                    assert_eq!(x.idx, y.idx, "i={i} k={k}");
                    assert_eq!(x.dist_sq.to_bits(), y.dist_sq.to_bits(), "i={i} k={k}");
                }
            }
        }
    }
}
