//! EXP-1 — Sphere Separator Theorem (Theorem 2.1) and the unit-time
//! algorithm contract.
//!
//! Paper claims: every k-ply neighborhood system has a sphere separator
//! with intersection number `O(k^{1/d} n^{(d-1)/d})` that
//! `(d+1)/(d+2)`-splits it, and the MTTV unit-time algorithm finds one with
//! constant success probability. We sweep `n` for `d ∈ {2, 3, 4}`, build
//! the exact 1-neighborhood system, accept separators with the production
//! search loop, and fit the exponent of the measured mean intersection
//! number against `n` — it should track `(d-1)/d` (0.50, 0.67, 0.75).

use crate::harness::{fit_power_law, Table};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sepdc_core::{kdtree_all_knn, NeighborhoodSystem};
use sepdc_separator::{find_good_separator, SeparatorConfig};
use sepdc_workloads::Workload;

const TRIALS: usize = 16;

fn sweep<const D: usize, const E: usize>(table: &mut Table, w: Workload, ns: &[usize]) {
    let cfg = SeparatorConfig::default();
    let mut iotas = Vec::new();
    for (i, &n) in ns.iter().enumerate() {
        let pts = w.generate::<D>(n, 1000 + i as u64);
        let knn = kdtree_all_knn(&pts, 1);
        let system = NeighborhoodSystem::from_knn(&pts, &knn);
        let mut rng = ChaCha8Rng::seed_from_u64(7 + i as u64);
        let mut iota_sum = 0.0;
        let mut ratio_sum = 0.0;
        for _ in 0..TRIALS {
            let f =
                find_good_separator::<D, E, _>(&pts, &cfg, &mut rng).expect("splittable workload");
            iota_sum += system.intersection_number(&f.separator) as f64;
            ratio_sum += f.counts.ratio();
        }
        let iota = iota_sum / TRIALS as f64;
        let ratio = ratio_sum / TRIALS as f64;
        iotas.push(iota);
        table.row(
            format!("{} d={} n={}", w.name(), D, n),
            vec![
                format!("{iota:.1}"),
                format!("{:.3}", iota / (n as f64).powf((D as f64 - 1.0) / D as f64)),
                format!("{ratio:.3}"),
                format!("{:.3}", cfg.delta(D)),
            ],
        );
    }
    let ns_f: Vec<f64> = ns.iter().map(|&n| n as f64).collect();
    let exp = crate::harness::fmt_exponent(fit_power_law(&ns_f, &iotas));
    table.note(format!(
        "{} d={D}: fitted ι ~ {exp}  (theorem predicts n^{:.3})",
        w.name(),
        (D as f64 - 1.0) / D as f64
    ));
}

/// Run EXP-1.
pub fn run() {
    let mut table = Table::new(
        "EXP-1 — separator quality vs Theorem 2.1 (k = 1 neighborhood systems)",
        &[
            "config",
            "mean ι",
            "ι/n^((d-1)/d)",
            "split ratio",
            "δ bound",
        ],
    );
    let ns = [1 << 10, 1 << 12, 1 << 14, 1 << 16];
    sweep::<2, 3>(&mut table, Workload::UniformCube, &ns);
    sweep::<2, 3>(&mut table, Workload::Clusters, &ns);
    sweep::<3, 4>(&mut table, Workload::UniformCube, &ns[..3]);
    sweep::<4, 5>(&mut table, Workload::UniformCube, &ns[..3]);
    table.note("split ratio must stay ≤ δ = (d+1)/(d+2)+ε by construction (accepted separators).");
    table.note("ι/n^((d-1)/d) should be roughly flat in n (constant factor of the theorem).");
    table.print();
}
