//! Churn oracle for [`sepdc_core::ShardedIndex`]: random
//! insert/delete/query interleavings checked three ways —
//!
//! 1. every query answer equals a brute multiset oracle over the balls
//!    alive at that instant (closed covering, interior covering, k-NN by
//!    the `(dist_sq.to_bits(), id)` total order);
//! 2. the full query transcript is byte-identical across 1-, 2- and
//!    7-thread rayon pools (determinism at every thread count);
//! 3. the post-churn index answers identically to *fresh* builds over the
//!    surviving entries — another incremental layout, a bulk
//!    `from_entries` layout, and a plain single [`QueryTree`] — so shard
//!    layout is unobservable through the query API.

use proptest::prelude::*;
use sepdc_core::serve::{CoverPredicate, ServeConfig};
use sepdc_core::{QueryTree, QueryTreeConfig, ShardedConfig, ShardedIndex};
use sepdc_geom::ball::Ball;
use sepdc_geom::Point;

const POOLS: [usize; 3] = [1, 2, 7];
const MASTER_SEED: u64 = 42;

/// One scripted operation, decoded from raw proptest draws.
#[derive(Clone, Debug)]
enum Op {
    Insert(Ball<2>),
    /// Delete the i-th (mod live count) surviving entry.
    Delete(usize),
    /// Probe with covering + interior covering + k-NN.
    Query(Point<2>, usize),
}

/// Decode raw `(selector, [x, y, r], aux)` tuples into a churn script.
/// Inserts get double weight so scripts grow and carries actually fire.
fn decode(raw: &[(u32, [f64; 3], usize)]) -> Vec<Op> {
    raw.iter()
        .map(|&(sel, [x, y, r], aux)| match sel % 4 {
            0 | 1 => Op::Insert(Ball::new(Point::from([x, y]), 0.02 + 0.25 * r)),
            2 => Op::Delete(aux),
            _ => Op::Query(Point::from([x, y]), 1 + aux % 5),
        })
        .collect()
}

/// Brute oracle answers over the live `(id, ball)` multiset.
fn oracle_covering(live: &[(u64, Ball<2>)], p: &Point<2>, open: bool) -> Vec<u64> {
    let mut out: Vec<u64> = live
        .iter()
        .filter(|(_, b)| {
            if open {
                b.contains_interior(p)
            } else {
                b.contains(p)
            }
        })
        .map(|(id, _)| *id)
        .collect();
    out.sort_unstable();
    out
}

fn oracle_knn(live: &[(u64, Ball<2>)], p: &Point<2>, k: usize) -> Vec<(u64, u64)> {
    let mut keys: Vec<(u64, u64)> = live
        .iter()
        .map(|(id, b)| (b.center.dist_sq(p).to_bits(), *id))
        .collect();
    keys.sort_unstable();
    keys.truncate(k);
    keys
}

/// Run the script inside a pool of `threads` workers, checking every
/// query against the oracle as it happens. Returns the serialized query
/// transcript plus the final index and surviving entries.
fn run_script(
    ops: &[Op],
    staging_cap: usize,
    threads: usize,
) -> (Vec<String>, ShardedIndex<2>, Vec<(u64, Ball<2>)>) {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .unwrap();
    pool.install(|| {
        let cfg = ShardedConfig {
            staging_cap,
            ..ShardedConfig::default()
        };
        let mut idx = ShardedIndex::new(cfg, MASTER_SEED).unwrap();
        let mut live: Vec<(u64, Ball<2>)> = Vec::new();
        let mut transcript = Vec::new();
        for op in ops {
            match op {
                Op::Insert(b) => {
                    let ids = idx.try_insert_batch::<3>(std::slice::from_ref(b)).unwrap();
                    live.push((ids[0], *b));
                }
                Op::Delete(i) => {
                    if live.is_empty() {
                        continue;
                    }
                    let (id, _) = live.remove(i % live.len());
                    assert!(idx.delete_batch(&[id])[0], "live id {id} must delete");
                }
                Op::Query(p, k) => {
                    let cov = idx.try_covering(p).unwrap();
                    assert_eq!(cov, oracle_covering(&live, p, false), "covering at {p:?}");
                    let int = idx.try_covering_interior(p).unwrap();
                    assert_eq!(int, oracle_covering(&live, p, true), "interior at {p:?}");
                    let knn: Vec<(u64, u64)> = idx
                        .try_knn(p, *k)
                        .unwrap()
                        .iter()
                        .map(|n| (n.dist_sq.to_bits(), n.id))
                        .collect();
                    assert_eq!(knn, oracle_knn(&live, p, *k), "knn at {p:?}");
                    transcript.push(format!("{cov:?}|{int:?}|{knn:?}"));
                }
            }
        }
        (transcript, idx, live)
    })
}

/// Answers of one index over a probe set, in a layout-free serialization
/// (covering rows are ascending global ids by contract).
fn fingerprint(idx: &ShardedIndex<2>, probes: &[Point<2>]) -> Vec<String> {
    let batch = idx
        .try_covering_batch(probes, CoverPredicate::Closed, &ServeConfig::default())
        .unwrap();
    probes
        .iter()
        .enumerate()
        .map(|(i, p)| {
            assert_eq!(
                batch.hits(i),
                idx.try_covering(p).unwrap(),
                "batch and single-probe paths must agree"
            );
            let knn: Vec<(u64, u64)> = idx
                .try_knn(p, 3)
                .unwrap()
                .iter()
                .map(|n| (n.dist_sq.to_bits(), n.id))
                .collect();
            format!("{:?}|{knn:?}", batch.hits(i))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn churn_is_oracle_correct_thread_deterministic_and_layout_free(
        raw in proptest::collection::vec(
            (0u32..1024, [0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0], 0usize..4096),
            40..120,
        ),
        staging_cap in 1usize..9,
    ) {
        let ops = decode(&raw);

        // (1) + (2): oracle checks run inside every pool; transcripts must
        // agree bit for bit across thread counts.
        let (base, idx, live) = run_script(&ops, staging_cap, POOLS[0]);
        for &threads in &POOLS[1..] {
            let (t, _, _) = run_script(&ops, staging_cap, threads);
            prop_assert_eq!(&t, &base, "transcript differs at {} threads", threads);
        }

        // (3) layout independence: the churned index vs fresh builds over
        // the survivors. `from_entries` sorts into one compact shard; a
        // different staging capacity produces yet another slot layout.
        let mut entries = live.clone();
        entries.sort_unstable_by_key(|(id, _)| *id);
        let probes: Vec<Point<2>> = ops
            .iter()
            .filter_map(|op| match op {
                Op::Query(p, _) => Some(*p),
                _ => None,
            })
            .chain([Point::from([0.5, 0.5]), Point::from([0.05, 0.95])])
            .collect();
        let base_fp = fingerprint(&idx, &probes);
        let bulk =
            ShardedIndex::from_entries::<3>(&entries, idx.config(), MASTER_SEED).unwrap();
        prop_assert_eq!(&fingerprint(&bulk, &probes), &base_fp);
        let other_cap = ShardedIndex::from_entries::<3>(
            &entries,
            ShardedConfig { staging_cap: staging_cap + 3, ..ShardedConfig::default() },
            MASTER_SEED + 1,
        )
        .unwrap();
        prop_assert_eq!(&fingerprint(&other_cap, &probes), &base_fp);

        // A plain single-tree build over the survivors answers the same
        // covering sets once its local indices map back to global ids.
        if !entries.is_empty() {
            let balls: Vec<Ball<2>> = entries.iter().map(|(_, b)| *b).collect();
            let tree =
                QueryTree::try_build::<3>(&balls, QueryTreeConfig::default(), 7).unwrap();
            for p in &probes {
                let mut got: Vec<u64> = tree
                    .try_covering(p)
                    .unwrap()
                    .into_iter()
                    .map(|local| entries[local as usize].0)
                    .collect();
                got.sort_unstable();
                prop_assert_eq!(got, idx.try_covering(p).unwrap(), "probe {:?}", p);
            }
        }
    }
}
