//! The retry loop around the unit-time candidate generator.
//!
//! Section 3.3 of the paper: *"Iteratively apply Unit Time Sphere Separator
//! Algorithm until finding a good sphere separator S."* Each candidate
//! succeeds with probability bounded below by a constant (≥ 1/2 in the
//! paper's accounting), so the number of rounds is geometric; Theorem 3.1
//! turns this into the `O(log n)` high-probability bound via a Bernoulli
//! ("heads/tails") argument.
//!
//! Practical completeness: after `max_attempts` failed candidates the
//! search falls back to a deterministic median hyperplane cut, which
//! `δ`-splits every point multiset that is splittable at all. This keeps
//! the implementation total without changing the probabilistic analysis
//! (the fallback fires with probability `2^-max_attempts`).

use crate::config::SeparatorConfig;
use crate::hyperplane_cut::median_cut_widest;
use crate::mttv::unit_time_candidate;
use crate::quality::{is_good_point_split, split_counts, SplitCounts};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use sepdc_geom::point::Point;
use sepdc_geom::shape::Separator;

/// How the good separator was obtained.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SearchOutcome {
    /// A unit-time random candidate was accepted.
    Random,
    /// The deterministic median-cut fallback was used.
    Fallback,
    /// A derandomized halving cut engaged after the random search failed
    /// (the `DeterministicHalving` splitter backend).
    Halving,
    /// A BFS/greedy separator over the sparse ball-intersection graph was
    /// accepted (the `GraphSeparator` splitter backend).
    Graph,
}

/// A good separator together with the search statistics the complexity
/// analysis cares about.
#[derive(Clone, Debug)]
pub struct FoundSeparator<const D: usize> {
    /// The accepted separator.
    pub separator: Separator<D>,
    /// How the split partitions the input points.
    pub counts: SplitCounts,
    /// Number of unit-time candidates drawn (the 'coin flips' of
    /// Theorem 3.1), including the accepted one.
    pub attempts: usize,
    /// Random acceptance or deterministic fallback.
    pub outcome: SearchOutcome,
}

/// Find a separator that `δ`-splits `points`, retrying unit-time candidates
/// and falling back to a median cut.
///
/// Returns `None` only when the point set cannot be split at all (fewer
/// than two points, or every point identical).
///
/// ```
/// use rand::SeedableRng;
/// use sepdc_separator::{find_good_separator, SeparatorConfig};
/// use sepdc_geom::Point;
///
/// let points: Vec<Point<2>> = (0..100)
///     .map(|i| Point::from([(i % 10) as f64, (i / 10) as f64]))
///     .collect();
/// let cfg = SeparatorConfig::default();
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
/// let found = find_good_separator::<2, 3, _>(&points, &cfg, &mut rng).unwrap();
/// assert!(found.counts.ratio() <= cfg.delta(2));
/// ```
pub fn find_good_separator<const D: usize, const E: usize, R: Rng>(
    points: &[Point<D>],
    cfg: &SeparatorConfig,
    rng: &mut R,
) -> Option<FoundSeparator<D>> {
    if points.len() < 2 {
        return None;
    }
    let delta = cfg.delta(D);
    for attempt in 1..=cfg.max_attempts {
        let Some(sep) = unit_time_candidate::<D, E, R>(points, cfg, rng) else {
            continue;
        };
        let counts = split_counts(points, &sep, cfg.tol);
        if is_good_point_split(&counts, delta) {
            return Some(FoundSeparator {
                separator: sep,
                counts,
                attempts: attempt,
                outcome: SearchOutcome::Random,
            });
        }
    }
    // Deterministic fallback.
    fallback(points, cfg)
}

fn fallback<const D: usize>(
    points: &[Point<D>],
    cfg: &SeparatorConfig,
) -> Option<FoundSeparator<D>> {
    let sep = median_cut_widest(points)?;
    let counts = split_counts(points, &sep, cfg.tol);
    if counts.left() == 0 || counts.right() == 0 {
        return None;
    }
    Some(FoundSeparator {
        separator: sep,
        counts,
        attempts: cfg.max_attempts,
        outcome: SearchOutcome::Fallback,
    })
}

/// The RNG seed of candidate `attempt` (0-based) in a seeded search.
///
/// Candidate 0 streams from `seed` itself, so a seeded search's first draw
/// is bit-identical to handing `ChaCha8Rng::seed_from_u64(seed)` to
/// [`find_good_separator`] — the pinned degenerate-separator regression
/// tests rely on this. Later candidates decorrelate via a golden-ratio
/// multiply, giving every attempt an independent ChaCha8 stream that does
/// not depend on how many draws earlier attempts consumed.
#[inline]
pub fn candidate_seed(seed: u64, attempt: usize) -> u64 {
    seed ^ (attempt as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Evaluate candidate `attempt`: draw it from its own seeded stream, score
/// the split, and return it only when acceptable.
fn eval_candidate<const D: usize, const E: usize>(
    points: &[Point<D>],
    cfg: &SeparatorConfig,
    delta: f64,
    seed: u64,
    attempt: usize,
) -> Option<(Separator<D>, SplitCounts)> {
    let mut rng = ChaCha8Rng::seed_from_u64(candidate_seed(seed, attempt));
    let sep = unit_time_candidate::<D, E, _>(points, cfg, &mut rng)?;
    let counts = split_counts(points, &sep, cfg.tol);
    is_good_point_split(&counts, delta).then_some((sep, counts))
}

/// Points-per-candidate threshold below which the sweep never forks: a
/// candidate's dominant cost is the `O(m)` [`split_counts`] scan, so tiny
/// subsets are cheaper to scan serially than to schedule.
const SWEEP_MIN_POINTS: usize = 2048;

/// Seeded, thread-count-oblivious separator search: the best-of-N sweep.
///
/// Semantically identical to [`find_good_separator`] with a fresh
/// `ChaCha8Rng` per candidate (see [`candidate_seed`]): candidates are
/// conceptually evaluated in index order and the **lowest-indexed
/// acceptable candidate wins**, with `attempts = winner + 1` and the
/// median-cut fallback after `max_attempts` rejections. Because that
/// selection rule fixes the output independently of evaluation order, the
/// implementation is free to score candidates speculatively: on a
/// multi-thread pool it evaluates waves of [`SeparatorConfig::sweep_width`]
/// candidates in parallel, keeps the lowest-indexed winner, and exits
/// early — no remaining candidate can beat an accepted one from an earlier
/// wave. The returned separator, counts, attempts, and outcome are a pure
/// function of `(points, cfg, seed)` for every thread count, which is what
/// lets the tree builders call this from inside `rayon::join` without
/// breaking build determinism.
pub fn find_good_separator_par<const D: usize, const E: usize>(
    points: &[Point<D>],
    cfg: &SeparatorConfig,
    seed: u64,
) -> Option<FoundSeparator<D>> {
    if points.len() < 2 {
        return None;
    }
    let delta = cfg.delta(D);
    let accept = |attempt: usize, sep: Separator<D>, counts: SplitCounts| FoundSeparator {
        separator: sep,
        counts,
        attempts: attempt + 1,
        outcome: SearchOutcome::Random,
    };
    // Wall-clock-only gate: with one worker, a width-1 sweep, or a subset
    // too small to amortize forking, the serial scan keeps the exact
    // short-circuit cost (one candidate on the expected path). Legal to
    // branch on the pool size because both paths compute the same function.
    let wave_width = cfg.sweep_width.min(cfg.max_attempts);
    if wave_width <= 1 || points.len() < SWEEP_MIN_POINTS || rayon::current_num_threads() <= 1 {
        for attempt in 0..cfg.max_attempts {
            if let Some((sep, counts)) = eval_candidate::<D, E>(points, cfg, delta, seed, attempt) {
                return Some(accept(attempt, sep, counts));
            }
        }
        return fallback(points, cfg);
    }
    let mut base = 0;
    while base < cfg.max_attempts {
        let wave = wave_width.min(cfg.max_attempts - base);
        // Order-preserving collect, then first acceptable in index order:
        // the whole wave is speculative work-in-flight, but the selection
        // is by candidate index, so the winner matches the serial scan.
        let winner = (0..wave)
            .into_par_iter()
            .map(|j| {
                eval_candidate::<D, E>(points, cfg, delta, seed, base + j)
                    .map(|(sep, counts)| (base + j, sep, counts))
            })
            .collect::<Vec<_>>()
            .into_iter()
            .flatten()
            .next();
        if let Some((attempt, sep, counts)) = winner {
            return Some(accept(attempt, sep, counts));
        }
        base += wave;
    }
    fallback(points, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn uniform_square(n: usize, seed: u64) -> Vec<Point<2>> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::from([rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)]))
            .collect()
    }

    #[test]
    fn finds_good_separator_quickly_on_uniform() {
        let pts = uniform_square(5000, 1);
        let cfg = SeparatorConfig::default();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let found = find_good_separator::<2, 3, _>(&pts, &cfg, &mut rng).unwrap();
        assert_eq!(found.outcome, SearchOutcome::Random);
        assert!(found.attempts <= 10, "needed {} attempts", found.attempts);
        assert!(found.counts.ratio() <= cfg.delta(2));
    }

    #[test]
    fn attempt_distribution_is_geometric_ish() {
        // Mean attempts should be small; this is the empirical face of the
        // Bernoulli argument in Theorem 3.1.
        let pts = uniform_square(2000, 3);
        let cfg = SeparatorConfig::default();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut total_attempts = 0;
        let runs = 30;
        for _ in 0..runs {
            let f = find_good_separator::<2, 3, _>(&pts, &cfg, &mut rng).unwrap();
            total_attempts += f.attempts;
        }
        let mean = total_attempts as f64 / runs as f64;
        assert!(mean < 4.0, "mean attempts {mean} too high");
    }

    #[test]
    fn two_points_are_split() {
        let pts = vec![Point::<2>::from([0.0, 0.0]), Point::from([1.0, 0.0])];
        let cfg = SeparatorConfig::default();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let found = find_good_separator::<2, 3, _>(&pts, &cfg, &mut rng).unwrap();
        assert_eq!(found.counts.left(), 1);
        assert_eq!(found.counts.right(), 1);
    }

    #[test]
    fn identical_points_return_none() {
        let pts = vec![Point::<2>::splat(1.0); 100];
        let cfg = SeparatorConfig {
            max_attempts: 4, // keep the test fast; fallback also fails
            ..Default::default()
        };
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        assert!(find_good_separator::<2, 3, _>(&pts, &cfg, &mut rng).is_none());
    }

    #[test]
    fn single_point_returns_none() {
        let pts = vec![Point::<2>::origin()];
        let cfg = SeparatorConfig::default();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        assert!(find_good_separator::<2, 3, _>(&pts, &cfg, &mut rng).is_none());
    }

    #[test]
    fn fallback_fires_when_candidates_disabled() {
        // Zero attempts forces the median-cut fallback path.
        let pts = uniform_square(500, 8);
        let cfg = SeparatorConfig {
            max_attempts: 0,
            ..Default::default()
        };
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let found = find_good_separator::<2, 3, _>(&pts, &cfg, &mut rng).unwrap();
        assert_eq!(found.outcome, SearchOutcome::Fallback);
        assert!(found.counts.left() > 0 && found.counts.right() > 0);
    }

    /// Serial reference for the sweep: evaluate candidates strictly in
    /// index order with per-candidate seeding and take the first winner.
    fn seeded_reference(
        pts: &[Point<2>],
        cfg: &SeparatorConfig,
        seed: u64,
    ) -> Option<FoundSeparator<2>> {
        let delta = cfg.delta(2);
        for attempt in 0..cfg.max_attempts {
            if let Some((sep, counts)) = eval_candidate::<2, 3>(pts, cfg, delta, seed, attempt) {
                return Some(FoundSeparator {
                    separator: sep,
                    counts,
                    attempts: attempt + 1,
                    outcome: SearchOutcome::Random,
                });
            }
        }
        fallback(pts, cfg)
    }

    #[test]
    fn sweep_matches_serial_reference_for_every_pool_size() {
        // The contract the parallel builders rely on: the sweep's output is
        // a pure function of (points, cfg, seed), whatever the pool size.
        let pts = uniform_square(SWEEP_MIN_POINTS + 500, 21);
        let cfg = SeparatorConfig::default();
        for seed in [0u64, 7, 5028, 0xDEADBEEF] {
            let reference = seeded_reference(&pts, &cfg, seed);
            for threads in [1usize, 2, 5] {
                let pool = rayon::ThreadPoolBuilder::new()
                    .num_threads(threads)
                    .build()
                    .unwrap();
                let got = pool.install(|| find_good_separator_par::<2, 3>(&pts, &cfg, seed));
                match (&reference, &got) {
                    (None, None) => {}
                    (Some(a), Some(b)) => {
                        assert_eq!(a.separator, b.separator, "seed {seed} x{threads}");
                        assert_eq!(a.counts, b.counts, "seed {seed} x{threads}");
                        assert_eq!(a.attempts, b.attempts, "seed {seed} x{threads}");
                        assert_eq!(a.outcome, b.outcome, "seed {seed} x{threads}");
                    }
                    other => panic!("seed {seed} x{threads}: mismatch {other:?}"),
                }
            }
        }
    }

    #[test]
    fn sweep_candidate_zero_matches_fresh_rng_stream() {
        // candidate_seed(s, 0) == s, so the sweep's first draw equals
        // handing ChaCha8Rng::seed_from_u64(s) to the rng-based search
        // (pinned because tests elsewhere select degenerate separators by
        // that exact stream).
        let pts = uniform_square(3000, 22);
        let cfg = SeparatorConfig {
            max_attempts: 1,
            ..Default::default()
        };
        for seed in [3u64, 5028, 99] {
            assert_eq!(candidate_seed(seed, 0), seed);
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let a = find_good_separator::<2, 3, _>(&pts, &cfg, &mut rng);
            let b = find_good_separator_par::<2, 3>(&pts, &cfg, seed);
            assert_eq!(
                a.as_ref().map(|f| (f.separator, f.counts, f.attempts)),
                b.as_ref().map(|f| (f.separator, f.counts, f.attempts)),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn sweep_small_inputs_and_fallback() {
        // Below the two-point floor.
        let one = vec![Point::<2>::origin()];
        assert!(find_good_separator_par::<2, 3>(&one, &SeparatorConfig::default(), 1).is_none());
        // Zero attempts forces the fallback, same as the rng-based search.
        let pts = uniform_square(500, 23);
        let cfg = SeparatorConfig {
            max_attempts: 0,
            ..Default::default()
        };
        let found = find_good_separator_par::<2, 3>(&pts, &cfg, 9).unwrap();
        assert_eq!(found.outcome, SearchOutcome::Fallback);
        // Identical points cannot be split at all.
        let same = vec![Point::<2>::splat(1.0); 100];
        let cfg4 = SeparatorConfig {
            max_attempts: 4,
            ..Default::default()
        };
        assert!(find_good_separator_par::<2, 3>(&same, &cfg4, 6).is_none());
    }

    #[test]
    fn candidate_seeds_are_distinct_across_attempts() {
        let mut seen = std::collections::HashSet::new();
        for attempt in 0..64 {
            assert!(seen.insert(candidate_seed(0xC0FFEE, attempt)));
        }
    }

    #[test]
    fn works_in_3d() {
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let pts: Vec<Point<3>> = (0..2000)
            .map(|_| {
                Point::from([
                    rng.gen_range(0.0..1.0),
                    rng.gen_range(0.0..1.0),
                    rng.gen_range(0.0..1.0),
                ])
            })
            .collect();
        let cfg = SeparatorConfig::default();
        let found = find_good_separator::<3, 4, _>(&pts, &cfg, &mut rng).unwrap();
        assert!(found.counts.ratio() <= cfg.delta(3) + 1e-12);
    }
}
