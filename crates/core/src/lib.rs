//! # sepdc-core
//!
//! The algorithms of Frieze, Miller & Teng, *Separator Based Parallel
//! Divide and Conquer in Computational Geometry* (SPAA 1992):
//!
//! | Paper | Module |
//! |---|---|
//! | §2 neighborhood systems, Density Lemma | [`neighborhood`] |
//! | §3 neighborhood query structure, Thm 3.1 | [`query`] |
//! | §4 Punting Lemma, probabilistic `(a,b)`-trees | [`punting`] |
//! | §5 Simple Parallel Divide-and-Conquer (`O(log² n)`) | [`simple_parallel`] |
//! | §6 Parallel Nearest Neighborhood (`O(log n)`) | [`parallel`] |
//! | §6.2 Fast Correction / reachability marching | [`partition_tree`], [`correction`] |
//! | Def 1.1 k-NN graph | [`graph`] |
//! | §3 batch serving (read path over [`query`]) | [`serve`] |
//! | persistent index snapshots (save/load) | [`snapshot`] |
//! | batch-dynamic sharding (logarithmic method) | [`sharded`] |
//! | pluggable split-decision backends | [`splitter`] |
//!
//! Baselines and substrates: [`brute`] (the `O(n²)` oracle), [`kdtree`]
//! (the sequential `O(n log n)`-class baseline standing in for Vaidya's
//! algorithm), [`knn`] (result representation shared by all).
//!
//! ## Quick start
//!
//! ```
//! use sepdc_core::{parallel_knn, KnnDcConfig, KnnGraph};
//! use sepdc_workloads::Workload;
//!
//! let points = Workload::UniformCube.generate::<2>(500, 42);
//! let cfg = KnnDcConfig::new(3); // k = 3
//! let out = parallel_knn::<2, 3>(&points, &cfg); // <D, D+1>
//! let graph = KnnGraph::from_knn(&out.knn);
//! assert_eq!(graph.num_vertices(), 500);
//! assert!(out.stats.fast_corrections > 0);
//! ```

#![deny(missing_docs)]

pub mod balltree;
pub mod brute;
pub mod config;
pub mod correction;
pub mod error;
pub mod graph;
pub mod graph_separator;
pub mod kdtree;
pub mod knn;
pub mod neighborhood;
pub mod parallel;
pub mod partition_tree;
pub mod punting;
pub mod query;
pub mod report;
pub mod seeding;
pub mod serve;
pub mod sharded;
mod shared;
pub mod simple_parallel;
pub mod snapshot;
pub mod splitter;
pub mod validate;

pub use brute::{brute_force_knn, try_brute_force_knn};
pub use config::{eps_cover_scale, eps_radius_scale, KnnDcConfig, Precision, ServeConfig};
pub use error::SepdcError;
pub use graph::KnnGraph;
pub use graph_separator::{sphere_graph_separator, GraphSeparator};
pub use kdtree::{kdtree_all_knn, try_kdtree_all_knn, try_kdtree_all_knn_with, KdTree};
pub use knn::{ErrorCertificate, KnnResult, Neighbor};
pub use neighborhood::NeighborhoodSystem;
pub use parallel::{parallel_knn, try_parallel_knn, ParallelDcOutput, ParallelDcStats};
pub use partition_tree::{
    march_balls, march_balls_unpruned, MarchOutcome, PartitionNode, PartitionTree,
};
pub use query::{QueryTree, QueryTreeConfig, QueryTreeStats};
pub use report::{
    DepthRow, Phase, PhaseSample, ReportError, RunRecorder, RunReport, RUN_REPORT_VERSION,
};
pub use serve::{BatchResult, CoverPredicate, ServeOutput, ServeStats};
pub use sharded::{ShardedBatch, ShardedConfig, ShardedIndex, ShardedNeighbor, ShardedStats};
pub use simple_parallel::{
    simple_parallel_knn, try_simple_parallel_knn, SimpleDcOutput, SimpleDcStats,
};
pub use snapshot::{
    load_partition_tree, load_query_tree, load_sharded_index, save_partition_tree, save_query_tree,
    save_sharded_index, SectionInfo, SnapshotError, SnapshotInfo, SnapshotKind, SNAPSHOT_MAGIC,
    SNAPSHOT_VERSION,
};
pub use splitter::{
    splitter_for, DeterministicHalving, GraphSplitter, RandomSphere, Splitter, SplitterKind,
};
pub use validate::{validate_against_oracle, validate_knn, ValidationError};
