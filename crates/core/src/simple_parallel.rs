//! *Simple Parallel Divide-and-Conquer* (Section 5): the `O(log² n)` time,
//! `n` processor k-neighborhood algorithm.
//!
//! 1. split the points in half with a (median) hyperplane;
//! 2. recursively compute the k-neighborhood systems of the two halves, in
//!    parallel;
//! 3. correct every ball that intersects the cutting hyperplane by querying
//!    the Section 3 search structure built over the crossing balls.
//!
//! This is the hyperplane-based baseline (Bentley's shape with the paper's
//! improved combine step). Each level costs `O(log n)` rounds for the
//! query-structure correction, and there are `O(log n)` levels, hence
//! `O(log² n)` depth. The statistics expose the crossing counts that
//! motivate Section 6: on hyperplane-adversarial inputs a single cut is
//! crossed by `Ω(n)` balls.

use crate::config::{eps_radius_scale, KnnDcConfig};
use crate::correction::{collect_crossing, correct_unbounded, correct_via_query};
use crate::error::{validate_points, SepdcError};
use crate::knn::{brute_list_soa_into, KnnResult};
use crate::parallel::config_echo;
use crate::partition_tree::partition_in_place;
use crate::query::QueryTreeConfig;
use crate::report::{cost_counters, precision_counters, Phase, RunRecorder, RunReport};
use crate::shared::SharedLists;
use crate::splitter::splitter_for;
use sepdc_geom::soa::FilterStats;
use sepdc_geom::point::Point;
use sepdc_scan::CostProfile;

/// Statistics from one run of the Section 5 algorithm.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SimpleDcStats {
    /// Recursion tree height.
    pub height: usize,
    /// Total crossing balls summed over all nodes.
    pub total_crossing: u64,
    /// Largest crossing count at any single node.
    pub max_node_crossing: usize,
    /// Largest crossing count at any node, as a fraction of that node's
    /// subset size — the `Ω(1)` exhibit on adversarial inputs.
    pub max_crossing_fraction: f64,
    /// Base-case leaves.
    pub base_leaves: usize,
    /// Nodes where no hyperplane could split (identical points).
    pub forced_leaves: usize,
    /// Nodes where a median cut routed every point to one side and the
    /// recursion fell back to a brute-force leaf.
    pub degenerate_splits: usize,
    /// Nodes cut off by the automatic depth guard and solved as
    /// brute-force leaves.
    pub depth_forced_leaves: usize,
}

impl SimpleDcStats {
    fn leaf(forced: bool) -> Self {
        SimpleDcStats {
            base_leaves: 1,
            forced_leaves: usize::from(forced),
            ..Default::default()
        }
    }

    fn merge(self, other: Self, node_crossing: usize, node_size: usize) -> Self {
        let frac = node_crossing as f64 / node_size.max(1) as f64;
        SimpleDcStats {
            height: 1 + self.height.max(other.height),
            total_crossing: self.total_crossing + other.total_crossing + node_crossing as u64,
            max_node_crossing: self
                .max_node_crossing
                .max(other.max_node_crossing)
                .max(node_crossing),
            max_crossing_fraction: self
                .max_crossing_fraction
                .max(other.max_crossing_fraction)
                .max(frac),
            base_leaves: self.base_leaves + other.base_leaves,
            forced_leaves: self.forced_leaves + other.forced_leaves,
            degenerate_splits: self.degenerate_splits + other.degenerate_splits,
            depth_forced_leaves: self.depth_forced_leaves + other.depth_forced_leaves,
        }
    }
}

/// Output of [`simple_parallel_knn`].
pub struct SimpleDcOutput {
    /// The k-nearest-neighbor lists.
    pub knn: KnnResult,
    /// Work–depth profile (depth is the `O(log² n)` quantity).
    pub cost: CostProfile,
    /// Structural statistics.
    pub stats: SimpleDcStats,
    /// The merged observability artifact (same schema as the Section 6
    /// report; this algorithm has no event meter, so only `stats.*` and
    /// `cost.*` counters appear). Phase timings and the depth histogram
    /// are empty when [`KnnDcConfig::record`] is `false`.
    pub report: RunReport,
}

struct Ctx<'a, const D: usize> {
    points: &'a [Point<D>],
    /// Column-major copy of `points` for the batched leaf-solve and
    /// unbounded-correction kernels.
    soa: &'a sepdc_geom::SoaPoints<D>,
    lists: &'a SharedLists,
    cfg: &'a KnnDcConfig,
    obs: &'a RunRecorder,
    base: usize,
    /// Depth at which the recursion stops subdividing.
    depth_limit: usize,
    /// `true` when `depth_limit` came from an explicit
    /// [`KnnDcConfig::max_depth`]: exceeding it errors instead of forcing
    /// a leaf.
    strict_depth: bool,
}

/// Section 5: hyperplane divide and conquer with query-structure
/// correction. `E` must be `D + 1`.
///
/// Infallible wrapper around [`try_simple_parallel_knn`].
///
/// # Panics
/// Panics with the [`SepdcError`] message on invalid input; use
/// [`try_simple_parallel_knn`] to handle it as a typed error instead.
pub fn simple_parallel_knn<const D: usize, const E: usize>(
    points: &[Point<D>],
    cfg: &KnnDcConfig,
) -> SimpleDcOutput {
    try_simple_parallel_knn::<D, E>(points, cfg)
        .unwrap_or_else(|e| panic!("simple_parallel_knn: {e}"))
}

/// Total variant of [`simple_parallel_knn`]: validates once up front and
/// returns a typed [`SepdcError`] instead of panicking. After validation
/// the only reachable error is [`SepdcError::RecursionDepthExceeded`], and
/// only when [`KnnDcConfig::max_depth`] is set explicitly.
pub fn try_simple_parallel_knn<const D: usize, const E: usize>(
    points: &[Point<D>],
    cfg: &KnnDcConfig,
) -> Result<SimpleDcOutput, SepdcError> {
    assert_eq!(E, D + 1, "simple_parallel_knn requires E = D + 1");
    cfg.validate()?;
    validate_points(points)?;
    let t_run = std::time::Instant::now();
    let n = points.len();
    let lists = SharedLists::new(n, cfg.k);
    let base = cfg.resolve_base_case(n, D);
    let depth_limit = cfg.resolve_depth_limit(n);
    let obs = RunRecorder::new(cfg.record, depth_limit);
    let soa = sepdc_geom::SoaPoints::from_points(points);
    let ctx = Ctx {
        points,
        soa: &soa,
        lists: &lists,
        cfg,
        obs: &obs,
        base,
        depth_limit,
        strict_depth: cfg.max_depth.is_some(),
    };
    // Permutation arena: the recursion partitions this buffer in place and
    // hands each recursive call a disjoint `&mut` slice — no per-level
    // id-set clones.
    let mut perm: Vec<u32> = (0..n as u32).collect();
    let (cost, stats, fstats) = rec::<D, E>(&ctx, &mut perm, cfg.seed, 0)?;
    let mut counters = vec![
        ("stats.height".to_string(), stats.height as f64),
        (
            "stats.total_crossing".to_string(),
            stats.total_crossing as f64,
        ),
        (
            "stats.max_node_crossing".to_string(),
            stats.max_node_crossing as f64,
        ),
        (
            "stats.max_crossing_fraction".to_string(),
            stats.max_crossing_fraction,
        ),
        ("stats.base_leaves".to_string(), stats.base_leaves as f64),
        (
            "stats.forced_leaves".to_string(),
            stats.forced_leaves as f64,
        ),
        (
            "stats.degenerate_splits".to_string(),
            stats.degenerate_splits as f64,
        ),
        (
            "stats.depth_forced_leaves".to_string(),
            stats.depth_forced_leaves as f64,
        ),
    ];
    counters.extend(cost_counters(&cost));
    counters.extend(precision_counters(&fstats));
    let report = RunReport {
        version: crate::report::RUN_REPORT_VERSION,
        algo: "simple".to_string(),
        dim: D,
        n,
        k: cfg.k,
        seed: cfg.seed,
        threads: rayon::current_num_threads(),
        wall_ms: 0.0,
        config: config_echo(cfg, base, depth_limit, D),
        phases: obs.phases(),
        counters,
        depth: obs.depth_rows(),
    }
    .finish(t_run.elapsed());
    Ok(SimpleDcOutput {
        knn: lists.into_result(),
        cost,
        stats,
        report,
    })
}

fn rec<const D: usize, const E: usize>(
    ctx: &Ctx<'_, D>,
    ids: &mut [u32],
    seed: u64,
    depth: usize,
) -> Result<(CostProfile, SimpleDcStats, FilterStats), SepdcError> {
    let m = ids.len();
    ctx.obs.node(depth);
    if m <= ctx.base {
        solve_subset_into(ctx, ids, depth);
        return Ok((
            CostProfile::rounds(m as u64, m as u64),
            SimpleDcStats::leaf(false),
            FilterStats::default(),
        ));
    }
    if depth >= ctx.depth_limit {
        // Median cuts shrink both sides every level, so only degenerate
        // routing can reach this depth; absorb into a brute-force leaf (or
        // error, in strict mode) rather than recurse further.
        if ctx.strict_depth {
            return Err(SepdcError::RecursionDepthExceeded {
                limit: ctx.depth_limit,
            });
        }
        solve_subset_into(ctx, ids, depth);
        let mut stats = SimpleDcStats::leaf(true);
        stats.depth_forced_leaves = 1;
        return Ok((
            CostProfile::rounds(m as u64, m as u64),
            stats,
            FilterStats::default(),
        ));
    }
    let t_split = ctx.obs.start();
    let subset_points: Vec<Point<D>> = ids.iter().map(|&i| ctx.points[i as usize]).collect();
    let sp = splitter_for::<D, E>(ctx.cfg.splitter);
    let Some(sep) = sp.median_split(&subset_points, depth) else {
        // All points identical: brute leaf.
        ctx.obs.stop(Phase::Split, t_split);
        solve_subset_into(ctx, ids, depth);
        return Ok((
            CostProfile::rounds(m as u64, m as u64),
            SimpleDcStats::leaf(true),
            FilterStats::default(),
        ));
    };
    let nl = partition_in_place(ids, |i| sep.side(&ctx.points[i as usize]).routes_interior());
    ctx.obs.stop(Phase::Split, t_split);
    if nl == 0 || nl == m {
        // The cut routed every point to one side: brute leaf instead of
        // recursing on an unshrunk slice.
        solve_subset_into(ctx, ids, depth);
        let mut stats = SimpleDcStats::leaf(true);
        stats.degenerate_splits = 1;
        return Ok((
            CostProfile::rounds(m as u64, m as u64),
            stats,
            FilterStats::default(),
        ));
    }

    // Path-derived sibling seeds (see [`crate::seeding`]).
    let lseed = crate::seeding::child_seed(seed, false);
    let rseed = crate::seeding::child_seed(seed, true);
    let (lslice, rslice) = ids.split_at_mut(nl);
    let (lres, rres) = if m > ctx.cfg.parallel_cutoff {
        rayon::join(
            || rec::<D, E>(ctx, lslice, lseed, depth + 1),
            || rec::<D, E>(ctx, rslice, rseed, depth + 1),
        )
    } else {
        (
            rec::<D, E>(ctx, lslice, lseed, depth + 1),
            rec::<D, E>(ctx, rslice, rseed, depth + 1),
        )
    };
    let ((lcost, lstats, lf), (rcost, rstats, rf)) = (lres?, rres?);

    // Correction: query structure over all crossing balls (both sides).
    // The child calls permuted their halves but the id sets are unchanged.
    // ε-mode shrinks the crossing radii here exactly as in the Section 6
    // recursion; the query tree then indexes the shrunk balls.
    let (left, right) = ids.split_at(nl);
    let t_cc = ctx.obs.start();
    let eps_scale = eps_radius_scale(ctx.cfg.epsilon);
    let (mut crossing, unbounded_l, skips_l) =
        collect_crossing(ctx.points, ctx.lists, left, &sep, eps_scale);
    let (cross_r, unbounded_r, skips_r) =
        collect_crossing(ctx.points, ctx.lists, right, &sep, eps_scale);
    crossing.extend(cross_r);
    correct_unbounded(ctx.soa, ctx.lists, &unbounded_l, right);
    correct_unbounded(ctx.soa, ctx.lists, &unbounded_r, left);
    ctx.obs.stop(Phase::CollectCrossing, t_cc);
    let node_crossing = crossing.len();
    ctx.obs.add_crossing(depth, node_crossing as u64);
    let qseed = crate::seeding::punt_seed(seed);
    // The top-level precision knob is authoritative even for struct-literal
    // configs whose `query` sub-config was left untouched; ε stays
    // `cfg.query.epsilon` because the balls above are already shrunk.
    let qcfg = QueryTreeConfig {
        precision: ctx.cfg.precision,
        ..ctx.cfg.query
    };
    // Every internal node corrects through the query structure here (the
    // Section 5 combine step), so its time lands in the same
    // `punt-correction` phase the Section 6 punt path uses.
    let (corr_cost, corr_stats) = ctx.obs.time(Phase::PuntCorrection, || {
        correct_via_query::<D, E>(ctx.soa, ctx.lists, ids, &crossing, qcfg, qseed)
    });

    let local = CostProfile::scan(m as u64); // the split
    let cost = local.then(lcost.alongside(rcost)).then(corr_cost);
    let stats = lstats.merge(rstats, node_crossing, m);
    let mut fstats = lf;
    fstats.merge(&rf);
    fstats.merge(&corr_stats);
    fstats.eps_skips += skips_l + skips_r;
    Ok((cost, stats, fstats))
}

fn solve_subset_into<const D: usize>(ctx: &Ctx<'_, D>, ids: &[u32], depth: usize) {
    let t0 = ctx.obs.start();
    // Straight into the shared store through one reused scratch buffer; an
    // n-point scratch KnnResult here would cost O(n) per leaf (O(n²/base)
    // across the recursion).
    let k = ctx.lists.k();
    let mut scratch = Vec::with_capacity(k + 1);
    let mut dists = Vec::with_capacity(ids.len());
    for &i in ids {
        brute_list_soa_into(ctx.soa, i, ids, k, &mut dists, &mut scratch);
        ctx.lists.set_list(i as usize, &scratch);
    }
    ctx.obs.stop(Phase::LeafSolve, t0);
    ctx.obs.leaf(depth);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force_knn;
    use sepdc_workloads::Workload;

    fn check_matches_oracle<const D: usize, const E: usize>(
        w: Workload,
        n: usize,
        k: usize,
        seed: u64,
    ) {
        let pts = w.generate::<D>(n, seed);
        let cfg = KnnDcConfig::new(k).with_seed(seed ^ 0xABCD);
        let out = simple_parallel_knn::<D, E>(&pts, &cfg);
        let oracle = brute_force_knn(&pts, k);
        out.knn
            .same_distances(&oracle, 1e-9)
            .unwrap_or_else(|e| panic!("{} n={n} k={k}: {e}", w.name()));
        out.knn.check_invariants().unwrap();
    }

    #[test]
    fn matches_oracle_uniform_2d() {
        check_matches_oracle::<2, 3>(Workload::UniformCube, 800, 1, 1);
        check_matches_oracle::<2, 3>(Workload::UniformCube, 800, 4, 2);
    }

    #[test]
    fn matches_oracle_adversarial() {
        check_matches_oracle::<2, 3>(Workload::TwoSlabs, 600, 1, 3);
        check_matches_oracle::<2, 3>(Workload::SphereShell, 600, 2, 4);
        check_matches_oracle::<2, 3>(Workload::NoisyLine, 500, 3, 5);
    }

    #[test]
    fn matches_oracle_3d() {
        check_matches_oracle::<3, 4>(Workload::UniformCube, 700, 2, 6);
        check_matches_oracle::<3, 4>(Workload::Clusters, 700, 1, 7);
    }

    #[test]
    fn small_inputs() {
        for n in [1usize, 2, 5, 33] {
            let pts = Workload::UniformCube.generate::<2>(n, 8);
            let cfg = KnnDcConfig::new(1);
            let out = simple_parallel_knn::<2, 3>(&pts, &cfg);
            let oracle = brute_force_knn(&pts, 1);
            out.knn.same_distances(&oracle, 1e-12).unwrap();
        }
    }

    #[test]
    fn duplicate_points() {
        let mut pts = Workload::UniformCube.generate::<2>(200, 9);
        let dup = pts[0];
        for _ in 0..50 {
            pts.push(dup);
        }
        let cfg = KnnDcConfig::new(2);
        let out = simple_parallel_knn::<2, 3>(&pts, &cfg);
        let oracle = brute_force_knn(&pts, 2);
        out.knn.same_distances(&oracle, 1e-12).unwrap();
    }

    #[test]
    fn all_identical_points() {
        let pts = vec![sepdc_geom::Point::<2>::splat(1.0); 100];
        let cfg = KnnDcConfig::new(3);
        let out = simple_parallel_knn::<2, 3>(&pts, &cfg);
        assert!(out.stats.forced_leaves >= 1);
        for i in 0..100 {
            assert_eq!(out.knn.radius_sq(i), 0.0);
        }
    }

    #[test]
    fn crossing_stats_expose_adversarial_structure() {
        // On two-slabs, the level that cuts along the slab axis is crossed
        // by a constant fraction of the balls.
        let pts = Workload::TwoSlabs.generate::<2>(1024, 10);
        let cfg = KnnDcConfig::new(1);
        let out = simple_parallel_knn::<2, 3>(&pts, &cfg);
        assert!(
            out.stats.max_crossing_fraction > 0.3,
            "expected Ω(n) crossing on two-slabs, got fraction {}",
            out.stats.max_crossing_fraction
        );
        // Uniform control: crossings are sublinear at every node.
        let upts = Workload::UniformCube.generate::<2>(1024, 11);
        let uout = simple_parallel_knn::<2, 3>(&upts, &cfg);
        assert!(
            uout.stats.max_crossing_fraction < out.stats.max_crossing_fraction,
            "uniform {} vs slabs {}",
            uout.stats.max_crossing_fraction,
            out.stats.max_crossing_fraction
        );
    }

    #[test]
    fn depth_is_polylog() {
        let pts = Workload::UniformCube.generate::<2>(4096, 12);
        let cfg = KnnDcConfig::new(1);
        let out = simple_parallel_knn::<2, 3>(&pts, &cfg);
        let log2n = (4096f64).log2();
        // Depth O(log² n) with modest constants (base-case adds ~base).
        let bound = 40.0 * log2n * log2n;
        assert!(
            (out.cost.depth as f64) < bound,
            "depth {} vs bound {bound}",
            out.cost.depth
        );
        assert!(out.stats.height as f64 <= 3.0 * log2n);
    }

    #[test]
    fn try_variant_rejects_invalid_inputs() {
        use crate::SepdcError;
        let mut pts = Workload::UniformCube.generate::<2>(80, 14);
        let cfg = KnnDcConfig::new(2);
        assert!(try_simple_parallel_knn::<2, 3>(&pts, &cfg).is_ok());
        assert!(matches!(
            try_simple_parallel_knn::<2, 3>(&pts, &KnnDcConfig::new(0)),
            Err(SepdcError::InvalidK { k: 0 })
        ));
        pts[7].0[0] = f64::NAN;
        assert!(matches!(
            try_simple_parallel_knn::<2, 3>(&pts, &cfg),
            Err(SepdcError::NonFinitePoint { idx: 7 })
        ));
    }

    #[test]
    #[should_panic(expected = "simple_parallel_knn: invalid k = 0")]
    fn infallible_wrapper_panics_with_typed_message() {
        let pts = Workload::UniformCube.generate::<2>(10, 15);
        let _ = simple_parallel_knn::<2, 3>(&pts, &KnnDcConfig::new(0));
    }

    #[test]
    fn explicit_max_depth_is_strict() {
        use crate::SepdcError;
        let pts = Workload::UniformCube.generate::<2>(900, 16);
        let cfg = KnnDcConfig {
            max_depth: Some(1),
            ..KnnDcConfig::new(1)
        };
        assert!(matches!(
            try_simple_parallel_knn::<2, 3>(&pts, &cfg),
            Err(SepdcError::RecursionDepthExceeded { limit: 1 })
        ));
        let cfg_ok = KnnDcConfig {
            max_depth: Some(64),
            ..KnnDcConfig::new(1)
        };
        let out = try_simple_parallel_knn::<2, 3>(&pts, &cfg_ok).unwrap();
        out.knn
            .same_distances(&brute_force_knn(&pts, 1), 1e-9)
            .unwrap();
        assert_eq!(out.stats.depth_forced_leaves, 0);
        assert_eq!(out.stats.degenerate_splits, 0);
    }

    #[test]
    fn run_report_is_populated() {
        let pts = Workload::UniformCube.generate::<2>(1500, 17);
        let cfg = KnnDcConfig::new(2);
        let out = simple_parallel_knn::<2, 3>(&pts, &cfg);
        let r = &out.report;
        assert_eq!(r.algo, "simple");
        assert_eq!((r.dim, r.n, r.k), (2, 1500, 2));
        assert!(r.wall_ms > 0.0);
        assert_eq!(
            r.counter("stats.base_leaves"),
            Some(out.stats.base_leaves as f64)
        );
        assert_eq!(r.counter("cost.work"), Some(out.cost.work as f64));
        // The simple algorithm corrects through the query structure at
        // every internal node, so the punt-correction phase is hot.
        assert!(r.phase("punt-correction").unwrap().calls > 0);
        assert_eq!(
            r.depth.iter().map(|d| d.leaves).sum::<u64>() as usize,
            out.stats.base_leaves
        );
        assert_eq!(
            r.depth.iter().map(|d| d.crossing).sum::<u64>(),
            out.stats.total_crossing
        );
        let back = crate::report::RunReport::from_json(&r.to_json()).unwrap();
        assert_eq!(&back, r);
    }

    #[test]
    fn deterministic_given_seed() {
        let pts = Workload::Clusters.generate::<2>(500, 13);
        let cfg = KnnDcConfig::new(2).with_seed(99);
        let a = simple_parallel_knn::<2, 3>(&pts, &cfg);
        let b = simple_parallel_knn::<2, 3>(&pts, &cfg);
        a.knn.same_distances(&b.knn, 0.0).unwrap();
        assert_eq!(a.stats, b.stats);
    }
}
