//! Soundness, parity, and certificate tests for the mixed-precision
//! filtering tier and the opt-in (1+ε)-approximation mode.
//!
//! Three contracts are pinned here (DESIGN.md §17):
//!
//! 1. **Bound soundness.** The certified f32 lower bound can never exceed
//!    the exact f64 distance: `lb(d32) ≤ d64` for every candidate whose
//!    exact distance is a number — including subnormal, huge, and
//!    raw-bit-pattern coordinates. This is the property that makes an f32
//!    reject safe; it is fuzzed adversarially, not just sampled.
//! 2. **Tier parity.** With ε = 0, the mixed tier returns byte-identical
//!    answers to the exact tier on every algorithm that carries the tier
//!    (§6 parallel, §5 simple, kd-tree baseline), and the
//!    `unsafe_margin_hits` counter (observed bound violations) stays zero.
//! 3. **ε certificate.** With ε > 0 the answers may drift, but the drift
//!    measured against the brute-force oracle stays within the certificate
//!    bound: per-rank relative distance error ≤ ε and no short lists.

use proptest::prelude::*;
use sepdc::core::{
    brute_force_knn, parallel_knn, simple_parallel_knn, try_kdtree_all_knn_with, KnnDcConfig,
    KnnResult, Precision,
};
use sepdc::geom::point::Point;
use sepdc::geom::soa::{FilterStats, SoaPoints};
use sepdc::workloads::Workload;

/// Coordinates as raw bit patterns: mostly finite grid values, with a
/// tail of special values and fully random bits (same idiom as
/// `proptest_soa_kernels.rs`; the vendored proptest has no `prop_oneof`).
fn raw_coord() -> impl Strategy<Value = f64> {
    (0u32..12, any::<u64>()).prop_map(|(sel, bits)| match sel {
        0..=5 => ((bits % 32) as f64 - 16.0) * 0.5, // coarse grid
        6 => f64::NAN,
        7 => f64::INFINITY,
        8 => f64::NEG_INFINITY,
        9 => -0.0,
        10 => f64::MIN_POSITIVE / 2.0, // subnormal
        _ => f64::from_bits(bits),     // arbitrary raw bits
    })
}

/// A total, bit-exact fingerprint of one answer set.
fn fingerprint(knn: &KnnResult) -> Vec<Vec<(u64, u32)>> {
    (0..knn.len())
        .map(|i| {
            knn.neighbors(i)
                .iter()
                .map(|n| (n.dist_sq.to_bits(), n.idx))
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Adversarial bound soundness: for arbitrary raw-bit coordinates the
    /// certified lower bound never exceeds the exact distance whenever the
    /// exact distance is comparable (non-NaN). NaN/overflowed f32 lanes
    /// must map to `-inf` (never reject).
    #[test]
    fn f32_lower_bound_is_sound_on_raw_bits(
        vals in proptest::collection::vec(raw_coord(), 3..96),
        q_vals in proptest::collection::vec(raw_coord(), 3..4),
    ) {
        let n = vals.len() / 3;
        let pts: Vec<Point<3>> = (0..n)
            .map(|i| Point::from([vals[3 * i], vals[3 * i + 1], vals[3 * i + 2]]))
            .collect();
        let q = Point::from([q_vals[0], q_vals[1], q_vals[2]]);
        let soa = SoaPoints::from_points(&pts);
        let bound = soa.f32_bound(&q);

        let ids: Vec<u32> = (0..n as u32).collect();
        let mut d32s = vec![0.0f32; n];
        soa.dist_sq_f32_gather(&q, &ids, &mut d32s);
        for (i, &d32) in d32s.iter().enumerate() {
            let d64 = q.dist_sq(&pts[i]);
            let lb = bound.lower_bound(d32);
            if !d32.is_finite() {
                prop_assert_eq!(lb, f64::NEG_INFINITY, "non-finite d32 must never reject");
            }
            if !d64.is_nan() {
                prop_assert!(
                    lb <= d64,
                    "bound violated at {}: lb {} > d64 {} (d32 {})",
                    i, lb, d64, d32
                );
            }
        }
    }

    /// Subnormal regime: coordinates so small that their squares flush to
    /// zero in f32. The SLACK_FLOOR term must keep the bound sound (lb ≤ 0
    /// is required since d32 = 0 carries no information).
    #[test]
    fn f32_lower_bound_is_sound_on_subnormals(
        scales in proptest::collection::vec(0u32..40, 2..48),
        q_scale in 0u32..40,
    ) {
        let tiny = |s: u32| f64::MIN_POSITIVE * (s as f64 + 0.5) / 8.0;
        let pts: Vec<Point<2>> = scales
            .iter()
            .map(|&s| Point::from([tiny(s), -tiny(s / 2 + 1)]))
            .collect();
        let q = Point::from([tiny(q_scale), tiny(q_scale + 1)]);
        let soa = SoaPoints::from_points(&pts);
        let bound = soa.f32_bound(&q);
        let ids: Vec<u32> = (0..pts.len() as u32).collect();
        let mut d32s = vec![0.0f32; pts.len()];
        soa.dist_sq_f32_gather(&q, &ids, &mut d32s);
        for (i, &d32) in d32s.iter().enumerate() {
            let d64 = q.dist_sq(&pts[i]);
            prop_assert!(
                bound.lower_bound(d32) <= d64,
                "subnormal bound violated at {i}"
            );
        }
    }

    /// Tier parity, end to end: exact and mixed agree bit-for-bit on the
    /// §6 recursion, the §5 recursion, and the kd baseline, and no bound
    /// violation is ever observed.
    #[test]
    fn tiers_are_byte_identical_end_to_end(
        selector in 0u32..4,
        n in 60usize..220,
        seed in 0u64..1 << 40,
    ) {
        let w = match selector % 4 {
            0 => Workload::UniformCube,
            1 => Workload::Clusters,
            2 => Workload::SphereShell,
            _ => Workload::NoisyLine,
        };
        let points = w.generate::<2>(n, seed);
        let k = 3;
        let exact_cfg = KnnDcConfig::new(k).with_seed(seed).with_precision(Precision::Exact);
        let mixed_cfg = KnnDcConfig::new(k).with_seed(seed).with_precision(Precision::Mixed);

        let e6 = parallel_knn::<2, 3>(&points, &exact_cfg);
        let m6 = parallel_knn::<2, 3>(&points, &mixed_cfg);
        prop_assert_eq!(fingerprint(&e6.knn), fingerprint(&m6.knn), "§6 tier drift");
        prop_assert_eq!(m6.meter.unsafe_margin_hits, 0, "§6 bound violation");

        let e5 = simple_parallel_knn::<2, 3>(&points, &exact_cfg);
        let m5 = simple_parallel_knn::<2, 3>(&points, &mixed_cfg);
        prop_assert_eq!(fingerprint(&e5.knn), fingerprint(&m5.knn), "§5 tier drift");

        let (ek, es) = try_kdtree_all_knn_with(&points, k, Precision::Exact).unwrap();
        let (mk, ms) = try_kdtree_all_knn_with(&points, k, Precision::Mixed).unwrap();
        prop_assert_eq!(fingerprint(&ek), fingerprint(&mk), "kd tier drift");
        prop_assert_eq!(es, FilterStats::default(), "exact kd touched the filter");
        prop_assert_eq!(ms.unsafe_margin_hits, 0, "kd bound violation");

        // The exact §6/§5 paths also equal the oracle (existing contract),
        // so tier parity transitively pins mixed == brute force.
        prop_assert_eq!(
            fingerprint(&e6.knn),
            fingerprint(&brute_force_knn(&points, k)),
            "§6 exact vs oracle"
        );
    }

    /// ε certificate: the approximate answers drift within the certified
    /// bound against the brute-force oracle — per-rank relative distance
    /// error ≤ ε, full-length lists, and the certificate's own exact-run
    /// comparison is clean at ε = 0.
    #[test]
    fn epsilon_mode_error_is_bounded_and_certified(
        n in 120usize..300,
        seed in 0u64..1 << 40,
    ) {
        let eps = 0.5;
        let points = Workload::Clusters.generate::<2>(n, seed);
        let k = 3;
        let cfg = KnnDcConfig::new(k).with_seed(seed).with_epsilon(eps);
        let approx = parallel_knn::<2, 3>(&points, &cfg);
        let oracle = brute_force_knn(&points, k);
        let cert = approx.knn.error_certificate(&oracle);
        prop_assert!(
            cert.within(eps),
            "certificate out of bound: max_rel_error {} short_ranks {}",
            cert.max_rel_error, cert.short_ranks
        );
        prop_assert_eq!(cert.compared_entries, (n * k) as u64);

        // ε = 0 in the same configuration is the exact path: certificate
        // against the oracle is identically clean.
        let exact = parallel_knn::<2, 3>(&points, &cfg.with_epsilon(0.0));
        let clean = exact.knn.error_certificate(&oracle);
        prop_assert_eq!(clean.max_rel_error, 0.0);
        prop_assert_eq!(clean.mismatched_entries, 0);
        prop_assert_eq!(clean.short_ranks, 0);
    }
}

/// ε-mode must actually *use* its freedom somewhere: across a seed sweep
/// the certificate is nonzero at least once (the relaxation changed an
/// answer) while every run stays within the bound. A sweep (rather than
/// one pinned seed) keeps the test robust to splitter evolution.
#[test]
fn epsilon_mode_produces_nonzero_bounded_certificates() {
    let eps = 0.5;
    let k = 4;
    let mut saw_drift = false;
    for seed in 0..24u64 {
        let points = Workload::Clusters.generate::<2>(500, seed);
        let cfg = KnnDcConfig::new(k).with_seed(seed).with_epsilon(eps);
        let approx = parallel_knn::<2, 3>(&points, &cfg);
        let oracle = brute_force_knn(&points, k);
        let cert = approx.knn.error_certificate(&oracle);
        assert!(
            cert.within(eps),
            "seed {seed}: certificate out of bound: {cert:?}"
        );
        if cert.max_rel_error > 0.0 {
            saw_drift = true;
        }
    }
    assert!(
        saw_drift,
        "ε = {eps} never changed any answer across the sweep — the \
         relaxation is not exercising its freedom"
    );
}
