//! # sepdc-separator
//!
//! Random geometric separators — the dividing machinery of the paper.
//!
//! * [`mttv`] — the Miller–Teng–Thurston–Vavasis **Unit Time Sphere
//!   Separator Algorithm** (Section 2.1 of the paper): constant-size random
//!   sample, approximate centerpoint of the stereographic lift, conformal
//!   normalization, uniform random great circle, pulled back to a sphere or
//!   hyperplane in the input space. Constant work per candidate after the
//!   sample is drawn.
//! * [`hyperplane_cut`] — Bentley-style median hyperplane cuts, the baseline
//!   the paper improves on.
//! * [`quality`] — split ratios, intersection numbers `ι_B(S)`, and the
//!   "good separator" acceptance predicate.
//! * [`search`] — the retry loop ("iteratively apply the unit-time algorithm
//!   until a good separator is found") with a deterministic median-cut
//!   fallback so non-adversarial callers always make progress.
//! * [`config`] — all constants (`ε`, `δ`, sample sizes, retry caps) with
//!   paper-faithful defaults.

#![warn(missing_docs)]

pub mod config;
pub mod hyperplane_cut;
pub mod mttv;
pub mod quality;
pub mod search;

pub use config::SeparatorConfig;
pub use quality::{delta_default, intersection_number, split_counts, SplitCounts};
pub use search::{
    candidate_seed, find_good_separator, find_good_separator_par, FoundSeparator, SearchOutcome,
};
