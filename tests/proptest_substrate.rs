//! Property tests for the substrate added around the core reproduction:
//! bounding boxes, determinant predicates, scan-based sorting and
//! selection.

use proptest::prelude::*;
use sepdc::geom::aabb::Aabb;
use sepdc::geom::predicates::{in_circumsphere, orientation, Orientation};
use sepdc::geom::{Ball, Point, Sphere};
use sepdc::scan::selection::{k_smallest, select_rank, select_rank_fr};
use sepdc::scan::sort::{radix_sort_pairs, sort_indices, split_sort_u64};

fn coord() -> impl Strategy<Value = f64> {
    (-16i32..16).prop_map(|x| x as f64 * 0.25)
}

fn point2() -> impl Strategy<Value = Point<2>> {
    [coord(), coord()].prop_map(Point::from)
}

proptest! {
    #[test]
    fn aabb_contains_its_points_and_distances_vanish_inside(
        pts in proptest::collection::vec(point2(), 1..50),
        probe in point2(),
    ) {
        let b = Aabb::of_points(&pts);
        for p in &pts {
            prop_assert!(b.contains(p));
            prop_assert_eq!(b.dist_sq(p), 0.0);
        }
        // dist_sq is zero exactly on containment.
        prop_assert_eq!(b.contains(&probe), b.dist_sq(&probe) == 0.0);
        // A ball centered at the probe with radius ≥ dist reaches the box.
        let d = b.dist_sq(&probe).sqrt();
        prop_assert!(b.intersects_ball(&Ball::new(probe, d + 1e-9)));
    }

    #[test]
    fn aabb_may_cross_is_conservative_for_spheres(
        pts in proptest::collection::vec(point2(), 2..40),
        c in point2(),
        r in 0.1f64..8.0,
    ) {
        // Soundness: if any two input points are on opposite sides of the
        // sphere, the bounding box must be flagged as possibly crossing.
        let b = Aabb::of_points(&pts);
        let s = Sphere::new(c, r);
        let any_in = pts.iter().any(|p| s.signed_distance(p) < 0.0);
        let any_out = pts.iter().any(|p| s.signed_distance(p) > 0.0);
        if any_in && any_out {
            prop_assert!(b.may_cross(&s.into()));
        }
    }

    #[test]
    fn orientation_is_antisymmetric(a in point2(), b in point2(), c in point2()) {
        let o1 = orientation(&[a, b, c], 1e-12);
        let o2 = orientation(&[a, c, b], 1e-12);
        match (o1, o2) {
            (Orientation::Positive, x) => prop_assert_eq!(x, Orientation::Negative),
            (Orientation::Negative, x) => prop_assert_eq!(x, Orientation::Positive),
            (Orientation::Degenerate, x) => prop_assert_eq!(x, Orientation::Degenerate),
        }
    }

    #[test]
    fn in_circumsphere_matches_explicit_circumsphere(
        a in point2(), b in point2(), c in point2(), q in point2(),
    ) {
        if let (Some(s), Some(pred)) = (
            Sphere::circumsphere(&[a, b, c], 1e-9),
            in_circumsphere(&[a, b, c], &q, 1e-9),
        ) {
            let sd = s.signed_distance(&q);
            // Skip near-surface cases where either method may round.
            prop_assume!(sd.abs() > 1e-6 * (1.0 + s.radius));
            prop_assert_eq!(pred, sd < 0.0);
        }
    }

    #[test]
    fn radix_and_split_sorts_agree_with_std(keys in proptest::collection::vec(0u64..1_000_000, 0..400)) {
        let mut expected = keys.clone();
        expected.sort_unstable();
        prop_assert_eq!(split_sort_u64(&keys), expected.clone());
        let mut pairs: Vec<(u64, u32)> = keys.iter().enumerate().map(|(i, &k)| (k, i as u32)).collect();
        radix_sort_pairs(&mut pairs);
        let got: Vec<u64> = pairs.iter().map(|p| p.0).collect();
        prop_assert_eq!(got, expected);
        // sort_indices is a permutation achieving sorted order.
        let idx = sort_indices(&keys);
        let mut seen = vec![false; keys.len()];
        for &i in &idx {
            prop_assert!(!seen[i as usize]);
            seen[i as usize] = true;
        }
    }

    #[test]
    fn selections_agree_with_sorting(
        xs in proptest::collection::vec(-1000.0f64..1000.0, 1..500),
        rank_frac in 0.0f64..1.0,
        seed in 0u64..1000,
    ) {
        let rank = ((xs.len() - 1) as f64 * rank_frac) as usize;
        let mut sorted = xs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut rng = rand::SeedableRng::seed_from_u64(seed);
        let rng: &mut rand_chacha::ChaCha8Rng = &mut rng;
        prop_assert_eq!(select_rank(&xs, rank, rng).value, sorted[rank]);
        prop_assert_eq!(select_rank_fr(&xs, rank, rng).value, sorted[rank]);
        let k = rank + 1;
        prop_assert_eq!(k_smallest(&xs, k, rng), sorted[..k].to_vec());
    }
}
