//! The separator-based search structure for the neighborhood query problem
//! (Section 3 of the paper).
//!
//! Given a `k`-ply neighborhood system `B`, build a binary tree: each
//! internal node stores a sphere separator `S` of the ball *centers*; the
//! left subtree indexes `B_I(S) ∪ B_O(S)` (balls meeting the closed
//! interior) and the right subtree `B_E(S) ∪ B_O(S)` (balls meeting the
//! closed exterior) — crossing balls are duplicated into both. A query
//! point descends by its side of each separator (surface ties go left, the
//! paper's convention) and scans one leaf.
//!
//! Costs (Lemma 3.1): height `O(log n)`, leaves `O(n / m₀)`, total space
//! `O(n)`, query `O(log n + m₀)`; parallel construction in `O(log n)`
//! rounds w.h.p. (Theorem 3.1).

use crate::config::{eps_cover_scale, Precision};
use crate::error::{validate_points, SepdcError};
use crate::report::{cost_counters, Phase, RunRecorder, RunReport};
use crate::seeding::child_seed;
use crate::splitter::{splitter_for, SplitterKind};
use rayon::prelude::*;
use sepdc_geom::ball::Ball;
use sepdc_geom::point::Point;
use sepdc_geom::shape::Separator;
use sepdc_geom::soa::{FilterStats, SoaBalls};
use sepdc_scan::CostProfile;
use sepdc_separator::{SearchOutcome, SeparatorConfig};

/// Minimum node size before the centers gather and the ball-routing side
/// tests run in parallel. Both parallel paths are positionally identical
/// to their serial twins, so the cutoff moves wall-clock only.
const ROUTE_PAR_CUTOFF: usize = 1 << 14;

/// Build parameters for the query structure.
#[derive(Clone, Copy, Debug)]
pub struct QueryTreeConfig {
    /// Leaf capacity `m₀`. The paper requires `m₀^μ ≤ ((1-δ)/2)·m₀` for
    /// the recurrences of Lemma 3.1; with the default `δ, μ` this holds
    /// for `m₀ ≥ ~150`, but smaller leaves are fine in practice and only
    /// affect constants. The default trades a slightly taller tree for
    /// cheaper leaf scans.
    pub leaf_size: usize,
    /// Separator search configuration.
    pub separator: SeparatorConfig,
    /// Which split-decision backend drives construction
    /// ([`crate::splitter`]). The default [`SplitterKind::Random`] is the
    /// paper's engine; recorded in snapshot metadata so a loaded tree
    /// remembers how it was built.
    pub splitter: SplitterKind,
    /// Subtree size below which construction stops forking rayon tasks.
    pub parallel_cutoff: usize,
    /// Whether to record build phase timings and the per-depth histogram
    /// into [`QueryTree::run_report`]. Defaults to `false`: the Section 5/6
    /// punt paths build throwaway query trees whose time is already
    /// attributed to their caller's `punt-correction` phase, so per-node
    /// instrumentation inside those builds would only add overhead.
    pub record: bool,
    /// Distance-evaluation tier for the leaf cover scans (DESIGN.md §17).
    /// [`Precision::Mixed`] (the default) pre-rejects candidates through the
    /// f32 shadow kernels with a certified lower bound and confirms only
    /// survivors in f64 — answers stay byte-identical to
    /// [`Precision::Exact`].
    pub precision: Precision,
    /// Cover-filter relaxation ε ∈ [0, 1]. When nonzero, leaf scans may
    /// skip balls whose squared radius exceeds the probe distance by less
    /// than a `(1+ε)²` factor; skips are counted in the filter stats so the
    /// relaxation stays observable. `0.0` (default) is the exact predicate.
    pub epsilon: f64,
}

impl Default for QueryTreeConfig {
    fn default() -> Self {
        QueryTreeConfig {
            leaf_size: 48,
            separator: SeparatorConfig::default(),
            splitter: SplitterKind::Random,
            parallel_cutoff: 4096,
            record: false,
            precision: Precision::default(),
            epsilon: 0.0,
        }
    }
}

/// Tree node. Crate-visible (not public API) so the
/// [`snapshot`](crate::snapshot) module can flatten and reconstruct the
/// boxed tree without exposing its shape to callers.
pub(crate) enum QNode<const D: usize> {
    Internal {
        sep: Separator<D>,
        left: Box<QNode<D>>,
        right: Box<QNode<D>>,
    },
    Leaf {
        /// Indices into the original ball array.
        ball_ids: Vec<u32>,
    },
}

/// Structural statistics, the measurable side of Lemma 3.1.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueryTreeStats {
    /// Tree height (edges on the longest root-leaf path).
    pub height: usize,
    /// Number of leaves.
    pub leaves: usize,
    /// Number of internal nodes.
    pub internals: usize,
    /// Total ball references across leaves (the `O(n)` space bound).
    pub stored_balls: usize,
    /// Unit-time separator candidates drawn during construction.
    pub candidates: u64,
    /// Nodes where the deterministic fallback cut was used.
    pub fallbacks: usize,
    /// Nodes where no separator could split and the node became an
    /// oversized leaf.
    pub forced_leaves: usize,
}

/// The search structure.
pub struct QueryTree<const D: usize> {
    root: QNode<D>,
    balls: Vec<Ball<D>>,
    /// Columnar centers + squared radii for the batched leaf cover tests.
    soa: SoaBalls<D>,
    stats: QueryTreeStats,
    cost: CostProfile,
    report: RunReport,
    /// Which split-decision backend built this tree (round-tripped through
    /// snapshots).
    splitter: SplitterKind,
    /// Distance tier for leaf cover scans (round-tripped through
    /// snapshots).
    precision: Precision,
    /// Cover-filter relaxation ε (round-tripped through snapshots).
    epsilon: f64,
}

struct BuildCtx<'a, const D: usize> {
    balls: &'a [Ball<D>],
    cfg: &'a QueryTreeConfig,
    obs: &'a RunRecorder,
}

/// Outcome of one recursive build: node plus accumulated stats/cost.
struct Built<const D: usize> {
    node: QNode<D>,
    stats: QueryTreeStats,
    cost: CostProfile,
}

impl<const D: usize> QueryTree<D> {
    /// Build the structure over a neighborhood system. `E` must be `D + 1`
    /// (stereographic lift dimension).
    ///
    /// Deterministic given `seed`. Construction is parallel (rayon join on
    /// the two subtrees), mirroring *Parallel Neighborhood Querying*.
    ///
    /// ```
    /// use sepdc_core::{QueryTree, QueryTreeConfig};
    /// use sepdc_geom::{Ball, Point};
    ///
    /// let balls: Vec<Ball<2>> = (0..200)
    ///     .map(|i| Ball::new(Point::from([(i % 20) as f64, (i / 20) as f64]), 0.6))
    ///     .collect();
    /// let tree = QueryTree::build::<3>(&balls, QueryTreeConfig::default(), 7);
    /// let hits = tree.covering(&Point::from([5.0, 5.0]));
    /// assert!(hits.contains(&105)); // the ball centered exactly there
    /// ```
    pub fn build<const E: usize>(balls: &[Ball<D>], cfg: QueryTreeConfig, seed: u64) -> Self {
        Self::try_build::<E>(balls, cfg, seed).unwrap_or_else(|e| panic!("QueryTree::build: {e}"))
    }

    /// Total variant of [`Self::build`]: rejects balls with non-finite
    /// centers or non-finite/negative radii ([`SepdcError::NonFiniteBall`])
    /// and a zero `leaf_size` ([`SepdcError::InvalidConfig`]) instead of
    /// panicking or descending into degenerate separator searches.
    pub fn try_build<const E: usize>(
        balls: &[Ball<D>],
        cfg: QueryTreeConfig,
        seed: u64,
    ) -> Result<Self, SepdcError> {
        assert_eq!(E, D + 1, "QueryTree::build requires E = D + 1");
        if cfg.leaf_size == 0 {
            return Err(SepdcError::InvalidConfig {
                param: "leaf_size",
                value: 0.0,
            });
        }
        if !cfg.epsilon.is_finite() || !(0.0..=1.0).contains(&cfg.epsilon) {
            return Err(SepdcError::InvalidConfig {
                param: "epsilon",
                value: cfg.epsilon,
            });
        }
        if let Some(idx) = balls
            .iter()
            .position(|b| !b.center.is_finite() || !b.radius.is_finite() || b.radius < 0.0)
        {
            return Err(SepdcError::NonFiniteBall { idx });
        }
        let t_run = std::time::Instant::now();
        let ids: Vec<u32> = (0..balls.len() as u32).collect();
        // Depth cap: accepted δ-splits keep the height O(log n); the
        // recorder clamps anything deeper into its last cell.
        let depth_cap = 8 * ((balls.len().max(2) as f64).log2().ceil() as usize) + 64;
        let obs = RunRecorder::new(cfg.record, depth_cap);
        let ctx = BuildCtx {
            balls,
            cfg: &cfg,
            obs: &obs,
        };
        let built = build_rec::<D, E>(&ctx, ids, seed, 0);
        let mut counters = vec![
            ("stats.height".to_string(), built.stats.height as f64),
            ("stats.leaves".to_string(), built.stats.leaves as f64),
            ("stats.internals".to_string(), built.stats.internals as f64),
            (
                "stats.stored_balls".to_string(),
                built.stats.stored_balls as f64,
            ),
            (
                "stats.candidates".to_string(),
                built.stats.candidates as f64,
            ),
            ("stats.fallbacks".to_string(), built.stats.fallbacks as f64),
            (
                "stats.forced_leaves".to_string(),
                built.stats.forced_leaves as f64,
            ),
        ];
        counters.extend(cost_counters(&built.cost));
        let report = RunReport {
            version: crate::report::RUN_REPORT_VERSION,
            algo: "query-build".to_string(),
            dim: D,
            n: balls.len(),
            k: 0,
            seed,
            threads: rayon::current_num_threads(),
            wall_ms: 0.0,
            config: vec![
                ("leaf_size".to_string(), cfg.leaf_size as f64),
                ("parallel_cutoff".to_string(), cfg.parallel_cutoff as f64),
                ("separator.epsilon".to_string(), cfg.separator.epsilon),
                ("separator.tol".to_string(), cfg.separator.tol),
                (
                    "separator.max_attempts".to_string(),
                    cfg.separator.max_attempts as f64,
                ),
                ("record".to_string(), f64::from(u8::from(cfg.record))),
                ("splitter".to_string(), cfg.splitter.code() as f64),
                ("precision".to_string(), cfg.precision.code() as f64),
                ("epsilon".to_string(), cfg.epsilon),
            ],
            phases: obs.phases(),
            counters,
            depth: obs.depth_rows(),
        }
        .finish(t_run.elapsed());
        Ok(QueryTree {
            root: built.node,
            balls: balls.to_vec(),
            soa: SoaBalls::from_balls(balls),
            stats: built.stats,
            cost: built.cost,
            report,
            splitter: cfg.splitter,
            precision: cfg.precision,
            epsilon: cfg.epsilon,
        })
    }

    /// Indices of all balls whose *closed* body contains `p`.
    ///
    /// Panics on a non-finite probe; use [`QueryTree::try_covering`] for
    /// the typed-error path.
    pub fn covering(&self, p: &Point<D>) -> Vec<u32> {
        self.try_covering(p).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Indices of all balls whose *open interior* contains `p` — the
    /// predicate the correction step needs (a point strictly inside a
    /// k-neighborhood ball invalidates its radius).
    ///
    /// Panics on a non-finite probe; use
    /// [`QueryTree::try_covering_interior`] for the typed-error path.
    pub fn covering_interior(&self, p: &Point<D>) -> Vec<u32> {
        self.try_covering_interior(p)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`QueryTree::covering`]: rejects a non-finite probe with
    /// [`SepdcError::NonFinitePoint`] instead of descending on a separator
    /// predicate that NaN poisons — the same validation
    /// [`QueryTree::try_serve`] applies to every probe of a batch, so
    /// single-probe and batch paths agree on bad input.
    pub fn try_covering(&self, p: &Point<D>) -> Result<Vec<u32>, SepdcError> {
        validate_points(std::slice::from_ref(p))?;
        let mut out = Vec::new();
        self.covering_into(
            p,
            false,
            &mut Vec::new(),
            &mut Vec::new(),
            &mut out,
            &mut FilterStats::default(),
        );
        Ok(out)
    }

    /// Fallible [`QueryTree::covering_interior`] (see
    /// [`QueryTree::try_covering`] for the contract).
    pub fn try_covering_interior(&self, p: &Point<D>) -> Result<Vec<u32>, SepdcError> {
        validate_points(std::slice::from_ref(p))?;
        let mut out = Vec::new();
        self.covering_into(
            p,
            true,
            &mut Vec::new(),
            &mut Vec::new(),
            &mut out,
            &mut FilterStats::default(),
        );
        Ok(out)
    }

    /// Scratch-reusing cover query: appends to `out` the ids of all balls
    /// containing `p` (open interior when `open`), in leaf order, and
    /// returns the number of tree nodes visited. The leaf scan runs through
    /// the tiered [`SoaBalls`] kernel honoring the tree's precision tier
    /// and ε; `scratch32`/`scratch` are reusable distance buffers so batch
    /// callers ([`serve`](crate::serve), the punt correction) do no
    /// per-probe allocation, and `stats` accumulates the `precision.*`
    /// filter counters.
    pub(crate) fn covering_into(
        &self,
        p: &Point<D>,
        open: bool,
        scratch32: &mut Vec<f32>,
        scratch: &mut Vec<f64>,
        out: &mut Vec<u32>,
        stats: &mut FilterStats,
    ) -> usize {
        let (leaf, visited) = self.descend_counted(p);
        self.soa.filter_covering_tiered_into(
            p,
            leaf,
            open,
            self.precision.is_mixed(),
            eps_cover_scale(self.epsilon),
            scratch32,
            scratch,
            out,
            stats,
        );
        visited
    }

    /// The leaf list plus the number of tree nodes visited reaching it —
    /// the instrumented descent the [`serve`](crate::serve) engine uses to
    /// bill each probe's `O(log n + m₀)` cost without a second walk.
    pub(crate) fn descend_counted(&self, p: &Point<D>) -> (&[u32], usize) {
        let mut node = &self.root;
        let mut visited = 0;
        loop {
            visited += 1;
            match node {
                QNode::Leaf { ball_ids } => return (ball_ids, visited),
                QNode::Internal { sep, left, right } => {
                    node = if sep.side(p).routes_interior() {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }

    /// Columnar view of the indexed balls (the batched cover kernel).
    pub(crate) fn soa_balls(&self) -> &SoaBalls<D> {
        &self.soa
    }

    /// The root node, for snapshot flattening.
    pub(crate) fn root(&self) -> &QNode<D> {
        &self.root
    }

    /// The indexed balls, in id order.
    pub fn balls(&self) -> &[Ball<D>] {
        &self.balls
    }

    /// Reassemble a tree from snapshot-decoded parts. The caller
    /// ([`snapshot::load_query_tree`](crate::snapshot::load_query_tree))
    /// has already validated every id, range, and float; this constructor
    /// only stamps a fresh `algo = "query-load"` report so a loaded tree
    /// is observable like a built one.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_snapshot_parts(
        root: QNode<D>,
        balls: Vec<Ball<D>>,
        soa: SoaBalls<D>,
        stats: QueryTreeStats,
        cost: CostProfile,
        seed: u64,
        splitter: SplitterKind,
        precision: Precision,
        epsilon: f64,
        load_elapsed: std::time::Duration,
    ) -> Self {
        let mut counters = vec![
            ("stats.height".to_string(), stats.height as f64),
            ("stats.leaves".to_string(), stats.leaves as f64),
            ("stats.internals".to_string(), stats.internals as f64),
            ("stats.stored_balls".to_string(), stats.stored_balls as f64),
            ("stats.candidates".to_string(), stats.candidates as f64),
            ("stats.fallbacks".to_string(), stats.fallbacks as f64),
            (
                "stats.forced_leaves".to_string(),
                stats.forced_leaves as f64,
            ),
        ];
        counters.extend(cost_counters(&cost));
        let report = RunReport {
            version: crate::report::RUN_REPORT_VERSION,
            algo: "query-load".to_string(),
            dim: D,
            n: balls.len(),
            k: 0,
            seed,
            threads: rayon::current_num_threads(),
            wall_ms: 0.0,
            config: Vec::new(),
            phases: Vec::new(),
            counters,
            depth: Vec::new(),
        }
        .finish(load_elapsed);
        QueryTree {
            root,
            balls,
            soa,
            stats,
            cost,
            report,
            splitter,
            precision,
            epsilon,
        }
    }

    /// The split-decision backend this tree was built with (restored from
    /// metadata when the tree came from a snapshot).
    pub fn splitter(&self) -> SplitterKind {
        self.splitter
    }

    /// The distance-evaluation tier this tree's leaf scans run in
    /// (restored from metadata when the tree came from a snapshot).
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// The cover-filter relaxation ε this tree was built with (`0.0` =
    /// exact predicate).
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Number of tree nodes visited plus leaf balls scanned for `p` —
    /// the measured query cost `O(log n + m₀)`.
    pub fn query_cost(&self, p: &Point<D>) -> usize {
        let (leaf, visited) = self.descend_counted(p);
        visited + leaf.len()
    }

    /// Structural statistics.
    pub fn stats(&self) -> QueryTreeStats {
        self.stats
    }

    /// Work–depth profile of the (parallel) construction.
    pub fn build_cost(&self) -> CostProfile {
        self.cost
    }

    /// The construction's [`RunReport`] (`algo = "query-build"`). The
    /// per-depth histogram's `crossing` column counts the ball references
    /// *duplicated* into both subtrees at each level — exactly the crossing
    /// balls `B_O(S)` whose duplication drives the Lemma 3.1 space bound.
    /// Phase timings and the histogram are recorded only when
    /// [`QueryTreeConfig::record`] is set.
    pub fn run_report(&self) -> &RunReport {
        &self.report
    }

    /// Number of balls indexed.
    pub fn len(&self) -> usize {
        self.balls.len()
    }

    /// `true` when no balls are indexed.
    pub fn is_empty(&self) -> bool {
        self.balls.is_empty()
    }
}

fn leaf_stats(ids_len: usize, forced: bool) -> QueryTreeStats {
    QueryTreeStats {
        height: 0,
        leaves: 1,
        internals: 0,
        stored_balls: ids_len,
        candidates: 0,
        fallbacks: 0,
        forced_leaves: usize::from(forced),
    }
}

fn merge_stats(
    a: QueryTreeStats,
    b: QueryTreeStats,
    candidates: u64,
    fallback: bool,
) -> QueryTreeStats {
    QueryTreeStats {
        height: 1 + a.height.max(b.height),
        leaves: a.leaves + b.leaves,
        internals: 1 + a.internals + b.internals,
        stored_balls: a.stored_balls + b.stored_balls,
        candidates: a.candidates + b.candidates + candidates,
        fallbacks: a.fallbacks + b.fallbacks + usize::from(fallback),
        forced_leaves: a.forced_leaves + b.forced_leaves,
    }
}

fn build_rec<const D: usize, const E: usize>(
    ctx: &BuildCtx<'_, D>,
    ids: Vec<u32>,
    seed: u64,
    depth: usize,
) -> Built<D> {
    let m = ids.len();
    ctx.obs.node(depth);
    if m <= ctx.cfg.leaf_size {
        ctx.obs.leaf(depth);
        return Built {
            node: QNode::Leaf { ball_ids: ids },
            stats: leaf_stats(m, false),
            cost: CostProfile::round(m as u64),
        };
    }
    let t_split = ctx.obs.start();
    let centers: Vec<Point<D>> = if m >= ROUTE_PAR_CUTOFF {
        ids.par_iter()
            .map(|&i| ctx.balls[i as usize].center)
            .collect()
    } else {
        ids.iter().map(|&i| ctx.balls[i as usize].center).collect()
    };
    // Split decision through the configured backend; for the default
    // `RandomSphere` this is the speculative candidate sweep (lowest
    // acceptable index wins), timed as a sub-interval of the split —
    // identical output for any pool size.
    let sp = splitter_for::<D, E>(ctx.cfg.splitter);
    let found = ctx.obs.time(Phase::SeparatorSearch, || {
        sp.split(&centers, &ctx.cfg.separator, seed)
    });
    let Some(found) = found else {
        // Unsplittable (e.g. all centers identical): oversized leaf.
        ctx.obs.stop(Phase::Split, t_split);
        ctx.obs.leaf(depth);
        return Built {
            node: QNode::Leaf { ball_ids: ids },
            stats: leaf_stats(m, true),
            cost: CostProfile::round(m as u64),
        };
    };
    ctx.obs.add_candidates(depth, found.attempts as u64);
    let mut sep = found.separator;
    // Route balls: closed-interior contact goes left, closed-exterior goes
    // right; crossers go both ways (B₀ = B_I ∪ B_O, B₁ = B_E ∪ B_O). The
    // side tests are the expensive part; precompute them in parallel for
    // large nodes (order-preserving collect), then push serially so the
    // children receive ids in the identical order for every pool size.
    let route = |sep: &Separator<D>| -> (Vec<u32>, Vec<u32>) {
        let mut left_ids = Vec::new();
        let mut right_ids = Vec::new();
        if m >= ROUTE_PAR_CUTOFF {
            let sides: Vec<(bool, bool)> = ids
                .par_iter()
                .map(|&i| {
                    let b = &ctx.balls[i as usize];
                    (b.touches_interior_of(sep), b.touches_exterior_of(sep))
                })
                .collect();
            for (&i, &(l, r)) in ids.iter().zip(&sides) {
                debug_assert!(l || r, "ball reaches no side of the separator");
                if l {
                    left_ids.push(i);
                }
                if r {
                    right_ids.push(i);
                }
            }
        } else {
            for &i in &ids {
                let b = &ctx.balls[i as usize];
                let l = b.touches_interior_of(sep);
                let r = b.touches_exterior_of(sep);
                debug_assert!(l || r, "ball reaches no side of the separator");
                if l {
                    left_ids.push(i);
                }
                if r {
                    right_ids.push(i);
                }
            }
        }
        (left_ids, right_ids)
    };
    let (mut left_ids, mut right_ids) = route(&sep);
    if left_ids.len() >= m || right_ids.len() >= m {
        // No progress (every ball crosses): before giving up, let the
        // backend offer a deterministic second-chance cut, exactly as in
        // the Section 6 recursion.
        if let Some(rsep) = sp.rescue(&centers) {
            let (rl, rr) = route(&rsep);
            if rl.len() < m && rr.len() < m {
                sep = rsep;
                left_ids = rl;
                right_ids = rr;
            }
        }
    }
    ctx.obs.stop(Phase::Split, t_split);
    if left_ids.len() >= m || right_ids.len() >= m {
        // Still no progress: oversized leaf. With k-ply systems and good
        // separators this fires only on adversarial degenerate inputs.
        ctx.obs.leaf(depth);
        return Built {
            node: QNode::Leaf { ball_ids: ids },
            stats: leaf_stats(m, true),
            cost: CostProfile::round(m as u64),
        };
    }
    // Ball references duplicated into both subtrees = the crossing set
    // B_O(S) at this node.
    ctx.obs
        .add_crossing(depth, (left_ids.len() + right_ids.len() - m) as u64);
    let fallback = found.outcome == SearchOutcome::Fallback;
    let attempts = found.attempts as u64;
    // Path-derived sibling seeds (see [`crate::seeding`]): independent of
    // which thread builds which subtree.
    let (lseed, rseed) = (child_seed(seed, false), child_seed(seed, true));
    let (lb, rb) = if m > ctx.cfg.parallel_cutoff {
        rayon::join(
            || build_rec::<D, E>(ctx, left_ids, lseed, depth + 1),
            || build_rec::<D, E>(ctx, right_ids, rseed, depth + 1),
        )
    } else {
        (
            build_rec::<D, E>(ctx, left_ids, lseed, depth + 1),
            build_rec::<D, E>(ctx, right_ids, rseed, depth + 1),
        )
    };
    // Cost: the candidate rounds plus one scan (the split) at this node,
    // then the two children in parallel.
    let local = CostProfile::scan(m as u64).with_candidates(attempts);
    let cost = local.then(lb.cost.alongside(rb.cost));
    Built {
        node: QNode::Internal {
            sep,
            left: Box::new(lb.node),
            right: Box::new(rb.node),
        },
        stats: merge_stats(lb.stats, rb.stats, attempts, fallback),
        cost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force_knn;
    use crate::neighborhood::NeighborhoodSystem;
    use sepdc_workloads::Workload;

    fn knn_system(n: usize, k: usize, seed: u64) -> (Vec<Point<2>>, NeighborhoodSystem<2>) {
        let pts = Workload::UniformCube.generate::<2>(n, seed);
        let knn = brute_force_knn(&pts, k);
        let sys = NeighborhoodSystem::from_knn(&pts, &knn);
        (pts, sys)
    }

    #[test]
    fn covering_matches_linear_scan() {
        let (pts, sys) = knn_system(600, 2, 1);
        let tree = QueryTree::build::<3>(sys.balls(), QueryTreeConfig::default(), 42);
        for p in pts.iter().take(100) {
            let mut fast = tree.covering(p);
            fast.sort_unstable();
            let mut slow: Vec<u32> = sys
                .balls()
                .iter()
                .enumerate()
                .filter(|(_, b)| b.contains(p))
                .map(|(i, _)| i as u32)
                .collect();
            slow.sort_unstable();
            assert_eq!(fast, slow, "covering mismatch at {p:?}");
        }
    }

    #[test]
    fn covering_interior_matches_linear_scan() {
        let (pts, sys) = knn_system(400, 1, 2);
        let tree = QueryTree::build::<3>(sys.balls(), QueryTreeConfig::default(), 7);
        for p in pts.iter().take(80) {
            let mut fast = tree.covering_interior(p);
            fast.sort_unstable();
            let mut slow: Vec<u32> = sys
                .balls()
                .iter()
                .enumerate()
                .filter(|(_, b)| b.contains_interior(p))
                .map(|(i, _)| i as u32)
                .collect();
            slow.sort_unstable();
            assert_eq!(fast, slow);
        }
    }

    #[test]
    fn non_finite_probes_are_typed_errors_matching_batch_path() {
        let (_, sys) = knn_system(100, 1, 4);
        let tree = QueryTree::build::<3>(sys.balls(), QueryTreeConfig::default(), 5);
        for bad in [
            Point::<2>::from([f64::NAN, 0.0]),
            Point::from([0.0, f64::INFINITY]),
        ] {
            assert_eq!(
                tree.try_covering(&bad),
                Err(SepdcError::NonFinitePoint { idx: 0 })
            );
            assert_eq!(
                tree.try_covering_interior(&bad),
                Err(SepdcError::NonFinitePoint { idx: 0 })
            );
            // The batch path reports the same error for the same probe.
            let batch = tree.try_serve(
                &[bad],
                crate::serve::CoverPredicate::Closed,
                &crate::ServeConfig::default(),
            );
            assert_eq!(batch.err(), Some(SepdcError::NonFinitePoint { idx: 0 }));
        }
        // The infallible names still answer normal probes.
        let p = Point::from([0.5, 0.5]);
        assert_eq!(tree.covering(&p), tree.try_covering(&p).unwrap());
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn covering_panics_with_the_typed_message() {
        let (_, sys) = knn_system(50, 1, 6);
        let tree = QueryTree::build::<3>(sys.balls(), QueryTreeConfig::default(), 5);
        tree.covering(&Point::from([f64::NAN, 0.0]));
    }

    #[test]
    fn covering_works_for_off_sample_probes() {
        let (_, sys) = knn_system(500, 2, 3);
        let tree = QueryTree::build::<3>(sys.balls(), QueryTreeConfig::default(), 9);
        let probes = Workload::UniformCube.generate::<2>(200, 99);
        for p in &probes {
            let mut fast = tree.covering(p);
            fast.sort_unstable();
            let mut slow: Vec<u32> = sys
                .balls()
                .iter()
                .enumerate()
                .filter(|(_, b)| b.contains(p))
                .map(|(i, _)| i as u32)
                .collect();
            slow.sort_unstable();
            assert_eq!(fast, slow);
        }
    }

    #[test]
    fn height_is_logarithmic() {
        let (_, sys) = knn_system(2000, 1, 4);
        let tree = QueryTree::build::<3>(sys.balls(), QueryTreeConfig::default(), 11);
        let stats = tree.stats();
        let log2n = (2000f64).log2();
        assert!(
            (stats.height as f64) < 4.0 * log2n,
            "height {} too large vs log2(n) = {log2n:.1}",
            stats.height
        );
    }

    #[test]
    fn space_is_linear() {
        let (_, sys) = knn_system(3000, 1, 5);
        let tree = QueryTree::build::<3>(sys.balls(), QueryTreeConfig::default(), 13);
        let stats = tree.stats();
        // Lemma 3.1: stored balls = O(n). Allow a generous constant.
        assert!(
            stats.stored_balls < 6 * 3000,
            "stored {} not O(n)",
            stats.stored_balls
        );
        assert!(stats.leaves * tree_cfg_leaf() >= 3000, "leaves too few");
    }

    fn tree_cfg_leaf() -> usize {
        QueryTreeConfig::default().leaf_size
    }

    #[test]
    fn tiny_system_is_single_leaf() {
        let balls = vec![Ball::new(Point::<2>::origin(), 1.0); 5];
        let tree = QueryTree::build::<3>(&balls, QueryTreeConfig::default(), 1);
        let stats = tree.stats();
        assert_eq!(stats.leaves, 1);
        assert_eq!(stats.height, 0);
        assert_eq!(tree.covering(&Point::origin()).len(), 5);
    }

    #[test]
    fn identical_centers_forced_leaf() {
        let balls = vec![Ball::new(Point::<2>::splat(1.0), 0.5); 200];
        let tree = QueryTree::build::<3>(&balls, QueryTreeConfig::default(), 2);
        assert!(tree.stats().forced_leaves >= 1);
        assert_eq!(tree.covering(&Point::splat(1.0)).len(), 200);
        assert!(tree.covering(&Point::splat(9.0)).is_empty());
    }

    #[test]
    fn deterministic_given_seed() {
        let (_, sys) = knn_system(500, 1, 6);
        let a = QueryTree::build::<3>(sys.balls(), QueryTreeConfig::default(), 5);
        let b = QueryTree::build::<3>(sys.balls(), QueryTreeConfig::default(), 5);
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn build_cost_depth_scales_with_height() {
        let (_, sys) = knn_system(2000, 1, 7);
        let tree = QueryTree::build::<3>(sys.balls(), QueryTreeConfig::default(), 3);
        let cost = tree.build_cost();
        let stats = tree.stats();
        assert!(cost.depth as usize >= stats.height);
        assert!(cost.separator_candidates >= stats.internals as u64);
        // Work is near-linear-ish: O(n log n) with small constants here.
        assert!(cost.work < 80 * 2000 * 11);
    }

    #[test]
    fn build_report_records_depth_profile_when_enabled() {
        let (_, sys) = knn_system(2000, 1, 9);
        let cfg = QueryTreeConfig {
            record: true,
            ..QueryTreeConfig::default()
        };
        let tree = QueryTree::build::<3>(sys.balls(), cfg, 17);
        let r = tree.run_report();
        assert_eq!(r.algo, "query-build");
        assert_eq!(r.n, 2000);
        assert!(r.wall_ms > 0.0);
        // One root; per-level node totals equal internals + leaves.
        assert_eq!(r.depth[0].nodes, 1);
        let stats = tree.stats();
        let nodes: u64 = r.depth.iter().map(|d| d.nodes).sum();
        assert_eq!(nodes as usize, stats.internals + stats.leaves);
        let leaves: u64 = r.depth.iter().map(|d| d.leaves).sum();
        assert_eq!(leaves as usize, stats.leaves);
        // Duplicated (crossing) references account exactly for the space
        // blow-up beyond n.
        let crossing: u64 = r.depth.iter().map(|d| d.crossing).sum();
        assert_eq!(crossing as usize, stats.stored_balls - 2000);
        assert!(r.phase("split").unwrap().calls >= stats.internals as u64);
        assert_eq!(r.counter("stats.leaves"), Some(stats.leaves as f64));
        // Default config records nothing but still reports counters.
        let quiet = QueryTree::build::<3>(sys.balls(), QueryTreeConfig::default(), 17);
        assert!(quiet.run_report().depth.is_empty());
        assert!(quiet.run_report().phases.is_empty());
        assert_eq!(
            quiet.run_report().counter("stats.leaves"),
            Some(stats.leaves as f64)
        );
    }

    #[test]
    fn query_cost_is_logarithmic_plus_leaf() {
        let (pts, sys) = knn_system(4000, 1, 8);
        let cfg = QueryTreeConfig::default();
        let tree = QueryTree::build::<3>(sys.balls(), cfg, 21);
        let mut worst = 0;
        for p in pts.iter().take(200) {
            worst = worst.max(tree.query_cost(p));
        }
        let bound = 6 * (4000f64).log2() as usize + 8 * cfg.leaf_size;
        assert!(worst <= bound, "query cost {worst} > bound {bound}");
    }
}
