//! EXP-12 — ablations of the design choices DESIGN.md calls out.
//!
//! Four knobs, each swept in isolation on a fixed input:
//!
//! 1. **separator sample size** — the "constant" behind the unit-time
//!    claim: success probability and split quality vs candidate cost;
//! 2. **centerpoint effort** (iterated-Radon rounds) — quality of the
//!    conformal normalization;
//! 3. **punt slack** — the constant in the `m^μ` threshold: punt rate vs
//!    total depth of the §6 algorithm;
//! 4. **fast correction on/off** — forcing every correction through the
//!    query structure shows what the §6 machinery buys over §5-style
//!    correction while holding the sphere partition fixed.

use crate::harness::Table;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sepdc_core::{parallel_knn, KnnDcConfig};
use sepdc_geom::centerpoint::CenterpointOpts;
use sepdc_separator::{find_good_separator, SeparatorConfig};
use sepdc_workloads::Workload;

fn ablate_sample_size(table: &mut Table) {
    let pts = Workload::UniformCube.generate::<2>(1 << 14, 3);
    for sample in [16usize, 48, 128, 384] {
        let cfg = SeparatorConfig {
            sample_size: sample,
            ..Default::default()
        };
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let runs = 60;
        let mut attempts = 0usize;
        let mut ratio = 0.0;
        let t0 = std::time::Instant::now();
        for _ in 0..runs {
            let f = find_good_separator::<2, 3, _>(&pts, &cfg, &mut rng).unwrap();
            attempts += f.attempts;
            ratio += f.counts.ratio();
        }
        table.row(
            format!("sample={sample}"),
            vec![
                format!("{:.2}", attempts as f64 / runs as f64),
                format!("{:.3}", ratio / runs as f64),
                format!("{:.2}ms", t0.elapsed().as_secs_f64() * 1e3 / runs as f64),
            ],
        );
    }
}

fn ablate_centerpoint(table: &mut Table) {
    let pts = Workload::Clusters.generate::<2>(1 << 14, 5);
    for rounds in [1usize, 2, 4, 8] {
        let cfg = SeparatorConfig {
            centerpoint: CenterpointOpts {
                buffer_size: 96,
                rounds_factor: rounds,
            },
            ..Default::default()
        };
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let runs = 60;
        let mut attempts = 0usize;
        let mut ratio = 0.0;
        let t0 = std::time::Instant::now();
        for _ in 0..runs {
            let f = find_good_separator::<2, 3, _>(&pts, &cfg, &mut rng).unwrap();
            attempts += f.attempts;
            ratio += f.counts.ratio();
        }
        table.row(
            format!("radon-rounds×{rounds}"),
            vec![
                format!("{:.2}", attempts as f64 / runs as f64),
                format!("{:.3}", ratio / runs as f64),
                format!("{:.2}ms", t0.elapsed().as_secs_f64() * 1e3 / runs as f64),
            ],
        );
    }
}

fn ablate_punt_slack(table: &mut Table) {
    let pts = Workload::UniformCube.generate::<2>(1 << 15, 7);
    for slack in [0.5f64, 1.0, 2.0, 4.0, 16.0] {
        let cfg = KnnDcConfig {
            punt_slack: slack,
            ..KnnDcConfig::new(1)
        };
        let out = parallel_knn::<2, 3>(&pts, &cfg);
        let punts = out.stats.punts_threshold + out.stats.punts_marching;
        let total = punts + out.stats.fast_corrections;
        table.row(
            format!("punt_slack={slack}"),
            vec![
                format!("{:.1}%", 100.0 * punts as f64 / total.max(1) as f64),
                format!("{}", out.cost.depth),
                format!("{:.1}", out.cost.work as f64 / 1e6),
            ],
        );
    }
}

fn ablate_fast_correction(table: &mut Table) {
    let pts = Workload::UniformCube.generate::<2>(1 << 15, 9);
    // punt_slack = 0 forces the threshold to 0: every node punts to the
    // query structure — §5-style correction on the §6 sphere partition.
    for (label, slack) in [("fast-correction ON", 4.0f64), ("forced punting", 0.0)] {
        let cfg = KnnDcConfig {
            punt_slack: slack,
            ..KnnDcConfig::new(1)
        };
        let out = parallel_knn::<2, 3>(&pts, &cfg);
        let punts = out.stats.punts_threshold + out.stats.punts_marching;
        table.row(
            label,
            vec![
                format!("{:.1}%", {
                    let total = punts + out.stats.fast_corrections;
                    100.0 * punts as f64 / total.max(1) as f64
                }),
                format!("{}", out.cost.depth),
                format!("{:.1}", out.cost.work as f64 / 1e6),
            ],
        );
    }
}

fn ablate_selection_rounds(table: &mut Table) {
    use sepdc_scan::selection::{select_rank, select_rank_fr};
    let mut rng = ChaCha8Rng::seed_from_u64(31);
    for e in [12u32, 16, 20, 22] {
        let n = 1usize << e;
        // Continuous pseudo-random values.
        let mut s = 0x2545F4914F6CDD1Du64 | 1;
        let xs: Vec<f64> = (0..n)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                s as f64 / u64::MAX as f64
            })
            .collect();
        let trials = 20;
        let mut qs_rounds = 0usize;
        let mut fr_rounds = 0usize;
        for _ in 0..trials {
            qs_rounds += select_rank(&xs, n / 2, &mut rng).rounds;
            fr_rounds += select_rank_fr(&xs, n / 2, &mut rng).rounds;
        }
        table.row(
            format!("n=2^{e}"),
            vec![
                format!("{:.1}", qs_rounds as f64 / trials as f64),
                format!("{:.1}", fr_rounds as f64 / trials as f64),
                format!("{:.1}", (n as f64).log2()),
                format!("{:.1}", (n as f64).log2().log2()),
            ],
        );
    }
}

/// Run EXP-12.
pub fn run() {
    let mut t1 = Table::new(
        "EXP-12a — ablation: separator sample size (uniform 2^14)",
        &["sample size", "mean attempts", "mean ratio", "ms/search"],
    );
    ablate_sample_size(&mut t1);
    t1.note("quality saturates near sample ≈ 100; the unit-time 'constant' is genuinely small.");
    t1.print();

    let mut t2 = Table::new(
        "EXP-12b — ablation: centerpoint effort (clusters 2^14)",
        &["radon effort", "mean attempts", "mean ratio", "ms/search"],
    );
    ablate_centerpoint(&mut t2);
    t2.note("even 1–2 rounds of iterated Radon give acceptable centerpoints; the");
    t2.note("retry loop absorbs the residual failure probability.");
    t2.print();

    let mut t3 = Table::new(
        "EXP-12c — ablation: punt threshold slack (§6, uniform 2^15)",
        &["slack", "punt rate", "depth", "work (M ops)"],
    );
    ablate_punt_slack(&mut t3);
    t3.note("small slack punts often (depth grows toward §5's log²); large slack");
    t3.note("never punts. Correctness is unaffected — verified elsewhere.");
    t3.print();

    let mut t4 = Table::new(
        "EXP-12d — ablation: fast correction vs forced punting (§6, uniform 2^15)",
        &["mode", "punt rate", "depth", "work (M ops)"],
    );
    ablate_fast_correction(&mut t4);
    t4.note("forced punting = §5-style query-structure correction on the same sphere");
    t4.note("partition: the depth gap is exactly what Fast Correction (Lemma 6.3) buys.");
    t4.print();

    let mut t5 = Table::new(
        "EXP-12e — selection rounds: quickselect (O(log n)) vs Floyd–Rivest (O(log log n))",
        &[
            "n",
            "quickselect rounds",
            "Floyd–Rivest rounds",
            "log₂ n",
            "log₂ log₂ n",
        ],
    );
    ablate_selection_rounds(&mut t5);
    t5.note("the §6.2 remark — k-closest in random O(log log k) rounds — rests on");
    t5.note("Floyd–Rivest-style sampling selection: its round count tracks the last");
    t5.note("column, quickselect's the second-to-last.");
    t5.print();
}
