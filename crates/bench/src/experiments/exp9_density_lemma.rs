//! EXP-9 — the Density Lemma (Lemma 2.1).
//!
//! Paper claims: every k-neighborhood system in `R^d` is `τ_d·k`-ply,
//! where `τ_d` is the kissing number (τ₂ = 6, τ₃ = 12, τ₄ = 24). We build
//! exact k-neighborhood systems over benign and adversarial ("kissing"
//! cluster) inputs and measure the maximum ply, verifying it never exceeds
//! the bound and that the kissing configuration approaches it.

use crate::harness::Table;
use sepdc_core::{kdtree_all_knn, NeighborhoodSystem};
use sepdc_geom::kissing_number;
use sepdc_workloads::{adversarial, rng, Workload};

fn measure<const D: usize>(points: &[sepdc_geom::Point<D>], k: usize) -> (usize, bool) {
    let knn = kdtree_all_knn(points, k);
    let sys = NeighborhoodSystem::from_knn(points, &knn);
    let ply = sys.max_ply_at_centers();
    let valid = sys.check_k_neighborhood(k).is_ok();
    (ply, valid)
}

/// Run EXP-9.
pub fn run() {
    let mut table = Table::new(
        "EXP-9 — Density Lemma: max ply of k-neighborhood systems vs τ_d·k",
        &[
            "config",
            "max ply",
            "τ_d·k bound",
            "k-nbhd valid",
            "within bound",
        ],
    );
    let n = 4000;
    for k in [1usize, 2, 4] {
        for w in [Workload::UniformCube, Workload::Grid, Workload::SphereShell] {
            let pts = w.generate::<2>(n, k as u64);
            let (ply, valid) = measure(&pts, k);
            // Closed containment at centers can add the tangent point
            // itself; the open-interior bound of the lemma is τ_d·k.
            let bound = kissing_number(2) * k + k;
            table.row(
                format!("d=2 k={k} {}", w.name()),
                vec![
                    format!("{ply}"),
                    format!("{}", kissing_number(2) * k),
                    format!("{valid}"),
                    format!("{}", ply <= bound),
                ],
            );
            assert!(ply <= bound, "Density Lemma violated: {ply} > {bound}");
        }
    }
    // Adversarial kissing configurations: ply should approach τ_d.
    let mut r2 = rng(99);
    let kiss2 = adversarial::kissing_field::<2, _>(200, 8, &mut r2);
    let (ply2, _) = measure(&kiss2, 1);
    table.row(
        "d=2 k=1 kissing-field".to_string(),
        vec![
            format!("{ply2}"),
            format!("{}", kissing_number(2)),
            "true".into(),
            format!("{}", ply2 <= kissing_number(2) + 1),
        ],
    );
    let mut r3 = rng(101);
    let kiss3 = adversarial::kissing_field::<3, _>(200, 6, &mut r3);
    let (ply3, _) = measure(&kiss3, 1);
    table.row(
        "d=3 k=1 kissing-field".to_string(),
        vec![
            format!("{ply3}"),
            format!("{}", kissing_number(3)),
            "true".into(),
            format!("{}", ply3 <= kissing_number(3) + 1),
        ],
    );
    for k in [1usize, 2] {
        let pts = Workload::UniformCube.generate::<3>(n, 7 + k as u64);
        let (ply, valid) = measure(&pts, k);
        let bound = kissing_number(3) * k + k;
        table.row(
            format!("d=3 k={k} uniform-cube"),
            vec![
                format!("{ply}"),
                format!("{}", kissing_number(3) * k),
                format!("{valid}"),
                format!("{}", ply <= bound),
            ],
        );
    }
    table.note("max ply measured at ball centers with closed containment (can exceed the");
    table.note("open-interior τ_d·k by the tangency slack +k, never more).");
    table.note("kissing-field pushes ply toward τ_d — the lemma is tight.");
    table.print();
}
