//! Thread accounting: a global budget of extra worker threads.
//!
//! The effective thread count is, in priority order: the innermost active
//! [`ThreadPool::install`] override, the `RAYON_NUM_THREADS` environment
//! variable, or `std::thread::available_parallelism`. The *budget* is that
//! count minus one (the calling thread); every parallel construct reserves
//! workers from it and falls back to sequential execution when none are
//! available, so nested parallelism never oversubscribes the machine.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Extra worker threads currently live (not counting callers).
static EXTRA_ACTIVE: AtomicUsize = AtomicUsize::new(0);

/// `ThreadPool::install` override; 0 = none. A single global cell — the
/// workspace only ever installs pools one at a time (bench harnesses).
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

fn env_threads() -> usize {
    static ENV: OnceLock<usize> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(0)
    })
}

/// The number of threads parallel constructs aim to use.
pub fn current_num_threads() -> usize {
    let o = OVERRIDE.load(Ordering::Relaxed);
    if o > 0 {
        return o;
    }
    let e = env_threads();
    if e > 0 {
        return e;
    }
    // Memoized: `available_parallelism` probes the OS (sched_getaffinity /
    // cgroup limits) on every call, which is microseconds — far too slow
    // for the per-node gates that ask for the thread count on hot paths.
    static AVAIL: OnceLock<usize> = OnceLock::new();
    *AVAIL.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Try to reserve one extra worker; `true` on success.
pub(crate) fn try_reserve() -> bool {
    reserve_up_to(1) == 1
}

/// Reserve up to `want` extra workers; returns how many were granted.
pub(crate) fn reserve_up_to(want: usize) -> usize {
    if want == 0 {
        return 0;
    }
    let budget = current_num_threads().saturating_sub(1);
    let mut granted = 0;
    while granted < want {
        let ok = EXTRA_ACTIVE
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |cur| {
                (cur < budget).then_some(cur + 1)
            })
            .is_ok();
        if !ok {
            break;
        }
        granted += 1;
    }
    granted
}

/// Return `n` workers to the budget.
pub(crate) fn release(n: usize) {
    if n > 0 {
        EXTRA_ACTIVE.fetch_sub(n, Ordering::AcqRel);
    }
}

/// Error type for [`ThreadPoolBuilder::build`] (the shim cannot fail).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// New builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the pool's thread count.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n);
        self
    }

    /// Build the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            n: self.num_threads.unwrap_or_else(current_num_threads).max(1),
        })
    }
}

/// A "pool": in this shim, a thread-count override scoped by `install`.
#[derive(Debug)]
pub struct ThreadPool {
    n: usize,
}

impl ThreadPool {
    /// Run `f` with this pool's thread count as the effective count.
    pub fn install<F, R>(&self, f: F) -> R
    where
        F: FnOnce() -> R,
    {
        let prev = OVERRIDE.swap(self.n, Ordering::Relaxed);
        let out = f();
        OVERRIDE.store(prev, Ordering::Relaxed);
        out
    }
}
