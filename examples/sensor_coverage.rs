//! Sensor coverage queries: the *neighborhood query problem* (Section 3)
//! on a ball system that is **not** a k-NN system — sensors with
//! heterogeneous ranges scattered over terrain, queried with "which
//! sensors can see this location?".
//!
//! This exercises the part of the paper that is independent of k-NN: the
//! query structure works for any low-ply neighborhood system, and its
//! costs degrade gracefully as the ply grows.
//!
//! ```sh
//! cargo run --release --example sensor_coverage
//! ```

use rand::Rng;
use sepdc::core::{NeighborhoodSystem, QueryTree, QueryTreeConfig};
use sepdc::geom::{Ball, Point};
use sepdc::workloads;

fn main() {
    let n_sensors = 30_000;
    let mut rng = workloads::rng(7);

    // Sensors clustered around "roads" (noisy lines) with ranges drawn
    // from a two-scale mixture: mostly short-range, a few long-range.
    let mut sensors: Vec<Ball<2>> = Vec::with_capacity(n_sensors);
    for i in 0..n_sensors {
        let t = rng.gen_range(0.0..1.0);
        let road = (i % 3) as f64 * 0.35;
        let center = Point::from([t, road + 0.02 * workloads::distributions::normal(&mut rng)]);
        let range = if rng.gen_range(0..100) < 97 {
            rng.gen_range(0.002..0.008) // short-range
        } else {
            rng.gen_range(0.01..0.02) // longer-range backbone
        };
        sensors.push(Ball::new(center, range));
    }
    let system = NeighborhoodSystem::from_balls(sensors);
    println!(
        "{} sensors; ply at a random probe ≈ how many overlap there",
        system.len()
    );

    // Wide-radius balls cross many separators and get duplicated down
    // both subtrees; a larger leaf keeps the duplication factor modest for
    // mixed-scale systems (the paper's O(n) space bound assumes balls
    // comparable to the local point density, as k-NN balls are).
    let cfg = QueryTreeConfig {
        leaf_size: 128,
        ..Default::default()
    };
    let t0 = std::time::Instant::now();
    let tree = QueryTree::build::<3>(system.balls(), cfg, 13);
    let stats = tree.stats();
    println!(
        "built query structure in {:.1?}: height {}, {} leaves, {:.2} stored balls per sensor",
        t0.elapsed(),
        stats.height,
        stats.leaves,
        stats.stored_balls as f64 / system.len() as f64
    );

    // Query a grid of probe locations.
    let probes: Vec<Point<2>> = (0..2000)
        .map(|_| Point::from([rng.gen_range(0.0..1.0), rng.gen_range(-0.1..0.9)]))
        .collect();
    let t0 = std::time::Instant::now();
    let mut covered = 0usize;
    let mut total_hits = 0usize;
    let mut max_hits = 0usize;
    for p in &probes {
        let hits = tree.covering(p);
        if !hits.is_empty() {
            covered += 1;
        }
        total_hits += hits.len();
        max_hits = max_hits.max(hits.len());
    }
    let per_query = t0.elapsed() / probes.len() as u32;
    println!(
        "{} probes in {per_query:.1?} each: {:.1}% covered, {:.1} sensors/probe avg, {max_hits} max",
        probes.len(),
        100.0 * covered as f64 / probes.len() as f64,
        total_hits as f64 / probes.len() as f64
    );

    // Spot-check against the linear scan.
    for p in probes.iter().take(200) {
        let mut fast = tree.covering(p);
        fast.sort_unstable();
        let mut slow: Vec<u32> = system
            .balls()
            .iter()
            .enumerate()
            .filter(|(_, b)| b.contains(p))
            .map(|(i, _)| i as u32)
            .collect();
        slow.sort_unstable();
        assert_eq!(fast, slow, "coverage mismatch at {p:?}");
    }
    println!("verified against linear scan on 200 probes ✓");
}
