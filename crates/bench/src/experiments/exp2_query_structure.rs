//! EXP-2 — the Section 3 search structure (Lemma 3.1 / Theorem 3.1).
//!
//! Paper claims: height `O(log n)`, leaves `O(n/m₀)`, space `O(n)`, query
//! `O(log n + m₀)`, parallel construction in `O(log n)` rounds. We sweep
//! `n` for `d ∈ {2, 3}` over the clusters workload (the least favorable of
//! the benign distributions), and report every measured quantity normalized
//! by its predicted growth — flat columns mean the claim holds.

use crate::harness::Table;
use sepdc_core::{kdtree_all_knn, NeighborhoodSystem, QueryTree, QueryTreeConfig};
use sepdc_workloads::Workload;

fn sweep<const D: usize, const E: usize>(table: &mut Table, k: usize, exps: &[usize], leaf: usize) {
    // Lemma 3.1 requires m₀^μ ≤ ((1-δ)/2)·m₀, a constant that grows with
    // the dimension; pass the d-appropriate leaf size.
    let cfg = QueryTreeConfig {
        leaf_size: leaf,
        ..Default::default()
    };
    for &e in exps {
        let n = 1usize << e;
        let pts = Workload::Clusters.generate::<D>(n, e as u64);
        let knn = kdtree_all_knn(&pts, k);
        let system = NeighborhoodSystem::from_knn(&pts, &knn);
        let tree = QueryTree::build::<E>(system.balls(), cfg, 5);
        let st = tree.stats();
        let build = tree.build_cost();

        let probes = Workload::UniformCube.generate::<D>(2000, 999 + e as u64);
        let mut total = 0usize;
        let mut worst = 0usize;
        for p in &probes {
            let c = tree.query_cost(p);
            total += c;
            worst = worst.max(c);
        }
        let log2n = (n as f64).log2();
        table.row(
            format!("d={} n=2^{e}", D),
            vec![
                format!("{}", st.height),
                format!("{:.2}", st.height as f64 / log2n),
                format!("{:.2}", st.stored_balls as f64 / n as f64),
                format!("{}", st.leaves),
                format!("{:.1}", total as f64 / probes.len() as f64),
                format!("{worst}"),
                format!("{:.1}", build.depth as f64 / log2n),
                format!("{}", st.fallbacks),
            ],
        );
    }
}

/// Run EXP-2.
pub fn run() {
    let mut table = Table::new(
        "EXP-2 — neighborhood query structure vs Lemma 3.1 (k = 2, clusters)",
        &[
            "config",
            "height",
            "h/log2 n",
            "stored/n",
            "leaves",
            "avg query",
            "max query",
            "build depth/log2 n",
            "fallbacks",
        ],
    );
    sweep::<2, 3>(&mut table, 2, &[10, 12, 14, 16], 48);
    sweep::<3, 4>(&mut table, 2, &[10, 12, 14, 16], 256);
    table.note("h/log2 n flat  ⇒  height = O(log n).");
    table
        .note("m₀ = 48 (d=2) / 256 (d=3): Lemma 3.1 needs m₀^μ ≤ ((1-δ)/2)m₀, so m₀ grows with d.");
    table
        .note("stored/n flat  ⇒  space = O(n) (crossing balls duplicated but geometrically rare).");
    table.note("avg/max query ≈ height + m₀ = O(log n + m₀).");
    table.note("build depth/log2 n flat  ⇒  parallel construction in O(log n) rounds (Thm 3.1).");
    table.print();
}
