//! Snapshot bytes are adversarial input: a file off disk, a daemon `swap`
//! request. This suite attacks the container — truncation at every
//! length, flipped magic, version drift, corrupted bodies, resealed
//! structural lies — and requires a typed [`SepdcError`] for every one,
//! never a panic, never an unbounded allocation. The property tests then
//! pin the other half of the contract: a loaded tree is byte-identical to
//! the tree it was saved from, on every thread count.

use proptest::prelude::*;
use sepdc::core::serve::{CoverPredicate, ServeConfig};
use sepdc::core::snapshot::{self, HEADER_LEN, TABLE_ENTRY_LEN};
use sepdc::core::{
    kdtree_all_knn, load_partition_tree, load_query_tree, parallel_knn, save_partition_tree,
    save_query_tree, KnnDcConfig, NeighborhoodSystem, QueryTree, QueryTreeConfig, SepdcError,
    SnapshotError, SNAPSHOT_VERSION,
};
use sepdc::workloads::Workload;

fn build_tree(n: usize, k: usize, seed: u64) -> QueryTree<2> {
    let pts = Workload::Clusters.generate::<2>(n, seed);
    let knn = kdtree_all_knn(&pts, k);
    let sys = NeighborhoodSystem::from_knn(&pts, &knn);
    QueryTree::build::<3>(sys.balls(), QueryTreeConfig::default(), seed)
}

fn fixture_bytes() -> Vec<u8> {
    save_query_tree(&build_tree(300, 2, 11))
}

/// Every decode path a hostile snapshot can reach, in one place. Returns
/// the typed error (panics are what this suite exists to rule out).
fn try_all_loads(bytes: &[u8]) -> Vec<Result<(), SepdcError>> {
    vec![
        snapshot::inspect(bytes).map(drop),
        load_query_tree::<2>(bytes).map(drop),
        load_partition_tree::<2>(bytes).map(drop),
        // Wrong dimension on purpose: dimension checks must also be typed.
        load_query_tree::<3>(bytes).map(drop),
    ]
}

/// Locate section `tag`'s table entry and body range inside `bytes`.
fn find_section(bytes: &[u8], tag: &[u8; 4]) -> (usize, std::ops::Range<usize>) {
    let count = u32::from_le_bytes(bytes[20..24].try_into().unwrap()) as usize;
    for i in 0..count {
        let at = HEADER_LEN + i * TABLE_ENTRY_LEN;
        if &bytes[at..at + 4] == tag {
            let offset = u64::from_le_bytes(bytes[at + 4..at + 12].try_into().unwrap()) as usize;
            let len = u64::from_le_bytes(bytes[at + 12..at + 20].try_into().unwrap()) as usize;
            return (at, offset..offset + len);
        }
    }
    panic!("section {:?} not found", std::str::from_utf8(tag));
}

/// Recompute and rewrite the table checksum for `tag` — the attacker who
/// edits a body and reseals it, so only semantic validation can object.
fn reseal(bytes: &mut [u8], tag: &[u8; 4]) {
    let (entry, body) = find_section(bytes, tag);
    let sum = snapshot::fnv1a64(&bytes[body]);
    bytes[entry + 20..entry + 28].copy_from_slice(&sum.to_le_bytes());
}

#[test]
fn every_truncation_is_a_typed_error() {
    let bytes = fixture_bytes();
    // Every length through the header and table, then a coprime stride
    // through the bodies so cut points land on every alignment class.
    let dense_until = HEADER_LEN + 4 * TABLE_ENTRY_LEN + 64;
    let mut lengths: Vec<usize> = (0..dense_until.min(bytes.len())).collect();
    lengths.extend((dense_until..bytes.len()).step_by(7));
    for len in lengths {
        for r in try_all_loads(&bytes[..len]) {
            assert!(r.is_err(), "truncation to {len} bytes decoded successfully");
        }
    }
}

#[test]
fn flipped_magic_is_bad_magic() {
    let mut bytes = fixture_bytes();
    bytes[0] ^= 0x40;
    for r in try_all_loads(&bytes) {
        assert_eq!(r, Err(SepdcError::Snapshot(SnapshotError::BadMagic)));
    }
}

#[test]
fn version_drift_is_typed() {
    let mut bytes = fixture_bytes();
    let next = SNAPSHOT_VERSION + 1;
    bytes[8..12].copy_from_slice(&next.to_le_bytes());
    for r in try_all_loads(&bytes) {
        assert_eq!(
            r,
            Err(SepdcError::Snapshot(SnapshotError::UnsupportedVersion {
                found: next,
                expected: SNAPSHOT_VERSION,
            }))
        );
    }
}

#[test]
fn corrupting_any_section_body_is_a_checksum_mismatch() {
    let clean = fixture_bytes();
    for tag in [b"META", b"BALL", b"NODE", b"LFID"] {
        let mut bytes = clean.clone();
        let (_, body) = find_section(&bytes, tag);
        bytes[body.start + body.len() / 2] ^= 0x01;
        let err = load_query_tree::<2>(&bytes).map(drop).unwrap_err();
        let SepdcError::Snapshot(SnapshotError::ChecksumMismatch { tag: got }) = err else {
            panic!("{:?}: expected ChecksumMismatch, got {err:?}", tag);
        };
        assert_eq!(got.as_bytes(), tag);
        // `inspect` catches it too, without reconstructing anything.
        assert!(snapshot::inspect(&bytes).is_err());
    }
}

#[test]
fn resealed_out_of_bounds_leaf_id_is_corrupt() {
    let mut bytes = fixture_bytes();
    // LFID body: u64 count, then u32 ids — overwrite the first id with an
    // index far past n and reseal so the checksum is clean.
    let (_, body) = find_section(&bytes, b"LFID");
    bytes[body.start + 8..body.start + 12].copy_from_slice(&u32::MAX.to_le_bytes());
    reseal(&mut bytes, b"LFID");
    let err = load_query_tree::<2>(&bytes).map(drop).unwrap_err();
    assert!(
        matches!(
            &err,
            SepdcError::Snapshot(SnapshotError::Corrupt { tag: "LFID", .. })
        ),
        "{err:?}"
    );
}

#[test]
fn resealed_forward_child_reference_is_corrupt() {
    let mut bytes = fixture_bytes();
    // NODE body: u64 count, then records — leaf: tag 0, start u64, len
    // u64; internal: tag 1|2, left u32, right u32, (D+1) f64. Walk to the
    // first internal record and point its left child at the root (a
    // forward reference the bottom-up rebuild must reject).
    let (_, body) = find_section(&bytes, b"NODE");
    let count = u64::from_le_bytes(bytes[body.start..body.start + 8].try_into().unwrap());
    let mut at = body.start + 8;
    loop {
        assert!(at < body.end, "no internal node in fixture");
        match bytes[at] {
            0 => at += 1 + 16,
            1 | 2 => break,
            t => panic!("unknown node tag {t}"),
        }
    }
    bytes[at + 1..at + 5].copy_from_slice(&((count - 1) as u32).to_le_bytes());
    reseal(&mut bytes, b"NODE");
    let err = load_query_tree::<2>(&bytes).map(drop).unwrap_err();
    assert!(
        matches!(
            &err,
            SepdcError::Snapshot(SnapshotError::Corrupt { tag: "NODE", .. })
        ),
        "{err:?}"
    );
}

#[test]
fn resealed_huge_array_length_cannot_allocate() {
    let mut bytes = fixture_bytes();
    // Claim 2^61 leaf ids: the reader must reject the count against the
    // remaining byte budget instead of trying to reserve the memory.
    let (_, body) = find_section(&bytes, b"LFID");
    bytes[body.start..body.start + 8].copy_from_slice(&(1u64 << 61).to_le_bytes());
    reseal(&mut bytes, b"LFID");
    let err = load_query_tree::<2>(&bytes).map(drop).unwrap_err();
    let SepdcError::Snapshot(SnapshotError::Corrupt {
        tag: "LFID",
        detail,
    }) = &err
    else {
        panic!("{err:?}");
    };
    assert!(detail.contains("exceeds section size"), "{detail}");
}

#[test]
fn random_garbage_never_panics() {
    use rand::{RngCore, SeedableRng};
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0xC0FFEE);
    for len in [0usize, 1, 8, 24, 52, 200, 4096] {
        for _ in 0..50 {
            let bytes: Vec<u8> = (0..len).map(|_| rng.next_u32() as u8).collect();
            for r in try_all_loads(&bytes) {
                assert!(r.is_err());
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// build → save → load → serve is byte-identical to serving the fresh
    /// tree, for every predicate and thread count — the acceptance
    /// parity sweep (1/2/7-thread pools), extended across the disk
    /// boundary.
    #[test]
    fn loaded_tree_serves_byte_identically(
        n in 20usize..400,
        k in 1usize..4,
        seed in 0u64..1000,
        chunk in 16usize..96,
    ) {
        let fresh = build_tree(n, k, seed);
        let bytes = save_query_tree(&fresh);
        let loaded = load_query_tree::<2>(&bytes).unwrap();
        // Saving the loaded tree reproduces the file bit for bit.
        prop_assert_eq!(&save_query_tree(&loaded), &bytes);

        let probes = Workload::UniformCube.generate::<2>(200, seed ^ 0x5eed);
        let cfg = ServeConfig { chunk_size: chunk, parallel_threshold: 0, ..ServeConfig::default() };
        for pred in [CoverPredicate::Closed, CoverPredicate::Open] {
            let want = fresh.try_serve(&probes, pred, &cfg).unwrap();
            for threads in [1usize, 2, 7] {
                let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
                let got = pool.install(|| loaded.try_serve(&probes, pred, &cfg)).unwrap();
                prop_assert_eq!(
                    got.result.offsets(), want.result.offsets(),
                    "{} predicate, {} threads", pred.name(), threads);
                prop_assert_eq!(
                    got.result.ids(), want.result.ids(),
                    "{} predicate, {} threads", pred.name(), threads);
            }
        }
    }

    /// Partition trees round-trip exactly too: same arena, same
    /// permutation, same leaf assignment for every point.
    #[test]
    fn partition_tree_round_trips(
        n in 20usize..300,
        k in 1usize..3,
        seed in 0u64..1000,
    ) {
        let pts = Workload::Clusters.generate::<2>(n, seed);
        let out = parallel_knn::<2, 3>(&pts, &KnnDcConfig::new(k).with_seed(seed));
        let bytes = save_partition_tree(&out.tree);
        let loaded = load_partition_tree::<2>(&bytes).unwrap();
        prop_assert_eq!(&save_partition_tree(&loaded), &bytes);
        prop_assert_eq!(loaded.perm(), out.tree.perm());
        prop_assert_eq!(loaded.nodes().len(), out.tree.nodes().len());
        prop_assert_eq!(loaded.size(), out.tree.size());
        prop_assert_eq!(loaded.height(), out.tree.height());
        prop_assert_eq!(loaded.leaves(), out.tree.leaves());
    }
}
