//! The partition tree produced by the separator-based recursion
//! (the `T` of Section 6), and the ball-marching machinery of Fast
//! Correction (Section 6.2).
//!
//! Internal nodes carry the separator chosen at that recursion step; leaves
//! carry the point ids solved by the base case. *Marching* a ball `B` down
//! the tree computes its set of **reachable** leaves (Lemma 6.3): the root
//! is reachable; from a reachable node, the left child is reachable when
//! `B` meets the separator or its interior, the right child when `B` meets
//! the separator or its exterior. Every point of the point set that lies
//! inside `B` sits in a reachable leaf, so the reachable leaves are a sound
//! candidate set for correcting `B`'s radius.

use sepdc_geom::ball::Ball;
use sepdc_geom::shape::Separator;

/// A node of the partition tree.
pub enum PartitionTree<const D: usize> {
    /// Internal node: the separator plus the two subtrees.
    Internal {
        /// The separator chosen at this recursion step.
        sep: Separator<D>,
        /// Number of points below this node.
        size: u32,
        /// Interior-side subtree.
        left: Box<PartitionTree<D>>,
        /// Exterior-side subtree.
        right: Box<PartitionTree<D>>,
    },
    /// Leaf: base-case point ids (indices into the global point array).
    Leaf {
        /// Point ids solved by the base case at this leaf.
        point_ids: Vec<u32>,
    },
}

impl<const D: usize> PartitionTree<D> {
    /// Number of points under this node.
    pub fn size(&self) -> usize {
        match self {
            PartitionTree::Internal { size, .. } => *size as usize,
            PartitionTree::Leaf { point_ids } => point_ids.len(),
        }
    }

    /// Height in edges (leaf = 0).
    pub fn height(&self) -> usize {
        match self {
            PartitionTree::Leaf { .. } => 0,
            PartitionTree::Internal { left, right, .. } => 1 + left.height().max(right.height()),
        }
    }

    /// Number of leaves.
    pub fn leaves(&self) -> usize {
        match self {
            PartitionTree::Leaf { .. } => 1,
            PartitionTree::Internal { left, right, .. } => left.leaves() + right.leaves(),
        }
    }

    /// All point ids below this node, in leaf order.
    pub fn collect_point_ids(&self, out: &mut Vec<u32>) {
        match self {
            PartitionTree::Leaf { point_ids } => out.extend_from_slice(point_ids),
            PartitionTree::Internal { left, right, .. } => {
                left.collect_point_ids(out);
                right.collect_point_ids(out);
            }
        }
    }
}

/// Result of marching a batch of balls down a partition tree.
#[derive(Clone, Debug)]
pub struct MarchOutcome {
    /// For each input ball, the point ids found in its reachable leaves.
    /// Meaningful only when `aborted` is false.
    pub candidates: Vec<Vec<u32>>,
    /// Largest number of active (ball, node) pairs at any level — the
    /// quantity Lemma 6.2 bounds by `m^{1-η}` w.h.p.
    pub max_active_per_level: usize,
    /// Number of levels marched.
    pub levels: usize,
    /// Total (ball, node) steps — the marching work.
    pub total_steps: u64,
    /// `true` when the active-ball limit was exceeded and the march was
    /// abandoned (the caller must punt).
    pub aborted: bool,
}

/// March `balls` down `tree` level-synchronously, collecting for each ball
/// the point ids in its reachable leaves. Aborts (returning
/// `aborted = true`) as soon as a level holds more than `active_limit`
/// active pairs — the "unlucky" event of Lemma 6.2 that triggers a punt.
pub fn march_balls<const D: usize>(
    tree: &PartitionTree<D>,
    balls: &[Ball<D>],
    active_limit: usize,
) -> MarchOutcome {
    let mut candidates: Vec<Vec<u32>> = vec![Vec::new(); balls.len()];
    let mut frontier: Vec<(&PartitionTree<D>, u32)> = balls
        .iter()
        .enumerate()
        .map(|(b, _)| (tree, b as u32))
        .collect();
    let mut levels = 0usize;
    let mut max_active = frontier.len();
    let mut total_steps = 0u64;

    while !frontier.is_empty() {
        if frontier.len() > active_limit {
            return MarchOutcome {
                candidates,
                max_active_per_level: frontier.len(),
                levels,
                total_steps,
                aborted: true,
            };
        }
        max_active = max_active.max(frontier.len());
        total_steps += frontier.len() as u64;
        let mut next: Vec<(&PartitionTree<D>, u32)> = Vec::with_capacity(frontier.len() * 2);
        for (node, b) in frontier {
            let ball = &balls[b as usize];
            match node {
                PartitionTree::Leaf { point_ids } => {
                    candidates[b as usize].extend_from_slice(point_ids);
                }
                PartitionTree::Internal {
                    sep, left, right, ..
                } => {
                    if ball.touches_interior_of(sep) {
                        next.push((left, b));
                    }
                    if ball.touches_exterior_of(sep) {
                        next.push((right, b));
                    }
                }
            }
        }
        frontier = next;
        levels += 1;
    }
    MarchOutcome {
        candidates,
        max_active_per_level: max_active,
        levels,
        total_steps,
        aborted: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sepdc_geom::point::Point;
    use sepdc_geom::sphere::Sphere;
    use sepdc_geom::Hyperplane;

    /// Hand-built tree over points 0..8 on a line, split at x = 4, then at
    /// x = 2 and x = 6.
    fn line_tree() -> PartitionTree<1> {
        let leaf = |ids: Vec<u32>| PartitionTree::Leaf { point_ids: ids };
        let cut = |x: f64, l, r| PartitionTree::Internal {
            sep: Separator::Halfspace(Hyperplane::axis_aligned(0, x)),
            size: 8,
            left: Box::new(l),
            right: Box::new(r),
        };
        cut(
            4.0,
            cut(2.0, leaf(vec![0, 1]), leaf(vec![2, 3])),
            cut(6.0, leaf(vec![4, 5]), leaf(vec![6, 7])),
        )
    }

    #[test]
    fn structure_queries() {
        let t = line_tree();
        assert_eq!(t.height(), 2);
        assert_eq!(t.leaves(), 4);
        let mut ids = Vec::new();
        t.collect_point_ids(&mut ids);
        assert_eq!(ids, (0..8).collect::<Vec<u32>>());
    }

    #[test]
    fn small_ball_reaches_one_leaf() {
        let t = line_tree();
        // Ball at x=1, r=0.4: only the [0,1] leaf is reachable.
        let balls = vec![Ball::new(Point::<1>::from([1.0]), 0.4)];
        let out = march_balls(&t, &balls, 100);
        assert!(!out.aborted);
        assert_eq!(out.candidates[0], vec![0, 1]);
        assert_eq!(out.levels, 3);
    }

    #[test]
    fn straddling_ball_reaches_both_sides() {
        let t = line_tree();
        // Ball at x=4, r=0.5 crosses the root cut: reaches leaves around 4.
        let balls = vec![Ball::new(Point::<1>::from([4.0]), 0.5)];
        let out = march_balls(&t, &balls, 100);
        assert!(!out.aborted);
        // Reaches [2,3] (interior side, then its right leaf) and [4,5].
        let mut c = out.candidates[0].clone();
        c.sort_unstable();
        assert_eq!(c, vec![2, 3, 4, 5]);
    }

    #[test]
    fn huge_ball_reaches_everything() {
        let t = line_tree();
        let balls = vec![Ball::new(Point::<1>::from([4.0]), 100.0)];
        let out = march_balls(&t, &balls, 100);
        let mut c = out.candidates[0].clone();
        c.sort_unstable();
        assert_eq!(c, (0..8).collect::<Vec<u32>>());
        assert_eq!(out.max_active_per_level, 4, "duplicated at each level");
    }

    #[test]
    fn reachability_covers_contained_points() {
        // Soundness property: every point inside the ball appears among
        // the candidates, for a tree with sphere separators.
        let pts: Vec<Point<2>> = (0..16)
            .map(|i| Point::from([(i % 4) as f64, (i / 4) as f64]))
            .collect();
        let leaf = |ids: Vec<u32>| PartitionTree::Leaf { point_ids: ids };
        // Sphere around (1.5, 1.5) radius 1.2 as root; children leaves by
        // the actual side of each point.
        let sep: Separator<2> = Sphere::new(Point::from([1.5, 1.5]), 1.2).into();
        let mut left_ids = Vec::new();
        let mut right_ids = Vec::new();
        for (i, p) in pts.iter().enumerate() {
            if sep.side(p).routes_interior() {
                left_ids.push(i as u32);
            } else {
                right_ids.push(i as u32);
            }
        }
        let t = PartitionTree::Internal {
            sep,
            size: 16,
            left: Box::new(leaf(left_ids)),
            right: Box::new(leaf(right_ids)),
        };
        let ball = Ball::new(Point::from([2.0, 2.0]), 1.5);
        let out = march_balls(&t, std::slice::from_ref(&ball), 100);
        for (i, p) in pts.iter().enumerate() {
            if ball.contains(p) {
                assert!(
                    out.candidates[0].contains(&(i as u32)),
                    "point {i} in ball but not a candidate"
                );
            }
        }
    }

    #[test]
    fn abort_on_active_limit() {
        let t = line_tree();
        let balls: Vec<Ball<1>> = (0..50)
            .map(|i| Ball::new(Point::from([i as f64 * 0.1]), 50.0))
            .collect();
        let out = march_balls(&t, &balls, 60);
        assert!(out.aborted, "50 huge balls duplicate past 60 actives");
    }

    #[test]
    fn empty_ball_batch() {
        let t = line_tree();
        let out = march_balls(&t, &[], 10);
        assert!(!out.aborted);
        assert_eq!(out.levels, 0);
        assert!(out.candidates.is_empty());
    }
}
