//! # sepdc-geom
//!
//! `d`-dimensional geometry substrate for the separator based parallel
//! divide and conquer algorithms of Frieze, Miller and Teng (SPAA 1992).
//!
//! The paper's machinery needs a surprisingly wide slice of computational
//! geometry, all of which is built here from scratch:
//!
//! * [`Point`] — fixed-dimension points over `f64` (const-generic `D`).
//! * [`matrix`] — small dense linear algebra: Gaussian elimination with
//!   partial pivoting, null-space vectors (for Radon points) and
//!   circumsphere systems, plus Householder reflections used to rotate a
//!   centerpoint onto a coordinate axis.
//! * [`Sphere`], [`Hyperplane`], [`Separator`] — "generalized spheres".
//!   The Miller–Teng–Thurston–Vavasis construction maps a random great
//!   circle of `S^d` back to the plane; when the circle passes near the
//!   north pole the image is a hyperplane, so the separator type must be
//!   the union of both.
//! * [`Ball`] — closed balls with the ball-vs-separator side predicates
//!   used by the Fast Correction marching step (Section 6.2 of the paper).
//! * [`stereo`] — the stereographic lift `R^d -> S^d ⊂ R^{d+1}`, its
//!   inverse, and the conformal dilation `D_α` of MTTV.
//! * [`radon`] — Radon points of `d+2` points.
//! * [`centerpoint`] — approximate centerpoints by iterated Radon points.
//!
//! Everything is deterministic given an external RNG; no global state.

#![warn(missing_docs)]

pub mod aabb;
pub mod ball;
pub mod centerpoint;
pub mod halfspace;
pub mod matrix;
pub mod point;
pub mod predicates;
pub mod radon;
pub mod shape;
pub mod soa;
pub mod sphere;
pub mod stereo;

pub use aabb::Aabb;
pub use ball::Ball;
pub use halfspace::Hyperplane;
pub use point::Point;
pub use shape::{Separator, Side};
pub use soa::{F32Bound, FilterStats, SoaBalls, SoaPoints};
pub use sphere::Sphere;

/// Default absolute tolerance used by geometric predicates.
///
/// All inputs handled by this crate are assumed to live in a bounded region
/// (workload generators emit coordinates of magnitude `O(1)`), so a single
/// absolute epsilon is appropriate. Predicates accepting custom tolerances
/// are provided where callers need tighter control.
pub const EPS: f64 = 1e-9;

/// Kissing numbers `τ_d` for small `d` (Lemma 2.1 of the paper, citing
/// Conway & Sloane). Entry `KISSING[d]` is `τ_d`; `d = 0, 1` included for
/// completeness.
pub const KISSING: [usize; 9] = [0, 2, 6, 12, 24, 40, 72, 126, 240];

/// Kissing number `τ_d` for dimension `d`.
///
/// # Panics
/// Panics if `d` is outside the tabulated range `1..=8`; the paper treats
/// the dimension as a constant and every algorithm in this workspace is
/// instantiated for small `d`.
pub fn kissing_number(d: usize) -> usize {
    assert!(
        (1..KISSING.len()).contains(&d),
        "kissing number tabulated only for 1 <= d <= 8, got {d}"
    );
    KISSING[d]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kissing_numbers_match_known_values() {
        assert_eq!(kissing_number(1), 2);
        assert_eq!(kissing_number(2), 6);
        assert_eq!(kissing_number(3), 12);
        assert_eq!(kissing_number(4), 24);
        assert_eq!(kissing_number(8), 240);
    }

    #[test]
    #[should_panic(expected = "kissing number")]
    fn kissing_number_rejects_dimension_zero() {
        kissing_number(0);
    }

    #[test]
    #[should_panic(expected = "kissing number")]
    fn kissing_number_rejects_large_dimension() {
        kissing_number(9);
    }
}
