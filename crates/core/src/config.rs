//! Configuration for the divide-and-conquer k-NN algorithms.

use crate::error::SepdcError;
use crate::query::QueryTreeConfig;
use crate::splitter::SplitterKind;
use sepdc_separator::SeparatorConfig;

/// Distance-evaluation tier for the candidate-filtering passes
/// (DESIGN.md §17).
///
/// * [`Precision::Mixed`] (the default): candidates are first screened by
///   the blocked f32 shadow kernels with a certified error bound
///   ([`sepdc_geom::F32Bound`]); only survivors pay an exact f64
///   evaluation. Answers are **byte-identical** to the exact tier — the
///   bound makes every f32 reject provably safe — so this is on by
///   default.
/// * [`Precision::Exact`]: every candidate is evaluated in f64 directly
///   (the pre-tier behavior, kept selectable for A/B measurement and as
///   the reference the certificate of ε-mode is measured against).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Precision {
    /// f64 everywhere; no f32 screening.
    Exact,
    /// f32 screening with certified-safe rejects, f64 confirmation.
    #[default]
    Mixed,
}

impl Precision {
    /// Stable CLI / config-echo name.
    pub fn name(self) -> &'static str {
        match self {
            Precision::Exact => "exact",
            Precision::Mixed => "mixed",
        }
    }

    /// Parse a CLI name (`exact` | `mixed`).
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "exact" => Some(Precision::Exact),
            "mixed" => Some(Precision::Mixed),
            _ => None,
        }
    }

    /// Stable wire code (snapshot META, config echoes).
    pub fn code(self) -> u64 {
        match self {
            Precision::Exact => 0,
            Precision::Mixed => 1,
        }
    }

    /// Inverse of [`Precision::code`].
    pub fn from_code(code: u64) -> Option<Self> {
        match code {
            0 => Some(Precision::Exact),
            1 => Some(Precision::Mixed),
            _ => None,
        }
    }

    /// `true` for the f32-screening tier.
    pub fn is_mixed(self) -> bool {
        self == Precision::Mixed
    }
}

/// Radius multiplier `1 / (1+ε)` applied to crossing-ball radii in
/// ε-approximate mode. Exactly `1.0` when `ε = 0`, so the exact path's
/// arithmetic is untouched (multiplying a radius by 1.0 is an IEEE-754
/// identity).
pub fn eps_radius_scale(epsilon: f64) -> f64 {
    1.0 / (1.0 + epsilon)
}

/// Squared-threshold multiplier `1 / (1+ε)²` applied to cover-filter
/// radii in ε-approximate mode. Exactly `1.0` when `ε = 0`.
pub fn eps_cover_scale(epsilon: f64) -> f64 {
    let s = 1.0 + epsilon;
    1.0 / (s * s)
}

/// Shared configuration of the Section 5 and Section 6 algorithms.
#[derive(Clone, Copy, Debug)]
pub struct KnnDcConfig {
    /// Neighbors per point.
    pub k: usize,
    /// Base-case size: subsets of at most this many points are solved by
    /// the all-pairs base case ("if m ≤ log n, deterministically compute …
    /// by testing all pairs"). `None` selects
    /// `max(32, ceil(1.5(k+1)/(1-δ)), ceil(log₂ n))` automatically — the
    /// `k`-dependent floor guarantees that every side of a `δ`-split above
    /// the base case still holds more than `k` points, so subset
    /// neighborhood balls stay bounded.
    pub base_case: Option<usize>,
    /// Exponent slack for the punt threshold `m^μ`,
    /// `μ = (d-1)/d + mu_epsilon` (paper: `μ = (d-1)/d + ε`).
    pub mu_epsilon: f64,
    /// Constant multiplier on the `m^μ` punt threshold — the hidden
    /// constant of the paper's `O(k^{1/d} m^μ)` intersection bound. Too
    /// small a value punts at every shallow node; the default keeps the
    /// fast path dominant on benign inputs while still punting on genuine
    /// outliers.
    pub punt_slack: f64,
    /// The `η` of Lemma 6.2: the fast-correction march aborts (punts) when
    /// some level holds more than `marching_slack · m^{1-η}` active balls.
    pub eta: f64,
    /// Multiplier on the `m^{1-η}` marching limit (constant headroom).
    pub marching_slack: f64,
    /// Separator search configuration for the partition steps.
    pub separator: SeparatorConfig,
    /// Which split-decision backend drives the partition steps
    /// ([`crate::splitter`]). The default [`SplitterKind::Random`] is the
    /// paper's engine, byte-identical to the pre-trait implementation.
    pub splitter: SplitterKind,
    /// Distance-evaluation tier for the correction candidate filters
    /// (owner-distance gathers, fast-correction fix loop). Answers are
    /// byte-identical across tiers; see [`Precision`].
    pub precision: Precision,
    /// Approximation slack ε ≥ 0 for the opt-in `(1+ε)`-approximate mode:
    /// crossing-ball radii are shrunk by `1/(1+ε)` before correction, so
    /// every reported k-th neighbor distance is at most `(1+ε)` times the
    /// exact one (certificate measured, never assumed — see
    /// [`KnnResult::error_certificate`](crate::KnnResult::error_certificate)).
    /// `0.0` (the default) is exact mode and leaves the arithmetic
    /// untouched.
    pub epsilon: f64,
    /// Query-structure configuration for the punt path.
    pub query: QueryTreeConfig,
    /// Subtree size below which recursion stops forking rayon tasks.
    pub parallel_cutoff: usize,
    /// Explicit recursion depth bound. `None` (the default) selects an
    /// automatic limit of `8·⌈log₂ n⌉ + 64` — far above the `O(log n)`
    /// height any accepted `δ`-split sequence can produce — and a subset
    /// still unsolved at that depth is finished by a brute-force leaf, so
    /// the algorithm stays total. `Some(limit)` is strict mode: exceeding
    /// `limit` aborts with [`SepdcError::RecursionDepthExceeded`] instead
    /// of absorbing a potentially quadratic leaf solve.
    pub max_depth: Option<usize>,
    /// Master seed; all randomness derives from it deterministically.
    pub seed: u64,
    /// Whether to record the observability [`RunReport`](crate::RunReport):
    /// wall-clock phase timings and per-depth histograms. `false` skips
    /// every clock read and histogram update, leaving only a predicted
    /// branch per event on the hot path; the returned report then carries
    /// the (always-computed) stats/meter/cost counters with empty `phases`
    /// and `depth` sections.
    pub record: bool,
}

/// Tuning knobs of the batch serving engine ([`crate::serve`]).
///
/// The engine's output is a pure function of `(tree, probes)` — none of
/// these knobs can change a single returned id; they only move work
/// between threads and allocations. That invariant is pinned by the
/// thread-count / chunk-size parity tests in `tests/serve_parity.rs`.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Probes per work unit. Each chunk is served by one task that reuses
    /// a single output arena across all its probes (no per-probe `Vec`),
    /// so larger chunks amortize allocation further while smaller chunks
    /// load-balance better across threads. Must be nonzero
    /// ([`SepdcError::InvalidConfig`] otherwise).
    pub chunk_size: usize,
    /// Batch size below which the engine stays on the calling thread:
    /// forking rayon tasks for a handful of `O(log n + m₀)` descents
    /// costs more than it buys.
    pub parallel_threshold: usize,
    /// Whether to record the `serve` phase timing and the query-cost
    /// histogram into the returned [`RunReport`](crate::RunReport).
    /// Defaults to `false`: a high-throughput read path should not pay
    /// two clock reads per chunk unless asked to explain itself.
    pub record: bool,
    /// Distance-evaluation tier for the per-leaf cover filter. The
    /// returned id lists are byte-identical across tiers (the f32 reject
    /// is certified safe), preserving the pure-function contract above.
    pub precision: Precision,
    /// Approximation slack ε ≥ 0 for relaxed covering: a probe is
    /// reported covered only when `dist_sq <= r² / (1+ε)²`, and each ball
    /// the exact predicate admits but the relaxed one skips is counted in
    /// `precision.eps_skips`. `0.0` (the default) is the exact predicate.
    /// Nonzero ε is the one serve knob that *does* change answers — it is
    /// opt-in and certificate-counted.
    pub epsilon: f64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            chunk_size: 1024,
            parallel_threshold: 1024,
            record: false,
            precision: Precision::default(),
            epsilon: 0.0,
        }
    }
}

impl ServeConfig {
    /// Validate the tunables (called once per batch by the serve engine).
    pub fn validate(&self) -> Result<(), SepdcError> {
        if self.chunk_size == 0 {
            return Err(SepdcError::InvalidConfig {
                param: "serve.chunk_size",
                value: 0.0,
            });
        }
        if !self.epsilon.is_finite() || !(0.0..=1.0).contains(&self.epsilon) {
            return Err(SepdcError::InvalidConfig {
                param: "serve.epsilon",
                value: self.epsilon,
            });
        }
        Ok(())
    }
}

impl KnnDcConfig {
    /// Default configuration for a given `k`.
    pub fn new(k: usize) -> Self {
        KnnDcConfig {
            k,
            base_case: None,
            mu_epsilon: 0.05,
            punt_slack: 4.0,
            eta: 0.3,
            marching_slack: 8.0,
            separator: SeparatorConfig::default(),
            splitter: SplitterKind::Random,
            precision: Precision::default(),
            epsilon: 0.0,
            query: QueryTreeConfig::default(),
            parallel_cutoff: 2048,
            max_depth: None,
            seed: 0xC0FFEE,
            record: true,
        }
    }

    /// With a specific seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// With a specific split-decision backend, applied to both the main
    /// recursion and the punt-path query structure.
    pub fn with_splitter(mut self, kind: SplitterKind) -> Self {
        self.splitter = kind;
        self.query.splitter = kind;
        self
    }

    /// With a specific distance-evaluation tier, applied to both the
    /// correction filters and the punt-path query structure.
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self.query.precision = precision;
        self
    }

    /// With an approximation slack ε (see [`KnnDcConfig::epsilon`]).
    ///
    /// Applied only to the top-level correction: the punt-path query
    /// structure is built over *already-shrunk* crossing balls, so
    /// `query.epsilon` stays 0 — setting both would relax twice.
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Resolve the base-case size for an input of `n` points in
    /// dimension `d`.
    pub fn resolve_base_case(&self, n: usize, d: usize) -> usize {
        match self.base_case {
            Some(b) => b.max(self.k + 1),
            None => {
                let logn = (n.max(2) as f64).log2().ceil() as usize;
                let delta = self.separator.delta(d);
                let floor = (1.5 * (self.k as f64 + 1.0) / (1.0 - delta)).ceil() as usize;
                32usize.max(floor).max(logn)
            }
        }
    }

    /// The punt threshold `punt_slack · m^μ` for a subset of size `m` in
    /// dimension `d`.
    pub fn punt_threshold(&self, m: usize, d: usize) -> f64 {
        let mu = (d as f64 - 1.0) / d as f64 + self.mu_epsilon;
        self.punt_slack * (m as f64).powf(mu)
    }

    /// The marching active-ball limit `marching_slack · m^{1-η}`.
    pub fn marching_limit(&self, m: usize) -> usize {
        (self.marching_slack * (m as f64).powf(1.0 - self.eta)).ceil() as usize
    }

    /// Resolve the recursion depth limit for an input of `n` points: the
    /// explicit [`Self::max_depth`], or the automatic `8·⌈log₂ n⌉ + 64`.
    pub fn resolve_depth_limit(&self, n: usize) -> usize {
        match self.max_depth {
            Some(limit) => limit,
            None => 8 * ((n.max(2) as f64).log2().ceil() as usize) + 64,
        }
    }

    /// Validate every tunable against its analyzed range. All `try_*`
    /// entry points call this once before touching the points, so nonsense
    /// thresholds (`punt_threshold`, `marching_limit`) can never silently
    /// corrupt a run.
    pub fn validate(&self) -> Result<(), SepdcError> {
        crate::error::validate_k(self.k)?;
        let bad = |param: &'static str, value: f64| SepdcError::InvalidConfig { param, value };
        // μ = (d-1)/d + mu_epsilon must stay a real exponent ≤ ~1.
        if !self.mu_epsilon.is_finite() || !(0.0..=1.0).contains(&self.mu_epsilon) {
            return Err(bad("mu_epsilon", self.mu_epsilon));
        }
        // η ∈ [0, 1]: the marching limit m^{1-η} interpolates between
        // constant and linear.
        if !self.eta.is_finite() || !(0.0..=1.0).contains(&self.eta) {
            return Err(bad("eta", self.eta));
        }
        if !self.punt_slack.is_finite() || self.punt_slack <= 0.0 {
            return Err(bad("punt_slack", self.punt_slack));
        }
        if !self.marching_slack.is_finite() || self.marching_slack <= 0.0 {
            return Err(bad("marching_slack", self.marching_slack));
        }
        if !self.separator.epsilon.is_finite() || self.separator.epsilon < 0.0 {
            return Err(bad("separator.epsilon", self.separator.epsilon));
        }
        if !self.separator.tol.is_finite() || self.separator.tol < 0.0 {
            return Err(bad("separator.tol", self.separator.tol));
        }
        // ε ∈ [0, 1]: the certificate bound (1+ε)·r is only meaningful
        // for modest slack, and larger values are always a config typo.
        if !self.epsilon.is_finite() || !(0.0..=1.0).contains(&self.epsilon) {
            return Err(bad("epsilon", self.epsilon));
        }
        if !self.query.epsilon.is_finite() || !(0.0..=1.0).contains(&self.query.epsilon) {
            return Err(bad("query.epsilon", self.query.epsilon));
        }
        if self.query.leaf_size == 0 {
            return Err(bad("query.leaf_size", 0.0));
        }
        if self.max_depth == Some(0) {
            return Err(bad("max_depth", 0.0));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_case_floor_scales_with_k() {
        let cfg = KnnDcConfig::new(1);
        assert_eq!(cfg.resolve_base_case(1000, 2), 32);
        let cfg8 = KnnDcConfig::new(8);
        // 1.5 · 9 / (1 - δ₂) with δ₂ = 0.75 + 0.04: ceil(13.5/0.21) = 65.
        assert!(cfg8.resolve_base_case(1000, 2) >= 8 * (8 + 1) / 2);
    }

    #[test]
    fn base_case_grows_with_log_n() {
        let cfg = KnnDcConfig::new(1);
        assert_eq!(cfg.resolve_base_case(1 << 40, 2), 40);
    }

    #[test]
    fn base_case_grows_with_dimension() {
        let cfg = KnnDcConfig::new(4);
        assert!(cfg.resolve_base_case(1000, 4) >= cfg.resolve_base_case(1000, 2));
    }

    #[test]
    fn explicit_base_case_respects_k() {
        let cfg = KnnDcConfig {
            base_case: Some(2),
            ..KnnDcConfig::new(5)
        };
        assert_eq!(cfg.resolve_base_case(100, 2), 6);
    }

    #[test]
    fn punt_threshold_sublinear() {
        let cfg = KnnDcConfig::new(1);
        let t = cfg.punt_threshold(10_000, 2);
        assert!(t > 100.0 && t < 10_000.0, "threshold {t}");
    }

    #[test]
    fn marching_limit_sublinear() {
        let cfg = KnnDcConfig::new(1);
        let l = cfg.marching_limit(10_000);
        assert!(l > 100 && l < 10_000, "limit {l}");
    }

    #[test]
    fn default_config_validates() {
        for k in [1usize, 4, 1000] {
            KnnDcConfig::new(k).validate().unwrap();
        }
    }

    #[test]
    fn zero_k_rejected() {
        assert_eq!(
            KnnDcConfig::new(0).validate(),
            Err(crate::SepdcError::InvalidK { k: 0 })
        );
    }

    #[test]
    fn nonsense_tunables_rejected() {
        let base = KnnDcConfig::new(2);
        let cases: Vec<(KnnDcConfig, &str)> = vec![
            (
                KnnDcConfig {
                    mu_epsilon: f64::NAN,
                    ..base
                },
                "mu_epsilon",
            ),
            (
                KnnDcConfig {
                    mu_epsilon: -0.1,
                    ..base
                },
                "mu_epsilon",
            ),
            (KnnDcConfig { eta: 1.5, ..base }, "eta"),
            (
                KnnDcConfig {
                    eta: f64::NEG_INFINITY,
                    ..base
                },
                "eta",
            ),
            (
                KnnDcConfig {
                    punt_slack: 0.0,
                    ..base
                },
                "punt_slack",
            ),
            (
                KnnDcConfig {
                    punt_slack: f64::NAN,
                    ..base
                },
                "punt_slack",
            ),
            (
                KnnDcConfig {
                    marching_slack: -8.0,
                    ..base
                },
                "marching_slack",
            ),
            (
                KnnDcConfig {
                    max_depth: Some(0),
                    ..base
                },
                "max_depth",
            ),
        ];
        for (cfg, want) in cases {
            match cfg.validate() {
                Err(crate::SepdcError::InvalidConfig { param, .. }) => {
                    assert_eq!(param, want);
                }
                other => panic!("{want}: expected InvalidConfig, got {other:?}"),
            }
        }
        // Bad nested configs are caught too.
        let mut sep_bad = base;
        sep_bad.separator.tol = f64::NAN;
        assert!(matches!(
            sep_bad.validate(),
            Err(crate::SepdcError::InvalidConfig {
                param: "separator.tol",
                ..
            })
        ));
        let mut query_bad = base;
        query_bad.query.leaf_size = 0;
        assert!(query_bad.validate().is_err());
    }

    #[test]
    fn precision_and_epsilon_knobs() {
        // Mixed is the default tier at every layer (byte-identical answers).
        let cfg = KnnDcConfig::new(1);
        assert_eq!(cfg.precision, Precision::Mixed);
        assert_eq!(cfg.query.precision, Precision::Mixed);
        assert_eq!(cfg.epsilon, 0.0);
        let exact = cfg.with_precision(Precision::Exact);
        assert_eq!(exact.precision, Precision::Exact);
        assert_eq!(exact.query.precision, Precision::Exact);
        // with_epsilon relaxes only the top level (punt-path balls are
        // already shrunk).
        let eps = KnnDcConfig::new(1).with_epsilon(0.25);
        assert_eq!(eps.epsilon, 0.25);
        assert_eq!(eps.query.epsilon, 0.0);
        eps.validate().unwrap();
        // Out-of-range ε is a typed config error at both layers.
        for bad_eps in [f64::NAN, -0.1, 1.5] {
            let bad = KnnDcConfig::new(1).with_epsilon(bad_eps);
            assert!(
                matches!(
                    bad.validate(),
                    Err(crate::SepdcError::InvalidConfig { param: "epsilon", .. })
                ),
                "eps {bad_eps}"
            );
            let sbad = ServeConfig {
                epsilon: bad_eps,
                ..ServeConfig::default()
            };
            assert!(sbad.validate().is_err(), "serve eps {bad_eps}");
        }
        let mut qbad = KnnDcConfig::new(1);
        qbad.query.epsilon = 2.0;
        assert!(matches!(
            qbad.validate(),
            Err(crate::SepdcError::InvalidConfig {
                param: "query.epsilon",
                ..
            })
        ));
    }

    #[test]
    fn precision_names_and_codes_round_trip() {
        for p in [Precision::Exact, Precision::Mixed] {
            assert_eq!(Precision::parse(p.name()), Some(p));
            assert_eq!(Precision::from_code(p.code()), Some(p));
        }
        assert_eq!(Precision::parse("f16"), None);
        assert_eq!(Precision::from_code(7), None);
        assert!(Precision::Mixed.is_mixed() && !Precision::Exact.is_mixed());
    }

    #[test]
    fn eps_scales_are_exact_identities_at_zero() {
        assert_eq!(eps_radius_scale(0.0), 1.0);
        assert_eq!(eps_cover_scale(0.0), 1.0);
        assert!(eps_radius_scale(0.5) < 1.0);
        assert!((eps_cover_scale(0.5) - 1.0 / 2.25).abs() < 1e-15);
    }

    #[test]
    fn with_splitter_sets_both_layers() {
        let cfg = KnnDcConfig::new(1).with_splitter(SplitterKind::Halving);
        assert_eq!(cfg.splitter, SplitterKind::Halving);
        assert_eq!(cfg.query.splitter, SplitterKind::Halving);
        // Default stays the paper's engine.
        assert_eq!(KnnDcConfig::new(1).splitter, SplitterKind::Random);
    }

    #[test]
    fn depth_limit_resolution() {
        let cfg = KnnDcConfig::new(1);
        // Automatic limit is generous: far above the ~3.5·log₂ n heights
        // real runs produce, but still O(log n).
        assert_eq!(cfg.resolve_depth_limit(1 << 10), 8 * 10 + 64);
        assert_eq!(cfg.resolve_depth_limit(0), 8 + 64);
        let strict = KnnDcConfig {
            max_depth: Some(5),
            ..cfg
        };
        assert_eq!(strict.resolve_depth_limit(1 << 20), 5);
    }
}
