//! Property tests for the Section 6 correction machinery: marching
//! soundness against real partition trees, punting-tree sanity, and the
//! public validators.

use proptest::prelude::*;
use sepdc::core::punting::{sample_rd, ZeroLog};
use sepdc::core::{march_balls, parallel_knn, validate_knn, KnnDcConfig};
use sepdc::geom::{Ball, Point};
use sepdc::workloads::Workload;

fn coarse_coord() -> impl Strategy<Value = f64> {
    (-8i32..8).prop_map(|x| x as f64 * 0.5)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Lemma 6.3 soundness: every point inside a queried ball appears
    /// among the candidates its march collects, for the *actual* partition
    /// trees produced by the §6 recursion.
    #[test]
    fn marching_candidates_cover_ball_contents(
        seed in 0u64..500,
        bx in coarse_coord(),
        by in coarse_coord(),
        r in 0.05f64..3.0,
    ) {
        let pts = Workload::UniformCube.generate::<2>(400, seed);
        let out = parallel_knn::<2, 3>(&pts, &KnnDcConfig::new(1).with_seed(seed));
        let ball = Ball::new(Point::from([bx * 0.1 + 0.5, by * 0.1 + 0.5]), r);
        let m = march_balls(&out.tree, std::slice::from_ref(&ball), usize::MAX);
        prop_assert!(!m.aborted);
        for (i, p) in pts.iter().enumerate() {
            if ball.contains(p) {
                prop_assert!(
                    m.candidates[0].contains(&(i as u32)),
                    "point {i} inside ball missing from candidates"
                );
            }
        }
        // Work accounting is consistent.
        prop_assert!(m.total_steps >= m.levels as u64);
        prop_assert!(m.max_active_per_level >= 1);
    }

    /// The §6 output always passes the full independent validator
    /// (structure + distances + radius maximality), across workloads.
    #[test]
    fn parallel_output_validates(seed in 0u64..200, wi in 0usize..7, k in 1usize..4) {
        let w = Workload::ALL[wi];
        let pts = w.generate::<2>(250, seed);
        let out = parallel_knn::<2, 3>(&pts, &KnnDcConfig::new(k).with_seed(seed));
        prop_assert!(
            validate_knn(&pts, &out.knn).is_ok(),
            "{:?} on {}", validate_knn(&pts, &out.knn), w.name()
        );
    }

    /// Punting trees: RD is bounded by the worst case (all punts) and is
    /// monotone-ish in expectation with n — sanity envelope for Lemma 4.1.
    #[test]
    fn punting_rd_within_envelope(seed in 0u64..1000, e in 3u32..12) {
        let n = 1usize << e;
        let mut rng = rand::SeedableRng::seed_from_u64(seed);
        let rng: &mut rand_chacha::ChaCha8Rng = &mut rng;
        let rd = sample_rd(n, &ZeroLog, rng);
        // Worst case: sum of log2 at each level = e + (e-1) + … + 1.
        let worst = (e * (e + 1) / 2) as f64;
        prop_assert!(rd >= 0.0 && rd <= worst + 1e-9, "rd {rd} worst {worst}");
    }
}
